package timecache

// One benchmark per table and figure of the paper's evaluation. Each bench
// runs the corresponding experiment at a reduced (but calibrated)
// instruction budget and reports the headline quantity through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// numbers alongside the runtime cost of producing them. The `reproduce`
// command runs the same experiments at full scale with paper-side-by-side
// tables.

import (
	"fmt"
	"math"
	"testing"
)

// benchOpts trades statistical tightness for bench runtime.
func benchOpts() ExperimentOptions {
	return ExperimentOptions{InstrsPerProc: 100_000, WarmupInstrs: 150_000}
}

// BenchmarkFig7SpecNormalizedTime reproduces Fig. 7: normalized execution
// time of SPEC2006 pairs on one core (paper geomean: 1.13% overhead).
func BenchmarkFig7SpecNormalizedTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceTableII(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0
		for _, r := range rows {
			prod *= r.Normalized
			n++
		}
		gm := pow(prod, 1/float64(n))
		b.ReportMetric((gm-1)*100, "overhead-%")
	}
}

// BenchmarkFig8FirstAccessMPKI reproduces Fig. 8: delayed-access MPKI per
// cache level for the single-core SPEC runs.
func BenchmarkFig8FirstAccessMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceTableII(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var l1i, l1d, llc float64
		for _, r := range rows {
			l1i += r.FirstAccessL1I
			l1d += r.FirstAccessL1D
			llc += r.FirstAccessLLC
		}
		n := float64(len(rows))
		b.ReportMetric(l1i/n, "L1I-faMPKI")
		b.ReportMetric(l1d/n, "L1D-faMPKI")
		b.ReportMetric(llc/n, "LLC-faMPKI")
	}
}

// BenchmarkFig9aParsecNormalizedTime reproduces Fig. 9a: PARSEC 2-thread
// 2-core normalized execution time (paper geomean: 0.8% overhead).
func BenchmarkFig9aParsecNormalizedTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceParsec(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0
		for _, r := range rows {
			prod *= r.Normalized
			n++
		}
		gm := pow(prod, 1/float64(n))
		b.ReportMetric((gm-1)*100, "overhead-%")
	}
}

// BenchmarkFig9bParsecMPKI reproduces Fig. 9b: PARSEC delayed-access MPKI
// per cache. With threads pinned to separate cores, the L1 components are
// structurally zero and all first accesses land at the LLC.
func BenchmarkFig9bParsecMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceParsec(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var l1, llc float64
		for _, r := range rows {
			l1 += r.FirstAccessL1I + r.FirstAccessL1D
			llc += r.FirstAccessLLC
		}
		b.ReportMetric(l1/float64(len(rows)), "L1-faMPKI")
		b.ReportMetric(llc/float64(len(rows)), "LLC-faMPKI")
	}
}

// BenchmarkTableIIOverheadMPKI reproduces Table II's MPKI columns: the
// average baseline and TimeCache LLC MPKI across the SPEC workloads
// (paper averages: 7.26 and 7.51).
func BenchmarkTableIIOverheadMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceTableII(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var base, tc float64
		for _, r := range rows {
			base += r.MPKIBaseline
			tc += r.MPKITimeCache
		}
		n := float64(len(rows))
		b.ReportMetric(base/n, "MPKI-base")
		b.ReportMetric(tc/n, "MPKI-timecache")
	}
}

// BenchmarkFig10LLCSensitivity reproduces Fig. 10: geomean overhead versus
// LLC size (scaled sweep: at this simulator's budgets eviction pressure
// appears at proportionally smaller caches; the paper's 1B-instruction
// runs show the same decreasing shape at 2/4/8 MB).
func BenchmarkFig10LLCSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceLLCSensitivity([]int{512 << 10, 1 << 20, 2 << 20}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.OverheadPct, byteLabel(r.LLCSizeBytes)+"-overhead-%")
		}
	}
}

// BenchmarkMicrobenchmarkAttack reproduces §VI-A1: attacker hits on the
// 256-line shared array, baseline versus TimeCache (paper: all vs zero).
func BenchmarkMicrobenchmarkAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := RunMicrobenchmark(Baseline)
		if err != nil {
			b.Fatal(err)
		}
		def, err := RunMicrobenchmark(TimeCache)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(base.Hits), "baseline-hits")
		b.ReportMetric(float64(def.Hits), "timecache-hits")
	}
}

// BenchmarkRSAAttack reproduces §VI-A2: fraction of RSA key bits recovered
// by flush+reload (paper: attack succeeds on baseline, fully blocked by
// the defense).
func BenchmarkRSAAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := RunRSAAttack(Baseline, 64, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		def, err := RunRSAAttack(TimeCache, 64, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.Accuracy*100, "baseline-key-%")
		b.ReportMetric(def.Accuracy*100, "timecache-key-%")
		b.ReportMetric(float64(def.Hits), "timecache-hits")
	}
}

// BenchmarkSbitSaveRestore reproduces §VI-D: the context-switch s-bit
// bookkeeping share of execution time, and its decay as the scheduler
// slice grows toward realistic lengths (paper: ~0.02%).
func BenchmarkSbitSaveRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceBookkeepingScaling([]uint64{100_000, 800_000}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BookkeepingPct, "short-slice-%")
		b.ReportMetric(rows[len(rows)-1].BookkeepingPct, "long-slice-%")
		costs := ComputeSbitCosts(benchOpts())
		b.ReportMetric(float64(costs.DMACyclesPerSwitch), "DMA-cycles/switch")
	}
}

// BenchmarkRolloverOverhead reproduces §VI-C: running with a deliberately
// tiny timestamp (12 bits rolls over every 4096 cycles) forces constant
// rollover resets; correctness holds and the cost is extra first-access
// misses relative to the 32-bit configuration.
func BenchmarkRolloverOverhead(b *testing.B) {
	run := func(bits uint) uint64 {
		sys, err := New(Config{Mode: TimeCache, TimestampBits: bits})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := sys.SpawnSpec("gobmk", 0, 60_000, uint64(1001+i*1001)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run(1 << 62)
		if !sys.AllExited() {
			b.Fatal("did not finish")
		}
		var fa uint64
		for _, c := range sys.Stats().Caches {
			fa += c.FirstAccess
		}
		return fa
	}
	for i := 0; i < b.N; i++ {
		wide := run(32)
		narrow := run(12)
		b.ReportMetric(float64(wide), "firstaccess-32bit")
		b.ReportMetric(float64(narrow), "firstaccess-12bit")
		if narrow < wide {
			b.Fatal("rollover resets must not reduce first accesses")
		}
	}
}

// BenchmarkOtherAttacks reproduces §VII: accuracy of each non-reuse attack
// under TimeCache, with and without its designated mitigation.
func BenchmarkOtherAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ff, err := RunFlushFlushAttack(TimeCache, false, 32, 5)
		if err != nil {
			b.Fatal(err)
		}
		ffFixed, err := RunFlushFlushAttack(TimeCache, true, 32, 5)
		if err != nil {
			b.Fatal(err)
		}
		coh, err := RunCoherenceAttack(TimeCache, 32, 5)
		if err != nil {
			b.Fatal(err)
		}
		lru, err := RunLRUAttack(TimeCache, "lru", 32, 5)
		if err != nil {
			b.Fatal(err)
		}
		pp, err := RunPrimeProbeAttack(TimeCache, false, 32, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ff.Accuracy*100, "flushflush-%")
		b.ReportMetric(ffFixed.Accuracy*100, "flushflush-ctflush-%")
		b.ReportMetric(coh.Accuracy*100, "coherence-%")
		b.ReportMetric(lru.Accuracy*100, "lru-%")
		b.ReportMetric(pp.Accuracy*100, "primeprobe-%")
	}
}

// BenchmarkDefenseAblation compares TimeCache's overhead with the FTM,
// way-partitioning, and flush-on-switch baselines from DESIGN.md.
func BenchmarkDefenseAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ReproduceDefenseAblation("2Xgobmk", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric((r.Normalized-1)*100, r.Defense+"-overhead-%")
		}
	}
}

// BenchmarkGateLevelComparator measures the cost of simulating the
// context-switch comparison through the gate-level transposed-SRAM model
// relative to the functional fast path (results are identical; only
// simulator time differs).
func BenchmarkGateLevelComparator(b *testing.B) {
	opts := ExperimentOptions{InstrsPerProc: 40_000, WarmupInstrs: 60_000, GateLevel: true}
	for i := 0; i < b.N; i++ {
		if _, err := ReproduceSpecPair("2Xspecrand", opts); err != nil {
			b.Fatal(err)
		}
	}
}

// pow computes x^y for the geomean reductions.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

func byteLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}

// BenchmarkLimitedPointerTracker compares the paper's full per-context
// s-bit map against the §VI-C limited-pointer area optimization on a
// 4-context machine (2 cores x 2 SMT threads): pointer overflow converts
// area savings into extra first-access misses.
func BenchmarkLimitedPointerTracker(b *testing.B) {
	run := func(maxSharers int) (firstAccess uint64) {
		sys, err := New(Config{Mode: TimeCache, Cores: 2, MaxSharers: maxSharers})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := sys.SpawnSpec("gobmk", i, 80_000, uint64(1001+i*1001)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run(1 << 62)
		if !sys.AllExited() {
			b.Fatal("did not finish")
		}
		for _, c := range sys.Stats().Caches {
			firstAccess += c.FirstAccess
		}
		return firstAccess
	}
	for i := 0; i < b.N; i++ {
		full := run(0)
		limited := run(1)
		b.ReportMetric(float64(full), "fullmap-firstaccess")
		b.ReportMetric(float64(limited), "limited1-firstaccess")
		if limited < full {
			b.Fatal("limited pointers must not reduce first accesses")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: modeled
// instructions per second of wall-clock for a representative workload pair
// under TimeCache (the figure that bounds how far experiment budgets can
// be raised).
func BenchmarkSimulatorThroughput(b *testing.B) {
	const instrs = 200_000
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{Mode: TimeCache})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			if _, err := sys.SpawnSpec("gobmk", 0, instrs, uint64(1001+j*1001)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run(1 << 62)
		if !sys.AllExited() {
			b.Fatal("did not finish")
		}
	}
	b.ReportMetric(float64(2*instrs*b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
