// Quickstart: build a TimeCache machine, run two processes that share a
// binary, and watch the defense's first-access misses appear.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"timecache"
)

// Two copies of this program share their text segment (same ShareKey), so
// each process's instruction fetches of lines the *other* process cached
// are delayed first accesses under TimeCache.
const program = `
	movi r1, 0
	movi r2, 100000
loop:
	addi r1, r1, 1
	blt  r1, r2, loop
	mov  r1, r1
	sys  0            ; exit with the counter value
`

func main() {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		sys, err := timecache.New(timecache.Config{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		var procs []*timecache.Process
		for i := 0; i < 2; i++ {
			p, err := sys.LoadAsm(program, timecache.LoadOptions{ShareKey: "counter"})
			if err != nil {
				log.Fatal(err)
			}
			procs = append(procs, p)
		}
		cycles := sys.Run(1 << 62)
		for i, p := range procs {
			if !p.Exited() || p.Err() != nil {
				log.Fatalf("process %d did not finish cleanly: %v", i, p.Err())
			}
		}
		st := sys.Stats()
		var firstAccess uint64
		for _, c := range st.Caches {
			firstAccess += c.FirstAccess
		}
		fmt.Printf("%-9s: %10d cycles, %4d context switches, %6d first-access misses\n",
			mode, cycles, st.ContextSwitches, firstAccess)
	}
	fmt.Println()
	fmt.Println("The baseline never delays reuse of another process's cached lines;")
	fmt.Println("TimeCache charges each process one miss per shared line per residency,")
	fmt.Println("which is exactly what breaks flush+reload style attacks.")
}
