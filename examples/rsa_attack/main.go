// RSA key extraction (paper §VI-A2): a flush+reload attacker monitors the
// Square/Multiply/Reduce entry lines of a shared GnuPG-style library while
// a victim exponentiates with a secret key. On a conventional cache the
// attacker reads the key bit-for-bit; with TimeCache it observes nothing.
//
//	go run ./examples/rsa_attack
package main

import (
	"fmt"
	"log"

	"timecache"
)

func main() {
	const keyBits = 96
	const seed = 0xC0DE

	fmt.Println("flush+reload against square-and-multiply RSA")
	fmt.Printf("key length: %d bits, seed %#x\n\n", keyBits, seed)

	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		res, err := timecache.RunRSAAttack(mode, keyBits, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", mode)
		fmt.Printf("secret key: %s\n", res.KeyBits)
		fmt.Printf("recovered : %s\n", res.RecoveredBits)
		fmt.Printf("accuracy  : %.1f%%   probe hits: %d   victim result correct: %v\n\n",
			res.Accuracy*100, res.Hits, res.VictimCorrect)
	}

	fmt.Println("The victim's modular exponentiation is bit-exact in both runs —")
	fmt.Println("TimeCache removes the side channel, not the computation.")

	// The evict+reload variant needs no clflush: the attacker displaces the
	// monitored lines with LLC eviction sets it constructed itself.
	er, err := timecache.RunEvictReloadAttack(timecache.TimeCache, 48, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevict+reload under TimeCache: %d probe hits (accuracy %.1f%%) — also blind\n",
		er.Hits, er.Accuracy*100)
}
