// The paper's §VI-A1 microbenchmark written in μRISC assembly and executed
// by the simulated CPU — the closest analogue of the original C listing:
//
//	if parent
//	    flush shrd_mem; sleep; read shrd_mem; // cache hit?
//	else
//	    read shrd_mem;
//
// Two instances of one binary are loaded with a common share key, so their
// text and the `.shared` array occupy the same physical frames. The first
// process (PID 1) takes the attacker branch: flush every line, sleep, then
// rdtsc-timed reloads, exiting with its hit count. The second takes the
// victim branch and writes the array while the attacker sleeps.
//
//	go run ./examples/asm_microbench
package main

import (
	"fmt"
	"log"

	"timecache"
)

const microbench = `
.shared
arr: .space 16384          ; 256 cache lines of shared memory

.text
start:
	sys  3                 ; r1 = getpid
	movi r2, 1
	beq  r1, r2, attacker

victim:                    ; PID 2: write the shared array, 3 passes
	movi r3, 0             ; pass counter
vpass:
	movi r4, 0             ; byte offset
vline:
	movi r5, arr
	add  r6, r5, r4
	st   [r6], r2          ; write the line
	addi r4, r4, 64
	movi r7, 16384
	blt  r4, r7, vline
	addi r3, r3, 1
	movi r7, 3
	blt  r3, r7, vpass
	movi r1, 0
	sys  0                 ; exit(0)

attacker:                  ; PID 1: flush, sleep, timed reads
	movi r4, 0
floop:
	movi r5, arr
	add  r6, r5, r4
	clflush [r6]
	addi r4, r4, 64
	movi r7, 16384
	blt  r4, r7, floop

	movi r1, 4000000       ; sleep long enough for the victim to run
	sys  2

	movi r4, 0             ; byte offset
	movi r8, 0             ; hit counter
rloop:
	movi r5, arr
	add  r6, r5, r4
	fence
	rdtsc r9
	ld   r10, [r6]
	rdtsc r11
	fence
	sub  r12, r11, r9
	movi r13, 90           ; hit threshold in cycles (LLC hit < 90 < DRAM)
	bge  r12, r13, miss
	addi r8, r8, 1
miss:
	addi r4, r4, 64
	movi r7, 16384
	blt  r4, r7, rloop
	mov  r1, r8
	sys  0                 ; exit(hit count)
`

func main() {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		sys, err := timecache.New(timecache.Config{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		attacker, err := sys.LoadAsm(microbench, timecache.LoadOptions{ShareKey: "micro", Name: "attacker"})
		if err != nil {
			log.Fatal(err)
		}
		victim, err := sys.LoadAsm(microbench, timecache.LoadOptions{ShareKey: "micro", Name: "victim"})
		if err != nil {
			log.Fatal(err)
		}
		sys.Run(1 << 62)
		if err := attacker.Err(); err != nil {
			log.Fatalf("attacker faulted: %v", err)
		}
		if err := victim.Err(); err != nil {
			log.Fatalf("victim faulted: %v", err)
		}
		fmt.Printf("%-9s: attacker observed %3d/256 shared lines as cache hits\n",
			mode, attacker.ExitCode())
	}
	fmt.Println()
	fmt.Println("The attacker binary itself is unchanged between runs; only the cache")
	fmt.Println("design differs. TimeCache turns every probe into a first-access miss.")
}
