// Dedup sharing: the paper's motivation for TimeCache includes making
// memory deduplication (KSM / copy-on-write fork) safe to deploy. This
// example loads two *private* copies of the same program, lets the KSM
// scanner merge their identical pages, and shows that the resulting
// cross-process physical sharing is an attack channel on the baseline but
// not under TimeCache — while the memory savings remain.
//
//	go run ./examples/dedup_sharing
package main

import (
	"fmt"
	"log"

	"timecache"
)

// A program that repeatedly touches its own text so the shared (deduped)
// lines stay cache-resident.
const worker = `
	movi r1, 0
	movi r2, 60000
loop:
	addi r1, r1, 1
	blt  r1, r2, loop
	sys  0
`

func main() {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		sys, err := timecache.New(timecache.Config{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		// No ShareKey: each process gets private frames for its text.
		for i := 0; i < 2; i++ {
			if _, err := sys.LoadAsm(worker, timecache.LoadOptions{Name: fmt.Sprintf("w%d", i)}); err != nil {
				log.Fatal(err)
			}
		}
		merged := sys.DedupScan()
		cycles := sys.Run(1 << 62)
		if !sys.AllExited() {
			log.Fatal("workers did not finish")
		}
		st := sys.Stats()
		var firstAccess uint64
		for _, c := range st.Caches {
			firstAccess += c.FirstAccess
		}
		fmt.Printf("--- %s ---\n", mode)
		fmt.Printf("pages merged by KSM scan : %d (COW preserved: %d breaks during run)\n",
			merged, st.COWBreaks)
		fmt.Printf("run                      : %d cycles, %d first-access misses\n\n",
			cycles, firstAccess)
	}

	fmt.Println("After dedup the two processes share physical text frames, so one")
	fmt.Println("process's fetches warm lines the other can probe — a reuse channel.")
	fmt.Println("TimeCache charges the prober a first-access miss instead, so systems")
	fmt.Println("can keep deduplication's 2-4x memory savings without the side channel.")
}
