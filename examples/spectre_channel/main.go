// Spectre covert channel: Spectre variants leak speculatively loaded data
// through exactly the reuse side channel TimeCache eliminates (the paper
// calls flush+reload "a preferred covert channel" for Spectre I/II and
// NetSpectre). This example models the transmit/receive halves: a victim
// performs transient secret-indexed loads into a shared 256-line probe
// array, and an attacker reconstructs each byte by flush+reload.
//
//	go run ./examples/spectre_channel
package main

import (
	"fmt"
	"log"

	"timecache"
)

func main() {
	secret := []byte("squeamish ossifrage")
	fmt.Printf("victim's secret: %q\n\n", secret)

	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		res, err := timecache.RunSpectreChannel(mode, secret)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", mode)
		fmt.Printf("recovered      : %q\n", printable(res.Recovered))
		fmt.Printf("bytes correct  : %d/%d   probe hits: %d\n\n",
			res.BytesCorrect, len(secret), res.Hits)
	}

	fmt.Println("Speculation-side defenses (InvisiSpec, SafeSpec) hide the transient")
	fmt.Println("loads; TimeCache instead removes the channel that exfiltrates them —")
	fmt.Println("so even a successful transient access has no attacker-visible effect.")
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 0x20 && c < 0x7f {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
