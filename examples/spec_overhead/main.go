// SPEC overhead: reproduce one row of the paper's Table II — a pair of
// SPEC2006 workload models time-sharing one core — and print the measured
// normalized execution time and LLC MPKI next to the paper's numbers.
//
//	go run ./examples/spec_overhead            # 2Xwrf
//	go run ./examples/spec_overhead 2Xlbm
//	go run ./examples/spec_overhead perl+wrf
package main

import (
	"fmt"
	"log"
	"os"

	"timecache"
)

func main() {
	label := "2Xwrf"
	if len(os.Args) > 1 {
		label = os.Args[1]
	}
	opts := timecache.ExperimentOptions{InstrsPerProc: 300_000, WarmupInstrs: 250_000}
	fmt.Printf("running %s (%d measured instructions per process after %d warmup)...\n\n",
		label, opts.InstrsPerProc, opts.WarmupInstrs)
	row, err := timecache.ReproduceSpecPair(label, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "measured", "paper")
	fmt.Printf("%-22s %12.4f %12.4f\n", "normalized exec time", row.Normalized, row.PaperNormalized)
	fmt.Printf("%-22s %12.4f %12.4f\n", "LLC MPKI (baseline)", row.MPKIBaseline, row.PaperMPKIBase)
	fmt.Printf("%-22s %12.4f %12.4f\n", "LLC MPKI (timecache)", row.MPKITimeCache, row.PaperMPKITC)
	fmt.Println()
	fmt.Printf("delayed first accesses: L1I %.4f, L1D %.4f, LLC %.4f MPKI\n",
		row.FirstAccessL1I, row.FirstAccessL1D, row.FirstAccessLLC)
	fmt.Printf("s-bit bookkeeping     : %.4f%% of execution (shrinks with slice length;\n", row.BookkeepingPct)
	fmt.Println("                        the paper reports ~0.02% at Linux-scale slices)")
}
