package timecache

import (
	"testing"

	"timecache/internal/stats"
)

// quickOpts returns experiment options scaled down far enough for CI while
// still crossing the warmup threshold on every process.
func quickOpts(jobs int) ExperimentOptions {
	return ExperimentOptions{InstrsPerProc: 20_000, WarmupInstrs: 20_000, Jobs: jobs}
}

// TestParallelLLCSensitivityDeterminism runs the Fig. 10 sweep sequentially
// and with 8 workers and asserts the rendered CSV — the artifact
// `reproduce` writes — is byte-identical: the pool may change when runs
// execute, never what they compute.
func TestParallelLLCSensitivityDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	sizes := []int{512 << 10, 1 << 20}
	render := func(jobs int) string {
		rows, err := ReproduceLLCSensitivity(sizes, quickOpts(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		tab := stats.NewTable("llc", "geomean-normalized", "overhead-pct")
		for _, r := range rows {
			tab.Add(r.LLCSizeBytes, r.GeoMeanNorm, r.OverheadPct)
		}
		return tab.CSV()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("CSV output differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}

// TestParallelAblationDeterminism exercises the trickiest rewiring: the
// defense ablation normalizes every configuration against the baseline
// run, which sequential code computed first. The parallel version must
// produce the identical table (markdown here, covering the second output
// format).
func TestParallelAblationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	render := func(jobs int) string {
		rows, err := ReproduceDefenseAblation("2Xgobmk", quickOpts(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		tab := stats.NewTable("defense", "normalized-time")
		for _, r := range rows {
			tab.Add(r.Defense, r.Normalized)
		}
		return tab.Markdown()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("markdown output differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}

// TestParallelBookkeepingDeterminism covers the slice-length sweep with a
// row-by-row comparison (struct equality, stricter than the rendered
// table).
func TestParallelBookkeepingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	slices := []uint64{50_000, 100_000}
	seq, err := ReproduceBookkeepingScaling(slices, quickOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReproduceBookkeepingScaling(slices, quickOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}
