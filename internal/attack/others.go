package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/replacement"
	"timecache/internal/sim"
)

// SecretResult reports how well an attack recovered a victim's secret bit
// sequence.
type SecretResult struct {
	Secret    []bool
	Recovered []bool
	// Accuracy is the fraction of bits recovered correctly (0.5 ≈ chance).
	Accuracy float64
}

func scoreSecret(secret, recovered []bool) SecretResult {
	n := len(secret)
	if len(recovered) < n {
		n = len(recovered)
	}
	same := 0
	for i := 0; i < n; i++ {
		if secret[i] == recovered[i] {
			same++
		}
	}
	acc := 0.0
	if len(secret) > 0 {
		acc = float64(same) / float64(len(secret))
	}
	return SecretResult{Secret: secret, Recovered: recovered, Accuracy: acc}
}

// secretBits derives a deterministic bit sequence from a seed.
func secretBits(n int, seed uint64) []bool {
	out := make([]bool, n)
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = s&1 == 1
	}
	return out
}

// bitVictim performs one secret-dependent action per round, then yields.
type bitVictim struct {
	bits   []bool
	action func(env sim.Env, bit bool)
	round  int
}

func (v *bitVictim) Step(env sim.Env) bool {
	if v.round >= len(v.bits) {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	v.action(env, v.bits[v.round])
	env.Instret(4)
	v.round++
	env.Syscall(sim.SysYield, 0)
	return true
}

// ---------------------------------------------------------------------------
// Flush+Flush (§VII-C)

// flushFlushAttacker times clflush itself: a longer flush means the line
// was resident, i.e. the victim touched it since the previous flush.
type flushFlushAttacker struct {
	target    uint64
	rounds    int
	threshold uint64

	round int
	obs   []bool
}

func (a *flushFlushAttacker) Step(env sim.Env) bool {
	if a.round > a.rounds {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	t0 := env.Now()
	env.Flush(a.target)
	lat := env.Now() - t0
	env.Instret(3)
	if a.round > 0 { // round 0 only establishes the flushed state
		a.obs = append(a.obs, lat > a.threshold)
	}
	a.round++
	env.Syscall(sim.SysYield, 0)
	return true
}

// RunFlushFlush mounts the flush+flush attack on a shared line. The attack
// does not rely on reuse hits, so TimeCache alone does not stop it; the
// constantTimeFlush mitigation (a fixed-latency clflush with dummy
// writeback, as the paper suggests) does.
func RunFlushFlush(mode cache.SecMode, constantTimeFlush bool, nbits int, seed uint64) (SecretResult, error) {
	return runFlushFlushOn(NewMachineConfig(machine.Config{Mode: mode, ConstantTimeFlush: constantTimeFlush}), nbits, seed)
}

// RunFlushFlushConfig mounts flush+flush on a machine assembled from cfg
// (the defense×attack matrix selects the defense through cfg.Defense).
func RunFlushFlushConfig(cfg machine.Config, nbits int, seed uint64) (SecretResult, error) {
	return runFlushFlushOn(NewMachineConfig(cfg), nbits, seed)
}

func runFlushFlushOn(m *Machine, nbits int, seed uint64) (SecretResult, error) {
	asA, err := m.MapSharedAt("ff", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	asV, err := m.MapSharedAt("ff", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	secret := secretBits(nbits, seed)
	att := &flushFlushAttacker{target: sharedBase, rounds: nbits, threshold: m.FlushThreshold()}
	vic := &bitVictim{bits: secret, action: func(env sim.Env, bit bool) {
		if bit {
			env.Load(sharedBase)
		} else {
			env.Tick(10)
		}
	}}
	// Attacker first: its initial flush precedes the victim's first round.
	if _, err := m.K.Spawn("ff-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("ff-victim", vic, asV, 0); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(1_000_000_000)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: flush+flush did not finish")
	}
	return scoreSecret(secret, att.obs), nil
}

// ---------------------------------------------------------------------------
// Prime+Probe (§IX / Fig. 1) — contention attack, out of TimeCache's threat
// model; defended by index randomization.

type primeProbeAttacker struct {
	lines     []uint64 // attacker's eviction set (ways lines, one LLC set)
	rounds    int
	threshold uint64

	round int
	obs   []bool
}

func (a *primeProbeAttacker) Step(env sim.Env) bool {
	if a.round > a.rounds {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	misses := 0
	for _, l := range a.lines {
		t0 := env.Now()
		env.Load(l) // probe (and re-prime)
		if env.Now()-t0 > a.threshold {
			misses++
		}
		env.Instret(4)
	}
	if a.round > 0 { // round 0 is the initial prime
		a.obs = append(a.obs, misses > 0)
	}
	a.round++
	env.Syscall(sim.SysYield, 0)
	return true
}

// RunPrimeProbe mounts a prime+probe attack on one LLC set. There is no
// shared memory: the victim's secret-dependent access to its own line in
// the monitored set evicts one of the attacker's primed lines. TimeCache
// does not (and per the paper, need not) stop this contention channel;
// CEASER-lite index randomization (randomizeIndex) does, because the
// attacker's architecturally-constructed eviction set no longer maps to a
// single set.
func RunPrimeProbe(mode cache.SecMode, randomizeIndex bool, nbits int, seed uint64) (SecretResult, error) {
	mcfg := machine.Config{Mode: mode}
	if randomizeIndex {
		mcfg.RandomizedIndex = 0xC0FFEE
	}
	return RunPrimeProbeConfig(mcfg, nbits, seed)
}

// RunPrimeProbeConfig mounts prime+probe on a machine assembled from cfg.
func RunPrimeProbeConfig(cfg machine.Config, nbits int, seed uint64) (SecretResult, error) {
	m := NewMachineConfig(cfg)
	llc := m.K.Hierarchy().LLC()

	asA := kernel.NewAddressSpace(m.K.Physical())
	asV := kernel.NewAddressSpace(m.K.Physical())
	// The victim's line: one private page; its architectural LLC set is the
	// set the attacker monitors.
	if err := asV.MapAnon(0x7000_0000, 4096, true); err != nil {
		return SecretResult{}, err
	}
	vicPA, _, err := asV.Translate(0x7000_0000, false)
	if err != nil {
		return SecretResult{}, err
	}
	evict, err := m.BuildEvictionSet(asA, llc, vicPA, llc.Ways(), 0x6000_0000)
	if err != nil {
		return SecretResult{}, err
	}

	secret := secretBits(nbits, seed)
	att := &primeProbeAttacker{lines: evict, rounds: nbits, threshold: m.HitThreshold()}
	vic := &bitVictim{bits: secret, action: func(env sim.Env, bit bool) {
		if bit {
			env.Load(0x7000_0000)
		} else {
			env.Tick(10)
		}
	}}
	if _, err := m.K.Spawn("pp-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("pp-victim", vic, asV, 0); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(2_000_000_000)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: prime+probe did not finish")
	}
	return scoreSecret(secret, att.obs), nil
}

// ---------------------------------------------------------------------------
// LRU attack (§VII-A)

type lruAttacker struct {
	shared    uint64   // the monitored shared line l
	evict     []uint64 // ways private lines conflicting with l in the L1D
	rounds    int
	threshold uint64

	round int
	phase int
	obs   []bool
}

// Step implements the eviction-set LRU probe: access l then (w-1) filler
// lines, let the victim run, access the w-th filler (displacing the LRU
// way), and finally time the first filler — if the victim refreshed l, the
// first filler was the LRU victim and now misses.
func (a *lruAttacker) Step(env sim.Env) bool {
	switch a.phase {
	case 0: // establish known LRU order: l oldest, then evict[0..w-2]
		if a.round >= a.rounds {
			env.Syscall(sim.SysExit, 0)
			return false
		}
		env.Load(a.shared)
		for _, e := range a.evict[:len(a.evict)-1] {
			env.Load(e)
		}
		env.Instret(uint64(len(a.evict)) + 1)
		a.phase = 1
		env.Syscall(sim.SysYield, 0) // victim's turn
	case 1: // displace one way, then time the would-be LRU way
		env.Load(a.evict[len(a.evict)-1])
		t0 := env.Now()
		env.Load(a.evict[0])
		miss := env.Now()-t0 > a.threshold
		a.obs = append(a.obs, miss)
		env.Instret(6)
		// Reset the set for the next round.
		env.Flush(a.shared)
		for _, e := range a.evict {
			env.Flush(e)
		}
		a.round++
		a.phase = 0
	}
	return true
}

// RunLRU mounts the cache-LRU-state attack of §VII-A on the L1D. The
// channel is the replacement state, not a reuse hit, so TimeCache does not
// stop it (the victim's delayed first access still refreshes recency);
// switching the replacement policy to random destroys the channel — the
// paper points to randomizing caches for this class.
func RunLRU(mode cache.SecMode, policy replacement.Kind, nbits int, seed uint64) (SecretResult, error) {
	return RunLRUConfig(machine.Config{Mode: mode}, policy, nbits, seed)
}

// RunLRUConfig mounts the LRU attack on a machine assembled from cfg with
// the given replacement policy.
func RunLRUConfig(cfg machine.Config, policy replacement.Kind, nbits int, seed uint64) (SecretResult, error) {
	if _, err := replacement.New(policy, 1, 2, 0); err != nil {
		return SecretResult{}, err
	}
	cfg.Policy, cfg.PolicySeed = policy, seed+1
	m := NewMachineConfig(cfg)
	l1d := m.K.Hierarchy().L1D(0)

	asA, err := m.MapSharedAt("lru", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	asV, err := m.MapSharedAt("lru", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	sharedPA, _, err := asA.Translate(sharedBase, false)
	if err != nil {
		return SecretResult{}, err
	}
	evict, err := m.BuildEvictionSet(asA, l1d, sharedPA, l1d.Ways(), 0x6000_0000)
	if err != nil {
		return SecretResult{}, err
	}

	secret := secretBits(nbits, seed)
	// The channel is L1 eviction: an L1 hit (L1Lat) must be separated from
	// an L1 miss served by the LLC, so the threshold sits between the two.
	hcfg := m.K.Hierarchy().Config()
	l1Threshold := hcfg.L1Lat + hcfg.LLCLat/2
	att := &lruAttacker{shared: sharedBase, evict: evict, rounds: nbits, threshold: l1Threshold}
	vic := &bitVictim{bits: secret, action: func(env sim.Env, bit bool) {
		if bit {
			env.Load(sharedBase) // refresh l's recency
		} else {
			env.Tick(10)
		}
	}}
	if _, err := m.K.Spawn("lru-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("lru-victim", vic, asV, 0); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(2_000_000_000)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: LRU attack did not finish")
	}
	return scoreSecret(secret, att.obs), nil
}

// ---------------------------------------------------------------------------
// Coherence invalidate+transfer (§VII-B)

type coherenceAttacker struct {
	target    uint64
	rounds    int
	period    uint64
	threshold uint64

	round int
	phase int
	obs   []bool
}

func (a *coherenceAttacker) Step(env sim.Env) bool {
	switch a.phase {
	case 0: // invalidate: flush the shared line everywhere
		if a.round >= a.rounds {
			env.Syscall(sim.SysExit, 0)
			return false
		}
		env.Flush(a.target)
		env.Instret(2)
		a.phase = 1
		env.Syscall(sim.SysSleep, a.period)
	case 1: // transfer: a timed load distinguishes a remote-L1 forward
		t0 := env.Now()
		env.Load(a.target)
		lat := env.Now() - t0
		env.Instret(4)
		a.obs = append(a.obs, lat <= a.threshold)
		a.round++
		a.phase = 0
	}
	return true
}

// coherenceVictim runs on another hardware context, touching the shared
// line for 1 bits, synchronized to the attacker's period by sleeps. The
// coherence attack uses stores (to dirty the line in its private L1); the
// SMT attack reuses it with loadOnly set.
type coherenceVictim struct {
	target   uint64
	bits     []bool
	period   uint64
	loadOnly bool

	round   int
	started bool
}

func (v *coherenceVictim) Step(env sim.Env) bool {
	if !v.started {
		v.started = true
		env.Syscall(sim.SysSleep, v.period/2) // land mid-window
		return true
	}
	if v.round >= len(v.bits) {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	if v.bits[v.round] {
		if v.loadOnly {
			env.Load(v.target)
		} else {
			env.Store(v.target, uint64(v.round))
		}
	} else {
		env.Tick(10)
	}
	env.Instret(3)
	v.round++
	env.Syscall(sim.SysSleep, v.period)
	return true
}

// RunCoherence mounts invalidate+transfer across two cores: the attacker
// flushes a shared line and detects, by load latency, whether the victim's
// core holds a dirty copy (a remote forward is faster than DRAM). With
// TimeCache the attacker's load is a first access that waits for the DRAM
// response either way, so the channel disappears (paper §VII-B).
func RunCoherence(mode cache.SecMode, nbits int, seed uint64) (SecretResult, error) {
	return RunCoherenceConfig(machine.Config{Mode: mode}, nbits, seed)
}

// RunCoherenceConfig mounts invalidate+transfer on a machine assembled from
// cfg; the attack needs two cores, so Cores is forced to 2.
func RunCoherenceConfig(cfg machine.Config, nbits int, seed uint64) (SecretResult, error) {
	cfg.Cores = 2
	m := NewMachineConfig(cfg)
	asA, err := m.MapSharedAt("coh", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	asV, err := m.MapSharedAt("coh", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	secret := secretBits(nbits, seed)
	hcfg := m.K.Hierarchy().Config()
	// Remote forward (L1+LLC+remote) is faster than a memory access
	// (LLC+DRAM); split the difference.
	threshold := hcfg.L1Lat + hcfg.LLCLat + hcfg.RemoteL1Lat + (hcfg.DRAMLat-hcfg.RemoteL1Lat)/2
	const period = 50_000
	att := &coherenceAttacker{target: sharedBase, rounds: nbits, period: period, threshold: threshold}
	vic := &coherenceVictim{target: sharedBase, bits: secret, period: period}
	if _, err := m.K.Spawn("coh-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("coh-victim", vic, asV, 1); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(uint64(nbits+4) * period * 4)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: coherence attack did not finish")
	}
	return scoreSecret(secret, att.obs), nil
}

// ---------------------------------------------------------------------------
// Evict+Time (§VII-D)

// EvictTimeResult reports the victim execution times with and without the
// attacker flushing the shared line the victim depends on.
type EvictTimeResult struct {
	VictimCyclesFlushed     uint64
	VictimCyclesUndisturbed uint64
}

// Leaks reports whether the attacker-visible difference exists (the victim
// runs measurably slower when its line keeps getting flushed). TimeCache
// does not remove this channel — the paper notes it stays noisy and
// impractical — so both configurations are expected to leak.
func (r EvictTimeResult) Leaks() bool {
	return r.VictimCyclesFlushed > r.VictimCyclesUndisturbed+r.VictimCyclesUndisturbed/100
}

type evictTimeVictim struct {
	target uint64
	iters  int
	i      int
}

func (v *evictTimeVictim) Step(env sim.Env) bool {
	if v.i >= v.iters {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	env.Load(v.target)
	env.Instret(2)
	v.i++
	if v.i%8 == 0 {
		env.Syscall(sim.SysYield, 0)
	}
	return true
}

type evictTimeAttacker struct {
	target uint64
	flush  bool
	rounds int
	round  int
}

func (a *evictTimeAttacker) Step(env sim.Env) bool {
	if a.round >= a.rounds {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	a.round++
	if a.flush {
		env.Flush(a.target)
	} else {
		env.Tick(40)
	}
	env.Instret(2)
	env.Syscall(sim.SysYield, 0)
	return true
}

// RunEvictTime measures the victim's execution time while an interleaved
// attacker either flushes the victim's shared line every slice or idles.
func RunEvictTime(mode cache.SecMode, iters int) (EvictTimeResult, error) {
	var res EvictTimeResult
	for _, flush := range []bool{true, false} {
		m := NewMachine(mode, 1)
		asV, err := m.MapSharedAt("et", cache.LineSize)
		if err != nil {
			return res, err
		}
		asA, err := m.MapSharedAt("et", cache.LineSize)
		if err != nil {
			return res, err
		}
		vic := &evictTimeVictim{target: sharedBase, iters: iters}
		att := &evictTimeAttacker{target: sharedBase, flush: flush, rounds: iters}
		pv, err := m.K.Spawn("et-victim", vic, asV, 0)
		if err != nil {
			return res, err
		}
		if _, err := m.K.Spawn("et-attacker", att, asA, 0); err != nil {
			return res, err
		}
		m.K.Run(2_000_000_000)
		if pv.State != kernel.Exited {
			return res, fmt.Errorf("attack: evict+time victim did not finish")
		}
		if flush {
			res.VictimCyclesFlushed = pv.Stats.FinishedAt
		} else {
			res.VictimCyclesUndisturbed = pv.Stats.FinishedAt
		}
	}
	return res, nil
}
