package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/sim"
)

// RunLLCOccupancy mounts an LLC occupancy (cache contention) channel: no
// shared memory, no flush instruction, no eviction-set construction. The
// victim on core 1 modulates its working-set size with the secret — an
// LLC-sized sweep for a 1 bit, a few lines for a 0 bit — while the
// attacker on core 0 repeatedly sweeps a private quarter-LLC buffer and
// times the whole sweep: when the victim filled the cache the attacker's
// lines were evicted and the sweep runs at DRAM speed. The two alternate
// in fixed windows, so each timed sweep observes exactly one secret bit.
//
// The channel leaks through aggregate occupancy rather than per-line reuse,
// which is precisely what address-based defenses (s-bits, per-core presence
// bits, index randomization) do not target; way partitioning or TTL-based
// eviction do break it. The matrix experiment exists to make that
// distinction visible. Cores is forced to 2.
func RunLLCOccupancy(cfg machine.Config, nbits int, seed uint64) (SecretResult, error) {
	cfg.Cores = 2
	m := NewMachineConfig(cfg)
	hcfg := m.K.Hierarchy().Config()
	llcLines := uint64(hcfg.LLCSize) / cache.LineSize

	// A window must fit the victim's full-LLC sweep even when every load
	// misses to DRAM; 300 cycles per line bounds that comfortably.
	period := llcLines * 300

	const attBase, vicBase = 0x6000_0000, 0x7000_0000
	attBytes := uint64(hcfg.LLCSize) / 4
	vicBytes := uint64(hcfg.LLCSize)

	asA := kernel.NewAddressSpace(m.K.Physical())
	if err := asA.MapAnon(attBase, attBytes, true); err != nil {
		return SecretResult{}, err
	}
	asV := kernel.NewAddressSpace(m.K.Physical())
	if err := asV.MapAnon(vicBase, vicBytes, true); err != nil {
		return SecretResult{}, err
	}
	lineSeq := func(base, bytes uint64) []uint64 {
		seq := make([]uint64, 0, bytes/cache.LineSize)
		for off := uint64(0); off < bytes; off += cache.LineSize {
			seq = append(seq, base+off)
		}
		return seq
	}

	secret := secretBits(nbits, seed)
	big := lineSeq(vicBase, vicBytes)
	att := &occupancySweeper{buf: lineSeq(attBase, attBytes), rounds: nbits, period: period}
	vic := &occupancyVictim{big: big, small: big[:16], bits: secret, period: period}
	if _, err := m.K.Spawn("occ-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("occ-victim", vic, asV, 1); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(uint64(2*nbits+6) * period)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: LLC occupancy attack did not finish")
	}

	// Classify each timed sweep against the midpoint of the observed range:
	// a live channel is strongly bimodal (all-hit vs all-miss sweeps), and
	// a dead one collapses every reading onto one side of the midpoint.
	lo, hi := att.lat[0], att.lat[0]
	for _, l := range att.lat {
		lo, hi = min(lo, l), max(hi, l)
	}
	threshold := (lo + hi) / 2
	recovered := make([]bool, len(att.lat))
	for i, l := range att.lat {
		recovered[i] = l > threshold
	}
	return scoreSecret(secret, recovered), nil
}

// sleepUntil parks the process until the absolute cycle target (no-op if
// the target already passed — the window overran, and the next phase just
// starts late).
func sleepUntil(env sim.Env, target uint64) {
	if now := env.Now(); now < target {
		env.Syscall(sim.SysSleep, target-now)
	}
}

// occupancyVictim sweeps its big or small buffer in window [(2r+1)P,
// (2r+2)P) according to secret bit r.
type occupancyVictim struct {
	big, small []uint64
	bits       []bool
	period     uint64

	started bool
	round   int
}

func (v *occupancyVictim) Step(env sim.Env) bool {
	if !v.started {
		v.started = true
		// Window 0 belongs to the attacker's warm-up sweep.
		sleepUntil(env, v.period)
		return true
	}
	if v.round >= len(v.bits) {
		return false
	}
	buf := v.small
	if v.bits[v.round] {
		buf = v.big
	}
	for _, a := range buf {
		env.Load(a)
	}
	env.Instret(uint64(len(buf)))
	v.round++
	sleepUntil(env, uint64(2*v.round+1)*v.period)
	return true
}

func (v *occupancyVictim) ForkProc() sim.Proc { c := *v; return &c }

// occupancySweeper warms its buffer in window [0, P), then times one full
// sweep per window [(2r+2)P, (2r+3)P).
type occupancySweeper struct {
	buf    []uint64
	rounds int
	period uint64

	phase int
	round int
	lat   []uint64
}

func (a *occupancySweeper) Step(env sim.Env) bool {
	if a.phase == 0 {
		for _, addr := range a.buf {
			env.Load(addr)
		}
		env.Instret(uint64(len(a.buf)))
		a.phase = 1
		sleepUntil(env, 2*a.period)
		return true
	}
	if a.round >= a.rounds {
		return false
	}
	start := env.Now()
	for _, addr := range a.buf {
		env.Load(addr)
	}
	env.Instret(uint64(len(a.buf)))
	a.lat = append(a.lat, env.Now()-start)
	a.round++
	sleepUntil(env, uint64(2*a.round+2)*a.period)
	return true
}

func (a *occupancySweeper) ForkProc() sim.Proc {
	c := *a
	c.buf = append([]uint64(nil), a.buf...)
	c.lat = append([]uint64(nil), a.lat...)
	return &c
}
