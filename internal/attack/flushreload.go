package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/machine"
	"timecache/internal/rsa"
	"timecache/internal/sim"
)

// MicrobenchResult reports the §VI-A1 microbenchmark outcome.
type MicrobenchResult struct {
	Lines int
	// Hits is the number of shared lines the attacker observed as cached
	// after the victim's writes (any hit is a successful attack).
	Hits int
	// MeanLatency is the attacker's mean timed-read latency.
	MeanLatency float64
}

// microAttacker implements the parent process of the paper's
// microbenchmark listing: flush the shared array, sleep, then perform
// timed reads of the entire array.
type microAttacker struct {
	base      uint64
	lines     int
	threshold uint64
	sleep     uint64

	phase  int
	i      int
	hits   int
	sumLat uint64
	reads  int
}

func (a *microAttacker) Step(env sim.Env) bool {
	switch a.phase {
	case 0: // flush shrd_mem
		env.Flush(a.base + uint64(a.i)*cache.LineSize)
		env.Instret(1)
		a.i++
		if a.i == a.lines {
			a.phase, a.i = 1, 0
		}
	case 1: // sleep, letting the victim run
		env.Instret(1)
		env.Syscall(sim.SysSleep, a.sleep)
		a.phase = 2
	case 2: // timed reads of the entire array
		t0 := env.Now()
		env.Load(a.base + uint64(a.i)*cache.LineSize)
		lat := env.Now() - t0
		env.Instret(3)
		a.sumLat += lat
		a.reads++
		if lat <= a.threshold {
			a.hits++
		}
		a.i++
		if a.i == a.lines {
			env.Syscall(sim.SysExit, uint64(a.hits))
			return false
		}
	}
	return true
}

// microVictim writes a value repeatedly to the shared array, then exits.
type microVictim struct {
	base   uint64
	lines  int
	passes int

	pass, i int
}

func (v *microVictim) Step(env sim.Env) bool {
	env.Store(v.base+uint64(v.i)*cache.LineSize, 0xAB)
	env.Instret(2)
	v.i++
	if v.i == v.lines {
		v.i = 0
		v.pass++
		if v.pass == v.passes {
			env.Syscall(sim.SysExit, 0)
			return false
		}
	}
	return true
}

// RunMicrobenchmark executes the §VI-A1 attack: a 256-line shared
// memory-mapped array, an attacker that flushes/sleeps/times, and a victim
// that writes the array during the attacker's sleep. On the baseline every
// line hits; with TimeCache the attacker must observe zero hits.
func RunMicrobenchmark(mode cache.SecMode) (MicrobenchResult, error) {
	const lines = 256
	m := NewMachine(mode, 1)
	size := uint64(lines * cache.LineSize)

	asA, err := m.MapSharedAt("shrd_mem", size)
	if err != nil {
		return MicrobenchResult{}, err
	}
	asV, err := m.MapSharedAt("shrd_mem", size)
	if err != nil {
		return MicrobenchResult{}, err
	}
	att := &microAttacker{base: sharedBase, lines: lines, threshold: m.HitThreshold(), sleep: 4_000_000}
	vic := &microVictim{base: sharedBase, lines: lines, passes: 3}
	if _, err := m.K.Spawn("attacker", att, asA, 0); err != nil {
		return MicrobenchResult{}, err
	}
	if _, err := m.K.Spawn("victim", vic, asV, 0); err != nil {
		return MicrobenchResult{}, err
	}
	m.K.Run(200_000_000)
	if !m.K.AllExited() {
		return MicrobenchResult{}, fmt.Errorf("attack: microbenchmark did not finish")
	}
	res := MicrobenchResult{Lines: lines, Hits: att.hits}
	if att.reads > 0 {
		res.MeanLatency = float64(att.sumLat) / float64(att.reads)
	}
	return res, nil
}

// RSAResult reports the §VI-A2 flush+reload RSA attack outcome.
type RSAResult struct {
	Key       rsa.Key
	Recovered rsa.Key
	// Accuracy is the fraction of key bits recovered correctly.
	Accuracy float64
	// Hits counts all attacker probe hits (the paper's success criterion:
	// any hit on the monitored lines is a successful attack observation).
	Hits int
	// SquareHits/MultiplyHits break hits down by monitored function.
	SquareHits, MultiplyHits int
	// VictimCorrect confirms the victim's exponentiation produced the
	// reference result (the defense must not perturb correctness).
	VictimCorrect bool
	// Latencies are the attacker's raw per-round, per-target probe
	// latencies. Under TimeCache these must be independent of the key:
	// identical sequences for different keys (the non-interference
	// property the security tests assert).
	Latencies [][]uint64
}

// RunRSA mounts the flush+reload attack on the square-and-multiply victim:
// the attacker monitors the Square, Multiply, and Reduce entry lines of the
// shared GnuPG-like library while the victim exponentiates with a secret
// key, recovering one key bit per interleaved round from whether Multiply
// was observed.
func RunRSA(mode cache.SecMode, keyBits int, seed uint64) (RSAResult, error) {
	return runRSAOn(NewMachine(mode, 1), keyBits, seed)
}

// RunRSAConfig mounts the flush+reload RSA attack on a machine assembled
// from cfg (the defense×attack matrix selects the defense through
// cfg.Defense).
func RunRSAConfig(cfg machine.Config, keyBits int, seed uint64) (RSAResult, error) {
	return runRSAOn(NewMachineConfig(cfg), keyBits, seed)
}

// runRSAOn mounts the flush+reload RSA attack on an existing machine.
func runRSAOn(m *Machine, keyBits int, seed uint64) (RSAResult, error) {
	lib := rsa.DefaultLibrary(sharedBase)
	key := rsa.GenerateKey(keyBits, seed)
	const base, modulus = 0x10001, 0xFFFFFFFB // 2^32-5, prime

	asV, err := m.MapSharedAt("gnupg", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}
	asA, err := m.MapSharedAt("gnupg", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}

	vic := rsa.NewVictim(lib, key, base, modulus)
	prober := NewProber(m, []uint64{lib.SquareAddr(), lib.MultiplyAddr(), lib.ReduceAddr()}, keyBits+1)

	// The victim is spawned first so each of its per-bit yields hands the
	// CPU to the attacker for one probe round: round i observes bit i.
	if _, err := m.K.Spawn("gpg", vic, asV, 0); err != nil {
		return RSAResult{}, err
	}
	if _, err := m.K.Spawn("spy", prober, asA, 0); err != nil {
		return RSAResult{}, err
	}
	m.K.Run(2_000_000_000)
	if !m.K.AllExited() {
		return RSAResult{}, fmt.Errorf("attack: RSA attack did not finish")
	}

	res := RSAResult{Key: key, Hits: prober.Hits(), Latencies: prober.Lat}
	res.VictimCorrect = vic.Result == rsa.ModExp(base, key, modulus)
	recovered := make(rsa.Key, 0, keyBits)
	for _, row := range prober.Obs {
		if len(recovered) == keyBits {
			break
		}
		if row[0] {
			res.SquareHits++
		}
		if row[1] {
			res.MultiplyHits++
		}
		recovered = append(recovered, row[1])
	}
	res.Recovered = recovered
	res.Accuracy = key.Match(recovered)
	return res, nil
}

// RunEvictReload is the evict+reload variant of the RSA attack: instead of
// clflush the attacker evicts the monitored lines by touching eviction sets
// it constructed for the LLC (and which, being larger than the L1 ways,
// also displace the L1 copies).
func RunEvictReload(mode cache.SecMode, keyBits int, seed uint64) (RSAResult, error) {
	m := NewMachine(mode, 1)
	lib := rsa.DefaultLibrary(sharedBase)
	key := rsa.GenerateKey(keyBits, seed)
	const base, modulus = 0x10001, 0xFFFFFFFB

	asV, err := m.MapSharedAt("gnupg", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}
	asA, err := m.MapSharedAt("gnupg", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}

	targets := []uint64{lib.SquareAddr(), lib.MultiplyAddr(), lib.ReduceAddr()}
	llc := m.K.Hierarchy().LLC()
	evict := make([][]uint64, len(targets))
	evBase := uint64(0x6000_0000)
	for i, t := range targets {
		pa, _, err := asA.Translate(t, false)
		if err != nil {
			return RSAResult{}, err
		}
		// LLC ways + 1 conflicting lines guarantee displacement under LRU.
		ev, err := m.BuildEvictionSet(asA, llc, pa, llc.Ways()+1, evBase)
		if err != nil {
			return RSAResult{}, err
		}
		evict[i] = ev
		evBase += 0x0400_0000
	}

	vic := rsa.NewVictim(lib, key, base, modulus)
	prober := NewProber(m, targets, keyBits+1)
	prober.EvictSets = evict

	if _, err := m.K.Spawn("gpg", vic, asV, 0); err != nil {
		return RSAResult{}, err
	}
	if _, err := m.K.Spawn("spy", prober, asA, 0); err != nil {
		return RSAResult{}, err
	}
	m.K.Run(4_000_000_000)
	if !m.K.AllExited() {
		return RSAResult{}, fmt.Errorf("attack: evict+reload did not finish")
	}

	res := RSAResult{Key: key, Hits: prober.Hits(), Latencies: prober.Lat}
	res.VictimCorrect = vic.Result == rsa.ModExp(base, key, modulus)
	recovered := make(rsa.Key, 0, keyBits)
	for _, row := range prober.Obs {
		if len(recovered) == keyBits {
			break
		}
		if row[0] {
			res.SquareHits++
		}
		if row[1] {
			res.MultiplyHits++
		}
		recovered = append(recovered, row[1])
	}
	res.Recovered = recovered
	res.Accuracy = key.Match(recovered)
	return res, nil
}

// RunRSALimited is RunRSA with the limited-pointer s-bit tracker (§VI-C
// area optimization) configured with maxSharers slots per line, used to
// verify the optimization preserves the defense.
func RunRSALimited(mode cache.SecMode, maxSharers, keyBits int, seed uint64) (RSAResult, error) {
	m := NewMachineConfig(machine.Config{Mode: mode, MaxSharers: maxSharers})
	return runRSAOn(m, keyBits, seed)
}

// RunRSABig mounts the flush+reload attack against the multi-precision
// victim (rsa.BigVictim): real MPI square/multiply/reduce with
// operand-dependent work, the closest model of the GnuPG target. The
// recovery logic is identical — only the victim's realism differs.
func RunRSABig(mode cache.SecMode, keyBits int, seed uint64) (RSAResult, error) {
	m := NewMachine(mode, 1)
	lib := rsa.DefaultLibrary(sharedBase)
	key := rsa.GenerateKey(keyBits, seed)
	base := rsa.NewIntFromLimbs([]uint32{0x12345678, 0x9ABCDEF0, 0x13579BDF})
	modulus := rsa.NewIntFromLimbs([]uint32{0xFFFFFFC5, 0xFFFFFFFF, 0xFFFFFFFF, 0x1})

	asV, err := m.MapSharedAt("gnupg-big", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}
	asA, err := m.MapSharedAt("gnupg-big", lib.Size())
	if err != nil {
		return RSAResult{}, err
	}
	// Private operand storage for the victim's limb traffic.
	const operandBase = 0x5000_0000
	if err := asV.MapAnon(operandBase, 64<<10, true); err != nil {
		return RSAResult{}, err
	}

	vic := rsa.NewBigVictim(lib, key, base, modulus, operandBase)
	prober := NewProber(m, []uint64{lib.SquareAddr(), lib.MultiplyAddr(), lib.ReduceAddr()}, keyBits+1)

	if _, err := m.K.Spawn("gpg-big", vic, asV, 0); err != nil {
		return RSAResult{}, err
	}
	if _, err := m.K.Spawn("spy", prober, asA, 0); err != nil {
		return RSAResult{}, err
	}
	m.K.Run(8_000_000_000)
	if !m.K.AllExited() {
		return RSAResult{}, fmt.Errorf("attack: big-number RSA attack did not finish")
	}

	res := RSAResult{Key: key, Hits: prober.Hits(), Latencies: prober.Lat}
	res.VictimCorrect = vic.Result != nil && vic.Result.Cmp(rsa.BigModExp(base, key, modulus)) == 0
	recovered := make(rsa.Key, 0, keyBits)
	for _, row := range prober.Obs {
		if len(recovered) == keyBits {
			break
		}
		if row[0] {
			res.SquareHits++
		}
		if row[1] {
			res.MultiplyHits++
		}
		recovered = append(recovered, row[1])
	}
	res.Recovered = recovered
	res.Accuracy = key.Match(recovered)
	return res, nil
}
