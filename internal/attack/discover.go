package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/sim"
)

// DiscoverEvictionSet finds a minimal LLC eviction set for target using
// *timing only* — the technique a real attacker uses when it cannot read
// the page tables (and what BuildEvictionSet shortcuts constructively):
//
//  1. Allocate a pool of candidate lines large enough to cover every set.
//  2. Confirm the pool evicts the target (load target, sweep pool, re-time
//     target: slow reload means conflict).
//  3. Group-reduce: repeatedly drop a chunk of candidates and keep the
//     remainder only if it still evicts the target.
//
// The reduction leaves roughly `ways` conflicting lines. It runs inline on
// proc's CPU (kernel.RunInline), as the attacker's single-threaded setup
// phase. Returns the discovered eviction set as virtual addresses.
func DiscoverEvictionSet(m *Machine, proc *kernel.Process, target uint64, poolBase uint64) ([]uint64, error) {
	llc := m.K.Hierarchy().LLC()
	ways := llc.Ways()
	// Pool: enough pages that each LLC set receives ~2*ways candidate
	// lines. One page contributes 64 lines spread over 64 consecutive sets,
	// so sets*2*ways/64 pages cover the whole cache twice over.
	pages := llc.Sets() * 2 * ways / 64
	poolBytes := uint64(pages) * 4096
	if err := proc.AS.MapAnon(poolBase, poolBytes, true); err != nil {
		return nil, fmt.Errorf("attack: discovery pool: %w", err)
	}
	candidates := make([]uint64, 0, pages*64)
	for off := uint64(0); off < poolBytes; off += cache.LineSize {
		candidates = append(candidates, poolBase+off)
	}

	threshold := m.HitThreshold()
	var set []uint64
	err := m.K.RunInline(proc, func(env sim.Env) {
		// evicts tests whether cand displaces target from the LLC. The
		// candidates are flushed first so every sweep load is a fresh
		// insertion — re-touching a resident line only refreshes LRU and
		// would make supersets spuriously fail the test.
		evicts := func(cand []uint64) bool {
			for _, a := range cand {
				env.Flush(a)
			}
			env.Flush(target)
			env.Load(target)
			for _, a := range cand {
				env.Load(a)
			}
			t0 := env.Now()
			env.Load(target)
			return env.Now()-t0 > threshold
		}
		if !evicts(candidates) {
			return // pool too small; set stays nil
		}
		// Group reduction (Vila et al. style): partition the working set
		// into exactly ways+1 groups each round. Only `ways` conflicting
		// lines are necessary to evict the target, and they lie in at most
		// `ways` groups, so some group is always removable until the set
		// is near-minimal.
		work := candidates
		groups := ways + 1
		for len(work) > ways {
			removed := false
			for g := 0; g < groups && len(work) > ways; g++ {
				start := g * len(work) / groups
				end := (g + 1) * len(work) / groups
				if start == end {
					continue
				}
				rest := make([]uint64, 0, len(work)-(end-start))
				rest = append(rest, work[:start]...)
				rest = append(rest, work[end:]...)
				if evicts(rest) {
					work = rest
					removed = true
					break
				}
			}
			if !removed {
				break // minimal: removing any group loses the conflict
			}
		}
		set = work
	})
	if err != nil {
		return nil, err
	}
	if set == nil {
		return nil, fmt.Errorf("attack: candidate pool does not evict the target")
	}
	return set, nil
}
