// Package attack implements the paper's attacks and the experiments that
// demonstrate TimeCache's defense: the §VI-A1 microbenchmark, the §VI-A2
// flush+reload RSA key extraction, and the §VII family (evict+reload,
// prime+probe, flush+flush, LRU, coherence invalidate+transfer, evict+time).
//
// Attackers are native sim.Procs: deterministic state machines that issue
// timed loads and flushes through the simulated hierarchy, exactly like the
// paper's attacker programs issue rdtsc-fenced loads and clflush.
package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

// Machine bundles a kernel with the knobs attacks need.
type Machine struct {
	K *kernel.Kernel
}

// NewMachine builds a simulated machine with the given hierarchy mode and
// core count, using the paper's default geometry.
func NewMachine(mode cache.SecMode, cores int) *Machine {
	return NewMachineConfig(machine.Config{Mode: mode, Cores: cores})
}

// NewMachineConfig assembles a machine from the given configuration. When
// cfg.PhysFrames is zero it applies the attack frame budget — LLC working
// sets plus eviction sets plus slack — instead of the machine default.
func NewMachineConfig(cfg machine.Config) *Machine {
	if cfg.PhysFrames == 0 {
		cfg.PhysFrames = 4096 + 4*cfg.HierarchyConfig().LLCSize/mem.PageSize
	}
	return &Machine{K: machine.New(cfg).Kernel()}
}

// HitThreshold returns the latency below which a load is classified as a
// cache hit: anything at most an LLC hit (plus the remote-forward margin)
// counts; a DRAM access does not. This mirrors the paper's calibration of
// cached vs uncached access times on the real machine.
func (m *Machine) HitThreshold() uint64 {
	cfg := m.K.Hierarchy().Config()
	return cfg.L1Lat + cfg.LLCLat + cfg.RemoteL1Lat + cfg.L1Lat
}

// FlushThreshold returns the latency above which a clflush is classified as
// having found the line resident (the flush+flush channel).
func (m *Machine) FlushThreshold() uint64 {
	cfg := m.K.Hierarchy().Config()
	return cfg.FlushBase + cfg.FlushPresentExtra/2
}

// Probe is one timed access observation.
type Probe struct {
	Target  uint64
	Latency uint64
	Hit     bool
}

// Prober is a generic reuse attacker: each round it performs a timed load
// of every target, classifies hit/miss against Threshold, then removes the
// targets from the cache (clflush, or eviction-set accesses for
// evict+reload) and yields the CPU to let the victim run.
type Prober struct {
	Targets   []uint64
	Rounds    int
	Threshold uint64

	// EvictSets, when non-nil, replaces clflush with accesses to the i-th
	// target's eviction set (evict+reload).
	EvictSets [][]uint64

	// SkipFirstProbe suppresses classification of round 0 (which observes
	// the cold cache rather than the victim).
	SkipFirstProbe bool

	// Obs[r][t] reports a hit for target t in round r.
	Obs [][]bool
	// Lat[r][t] is the measured latency.
	Lat [][]uint64

	round int
}

// NewProber builds a prober for the given targets and rounds using the
// machine's hit threshold.
func NewProber(m *Machine, targets []uint64, rounds int) *Prober {
	return &Prober{Targets: targets, Rounds: rounds, Threshold: m.HitThreshold()}
}

// Step implements sim.Proc: one full probe round per step, then a yield.
func (p *Prober) Step(env sim.Env) bool {
	if p.round >= p.Rounds {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	hits := make([]bool, len(p.Targets))
	lats := make([]uint64, len(p.Targets))
	for i, tgt := range p.Targets {
		t0 := env.Now()
		env.Load(tgt)
		lat := env.Now() - t0
		lats[i] = lat
		hits[i] = lat <= p.Threshold
		env.Instret(4)
	}
	// Evict the targets for the next round.
	for i, tgt := range p.Targets {
		if p.EvictSets != nil {
			for _, ev := range p.EvictSets[i] {
				env.Load(ev)
				env.Instret(1)
			}
		} else {
			env.Flush(tgt)
			env.Instret(1)
		}
	}
	if !(p.round == 0 && p.SkipFirstProbe) {
		p.Obs = append(p.Obs, hits)
		p.Lat = append(p.Lat, lats)
	}
	p.round++
	env.Syscall(sim.SysYield, 0)
	return true
}

// Hits returns the total number of observed hits across all rounds.
func (p *Prober) Hits() int {
	n := 0
	for _, row := range p.Obs {
		for _, h := range row {
			if h {
				n++
			}
		}
	}
	return n
}

// sharedBase is the virtual address attacks map their shared region at.
const sharedBase = 0x4000_0000

// MapSharedAt maps size bytes of the named shared region at sharedBase in a
// fresh address space and returns the space.
func (m *Machine) MapSharedAt(key string, size uint64) (*kernel.AddressSpace, error) {
	as := kernel.NewAddressSpace(m.K.Physical())
	if err := m.K.MapSharedRegion(as, key, sharedBase, size); err != nil {
		return nil, err
	}
	return as, nil
}

// SharedBase returns the conventional shared-mapping address.
func SharedBase() uint64 { return sharedBase }

// BuildEvictionSet allocates private pages in as (starting at vaddrBase)
// and returns n virtual addresses whose physical lines map to the same set
// of the given cache as targetPA does architecturally. It mirrors an
// attacker constructing an eviction set; with LLC index randomization the
// architectural set function no longer matches the real one, which is what
// defeats eviction-set attacks there.
func (m *Machine) BuildEvictionSet(as *kernel.AddressSpace, c *cache.Cache, targetPA uint64, n int, vaddrBase uint64) ([]uint64, error) {
	targetSet := (targetPA >> cache.LineShift) % uint64(c.Sets())
	var out []uint64
	va := vaddrBase
	for len(out) < n {
		if err := as.MapAnon(va, mem.PageSize, true); err != nil {
			return nil, fmt.Errorf("attack: eviction set allocation: %w", err)
		}
		for off := uint64(0); off < mem.PageSize; off += cache.LineSize {
			pa, _, err := as.Translate(va+off, false)
			if err != nil {
				return nil, err
			}
			if (pa>>cache.LineShift)%uint64(c.Sets()) == targetSet {
				out = append(out, va+off)
				if len(out) == n {
					break
				}
			}
		}
		va += mem.PageSize
	}
	return out, nil
}
