package attack

import (
	"testing"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/replacement"
	"timecache/internal/sim"
)

func TestMicrobenchmarkBaselineVsTimeCache(t *testing.T) {
	base, err := RunMicrobenchmark(cache.SecOff)
	if err != nil {
		t.Fatal(err)
	}
	if base.Hits < base.Lines*9/10 {
		t.Fatalf("baseline attack should hit nearly all %d lines, got %d", base.Lines, base.Hits)
	}
	def, err := RunMicrobenchmark(cache.SecTimeCache)
	if err != nil {
		t.Fatal(err)
	}
	if def.Hits != 0 {
		t.Fatalf("TimeCache must yield zero hits, got %d", def.Hits)
	}
	if def.MeanLatency <= base.MeanLatency {
		t.Fatal("defended probe latencies should be higher on average")
	}
}

func TestRSAFlushReload(t *testing.T) {
	const bits = 64
	base, err := RunRSA(cache.SecOff, bits, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !base.VictimCorrect {
		t.Fatal("victim arithmetic broken on baseline")
	}
	if base.Accuracy < 0.95 {
		t.Fatalf("baseline key recovery accuracy %.2f, want >= 0.95 (key %s, got %s)",
			base.Accuracy, base.Key, base.Recovered)
	}
	def, err := RunRSA(cache.SecTimeCache, bits, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !def.VictimCorrect {
		t.Fatal("victim arithmetic broken under TimeCache")
	}
	if def.Hits != 0 {
		t.Fatalf("TimeCache attacker observed %d hits, want 0", def.Hits)
	}
	// With zero hits the attacker recovers only the 0 bits by accident.
	ones := 0
	for _, b := range def.Key {
		if b {
			ones++
		}
	}
	wantAtMost := 1.0 - float64(ones)/float64(len(def.Key)) + 0.01
	if def.Accuracy > wantAtMost {
		t.Fatalf("TimeCache recovery accuracy %.2f exceeds guess level %.2f", def.Accuracy, wantAtMost)
	}
}

func TestRSAFTMFailsAgainstSameCoreAttack(t *testing.T) {
	// FTM only tracks per-core presence at the LLC: a same-core attacker
	// and victim share the core's presence bit, so the attack goes through
	// (the paper's argument for TimeCache's stronger threat model).
	res, err := RunRSA(cache.SecFTM, 48, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("FTM should NOT stop a same-core attack; accuracy %.2f", res.Accuracy)
	}
}

func TestEvictReload(t *testing.T) {
	const bits = 32
	base, err := RunEvictReload(cache.SecOff, bits, 777)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Fatalf("baseline evict+reload accuracy %.2f (key %s, got %s)",
			base.Accuracy, base.Key, base.Recovered)
	}
	def, err := RunEvictReload(cache.SecTimeCache, bits, 777)
	if err != nil {
		t.Fatal(err)
	}
	if def.Hits != 0 {
		t.Fatalf("TimeCache evict+reload observed %d hits, want 0", def.Hits)
	}
}

func TestFlushFlush(t *testing.T) {
	const bits = 48
	// Flush+flush bypasses reuse hits: TimeCache alone does not stop it.
	leaky, err := RunFlushFlush(cache.SecTimeCache, false, bits, 5)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Accuracy < 0.95 {
		t.Fatalf("flush+flush should leak under TimeCache alone, accuracy %.2f", leaky.Accuracy)
	}
	// The constant-time clflush mitigation closes it.
	fixed, err := RunFlushFlush(cache.SecTimeCache, true, bits, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Accuracy > 0.75 {
		t.Fatalf("constant-time flush should break the channel, accuracy %.2f", fixed.Accuracy)
	}
}

func TestPrimeProbe(t *testing.T) {
	const bits = 32
	// Contention channel: works on the baseline...
	base, err := RunPrimeProbe(cache.SecOff, false, bits, 21)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Fatalf("prime+probe baseline accuracy %.2f", base.Accuracy)
	}
	// ...and TimeCache does not claim to stop it (out of threat model).
	tc, err := RunPrimeProbe(cache.SecTimeCache, false, bits, 21)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Accuracy < 0.9 {
		t.Fatalf("prime+probe should still work under TimeCache, accuracy %.2f", tc.Accuracy)
	}
	// Index randomization (CEASER-lite) breaks eviction-set construction.
	rnd, err := RunPrimeProbe(cache.SecOff, true, bits, 21)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Accuracy > 0.8 {
		t.Fatalf("randomized index should break prime+probe, accuracy %.2f", rnd.Accuracy)
	}
}

func TestLRUAttack(t *testing.T) {
	const bits = 32
	// The LRU state channel survives TimeCache (replacement metadata still
	// updates on delayed first accesses)...
	tc, err := RunLRU(cache.SecTimeCache, replacement.LRU, bits, 31)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Accuracy < 0.9 {
		t.Fatalf("LRU attack should work under TimeCache+LRU, accuracy %.2f", tc.Accuracy)
	}
	// ...and random replacement destroys it.
	rnd, err := RunLRU(cache.SecTimeCache, replacement.Random, bits, 31)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Accuracy > 0.85 {
		t.Fatalf("random replacement should break the LRU channel, accuracy %.2f", rnd.Accuracy)
	}
}

func TestCoherenceInvalidateTransfer(t *testing.T) {
	const bits = 32
	base, err := RunCoherence(cache.SecOff, bits, 17)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Fatalf("invalidate+transfer baseline accuracy %.2f", base.Accuracy)
	}
	def, err := RunCoherence(cache.SecTimeCache, bits, 17)
	if err != nil {
		t.Fatal(err)
	}
	if def.Accuracy > 0.75 {
		t.Fatalf("TimeCache should break invalidate+transfer, accuracy %.2f", def.Accuracy)
	}
}

func TestEvictTimeLeaksEitherWay(t *testing.T) {
	for _, mode := range []cache.SecMode{cache.SecOff, cache.SecTimeCache} {
		res, err := RunEvictTime(mode, 2000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Leaks() {
			t.Fatalf("%v: evict+time difference missing: flushed=%d undisturbed=%d",
				mode, res.VictimCyclesFlushed, res.VictimCyclesUndisturbed)
		}
	}
}

func TestBuildEvictionSetConflicts(t *testing.T) {
	m := NewMachine(cache.SecOff, 1)
	as, err := m.MapSharedAt("es", cache.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	llc := m.K.Hierarchy().LLC()
	pa, _, _ := as.Translate(SharedBase(), false)
	ev, err := m.BuildEvictionSet(as, llc, pa, 8, 0x6000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 8 {
		t.Fatalf("got %d addresses, want 8", len(ev))
	}
	want := (pa >> cache.LineShift) % uint64(llc.Sets())
	for _, va := range ev {
		evpa, _, err := as.Translate(va, false)
		if err != nil {
			t.Fatal(err)
		}
		if got := (evpa >> cache.LineShift) % uint64(llc.Sets()); got != want {
			t.Fatalf("eviction address %#x maps to set %d, want %d", va, got, want)
		}
	}
}

func TestSMTHyperthreadAttack(t *testing.T) {
	const bits = 32
	// Attacker and victim on sibling hardware threads of one core, sharing
	// the L1: the strongest placement in the paper's threat model.
	base, err := RunSMT(cache.SecOff, bits, 9)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Fatalf("SMT flush+reload should succeed on baseline, accuracy %.2f", base.Accuracy)
	}
	def, err := RunSMT(cache.SecTimeCache, bits, 9)
	if err != nil {
		t.Fatal(err)
	}
	if def.Accuracy > 0.75 {
		t.Fatalf("TimeCache must defend the SMT placement, accuracy %.2f", def.Accuracy)
	}
}

// TestNonInterference asserts the defense's core security property in its
// strongest observable form: because the simulator is deterministic, an
// attacker's entire observable latency sequence must be bit-identical for
// two different victim keys — the victim's secret has zero influence on
// anything the attacker can time. On the baseline the sequences must
// differ (that difference IS the leak).
func TestNonInterference(t *testing.T) {
	const bits = 48
	run := func(mode cache.SecMode, seed uint64) [][]uint64 {
		r, err := RunRSA(mode, bits, seed)
		if err != nil {
			t.Fatal(err)
		}
		return r.Latencies
	}
	same := func(a, b [][]uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	// Two different keys (seeds chosen to give different bit patterns).
	tcA, tcB := run(cache.SecTimeCache, 1), run(cache.SecTimeCache, 2)
	if !same(tcA, tcB) {
		t.Fatal("TimeCache: attacker latency sequences differ across keys — information leaks")
	}
	baseA, baseB := run(cache.SecOff, 1), run(cache.SecOff, 2)
	if same(baseA, baseB) {
		t.Fatal("baseline: latency sequences identical across keys — the channel the test relies on is gone")
	}
}

func TestSpectreCovertChannel(t *testing.T) {
	secret := []byte("SPECULATE!")
	base, err := RunSpectre(cache.SecOff, secret)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy() < 0.9 {
		t.Fatalf("baseline Spectre transmission should work, recovered %q (%.0f%%)",
			base.Recovered, base.Accuracy()*100)
	}
	def, err := RunSpectre(cache.SecTimeCache, secret)
	if err != nil {
		t.Fatal(err)
	}
	if def.Hits != 0 {
		t.Fatalf("TimeCache must deny the covert channel any hits, got %d", def.Hits)
	}
	if def.BytesCorrect > 1 { // byte 0 could collide with the all-miss sentinel
		t.Fatalf("TimeCache leaked %d secret bytes: %q", def.BytesCorrect, def.Recovered)
	}
}

func TestDiscoverEvictionSetByTiming(t *testing.T) {
	// Use a small LLC so the timing-only group reduction stays fast.
	m := NewMachineConfig(machine.Config{L1Size: 4 << 10, LLCSize: 64 << 10}) // 64 sets x 16 ways
	as := kernel.NewAddressSpace(m.K.Physical())
	if err := as.MapAnon(0x7000_0000, 4096, true); err != nil {
		t.Fatal(err)
	}
	idle := sim.ProcFunc(func(env sim.Env) bool { return false })
	p, err := m.K.Spawn("attacker", idle, as, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := uint64(0x7000_0000)
	set, err := DiscoverEvictionSet(m, p, target, 0x6000_0000)
	if err != nil {
		t.Fatal(err)
	}
	llc := m.K.Hierarchy().LLC()
	if len(set) < llc.Ways() {
		t.Fatalf("discovered set has %d lines, need at least %d ways", len(set), llc.Ways())
	}
	if len(set) > 3*llc.Ways() {
		t.Fatalf("reduction left %d lines; expected near-minimal (~%d)", len(set), llc.Ways())
	}
	// Verify architecturally: every discovered line conflicts with the
	// target's LLC set.
	tpa, _, _ := as.Translate(target, false)
	want := (tpa >> cache.LineShift) % uint64(llc.Sets())
	conflicting := 0
	for _, va := range set {
		pa, _, err := as.Translate(va, false)
		if err != nil {
			t.Fatal(err)
		}
		if (pa>>cache.LineShift)%uint64(llc.Sets()) == want {
			conflicting++
		}
	}
	if conflicting < llc.Ways() {
		t.Fatalf("only %d/%d discovered lines truly conflict", conflicting, len(set))
	}
}

func TestLimitedPointerTrackerStillDefends(t *testing.T) {
	// The §VI-C limited-pointer area optimization must not weaken the
	// defense: the RSA attack observes zero hits with a 1-slot tracker too
	// (overflow only ever removes visibility).
	m := NewMachineConfig(machine.Config{Mode: cache.SecTimeCache, MaxSharers: 1})
	_ = m // machine construction checked; run the standard attack path below

	base, err := RunRSALimited(cache.SecTimeCache, 1, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.Hits != 0 {
		t.Fatalf("limited tracker leaked %d hits", base.Hits)
	}
	if !base.VictimCorrect {
		t.Fatal("victim arithmetic broken")
	}
}

func TestRSABigNumberVictim(t *testing.T) {
	const bits = 48
	base, err := RunRSABig(cache.SecOff, bits, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if !base.VictimCorrect {
		t.Fatal("big-number victim arithmetic broken")
	}
	if base.Accuracy < 0.95 {
		t.Fatalf("baseline big-number attack accuracy %.2f (key %s, got %s)",
			base.Accuracy, base.Key, base.Recovered)
	}
	def, err := RunRSABig(cache.SecTimeCache, bits, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if def.Hits != 0 {
		t.Fatalf("TimeCache big-number attack observed %d hits", def.Hits)
	}
	if !def.VictimCorrect {
		t.Fatal("defense perturbed the big-number arithmetic")
	}
}

func TestHolisticDefenseComposition(t *testing.T) {
	// Paper §I/§IX: TimeCache composes with randomizing caches — together
	// they stop both the reuse channel (flush+reload) and the contention
	// channel (prime+probe).
	const bits = 24

	// Reuse attack against the composed defense: still zero hits.
	m := NewMachineConfig(machine.Config{Mode: cache.SecTimeCache, RandomizedIndex: 0xFEED})
	rsaRes, err := runRSAOn(m, bits, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rsaRes.Hits != 0 || !rsaRes.VictimCorrect {
		t.Fatalf("composed defense leaked reuse hits: %+v", rsaRes)
	}

	// Contention attack against the composed defense: eviction sets no
	// longer map to one set, so prime+probe collapses to chance.
	pp, err := RunPrimeProbe(cache.SecTimeCache, true, bits, 11)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Accuracy > 0.8 {
		t.Fatalf("composed defense should stop prime+probe, accuracy %.2f", pp.Accuracy)
	}
}

func TestFTMDefendsCrossCoreOnly(t *testing.T) {
	// FTM's intended deployment (paper §VIII-B2): attacker and victim
	// spatially isolated on separate cores, sharing only the LLC. There the
	// per-core presence bits do block reuse — the contrast with
	// TestRSAFTMFailsAgainstSameCoreAttack is exactly the paper's argument
	// for TimeCache's stronger threat model.
	const bits = 24
	base, err := RunSMT(cache.SecOff, bits, 13) // 2 hardware contexts, no switches
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Fatalf("undefended cross-context attack should work, accuracy %.2f", base.Accuracy)
	}
	// Same placement on separate CORES under FTM: cross-core reuse blocked.
	m := NewMachineConfig(machine.Config{Mode: cache.SecFTM, Cores: 2})
	asA, err := m.MapSharedAt("ftmx", cache.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	asV, err := m.MapSharedAt("ftmx", cache.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	secret := secretBits(bits, 13)
	const period = 50_000
	att := &smtProber{target: sharedBase, rounds: bits, period: period, threshold: m.HitThreshold()}
	vic := &coherenceVictim{target: sharedBase, bits: secret, period: period, loadOnly: true}
	if _, err := m.K.Spawn("ftm-attacker", att, asA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.K.Spawn("ftm-victim", vic, asV, 1); err != nil {
		t.Fatal(err)
	}
	m.K.Run(uint64(bits+4) * period * 4)
	if !m.K.AllExited() {
		t.Fatal("FTM cross-core run did not finish")
	}
	res := scoreSecret(secret, att.obs)
	if res.Accuracy > 0.75 {
		t.Fatalf("FTM should block cross-core reuse, accuracy %.2f", res.Accuracy)
	}
}
