package attack

import (
	"reflect"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/defense"
	"timecache/internal/machine"
)

// TestAttackDefenseConfigEquivalence: every attack's Config entry point,
// given a registry Defense kind, reproduces the mode-based entry point's
// result exactly — the matrix job's attack cells measure the same channels
// the standalone attack suite always did.
func TestAttackDefenseConfigEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := RunRSA(cache.SecTimeCache, 48, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunRSAConfig(machine.Config{Defense: defense.TimeCache}, 48, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("flush+reload: registry spelling diverged:\n got %+v\nwant %+v", got, want)
	}

	ffWant, err := RunFlushFlush(cache.SecOff, false, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ffGot, err := RunFlushFlushConfig(machine.Config{Defense: defense.None}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ffWant, ffGot) {
		t.Errorf("flush+flush: registry spelling diverged:\n got %+v\nwant %+v", ffGot, ffWant)
	}

	smtWant, err := RunSMT(cache.SecTimeCache, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	smtGot, err := RunSMTConfig(machine.Config{Defense: defense.TimeCache}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(smtWant, smtGot) {
		t.Errorf("smt: registry spelling diverged:\n got %+v\nwant %+v", smtGot, smtWant)
	}
}

// TestLLCOccupancyChannel pins the cache-occupancy channel's shape: it needs
// no shared memory, so it leaks through the insecure baseline and straight
// through TimeCache (whose s-bits only hide line *reuse*), while way
// partitioning — which caps the attacker's observable occupancy — kills it.
func TestLLCOccupancyChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base, err := RunLLCOccupancy(machine.Config{}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 {
		t.Errorf("baseline occupancy accuracy = %.3f, want >= 0.9", base.Accuracy)
	}
	tc, err := RunLLCOccupancy(machine.Config{Defense: defense.TimeCache}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Accuracy < 0.9 {
		t.Errorf("timecache occupancy accuracy = %.3f, want >= 0.9 (occupancy is outside the s-bit threat model)", tc.Accuracy)
	}
	part, err := RunLLCOccupancy(machine.Config{Defense: defense.DAWGLite}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if part.Accuracy > 0.6 {
		t.Errorf("partitioned occupancy accuracy = %.3f, want chance level <= 0.6", part.Accuracy)
	}
}
