package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/machine"
	"timecache/internal/sim"
)

// RunSMT mounts a flush+reload attack from a hyperthread: attacker and
// victim run simultaneously on the two hardware threads of one core,
// sharing the L1 caches. The paper's threat model (§III) explicitly covers
// this placement: per-hardware-context s-bits deny the attacker reuse hits
// even on the same physical core, with no context switches involved.
func RunSMT(mode cache.SecMode, nbits int, seed uint64) (SecretResult, error) {
	return RunSMTConfig(machine.Config{Mode: mode}, nbits, seed)
}

// RunSMTConfig mounts the hyperthread attack on a machine assembled from
// cfg; the scenario is one physical core with two hardware threads, so
// Cores and ThreadsPerCore are forced.
func RunSMTConfig(cfg machine.Config, nbits int, seed uint64) (SecretResult, error) {
	cfg.Cores, cfg.ThreadsPerCore = 1, 2
	m := NewMachineConfig(cfg)

	asA, err := m.MapSharedAt("smt", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	asV, err := m.MapSharedAt("smt", cache.LineSize)
	if err != nil {
		return SecretResult{}, err
	}
	secret := secretBits(nbits, seed)

	// Synchronize by period: the victim touches (or not) mid-window, the
	// attacker probes at window end. Both threads run concurrently; there
	// are no context switches, so the defense rests purely on the per-
	// hardware-context s-bits.
	const period = 50_000
	att := &smtProber{target: sharedBase, rounds: nbits, period: period, threshold: m.HitThreshold()}
	vic := &coherenceVictim{target: sharedBase, bits: secret, period: period, loadOnly: true}
	// Thread 0 = logical CPU 0, thread 1 = logical CPU 1 (same core).
	if _, err := m.K.Spawn("smt-attacker", att, asA, 0); err != nil {
		return SecretResult{}, err
	}
	if _, err := m.K.Spawn("smt-victim", vic, asV, 1); err != nil {
		return SecretResult{}, err
	}
	m.K.Run(uint64(nbits+4) * period * 4)
	if !m.K.AllExited() {
		return SecretResult{}, fmt.Errorf("attack: SMT attack did not finish")
	}
	return scoreSecret(secret, att.obs), nil
}

// smtProber is the hyperthread attacker: flush, wait within the window,
// timed reload.
type smtProber struct {
	target    uint64
	rounds    int
	period    uint64
	threshold uint64

	round int
	phase int
	obs   []bool
}

func (a *smtProber) Step(env sim.Env) bool {
	switch a.phase {
	case 0:
		if a.round >= a.rounds {
			env.Syscall(sim.SysExit, 0)
			return false
		}
		env.Flush(a.target)
		env.Instret(2)
		a.phase = 1
		env.Syscall(sim.SysSleep, a.period)
	case 1:
		t0 := env.Now()
		env.Load(a.target)
		lat := env.Now() - t0
		env.Instret(4)
		a.obs = append(a.obs, lat <= a.threshold)
		a.round++
		a.phase = 0
	}
	return true
}
