package attack

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/sim"
)

// SpectreResult reports the Spectre-style covert-channel experiment: how
// much of the victim's secret the attacker reconstructed from the cache
// footprint of transient (secret-indexed) accesses.
type SpectreResult struct {
	Secret    []byte
	Recovered []byte
	// BytesCorrect counts exactly-recovered secret bytes.
	BytesCorrect int
	// Hits is the attacker's total probe hits.
	Hits int
}

// Accuracy returns the fraction of secret bytes recovered.
func (r SpectreResult) Accuracy() float64 {
	if len(r.Secret) == 0 {
		return 0
	}
	return float64(r.BytesCorrect) / float64(len(r.Secret))
}

// spectreVictim models the transmit half of a Spectre gadget: for each
// secret byte it performs the transient load `probeArray[secret[i] * 64]`
// that speculative execution would leave in the cache. The architectural
// results of speculation are squashed, but the cache fill is not — which
// is precisely the reuse side channel TimeCache eliminates. One byte is
// transmitted per interleaved round.
type spectreVictim struct {
	probeBase uint64
	secret    []byte
	i         int
}

func (v *spectreVictim) Step(env sim.Env) bool {
	if v.i >= len(v.secret) {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	// The "speculative" access: secret-indexed line touch. Its value is
	// never used architecturally; only the cache state changes.
	env.Load(v.probeBase + uint64(v.secret[v.i])*cache.LineSize)
	env.Instret(6)
	v.i++
	env.Syscall(sim.SysYield, 0)
	return true
}

// spectreAttacker is the receive half: flush+reload over all 256 probe
// lines, one round per secret byte. The hit index is the byte value.
type spectreAttacker struct {
	probeBase uint64
	rounds    int
	threshold uint64

	round     int
	phase     int
	flushIdx  int
	probeIdx  int
	hitIdx    int
	recovered []byte
	hits      int
}

func (a *spectreAttacker) Step(env sim.Env) bool {
	switch a.phase {
	case 0: // flush the entire probe array, then let the victim transmit
		if a.round >= a.rounds {
			env.Syscall(sim.SysExit, 0)
			return false
		}
		for i := 0; i < 256; i++ {
			env.Flush(a.probeBase + uint64(i)*cache.LineSize)
		}
		env.Instret(256)
		a.hitIdx = -1
		a.probeIdx = 0
		a.phase = 1
		env.Syscall(sim.SysYield, 0)
	case 1: // reload: time every line; the hit reveals the byte
		for ; a.probeIdx < 256; a.probeIdx++ {
			t0 := env.Now()
			env.Load(a.probeBase + uint64(a.probeIdx)*cache.LineSize)
			if env.Now()-t0 <= a.threshold {
				a.hitIdx = a.probeIdx
				a.hits++
			}
			env.Instret(4)
		}
		if a.hitIdx >= 0 {
			a.recovered = append(a.recovered, byte(a.hitIdx))
		} else {
			a.recovered = append(a.recovered, 0)
		}
		a.round++
		a.phase = 0
	}
	return true
}

// RunSpectre demonstrates that breaking the reuse channel also breaks
// Spectre-style transmission (paper §VIII-B2, §IX): the attacker recovers
// the victim's secret bytes from a shared probe array on the baseline and
// learns nothing under TimeCache.
func RunSpectre(mode cache.SecMode, secret []byte) (SpectreResult, error) {
	if len(secret) == 0 {
		return SpectreResult{}, fmt.Errorf("attack: empty secret")
	}
	m := NewMachine(mode, 1)
	size := uint64(256 * cache.LineSize)
	asV, err := m.MapSharedAt("spectre_probe", size)
	if err != nil {
		return SpectreResult{}, err
	}
	asA, err := m.MapSharedAt("spectre_probe", size)
	if err != nil {
		return SpectreResult{}, err
	}
	vic := &spectreVictim{probeBase: sharedBase, secret: secret}
	att := &spectreAttacker{probeBase: sharedBase, rounds: len(secret), threshold: m.HitThreshold()}
	// The attacker runs first so its flush precedes the victim's transmit.
	if _, err := m.K.Spawn("spectre-attacker", att, asA, 0); err != nil {
		return SpectreResult{}, err
	}
	if _, err := m.K.Spawn("spectre-victim", vic, asV, 0); err != nil {
		return SpectreResult{}, err
	}
	m.K.Run(4_000_000_000)
	if !m.K.AllExited() {
		return SpectreResult{}, fmt.Errorf("attack: spectre experiment did not finish")
	}
	res := SpectreResult{Secret: secret, Recovered: att.recovered, Hits: att.hits}
	for i := range secret {
		if i < len(att.recovered) && att.recovered[i] == secret[i] {
			res.BytesCorrect++
		}
	}
	return res, nil
}
