package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering checks results land in index order regardless of the
// completion order the scheduler produces.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 64
		got, err := Map(n, Options{Workers: workers}, func(i int) (int, error) {
			// Earlier jobs sleep longer so completion order inverts.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapError checks a failing job cancels the pool and its error (not a
// later job's) surfaces.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(1000, Options{Workers: 4}, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("job %d: %w", i, boom)
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := started.Load(); n == 1000 {
		t.Fatal("pool ran every job despite an early failure")
	}
}

// TestMapErrorLowestIndex checks the deterministic-error rule: when several
// jobs fail, the lowest-indexed observed failure wins.
func TestMapErrorLowestIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := Map(2, Options{Workers: 2}, func(i int) (int, error) {
		if i == 0 {
			time.Sleep(time.Millisecond) // fail after job 1 has already failed
			return 0, errLow
		}
		return 0, errHigh
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want %v", err, errLow)
	}
}

// TestMapSequentialErrorSemantics checks Workers=1 returns the first error
// without running later jobs, exactly like a plain loop.
func TestMapSequentialErrorSemantics(t *testing.T) {
	var ran []int
	_, err := Map(10, Options{Workers: 1}, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("err = %v, want stop", err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran %v, want exactly [0 1 2]", ran)
	}
}

// TestProgress checks the callback reports monotonically increasing counts
// up to n.
func TestProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls []int
		_, err := Map(20, Options{Workers: workers, Progress: func(d, total int) {
			if total != 20 {
				t.Fatalf("total = %d, want 20", total)
			}
			calls = append(calls, d)
		}}, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != 20 {
			t.Fatalf("workers=%d: %d progress calls, want 20", workers, len(calls))
		}
		for i := 1; i < len(calls); i++ {
			if calls[i] <= calls[i-1] {
				t.Fatalf("workers=%d: progress not monotonic: %v", workers, calls)
			}
		}
	}
}

// TestMapEmpty checks n=0 is a no-op.
func TestMapEmpty(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

// TestDo checks the no-result wrapper propagates errors.
func TestDo(t *testing.T) {
	var sum atomic.Int64
	if err := Do(100, Options{Workers: 8}, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}
