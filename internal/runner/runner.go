// Package runner fans independent simulation runs out across a pool of
// worker goroutines while keeping results exactly as deterministic as a
// sequential loop.
//
// Every experiment sweep in this repository (workload pair × mode × LLC
// size × defense) is embarrassingly parallel: each run constructs its own
// Machine — kernel, hierarchy, physical memory — so runs share no mutable
// state and the per-run results are bit-identical regardless of scheduling.
// The pool only changes *when* runs execute, never *what* they compute;
// results are delivered in index order, so downstream CSV/markdown output
// is byte-identical between -j1 and -jN.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options controls a pool invocation.
type Options struct {
	// Workers is the number of concurrent workers. Values <= 0 (and 1)
	// select runtime.GOMAXPROCS(0) and sequential execution respectively.
	Workers int
	// Progress, when non-nil, is called after each job finishes with the
	// number of completed jobs and the total. Calls are serialized but may
	// arrive in any completion order; done is monotonically increasing.
	Progress func(done, total int)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order. On failure the pool stops handing out new jobs,
// waits for in-flight jobs, and returns the error of the lowest-indexed
// failed job (with a single worker that is always the first error, i.e.
// sequential semantics). The partial results are discarded on error.
func Map[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, opts, fn)
}

// MapCtx is Map bounded by a context: no new job starts once ctx is
// cancelled, in-flight jobs are waited for, and the cancellation surfaces as
// ctx.Err() unless an earlier-indexed job already failed on its own.
func MapCtx[T any](ctx context.Context, n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkersCtx(ctx, n, opts, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWorkers is Map with per-worker state: newState runs once in each worker
// goroutine (and once total on the sequential path) and its value is handed
// to every fn call that worker makes. Sweeps use it to give each worker a
// machine.Pool, so consecutive jobs on one worker reuse a Reset machine
// instead of rebuilding; because a reset machine is indistinguishable from a
// fresh one, results remain bit-identical to Map at any worker count.
func MapWorkers[S, T any](n int, opts Options, newState func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	return MapWorkersCtx(context.Background(), n, opts, newState, fn)
}

// MapWorkersCtx is MapWorkers bounded by a context. Cancellation is checked
// before each job is handed out, so a cancelled sweep stops at the next run
// boundary; runs that are themselves ctx-aware (the harness passes the same
// context into the kernel) stop mid-run too. Results are all-or-nothing,
// exactly like an fn error.
func MapWorkersCtx[S, T any](ctx context.Context, n int, opts Options, newState func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, n)
	workers := opts.workers(n)

	if workers == 1 {
		// Sequential fast path: no goroutines, exactly today's behavior.
		s := newState()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(s, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next job index to hand out
		failed atomic.Bool  // set on first error: stop handing out jobs
		done   atomic.Int64 // completed jobs (success only), for Progress

		mu       sync.Mutex // guards firstErr/firstIdx and Progress calls
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)

	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failed.Store(true)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newState()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					record(i, err)
					return
				}
				r, err := fn(s, i)
				if err != nil {
					record(i, err)
					return
				}
				results[i] = r
				if opts.Progress != nil {
					d := int(done.Add(1))
					mu.Lock()
					opts.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstErr
	}
	return results, nil
}

// Do is Map for jobs with no result value.
func Do(n int, opts Options, fn func(i int) error) error {
	_, err := Map(n, opts, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
