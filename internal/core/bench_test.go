package core

import (
	"fmt"
	"testing"

	"timecache/internal/clock"
)

// switchBenchLines matches the paper's 2 MB LLC (32768 lines), the largest
// column the kernel saves/restores at each context switch.
const switchBenchLines = 32768

// fillTracker populates a tracker with an alternating two-context residency
// pattern so save/restore sees a realistic mixed column.
func fillTracker(tr Tracker) {
	for line := 0; line < tr.Lines(); line++ {
		tr.OnFill(line, line%tr.Contexts(), clock.Cycles(line))
		if line%3 == 0 {
			tr.OnFirstAccess(line, (line+1)%tr.Contexts())
		}
	}
}

// saveRestoreLoop is one benchmark iteration: the software half of a
// context switch with a reused buffer (save ctx 0's column, then restore it
// against an advancing Ts/now).
func saveRestoreLoop(b *testing.B, tr Tracker) {
	buf := make(SecVec, VecWords(tr.Lines()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SaveColumnInto(0, buf)
		tr.RestoreColumn(0, buf, uint64(i), uint64(i)+1)
	}
}

// BenchmarkSaveRestoreColumn measures the context-switch bookkeeping hot
// path for each tracker design. With buffer reuse every variant runs at
// 0 allocs/op (asserted by TestSaveRestoreColumnZeroAllocs).
func BenchmarkSaveRestoreColumn(b *testing.B) {
	b.Run("secarray", func(b *testing.B) {
		tr := NewSecArray(DefaultConfig(), switchBenchLines, 2)
		fillTracker(tr)
		saveRestoreLoop(b, tr)
	})
	b.Run("secarray-gatelevel", func(b *testing.B) {
		cfg := DefaultConfig()
		cfg.GateLevel = true
		tr := NewSecArray(cfg, switchBenchLines, 2)
		fillTracker(tr)
		saveRestoreLoop(b, tr)
	})
	b.Run("limited", func(b *testing.B) {
		cfg := DefaultConfig()
		cfg.MaxSharers = 2
		tr := NewLimitedTracker(cfg, switchBenchLines, 8)
		fillTracker(tr)
		saveRestoreLoop(b, tr)
	})
}

// TestSaveRestoreColumnZeroAllocs asserts the switch path performs no
// allocation once the caller reuses its SecVec buffer — the property the
// kernel's per-(process, cache) buffers rely on.
func TestSaveRestoreColumnZeroAllocs(t *testing.T) {
	gate := DefaultConfig()
	gate.GateLevel = true
	limited := DefaultConfig()
	limited.MaxSharers = 2
	trackers := map[string]Tracker{
		"secarray":           NewSecArray(DefaultConfig(), 1024, 2),
		"secarray-gatelevel": NewSecArray(gate, 1024, 2),
		"limited":            NewLimitedTracker(limited, 1024, 8),
	}
	for name, tr := range trackers {
		fillTracker(tr)
		buf := make(SecVec, VecWords(tr.Lines()))
		i := uint64(0)
		allocs := testing.AllocsPerRun(100, func() {
			tr.SaveColumnInto(0, buf)
			tr.RestoreColumn(0, buf, i, i+1)
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: save+restore allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// BenchmarkOnFill measures the per-fill column maintenance across context
// counts (the per-access cost the column-major layout must keep cheap).
func BenchmarkOnFill(b *testing.B) {
	for _, ctxs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("contexts-%d", ctxs), func(b *testing.B) {
			tr := NewSecArray(DefaultConfig(), 4096, ctxs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.OnFill(i%4096, i%ctxs, clock.Cycles(i))
			}
		})
	}
}
