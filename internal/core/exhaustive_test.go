package core

import "testing"

// TestExhaustiveSmallState model-checks the s-bit protocol: every sequence
// of operations up to a bounded depth on a tiny configuration (2 lines, 2
// contexts, 4 time steps between ops) is enumerated, and after every
// prefix two safety properties are checked against an independent
// specification:
//
//  1. Soundness: a context never sees a line copy it has not touched
//     (touched = filled it, or paid a first access since the fill).
//  2. The full-map and limited-pointer trackers agree on soundness — the
//     limited tracker's visible set is a subset of the full map's.
//
// Unlike the randomized property tests, this is exhaustive within its
// bounds: ~7^6 operation sequences, every interleaving included.
func TestExhaustiveSmallState(t *testing.T) {
	const (
		lines = 2
		ctxs  = 2
		depth = 6
	)
	type op struct {
		kind int // 0 fill, 1 firstAccess, 2 evict
		line int
		ctx  int
	}
	var ops []op
	for l := 0; l < lines; l++ {
		for c := 0; c < ctxs; c++ {
			ops = append(ops, op{0, l, c}, op{1, l, c})
		}
		ops = append(ops, op{2, l, 0})
	}

	// spec is the ground truth: has ctx touched the line's current copy?
	type spec [lines][ctxs]bool

	var run func(s *SecArray, lim *LimitedTracker, sp spec, now uint64, d int)
	checked := 0
	run = func(s *SecArray, lim *LimitedTracker, sp spec, now uint64, d int) {
		for l := 0; l < lines; l++ {
			for c := 0; c < ctxs; c++ {
				if s.Visible(l, c) != sp[l][c] {
					t.Fatalf("full map visibility diverges from spec at line %d ctx %d", l, c)
				}
				if lim.Visible(l, c) && !sp[l][c] {
					t.Fatalf("limited tracker grants unsound visibility at line %d ctx %d", l, c)
				}
			}
		}
		checked++
		if d == 0 {
			return
		}
		for _, o := range ops {
			// Clone the trackers and spec for this branch.
			s2 := NewSecArray(Config{TimestampBits: 32}, lines, ctxs)
			lim2 := NewLimitedTracker(Config{TimestampBits: 32, MaxSharers: 1}, lines, ctxs)
			// Rebuild by replay is expensive; instead snapshot via columns.
			for c := 0; c < ctxs; c++ {
				s2.RestoreColumn(c, s.SaveColumn(c), 0, 0)
				lim2.RestoreColumn(c, lim.SaveColumn(c), 0, 0)
			}
			// Copy timestamps so Restore semantics stay consistent.
			copy(s2.tc, s.tc)
			copy(lim2.tc, lim.tc)
			sp2 := sp
			switch o.kind {
			case 0:
				s2.OnFill(o.line, o.ctx, now)
				lim2.OnFill(o.line, o.ctx, now)
				for c := 0; c < ctxs; c++ {
					sp2[o.line][c] = c == o.ctx
				}
			case 1:
				s2.OnFirstAccess(o.line, o.ctx)
				lim2.OnFirstAccess(o.line, o.ctx)
				sp2[o.line][o.ctx] = true
			case 2:
				s2.OnEvict(o.line)
				lim2.OnEvict(o.line)
				for c := 0; c < ctxs; c++ {
					sp2[o.line][c] = false
				}
			}
			run(s2, lim2, sp2, now+1, d-1)
		}
	}

	s := NewSecArray(Config{TimestampBits: 32}, lines, ctxs)
	lim := NewLimitedTracker(Config{TimestampBits: 32, MaxSharers: 1}, lines, ctxs)
	run(s, lim, spec{}, 1, depth)
	if checked < 100_000 {
		t.Fatalf("exhaustive check covered only %d states; bounds too small", checked)
	}
}

// TestExhaustiveSaveRestore enumerates every (fill time, preempt time,
// refill time) ordering on one line and checks RestoreColumn grants
// visibility exactly when the line was untouched during the preemption.
func TestExhaustiveSaveRestore(t *testing.T) {
	for fill := uint64(1); fill <= 4; fill++ {
		for ts := uint64(1); ts <= 5; ts++ {
			for refill := uint64(0); refill <= 6; refill++ { // 0 = no refill
				s := NewSecArray(Config{TimestampBits: 32}, 1, 2)
				s.OnFill(0, 0, fill)
				if fill > ts {
					continue // the process could not have seen a future fill
				}
				v := s.SaveColumn(0)
				s.ClearColumn(0)
				if refill > 0 {
					s.OnEvict(0)
					s.OnFill(0, 1, refill)
				}
				now := uint64(10)
				s.RestoreColumn(0, v, ts, now)
				wantVisible := refill == 0 || refill <= ts
				if refill == 0 {
					// no refill: line still holds the copy ctx 0 saw
					wantVisible = true
				}
				if got := s.Visible(0, 0); got != wantVisible {
					t.Fatalf("fill=%d ts=%d refill=%d: visible=%v want %v",
						fill, ts, refill, got, wantVisible)
				}
			}
		}
	}
}
