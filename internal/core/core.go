// Package core implements the paper's primary contribution: per-process
// cache line visibility via per-hardware-context security bits (s-bits), a
// per-line fill timestamp Tc, and the context-switch update that reconciles
// a process's restored s-bits against the current cache contents by
// comparing Tc with the process's preemption timestamp Ts.
//
// The package is cache-geometry agnostic: a SecArray covers the lines of one
// cache, with one s-bit column per hardware context sharing that cache. The
// cache model (internal/cache) consults it on every access; the kernel
// (internal/kernel) saves/restores columns at context switches.
package core

import (
	"fmt"
	"math/bits"

	"timecache/internal/bitserial"
	"timecache/internal/clock"
)

// Config controls the TimeCache security state for one cache.
type Config struct {
	// TimestampBits is the Tc width (32 in the paper's evaluation).
	TimestampBits uint
	// GateLevel routes context-switch timestamp comparisons through the
	// gate-level bit-serial model instead of the fast reference path.
	GateLevel bool
	// MaxSharers, when positive, replaces the full s-bit map with the
	// limited-pointer tracker (§VI-C area optimization): at most this many
	// contexts are tracked per line, with conservative eviction on
	// overflow. Zero keeps the paper's full per-context s-bits.
	MaxSharers int
}

// DefaultConfig matches the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{TimestampBits: clock.DefaultTimestampBits}
}

// SecVec is a saved s-bit column: one bit per cache line, packed 64 per
// word. A nil SecVec means "no bits set" (a process that never ran on this
// cache), which is what a newly created process restores.
type SecVec []uint64

// VecWords returns the number of words a SecVec needs for `lines` lines.
func VecWords(lines int) int { return (lines + 63) / 64 }

// Bit reports whether line's bit is set in the vector.
func (v SecVec) Bit(line int) bool {
	if v == nil {
		return false
	}
	return v[line/64]>>(uint(line%64))&1 == 1
}

// SecArray holds the TimeCache hardware state for one cache: the per-line,
// per-context s-bits and the per-line fill timestamps.
//
// The s-bits are stored column-major: one packed bit vector per hardware
// context (64 lines per word), mirroring the SecVec layout software saves
// and restores. Column operations — the per-context-switch hot path — are
// therefore plain word operations over already-packed vectors: SaveColumn
// is a copy, ClearColumn a memclr, and RestoreColumn an AND-NOT of the
// saved column with the comparator's Tc>Ts mask, 64 lines per iteration.
//
// Per-access methods (Visible, OnFill, OnFirstAccess, OnEvict) do not
// re-validate their arguments: line indices come from the owning cache's
// geometry and context indices are validated once at the column-operation
// (context switch) boundary and at construction. Out-of-range values still
// fault via slice bounds rather than corrupting state.
type SecArray struct {
	cfg      Config
	lines    int
	contexts int
	words    int // words per column = VecWords(lines)

	// cols holds the per-context s-bit columns back to back:
	// cols[ctx*words .. (ctx+1)*words-1] is context ctx's packed column.
	cols []uint64
	// tc[line] is the truncated fill timestamp of the line.
	tc []uint64
	// arr mirrors tc in the transposed gate-level SRAM when GateLevel is on.
	arr *bitserial.Array
	// gtBuf is the reusable Tc>Ts mask buffer for RestoreColumn.
	gtBuf []uint64

	// Stats observable by the harness.
	Compares     uint64 // context-switch comparison operations run
	ResetsByComp uint64 // restored s-bits cleared because Tc > Ts
	Rollovers    uint64 // restores that hit the rollover path
}

// NewSecArray creates security state for a cache with the given number of
// lines, shared by the given number of hardware contexts (max 64).
func NewSecArray(cfg Config, lines, contexts int) *SecArray {
	if lines <= 0 {
		panic("core: line count must be positive")
	}
	if contexts <= 0 || contexts > 64 {
		panic(fmt.Sprintf("core: context count %d out of range [1,64]", contexts))
	}
	if cfg.TimestampBits == 0 {
		cfg.TimestampBits = clock.DefaultTimestampBits
	}
	words := VecWords(lines)
	s := &SecArray{
		cfg:      cfg,
		lines:    lines,
		contexts: contexts,
		words:    words,
		cols:     make([]uint64, contexts*words),
		tc:       make([]uint64, lines),
		gtBuf:    make([]uint64, words),
	}
	if cfg.GateLevel {
		s.arr = bitserial.NewArray(lines, cfg.TimestampBits)
	}
	return s
}

// Lines returns the number of cache lines covered.
func (s *SecArray) Lines() int { return s.lines }

// Contexts returns the number of hardware contexts sharing the cache.
func (s *SecArray) Contexts() int { return s.contexts }

// col returns ctx's packed column.
func (s *SecArray) col(ctx int) []uint64 {
	return s.cols[ctx*s.words : (ctx+1)*s.words : (ctx+1)*s.words]
}

// Visible reports whether the line's current resident copy has already been
// seen by the context, i.e. whether a tag hit may be treated as a real hit.
func (s *SecArray) Visible(line, ctx int) bool {
	return s.cols[ctx*s.words+line>>6]>>(uint(line)&63)&1 == 1
}

// OnFill records a cache line fill by ctx at time now: the filling context's
// s-bit is set, all other contexts' s-bits are reset, and Tc is stamped.
func (s *SecArray) OnFill(line, ctx int, now clock.Cycles) {
	w, mask := line>>6, uint64(1)<<(uint(line)&63)
	for c := 0; c < s.contexts; c++ {
		s.cols[c*s.words+w] &^= mask
	}
	s.cols[ctx*s.words+w] |= mask
	t := uint64(clock.Trunc(now, s.cfg.TimestampBits))
	s.tc[line] = t
	if s.arr != nil {
		s.arr.Store(line, t)
	}
}

// OnFirstAccess records that ctx has now paid the first-access delay for a
// resident line; subsequent accesses by ctx proceed as hits.
func (s *SecArray) OnFirstAccess(line, ctx int) {
	s.cols[ctx*s.words+line>>6] |= 1 << (uint(line) & 63)
}

// OnEvict clears all s-bits for a line being evicted or invalidated.
func (s *SecArray) OnEvict(line int) {
	w, mask := line>>6, uint64(1)<<(uint(line)&63)
	for c := 0; c < s.contexts; c++ {
		s.cols[c*s.words+w] &^= mask
	}
}

// Tc returns the truncated fill timestamp of a line (for tests and stats).
func (s *SecArray) Tc(line int) uint64 {
	return s.tc[line]
}

// SaveColumn extracts the s-bit column for ctx — the process-specific
// caching context software writes to memory at preemption. It allocates a
// fresh SecVec; the kernel's switch path uses SaveColumnInto with a
// per-process buffer instead.
func (s *SecArray) SaveColumn(ctx int) SecVec {
	v := make(SecVec, s.words)
	s.SaveColumnInto(ctx, v)
	return v
}

// SaveColumnInto copies the s-bit column for ctx into dst, which must have
// VecWords(Lines()) words. It performs no allocation: callers that switch
// frequently keep one buffer per (process, cache) and reuse it.
func (s *SecArray) SaveColumnInto(ctx int, dst SecVec) {
	s.checkCtx(ctx)
	if len(dst) != s.words {
		panic(fmt.Sprintf("core: SecVec has %d words, want %d", len(dst), s.words))
	}
	copy(dst, s.col(ctx))
}

// ClearColumn resets every s-bit of a context (used when a brand-new
// process is scheduled, and on the rollover path). The column is packed, so
// this clears 64 lines per word store.
func (s *SecArray) ClearColumn(ctx int) {
	s.checkCtx(ctx)
	col := s.col(ctx)
	for i := range col {
		col[i] = 0
	}
}

// RestoreColumn installs a saved s-bit column for ctx and brings it
// up-to-date with the current cache contents, as the hardware does when a
// process resumes:
//
//   - If the truncated timestamp counter rolled over between ts (the
//     process's preemption time) and now, every restored s-bit is reset
//     (paper §VI-C): lines refilled after the wrap can carry smaller Tc.
//   - Otherwise every restored s-bit whose line has Tc > Ts is reset — the
//     line was (re)filled while the process was preempted, so the process
//     has not seen this copy.
//
// ts and now are full 64-bit cycle counts kept by software; the hardware
// comparison uses the truncated values. Both the saved column and the
// comparator output are packed bit vectors, so the reconciliation is an
// AND-NOT per word — 64 lines per iteration, mirroring the hardware's
// timestamp-parallel comparison.
func (s *SecArray) RestoreColumn(ctx int, v SecVec, ts, now clock.Cycles) {
	s.checkCtx(ctx)
	if v != nil && len(v) != s.words {
		panic(fmt.Sprintf("core: SecVec has %d words, want %d", len(v), s.words))
	}
	col := s.col(ctx)
	if v == nil {
		for i := range col {
			col[i] = 0
		}
		return
	}
	if clock.RolledOver(ts, now, s.cfg.TimestampBits) {
		s.Rollovers++
		for i := range col {
			col[i] = 0
		}
		return
	}
	s.Compares++
	tsTrunc := uint64(clock.Trunc(ts, s.cfg.TimestampBits))
	var gt []uint64
	if s.arr != nil {
		gt = s.arr.CompareGTInto(tsTrunc, s.gtBuf)
	} else {
		gt = bitserial.ReferenceGTInto(s.tc, tsTrunc, s.cfg.TimestampBits, s.gtBuf)
	}
	// Mask stray bits beyond the last line so a padded saved column cannot
	// resurrect lines the array does not cover.
	tailMask := ^uint64(0)
	if r := uint(s.lines) % 64; r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	last := s.words - 1
	var resets uint64
	for w := 0; w < s.words; w++ {
		vw := v[w]
		if w == last {
			vw &= tailMask
		}
		resets += uint64(bits.OnesCount64(vw & gt[w]))
		col[w] = vw &^ gt[w]
	}
	s.ResetsByComp += resets
}

// Reset clears every s-bit column, all fill timestamps (including the
// gate-level mirror when present), and the stats counters without
// reallocating, returning the array to its freshly constructed state.
func (s *SecArray) Reset() {
	clear(s.cols)
	clear(s.tc)
	if s.arr != nil {
		for line := 0; line < s.lines; line++ {
			s.arr.Store(line, 0)
		}
	}
	s.Compares = 0
	s.ResetsByComp = 0
	s.Rollovers = 0
}

// checkCtx validates a context index at the column-operation boundary.
func (s *SecArray) checkCtx(ctx int) {
	if ctx < 0 || ctx >= s.contexts {
		panic(fmt.Sprintf("core: context %d out of range [0,%d)", ctx, s.contexts))
	}
}
