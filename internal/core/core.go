// Package core implements the paper's primary contribution: per-process
// cache line visibility via per-hardware-context security bits (s-bits), a
// per-line fill timestamp Tc, and the context-switch update that reconciles
// a process's restored s-bits against the current cache contents by
// comparing Tc with the process's preemption timestamp Ts.
//
// The package is cache-geometry agnostic: a SecArray covers the lines of one
// cache, with one s-bit column per hardware context sharing that cache. The
// cache model (internal/cache) consults it on every access; the kernel
// (internal/kernel) saves/restores columns at context switches.
package core

import (
	"fmt"

	"timecache/internal/bitserial"
	"timecache/internal/clock"
)

// Config controls the TimeCache security state for one cache.
type Config struct {
	// TimestampBits is the Tc width (32 in the paper's evaluation).
	TimestampBits uint
	// GateLevel routes context-switch timestamp comparisons through the
	// gate-level bit-serial model instead of the fast reference path.
	GateLevel bool
	// MaxSharers, when positive, replaces the full s-bit map with the
	// limited-pointer tracker (§VI-C area optimization): at most this many
	// contexts are tracked per line, with conservative eviction on
	// overflow. Zero keeps the paper's full per-context s-bits.
	MaxSharers int
}

// DefaultConfig matches the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{TimestampBits: clock.DefaultTimestampBits}
}

// SecVec is a saved s-bit column: one bit per cache line, packed 64 per
// word. A nil SecVec means "no bits set" (a process that never ran on this
// cache), which is what a newly created process restores.
type SecVec []uint64

// VecWords returns the number of words a SecVec needs for `lines` lines.
func VecWords(lines int) int { return (lines + 63) / 64 }

// Bit reports whether line's bit is set in the vector.
func (v SecVec) Bit(line int) bool {
	if v == nil {
		return false
	}
	return v[line/64]>>(uint(line%64))&1 == 1
}

// SecArray holds the TimeCache hardware state for one cache: the per-line,
// per-context s-bits and the per-line fill timestamps.
type SecArray struct {
	cfg      Config
	lines    int
	contexts int

	// sbits[line] is a bitmask over hardware contexts: bit c set means
	// context c has seen the current resident copy of the line.
	sbits []uint64
	// tc[line] is the truncated fill timestamp of the line.
	tc []uint64
	// arr mirrors tc in the transposed gate-level SRAM when GateLevel is on.
	arr *bitserial.Array

	// Stats observable by the harness.
	Compares     uint64 // context-switch comparison operations run
	ResetsByComp uint64 // restored s-bits cleared because Tc > Ts
	Rollovers    uint64 // restores that hit the rollover path
}

// NewSecArray creates security state for a cache with the given number of
// lines, shared by the given number of hardware contexts (max 64).
func NewSecArray(cfg Config, lines, contexts int) *SecArray {
	if lines <= 0 {
		panic("core: line count must be positive")
	}
	if contexts <= 0 || contexts > 64 {
		panic(fmt.Sprintf("core: context count %d out of range [1,64]", contexts))
	}
	if cfg.TimestampBits == 0 {
		cfg.TimestampBits = clock.DefaultTimestampBits
	}
	s := &SecArray{
		cfg:      cfg,
		lines:    lines,
		contexts: contexts,
		sbits:    make([]uint64, lines),
		tc:       make([]uint64, lines),
	}
	if cfg.GateLevel {
		s.arr = bitserial.NewArray(lines, cfg.TimestampBits)
	}
	return s
}

// Lines returns the number of cache lines covered.
func (s *SecArray) Lines() int { return s.lines }

// Contexts returns the number of hardware contexts sharing the cache.
func (s *SecArray) Contexts() int { return s.contexts }

// Visible reports whether the line's current resident copy has already been
// seen by the context, i.e. whether a tag hit may be treated as a real hit.
func (s *SecArray) Visible(line, ctx int) bool {
	s.check(line, ctx)
	return s.sbits[line]>>uint(ctx)&1 == 1
}

// OnFill records a cache line fill by ctx at time now: the filling context's
// s-bit is set, all other contexts' s-bits are reset, and Tc is stamped.
func (s *SecArray) OnFill(line, ctx int, now clock.Cycles) {
	s.check(line, ctx)
	s.sbits[line] = 1 << uint(ctx)
	t := uint64(clock.Trunc(now, s.cfg.TimestampBits))
	s.tc[line] = t
	if s.arr != nil {
		s.arr.Store(line, t)
	}
}

// OnFirstAccess records that ctx has now paid the first-access delay for a
// resident line; subsequent accesses by ctx proceed as hits.
func (s *SecArray) OnFirstAccess(line, ctx int) {
	s.check(line, ctx)
	s.sbits[line] |= 1 << uint(ctx)
}

// OnEvict clears all s-bits for a line being evicted or invalidated.
func (s *SecArray) OnEvict(line int) {
	s.check(line, 0)
	s.sbits[line] = 0
}

// Tc returns the truncated fill timestamp of a line (for tests and stats).
func (s *SecArray) Tc(line int) uint64 {
	s.check(line, 0)
	return s.tc[line]
}

// SaveColumn extracts the s-bit column for ctx — the process-specific
// caching context software writes to memory at preemption.
func (s *SecArray) SaveColumn(ctx int) SecVec {
	s.check(0, ctx)
	v := make(SecVec, VecWords(s.lines))
	bit := uint64(1) << uint(ctx)
	for line := 0; line < s.lines; line++ {
		if s.sbits[line]&bit != 0 {
			v[line/64] |= 1 << uint(line%64)
		}
	}
	return v
}

// ClearColumn resets every s-bit of a context (used when a brand-new
// process is scheduled, and on the rollover path).
func (s *SecArray) ClearColumn(ctx int) {
	s.check(0, ctx)
	mask := ^(uint64(1) << uint(ctx))
	for line := range s.sbits {
		s.sbits[line] &= mask
	}
}

// RestoreColumn installs a saved s-bit column for ctx and brings it
// up-to-date with the current cache contents, as the hardware does when a
// process resumes:
//
//   - If the truncated timestamp counter rolled over between ts (the
//     process's preemption time) and now, every restored s-bit is reset
//     (paper §VI-C): lines refilled after the wrap can carry smaller Tc.
//   - Otherwise every restored s-bit whose line has Tc > Ts is reset — the
//     line was (re)filled while the process was preempted, so the process
//     has not seen this copy.
//
// ts and now are full 64-bit cycle counts kept by software; the hardware
// comparison uses the truncated values.
func (s *SecArray) RestoreColumn(ctx int, v SecVec, ts, now clock.Cycles) {
	s.check(0, ctx)
	if v != nil && len(v) != VecWords(s.lines) {
		panic(fmt.Sprintf("core: SecVec has %d words, want %d", len(v), VecWords(s.lines)))
	}
	s.ClearColumn(ctx)
	if v == nil {
		return
	}
	if clock.RolledOver(ts, now, s.cfg.TimestampBits) {
		s.Rollovers++
		return
	}
	s.Compares++
	tsTrunc := uint64(clock.Trunc(ts, s.cfg.TimestampBits))
	var gt []uint64
	if s.arr != nil {
		gt = s.arr.CompareGT(tsTrunc)
	} else {
		gt = bitserial.ReferenceGT(s.tc, tsTrunc, s.cfg.TimestampBits)
	}
	bit := uint64(1) << uint(ctx)
	for line := 0; line < s.lines; line++ {
		w, b := line/64, uint(line%64)
		if v[w]>>b&1 == 0 {
			continue
		}
		if gt[w]>>b&1 == 1 {
			s.ResetsByComp++
			continue // line is newer than Ts: stay invisible
		}
		s.sbits[line] |= bit
	}
}

func (s *SecArray) check(line, ctx int) {
	if line < 0 || line >= s.lines {
		panic(fmt.Sprintf("core: line %d out of range [0,%d)", line, s.lines))
	}
	if ctx < 0 || ctx >= s.contexts {
		panic(fmt.Sprintf("core: context %d out of range [0,%d)", ctx, s.contexts))
	}
}
