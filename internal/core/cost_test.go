package core

import "testing"

func TestSbitTransfersMatchPaper(t *testing.T) {
	// Paper §VI-D: a 64 KB L1 (1024 lines at 64 B) needs 2 transfers of
	// 64 bytes; an 8 MB LLC (131072 lines) needs 256.
	if got := SbitTransfers(1024); got != 2 {
		t.Errorf("64KB cache: %d transfers, want 2", got)
	}
	if got := SbitTransfers(131072); got != 256 {
		t.Errorf("8MB cache: %d transfers, want 256", got)
	}
	// The paper's simulated caches: 32 KB L1 = 512 lines = 64 B = 1 transfer;
	// 2 MB LLC = 32768 lines = 4 KB = 64 transfers.
	if got := SbitTransfers(512); got != 1 {
		t.Errorf("32KB cache: %d transfers, want 1", got)
	}
	if got := SbitTransfers(32768); got != 64 {
		t.Errorf("2MB cache: %d transfers, want 64", got)
	}
}

func TestSbitBytesRoundsUp(t *testing.T) {
	if got := SbitBytes(1); got != 64 {
		t.Errorf("1 line: %d bytes, want 64 (one transfer minimum)", got)
	}
	if got := SbitBytes(513); got != 128 {
		t.Errorf("513 lines: %d bytes, want 128", got)
	}
}

func TestDMACostFixed(t *testing.T) {
	m := DefaultCostModel()
	// 1.08 µs at 2 GHz = 2160 cycles, independent of cache sizes.
	if c := m.SwitchCost([]int{512, 512, 32768}); c != 2160 {
		t.Errorf("DMA switch cost = %d, want 2160", c)
	}
	if c := m.SwitchCost(nil); c != 2160 {
		t.Errorf("DMA switch cost = %d, want 2160", c)
	}
}

func TestCopyCostScalesWithCaches(t *testing.T) {
	m := CostModel{TransferCycles: 100}
	// save+restore for each cache: 2*(1+1+64) transfers * 100 cycles.
	want := uint64(2*(1+1+64)) * 100
	if c := m.SwitchCost([]int{512, 512, 32768}); c != want {
		t.Errorf("copy switch cost = %d, want %d", c, want)
	}
}

func TestSelectiveFlushCostScalesWithLines(t *testing.T) {
	// Fixed walk setup plus a small per-invalidated-line increment.
	if c := SelectiveFlushCost(0); c != SelectiveFlushBaseCycles {
		t.Errorf("SelectiveFlushCost(0) = %d, want %d", c, SelectiveFlushBaseCycles)
	}
	want := uint64(SelectiveFlushBaseCycles + 64*SelectiveFlushLineCycles)
	if c := SelectiveFlushCost(64); c != want {
		t.Errorf("SelectiveFlushCost(64) = %d, want %d", c, want)
	}
}
