package core

// Cost model for the s-bit save/restore bookkeeping at a context switch
// (paper §VI-D). Two mechanisms are modeled:
//
//   - Copy: the CPU copies the s-bit column through the regular bit-line
//     interface in 64-byte transfers (2 transfers for a 64 KB L1, 256 for an
//     8 MB LLC). The paper measures 2.4 µs for an 8 MB cache on an i7-7700.
//   - DMA: a single DMA channel moves the buffer; the paper measures
//     1.08 µs on a Xeon for a buffer sized for its simulated system, and
//     charges that per context switch in simulation. We do the same.

// SbitBytes returns the size in bytes of one context's s-bit column for a
// cache with the given number of lines (one bit per line, rounded up to a
// 64-byte transfer).
func SbitBytes(lines int) int {
	bytes := (lines + 7) / 8
	const transfer = 64
	return (bytes + transfer - 1) / transfer * transfer
}

// SbitTransfers returns the number of 64-byte memory accesses needed to save
// or restore one context's s-bit column.
func SbitTransfers(lines int) int { return SbitBytes(lines) / 64 }

// CostModel computes the cycles charged at each context switch for s-bit
// bookkeeping.
type CostModel struct {
	// UseDMA selects the DMA path (fixed DMACycles per switch) instead of
	// the per-transfer copy path.
	UseDMA bool
	// DMACycles is the fixed cost per switch when UseDMA is set. The paper
	// measured 1.08 µs, i.e. 2160 cycles at the simulated 2 GHz.
	DMACycles uint64
	// TransferCycles is the cost of one 64-byte transfer on the copy path.
	TransferCycles uint64
}

// DefaultCostModel reproduces the paper's simulation setup: a 1.08 µs DMA
// charged on every context switch, at 2 GHz.
func DefaultCostModel() CostModel {
	return CostModel{UseDMA: true, DMACycles: 2160}
}

// SwitchCost returns the cycles to save one column and restore another for
// caches with the given line counts (both directions happen per switch).
func (m CostModel) SwitchCost(lineCounts []int) uint64 {
	if m.UseDMA {
		return m.DMACycles
	}
	var transfers int
	for _, lines := range lineCounts {
		transfers += 2 * SbitTransfers(lines) // save + restore
	}
	return uint64(transfers) * m.TransferCycles
}

// Selective-flush cost model (FASE, arXiv:2204.05508): instead of saving and
// restoring metadata, the switch path walks the private caches' valid bits
// and invalidates the lines not owned by the incoming process. The hardware
// proposal pipelines the walk, so the charge is a fixed setup plus a small
// per-invalidated-line increment — far below a clflush per line.
const (
	// SelectiveFlushBaseCycles is the fixed per-switch walk setup.
	SelectiveFlushBaseCycles = 100
	// SelectiveFlushLineCycles is the incremental cost per invalidated line.
	SelectiveFlushLineCycles = 2
)

// SelectiveFlushCost returns the switch-time cycles to selectively
// invalidate n lines under the FASE-style model.
func SelectiveFlushCost(n int) uint64 {
	return SelectiveFlushBaseCycles + uint64(n)*SelectiveFlushLineCycles
}
