package core

import (
	"fmt"
	"math/bits"

	"timecache/internal/clock"
)

// Tracker is the per-cache TimeCache security state abstraction. Two
// implementations exist:
//
//   - SecArray: the paper's design, one s-bit per hardware context per line
//     (n bits/line for n contexts).
//   - LimitedTracker: the §VI-C scaling proposal — limited pointers as in
//     coherence directories [Agarwal et al., ISCA'88], tracking at most k
//     sharers per line in k·log2(n) bits. Overflow is resolved
//     conservatively: an existing sharer is evicted and will pay an extra
//     first-access miss. Security never weakens; only performance can.
type Tracker interface {
	// Lines returns the number of cache lines covered.
	Lines() int
	// Contexts returns the number of hardware contexts sharing the cache.
	Contexts() int
	// Visible reports whether ctx has seen the line's resident copy.
	Visible(line, ctx int) bool
	// OnFill records a fill by ctx at time now, resetting other contexts.
	OnFill(line, ctx int, now clock.Cycles)
	// OnFirstAccess records that ctx has paid the first-access delay.
	OnFirstAccess(line, ctx int)
	// OnEvict clears all visibility for an evicted/invalidated line.
	OnEvict(line int)
	// SaveColumn extracts ctx's visibility as a bit vector (software save).
	SaveColumn(ctx int) SecVec
	// SaveColumnInto writes ctx's visibility into dst, which must have
	// VecWords(Lines()) words, without allocating. Frequent switchers keep
	// one buffer per (process, cache) and reuse it across switches.
	SaveColumnInto(ctx int, dst SecVec)
	// ClearColumn removes all of ctx's visibility.
	ClearColumn(ctx int)
	// RestoreColumn installs a saved column, reconciling against Tc/Ts.
	RestoreColumn(ctx int, v SecVec, ts, now clock.Cycles)
	// Reset clears all visibility, timestamps, and stats without
	// reallocating, returning the tracker to its freshly constructed state
	// for machine reuse.
	Reset()
}

// Compile-time checks.
var (
	_ Tracker = (*SecArray)(nil)
	_ Tracker = (*LimitedTracker)(nil)
)

// NewTracker constructs the tracker selected by cfg: a full-map SecArray
// when MaxSharers is zero, otherwise a LimitedTracker with that many
// pointer slots per line.
func NewTracker(cfg Config, lines, contexts int) Tracker {
	if cfg.MaxSharers > 0 {
		return NewLimitedTracker(cfg, lines, contexts)
	}
	return NewSecArray(cfg, lines, contexts)
}

// LimitedTracker tracks at most MaxSharers contexts per line using pointer
// slots, the directory-style area optimization the paper sketches for
// server-class LLCs (§VI-C): k·log2(n) bits per line instead of n.
type LimitedTracker struct {
	cfg      Config
	lines    int
	contexts int
	k        int

	// slots[line*k .. line*k+k-1] hold context ids; slotValid the
	// corresponding valid bits.
	slots     []uint8
	slotValid []bool
	tc        []uint64

	// clockHand drives round-robin victim selection on overflow.
	clockHand int

	// OverflowEvictions counts sharers dropped because a line's pointer
	// slots were full — each costs the dropped context one extra
	// first-access miss later (performance, never security).
	OverflowEvictions uint64
	// Rollovers counts restores that hit the rollover path.
	Rollovers uint64
}

// NewLimitedTracker creates a limited-pointer tracker with cfg.MaxSharers
// slots per line.
func NewLimitedTracker(cfg Config, lines, contexts int) *LimitedTracker {
	if lines <= 0 {
		panic("core: line count must be positive")
	}
	if contexts <= 0 || contexts > 256 {
		panic(fmt.Sprintf("core: context count %d out of range [1,256]", contexts))
	}
	k := cfg.MaxSharers
	if k <= 0 || k > contexts {
		panic(fmt.Sprintf("core: MaxSharers %d out of range [1,%d]", k, contexts))
	}
	if cfg.TimestampBits == 0 {
		cfg.TimestampBits = clock.DefaultTimestampBits
	}
	return &LimitedTracker{
		cfg:       cfg,
		lines:     lines,
		contexts:  contexts,
		k:         k,
		slots:     make([]uint8, lines*k),
		slotValid: make([]bool, lines*k),
		tc:        make([]uint64, lines),
	}
}

// Lines implements Tracker.
func (t *LimitedTracker) Lines() int { return t.lines }

// Contexts implements Tracker.
func (t *LimitedTracker) Contexts() int { return t.contexts }

func (t *LimitedTracker) check(line, ctx int) {
	if line < 0 || line >= t.lines {
		panic(fmt.Sprintf("core: line %d out of range [0,%d)", line, t.lines))
	}
	if ctx < 0 || ctx >= t.contexts {
		panic(fmt.Sprintf("core: context %d out of range [0,%d)", ctx, t.contexts))
	}
}

// Visible implements Tracker. Like SecArray, per-access methods trust the
// owning cache's geometry and skip argument re-validation; slice bounds
// still fault on garbage indices.
func (t *LimitedTracker) Visible(line, ctx int) bool {
	base := line * t.k
	for s := 0; s < t.k; s++ {
		if t.slotValid[base+s] && int(t.slots[base+s]) == ctx {
			return true
		}
	}
	return false
}

// OnFill implements Tracker.
func (t *LimitedTracker) OnFill(line, ctx int, now clock.Cycles) {
	base := line * t.k
	for s := 0; s < t.k; s++ {
		t.slotValid[base+s] = false
	}
	t.slots[base] = uint8(ctx)
	t.slotValid[base] = true
	t.tc[line] = uint64(clock.Trunc(now, t.cfg.TimestampBits))
}

// add inserts ctx into a line's slots, evicting round-robin on overflow.
func (t *LimitedTracker) add(line, ctx int) {
	base := line * t.k
	for s := 0; s < t.k; s++ {
		if t.slotValid[base+s] && int(t.slots[base+s]) == ctx {
			return
		}
	}
	for s := 0; s < t.k; s++ {
		if !t.slotValid[base+s] {
			t.slots[base+s] = uint8(ctx)
			t.slotValid[base+s] = true
			return
		}
	}
	// Overflow: evict an existing sharer. Dropping visibility is always
	// safe — the evicted context just pays another first access.
	victim := base + t.clockHand%t.k
	t.clockHand++
	t.slots[victim] = uint8(ctx)
	t.OverflowEvictions++
}

// OnFirstAccess implements Tracker.
func (t *LimitedTracker) OnFirstAccess(line, ctx int) {
	t.add(line, ctx)
}

// OnEvict implements Tracker.
func (t *LimitedTracker) OnEvict(line int) {
	base := line * t.k
	for s := 0; s < t.k; s++ {
		t.slotValid[base+s] = false
	}
}

// SaveColumn implements Tracker.
func (t *LimitedTracker) SaveColumn(ctx int) SecVec {
	v := make(SecVec, VecWords(t.lines))
	t.SaveColumnInto(ctx, v)
	return v
}

// SaveColumnInto implements Tracker: one linear scan over the slot arrays,
// with validation and slot-base arithmetic hoisted out of the per-line work
// (the old shape called Visible — and its bounds checks — per line).
func (t *LimitedTracker) SaveColumnInto(ctx int, dst SecVec) {
	t.check(0, ctx)
	if len(dst) != VecWords(t.lines) {
		panic(fmt.Sprintf("core: SecVec has %d words, want %d", len(dst), VecWords(t.lines)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, valid := range t.slotValid {
		if valid && int(t.slots[i]) == ctx {
			line := i / t.k
			dst[line>>6] |= 1 << (uint(line) & 63)
		}
	}
}

// ClearColumn implements Tracker: a single pass over the flat slot arrays
// instead of a lines×k nested loop with per-line base recomputation.
func (t *LimitedTracker) ClearColumn(ctx int) {
	t.check(0, ctx)
	for i, valid := range t.slotValid {
		if valid && int(t.slots[i]) == ctx {
			t.slotValid[i] = false
		}
	}
}

// RestoreColumn implements Tracker: the Tc/Ts reconciliation is identical
// to the full-map design; only the storage differs.
func (t *LimitedTracker) RestoreColumn(ctx int, v SecVec, ts, now clock.Cycles) {
	t.check(0, ctx)
	if v != nil && len(v) != VecWords(t.lines) {
		panic(fmt.Sprintf("core: SecVec has %d words, want %d", len(v), VecWords(t.lines)))
	}
	t.ClearColumn(ctx)
	if v == nil {
		return
	}
	if clock.RolledOver(ts, now, t.cfg.TimestampBits) {
		t.Rollovers++
		return
	}
	tsTrunc := uint64(clock.Trunc(ts, t.cfg.TimestampBits))
	mask := ^uint64(0)
	if t.cfg.TimestampBits < 64 {
		mask = (1 << t.cfg.TimestampBits) - 1
	}
	// Walk the saved column a word (64 lines) at a time, skipping empty
	// words; only set bits pay the per-line Tc comparison and slot insert.
	tailMask := ^uint64(0)
	if r := uint(t.lines) % 64; r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	last := len(v) - 1
	for w, word := range v {
		if w == last {
			word &= tailMask
		}
		for ; word != 0; word &= word - 1 {
			line := w<<6 + bits.TrailingZeros64(word)
			if t.tc[line]&mask > tsTrunc {
				continue // refilled while preempted: stay invisible
			}
			t.add(line, ctx)
		}
	}
}

// Reset implements Tracker.
func (t *LimitedTracker) Reset() {
	clear(t.slots)
	clear(t.slotValid)
	clear(t.tc)
	t.clockHand = 0
	t.OverflowEvictions = 0
	t.Rollovers = 0
}

// BitsPerLine returns the metadata bits per cache line for each tracker
// design at n contexts: the full map needs n; limited pointers need
// k*(log2(n)+1) (pointer plus valid bit). Used by the area discussion in
// EXPERIMENTS.md and the ablation bench.
func BitsPerLine(contexts, maxSharers int) (fullMap, limited int) {
	logN := 0
	for 1<<logN < contexts {
		logN++
	}
	if maxSharers <= 0 {
		return contexts, contexts
	}
	return contexts, maxSharers * (logN + 1)
}
