package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func limCfg(k int) Config {
	return Config{TimestampBits: 32, MaxSharers: k}
}

func TestNewTrackerSelectsImplementation(t *testing.T) {
	if _, ok := NewTracker(DefaultConfig(), 8, 4).(*SecArray); !ok {
		t.Fatal("MaxSharers=0 must build the full-map SecArray")
	}
	if _, ok := NewTracker(limCfg(2), 8, 4).(*LimitedTracker); !ok {
		t.Fatal("MaxSharers>0 must build the LimitedTracker")
	}
}

func TestLimitedBasicVisibility(t *testing.T) {
	tr := NewLimitedTracker(limCfg(2), 8, 4)
	tr.OnFill(3, 1, 100)
	if !tr.Visible(3, 1) {
		t.Fatal("filler must be visible")
	}
	for _, c := range []int{0, 2, 3} {
		if tr.Visible(3, c) {
			t.Fatalf("context %d must not see another's fill", c)
		}
	}
	tr.OnFirstAccess(3, 2)
	if !tr.Visible(3, 2) || !tr.Visible(3, 1) {
		t.Fatal("two sharers fit in two slots")
	}
	tr.OnEvict(3)
	for c := 0; c < 4; c++ {
		if tr.Visible(3, c) {
			t.Fatal("evict must clear all")
		}
	}
}

func TestLimitedOverflowEvictsSafely(t *testing.T) {
	tr := NewLimitedTracker(limCfg(2), 4, 8)
	tr.OnFill(0, 0, 1)
	tr.OnFirstAccess(0, 1)
	tr.OnFirstAccess(0, 2) // overflow: one of {0,1} loses its slot
	if tr.OverflowEvictions != 1 {
		t.Fatalf("overflow evictions = %d, want 1", tr.OverflowEvictions)
	}
	if !tr.Visible(0, 2) {
		t.Fatal("newly added sharer must be visible")
	}
	visible := 0
	for c := 0; c < 8; c++ {
		if tr.Visible(0, c) {
			visible++
		}
	}
	if visible != 2 {
		t.Fatalf("%d contexts visible, slots hold 2", visible)
	}
}

func TestLimitedSaveRestore(t *testing.T) {
	tr := NewLimitedTracker(limCfg(2), 130, 4)
	tr.OnFill(0, 1, 10)
	tr.OnFill(77, 1, 11)
	tr.OnFill(129, 1, 12)
	v := tr.SaveColumn(1)
	if !v.Bit(0) || !v.Bit(77) || !v.Bit(129) || v.Bit(1) {
		t.Fatal("saved column wrong")
	}
	tr.ClearColumn(1)
	if tr.Visible(0, 1) {
		t.Fatal("clear failed")
	}
	tr.RestoreColumn(1, v, 20, 30)
	for _, line := range []int{0, 77, 129} {
		if !tr.Visible(line, 1) {
			t.Fatalf("line %d not restored", line)
		}
	}
	// Line refilled after Ts must stay invisible.
	tr.OnEvict(77)
	tr.OnFill(77, 0, 200)
	v = tr.SaveColumn(1)
	tr.RestoreColumn(1, v, 100, 300)
	if tr.Visible(77, 1) {
		t.Fatal("refilled line (Tc > Ts) must stay invisible")
	}
	if !tr.Visible(0, 1) {
		t.Fatal("unchanged line must be restored")
	}
}

func TestLimitedRollover(t *testing.T) {
	cfg := Config{TimestampBits: 8, MaxSharers: 2}
	tr := NewLimitedTracker(cfg, 4, 2)
	tr.OnFill(0, 0, 250)
	v := tr.SaveColumn(0)
	tr.RestoreColumn(0, v, 250, 260) // wrap at 8 bits
	if tr.Visible(0, 0) {
		t.Fatal("rollover must reset restored visibility")
	}
	if tr.Rollovers != 1 {
		t.Fatalf("Rollovers = %d", tr.Rollovers)
	}
}

// The safety property: against a full-map shadow, the limited tracker may
// show FEWER visible (line, ctx) pairs — never more. Extra invisibility
// costs performance; extra visibility would break the defense.
func TestLimitedNeverExceedsFullMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const lines, ctxs = 16, 8
		full := NewSecArray(Config{TimestampBits: 32}, lines, ctxs)
		lim := NewLimitedTracker(Config{TimestampBits: 32, MaxSharers: 2}, lines, ctxs)
		now := uint64(1)
		for op := 0; op < 400; op++ {
			now++
			line, ctx := rng.Intn(lines), rng.Intn(ctxs)
			switch rng.Intn(3) {
			case 0:
				full.OnFill(line, ctx, now)
				lim.OnFill(line, ctx, now)
			case 1:
				full.OnFirstAccess(line, ctx)
				lim.OnFirstAccess(line, ctx)
			case 2:
				full.OnEvict(line)
				lim.OnEvict(line)
			}
			for l := 0; l < lines; l++ {
				for c := 0; c < ctxs; c++ {
					if lim.Visible(l, c) && !full.Visible(l, c) {
						return false // limited granted visibility full map denies
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBitsPerLine(t *testing.T) {
	// 64 contexts: full map 64 bits; 4 pointers of (6+1) bits = 28 bits.
	full, lim := BitsPerLine(64, 4)
	if full != 64 || lim != 28 {
		t.Fatalf("BitsPerLine(64,4) = %d,%d want 64,28", full, lim)
	}
	full, lim = BitsPerLine(8, 0)
	if full != 8 || lim != 8 {
		t.Fatalf("MaxSharers=0 means full map on both sides: %d,%d", full, lim)
	}
}

func TestLimitedTrackerBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxSharers > contexts must panic")
		}
	}()
	NewLimitedTracker(limCfg(8), 4, 4)
}
