package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newArr(t *testing.T, lines, ctxs int) *SecArray {
	t.Helper()
	return NewSecArray(DefaultConfig(), lines, ctxs)
}

func TestFillSetsOnlyFiller(t *testing.T) {
	s := newArr(t, 8, 4)
	s.OnFill(3, 1, 100)
	if !s.Visible(3, 1) {
		t.Fatal("filler must see its own fill")
	}
	for _, c := range []int{0, 2, 3} {
		if s.Visible(3, c) {
			t.Fatalf("context %d must not see another context's fill", c)
		}
	}
	if s.Tc(3) != 100 {
		t.Fatalf("Tc = %d, want 100", s.Tc(3))
	}
}

func TestRefillResetsOtherContexts(t *testing.T) {
	s := newArr(t, 8, 2)
	s.OnFill(0, 0, 10)
	s.OnFirstAccess(0, 1)
	if !s.Visible(0, 1) {
		t.Fatal("first access must grant visibility")
	}
	// Line evicted and refilled by context 0: context 1 loses visibility.
	s.OnEvict(0)
	s.OnFill(0, 0, 20)
	if s.Visible(0, 1) {
		t.Fatal("refill must reset other contexts' s-bits")
	}
}

func TestEvictClearsAll(t *testing.T) {
	s := newArr(t, 4, 3)
	s.OnFill(2, 0, 5)
	s.OnFirstAccess(2, 1)
	s.OnFirstAccess(2, 2)
	s.OnEvict(2)
	for c := 0; c < 3; c++ {
		if s.Visible(2, c) {
			t.Fatalf("context %d still visible after evict", c)
		}
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	s := newArr(t, 130, 2)
	s.OnFill(0, 0, 10)
	s.OnFill(77, 0, 11)
	s.OnFill(129, 0, 12)
	v := s.SaveColumn(0)
	if !v.Bit(0) || !v.Bit(77) || !v.Bit(129) || v.Bit(1) {
		t.Fatal("saved column does not match s-bits")
	}
	s.ClearColumn(0)
	if s.Visible(0, 0) {
		t.Fatal("clear column failed")
	}
	// Restore at a time after preemption with no newer fills: all bits back.
	s.RestoreColumn(0, v, 20, 30)
	for _, line := range []int{0, 77, 129} {
		if !s.Visible(line, 0) {
			t.Fatalf("line %d not restored", line)
		}
	}
}

func TestRestoreResetsNewerLines(t *testing.T) {
	s := newArr(t, 64, 2)
	s.OnFill(1, 0, 100)
	s.OnFill(2, 0, 100)
	v := s.SaveColumn(0)
	ts := uint64(150) // process preempted at 150

	// While preempted, line 2 is refilled (by ctx 1) at time 200 > Ts.
	s.OnEvict(2)
	s.OnFill(2, 1, 200)

	s.RestoreColumn(0, v, ts, 300)
	if !s.Visible(1, 0) {
		t.Fatal("line 1 unchanged since preemption must stay visible")
	}
	if s.Visible(2, 0) {
		t.Fatal("line 2 refilled after Ts must be invisible (Tc > Ts)")
	}
	if s.ResetsByComp != 1 {
		t.Fatalf("ResetsByComp = %d, want 1", s.ResetsByComp)
	}
}

func TestRestoreEqualTimestampStaysVisible(t *testing.T) {
	// Tc == Ts means the fill happened no later than preemption: visible.
	s := newArr(t, 4, 1)
	s.OnFill(0, 0, 150)
	v := s.SaveColumn(0)
	s.RestoreColumn(0, v, 150, 160)
	if !s.Visible(0, 0) {
		t.Fatal("Tc == Ts must remain visible")
	}
}

func TestRestoreNilClearsColumn(t *testing.T) {
	s := newArr(t, 4, 2)
	s.OnFill(0, 0, 1)
	s.RestoreColumn(0, nil, 0, 10)
	if s.Visible(0, 0) {
		t.Fatal("nil restore (new process) must clear the column")
	}
}

func TestRolloverResetsAll(t *testing.T) {
	cfg := Config{TimestampBits: 8}
	s := NewSecArray(cfg, 4, 1)
	s.OnFill(0, 0, 250)
	v := s.SaveColumn(0)
	// Preempted at 250, resumed at 260: the 8-bit counter wrapped.
	s.RestoreColumn(0, v, 250, 260)
	if s.Visible(0, 0) {
		t.Fatal("rollover between Ts and resume must reset restored s-bits")
	}
	if s.Rollovers != 1 {
		t.Fatalf("Rollovers = %d, want 1", s.Rollovers)
	}
}

func TestNoRolloverFalseNegative(t *testing.T) {
	// Paper §VI-C third case: no rollover between Ts and resume, but an old
	// line can carry a bigger truncated Tc from a previous epoch; it gets an
	// unnecessary reset — safe, just an extra miss. Model: line filled at
	// full time 78 (epoch 0), process preempted at 256+102 (epoch 1),
	// resumed 256+105. Truncated Tc=78 < truncated Ts=102, so it survives —
	// but a line filled at 200 in epoch 0 (trunc 200 > 102) is reset
	// unnecessarily. Correctness (no stale visibility) must hold regardless.
	cfg := Config{TimestampBits: 8}
	s := NewSecArray(cfg, 2, 1)
	s.OnFill(0, 0, 78)
	s.OnFill(1, 0, 200)
	v := s.SaveColumn(0)
	s.RestoreColumn(0, v, 256+102, 256+105)
	if !s.Visible(0, 0) {
		t.Fatal("line with small truncated Tc survives")
	}
	if s.Visible(1, 0) {
		t.Fatal("line with large truncated Tc is reset (unnecessary but safe)")
	}
}

func TestGateLevelMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const lines = 64
		ref := NewSecArray(Config{TimestampBits: 16}, lines, 2)
		gate := NewSecArray(Config{TimestampBits: 16, GateLevel: true}, lines, 2)
		for line := 0; line < lines; line++ {
			tm := rng.Uint64() % 60000
			ref.OnFill(line, 0, tm)
			gate.OnFill(line, 0, tm)
		}
		v1, v2 := ref.SaveColumn(0), gate.SaveColumn(0)
		ts := rng.Uint64() % 60000
		ref.RestoreColumn(0, v1, ts, ts+1)
		gate.RestoreColumn(0, v2, ts, ts+1)
		for line := 0; line < lines; line++ {
			if ref.Visible(line, 0) != gate.Visible(line, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Invariant: a context is never granted visibility of a copy it has not
// touched. Random operation sequence against a shadow model.
func TestVisibilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const lines, ctxs = 16, 4
		s := NewSecArray(Config{TimestampBits: 32}, lines, ctxs)
		// shadow[line][ctx]: has ctx seen the current copy?
		var shadow [lines][ctxs]bool
		now := uint64(1)
		for op := 0; op < 500; op++ {
			now++
			line := rng.Intn(lines)
			ctx := rng.Intn(ctxs)
			switch rng.Intn(3) {
			case 0:
				s.OnFill(line, ctx, now)
				for c := 0; c < ctxs; c++ {
					shadow[line][c] = c == ctx
				}
			case 1:
				s.OnFirstAccess(line, ctx)
				shadow[line][ctx] = true
			case 2:
				s.OnEvict(line)
				for c := 0; c < ctxs; c++ {
					shadow[line][c] = false
				}
			}
			for l := 0; l < lines; l++ {
				for c := 0; c < ctxs; c++ {
					if s.Visible(l, c) != shadow[l][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSecVecBitNil(t *testing.T) {
	var v SecVec
	if v.Bit(0) || v.Bit(1000) {
		t.Fatal("nil SecVec has no bits set")
	}
}

func TestContextBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("65 contexts must panic")
		}
	}()
	NewSecArray(DefaultConfig(), 4, 65)
}
