// Snapshot support: restoring one tracker's warm state into another built
// from the same configuration. Machine forking (internal/machine) uses this
// to clone the per-context s-bit columns and fill timestamps — the state the
// paper's context-switch save/restore operates on — without re-running the
// warmup that produced them.
package core

import "fmt"

// CopyFrom restores src's state into s. Both arrays must come from the same
// Config and geometry (machine snapshot and fork targets always do).
func (s *SecArray) CopyFrom(src *SecArray) {
	copy(s.cols, src.cols)
	copy(s.tc, src.tc)
	if s.arr != nil {
		// Rebuild the transposed gate-level SRAM mirror from the copied
		// timestamps. Latch state needs no copying: CompareGTInto resets
		// every SR latch before each comparison, and gtBuf is per-call
		// scratch.
		for line := 0; line < s.lines; line++ {
			s.arr.Store(line, s.tc[line])
		}
	}
	s.Compares = src.Compares
	s.ResetsByComp = src.ResetsByComp
	s.Rollovers = src.Rollovers
}

// CopyFrom restores src's state into t. Both trackers must come from the
// same Config and geometry.
func (t *LimitedTracker) CopyFrom(src *LimitedTracker) {
	copy(t.slots, src.slots)
	copy(t.slotValid, src.slotValid)
	copy(t.tc, src.tc)
	t.clockHand = src.clockHand
	t.OverflowEvictions = src.OverflowEvictions
	t.Rollovers = src.Rollovers
}

// CopyTracker restores src's state into dst. The concrete types must match
// — NewTracker picks the implementation from Config alone, so two trackers
// built from one machine.Config always do. A package function with a type
// switch keeps the Tracker interface itself unchanged.
func CopyTracker(dst, src Tracker) {
	switch d := dst.(type) {
	case *SecArray:
		d.CopyFrom(src.(*SecArray))
	case *LimitedTracker:
		d.CopyFrom(src.(*LimitedTracker))
	default:
		panic(fmt.Sprintf("core: CopyTracker of unknown tracker %T", dst))
	}
}
