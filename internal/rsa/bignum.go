package rsa

import (
	"fmt"

	"timecache/internal/sim"
)

// Int is a little-endian multi-precision unsigned integer (32-bit limbs,
// so products fit in uint64 without overflow tricks). It is the arithmetic
// core of the big-number victim: a GnuPG-like MPI with schoolbook multiply
// and shift-subtract reduction, whose work per routine call scales with
// limb count — giving the victim realistic, operand-dependent timing on
// top of its key-dependent control flow.
type Int struct {
	limbs []uint32
}

// NewInt builds an Int from a uint64.
func NewInt(v uint64) *Int {
	i := &Int{limbs: []uint32{uint32(v), uint32(v >> 32)}}
	i.trim()
	return i
}

// NewIntFromLimbs builds an Int from little-endian 32-bit limbs (copied).
func NewIntFromLimbs(limbs []uint32) *Int {
	i := &Int{limbs: append([]uint32(nil), limbs...)}
	i.trim()
	return i
}

func (x *Int) trim() {
	n := len(x.limbs)
	for n > 0 && x.limbs[n-1] == 0 {
		n--
	}
	x.limbs = x.limbs[:n]
}

// Len returns the number of significant limbs.
func (x *Int) Len() int { return len(x.limbs) }

// IsZero reports whether x == 0.
func (x *Int) IsZero() bool { return len(x.limbs) == 0 }

// Uint64 returns the low 64 bits of x.
func (x *Int) Uint64() uint64 {
	var v uint64
	if len(x.limbs) > 0 {
		v = uint64(x.limbs[0])
	}
	if len(x.limbs) > 1 {
		v |= uint64(x.limbs[1]) << 32
	}
	return v
}

// Cmp returns -1, 0, or 1 as x <, ==, > y.
func (x *Int) Cmp(y *Int) int {
	if len(x.limbs) != len(y.limbs) {
		if len(x.limbs) < len(y.limbs) {
			return -1
		}
		return 1
	}
	for i := len(x.limbs) - 1; i >= 0; i-- {
		if x.limbs[i] != y.limbs[i] {
			if x.limbs[i] < y.limbs[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Mul returns x*y (schoolbook, O(n*m) limb products).
func (x *Int) Mul(y *Int) *Int {
	if x.IsZero() || y.IsZero() {
		return &Int{}
	}
	out := make([]uint32, len(x.limbs)+len(y.limbs))
	for i, xv := range x.limbs {
		var carry uint64
		for j, yv := range y.limbs {
			cur := uint64(out[i+j]) + uint64(xv)*uint64(yv) + carry
			out[i+j] = uint32(cur)
			carry = cur >> 32
		}
		k := i + len(y.limbs)
		for carry > 0 {
			cur := uint64(out[k]) + carry
			out[k] = uint32(cur)
			carry = cur >> 32
			k++
		}
	}
	r := &Int{limbs: out}
	r.trim()
	return r
}

// shl returns x << (32*limbs + bits), bits in [0,32).
func (x *Int) shl(limbShift int, bits uint) *Int {
	if x.IsZero() {
		return &Int{}
	}
	out := make([]uint32, len(x.limbs)+limbShift+1)
	var carry uint32
	for i, v := range x.limbs {
		cur := uint64(v) << bits
		out[i+limbShift] = uint32(cur) | carry
		carry = uint32(cur >> 32)
	}
	out[len(x.limbs)+limbShift] = carry
	r := &Int{limbs: out}
	r.trim()
	return r
}

// sub sets x = x - y in place; x must be >= y.
func (x *Int) sub(y *Int) {
	var borrow uint64
	for i := 0; i < len(x.limbs); i++ {
		var yv uint64
		if i < len(y.limbs) {
			yv = uint64(y.limbs[i])
		}
		cur := uint64(x.limbs[i]) - yv - borrow
		x.limbs[i] = uint32(cur)
		borrow = (cur >> 32) & 1
	}
	if borrow != 0 {
		panic("rsa: bignum subtraction underflow")
	}
	x.trim()
}

// bitLen returns the bit length of x.
func (x *Int) bitLen() int {
	if x.IsZero() {
		return 0
	}
	top := x.limbs[len(x.limbs)-1]
	n := (len(x.limbs) - 1) * 32
	for top > 0 {
		n++
		top >>= 1
	}
	return n
}

// Mod returns x mod m via binary shift-subtract long division — the
// Reduce step of the victim, O(bitlen difference) limb passes.
func (x *Int) Mod(m *Int) *Int {
	if m.IsZero() {
		panic("rsa: modulo by zero")
	}
	r := &Int{limbs: append([]uint32(nil), x.limbs...)}
	r.trim()
	for r.Cmp(m) >= 0 {
		shift := r.bitLen() - m.bitLen()
		t := m.shl(shift/32, uint(shift%32))
		if t.Cmp(r) > 0 {
			shift--
			t = m.shl(shift/32, uint(shift%32))
		}
		r.sub(t)
	}
	return r
}

// limbOps estimates the limb operations of the last call, used to charge
// simulation cycles proportional to real work.
func mulLimbOps(a, b *Int) uint64 { return uint64(a.Len()*b.Len()) + 1 }

// BigVictim performs left-to-right square-and-multiply over multi-precision
// operands. Like Victim it touches the shared library's Square, Multiply,
// and Reduce entry lines with key-dependent control flow, but each routine
// also charges cycles proportional to its limb work and walks the
// operands' limbs through the data cache, giving the victim a realistic
// data footprint.
type BigVictim struct {
	Lib     Library
	Key     Key
	Base    *Int
	Modulus *Int

	// OperandBase is the victim-private virtual address where operand
	// limbs are (logically) stored; each routine call streams them.
	OperandBase uint64

	Result   *Int
	Finished bool

	bitIdx int
	phase  int
	acc    *Int
	inited bool
}

// NewBigVictim builds a multi-precision victim.
func NewBigVictim(lib Library, key Key, base, modulus *Int, operandBase uint64) *BigVictim {
	if modulus.IsZero() {
		panic("rsa: zero modulus")
	}
	return &BigVictim{Lib: lib, Key: key, Base: base.Mod(modulus), Modulus: modulus, OperandBase: operandBase}
}

// call models one routine: fetch its shared entry line, stream the
// accumulator limbs through the D-cache, and charge the limb work.
func (v *BigVictim) call(env sim.Env, addr uint64, limbOps uint64) {
	env.Fetch(addr)
	for i := 0; i < v.acc.Len(); i++ {
		env.Load(v.OperandBase + uint64(i)*4)
	}
	env.Tick(4 * limbOps)
	env.Instret(limbOps + 1)
}

// Step implements sim.Proc.
func (v *BigVictim) Step(env sim.Env) bool {
	if v.Finished {
		return false
	}
	if !v.inited {
		v.acc = NewInt(1)
		v.inited = true
	}
	if v.bitIdx >= len(v.Key) {
		v.Result = v.acc
		v.Finished = true
		env.Syscall(sim.SysExit, v.Result.Uint64())
		return false
	}
	bit := v.Key[v.bitIdx]
	switch v.phase {
	case 0: // Square
		ops := mulLimbOps(v.acc, v.acc)
		v.acc = v.acc.Mul(v.acc)
		v.call(env, v.Lib.SquareAddr(), ops)
		v.phase = 1
	case 1: // Reduce
		v.acc = v.acc.Mod(v.Modulus)
		v.call(env, v.Lib.ReduceAddr(), uint64(v.acc.Len())+1)
		if bit {
			v.phase = 2
		} else {
			v.phase = 4
		}
	case 2: // Multiply
		ops := mulLimbOps(v.acc, v.Base)
		v.acc = v.acc.Mul(v.Base)
		v.call(env, v.Lib.MultiplyAddr(), ops)
		v.phase = 3
	case 3: // Reduce after multiply
		v.acc = v.acc.Mod(v.Modulus)
		v.call(env, v.Lib.ReduceAddr(), uint64(v.acc.Len())+1)
		v.phase = 4
	case 4:
		v.bitIdx++
		v.phase = 0
		env.Syscall(sim.SysYield, 0)
	}
	return true
}

// BigModExp is the reference multi-precision modular exponentiation.
func BigModExp(base *Int, key Key, modulus *Int) *Int {
	if modulus.IsZero() {
		panic("rsa: zero modulus")
	}
	acc := NewInt(1)
	b := base.Mod(modulus)
	for _, bit := range key {
		acc = acc.Mul(acc).Mod(modulus)
		if bit {
			acc = acc.Mul(b).Mod(modulus)
		}
	}
	return acc
}

// String renders the Int in hex for diagnostics.
func (x *Int) String() string {
	if x.IsZero() {
		return "0x0"
	}
	s := "0x"
	for i := len(x.limbs) - 1; i >= 0; i-- {
		if i == len(x.limbs)-1 {
			s += fmt.Sprintf("%x", x.limbs[i])
		} else {
			s += fmt.Sprintf("%08x", x.limbs[i])
		}
	}
	return s
}
