package rsa

import (
	"math/big"
	"testing"
	"testing/quick"
)

func toBig(x *Int) *big.Int {
	out := new(big.Int)
	for i := x.Len() - 1; i >= 0; i-- {
		out.Lsh(out, 32)
		out.Or(out, big.NewInt(int64(x.limbs[i])))
	}
	return out
}

func fromU64s(vals ...uint64) *Int {
	var limbs []uint32
	for _, v := range vals {
		limbs = append(limbs, uint32(v), uint32(v>>32))
	}
	return NewIntFromLimbs(limbs)
}

func TestIntBasics(t *testing.T) {
	z := NewInt(0)
	if !z.IsZero() || z.Len() != 0 {
		t.Fatal("zero")
	}
	x := NewInt(0xDEADBEEF12345678)
	if x.Uint64() != 0xDEADBEEF12345678 {
		t.Fatalf("uint64 roundtrip: %x", x.Uint64())
	}
	if x.Cmp(NewInt(1)) != 1 || NewInt(1).Cmp(x) != -1 || x.Cmp(x) != 0 {
		t.Fatal("cmp")
	}
	if x.String() == "" || z.String() != "0x0" {
		t.Fatal("string")
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x, y := fromU64s(a, b), fromU64s(c, d)
		got := toBig(x.Mul(y))
		want := new(big.Int).Mul(toBig(x), toBig(y))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModMatchesBig(t *testing.T) {
	f := func(a, b, c, m uint64) bool {
		x := fromU64s(a, b, c)
		mod := NewInt(m | 1) // avoid zero
		got := toBig(x.Mod(mod))
		want := new(big.Int).Mod(toBig(x), toBig(mod))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBigModExpMatchesBig(t *testing.T) {
	f := func(seed uint64, baseRaw uint64, mRaw uint32) bool {
		key := GenerateKey(24, seed)
		base := NewInt(baseRaw)
		mod := NewInt(uint64(mRaw) + 3)
		got := toBig(BigModExp(base, key, mod))
		exp := new(big.Int)
		for _, bit := range key {
			exp.Lsh(exp, 1)
			if bit {
				exp.Or(exp, big.NewInt(1))
			}
		}
		want := new(big.Int).Exp(toBig(base), exp, toBig(mod))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBigVictimSequenceAndResult(t *testing.T) {
	lib := DefaultLibrary(0x1000)
	key := Key{true, true, false} // srmr srmr sr
	base := fromU64s(0x123456789ABCDEF0, 0xFEDCBA9876543210)
	mod := fromU64s(0xFFFFFFFFFFFFFFC5, 0x1) // a 65-bit modulus
	v := NewBigVictim(lib, key, base, mod, 0x20000)
	e := &scriptEnv{}
	for v.Step(e) {
	}
	if !v.Finished {
		t.Fatal("victim did not finish")
	}
	want := BigModExp(base, key, mod)
	if v.Result.Cmp(want) != 0 {
		t.Fatalf("result %s != reference %s", v.Result, want)
	}
	// Control flow: sq,red,mul,red twice then sq,red.
	wantSeq := []uint64{
		lib.SquareAddr(), lib.ReduceAddr(), lib.MultiplyAddr(), lib.ReduceAddr(),
		lib.SquareAddr(), lib.ReduceAddr(), lib.MultiplyAddr(), lib.ReduceAddr(),
		lib.SquareAddr(), lib.ReduceAddr(),
	}
	if len(e.fetches) != len(wantSeq) {
		t.Fatalf("fetches %d, want %d", len(e.fetches), len(wantSeq))
	}
	for i, w := range wantSeq {
		if e.fetches[i] != w {
			t.Fatalf("fetch %d = %#x, want %#x", i, e.fetches[i], w)
		}
	}
	if e.yields != len(key) {
		t.Fatalf("yields = %d, want %d", e.yields, len(key))
	}
}

func TestBigVictimWorkScalesWithOperands(t *testing.T) {
	lib := DefaultLibrary(0x1000)
	key := GenerateKey(8, 3)
	small := NewBigVictim(lib, key, NewInt(3), NewInt(1000003), 0x20000)
	bigOp := NewBigVictim(lib, key,
		fromU64s(3, 0, 0, 0),
		fromU64s(0xFFFFFFFFFFFFFFC5, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x1),
		0x20000)
	run := func(v *BigVictim) uint64 {
		e := &scriptEnv{}
		for v.Step(e) {
		}
		return e.now
	}
	ts, tb := run(small), run(bigOp)
	if tb < ts*3/2 {
		t.Fatalf("big operands should cost substantially more: %d vs %d cycles", tb, ts)
	}
}
