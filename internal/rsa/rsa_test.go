package rsa

import (
	"testing"
	"testing/quick"

	"timecache/internal/sim"
)

func TestGenerateKeyDeterministic(t *testing.T) {
	a := GenerateKey(64, 7)
	b := GenerateKey(64, 7)
	c := GenerateKey(64, 8)
	if a.String() != b.String() {
		t.Fatal("same seed must give same key")
	}
	if a.String() == c.String() {
		t.Fatal("different seeds should give different keys")
	}
	if !a[0] {
		t.Fatal("leading bit must be 1")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d", len(a))
	}
}

func TestKeyMatch(t *testing.T) {
	k := Key{true, false, true, true}
	if got := k.Match(Key{true, false, true, true}); got != 1 {
		t.Fatalf("exact match = %v", got)
	}
	if got := k.Match(Key{false, true, false, false}); got != 0 {
		t.Fatalf("no match = %v", got)
	}
	if got := k.Match(Key{true, false}); got != 0.5 {
		t.Fatalf("prefix match = %v", got)
	}
}

func TestKeyUint64AndString(t *testing.T) {
	k := Key{true, false, true, true}
	if k.Uint64() != 0b1011 {
		t.Fatalf("uint64 = %b", k.Uint64())
	}
	if k.String() != "1011" {
		t.Fatalf("string = %s", k.String())
	}
}

func TestMulmodMatchesBigArithmetic(t *testing.T) {
	f := func(a, b uint64, mRaw uint32) bool {
		m := uint64(mRaw) + 2
		got := mulmod(a, b, m)
		// Reference via 128-bit-safe reduction: (a%m)*(b%m) fits in 128;
		// emulate with per-bit accumulation independent of the tested code.
		var want uint64
		x, y := a%m, b%m
		for y > 0 {
			if y&1 == 1 {
				want = (want + x) % m
			}
			x = (x + x) % m
			y >>= 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModExpKnownValues(t *testing.T) {
	// 2^10 mod 1000 = 24
	key := Key{true, false, true, false} // 10 in binary
	if got := ModExp(2, key, 1000); got != 24 {
		t.Fatalf("2^10 mod 1000 = %d, want 24", got)
	}
	// Fermat: a^(p-1) mod p = 1 for prime p, a not divisible by p.
	p := uint64(0xFFFFFFFB)
	exp := make(Key, 0, 64)
	for i := 31; i >= 0; i-- {
		exp = append(exp, (p-1)>>uint(i)&1 == 1)
	}
	if got := ModExp(3, exp, p); got != 1 {
		t.Fatalf("fermat check failed: %d", got)
	}
}

// scriptEnv records the victim's library accesses.
type scriptEnv struct {
	now     uint64
	fetches []uint64
	yields  int
	exited  bool
}

func (e *scriptEnv) Fetch(v uint64)           { e.fetches = append(e.fetches, v); e.now += 2 }
func (e *scriptEnv) Load(v uint64) uint64     { e.now += 2; return 0 }
func (e *scriptEnv) Store(v uint64, x uint64) { e.now += 2 }
func (e *scriptEnv) Flush(v uint64)           { e.now += 40 }
func (e *scriptEnv) Now() uint64              { return e.now }
func (e *scriptEnv) Tick(n uint64)            { e.now += n }
func (e *scriptEnv) Instret(n uint64)         {}
func (e *scriptEnv) PID() int                 { return 1 }
func (e *scriptEnv) Syscall(num, arg uint64) uint64 {
	switch num {
	case sim.SysYield:
		e.yields++
	case sim.SysExit:
		e.exited = true
	}
	return 0
}

func TestVictimAccessSequenceFollowsKey(t *testing.T) {
	lib := DefaultLibrary(0x1000)
	key := Key{true, false, true} // srmr sr srmr
	v := NewVictim(lib, key, 5, 1000003)
	e := &scriptEnv{}
	for v.Step(e) {
	}
	want := []uint64{
		lib.SquareAddr(), lib.ReduceAddr(), lib.MultiplyAddr(), lib.ReduceAddr(),
		lib.SquareAddr(), lib.ReduceAddr(),
		lib.SquareAddr(), lib.ReduceAddr(), lib.MultiplyAddr(), lib.ReduceAddr(),
	}
	if len(e.fetches) != len(want) {
		t.Fatalf("fetches %d, want %d", len(e.fetches), len(want))
	}
	for i := range want {
		if e.fetches[i] != want[i] {
			t.Fatalf("fetch %d = %#x, want %#x", i, e.fetches[i], want[i])
		}
	}
	if e.yields != len(key) {
		t.Fatalf("yields = %d, want one per bit", e.yields)
	}
	if !e.exited || !v.Finished {
		t.Fatal("victim must exit when done")
	}
	if v.Result != ModExp(5, key, 1000003) {
		t.Fatalf("victim result %d != reference %d", v.Result, ModExp(5, key, 1000003))
	}
}

func TestVictimArithmeticProperty(t *testing.T) {
	f := func(seed uint64, base uint64, mRaw uint32) bool {
		m := uint64(mRaw) + 3
		key := GenerateKey(16, seed)
		v := NewVictim(DefaultLibrary(0x1000), key, base, m)
		e := &scriptEnv{}
		for v.Step(e) {
		}
		return v.Result == ModExp(base, key, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLibraryLayoutDistinctLines(t *testing.T) {
	lib := DefaultLibrary(0x4000)
	a, b, c := lib.SquareAddr()>>6, lib.MultiplyAddr()>>6, lib.ReduceAddr()>>6
	if a == b || b == c || a == c {
		t.Fatal("function entries must live on distinct cache lines")
	}
	if lib.Size() < 3*64 {
		t.Fatal("library image too small")
	}
}

func TestTraceString(t *testing.T) {
	if got := TraceString([]bool{true, false}); got != "srmrsr" {
		t.Fatalf("trace = %q", got)
	}
}
