// Package rsa implements the attack target from the paper's evaluation
// (§VI-A2): a GnuPG-style left-to-right square-and-multiply modular
// exponentiation whose Square, Multiply, and Reduce routines live in a
// shared-library mapping. The control flow through the shared code is
// indexed by the secret exponent bits — processing a 1 bit executes
// Square, Reduce, Multiply, Reduce; a 0 bit executes Square, Reduce — so a
// flush+reload attacker monitoring the function entry lines recovers the
// key on an undefended cache.
package rsa

import (
	"timecache/internal/cache"
	"timecache/internal/sim"
)

// Library describes the shared-library layout of the three routines. Each
// routine's entry occupies its own cache line inside the region mapped at
// Base in both the victim's and the attacker's address spaces.
type Library struct {
	// Base is the virtual address of the library mapping.
	Base uint64
	// LinesPerFunc spaces the function entries (1 line each is enough; a
	// larger spacing mimics real function bodies spanning lines).
	LinesPerFunc uint64
}

// DefaultLibrary places the library at an address clear of the default
// program layout, with function entries four lines apart.
func DefaultLibrary(base uint64) Library {
	return Library{Base: base, LinesPerFunc: 4}
}

// SquareAddr returns the entry line address of the Square routine.
func (l Library) SquareAddr() uint64 { return l.Base }

// MultiplyAddr returns the entry line address of the Multiply routine.
func (l Library) MultiplyAddr() uint64 {
	return l.Base + l.LinesPerFunc*cache.LineSize
}

// ReduceAddr returns the entry line address of the Reduce routine.
func (l Library) ReduceAddr() uint64 {
	return l.Base + 2*l.LinesPerFunc*cache.LineSize
}

// Size returns the bytes of library image the mapping needs.
func (l Library) Size() uint64 { return 3 * l.LinesPerFunc * cache.LineSize }

// Key is a secret exponent as explicit bits, most significant first.
type Key []bool

// GenerateKey builds a deterministic pseudo-random key of the given bit
// length from seed. The leading bit is forced to 1, as in a real exponent.
func GenerateKey(bits int, seed uint64) Key {
	if bits <= 0 {
		panic("rsa: key must have at least one bit")
	}
	k := make(Key, bits)
	s := seed | 1
	for i := range k {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		k[i] = s&1 == 1
	}
	k[0] = true
	return k
}

// Uint64 packs up to the first 64 bits of the key (for display).
func (k Key) Uint64() uint64 {
	var v uint64
	for i := 0; i < len(k) && i < 64; i++ {
		v <<= 1
		if k[i] {
			v |= 1
		}
	}
	return v
}

// String renders the key as a bit string.
func (k Key) String() string {
	b := make([]byte, len(k))
	for i, bit := range k {
		if bit {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Match returns the fraction of bits in guess that equal k (0..1).
func (k Key) Match(guess Key) float64 {
	n := len(k)
	if len(guess) < n {
		n = len(guess)
	}
	if n == 0 {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		if k[i] == guess[i] {
			same++
		}
	}
	return float64(same) / float64(len(k))
}

// Victim is a sim.Proc performing modular exponentiation base^key mod
// modulus using left-to-right square-and-multiply. Every Square, Multiply,
// and Reduce executes real 64-bit modular arithmetic and touches its shared
// library entry line, so the victim's cache footprint is genuinely
// key-dependent. After finishing each key bit the victim yields, modeling
// the attacker's ability to observe between operations (the paper's victim
// runs concurrently; interleaved slices give the same per-bit visibility).
type Victim struct {
	Lib     Library
	Key     Key
	Base    uint64 // exponentiation base
	Modulus uint64

	// Result is base^key mod Modulus once finished.
	Result   uint64
	Finished bool

	// WorkCycles is extra compute charged per routine call, modeling the
	// big-number loop bodies.
	WorkCycles uint64

	bitIdx int
	phase  int // 0=square, 1=reduce, 2=multiply, 3=reduce2, 4=yield
	acc    uint64
	inited bool
}

// NewVictim builds a victim over lib computing base^key mod modulus.
func NewVictim(lib Library, key Key, base, modulus uint64) *Victim {
	if modulus == 0 {
		panic("rsa: zero modulus")
	}
	return &Victim{Lib: lib, Key: key, Base: base % modulus, Modulus: modulus, WorkCycles: 50}
}

// call touches the routine's entry line and charges its compute cost.
func (v *Victim) call(env sim.Env, addr uint64) {
	env.Fetch(addr)
	env.Tick(v.WorkCycles)
	env.Instret(8)
}

// Step implements sim.Proc, advancing one routine call at a time.
func (v *Victim) Step(env sim.Env) bool {
	if v.Finished {
		return false
	}
	if !v.inited {
		v.acc = 1
		v.inited = true
	}
	if v.bitIdx >= len(v.Key) {
		v.Result = v.acc
		v.Finished = true
		env.Syscall(sim.SysExit, v.acc)
		return false
	}
	bit := v.Key[v.bitIdx]
	switch v.phase {
	case 0: // Square
		v.call(env, v.Lib.SquareAddr())
		v.acc = mulmod(v.acc, v.acc, v.Modulus)
		v.phase = 1
	case 1: // Reduce (the modular reduction after squaring)
		v.call(env, v.Lib.ReduceAddr())
		if bit {
			v.phase = 2
		} else {
			v.phase = 4
		}
	case 2: // Multiply (only for 1 bits)
		v.call(env, v.Lib.MultiplyAddr())
		v.acc = mulmod(v.acc, v.Base, v.Modulus)
		v.phase = 3
	case 3: // Reduce after multiply
		v.call(env, v.Lib.ReduceAddr())
		v.phase = 4
	case 4: // bit finished: yield so the observer interleaves per bit
		v.bitIdx++
		v.phase = 0
		env.Syscall(sim.SysYield, 0)
	}
	return true
}

// mulmod computes a*b mod m without overflow using 128-bit intermediate
// via the schoolbook split (portable, no math/bits.Mul64 dependency needed,
// but bits.Mul64 is stdlib — use the simple double-and-add for clarity).
func mulmod(a, b, m uint64) uint64 {
	a %= m
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = addmod(r, a, m)
		}
		a = addmod(a, a, m)
		b >>= 1
	}
	return r
}

func addmod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= m-b {
		return a - (m - b)
	}
	return a + b
}

// ModExp is the reference modular exponentiation used to verify the
// victim's arithmetic.
func ModExp(base uint64, key Key, modulus uint64) uint64 {
	if modulus == 0 {
		panic("rsa: zero modulus")
	}
	acc := uint64(1)
	base %= modulus
	for _, bit := range key {
		acc = mulmod(acc, acc, modulus)
		if bit {
			acc = mulmod(acc, base, modulus)
		}
	}
	return acc
}

// TraceString renders an observed operation sequence for debugging, given
// per-bit multiply observations.
func TraceString(mulSeen []bool) string {
	out := make([]byte, 0, len(mulSeen)*4)
	for _, m := range mulSeen {
		if m {
			out = append(out, 's', 'r', 'm', 'r')
		} else {
			out = append(out, 's', 'r')
		}
	}
	return string(out)
}
