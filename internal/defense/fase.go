package defense

import (
	"timecache/internal/cache"
	"timecache/internal/core"
)

// FASE-style selective flushing (arXiv:2204.05508): at each context switch
// the switching core's private caches are walked and every line not owned
// by the incoming process is invalidated, so a resumed attacker finds none
// of the victim's lines to observe while keeping its own working set warm
// (unlike flush-on-switch, which discards everything). The shared LLC is
// left alone, as in the proposal's per-core scope.
//
// Ownership is tracked per (core, line): the per-access hook stamps the
// accessed line with the PID currently running on the accessing core, and
// the switch hook evicts the core's L1 lines whose stamp differs from the
// incoming PID, visiting lines in cache index order (deterministic — map
// lookups decide, map iteration never does). Lines resident but never
// demand-accessed since fill (next-line prefetches) carry no stamp and are
// flushed conservatively. With SMT the stamp is the core's most recently
// switched-in PID, a model simplification the SMT attack scenario measures.
// The switch charge uses core.SelectiveFlushCost: a fixed walk setup plus a
// small per-invalidated-line increment.
type faseDefense struct {
	h *cache.Hierarchy
	// cur is the PID most recently switched in on each core (0 before the
	// first switch).
	cur []int32
	// owner maps faseKey(core, lineAddr) to the last PID that touched the
	// line on that core.
	owner map[uint64]int32
	stats cache.DefenseStats
}

func newFASE(h *cache.Hierarchy) cache.Defense {
	return &faseDefense{
		h:     h,
		cur:   make([]int32, h.Config().Cores),
		owner: make(map[uint64]int32),
		stats: cache.DefenseStats{Name: FASE},
	}
}

// faseKey tags a line address with its core; physical line addresses are
// far below 2^48, so the tag cannot collide.
func faseKey(corei int, lineAddr uint64) uint64 {
	return lineAddr | uint64(corei+1)<<48
}

func (d *faseDefense) Name() string { return FASE }

func (d *faseDefense) OnAccess(r *cache.Request) {
	corei := d.h.CoreOf(r.Ctx)
	pid := d.cur[corei]
	if pid == 0 {
		return // no process has been switched in yet (cold boot accesses)
	}
	d.stats.Checks++
	d.owner[faseKey(corei, r.Addr&^(cache.LineSize-1))] = pid
}

func (d *faseDefense) OnSwitch(corei, outPID, inPID int, now uint64) uint64 {
	if inPID == 0 {
		return 0 // deschedule with nothing incoming: defer to the next switch-in
	}
	d.cur[corei] = int32(inPID)
	in := int32(inPID)
	flushed := d.h.EvictCoreL1(corei, func(lineAddr uint64) bool {
		return d.owner[faseKey(corei, lineAddr)] == in
	})
	cost := core.SelectiveFlushCost(flushed)
	d.stats.Evictions += uint64(flushed)
	d.stats.SwitchCycles += cost
	return cost
}

func (d *faseDefense) Reset() {
	clear(d.cur)
	clear(d.owner)
	d.stats = cache.DefenseStats{Name: FASE}
}

func (d *faseDefense) CopyFrom(src cache.Defense) {
	s, ok := src.(*faseDefense)
	if !ok {
		panic("defense: fase CopyFrom from a different defense kind")
	}
	copy(d.cur, s.cur)
	clear(d.owner)
	for k, v := range s.owner {
		d.owner[k] = v
	}
	d.stats = s.stats
}

func (d *faseDefense) Stats() cache.DefenseStats { return d.stats }
