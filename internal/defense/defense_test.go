package defense

import (
	"fmt"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/core"
)

// TestRegistryKinds pins the registry surface: the canonical kind order
// (which the matrix job's default defense set and the ablation row order
// inherit), validity checks, and the static configuration each kind routes
// to. A reordering here is a fingerprint-visible change.
func TestRegistryKinds(t *testing.T) {
	wantOrder := []string{None, TimeCache, FTM, DAWGLite, FlushOnSwitch, Clepsydra, FASE}
	got := Kinds()
	if len(got) != len(wantOrder) {
		t.Fatalf("Kinds() = %v, want %v", got, wantOrder)
	}
	for i, k := range wantOrder {
		if got[i] != k {
			t.Fatalf("Kinds()[%d] = %q, want %q", i, got[i], k)
		}
		if !Valid(k) {
			t.Errorf("Valid(%q) = false", k)
		}
	}
	if Valid("no-such-defense") {
		t.Error("Valid accepted an unknown kind")
	}

	wantStatic := map[string]Static{
		None:          {Mode: cache.SecOff},
		TimeCache:     {Mode: cache.SecTimeCache},
		FTM:           {Mode: cache.SecFTM},
		DAWGLite:      {Mode: cache.SecOff, Partitioned: true},
		FlushOnSwitch: {Mode: cache.SecOff, FlushOnSwitch: true},
		Clepsydra:     {Mode: cache.SecOff},
		FASE:          {Mode: cache.SecOff},
	}
	for kind, want := range wantStatic {
		st, err := StaticOf(kind)
		if err != nil {
			t.Fatalf("StaticOf(%q): %v", kind, err)
		}
		if st != want {
			t.Errorf("StaticOf(%q) = %+v, want %+v", kind, st, want)
		}
	}
	if _, err := StaticOf("no-such-defense"); err == nil {
		t.Error("StaticOf accepted an unknown kind")
	}

	for mode, want := range map[cache.SecMode]string{
		cache.SecOff:       None,
		cache.SecTimeCache: TimeCache,
		cache.SecFTM:       FTM,
	} {
		if got := KindOfMode(mode); got != want {
			t.Errorf("KindOfMode(%v) = %q, want %q", mode, got, want)
		}
	}
}

// TestNewRuntimeKinds: the five historical mechanisms are pure-static (no
// runtime Defense, so the hot path keeps its nil check), the two new ones
// construct runtimes that report their registry name, and an unvalidated
// kind panics rather than silently running undefended.
func TestNewRuntimeKinds(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	static := map[string]bool{None: true, TimeCache: true, FTM: true, DAWGLite: true, FlushOnSwitch: true}
	for _, kind := range Kinds() {
		d := NewRuntime(kind, h)
		if static[kind] {
			if d != nil {
				t.Errorf("NewRuntime(%q) = %T, want nil (pure-static kind)", kind, d)
			}
			continue
		}
		if d == nil {
			t.Fatalf("NewRuntime(%q) = nil, want a runtime defense", kind)
		}
		if d.Name() != kind {
			t.Errorf("NewRuntime(%q).Name() = %q", kind, d.Name())
		}
		if s := d.Stats(); s.Name != kind || s.Checks != 0 || s.Evictions != 0 || s.SwitchCycles != 0 {
			t.Errorf("fresh %q stats = %+v, want named zeros", kind, s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRuntime with an unknown kind did not panic")
		}
	}()
	NewRuntime("no-such-defense", h)
}

// TestClepsydraTTLEviction drives the hierarchy directly: a line hits inside
// its TTL window and is evicted by the per-access hook once the deadline
// passes, so the re-access pays the full cold-miss latency again.
func TestClepsydraTTLEviction(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	d := NewRuntime(Clepsydra, h)
	h.SetDefense(d)
	const addr = 0x1000

	cold := h.Access(1, 0, addr, cache.Load)
	if cold.Hit {
		t.Fatal("first access must miss")
	}
	if r := h.Access(100, 0, addr, cache.Load); !r.Hit {
		t.Fatal("re-access inside the TTL window must hit")
	}
	// Past base TTL + max jitter the hook must expire the line before serving.
	late := uint64(1 + clepsydraBaseTTL + clepsydraJitterMask + 1)
	r := h.Access(late, 0, addr, cache.Load)
	if r.Hit || r.Latency != cold.Latency {
		t.Fatalf("post-TTL access = %+v, want a full cold miss (latency %d)", r, cold.Latency)
	}
	if s := d.Stats(); s.Evictions != 1 {
		t.Fatalf("clepsydra stats = %+v, want exactly 1 eviction", s)
	}
}

// TestFASESelectiveFlush: the switch-in hook evicts exactly the L1 lines the
// incoming process does not own, charges core.SelectiveFlushCost for them,
// and keeps the incoming process's own working set warm.
func TestFASESelectiveFlush(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	d := NewRuntime(FASE, h)
	h.SetDefense(d)

	// Switch in PID 7 and let it touch two lines.
	if c := h.DefenseSwitch(0, 0, 7, 0); c != core.SelectiveFlushCost(0) {
		t.Fatalf("first switch-in cost = %d, want %d (empty walk)", c, core.SelectiveFlushCost(0))
	}
	h.Access(10, 0, 0x1000, cache.Load)
	h.Access(20, 0, 0x2000, cache.Load)

	// Switch in PID 9: both of PID 7's lines must go.
	if c, want := h.DefenseSwitch(0, 7, 9, 1000), core.SelectiveFlushCost(2); c != want {
		t.Fatalf("switch-in over 2 foreign lines cost = %d, want %d", c, want)
	}
	if r := h.Access(1100, 0, 0x1000, cache.Load); r.Hit {
		t.Fatal("foreign line survived a FASE switch-in")
	}
	// That access stamped 0x1000 for PID 9; a same-PID reschedule keeps it,
	// so the walk finds nothing to evict.
	if c, want := h.DefenseSwitch(0, 9, 9, 2000), core.SelectiveFlushCost(0); c != want {
		t.Fatalf("reschedule cost = %d, want %d", c, want)
	}
	if r := h.Access(2100, 0, 0x1000, cache.Load); !r.Hit {
		t.Fatal("own line did not survive a FASE switch-in")
	}
	st := d.Stats()
	if st.Evictions == 0 || st.SwitchCycles == 0 || st.Checks == 0 {
		t.Fatalf("fase stats = %+v, want nonzero counters", st)
	}
}

// driveDefense runs a deterministic access/switch pattern against h and
// returns a fingerprint of everything observable: per-access hit/latency,
// switch charges, and the defense's own counters.
func driveDefense(h *cache.Hierarchy, d cache.Defense) string {
	fp := ""
	now := uint64(1)
	h.DefenseSwitch(0, 0, 3, now)
	for i := 0; i < 64; i++ {
		now += 50
		addr := uint64(0x1000 + (i%16)*cache.LineSize)
		r := h.Access(now, 0, addr, cache.Load)
		fp += fmt.Sprintf("%v/%d ", r.Hit, r.Latency)
		if i%16 == 15 {
			now += 1000
			fp += fmt.Sprintf("sw=%d ", h.DefenseSwitch(0, 3+i%2, 4-i%2, now))
		}
	}
	return fp + fmt.Sprintf("stats=%+v", d.Stats())
}

// TestDefenseResetDeterminism is the pooled-reuse contract at the defense
// layer: Hierarchy.Reset keeps the runtime defense installed, returns it to
// its freshly constructed state, and a re-run replays identically.
func TestDefenseResetDeterminism(t *testing.T) {
	for _, kind := range []string{Clepsydra, FASE} {
		t.Run(kind, func(t *testing.T) {
			build := func() (*cache.Hierarchy, cache.Defense) {
				h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
				d := NewRuntime(kind, h)
				h.SetDefense(d)
				return h, d
			}
			h1, d1 := build()
			fresh := driveDefense(h1, d1)
			h2, d2 := build()
			if got := driveDefense(h2, d2); got != fresh {
				t.Fatalf("two fresh runs disagree:\n got %s\nwant %s", got, fresh)
			}
			h2.Reset()
			if h2.Defense() != d2 {
				t.Fatal("Hierarchy.Reset uninstalled the runtime defense")
			}
			if got := driveDefense(h2, d2); got != fresh {
				t.Fatalf("post-Reset run diverged from fresh:\n got %s\nwant %s", got, fresh)
			}
		})
	}
}

// TestDefenseCopyFrom: CopyFrom deep-copies (later mutations of the source
// do not leak into the copy) and panics across kinds — a snapshot that
// cannot carry its defense state must refuse, not silently drop it.
func TestDefenseCopyFrom(t *testing.T) {
	for _, kind := range []string{Clepsydra, FASE} {
		t.Run(kind, func(t *testing.T) {
			h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
			src := NewRuntime(kind, h)
			h.SetDefense(src)
			h.DefenseSwitch(0, 0, 3, 1)
			for i := 0; i < 8; i++ {
				h.Access(uint64(10+i*50), 0, uint64(0x1000+i*cache.LineSize), cache.Load)
			}
			want := src.Stats()

			h2 := cache.NewHierarchy(cache.DefaultHierarchyConfig())
			dst := NewRuntime(kind, h2)
			dst.CopyFrom(src)
			if got := dst.Stats(); got != want {
				t.Fatalf("copied stats = %+v, want %+v", got, want)
			}
			// Mutating the source afterwards must not move the copy.
			h.Access(5000, 0, 0xFF000, cache.Load)
			h.DefenseSwitch(0, 3, 4, 6000)
			if got := dst.Stats(); got != want {
				t.Fatalf("copy shares state with source: %+v != %+v", got, want)
			}
		})
	}
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	c := NewRuntime(Clepsydra, h)
	f := NewRuntime(FASE, h)
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom across defense kinds did not panic")
		}
	}()
	c.CopyFrom(f)
}
