// Package defense is the registry of cache-side-channel defenses the
// simulator can evaluate. Every defense has two halves:
//
//   - A Static half: the structural hierarchy/kernel configuration it needs
//     (SecMode for the s-bit trackers, DAWG-lite way partitioning,
//     flush-on-switch). These mechanisms are wired into the hierarchy at
//     construction and cost nothing at runtime beyond what they always did.
//   - An optional runtime half: a cache.Defense instance holding per-access
//     state of its own (Clepsydra-style timed eviction, FASE-style
//     selective flushing), installed with Hierarchy.SetDefense.
//
// The historical modes (baseline/timecache/ftm and the ablation's
// partitioned and flush-on-switch variants) are pure-static kinds: selecting
// them through this registry configures the machine exactly as the legacy
// flags did, so their results are byte-identical and their per-access path
// still pays only a nil check.
package defense

import (
	"fmt"
	"strings"

	"timecache/internal/cache"
)

// Registry kind names. These are user-facing (job specs, CLI flags, result
// tables) and participate in result-cache fingerprints — renaming one is a
// fingerprint-schema change.
const (
	// None is the insecure baseline: every resident line hits.
	None = "none"
	// TimeCache is the paper's defense: per-context s-bits at every level.
	TimeCache = "timecache"
	// FTM is the First Time Miss baseline: per-core presence bits at the
	// LLC only, no context-switch bookkeeping.
	FTM = "ftm"
	// DAWGLite way-partitions every cache across security domains.
	DAWGLite = "dawg-lite"
	// FlushOnSwitch flushes every cache at each context switch.
	FlushOnSwitch = "flush-on-switch"
	// Clepsydra evicts lines when their per-fill time-to-live expires
	// (ClepsydraCache, arXiv:2104.11469).
	Clepsydra = "clepsydra"
	// FASE selectively flushes the switching core's private caches at each
	// context switch, keeping the incoming process's own lines
	// (arXiv:2204.05508).
	FASE = "fase"
)

// Static is the structural machine configuration a defense kind requires.
type Static struct {
	Mode          cache.SecMode
	Partitioned   bool
	FlushOnSwitch bool
}

// kindSpec ties a registry name to its static config and optional runtime
// constructor. Declaration order is the canonical presentation order
// (Kinds, the matrix job's default defense set).
type kindSpec struct {
	name    string
	static  Static
	runtime func(h *cache.Hierarchy) cache.Defense
}

var kinds = []kindSpec{
	{None, Static{Mode: cache.SecOff}, nil},
	{TimeCache, Static{Mode: cache.SecTimeCache}, nil},
	{FTM, Static{Mode: cache.SecFTM}, nil},
	{DAWGLite, Static{Mode: cache.SecOff, Partitioned: true}, nil},
	{FlushOnSwitch, Static{Mode: cache.SecOff, FlushOnSwitch: true}, nil},
	{Clepsydra, Static{Mode: cache.SecOff}, newClepsydra},
	{FASE, Static{Mode: cache.SecOff}, newFASE},
}

func lookup(kind string) *kindSpec {
	for i := range kinds {
		if kinds[i].name == kind {
			return &kinds[i]
		}
	}
	return nil
}

// Kinds returns every registered defense kind in canonical order.
func Kinds() []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.name
	}
	return out
}

// Valid reports whether kind names a registered defense.
func Valid(kind string) bool { return lookup(kind) != nil }

// StaticOf returns the structural configuration for kind, or an error
// naming the valid kinds when it is unknown.
func StaticOf(kind string) (Static, error) {
	if k := lookup(kind); k != nil {
		return k.static, nil
	}
	return Static{}, fmt.Errorf("defense: unknown kind %q (valid: %s)", kind, strings.Join(Kinds(), ", "))
}

// NewRuntime builds kind's runtime defense over h, or nil when the kind is
// pure-static. The caller must have validated kind (machine.Config
// validation, job validation); an unknown kind panics.
func NewRuntime(kind string, h *cache.Hierarchy) cache.Defense {
	k := lookup(kind)
	if k == nil {
		panic(fmt.Sprintf("defense: unknown kind %q", kind))
	}
	if k.runtime == nil {
		return nil
	}
	return k.runtime(h)
}

// KindOfMode maps a structural SecMode to its registry kind, for migrating
// mode-based call sites onto the seam.
func KindOfMode(m cache.SecMode) string {
	switch m {
	case cache.SecTimeCache:
		return TimeCache
	case cache.SecFTM:
		return FTM
	default:
		return None
	}
}
