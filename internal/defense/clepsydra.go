package defense

import "timecache/internal/cache"

// Clepsydra-style time-based eviction (ClepsydraCache, arXiv:2104.11469):
// every cached line carries a time-to-live assigned at fill; when it runs
// out the line is evicted regardless of use, so an attacker observing
// evictions cannot distinguish capacity conflicts from timeouts and
// eviction-set construction is disrupted. The TTL is randomized per line so
// expiries do not phase-lock with victim activity.
//
// The simulator models the TTL table beside the hierarchy, keyed by line
// address: the per-access hook lazily expires the accessed line before the
// access is served (the modeled hardware evicts in the background, so no
// latency is charged to the access that observes the expiry) and assigns a
// fresh deadline when the line is (re)filled by that access. A line that is
// capacity-evicted and refilled within one TTL window keeps its original
// deadline — the line's clock does not reset on refill, which is the
// conservative reading for the attacker. Only the accessed line is
// inspected, so the hook is O(1), decisions never iterate the map, and the
// jitter stream is derived from the access stream — fully deterministic.
const (
	// clepsydraBaseTTL is the minimum line lifetime in cycles. It is sized
	// to roughly one scheduler slice (kernel.DefaultConfig's 200k cycles):
	// a line survives its owner's slice but rarely the neighbor's.
	clepsydraBaseTTL = 150_000
	// clepsydraJitterMask bounds the per-line random TTL extension
	// (up to ~32k cycles on top of the base).
	clepsydraJitterMask = (1 << 15) - 1
	// clepsydraSeed seeds the deterministic jitter hash.
	clepsydraSeed = 0x9E3779B97F4A7C15
)

type clepsydraDefense struct {
	h *cache.Hierarchy
	// deadline maps a line address to the cycle its TTL expires.
	deadline map[uint64]uint64
	// nonce counts deadline assignments, decorrelating the jitter of
	// successive TTLs on the same line.
	nonce uint64
	stats cache.DefenseStats
}

func newClepsydra(h *cache.Hierarchy) cache.Defense {
	return &clepsydraDefense{
		h:        h,
		deadline: make(map[uint64]uint64),
		stats:    cache.DefenseStats{Name: Clepsydra},
	}
}

func (d *clepsydraDefense) Name() string { return Clepsydra }

func (d *clepsydraDefense) OnAccess(r *cache.Request) {
	lineAddr := r.Addr &^ (cache.LineSize - 1)
	d.stats.Checks++
	if dl, ok := d.deadline[lineAddr]; ok {
		if r.Now < dl {
			return
		}
		if present, _ := d.h.EvictLine(lineAddr); present {
			d.stats.Evictions++
		}
	}
	d.nonce++
	d.deadline[lineAddr] = r.Now + clepsydraBaseTTL + d.jitter(lineAddr)
}

// jitter hashes (lineAddr, nonce) to a bounded TTL extension.
func (d *clepsydraDefense) jitter(lineAddr uint64) uint64 {
	x := (lineAddr >> cache.LineShift) ^ (d.nonce * clepsydraSeed)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x & clepsydraJitterMask
}

func (d *clepsydraDefense) OnSwitch(corei, outPID, inPID int, now uint64) uint64 {
	return 0 // Clepsydra has no context-switch work
}

func (d *clepsydraDefense) Reset() {
	clear(d.deadline)
	d.nonce = 0
	d.stats = cache.DefenseStats{Name: Clepsydra}
}

func (d *clepsydraDefense) CopyFrom(src cache.Defense) {
	s, ok := src.(*clepsydraDefense)
	if !ok {
		panic("defense: clepsydra CopyFrom from a different defense kind")
	}
	clear(d.deadline)
	for k, v := range s.deadline {
		d.deadline[k] = v
	}
	d.nonce = s.nonce
	d.stats = s.stats
}

func (d *clepsydraDefense) Stats() cache.DefenseStats { return d.stats }
