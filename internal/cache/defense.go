// The Defense seam: a pluggable per-access / per-switch security mechanism
// hook at the served-request trail. The built-in mechanisms — TimeCache
// s-bits (core.Tracker), FTM presence bits, DAWG-lite way partitioning,
// flush-on-switch — are wired structurally into the hierarchy and kernel by
// HierarchyConfig/kernel.Config and install no runtime Defense, so their hot
// paths are exactly the historical ones (one nil check per access, like the
// Observer). Defenses that need per-access state of their own (ClepsydraCache
// time-based eviction, FASE selective flushing) implement Defense and are
// installed with SetDefense; internal/defense owns the registry.
package cache

// Defense is a runtime security mechanism attached to the hierarchy. All
// hooks run synchronously on the simulation's hot paths and must be
// deterministic: no wall clock, no map iteration for decisions, no
// randomness beyond seeds derived from the access stream.
type Defense interface {
	// Name returns the defense kind (the registry name).
	Name() string
	// OnAccess runs before the access described by r's input fields (Now,
	// Ctx, Addr, Kind) is served, so state changes it makes (e.g. a
	// time-based eviction) are visible to this access. It must not touch
	// r's response fields and must not retain r.
	OnAccess(r *Request)
	// OnSwitch runs once per charged context switch on the switching core,
	// after the OS has updated the active security domain. outPID/inPID are
	// zero when no process occupies that side. The returned cycles are
	// charged to the switching core inside the switch window.
	OnSwitch(core, outPID, inPID int, now uint64) uint64
	// Reset returns the defense to its freshly constructed state; pooled
	// machine reuse depends on reset-equals-fresh.
	Reset()
	// CopyFrom deep-copies src's state (snapshot/fork support). It must
	// panic if src is a different concrete defense: a snapshot that cannot
	// carry its defense state must refuse rather than silently drop it.
	CopyFrom(src Defense)
	// Stats returns a snapshot of the defense's own counters.
	Stats() DefenseStats
}

// DefenseStats counts a runtime defense's actions. Structural defenses
// (s-bits, partitioning) account through the existing cache/kernel counters
// instead.
type DefenseStats struct {
	Name string
	// Evictions is the number of lines the defense itself invalidated.
	Evictions uint64
	// SwitchCycles is the total extra switch-time cycles the defense charged.
	SwitchCycles uint64
	// Checks counts per-access hook invocations that inspected state.
	Checks uint64
}

// SetDefense installs (or, with nil, removes) the runtime defense. Unlike
// the observer, an installed defense is part of the machine's configured
// behavior: Reset resets its state but keeps it installed.
func (h *Hierarchy) SetDefense(d Defense) { h.def = d }

// Defense returns the installed runtime defense, nil when the configured
// mechanism is structural.
func (h *Hierarchy) Defense() Defense { return h.def }

// DefenseStats returns the installed defense's counters, or a zero snapshot
// naming the structural mode when no runtime defense is installed.
func (h *Hierarchy) DefenseStats() DefenseStats {
	if h.def != nil {
		return h.def.Stats()
	}
	return DefenseStats{Name: h.cfg.Mode.String()}
}

// DefenseSwitch runs the installed defense's context-switch hook and returns
// the cycles to charge; zero when no runtime defense is installed. The
// kernel calls it once per charged switch, inside the switch window.
func (h *Hierarchy) DefenseSwitch(core, outPID, inPID int, now uint64) uint64 {
	if h.def == nil {
		return 0
	}
	return h.def.OnSwitch(core, outPID, inPID, now)
}

// EvictLine invalidates lineAddr at every level through the directory-safe
// flush path, reporting whether any copy was resident and whether a dirty
// copy had to be written back. Defense implementations use it for
// time-based (Clepsydra-style) evictions; unlike ServeFlush it charges no
// latency — the modeled eviction happens in background hardware.
func (h *Hierarchy) EvictLine(lineAddr uint64) (present, dirty bool) {
	return h.flushLine(lineAddr &^ (LineSize - 1))
}

// EvictCoreL1 invalidates every valid line in core's L1I and L1D for which
// keep returns false (keep == nil evicts everything), returning the number
// of lines evicted. Lines are visited in cache index order, so the eviction
// sequence is deterministic. Modified lines are written back into the LLC
// and the sharer directory is updated, exactly as capacity evictions do.
// FASE-style selective flushing uses it at context switches.
func (h *Hierarchy) EvictCoreL1(core int, keep func(lineAddr uint64) bool) int {
	n := h.evictL1Lines(h.l1i[core], core, true, keep)
	n += h.evictL1Lines(h.l1d[core], core, false, keep)
	return n
}

func (h *Hierarchy) evictL1Lines(l1 *Cache, core int, inst bool, keep func(uint64) bool) int {
	n := 0
	for idx := range l1.lines {
		l := &l1.lines[idx]
		if l.st == invalid || (keep != nil && keep(l.tag)) {
			continue
		}
		h.evictL1Line(l1, idx, core, inst)
		l1.invalidate(idx)
		if h.cfg.CoherenceCheck {
			h.verifyLine(l.tag, "evictCoreL1")
		}
		n++
	}
	return n
}
