package cache

import "testing"

// nopDefense is a minimal runtime Defense for seam tests: it counts hook
// invocations and charges a fixed switch cost, touching nothing else.
type nopDefense struct{ stats DefenseStats }

func (d *nopDefense) Name() string         { return "nop" }
func (d *nopDefense) OnAccess(r *Request)  { d.stats.Checks++ }
func (d *nopDefense) Reset()               { d.stats = DefenseStats{Name: "nop"} }
func (d *nopDefense) Stats() DefenseStats  { return d.stats }
func (d *nopDefense) CopyFrom(src Defense) { d.stats = src.(*nopDefense).stats }
func (d *nopDefense) OnSwitch(core, outPID, inPID int, now uint64) uint64 {
	d.stats.SwitchCycles += 7
	return 7
}

// TestDefenseServeZeroAlloc pins the cost of the defense seam on the
// simulator's hottest path: with the structural kinds (none, timecache) the
// hierarchy carries no runtime defense and Serve must stay at 0 allocs/op
// exactly as before the seam existed, and even with a runtime defense
// installed the per-access hook dispatch itself must not allocate.
func TestDefenseServeZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		mode SecMode
		def  Defense
	}{
		{"none", SecOff, nil},
		{"timecache", SecTimeCache, nil},
		{"runtime-hook", SecOff, &nopDefense{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultHierarchyConfig()
			cfg.Mode = tc.mode
			h := NewHierarchy(cfg)
			h.SetDefense(tc.def)
			r := new(Request)
			r.Ctx, r.Kind = 0, Load
			var i uint64
			allocs := testing.AllocsPerRun(10_000, func() {
				i++
				r.Now, r.Addr = i, (i%4096)*LineSize
				h.Serve(r)
			})
			if allocs != 0 {
				t.Fatalf("Serve allocated %.1f times per access, want 0", allocs)
			}
		})
	}
}

// TestDefenseSeamHooks pins the seam's contract: every served access runs
// the per-access hook, DefenseSwitch forwards the hook's charge (and is free
// when no runtime defense is installed), and Reset keeps the defense
// installed while resetting its state.
func TestDefenseSeamHooks(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if c := h.DefenseSwitch(0, 1, 2, 100); c != 0 {
		t.Fatalf("DefenseSwitch with no defense charged %d cycles", c)
	}
	if st := h.DefenseStats(); st.Name != SecOff.String() {
		t.Fatalf("structural DefenseStats = %+v, want zero stats named %q", st, SecOff.String())
	}

	d := &nopDefense{stats: DefenseStats{Name: "nop"}}
	h.SetDefense(d)
	for i := 0; i < 5; i++ {
		h.Access(uint64(1+i), 0, uint64(i)*LineSize, Load)
	}
	if c := h.DefenseSwitch(0, 1, 2, 100); c != 7 {
		t.Fatalf("DefenseSwitch charge = %d, want the hook's 7", c)
	}
	st := h.DefenseStats()
	if st.Checks != 5 || st.SwitchCycles != 7 {
		t.Fatalf("stats = %+v, want 5 checks and 7 switch cycles", st)
	}
	h.Reset()
	if h.Defense() != d {
		t.Fatal("Reset uninstalled the defense")
	}
	if st := h.DefenseStats(); st.Checks != 0 || st.SwitchCycles != 0 {
		t.Fatalf("post-Reset stats = %+v, want zeros", st)
	}
	h.SetDefense(nil)
	if h.Defense() != nil {
		t.Fatal("SetDefense(nil) did not uninstall")
	}
}
