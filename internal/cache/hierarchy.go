package cache

import (
	"fmt"
	"math/bits"

	"timecache/internal/clock"
	"timecache/internal/core"
	"timecache/internal/replacement"
)

// SecMode selects which defense, if any, the hierarchy applies.
type SecMode int

// Defense modes.
const (
	// SecOff is the insecure baseline: every resident line hits.
	SecOff SecMode = iota
	// SecTimeCache is the paper's defense: per-context s-bits at every
	// level, saved/restored across context switches with Tc/Ts updates.
	SecTimeCache
	// SecFTM is the First Time Miss baseline (paper §VIII-B2): presence
	// bits per core at the LLC only, with no context-switch bookkeeping.
	SecFTM
)

func (m SecMode) String() string {
	switch m {
	case SecOff:
		return "baseline"
	case SecTimeCache:
		return "timecache"
	case SecFTM:
		return "ftm"
	default:
		return fmt.Sprintf("SecMode(%d)", int(m))
	}
}

// HierarchyConfig describes a full memory hierarchy.
type HierarchyConfig struct {
	Cores          int
	ThreadsPerCore int

	L1Size  int
	L1Ways  int
	L1Lat   uint64
	LLCSize int
	LLCWays int
	LLCLat  uint64

	// DRAMLat is the memory access latency in cycles.
	DRAMLat uint64
	// RemoteL1Lat is the extra latency of a dirty line forwarded from
	// another core's L1 (between LLC and DRAM; needed for the
	// invalidate+transfer attack of §VII-B).
	RemoteL1Lat uint64

	// FlushBase is the latency of a clflush that finds nothing cached;
	// FlushPresentExtra is added when the line was resident, and
	// FlushDirtyExtra when a dirty copy had to be written back. The
	// differences are the flush+flush channel (§VII-C); setting
	// ConstantTimeFlush charges FlushBase+FlushPresentExtra+FlushDirtyExtra
	// always (the paper's suggested mitigation: dummy writeback).
	FlushBase         uint64
	FlushPresentExtra uint64
	FlushDirtyExtra   uint64
	ConstantTimeFlush bool

	Policy     replacement.Kind
	PolicySeed uint64

	Mode SecMode
	// Sec configures TimeCache metadata (timestamp width, gate-level).
	Sec core.Config

	// Partitioned enables DAWG-lite way-partitioning of every cache across
	// security domains (defense baseline for ablation). The active domain
	// of each core is set by the OS at context switch via SetActiveDomain,
	// so time-multiplexed processes are isolated too.
	Partitioned bool
	// PartitionDomains is the number of security domains when Partitioned
	// (DAWG supports at most 16); defaults to 2.
	PartitionDomains int
	// IndexRand, when nonzero, enables CEASER-lite index randomization of
	// the LLC with the given key.
	IndexRand uint64

	// NextLinePrefetch enables a simple next-line prefetcher: every demand
	// miss also fills lineAddr+64 in the background (no latency charged to
	// the triggering access). Prefetched lines carry the *requesting*
	// context's s-bit, so prefetching does not weaken TimeCache: a line
	// prefetched on behalf of the victim is still a first access for the
	// attacker.
	NextLinePrefetch bool

	// DisableDirectory forces the broadcast (probe-every-core) coherence
	// implementation even where the LLC sharer directory would apply.
	// Used for A/B benchmarking the two paths; the directory is also
	// bypassed automatically for single-core hierarchies (nothing to
	// snoop), way-partitioned mode (one cache can hold duplicate copies
	// of a line, which a per-core presence bit cannot represent), and
	// beyond 64 cores (presence mask width).
	DisableDirectory bool
	// CoherenceCheck cross-checks the sharer directory against a
	// brute-force probe of every L1 after every coherence event and
	// panics on divergence. Debug mode (-coherence-check on the CLIs);
	// costs O(cores) per access.
	CoherenceCheck bool
}

// DefaultHierarchyConfig mirrors the paper's gem5 setup: 32 KB 8-way L1I and
// L1D, 2 MB 16-way LLC, TimingSimpleCPU-style latencies at 2 GHz.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		Cores:             1,
		ThreadsPerCore:    1,
		L1Size:            32 << 10,
		L1Ways:            8,
		L1Lat:             2,
		LLCSize:           2 << 20,
		LLCWays:           16,
		LLCLat:            20,
		DRAMLat:           200,
		RemoteL1Lat:       60,
		FlushBase:         40,
		FlushPresentExtra: 40,
		FlushDirtyExtra:   40,
		Policy:            replacement.LRU,
		Sec:               core.DefaultConfig(),
	}
}

// Result describes one memory access.
type Result struct {
	// Latency is the total cycles the access took.
	Latency uint64
	// Hit reports whether the access was serviced as an L1 hit (visible).
	Hit bool
	// FirstAccess reports whether any level delayed the access because a
	// resident line's s-bit was clear.
	FirstAccess bool
	// Level is the level that supplied the data: 1 = L1, 2 = LLC,
	// 3 = memory (or remote L1 forward).
	Level int
}

// Observer receives one callback per completed memory access, with the full
// request trail. It is the hierarchy's telemetry hook: when no observer is
// installed the Serve hot path pays only a single nil check (see
// BenchmarkAccessTelemetryDisabled). Implementations run synchronously
// inside Serve, must be fast, and must not retain r past the call — the
// Request is reused for the next access.
type Observer interface {
	ObserveAccess(r *Request)
}

// Hierarchy is a multi-core cache hierarchy with a shared inclusive LLC.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i []*Cache // per core
	l1d []*Cache // per core
	llc *Cache
	// dir is the LLC sharer directory (see directory.go); nil when the
	// hierarchy uses the broadcast coherence fallback.
	dir *directory
	obs Observer
	// activeDomain is each core's current security domain (partitioned
	// mode); the OS updates it at context switches.
	activeDomain []int
	// def is the installed runtime defense (see defense.go); nil when the
	// configured mechanism is structural (s-bits, partitioning, flushes),
	// which keeps the per-access path at one nil check exactly like obs.
	def Defense
	// scratch backs the Access/Flush compatibility wrappers: a long-lived
	// Request so callers without their own (tests, attack harnesses) still
	// pay zero allocations per access.
	scratch Request
}

// SetObserver installs (or, with nil, removes) the access observer.
func (h *Hierarchy) SetObserver(o Observer) { h.obs = o }

// Observer returns the installed access observer, nil when detached.
func (h *Hierarchy) Observer() Observer { return h.obs }

// SetActiveDomain records the security domain of the process now running
// on a core; cache partitioning confines its fills and lookups to that
// domain's ways.
func (h *Hierarchy) SetActiveDomain(core, domain int) {
	if h.cfg.Partitioned {
		h.activeDomain[core] = domain % h.partitionDomains()
	}
}

func (h *Hierarchy) partitionDomains() int {
	if h.cfg.PartitionDomains > 0 {
		return h.cfg.PartitionDomains
	}
	return 2
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 || cfg.ThreadsPerCore <= 0 {
		panic("cache: cores and threads must be positive")
	}
	h := &Hierarchy{cfg: cfg}
	totalCtx := cfg.Cores * cfg.ThreadsPerCore

	l1SecCfg := func() (*core.Config, int) {
		if cfg.Mode == SecTimeCache {
			c := cfg.Sec
			return &c, cfg.ThreadsPerCore
		}
		return nil, 0
	}
	llcSecCfg := func() (*core.Config, int) {
		switch cfg.Mode {
		case SecTimeCache:
			c := cfg.Sec
			return &c, totalCtx
		case SecFTM:
			// FTM tracks presence per core, not per context, and never
			// saves/restores: the bits persist across context switches.
			c := cfg.Sec
			return &c, cfg.Cores
		}
		return nil, 0
	}

	h.activeDomain = make([]int, cfg.Cores)
	var l1Part, llcPart func(int) (int, int)
	if cfg.Partitioned {
		// The partition is keyed by the security domain active on the
		// accessing context's core, so per-process isolation holds even
		// when processes time-share one hardware context.
		domains := h.partitionDomains()
		byDomain := func(ways int) func(int) (int, int) {
			per := ways / domains
			if per == 0 {
				per = 1
			}
			return func(ctx int) (int, int) {
				d := h.activeDomain[ctx/cfg.ThreadsPerCore]
				return (d * per) % ways, per
			}
		}
		l1Part = byDomain(cfg.L1Ways)
		llcPart = byDomain(cfg.LLCWays)
	}

	for c := 0; c < cfg.Cores; c++ {
		sec, n := l1SecCfg()
		h.l1i = append(h.l1i, New(Config{
			Name: fmt.Sprintf("l1i%d", c), Size: cfg.L1Size, Ways: cfg.L1Ways,
			Latency: cfg.L1Lat, Policy: cfg.Policy, PolicySeed: cfg.PolicySeed + uint64(c),
			Sec: sec, SecContexts: n, Partition: l1Part,
		}))
		sec, n = l1SecCfg()
		h.l1d = append(h.l1d, New(Config{
			Name: fmt.Sprintf("l1d%d", c), Size: cfg.L1Size, Ways: cfg.L1Ways,
			Latency: cfg.L1Lat, Policy: cfg.Policy, PolicySeed: cfg.PolicySeed + 100 + uint64(c),
			Sec: sec, SecContexts: n, Partition: l1Part,
		}))
	}
	var idx func(uint64) uint64
	if cfg.IndexRand != 0 {
		key := cfg.IndexRand
		idx = func(lineAddr uint64) uint64 {
			x := (lineAddr >> LineShift) ^ key
			x ^= x >> 33
			x *= 0xFF51AFD7ED558CCD
			x ^= x >> 33
			return x
		}
	}
	sec, n := llcSecCfg()
	h.llc = New(Config{
		Name: "llc", Size: cfg.LLCSize, Ways: cfg.LLCWays,
		Latency: cfg.LLCLat, Policy: cfg.Policy, PolicySeed: cfg.PolicySeed + 1000,
		Sec: sec, SecContexts: n, Partition: llcPart, Index: idx,
	})
	if cfg.Cores > 1 && cfg.Cores <= 64 && !cfg.Partitioned && !cfg.DisableDirectory {
		h.dir = newDirectory(h.llc)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1I returns core c's instruction cache.
func (h *Hierarchy) L1I(c int) *Cache { return h.l1i[c] }

// L1D returns core c's data cache.
func (h *Hierarchy) L1D(c int) *Cache { return h.l1d[c] }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// CoreOf maps a global hardware context to its core.
func (h *Hierarchy) CoreOf(ctx int) int { return ctx / h.cfg.ThreadsPerCore }

// threadOf maps a global hardware context to its intra-core thread index.
func (h *Hierarchy) threadOf(ctx int) int { return ctx % h.cfg.ThreadsPerCore }

// Contexts returns the total number of hardware contexts.
func (h *Hierarchy) Contexts() int { return h.cfg.Cores * h.cfg.ThreadsPerCore }

// llcCtx maps a global context to the LLC's local context index.
func (h *Hierarchy) llcCtx(ctx int) int {
	if h.cfg.Mode == SecFTM {
		return h.CoreOf(ctx)
	}
	return ctx
}

// Access performs one memory access by global hardware context ctx at the
// line containing addr, at simulation time now. It is a compatibility
// wrapper over Serve using the hierarchy's scratch Request; callers that
// want the full trail (or already own a Request) use Serve directly.
func (h *Hierarchy) Access(now clock.Cycles, ctx int, addr uint64, kind Kind) Result {
	r := &h.scratch
	r.Now, r.Ctx, r.Addr, r.Kind = now, ctx, addr, kind
	h.Serve(r)
	return r.Result()
}

// Serve performs the memory access described by r's input fields (Now, Ctx,
// Addr, Kind), filling r's response trail in place. The observer, if any,
// sees the completed trail once per access.
func (h *Hierarchy) Serve(r *Request) {
	if h.def != nil {
		// The defense hook runs first so state changes it makes (e.g. a
		// Clepsydra-style timed eviction) are visible to this access.
		h.def.OnAccess(r)
	}
	r.beginTrail()
	h.serve(r)
	if h.cfg.CoherenceCheck {
		h.verifyLine(r.Addr&^(LineSize-1), "access")
	}
	if h.obs != nil {
		h.obs.ObserveAccess(r)
	}
}

func (h *Hierarchy) serve(r *Request) {
	lineAddr := r.Addr &^ (LineSize - 1)
	corei := h.CoreOf(r.Ctx)
	l1 := h.l1d[corei]
	if r.Kind == Fetch {
		l1 = h.l1i[corei]
	}
	lctx := h.threadOf(r.Ctx)

	l1.Stats.Accesses++
	if idx := l1.lookup(lineAddr, lctx); idx >= 0 {
		if r.Kind == Store && l1.lines[idx].st == shared {
			hint := int(l1.lines[idx].llcHint)
			h.invalidateOtherL1s(lineAddr, corei, hint)
			l1.lines[idx].st = modified
			if h.dir != nil {
				h.dir.setOwner(hint, lineAddr, corei)
			}
			r.Upgrade = true
		}
		l1.touch(idx)
		if l1.visible(idx, lctx) {
			l1.Stats.Hits++
			r.L1 = LevelTrail{OutcomeHit, l1.cfg.Latency}
			r.Latency = l1.cfg.Latency
			r.Hit = true
			r.Level = 1
			return
		}
		// First access at L1: send the request down, discard the response,
		// then serve from the (unchanged) L1 copy.
		l1.Stats.FirstAccess++
		r.L1 = LevelTrail{OutcomeFirstAccess, l1.cfg.Latency}
		h.serveLLC(r, lineAddr, false)
		l1.sec.OnFirstAccess(idx, lctx)
		r.Latency = l1.cfg.Latency + r.LLC.Cycles + r.MemCycles
		r.FirstAccess = true
		return
	}
	l1.Stats.Misses++
	r.L1 = LevelTrail{OutcomeMiss, l1.cfg.Latency}

	// Check the other cores' L1s for a dirty copy before going to the LLC.
	r.DirtyForward = h.snoopDirty(lineAddr, corei, r.Kind)
	h.serveLLC(r, lineAddr, true)
	if r.DirtyForward && r.Level == 2 {
		// The forward is only observable when the LLC services the request;
		// if the response waits for DRAM (a miss, or a TimeCache first
		// access), the forward hides behind the longer DRAM latency —
		// which is exactly how TimeCache defeats invalidate+transfer
		// (paper §VII-B).
		r.ForwardCycles = h.cfg.RemoteL1Lat
	}

	st := shared
	if r.Kind == Store {
		h.invalidateOtherL1s(lineAddr, corei, r.llcIdx)
		st = modified
	}
	vic := l1.victim(lineAddr, lctx)
	h.evictL1Line(l1, vic, corei, r.Kind == Fetch)
	l1.fill(vic, lineAddr, st, lctx, r.Now)
	if h.dir != nil {
		l1.lines[vic].llcHint = int32(r.llcIdx)
		h.dir.addAt(r.llcIdx, lineAddr, corei, r.Kind == Fetch, st == modified)
	}

	if h.cfg.NextLinePrefetch {
		h.prefetch(r.Now, r.Ctx, lineAddr+LineSize, r.Kind)
		r.Prefetched = true
	}

	r.Latency = l1.cfg.Latency + r.ForwardCycles + r.LLC.Cycles + r.MemCycles
}

// prefetch installs lineAddr into the requesting context's L1 (and the LLC
// via the normal fill path) without charging latency: a background fill
// triggered by a demand miss on the previous line. It never displaces a
// resident copy and never prefetches across a snoop conflict.
func (h *Hierarchy) prefetch(now clock.Cycles, ctx int, lineAddr uint64, kind Kind) {
	corei := h.CoreOf(ctx)
	l1 := h.l1d[corei]
	if kind == Fetch {
		l1 = h.l1i[corei]
	}
	lctx := h.threadOf(ctx)
	if l1.lookup(lineAddr, lctx) >= 0 {
		return // already resident in the requester's L1 (partition)
	}
	// Bring the line into the LLC (a normal fill) and the L1, attributed
	// to the requesting context.
	llc := h.llc
	llcCtx := h.llcCtx(ctx)
	llcIdx := llc.lookup(lineAddr, llcCtx)
	if llcIdx < 0 {
		vic := llc.victim(lineAddr, llcCtx)
		if v := &llc.lines[vic]; v.st != invalid {
			h.backInvalidate(v.tag)
		}
		if h.dir != nil {
			h.dir.onLLCFill(vic, lineAddr)
		}
		llc.fill(vic, lineAddr, shared, llcCtx, now)
		llcIdx = vic
	} else if llc.sec != nil && !llc.sec.Visible(llcIdx, llcCtx) {
		// A prefetch on the requester's behalf pays its first access here,
		// invisibly to timing (the prefetcher waited for memory anyway).
		llc.Stats.FirstAccess++
		llc.sec.OnFirstAccess(llcIdx, llcCtx)
	}
	vic := l1.victim(lineAddr, lctx)
	h.evictL1Line(l1, vic, corei, kind == Fetch)
	l1.fill(vic, lineAddr, shared, lctx, now)
	if h.dir != nil {
		l1.lines[vic].llcHint = int32(llcIdx)
		h.dir.addAt(llcIdx, lineAddr, corei, kind == Fetch, false)
	}
	if h.cfg.CoherenceCheck {
		h.verifyLine(lineAddr, "prefetch")
	}
}

// serveLLC handles a request arriving at the LLC, recording the level's
// outcome in r.LLC, any DRAM cycles in r.MemCycles, the supplying level in
// r.Level, and the LLC line index now holding lineAddr in r.llcIdx (-1 on
// the no-fill miss path); callers attach directory state through r.llcIdx
// without re-probing the set. fill controls whether a miss allocates (false
// on the first-access descend path: the upper level already holds the data,
// so the response is discarded and nothing fills). Note an LLC tag hit does
// not set r.Hit — that summary bit means "L1 hit" to the harness, exactly
// as the old (Result, int) plumbing discarded the inner Hit.
func (h *Hierarchy) serveLLC(r *Request, lineAddr uint64, fill bool) {
	llc := h.llc
	lctx := h.llcCtx(r.Ctx)
	llc.Stats.Accesses++
	if idx := llc.lookup(lineAddr, lctx); idx >= 0 {
		llc.touch(idx)
		if llc.visible(idx, lctx) {
			llc.Stats.Hits++
			r.LLC = LevelTrail{OutcomeHit, llc.cfg.Latency}
			r.Level = 2
			r.llcIdx = idx
			return
		}
		// First access at the LLC: continue to memory, discard the data.
		llc.Stats.FirstAccess++
		llc.sec.OnFirstAccess(idx, lctx)
		r.LLC = LevelTrail{OutcomeFirstAccess, llc.cfg.Latency}
		r.MemCycles = h.cfg.DRAMLat
		r.FirstAccess = true
		r.Level = 3
		r.llcIdx = idx
		return
	}
	llc.Stats.Misses++
	r.LLC = LevelTrail{OutcomeMiss, llc.cfg.Latency}
	r.MemCycles = h.cfg.DRAMLat
	r.Level = 3
	if !fill {
		// Descend path with no LLC copy (inclusion was broken by a flush
		// racing the request): just report the memory latency.
		r.llcIdx = -1
		return
	}
	vic := llc.victim(lineAddr, lctx)
	if v := &llc.lines[vic]; v.st != invalid {
		// Inclusive LLC: evicting a line removes it from every L1.
		h.backInvalidate(v.tag)
	}
	if h.dir != nil {
		h.dir.onLLCFill(vic, lineAddr)
	}
	llc.fill(vic, lineAddr, shared, lctx, r.Now)
	r.llcIdx = vic
}

// snoopDirty checks other cores' L1 caches for a modified copy of lineAddr.
// On a load the remote copy is downgraded to shared (with writeback); on a
// store it is invalidated. Returns whether a dirty forward occurred.
//
// With the sharer directory the dirty owner is read straight off the
// line's entry — one lookup instead of probing every other core's L1D.
func (h *Hierarchy) snoopDirty(lineAddr uint64, exceptCore int, kind Kind) bool {
	if d := h.dir; d != nil {
		// Per-set owned counter: a set with no dirty owners (the common case
		// for loads over unshared data) rejects the snoop with one array
		// load, no LLC probe.
		if !d.mayHaveOwner(lineAddr) {
			return false
		}
		e := d.find(lineAddr)
		if e == nil || e.own == dirNoOwner {
			return false
		}
		c := e.ownerCore()
		if c == exceptCore {
			// The requester's own L1D owns the line (an instruction fetch
			// missing in the L1I); broadcast snooping skips the requesting
			// core, so the directory path must too.
			return false
		}
		l1 := h.l1d[c]
		idx := l1.Probe(lineAddr)
		if idx < 0 {
			panic(fmt.Sprintf("cache: directory names core %d owner of line %#x but its L1D lacks it", c, lineAddr))
		}
		l1.Stats.Writebacks++
		h.markLLCDirty(lineAddr)
		if kind == Store {
			l1.invalidate(idx)
			e.data &^= uint64(1) << uint(c)
			e.own = dirNoOwner
			d.noteOwn(lineAddr, e, -1)
			d.release(lineAddr, e)
		} else {
			l1.lines[idx].st = shared
			e.own = dirNoOwner
			d.noteOwn(lineAddr, e, -1)
		}
		if h.cfg.CoherenceCheck {
			h.verifyLine(lineAddr, "snoopDirty")
		}
		return true
	}
	found := false
	for c := 0; c < h.cfg.Cores; c++ {
		if c == exceptCore {
			continue
		}
		l1 := h.l1d[c]
		if idx := l1.Probe(lineAddr); idx >= 0 && l1.lines[idx].st == modified {
			found = true
			l1.Stats.Writebacks++
			h.markLLCDirty(lineAddr)
			if kind == Store {
				l1.invalidate(idx)
			} else {
				l1.lines[idx].st = shared
			}
		}
	}
	return found
}

// invalidateL1Copy invalidates one cache's copy of lineAddr if resident,
// writing a modified copy back into the LLC first. Shared helper of the
// directory and broadcast invalidation paths so both have identical
// counter and state effects.
func (h *Hierarchy) invalidateL1Copy(l1 *Cache, lineAddr uint64) {
	if idx := l1.Probe(lineAddr); idx >= 0 {
		if l1.lines[idx].st == modified {
			h.markLLCDirty(lineAddr)
		}
		l1.invalidate(idx)
	}
}

// invalidateOtherL1s removes copies of lineAddr from every L1 except the
// writing core's (the write-invalidate upgrade). With the directory only
// the set bits of the sharer masks are visited — O(sharers), and a line
// nobody else caches costs one directory lookup. llcHint is the line's LLC
// slot when the caller knows it (the writer's llcHint, or the index the
// preceding accessLLC returned), or -1.
func (h *Hierarchy) invalidateOtherL1s(lineAddr uint64, exceptCore, llcHint int) {
	if d := h.dir; d != nil {
		e := d.at(llcHint, lineAddr)
		if e == nil {
			return
		}
		keep := uint64(1) << uint(exceptCore)
		for m := e.data &^ keep; m != 0; m &= m - 1 {
			h.invalidateL1Copy(h.l1d[bits.TrailingZeros64(m)], lineAddr)
		}
		for m := e.inst &^ keep; m != 0; m &= m - 1 {
			h.invalidateL1Copy(h.l1i[bits.TrailingZeros64(m)], lineAddr)
		}
		e.data &= keep
		e.inst &= keep
		if e.own != dirNoOwner && e.ownerCore() != exceptCore {
			e.own = dirNoOwner
			d.noteOwn(lineAddr, e, -1)
		}
		d.release(lineAddr, e)
		if h.cfg.CoherenceCheck {
			h.verifyLine(lineAddr, "invalidateOtherL1s")
		}
		return
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if c == exceptCore {
			continue
		}
		h.invalidateL1Copy(h.l1d[c], lineAddr)
		h.invalidateL1Copy(h.l1i[c], lineAddr)
	}
}

// backInvalidate removes lineAddr from every L1 (inclusive LLC eviction).
func (h *Hierarchy) backInvalidate(lineAddr uint64) {
	if d := h.dir; d != nil {
		e := d.find(lineAddr)
		if e == nil {
			return
		}
		for m := e.data; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			if idx := h.l1d[c].Probe(lineAddr); idx >= 0 {
				h.l1d[c].invalidate(idx)
			}
		}
		for m := e.inst; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			if idx := h.l1i[c].Probe(lineAddr); idx >= 0 {
				h.l1i[c].invalidate(idx)
			}
		}
		if e.own != dirNoOwner {
			d.noteOwn(lineAddr, e, -1)
		}
		*e = dirEntry{}
		d.release(lineAddr, e)
		if h.cfg.CoherenceCheck {
			h.verifyLine(lineAddr, "backInvalidate")
		}
		return
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if idx := h.l1d[c].Probe(lineAddr); idx >= 0 {
			h.l1d[c].invalidate(idx)
		}
		if idx := h.l1i[c].Probe(lineAddr); idx >= 0 {
			h.l1i[c].invalidate(idx)
		}
	}
}

func (h *Hierarchy) markLLCDirty(lineAddr uint64) {
	if idx := h.llc.Probe(lineAddr); idx >= 0 {
		h.llc.lines[idx].dirty = true
	}
}

// markLLCDirtyAt is markLLCDirty with a verified LLC slot hint.
func (h *Hierarchy) markLLCDirtyAt(hint int, lineAddr uint64) {
	if hint >= 0 && hint < len(h.llc.lines) {
		if l := &h.llc.lines[hint]; l.st != invalid && l.tag == lineAddr {
			l.dirty = true
			return
		}
	}
	h.markLLCDirty(lineAddr)
}

// evictL1Line handles displacement of an L1 line prior to a fill. A modified
// line is written back into the LLC (marking it dirty there), and the
// directory drops the vacating core's presence bit. The line's llcHint
// makes both steps probe-free in the common (inclusion-intact) case.
func (h *Hierarchy) evictL1Line(l1 *Cache, idx, corei int, inst bool) {
	l := &l1.lines[idx]
	if l.st == invalid {
		return
	}
	if h.dir != nil {
		hint := int(l.llcHint)
		if l.st == modified {
			h.markLLCDirtyAt(hint, l.tag)
		}
		h.dir.remove(hint, l.tag, corei, inst)
		return
	}
	if l.st == modified {
		h.markLLCDirty(l.tag)
	}
}

// Flush performs a clflush of addr by ctx: the line is invalidated at every
// level. The returned latency leaks residency unless ConstantTimeFlush is
// set (paper §VII-C). Compatibility wrapper over ServeFlush using the
// hierarchy's scratch Request.
func (h *Hierarchy) Flush(now clock.Cycles, ctx int, addr uint64) uint64 {
	r := &h.scratch
	r.Now, r.Ctx, r.Addr = now, ctx, addr
	h.ServeFlush(r)
	return r.Latency
}

// ServeFlush performs the clflush described by r's Now/Ctx/Addr, recording
// residency and dirtiness on the trail (FlushPresent, FlushDirty) and the
// charged cycles in r.Latency. r.Kind is forced to FlushOp. Flushes are not
// reported to the observer — matching the pre-trail behavior, where only
// Access produced a callback.
func (h *Hierarchy) ServeFlush(r *Request) {
	r.Kind = FlushOp
	r.beginTrail()
	lineAddr := r.Addr &^ (LineSize - 1)
	present, dirty := h.flushLine(lineAddr)
	r.FlushPresent, r.FlushDirty = present, dirty
	if h.cfg.ConstantTimeFlush {
		r.Latency = h.cfg.FlushBase + h.cfg.FlushPresentExtra + h.cfg.FlushDirtyExtra
		return
	}
	r.Latency = h.cfg.FlushBase
	if present {
		r.Latency += h.cfg.FlushPresentExtra
	}
	if dirty {
		r.Latency += h.cfg.FlushDirtyExtra
	}
}

// flushLine invalidates lineAddr at every level, reporting whether any copy
// was resident and whether a dirty copy had to be written back.
func (h *Hierarchy) flushLine(lineAddr uint64) (present, dirty bool) {
	if d := h.dir; d != nil {
		if e := d.find(lineAddr); e != nil {
			for m := e.data; m != 0; m &= m - 1 {
				c := bits.TrailingZeros64(m)
				if idx := h.l1d[c].Probe(lineAddr); idx >= 0 {
					present = true
					if h.l1d[c].invalidate(idx) {
						dirty = true
					}
				}
			}
			for m := e.inst; m != 0; m &= m - 1 {
				c := bits.TrailingZeros64(m)
				if idx := h.l1i[c].Probe(lineAddr); idx >= 0 {
					present = true
					if h.l1i[c].invalidate(idx) {
						dirty = true
					}
				}
			}
			if e.own != dirNoOwner {
				d.noteOwn(lineAddr, e, -1)
			}
			*e = dirEntry{}
			d.release(lineAddr, e)
		}
	} else {
		for c := 0; c < h.cfg.Cores; c++ {
			if idx := h.l1d[c].Probe(lineAddr); idx >= 0 {
				present = true
				if h.l1d[c].invalidate(idx) {
					dirty = true
				}
			}
			if idx := h.l1i[c].Probe(lineAddr); idx >= 0 {
				present = true
				if h.l1i[c].invalidate(idx) {
					dirty = true
				}
			}
		}
	}
	if idx := h.llc.Probe(lineAddr); idx >= 0 {
		present = true
		if h.llc.invalidate(idx) {
			dirty = true
		}
	}
	if h.cfg.CoherenceCheck {
		h.verifyLine(lineAddr, "flush")
	}
	return present, dirty
}

// Reset returns every cache (lines, replacement state, stats, TimeCache
// metadata), the sharer directory, and the partition domain state to cold
// without reallocating, and detaches any observer. A reset hierarchy is
// indistinguishable from a freshly constructed one — machine.Reset depends
// on this to make pooled reuse produce byte-identical experiment results.
func (h *Hierarchy) Reset() {
	for c := range h.l1i {
		h.l1i[c].Reset()
		h.l1d[c].Reset()
	}
	h.llc.Reset()
	if h.dir != nil {
		h.dir.reset()
	}
	clear(h.activeDomain)
	h.obs = nil
	if h.def != nil {
		// The defense is part of the configured machine, not telemetry: it
		// stays installed, but its state must return to fresh for pooled
		// reuse to stay byte-identical with a cold build.
		h.def.Reset()
	}
}

// FlushAll invalidates every line in every cache (the flush-on-switch
// baseline defense) and resets the sharer directory.
func (h *Hierarchy) FlushAll() {
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].FlushAll()
		h.l1d[c].FlushAll()
	}
	h.llc.FlushAll()
	if h.dir != nil {
		h.dir.reset()
	}
}

// CacheCtx pairs a cache with the local context index a global hardware
// context uses there; the kernel saves/restores s-bit columns through it.
type CacheCtx struct {
	Cache    *Cache
	LocalCtx int
}

// SecCaches returns the caches (and local context indices) whose s-bit
// columns belong to global context ctx and must be saved/restored at a
// context switch. Empty unless the mode is SecTimeCache.
func (h *Hierarchy) SecCaches(ctx int) []CacheCtx {
	if h.cfg.Mode != SecTimeCache {
		return nil
	}
	corei := h.CoreOf(ctx)
	return []CacheCtx{
		{h.l1i[corei], h.threadOf(ctx)},
		{h.l1d[corei], h.threadOf(ctx)},
		{h.llc, ctx},
	}
}

// Caches returns every cache in the hierarchy, for stats reporting.
func (h *Hierarchy) Caches() []*Cache {
	out := make([]*Cache, 0, 2*h.cfg.Cores+1)
	for c := 0; c < h.cfg.Cores; c++ {
		out = append(out, h.l1i[c], h.l1d[c])
	}
	return append(out, h.llc)
}
