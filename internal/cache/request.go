package cache

import (
	"fmt"

	"timecache/internal/clock"
)

// Outcome classifies what one cache level did with a request.
type Outcome uint8

// Per-level outcomes recorded on a Request's trail.
const (
	// OutcomeNone means the level was not consulted.
	OutcomeNone Outcome = iota
	// OutcomeHit is a tag hit served as a real hit (s-bit visible).
	OutcomeHit
	// OutcomeFirstAccess is a tag hit delayed because the requesting
	// context's s-bit was clear (TimeCache/FTM first-access miss).
	OutcomeFirstAccess
	// OutcomeMiss is a tag miss.
	OutcomeMiss
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return "none"
	case OutcomeHit:
		return "hit"
	case OutcomeFirstAccess:
		return "first-access"
	case OutcomeMiss:
		return "miss"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// LevelTrail records one cache level's contribution to a request: what the
// level did with it and the cycles that level added to the total latency.
type LevelTrail struct {
	Outcome Outcome
	Cycles  uint64
}

// Request carries one memory access down the hierarchy and accumulates the
// response trail in place on the way back up. The input fields (Now, Ctx,
// Addr, Kind) are set by the caller; Hierarchy.Serve fills everything else.
//
// A Request is reused across accesses: callers on the hot path (the kernel's
// per-core request, the hierarchy's internal scratch for the compatibility
// wrappers) embed one in a long-lived struct so serving an access performs
// no allocation, and Serve re-zeroes the response fields itself.
type Request struct {
	// Inputs, set by the caller before Serve/ServeFlush.
	Now  clock.Cycles
	Ctx  int // global hardware context
	Addr uint64
	Kind Kind

	// Response summary (the legacy Result fields).
	Latency     uint64 // total cycles the access took
	Hit         bool   // serviced as an L1 hit (visible)
	FirstAccess bool   // some level delayed the access on a clear s-bit
	Level       int    // level that supplied the data: 1 L1, 2 LLC, 3 memory

	// Per-level trail.
	L1  LevelTrail
	LLC LevelTrail
	// MemCycles is the DRAM portion of Latency (zero unless the request
	// reached memory).
	MemCycles uint64
	// ForwardCycles is the remote-L1 dirty-forward portion of Latency
	// (nonzero only when DirtyForward and the LLC serviced the request).
	ForwardCycles uint64

	// Coherence actions taken while serving the request.
	DirtyForward bool // another core's modified copy was written back
	Upgrade      bool // a shared L1 copy was upgraded to modified (store hit)
	Prefetched   bool // the next-line prefetcher ran behind this miss

	// Flush trail (ServeFlush only).
	FlushPresent bool // some cache held the line
	FlushDirty   bool // a dirty copy had to be written back

	// llcIdx is the LLC slot that hit or filled while serving (directory
	// plumbing, replacing the old (Result, int) return); -1 when none.
	llcIdx int
}

// Result summarizes the trail as the legacy Result value.
func (r *Request) Result() Result {
	return Result{Latency: r.Latency, Hit: r.Hit, FirstAccess: r.FirstAccess, Level: r.Level}
}

// beginTrail clears every response field, keeping the inputs, so a reused
// Request starts each access from a clean trail.
func (r *Request) beginTrail() {
	r.Latency = 0
	r.Hit = false
	r.FirstAccess = false
	r.Level = 0
	r.L1 = LevelTrail{}
	r.LLC = LevelTrail{}
	r.MemCycles = 0
	r.ForwardCycles = 0
	r.DirtyForward = false
	r.Upgrade = false
	r.Prefetched = false
	r.FlushPresent = false
	r.FlushDirty = false
	r.llcIdx = -1
}
