//go:build !race

package cache

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under -race (see race_on_test.go).
const raceEnabled = false
