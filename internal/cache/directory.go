package cache

import "fmt"

// This file implements the LLC sharer directory: per-line tracking of which
// cores' private L1 caches hold a copy of each line, plus the core (if any)
// holding it modified. It replaces broadcast snooping — probing every core's
// L1I and L1D on every coherence event, O(cores × ways) — with O(sharers)
// work: coherence actors iterate only the set bits of a presence bitmask.
//
// Layout follows real inclusive LLCs: the directory state for a line lives
// alongside its LLC slot (entries, parallel to the LLC line array), with a
// small side table for lines that are transiently non-inclusive (an L1 copy
// outliving its LLC backing, e.g. a flush racing a first-access descend).
// Under the hierarchy's normal operation inclusion holds and the side table
// stays empty, but the directory does not depend on that invariant.
//
// The directory is maintained at the hierarchy's single choke points — L1
// fill, L1 eviction/invalidation, store upgrade, snoop downgrade — so the
// Cache type itself stays coherence-agnostic. It is enabled for 2–64 core
// non-partitioned hierarchies (see NewHierarchy); way-partitioned mode can
// hold duplicate copies of one line inside a single cache, which a per-core
// presence bit cannot represent, so it keeps the broadcast path.

// dirNoOwner is the encoded "no dirty owner" value of dirEntry.own.
const dirNoOwner = 0

// dirEntry is one line's sharer state. The zero value means "no L1 holds
// the line": presence masks empty and no dirty owner.
type dirEntry struct {
	// data and inst are per-core presence bitmasks: bit c set means core
	// c's L1D (resp. L1I) holds the line. Capped at 64 cores by the mask
	// width; NewHierarchy falls back to broadcast beyond that.
	data, inst uint64
	// own is the dirty owner encoded as core+1 (0 = none): the core whose
	// L1D holds the line in modified state.
	own uint8
}

// empty reports whether no L1 holds the line.
func (e dirEntry) empty() bool { return e.data == 0 && e.inst == 0 }

// ownerCore returns the dirty owner's core index, or -1.
func (e dirEntry) ownerCore() int { return int(e.own) - 1 }

func (e dirEntry) String() string {
	return fmt.Sprintf("{data=%#x inst=%#x owner=%d}", e.data, e.inst, e.ownerCore())
}

// directory is the hierarchy's sharer directory.
type directory struct {
	llc *Cache
	// entries holds the sharer state of LLC-resident lines, parallel to
	// the LLC line array: entries[idx] describes the line at llc.lines[idx].
	entries []dirEntry
	// ownedInSet counts, per LLC set, dense entries naming a dirty owner.
	// Inclusion pins a line's sharer state to its LLC set, so a zero count
	// lets snoopDirty reject a whole set — the common case for loads over
	// unshared data — with one array load instead of an LLC probe.
	ownedInSet []int32
	// side holds sharer state for lines with L1 copies but no LLC slot
	// (transient non-inclusion). Normally empty.
	side map[uint64]*dirEntry
	// sideOwned counts side-table entries naming a dirty owner.
	sideOwned int
}

func newDirectory(llc *Cache) *directory {
	return &directory{
		llc:        llc,
		entries:    make([]dirEntry, llc.Lines()),
		ownedInSet: make([]int32, llc.Sets()),
		side:       map[uint64]*dirEntry{},
	}
}

// noteOwn records an own-field transition on the entry tracking lineAddr:
// delta +1 when a dirty owner appears, -1 when one disappears. Every writer
// of dirEntry.own must report the transition here so the per-set owned
// counts stay exact (audited by CheckCoherence).
func (d *directory) noteOwn(lineAddr uint64, e *dirEntry, delta int32) {
	if len(d.side) != 0 {
		if se, ok := d.side[lineAddr]; ok && se == e {
			d.sideOwned += int(delta)
			return
		}
	}
	d.ownedInSet[d.llc.setOf(lineAddr)] += delta
}

// mayHaveOwner reports whether any line of lineAddr's LLC set (or the side
// table) names a dirty owner; false means snoopDirty has nothing to do.
func (d *directory) mayHaveOwner(lineAddr uint64) bool {
	return d.sideOwned != 0 || d.ownedInSet[d.llc.setOf(lineAddr)] != 0
}

// find returns the entry tracking lineAddr, or nil when no state exists.
// The returned pointer is valid until the next LLC fill of that slot.
func (d *directory) find(lineAddr uint64) *dirEntry {
	if idx := d.llc.Probe(lineAddr); idx >= 0 {
		return &d.entries[idx]
	}
	if len(d.side) != 0 {
		if e, ok := d.side[lineAddr]; ok {
			return e
		}
	}
	return nil
}

// at returns the entry tracking lineAddr using a caller-provided LLC slot
// hint (an L1 line's llcHint or a just-computed fill index), avoiding the
// LLC probe of find when the hint verifies. Inclusion makes the hint stable
// — an LLC slot cannot be reassigned while an L1 copy exists without
// back-invalidating that copy first — so the fallback is for stale hints
// only (e.g. after FlushAll).
func (d *directory) at(hint int, lineAddr uint64) *dirEntry {
	if hint >= 0 && hint < len(d.entries) {
		if l := &d.llc.lines[hint]; l.st != invalid && l.tag == lineAddr {
			return &d.entries[hint]
		}
	}
	return d.find(lineAddr)
}

// findOrCreate returns the entry for lineAddr, creating a side-table entry
// when the line has no LLC slot.
func (d *directory) findOrCreate(lineAddr uint64) *dirEntry {
	if idx := d.llc.Probe(lineAddr); idx >= 0 {
		return &d.entries[idx]
	}
	if e, ok := d.side[lineAddr]; ok {
		return e
	}
	e := &dirEntry{}
	d.side[lineAddr] = e
	return e
}

// addAt records that core's L1 (instruction or data side) now holds
// lineAddr, with owner marking a modified fill. llcIdx is the line's LLC
// slot when the caller already knows it (saving a probe), or -1.
func (d *directory) addAt(llcIdx int, lineAddr uint64, core int, inst, owner bool) {
	var e *dirEntry
	if llcIdx >= 0 {
		e = &d.entries[llcIdx]
	} else {
		e = d.findOrCreate(lineAddr)
	}
	bit := uint64(1) << uint(core)
	if inst {
		e.inst |= bit
	} else {
		e.data |= bit
	}
	if owner {
		if e.own == dirNoOwner {
			d.noteOwn(lineAddr, e, 1)
		}
		e.own = uint8(core + 1)
	}
}

// remove records that core's L1 copy of lineAddr is gone (eviction or
// invalidation of that one copy). hint is the vacating line's llcHint.
func (d *directory) remove(hint int, lineAddr uint64, core int, inst bool) {
	e := d.at(hint, lineAddr)
	if e == nil {
		return
	}
	bit := uint64(1) << uint(core)
	if inst {
		e.inst &^= bit
	} else {
		e.data &^= bit
		if e.own == uint8(core+1) {
			e.own = dirNoOwner
			d.noteOwn(lineAddr, e, -1)
		}
	}
	d.release(lineAddr, e)
}

// setOwner records a store upgrade: core's L1D copy of lineAddr is now the
// modified owner (its presence bit is set too, defensively). hint is the
// upgrading line's llcHint.
func (d *directory) setOwner(hint int, lineAddr uint64, core int) {
	e := d.at(hint, lineAddr)
	if e == nil {
		e = d.findOrCreate(lineAddr)
	}
	e.data |= uint64(1) << uint(core)
	if e.own == dirNoOwner {
		d.noteOwn(lineAddr, e, 1)
	}
	e.own = uint8(core + 1)
}

// release drops a side-table entry once it is empty. Dense entries stay in
// place (an all-zero entry is the ground state).
func (d *directory) release(lineAddr uint64, e *dirEntry) {
	if !e.empty() || len(d.side) == 0 {
		return
	}
	if se, ok := d.side[lineAddr]; ok && se == e {
		delete(d.side, lineAddr)
	}
}

// onLLCFill prepares slot llcIdx for lineAddr being installed there: any
// state still attached to the displaced line moves to the side table
// (defensive; back-invalidation has normally emptied it), and state parked
// in the side table for the incoming line moves into the slot.
func (d *directory) onLLCFill(llcIdx int, lineAddr uint64) {
	e := &d.entries[llcIdx]
	set := llcIdx / d.llc.ways
	if !e.empty() {
		old := *e
		d.side[d.llc.lines[llcIdx].tag] = &old
		if old.own != dirNoOwner {
			d.ownedInSet[set]--
			d.sideOwned++
		}
	}
	*e = dirEntry{}
	if len(d.side) != 0 {
		if se, ok := d.side[lineAddr]; ok {
			*e = *se
			delete(d.side, lineAddr)
			if e.own != dirNoOwner {
				d.sideOwned--
				d.ownedInSet[set]++
			}
		}
	}
}

// reset clears all directory state (FlushAll).
func (d *directory) reset() {
	clear(d.entries)
	clear(d.ownedInSet)
	clear(d.side)
	d.sideOwned = 0
}

// DirectoryEnabled reports whether this hierarchy runs directory-tracked
// coherence (as opposed to the broadcast fallback).
func (h *Hierarchy) DirectoryEnabled() bool { return h.dir != nil }

// bruteForceEntry recomputes lineAddr's sharer state by probing every L1,
// exactly what the pre-directory broadcast implementations observed. Used
// by the -coherence-check cross-checking mode and the audit in
// CheckCoherence.
func (h *Hierarchy) bruteForceEntry(lineAddr uint64) dirEntry {
	var e dirEntry
	for c := 0; c < h.cfg.Cores; c++ {
		if idx := h.l1d[c].Probe(lineAddr); idx >= 0 {
			e.data |= uint64(1) << uint(c)
			if h.l1d[c].lines[idx].st == modified {
				e.own = uint8(c + 1)
			}
		}
		if idx := h.l1i[c].Probe(lineAddr); idx >= 0 {
			e.inst |= uint64(1) << uint(c)
		}
	}
	return e
}

// verifyLine asserts that the directory's view of lineAddr matches a
// brute-force probe of every L1. Called on every coherence event when
// HierarchyConfig.CoherenceCheck is set; panics on divergence because a
// divergent directory means the simulation itself is wrong.
func (h *Hierarchy) verifyLine(lineAddr uint64, where string) {
	if h.dir == nil {
		return
	}
	want := h.bruteForceEntry(lineAddr)
	var got dirEntry
	if e := h.dir.find(lineAddr); e != nil {
		got = *e
	}
	if got != want {
		panic(fmt.Sprintf("cache: sharer directory diverged at %s for line %#x: directory %v, brute force %v",
			where, lineAddr, got, want))
	}
}

// CheckCoherence audits the whole directory against the L1 contents: every
// resident L1 line must be tracked by exactly one entry with the right
// masks and owner, and no entry may track state no L1 holds. Returns nil
// when the directory is disabled. Intended for tests (the randomized
// coherence property test calls it between operation bursts).
func (h *Hierarchy) CheckCoherence() error {
	if h.dir == nil {
		return nil
	}
	want := map[uint64]dirEntry{}
	for c := 0; c < h.cfg.Cores; c++ {
		for i := range h.l1d[c].lines {
			l := &h.l1d[c].lines[i]
			if l.st == invalid {
				continue
			}
			e := want[l.tag]
			e.data |= uint64(1) << uint(c)
			if l.st == modified {
				if e.own != dirNoOwner {
					return fmt.Errorf("cache: line %#x modified in two L1Ds (cores %d and %d)", l.tag, e.ownerCore(), c)
				}
				e.own = uint8(c + 1)
			}
			want[l.tag] = e
		}
		for i := range h.l1i[c].lines {
			l := &h.l1i[c].lines[i]
			if l.st == invalid {
				continue
			}
			e := want[l.tag]
			e.inst |= uint64(1) << uint(c)
			want[l.tag] = e
		}
	}
	seen := map[uint64]bool{}
	for idx := range h.dir.entries {
		e := h.dir.entries[idx]
		if e.empty() && e.own == dirNoOwner {
			continue
		}
		l := &h.llc.lines[idx]
		if l.st == invalid {
			return fmt.Errorf("cache: directory entry %v attached to invalid LLC slot %d", e, idx)
		}
		if seen[l.tag] {
			return fmt.Errorf("cache: line %#x tracked by two directory entries", l.tag)
		}
		if w := want[l.tag]; w != e {
			return fmt.Errorf("cache: line %#x directory %v != brute force %v", l.tag, e, w)
		}
		seen[l.tag] = true
	}
	for tag, e := range h.dir.side {
		if e.empty() {
			return fmt.Errorf("cache: empty side-table entry for line %#x", tag)
		}
		if seen[tag] {
			return fmt.Errorf("cache: line %#x tracked by directory entry and side table", tag)
		}
		if w := want[tag]; w != *e {
			return fmt.Errorf("cache: line %#x side table %v != brute force %v", tag, *e, w)
		}
		seen[tag] = true
	}
	for tag, e := range want {
		if !seen[tag] {
			return fmt.Errorf("cache: line %#x resident in L1s (%v) but untracked by the directory", tag, e)
		}
	}
	ownWant := make([]int32, len(h.dir.ownedInSet))
	for idx := range h.dir.entries {
		if h.dir.entries[idx].own != dirNoOwner {
			ownWant[idx/h.llc.ways]++
		}
	}
	for s := range ownWant {
		if ownWant[s] != h.dir.ownedInSet[s] {
			return fmt.Errorf("cache: LLC set %d owned-line count %d != recomputed %d", s, h.dir.ownedInSet[s], ownWant[s])
		}
	}
	sideOwned := 0
	for _, e := range h.dir.side {
		if e.own != dirNoOwner {
			sideOwned++
		}
	}
	if sideOwned != h.dir.sideOwned {
		return fmt.Errorf("cache: side-table owned count %d != recomputed %d", h.dir.sideOwned, sideOwned)
	}
	return nil
}
