package cache

import (
	"fmt"
	"math/bits"
	"testing"

	"timecache/internal/core"
)

// BenchmarkAccessL1Hit measures the simulator's hottest path: an L1 hit.
func BenchmarkAccessL1Hit(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessL1HitTimeCache measures the s-bit check overhead on hits.
func BenchmarkAccessL1HitTimeCache(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessStreamMiss measures the full miss/fill path.
func BenchmarkAccessStreamMiss(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
}

// histObserver mimics what a telemetry collector does per access (classify
// plus a log2 histogram bump) without importing internal/telemetry, which
// would be an import cycle from inside package cache.
type histObserver struct {
	count   uint64
	sum     uint64
	buckets [65]uint64
}

func (o *histObserver) ObserveAccess(r *Request) {
	o.count++
	o.sum += r.Latency
	o.buckets[bits.Len64(r.Latency)]++
}

// BenchmarkAccessTelemetryDisabled is the nil-probe baseline for the
// telemetry hook: the L1-hit hot path with no observer installed must cost
// only a single nil check over the seed's Access path. Compare against
// BenchmarkAccessTelemetryEnabled; the disabled-path regression budget vs
// the seed is <2%.
func BenchmarkAccessTelemetryDisabled(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessTelemetryEnabled measures the same path with a
// histogram-maintaining observer installed, documenting the enabled cost.
func BenchmarkAccessTelemetryEnabled(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	obs := &histObserver{}
	h.SetObserver(obs)
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
	if obs.count == 0 {
		b.Fatal("observer never fired")
	}
}

// BenchmarkContextSwitchRestore measures the kernel-visible cost of a full
// s-bit save+restore over the paper's cache sizes (32K L1s + 2MB LLC),
// modeling the kernel's switch path: SecCaches hoisted (the kernel
// precomputes it per core) and per-(process, cache) column buffers
// allocated once at the first save and reused thereafter
// (Process.savedBuf). Must run at 0 allocs/op; the seed's 3 allocs/op were
// the three SaveColumn SecVecs the old kernel allocated per switch.
func BenchmarkContextSwitchRestore(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	for i := 0; i < 4096; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
	secCaches := h.SecCaches(0)
	bufs := make([]core.SecVec, len(secCaches))
	for i, cc := range secCaches {
		bufs[i] = make(core.SecVec, core.VecWords(cc.Cache.Lines()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, cc := range secCaches {
			cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, bufs[j])
			cc.Cache.Sec().RestoreColumn(cc.LocalCtx, bufs[j], uint64(i), uint64(i)+1)
		}
	}
}

// coherenceStorm drives the snoop-heavy steady state the sharer directory
// targets: a store by one core (invalidating the other sharers' copies)
// followed by a load from the next core (forcing a dirty snoop and
// downgrade of the new owner). Every iteration exercises snoopDirty and
// invalidateOtherL1s.
func coherenceStorm(b *testing.B, cores int, disableDir bool) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = cores
	cfg.DisableDirectory = disableDir
	h := NewHierarchy(cfg)
	if h.DirectoryEnabled() == disableDir {
		b.Fatalf("DirectoryEnabled() = %v with DisableDirectory = %v", h.DirectoryEnabled(), disableDir)
	}
	const addr = 0x40000
	for c := 0; c < cores; c++ {
		h.Access(0, c, addr, Load)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writer := i % cores
		h.Access(uint64(i), writer, addr, Store)
		h.Access(uint64(i), (writer+1)%cores, addr, Load)
	}
}

// BenchmarkAccessMultiCoreStoreShared compares directory-tracked coherence
// (O(sharers) snoops) against the broadcast fallback (probe every core's
// L1I and L1D) on a shared-line store/load ping-pong. The directory
// variants must run at 0 allocs/op and ≥2× broadcast throughput at 8+
// cores; the gap widens with core count (broadcast is O(cores), the
// directory O(sharers) — here a constant 2), while at 4 cores the common
// hit/fill work dominates and the win is ~1.4×.
func BenchmarkAccessMultiCoreStoreShared(b *testing.B) {
	for _, cores := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("directory-%dcore", cores), func(b *testing.B) { coherenceStorm(b, cores, false) })
		b.Run(fmt.Sprintf("broadcast-%dcore", cores), func(b *testing.B) { coherenceStorm(b, cores, true) })
	}
}

// BenchmarkAccessMultiCoreStreamMiss measures the directory's bookkeeping
// cost when there is nothing to share: each core streams over its own
// lines, so every access is a miss whose snoop finds nobody. This is the
// honesty benchmark for the directory — its fills/evictions must not cost
// more than the broadcast probes they replace.
func BenchmarkAccessMultiCoreStreamMiss(b *testing.B) {
	for _, disableDir := range []bool{false, true} {
		name := "directory"
		if disableDir {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultHierarchyConfig()
			cfg.Cores = 2
			cfg.DisableDirectory = disableDir
			h := NewHierarchy(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i & 1
				h.Access(uint64(i), c, uint64(i|c<<40)*LineSize, Load)
			}
		})
	}
}

// BenchmarkStoreUpgrade isolates the store-upgrade hit path: the writing
// core holds the line shared, one other core's copy must be invalidated.
// The seed allocated a []*Cache{l1d, l1i} slice per upgrade inside
// invalidateOtherL1s; both paths must now run at 0 allocs/op (asserted by
// TestCoherenceNoAllocs).
func BenchmarkStoreUpgrade(b *testing.B) {
	for _, disableDir := range []bool{false, true} {
		name := "directory"
		if disableDir {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultHierarchyConfig()
			cfg.Cores = 4
			cfg.DisableDirectory = disableDir
			h := NewHierarchy(cfg)
			const addr = 0x40000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Both loads leave the line shared in two L1Ds; the store
				// then takes the upgrade path through invalidateOtherL1s.
				h.Access(uint64(i), 0, addr, Load)
				h.Access(uint64(i), 1, addr, Load)
				h.Access(uint64(i), 0, addr, Store)
			}
		})
	}
}

// BenchmarkServeTrail measures the steady-state request path the kernel
// actually drives: a long-lived Request (one per hardware context, like
// coreState.req) served repeatedly with the full response trail filled in
// and an observer attached. Must run at 0 allocs/op — the trail is written
// in place, never boxed (TestServeZeroAlloc asserts it).
func BenchmarkServeTrail(b *testing.B) {
	run := func(b *testing.B, mode SecMode, withObs bool, addr func(i int) uint64) {
		cfg := DefaultHierarchyConfig()
		cfg.Mode = mode
		h := NewHierarchy(cfg)
		obs := &histObserver{}
		if withObs {
			h.SetObserver(obs)
		}
		r := new(Request)
		r.Ctx, r.Kind = 0, Load
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Now, r.Addr = uint64(i), addr(i)
			h.Serve(r)
		}
		if withObs && obs.count == 0 {
			b.Fatal("observer never fired")
		}
	}
	hit := func(int) uint64 { return 0x1000 }
	miss := func(i int) uint64 { return uint64(i) * LineSize }
	b.Run("l1hit", func(b *testing.B) { run(b, SecOff, false, hit) })
	b.Run("l1hit-observed", func(b *testing.B) { run(b, SecOff, true, hit) })
	b.Run("l1hit-timecache", func(b *testing.B) { run(b, SecTimeCache, false, hit) })
	b.Run("streammiss-observed", func(b *testing.B) { run(b, SecOff, true, miss) })
}

// TestServeZeroAlloc pins the Request path's allocation behavior: serving
// through a long-lived Request must not allocate, on hits or misses, with
// or without an observer installed. A regression here (e.g. the Request
// escaping into the observer interface) would cost an allocation on every
// simulated memory access.
func TestServeZeroAlloc(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	h.SetObserver(&histObserver{})
	r := new(Request)
	r.Ctx, r.Kind = 0, Load
	var i uint64
	allocs := testing.AllocsPerRun(10_000, func() {
		i++
		r.Now, r.Addr = i, (i%4096)*LineSize
		h.Serve(r)
	})
	if allocs != 0 {
		t.Fatalf("Serve allocated %.1f times per access, want 0", allocs)
	}
}

// BenchmarkSaveRestoreColumn is the same switch over the full hierarchy but
// with the kernel's per-(process, cache) buffer reuse: SaveColumnInto plus
// RestoreColumn must run at 0 allocs/op (see also the tracker-level
// variants in internal/core).
func BenchmarkSaveRestoreColumn(b *testing.B) {
	run := func(b *testing.B, gate bool, maxSharers int) {
		cfg := DefaultHierarchyConfig()
		cfg.Mode = SecTimeCache
		cfg.Sec.GateLevel = gate
		cfg.Sec.MaxSharers = maxSharers
		h := NewHierarchy(cfg)
		for i := 0; i < 4096; i++ {
			h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
		}
		secCaches := h.SecCaches(0)
		bufs := make([]core.SecVec, len(secCaches))
		for i, cc := range secCaches {
			bufs[i] = make(core.SecVec, core.VecWords(cc.Cache.Lines()))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, cc := range secCaches {
				cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, bufs[j])
				cc.Cache.Sec().RestoreColumn(cc.LocalCtx, bufs[j], uint64(i), uint64(i)+1)
			}
		}
	}
	b.Run("secarray", func(b *testing.B) { run(b, false, 0) })
	b.Run("secarray-gatelevel", func(b *testing.B) { run(b, true, 0) })
	b.Run("limited", func(b *testing.B) { run(b, false, 1) })
}
