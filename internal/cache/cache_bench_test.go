package cache

import (
	"math/bits"
	"testing"

	"timecache/internal/clock"
	"timecache/internal/core"
)

// BenchmarkAccessL1Hit measures the simulator's hottest path: an L1 hit.
func BenchmarkAccessL1Hit(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessL1HitTimeCache measures the s-bit check overhead on hits.
func BenchmarkAccessL1HitTimeCache(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessStreamMiss measures the full miss/fill path.
func BenchmarkAccessStreamMiss(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
}

// histObserver mimics what a telemetry collector does per access (classify
// plus a log2 histogram bump) without importing internal/telemetry, which
// would be an import cycle from inside package cache.
type histObserver struct {
	count   uint64
	sum     uint64
	buckets [65]uint64
}

func (o *histObserver) ObserveAccess(now clock.Cycles, ctx int, addr uint64, kind Kind, res Result) {
	o.count++
	o.sum += res.Latency
	o.buckets[bits.Len64(res.Latency)]++
}

// BenchmarkAccessTelemetryDisabled is the nil-probe baseline for the
// telemetry hook: the L1-hit hot path with no observer installed must cost
// only a single nil check over the seed's Access path. Compare against
// BenchmarkAccessTelemetryEnabled; the disabled-path regression budget vs
// the seed is <2%.
func BenchmarkAccessTelemetryDisabled(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessTelemetryEnabled measures the same path with a
// histogram-maintaining observer installed, documenting the enabled cost.
func BenchmarkAccessTelemetryEnabled(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	obs := &histObserver{}
	h.SetObserver(obs)
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
	if obs.count == 0 {
		b.Fatal("observer never fired")
	}
}

// BenchmarkContextSwitchRestore measures the kernel-visible cost of a full
// s-bit save+restore over the paper's cache sizes (32K L1s + 2MB LLC),
// allocating a fresh SecVec per column as the seed's kernel did.
func BenchmarkContextSwitchRestore(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	for i := 0; i < 4096; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cc := range h.SecCaches(0) {
			v := cc.Cache.Sec().SaveColumn(cc.LocalCtx)
			cc.Cache.Sec().RestoreColumn(cc.LocalCtx, v, uint64(i), uint64(i)+1)
		}
	}
}

// BenchmarkSaveRestoreColumn is the same switch over the full hierarchy but
// with the kernel's per-(process, cache) buffer reuse: SaveColumnInto plus
// RestoreColumn must run at 0 allocs/op (see also the tracker-level
// variants in internal/core).
func BenchmarkSaveRestoreColumn(b *testing.B) {
	run := func(b *testing.B, gate bool, maxSharers int) {
		cfg := DefaultHierarchyConfig()
		cfg.Mode = SecTimeCache
		cfg.Sec.GateLevel = gate
		cfg.Sec.MaxSharers = maxSharers
		h := NewHierarchy(cfg)
		for i := 0; i < 4096; i++ {
			h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
		}
		secCaches := h.SecCaches(0)
		bufs := make([]core.SecVec, len(secCaches))
		for i, cc := range secCaches {
			bufs[i] = make(core.SecVec, core.VecWords(cc.Cache.Lines()))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, cc := range secCaches {
				cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, bufs[j])
				cc.Cache.Sec().RestoreColumn(cc.LocalCtx, bufs[j], uint64(i), uint64(i)+1)
			}
		}
	}
	b.Run("secarray", func(b *testing.B) { run(b, false, 0) })
	b.Run("secarray-gatelevel", func(b *testing.B) { run(b, true, 0) })
	b.Run("limited", func(b *testing.B) { run(b, false, 1) })
}
