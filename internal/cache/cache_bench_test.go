package cache

import "testing"

// BenchmarkAccessL1Hit measures the simulator's hottest path: an L1 hit.
func BenchmarkAccessL1Hit(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessL1HitTimeCache measures the s-bit check overhead on hits.
func BenchmarkAccessL1HitTimeCache(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	h.Access(0, 0, 0x1000, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, 0x1000, Load)
	}
}

// BenchmarkAccessStreamMiss measures the full miss/fill path.
func BenchmarkAccessStreamMiss(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
}

// BenchmarkContextSwitchRestore measures the kernel-visible cost of a full
// s-bit save+restore over the paper's cache sizes (32K L1s + 2MB LLC).
func BenchmarkContextSwitchRestore(b *testing.B) {
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	for i := 0; i < 4096; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cc := range h.SecCaches(0) {
			v := cc.Cache.Sec().SaveColumn(cc.LocalCtx)
			cc.Cache.Sec().RestoreColumn(cc.LocalCtx, v, uint64(i), uint64(i)+1)
		}
	}
}
