package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"timecache/internal/core"
)

// smallHierarchyConfig returns a deliberately tiny geometry so random
// streams quickly force evictions, back-invalidations, and transient
// coherence states.
func smallHierarchyConfig(cores int, mode SecMode) HierarchyConfig {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = cores
	cfg.Mode = mode
	cfg.L1Size = 512 // 4 sets x 2 ways
	cfg.L1Ways = 2
	cfg.LLCSize = 2048 // 8 sets x 4 ways
	cfg.LLCWays = 4
	return cfg
}

// driveRandomOps runs a deterministic pseudo-random mix of fetches, loads,
// stores, flushes, full flushes, and (under SecTimeCache) context-switch
// column save/restores against h. The same seed produces the same stream,
// so two hierarchies driven with equal seeds see identical inputs.
func driveRandomOps(t *testing.T, h *Hierarchy, rng *rand.Rand, ops int, record func(op int, latency uint64, res Result)) {
	t.Helper()
	cores := h.Config().Cores
	lines := 64 // working set: 64 distinct lines across 8 LLC sets
	for i := 0; i < ops; i++ {
		ctx := rng.Intn(cores)
		addr := uint64(rng.Intn(lines)) * LineSize
		switch r := rng.Intn(100); {
		case r < 35:
			res := h.Access(uint64(i), ctx, addr, Load)
			record(i, 0, res)
		case r < 60:
			res := h.Access(uint64(i), ctx, addr, Store)
			record(i, 0, res)
		case r < 80:
			res := h.Access(uint64(i), ctx, addr, Fetch)
			record(i, 0, res)
		case r < 90:
			lat := h.Flush(uint64(i), ctx, addr)
			record(i, lat, Result{})
		case r < 95 && h.Config().Mode == SecTimeCache:
			// Model a context switch on ctx: save its columns and restore
			// them with an advanced timestamp, exercising OnEvict/OnFill
			// interactions with the directory state.
			for _, cc := range h.SecCaches(ctx) {
				v := cc.Cache.Sec().SaveColumn(cc.LocalCtx)
				cc.Cache.Sec().RestoreColumn(cc.LocalCtx, v, uint64(i), uint64(i)+1)
			}
			record(i, 0, Result{})
		case r < 97:
			h.FlushAll()
			record(i, 0, Result{})
		default:
			res := h.Access(uint64(i), ctx, addr, Load)
			record(i, 0, res)
		}
	}
}

// TestDirectoryCoherenceRandom is the randomized property test from the
// issue: mixed load/store/flush/context-switch streams over 2-8 cores with
// CoherenceCheck asserting directory == brute force on every coherence
// event, plus a full CheckCoherence audit between bursts.
func TestDirectoryCoherenceRandom(t *testing.T) {
	for _, cores := range []int{2, 3, 4, 8} {
		for _, mode := range []SecMode{SecOff, SecTimeCache, SecFTM} {
			for _, prefetch := range []bool{false, true} {
				name := fmt.Sprintf("%dcore-%v-prefetch=%v", cores, mode, prefetch)
				t.Run(name, func(t *testing.T) {
					cfg := smallHierarchyConfig(cores, mode)
					cfg.NextLinePrefetch = prefetch
					cfg.CoherenceCheck = true
					h := NewHierarchy(cfg)
					if !h.DirectoryEnabled() {
						t.Fatal("directory should be enabled for this config")
					}
					rng := rand.New(rand.NewSource(int64(cores)*1000 + int64(mode)*10 + 1))
					for burst := 0; burst < 8; burst++ {
						driveRandomOps(t, h, rng, 500, func(int, uint64, Result) {})
						if err := h.CheckCoherence(); err != nil {
							t.Fatalf("burst %d: %v", burst, err)
						}
					}
				})
			}
		}
	}
}

// TestDirectoryMatchesBroadcast drives identical random streams through a
// directory hierarchy and a broadcast (DisableDirectory) hierarchy and
// requires byte-identical observable behavior: every per-op Result and
// flush latency, and every final stats counter, must match. This is what
// makes experiment CSVs byte-identical between the two paths.
func TestDirectoryMatchesBroadcast(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		for _, mode := range []SecMode{SecOff, SecTimeCache, SecFTM} {
			t.Run(fmt.Sprintf("%dcore-%v", cores, mode), func(t *testing.T) {
				mk := func(disable bool) *Hierarchy {
					cfg := smallHierarchyConfig(cores, mode)
					cfg.DisableDirectory = disable
					return NewHierarchy(cfg)
				}
				hDir, hBcast := mk(false), mk(true)
				if !hDir.DirectoryEnabled() || hBcast.DirectoryEnabled() {
					t.Fatal("directory enablement wrong")
				}
				const ops = 4000
				type obs struct {
					lat uint64
					res Result
				}
				a := make([]obs, ops)
				b := make([]obs, ops)
				seed := int64(cores)*77 + int64(mode)
				driveRandomOps(t, hDir, rand.New(rand.NewSource(seed)), ops,
					func(op int, lat uint64, res Result) { a[op] = obs{lat, res} })
				driveRandomOps(t, hBcast, rand.New(rand.NewSource(seed)), ops,
					func(op int, lat uint64, res Result) { b[op] = obs{lat, res} })
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("op %d diverged: directory %+v, broadcast %+v", i, a[i], b[i])
					}
				}
				ca, cb := hDir.Caches(), hBcast.Caches()
				for i := range ca {
					if ca[i].Stats != cb[i].Stats {
						t.Errorf("cache %s stats diverged:\n directory %+v\n broadcast %+v",
							ca[i].Name(), ca[i].Stats, cb[i].Stats)
					}
					if ca[i].Occupancy() != cb[i].Occupancy() {
						t.Errorf("cache %s occupancy %d != %d", ca[i].Name(), ca[i].Occupancy(), cb[i].Occupancy())
					}
				}
			})
		}
	}
}

// TestBackInvalidateClearsSBits is the regression test that inclusive
// back-invalidation still clears s-bits under the directory path: when an
// LLC victim displaces a line out of an L1, the L1 copy must be gone and
// its s-bit column cleared, so a later refill is a fresh fill (not a stale
// visible hit for a context that never re-accessed it).
func TestBackInvalidateClearsSBits(t *testing.T) {
	cfg := smallHierarchyConfig(2, SecTimeCache)
	cfg.CoherenceCheck = true
	h := NewHierarchy(cfg)
	if !h.DirectoryEnabled() {
		t.Fatal("directory should be enabled")
	}

	const target = 0x0 // line 0, LLC set 0
	h.Access(0, 0, target, Load)
	l1d := h.L1D(0)
	idx := l1d.Probe(target)
	if idx < 0 {
		t.Fatal("target not in L1D after load")
	}
	if !l1d.Sec().Visible(idx, 0) {
		t.Fatal("target s-bit not set after load")
	}

	// Thrash LLC set 0 with conflicting lines until the target's LLC slot is
	// reclaimed; inclusion then back-invalidates the L1 copy.
	llcSets := h.LLC().Sets()
	for i := 1; h.LLC().Probe(target) >= 0; i++ {
		if i > 64 {
			t.Fatal("LLC never evicted the target line")
		}
		conflict := uint64(i*llcSets) * LineSize // same LLC set as target
		h.Access(uint64(i), 1, conflict, Load)
	}
	if got := l1d.Probe(target); got >= 0 {
		t.Fatalf("L1D still holds line %#x at %d after inclusive LLC eviction", uint64(target), got)
	}
	if err := h.CheckCoherence(); err != nil {
		t.Fatal(err)
	}

	// Refill and confirm the line behaves as fresh: the invalidation must
	// have cleared the old s-bit via OnEvict, so the refill sets a new one
	// and visibility belongs to the refilling context only.
	res := h.Access(100, 0, target, Load)
	if res.Hit {
		t.Fatalf("refill after back-invalidation was an L1 hit: %+v", res)
	}
	idx = l1d.Probe(target)
	if idx < 0 {
		t.Fatal("target not in L1D after refill")
	}
	if !l1d.Sec().Visible(idx, 0) {
		t.Fatal("refilled line not visible to refilling context")
	}
}

// TestCoherenceNoAllocs asserts the snoop/invalidate path is allocation
// free on both the directory and broadcast implementations: the seed
// allocated a []*Cache slice per store upgrade. Skipped under -race, which
// adds instrumentation allocations.
func TestCoherenceNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	for _, disableDir := range []bool{false, true} {
		name := "directory"
		if disableDir {
			name = "broadcast"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultHierarchyConfig()
			cfg.Cores = 4
			cfg.DisableDirectory = disableDir
			h := NewHierarchy(cfg)
			const addr = 0x40000
			var i uint64
			avg := testing.AllocsPerRun(200, func() {
				h.Access(i, 0, addr, Load)  // refill / downgrade owner
				h.Access(i, 1, addr, Load)  // second sharer
				h.Access(i, 0, addr, Store) // upgrade: invalidateOtherL1s
				h.Access(i, 2, addr, Load)  // miss + snoopDirty on owner
				i++
			})
			if avg != 0 {
				t.Fatalf("snoop/invalidate path allocates %.1f allocs/op, want 0", avg)
			}
		})
	}
}

// TestContextSwitchNoAllocs asserts the kernel-style column save/restore
// (buffer reuse via SaveColumnInto) is allocation free, pinning the
// BenchmarkContextSwitchRestore result at 0 allocs/op.
func TestContextSwitchNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	for i := 0; i < 4096; i++ {
		h.Access(uint64(i), 0, uint64(i)*LineSize, Load)
	}
	secCaches := h.SecCaches(0)
	bufs := make([]core.SecVec, len(secCaches))
	for i, cc := range secCaches {
		bufs[i] = make(core.SecVec, core.VecWords(cc.Cache.Lines()))
	}
	var ts uint64
	avg := testing.AllocsPerRun(100, func() {
		for j, cc := range secCaches {
			cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, bufs[j])
			cc.Cache.Sec().RestoreColumn(cc.LocalCtx, bufs[j], ts, ts+1)
		}
		ts++
	})
	if avg != 0 {
		t.Fatalf("context-switch save/restore allocates %.1f allocs/op, want 0", avg)
	}
}
