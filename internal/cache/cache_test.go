package cache

import (
	"testing"

	"timecache/internal/core"
	"timecache/internal/replacement"
)

func tinyHier(mode SecMode) *Hierarchy {
	cfg := DefaultHierarchyConfig()
	cfg.L1Size = 1 << 10 // 16 lines: 2 sets x 8 ways
	cfg.LLCSize = 8 << 10
	cfg.Mode = mode
	return NewHierarchy(cfg)
}

func TestColdMissThenHit(t *testing.T) {
	h := tinyHier(SecOff)
	r := h.Access(1, 0, 0x1000, Load)
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	if r.Level != 3 {
		t.Fatalf("cold access level = %d, want 3 (memory)", r.Level)
	}
	wantMiss := h.Config().L1Lat + h.Config().LLCLat + h.Config().DRAMLat
	if r.Latency != wantMiss {
		t.Fatalf("miss latency = %d, want %d", r.Latency, wantMiss)
	}
	r = h.Access(2, 0, 0x1000, Load)
	if !r.Hit || r.Latency != h.Config().L1Lat {
		t.Fatalf("second access must be an L1 hit at %d cycles, got %+v", h.Config().L1Lat, r)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	h := tinyHier(SecOff)
	h.Access(1, 0, 0x2000, Load)
	if r := h.Access(2, 0, 0x203F, Load); !r.Hit {
		t.Fatal("access within the same 64B line must hit")
	}
	if r := h.Access(3, 0, 0x2040, Load); r.Hit {
		t.Fatal("next line must miss")
	}
}

func TestL1EvictionFallsBackToLLC(t *testing.T) {
	h := tinyHier(SecOff)
	// L1: 2 sets x 8 ways. Fill set 0 with 9 distinct lines -> way conflict.
	for i := 0; i <= 8; i++ {
		h.Access(uint64(i+1), 0, uint64(i)*2*LineSize, Load) // all map to set 0
	}
	// The first line was LRU-evicted from L1 but must still be in the LLC.
	r := h.Access(100, 0, 0, Load)
	if r.Hit {
		t.Fatal("evicted line must not hit in L1")
	}
	if r.Level != 2 {
		t.Fatalf("evicted line should be served by LLC, level = %d", r.Level)
	}
}

func TestInstructionVsDataCaches(t *testing.T) {
	h := tinyHier(SecOff)
	h.Access(1, 0, 0x3000, Fetch)
	if h.L1I(0).Stats.Accesses != 1 || h.L1D(0).Stats.Accesses != 0 {
		t.Fatal("fetch must go to L1I")
	}
	h.Access(2, 0, 0x3000, Load)
	if h.L1D(0).Stats.Accesses != 1 {
		t.Fatal("load must go to L1D")
	}
	// The load missed L1D but hits the shared LLC, which the fetch filled.
	if h.LLC().Stats.Hits != 1 {
		t.Fatalf("LLC hits = %d, want 1", h.LLC().Stats.Hits)
	}
}

func TestTimeCacheFirstAccessDelaysOtherContext(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.ThreadsPerCore = 2
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)

	// Context 0 brings the line in.
	h.Access(1, 0, 0x4000, Load)
	// Context 1's first access: tag-resident everywhere but must be delayed
	// to memory latency and not reported as a hit.
	r := h.Access(2, 1, 0x4000, Load)
	if r.Hit {
		t.Fatal("first access by another context must not hit")
	}
	if !r.FirstAccess {
		t.Fatal("access must be flagged as first access")
	}
	want := cfg.L1Lat + cfg.LLCLat + cfg.DRAMLat
	if r.Latency != want {
		t.Fatalf("first-access latency = %d, want %d (full miss path)", r.Latency, want)
	}
	// Second access proceeds as a normal hit.
	r = h.Access(3, 1, 0x4000, Load)
	if !r.Hit || r.Latency != cfg.L1Lat {
		t.Fatalf("second access must be an L1 hit, got %+v", r)
	}
	// And context 0 is unaffected throughout.
	if r := h.Access(4, 0, 0x4000, Load); !r.Hit {
		t.Fatal("filling context must keep hitting")
	}
	if h.L1D(0).Stats.FirstAccess != 1 || h.LLC().Stats.FirstAccess != 1 {
		t.Fatalf("first-access counters: l1d=%d llc=%d, want 1 and 1",
			h.L1D(0).Stats.FirstAccess, h.LLC().Stats.FirstAccess)
	}
}

func TestTimeCacheFirstAccessServedByLLCWhenVisibleThere(t *testing.T) {
	// A context whose s-bit is set at the LLC but cleared at L1 (e.g. after
	// an L1-only eviction... modeled here by cross-core access) must see the
	// LLC latency, not DRAM (paper §V-A rationale for descending).
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 2
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)

	// ctx 0 (core 0) loads the line: LLC s-bit set for ctx 0 only.
	h.Access(1, 0, 0x5000, Load)
	// ctx 1 (core 1) loads: first access at LLC, full memory latency.
	r := h.Access(2, 1, 0x5000, Load)
	if r.Level != 3 || !r.FirstAccess {
		t.Fatalf("cross-core first access should go to memory: %+v", r)
	}
	// Evict the line from core 1's L1 only by filling its set.
	set := (0x5000 >> LineShift) % uint64(h.L1D(1).Sets())
	for i := 0; i < h.L1D(1).Ways(); i++ {
		addr := (uint64(i+100)*uint64(h.L1D(1).Sets()) + set) << LineShift
		h.Access(uint64(10+i), 1, addr, Load)
	}
	if h.L1D(1).Probe(0x5000) >= 0 {
		t.Fatal("test setup: line should be evicted from core 1's L1")
	}
	// Re-access by ctx 1: L1 miss, but LLC hit with ctx 1's s-bit set.
	r = h.Access(100, 1, 0x5000, Load)
	if r.Level != 2 {
		t.Fatalf("re-access should be served by LLC, got level %d", r.Level)
	}
	if r.FirstAccess {
		t.Fatal("ctx 1 already paid its first access at the LLC")
	}
}

func TestFlushRemovesLineEverywhere(t *testing.T) {
	h := tinyHier(SecOff)
	h.Access(1, 0, 0x6000, Load)
	h.Flush(2, 0, 0x6000)
	if h.L1D(0).Probe(0x6000) >= 0 || h.LLC().Probe(0x6000) >= 0 {
		t.Fatal("flush must invalidate at every level")
	}
	if r := h.Access(3, 0, 0x6000, Load); r.Hit {
		t.Fatal("access after flush must miss")
	}
}

func TestFlushLatencyLeaksUnlessConstantTime(t *testing.T) {
	h := tinyHier(SecOff)
	cold := h.Flush(1, 0, 0x7000)
	h.Access(2, 0, 0x7000, Load)
	warm := h.Flush(3, 0, 0x7000)
	if warm <= cold {
		t.Fatal("flushing a resident line must take longer (the flush+flush channel)")
	}

	cfg := DefaultHierarchyConfig()
	cfg.ConstantTimeFlush = true
	h2 := NewHierarchy(cfg)
	cold2 := h2.Flush(1, 0, 0x7000)
	h2.Access(2, 0, 0x7000, Load)
	warm2 := h2.Flush(3, 0, 0x7000)
	if cold2 != warm2 {
		t.Fatalf("constant-time flush must not depend on residency: %d vs %d", cold2, warm2)
	}
}

func TestStoreInvalidatesRemoteCopies(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 2
	h := NewHierarchy(cfg)
	h.Access(1, 0, 0x8000, Load)
	h.Access(2, 1, 0x8000, Load)
	if h.L1D(0).Probe(0x8000) < 0 || h.L1D(1).Probe(0x8000) < 0 {
		t.Fatal("both cores should hold the line")
	}
	h.Access(3, 0, 0x8000, Store)
	if h.L1D(1).Probe(0x8000) >= 0 {
		t.Fatal("store must invalidate the remote copy")
	}
}

func TestDirtyRemoteForwardLatency(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 2
	h := NewHierarchy(cfg)
	h.Access(1, 0, 0x9000, Store) // core 0 holds modified
	r := h.Access(2, 1, 0x9000, Load)
	if r.Latency <= cfg.L1Lat+cfg.LLCLat {
		t.Fatal("dirty remote hit must cost more than an LLC hit")
	}
	// After the forward, core 0's copy is downgraded to shared: a second
	// remote load is a plain LLC hit.
	r2 := h.Access(3, 1, 0xA000, Load) // unrelated cold line for contrast
	_ = r2
	h.Access(4, 1, 0x9000, Load)
}

func TestLLCEvictionBackInvalidatesL1(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1Size = 1 << 10  // 16 lines
	cfg.LLCSize = 2 << 10 // 32 lines: 2 sets x 16 ways
	h := NewHierarchy(cfg)
	h.Access(1, 0, 0, Load)
	llcSets := h.LLC().Sets()
	// Fill the LLC set of address 0 until line 0 is evicted.
	for i := 1; i <= h.LLC().Ways(); i++ {
		h.Access(uint64(i+1), 0, uint64(i*llcSets)<<LineShift, Load)
	}
	if h.LLC().Probe(0) >= 0 {
		t.Fatal("test setup: line 0 should be evicted from LLC")
	}
	if h.L1D(0).Probe(0) >= 0 {
		t.Fatal("inclusive LLC eviction must back-invalidate the L1 copy")
	}
}

func TestPartitionedWaysIsolateFills(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Partitioned = true
	h := NewHierarchy(cfg)
	// Domain 1 caches a line, then domain 0 floods the same set: the
	// partitions must not interfere (DAWG-lite isolation).
	h.SetActiveDomain(0, 1)
	h.Access(1000, 0, 0xF0000, Load)
	h.SetActiveDomain(0, 0)
	for i := 0; i < 64; i++ {
		h.Access(uint64(i+1), 0, uint64(i*h.L1D(0).Sets())<<LineShift, Load)
	}
	h.SetActiveDomain(0, 1)
	before := h.L1D(0).Stats.Misses
	h.Access(2000, 0, 0xF0000, Load)
	if h.L1D(0).Stats.Misses != before {
		t.Fatal("domain 1's line must survive domain 0's fills in a partitioned cache")
	}
}

func TestIndexRandomizationStillFunctions(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.IndexRand = 0xABCDEF
	h := NewHierarchy(cfg)
	h.Access(1, 0, 0xB000, Load)
	if r := h.Access(2, 0, 0xB000, Load); !r.Hit {
		t.Fatal("randomized index must still hit on re-access")
	}
}

func TestFTMModeLLCOnly(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 2
	cfg.Mode = SecFTM
	h := NewHierarchy(cfg)
	if h.L1D(0).Sec() != nil {
		t.Fatal("FTM must not add s-bits to L1s")
	}
	if h.LLC().Sec() == nil {
		t.Fatal("FTM needs LLC presence bits")
	}
	// Cross-core reuse is delayed...
	h.Access(1, 0, 0xC000, Load)
	r := h.Access(2, 1, 0xC000, Load)
	if !r.FirstAccess {
		t.Fatal("FTM must delay cross-core reuse at the LLC")
	}
	// ...and there is no context-switch bookkeeping to do.
	if got := h.SecCaches(0); got != nil {
		t.Fatalf("FTM mode has no save/restore caches, got %d", len(got))
	}
}

func TestSecCachesTimeCache(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 2
	cfg.ThreadsPerCore = 2
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	cc := h.SecCaches(3) // core 1, thread 1
	if len(cc) != 3 {
		t.Fatalf("expected 3 caches, got %d", len(cc))
	}
	if cc[0].Cache != h.L1I(1) || cc[1].Cache != h.L1D(1) || cc[2].Cache != h.LLC() {
		t.Fatal("wrong caches for ctx 3")
	}
	if cc[0].LocalCtx != 1 || cc[2].LocalCtx != 3 {
		t.Fatalf("wrong local contexts: %d, %d", cc[0].LocalCtx, cc[2].LocalCtx)
	}
}

func TestContextSwitchSaveRestoreEndToEnd(t *testing.T) {
	// Simulate the kernel's bookkeeping by hand: process A fills a line,
	// is preempted (column saved), process B evicts it and refills it, A is
	// restored — A must not see the new copy.
	cfg := DefaultHierarchyConfig()
	cfg.Mode = SecTimeCache
	h := NewHierarchy(cfg)
	l1d := h.L1D(0)

	h.Access(10, 0, 0xD000, Load) // process A fills
	saved := map[*Cache]core.SecVec{}
	for _, cc := range h.SecCaches(0) {
		saved[cc.Cache] = cc.Cache.Sec().SaveColumn(cc.LocalCtx)
	}
	tsA := uint64(20)

	// Process B now runs on ctx 0: clear A's bits, then B re-fills the line
	// (flush first so it is B's fill, at a later Tc).
	for _, cc := range h.SecCaches(0) {
		cc.Cache.Sec().ClearColumn(cc.LocalCtx)
	}
	h.Flush(30, 0, 0xD000)
	h.Access(40, 0, 0xD000, Load) // B's fill at t=40 > tsA

	// Restore A.
	for _, cc := range h.SecCaches(0) {
		cc.Cache.Sec().RestoreColumn(cc.LocalCtx, saved[cc.Cache], tsA, 50)
	}
	r := h.Access(60, 0, 0xD000, Load)
	if r.Hit || !r.FirstAccess {
		t.Fatalf("A must pay a first-access miss for B's refill, got %+v", r)
	}
	if l1d.Stats.FirstAccess == 0 {
		t.Fatal("L1D should have counted a first access")
	}

	// Contrast: a line A touched that survived B untouched must still hit.
	h2 := NewHierarchy(cfg)
	h2.Access(10, 0, 0xE000, Load)
	var savedVec core.SecVec
	for _, cc := range h2.SecCaches(0) {
		if cc.Cache == h2.L1D(0) {
			savedVec = cc.Cache.Sec().SaveColumn(cc.LocalCtx)
		}
	}
	h2.L1D(0).Sec().ClearColumn(0)
	h2.L1D(0).Sec().RestoreColumn(0, savedVec, 20, 50)
	if r := h2.Access(60, 0, 0xE000, Load); !r.Hit {
		t.Fatal("untouched line must hit after restore")
	}
}

func TestFlushAll(t *testing.T) {
	h := tinyHier(SecOff)
	for i := 0; i < 8; i++ {
		h.Access(uint64(i+1), 0, uint64(i)<<LineShift, Load)
	}
	h.FlushAll()
	if h.L1D(0).Occupancy() != 0 || h.LLC().Occupancy() != 0 {
		t.Fatal("FlushAll must empty every cache")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := tinyHier(SecOff)
	h.Access(1, 0, 0x100, Load)
	h.Access(2, 0, 0x100, Load)
	h.Access(3, 0, 0x100, Store)
	s := h.L1D(0).Stats
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned size must panic")
		}
	}()
	New(Config{Name: "x", Size: 1000, Ways: 3, Policy: replacement.LRU})
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)
	// A demand miss on line N must install line N+1 too.
	h.Access(1, 0, 0x9000, Load)
	if r := h.Access(2, 0, 0x9040, Load); !r.Hit {
		t.Fatal("next line must be prefetched into the L1")
	}
	// Without the prefetcher the second line misses.
	h2 := NewHierarchy(DefaultHierarchyConfig())
	h2.Access(1, 0, 0x9000, Load)
	if r := h2.Access(2, 0, 0x9040, Load); r.Hit {
		t.Fatal("control: no prefetch without the flag")
	}
}

func TestPrefetchDoesNotWeakenTimeCache(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.ThreadsPerCore = 2
	cfg.Mode = SecTimeCache
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)
	// Victim (ctx 0) misses on a line; prefetcher pulls in the next one.
	h.Access(1, 0, 0xA000, Load)
	// The attacker (ctx 1) probes both lines: each must be a delayed first
	// access, not a hit — prefetched fills carry only the victim's s-bit.
	for _, addr := range []uint64{0xA000, 0xA040} {
		r := h.Access(2, 1, addr, Load)
		if r.Hit {
			t.Fatalf("attacker must not get a hit on %#x from the victim's prefetch", addr)
		}
		if !r.FirstAccess {
			t.Fatalf("attacker's probe of %#x should be a first access", addr)
		}
	}
	// The victim itself hits on its prefetched line.
	if r := h.Access(3, 0, 0xA040, Load); !r.Hit {
		t.Fatal("victim must benefit from its own prefetch")
	}
}

func TestPrefetchSequentialStreamSpeedup(t *testing.T) {
	run := func(pf bool) uint64 {
		cfg := DefaultHierarchyConfig()
		cfg.NextLinePrefetch = pf
		h := NewHierarchy(cfg)
		var total uint64
		for i := uint64(0); i < 256; i++ {
			total += h.Access(i+1, 0, 0x40000+i*LineSize, Load).Latency
		}
		return total
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("prefetching should speed up a sequential stream: %d vs %d cycles", with, without)
	}
	// Roughly every other access becomes a hit.
	if with > without*3/4 {
		t.Fatalf("prefetch benefit too small: %d vs %d", with, without)
	}
}
