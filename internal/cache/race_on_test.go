//go:build race

package cache

// raceEnabled reports whether the race detector is active; race
// instrumentation perturbs allocation counts, so alloc assertions skip.
const raceEnabled = true
