// Package cache models a write-back, write-allocate set-associative cache
// and a multi-core hierarchy (private L1I/L1D per core, shared inclusive
// LLC) with MESI-lite coherence, clflush, and the TimeCache per-context
// visibility checks from internal/core.
//
// The model is a timing model: caches track tags, states, and TimeCache
// metadata, while data lives solely in physical memory (stores update memory
// immediately). This keeps the simulator fast and cannot produce stale data,
// while preserving everything the paper's evaluation measures: hit/miss
// latencies, per-line metadata, eviction/invalidation/coherence events, and
// first-access misses.
package cache

import (
	"fmt"

	"timecache/internal/clock"
	"timecache/internal/core"
	"timecache/internal/replacement"
)

// LineSize is the cache line size in bytes (fixed at 64, as in the paper).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Kind distinguishes access types.
type Kind int

// Access kinds.
const (
	Fetch   Kind = iota // instruction fetch (L1I)
	Load                // data read (L1D)
	Store               // data write (L1D)
	FlushOp             // clflush (only appears on Request trails, never Access)
)

func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	case FlushOp:
		return "flush"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// state is the MESI-lite coherence state of an L1 line.
type state uint8

const (
	invalid state = iota
	shared
	modified
)

// line is one cache line's metadata.
type line struct {
	tag   uint64 // line-aligned address; meaningful only when st != invalid
	st    state
	dirty bool // used at the LLC (L1 dirtiness is st == modified)
	// llcHint caches the LLC slot index backing this L1 line, set by the
	// hierarchy at fill time when the sharer directory is on. It is only a
	// hint — consumers verify the slot's tag before trusting it — and it
	// fits in the struct's existing padding, so it costs no memory.
	llcHint int32
}

// Stats counts events at one cache.
type Stats struct {
	Accesses    uint64 // lookups made at this cache
	Hits        uint64 // serviced as hits (s-bit visible)
	Misses      uint64 // tag misses
	FirstAccess uint64 // resident lines delayed because the s-bit was clear
	Evictions   uint64 // valid lines displaced by fills
	Writebacks  uint64 // dirty evictions
	Invalidates uint64 // lines removed by coherence or clflush
}

// Delta returns the counter advance since an earlier snapshot, the quantity
// interval samplers and warm-point measurements work with.
func (s Stats) Delta(before Stats) Stats {
	return Stats{
		Accesses:    s.Accesses - before.Accesses,
		Hits:        s.Hits - before.Hits,
		Misses:      s.Misses - before.Misses,
		FirstAccess: s.FirstAccess - before.FirstAccess,
		Evictions:   s.Evictions - before.Evictions,
		Writebacks:  s.Writebacks - before.Writebacks,
		Invalidates: s.Invalidates - before.Invalidates,
	}
}

// Add returns the element-wise sum of two counter sets (aggregating the
// per-core private caches into one logical level).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Accesses:    s.Accesses + o.Accesses,
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		FirstAccess: s.FirstAccess + o.FirstAccess,
		Evictions:   s.Evictions + o.Evictions,
		Writebacks:  s.Writebacks + o.Writebacks,
		Invalidates: s.Invalidates + o.Invalidates,
	}
}

// Config describes one cache's geometry and timing.
type Config struct {
	Name       string
	Size       int    // total bytes
	Ways       int    // associativity
	Latency    uint64 // hit latency in cycles
	Policy     replacement.Kind
	PolicySeed uint64

	// Sec enables TimeCache state with the given number of hardware
	// contexts sharing this cache; nil disables it.
	Sec         *core.Config
	SecContexts int

	// Partition, when non-nil, confines each context's lookups and fills to
	// a contiguous way range (DAWG-lite way partitioning baseline).
	Partition func(ctx int) (firstWay, ways int)

	// Index, when non-nil, overrides set selection (used by the CEASER-lite
	// randomized-index baseline). It receives the line-aligned address.
	Index func(lineAddr uint64) uint64
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg   Config
	sets  int
	ways  int
	lines []line
	pol   replacement.Policy
	// lru is pol's concrete type when the policy is true LRU, letting the
	// hit path call Touch directly (inlinable) instead of through the
	// interface.
	lru *replacement.LRUPolicy
	// mru memoizes the most recently hit or filled way per set: the common
	// L1 hit re-references the same line, so lookup checks this way first
	// and the hit costs a single tag compare. The memo is only a hint —
	// validity and tag are always re-checked — so invalidations can leave
	// it stale safely.
	mru []int32
	sec core.Tracker

	Stats Stats
}

// New builds a cache from cfg. Size must be a multiple of Ways*LineSize.
func New(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d", cfg.Name, cfg.Size, cfg.Ways))
	}
	if cfg.Size%(cfg.Ways*LineSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*linesize", cfg.Name, cfg.Size))
	}
	sets := cfg.Size / (cfg.Ways * LineSize)
	pol, err := replacement.New(cfg.Policy, sets, cfg.Ways, cfg.PolicySeed)
	if err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:   cfg,
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]line, sets*cfg.Ways),
		pol:   pol,
		mru:   make([]int32, sets),
	}
	if l, ok := pol.(*replacement.LRUPolicy); ok {
		c.lru = l
	}
	if cfg.Sec != nil {
		if cfg.SecContexts <= 0 {
			panic(fmt.Sprintf("cache %s: Sec enabled but SecContexts=%d", cfg.Name, cfg.SecContexts))
		}
		c.sec = core.NewTracker(*cfg.Sec, sets*cfg.Ways, cfg.SecContexts)
	}
	return c
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Lines returns the total line count.
func (c *Cache) Lines() int { return len(c.lines) }

// Latency returns the hit latency.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// Sec returns the TimeCache security state, or nil if disabled.
func (c *Cache) Sec() core.Tracker { return c.sec }

func (c *Cache) setOf(lineAddr uint64) int {
	if c.cfg.Index != nil {
		return int(c.cfg.Index(lineAddr) % uint64(c.sets))
	}
	return int((lineAddr >> LineShift) % uint64(c.sets))
}

func (c *Cache) wayRange(ctx int) (int, int) {
	if c.cfg.Partition == nil {
		return 0, c.ways
	}
	first, n := c.cfg.Partition(ctx)
	if first < 0 || n <= 0 || first+n > c.ways {
		panic(fmt.Sprintf("cache %s: partition [%d,%d) out of %d ways", c.cfg.Name, first, first+n, c.ways))
	}
	return first, first + n
}

// lookup returns the line index holding lineAddr for ctx, or -1. The MRU
// fast path makes the common repeated hit a single tag compare; the way
// scan below is only reached on a set change or a miss.
func (c *Cache) lookup(lineAddr uint64, ctx int) int {
	set := c.setOf(lineAddr)
	base := set * c.ways
	if w := int(c.mru[set]); true {
		if l := &c.lines[base+w]; l.st != invalid && l.tag == lineAddr {
			if c.cfg.Partition == nil {
				return base + w
			}
			if lo, hi := c.wayRange(ctx); w >= lo && w < hi {
				return base + w
			}
		}
	}
	lo, hi := c.wayRange(ctx)
	for w := lo; w < hi; w++ {
		if l := &c.lines[base+w]; l.st != invalid && l.tag == lineAddr {
			c.mru[set] = int32(w)
			return base + w
		}
	}
	return -1
}

// Probe reports whether lineAddr is resident (any context's partition),
// without touching replacement state or stats. Used by snooping, the
// sharer directory, and tests.
func (c *Cache) Probe(lineAddr uint64) int {
	set := c.setOf(lineAddr)
	base := set * c.ways
	if w := int(c.mru[set]); true {
		if l := &c.lines[base+w]; l.st != invalid && l.tag == lineAddr {
			return base + w
		}
	}
	for w := 0; w < c.ways; w++ {
		if l := &c.lines[base+w]; l.st != invalid && l.tag == lineAddr {
			return base + w
		}
	}
	return -1
}

// visible reports whether a resident line may be served to ctx as a hit.
func (c *Cache) visible(idx, ctx int) bool {
	if c.sec == nil {
		return true
	}
	return c.sec.Visible(idx, ctx)
}

// touch updates replacement state for a line index, calling the concrete
// LRU policy directly when possible (devirtualized: the default policy's
// Touch then inlines into the hit path).
func (c *Cache) touch(idx int) {
	if c.lru != nil {
		c.lru.Touch(idx/c.ways, idx%c.ways)
		return
	}
	c.pol.Touch(idx/c.ways, idx%c.ways)
}

// victim picks a line index to fill for ctx in lineAddr's set, preferring an
// invalid way. The caller must handle eviction of the returned line first.
func (c *Cache) victim(lineAddr uint64, ctx int) int {
	set := c.setOf(lineAddr)
	lo, hi := c.wayRange(ctx)
	base := set * c.ways
	for w := lo; w < hi; w++ {
		if c.lines[base+w].st == invalid {
			return base + w
		}
	}
	if c.cfg.Partition != nil {
		// Pick the partition's LRU way by probing the policy within range.
		// Replacement policies are whole-set; for partitioned mode we keep a
		// simple clock over the partition: evict the way the policy names if
		// it falls inside, else the first way of the partition.
		v := c.pol.Victim(set)
		if v >= lo && v < hi {
			return base + v
		}
		return base + lo
	}
	return base + c.pol.Victim(set)
}

// invalidate removes a line by index, clearing its s-bits. Returns whether
// the line was dirty.
func (c *Cache) invalidate(idx int) bool {
	l := &c.lines[idx]
	dirty := l.dirty || l.st == modified
	l.st = invalid
	l.dirty = false
	c.Stats.Invalidates++
	if c.sec != nil {
		c.sec.OnEvict(idx)
	}
	return dirty
}

// fill installs lineAddr at idx for ctx at time now with the given state.
func (c *Cache) fill(idx int, lineAddr uint64, st state, ctx int, now clock.Cycles) {
	l := &c.lines[idx]
	if l.st != invalid {
		c.Stats.Evictions++
		if l.dirty || l.st == modified {
			c.Stats.Writebacks++
		}
		if c.sec != nil {
			c.sec.OnEvict(idx)
		}
	}
	l.tag = lineAddr
	l.st = st
	l.dirty = false
	c.mru[idx/c.ways] = int32(idx % c.ways)
	c.touch(idx)
	if c.sec != nil {
		c.sec.OnFill(idx, ctx, now)
	}
}

// Reset returns the cache to its freshly constructed cold state — all lines
// invalid, replacement and MRU state cleared, stats and TimeCache metadata
// zeroed — without reallocating any backing array. A zeroed line is exactly
// a fresh one (invalid state, llcHint 0 is "no hint" because consumers
// verify tags before trusting it).
func (c *Cache) Reset() {
	clear(c.lines)
	clear(c.mru)
	c.pol.Reset()
	if c.sec != nil {
		c.sec.Reset()
	}
	c.Stats = Stats{}
}

// FlushAll invalidates every line (the flush-on-context-switch baseline).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		if c.lines[i].st != invalid {
			c.invalidate(i)
		}
	}
}

// Occupancy returns the number of valid lines (for tests and stats).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].st != invalid {
			n++
		}
	}
	return n
}
