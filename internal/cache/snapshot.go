// Snapshot support: restoring one hierarchy's warm state into another built
// from the same HierarchyConfig. Machine forking (internal/machine) uses
// this to clone cache line arrays, replacement-policy state, the s-bit
// trackers, and the LLC sharer directory without replaying the accesses
// that produced them.
package cache

import (
	"timecache/internal/core"
	"timecache/internal/replacement"
)

// copyFrom restores src's state into c. Both caches must come from the same
// Config (same geometry, policy, and tracker shape).
func (c *Cache) copyFrom(src *Cache) {
	copy(c.lines, src.lines)
	copy(c.mru, src.mru)
	replacement.Copy(c.pol, src.pol)
	if c.sec != nil {
		core.CopyTracker(c.sec, src.sec)
	}
	c.Stats = src.Stats
}

// copyFrom restores src's sharer state into d. Side-table entries are
// deep-copied (they are held by pointer) so later mutations in one
// hierarchy never leak into the other.
func (d *directory) copyFrom(src *directory) {
	copy(d.entries, src.entries)
	copy(d.ownedInSet, src.ownedInSet)
	clear(d.side)
	for addr, e := range src.side {
		ec := *e
		d.side[addr] = &ec
	}
	d.sideOwned = src.sideOwned
}

// CopyFrom restores src's complete timing-relevant state into h: every
// cache's lines, MRU memos, replacement policy, and s-bit tracker, plus the
// sharer directory and the partitioned-mode active domains. Both
// hierarchies must come from the same HierarchyConfig. The observer is
// detached (as Reset does): a forked machine never reports into the source
// run's collector. The scratch Request is not copied — beginTrail clears
// every response field per access. src is only read, so concurrent
// CopyFrom calls may share one source.
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	for c := range h.l1i {
		h.l1i[c].copyFrom(src.l1i[c])
		h.l1d[c].copyFrom(src.l1d[c])
	}
	h.llc.copyFrom(src.llc)
	if h.dir != nil {
		h.dir.copyFrom(src.dir)
	}
	copy(h.activeDomain, src.activeDomain)
	h.obs = nil
	if src.def != nil {
		// Defense state is timing-relevant and must travel with the
		// snapshot. The destination hierarchy was built from the same
		// machine Config and so carries a same-kind instance; CopyFrom
		// panics on a kind mismatch rather than shelving a partial machine.
		if h.def == nil {
			panic("cache: snapshot source has a runtime defense but destination does not")
		}
		h.def.CopyFrom(src.def)
	}
}
