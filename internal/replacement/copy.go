package replacement

import "fmt"

// Copy restores src's decision state into dst, which must be the same
// concrete policy over the same geometry (both sides of a machine
// snapshot/fork are built from one machine.Config, so they always are).
// After Copy, dst's future Victim/Touch sequence is identical to src's —
// the property machine forking needs so a forked run replays a continued
// run exactly. Implemented as a package function with a type switch rather
// than a Policy method so the Policy interface (and its external
// implementations, if any appear) stays minimal.
func Copy(dst, src Policy) {
	switch d := dst.(type) {
	case *LRUPolicy:
		s := src.(*LRUPolicy)
		copy(d.ages, s.ages)
		copy(d.ticks, s.ticks)
	case *treePLRU:
		s := src.(*treePLRU)
		for i := range d.bits {
			copy(d.bits[i], s.bits[i])
		}
	case *random:
		// seed is construction state and already equal; only the PRNG
		// position advances.
		d.state = src.(*random).state
	default:
		panic(fmt.Sprintf("replacement: Copy of unknown policy %T", dst))
	}
}
