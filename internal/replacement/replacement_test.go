package replacement

import (
	"testing"
	"testing/quick"
)

func TestLRUEvictsOldest(t *testing.T) {
	p := NewLRU(2, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	if v := p.Victim(0); v != 0 {
		t.Fatalf("victim = %d, want 0 (oldest)", v)
	}
	p.Touch(0, 0) // refresh way 0; way 1 is now oldest
	if v := p.Victim(0); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

func TestLRUSetsIndependent(t *testing.T) {
	p := NewLRU(2, 2)
	p.Touch(0, 0)
	p.Touch(0, 1)
	p.Touch(1, 1)
	p.Touch(1, 0)
	if p.Victim(0) != 0 {
		t.Error("set 0 victim should be way 0")
	}
	if p.Victim(1) != 1 {
		t.Error("set 1 victim should be way 1")
	}
}

// Property: with true LRU, after touching each of `ways` distinct ways in
// some order, the victim is the first-touched way.
func TestLRUStackProperty(t *testing.T) {
	f := func(permSeed uint8) bool {
		const ways = 8
		p := NewLRU(1, ways)
		// Build a permutation from the seed via repeated swaps.
		order := make([]int, ways)
		for i := range order {
			order[i] = i
		}
		s := uint64(permSeed) + 1
		for i := ways - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s>>33) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, w := range order {
			p.Touch(0, w)
		}
		return p.Victim(0) == order[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreePLRUVictimNeverMostRecent(t *testing.T) {
	p := NewTreePLRU(1, 8)
	for i := 0; i < 100; i++ {
		w := (i * 5) % 8
		p.Touch(0, w)
		if v := p.Victim(0); v == w {
			t.Fatalf("tree-PLRU chose the just-touched way %d as victim", w)
		}
	}
}

func TestTreePLRUCoversAllWays(t *testing.T) {
	// Repeatedly evicting and touching the victim must cycle through every
	// way (PLRU is a fair approximation under this adversarial pattern).
	p := NewTreePLRU(1, 4)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		v := p.Victim(0)
		seen[v] = true
		p.Touch(0, v)
	}
	for w := 0; w < 4; w++ {
		if !seen[w] {
			t.Fatalf("way %d never chosen as victim", w)
		}
	}
}

func TestTreePLRURequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two ways must panic")
		}
	}()
	NewTreePLRU(1, 3)
}

func TestRandomInRangeAndDeterministic(t *testing.T) {
	a := NewRandom(1, 8, 42)
	b := NewRandom(1, 8, 42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Victim(0), b.Victim(0)
		if va != vb {
			t.Fatal("same seed must give same victim sequence")
		}
		if va < 0 || va >= 8 {
			t.Fatalf("victim %d out of range", va)
		}
	}
}

func TestRandomSpreads(t *testing.T) {
	p := NewRandom(1, 4, 7)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[p.Victim(0)]++
	}
	for w, c := range counts {
		if c < 500 {
			t.Fatalf("way %d chosen only %d/4000 times; distribution badly skewed", w, c)
		}
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range []Kind{LRU, TreePLRU, Random, ""} {
		p, err := New(k, 4, 4, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if p == nil {
			t.Fatalf("New(%q) returned nil", k)
		}
	}
	if _, err := New("bogus", 4, 4, 1); err == nil {
		t.Error("unknown kind must error")
	}
}
