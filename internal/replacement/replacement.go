// Package replacement provides pluggable cache replacement policies.
//
// Policies operate on one cache set at a time: they are told about fills and
// touches (hits) per way, and asked to pick a victim way. True LRU is the
// default (and is required by the LRU side-channel attack reproduction from
// paper §VII-A); tree-PLRU and random are provided as alternatives.
package replacement

import "fmt"

// Policy decides which way of a cache set to evict.
//
// All methods take the set index so one Policy instance manages every set of
// a cache. Ways are dense indices [0, ways).
type Policy interface {
	// Touch records an access (hit or fill) to the given way of a set.
	Touch(set, way int)
	// Victim returns the way to evict from a set. Invalid ways should be
	// preferred by the cache before calling Victim.
	Victim(set int) int
	// Name identifies the policy for stats and configuration.
	Name() string
	// Reset returns the policy to its freshly constructed state without
	// reallocating. Machine reuse across experiment runs (machine.Reset)
	// depends on reset policies reproducing a cold machine's victim
	// decisions exactly.
	Reset()
}

// Kind names a replacement policy for configuration.
type Kind string

// Supported replacement policy kinds.
const (
	LRU      Kind = "lru"
	TreePLRU Kind = "tree-plru"
	Random   Kind = "random"
)

// New constructs a policy for a cache with the given geometry. Seed is used
// only by the random policy.
func New(kind Kind, sets, ways int, seed uint64) (Policy, error) {
	switch kind {
	case LRU, "":
		return NewLRU(sets, ways), nil
	case TreePLRU:
		return NewTreePLRU(sets, ways), nil
	case Random:
		return NewRandom(sets, ways, seed), nil
	default:
		return nil, fmt.Errorf("replacement: unknown policy %q", kind)
	}
}

// LRUPolicy implements true least-recently-used via per-set age stamps.
// The concrete type is exported so hot callers (the cache lookup path) can
// devirtualize Touch — a direct, inlinable call instead of an interface
// dispatch per hit.
type LRUPolicy struct {
	ways  int
	ages  []uint64 // sets*ways age stamps
	ticks []uint64 // per-set logical clock
}

// NewLRU returns a true LRU policy.
func NewLRU(sets, ways int) Policy {
	checkGeom(sets, ways)
	return &LRUPolicy{ways: ways, ages: make([]uint64, sets*ways), ticks: make([]uint64, sets)}
}

// Name implements Policy.
func (l *LRUPolicy) Name() string { return string(LRU) }

// Touch implements Policy.
func (l *LRUPolicy) Touch(set, way int) {
	l.ticks[set]++
	l.ages[set*l.ways+way] = l.ticks[set]
}

// Reset implements Policy.
func (l *LRUPolicy) Reset() {
	clear(l.ages)
	clear(l.ticks)
}

// Victim implements Policy.
func (l *LRUPolicy) Victim(set int) int {
	base := set * l.ways
	victim, oldest := 0, l.ages[base]
	for w := 1; w < l.ways; w++ {
		if a := l.ages[base+w]; a < oldest {
			victim, oldest = w, a
		}
	}
	return victim
}

// treePLRU implements the classic binary-tree pseudo-LRU. Ways must be a
// power of two.
type treePLRU struct {
	ways int
	// bits holds ways-1 tree bits per set; bit value 0 means "left subtree
	// is older" (victim lives left), 1 means right.
	bits [][]bool
}

// NewTreePLRU returns a tree-PLRU policy. Ways must be a power of two.
func NewTreePLRU(sets, ways int) Policy {
	checkGeom(sets, ways)
	if ways&(ways-1) != 0 {
		panic("replacement: tree-plru requires power-of-two ways")
	}
	b := make([][]bool, sets)
	for i := range b {
		b[i] = make([]bool, ways-1)
	}
	return &treePLRU{ways: ways, bits: b}
}

func (t *treePLRU) Name() string { return string(TreePLRU) }

// Reset implements Policy.
func (t *treePLRU) Reset() {
	for _, b := range t.bits {
		clear(b)
	}
}

// Touch flips the tree bits along the path to way so they point away from it.
func (t *treePLRU) Touch(set, way int) {
	bits := t.bits[set]
	node, lo, hi := 0, 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits[node] = true // point at right: left was just used
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false // point at left
			node = 2*node + 2
			lo = mid
		}
	}
}

// Victim follows the tree bits to the pseudo-oldest way.
func (t *treePLRU) Victim(set int) int {
	bits := t.bits[set]
	node, lo, hi := 0, 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// random picks victims with an xorshift64* PRNG so runs stay reproducible.
type random struct {
	ways  int
	seed  uint64 // resolved construction seed, kept for Reset
	state uint64
}

// NewRandom returns a seeded random-victim policy.
func NewRandom(sets, ways int, seed uint64) Policy {
	checkGeom(sets, ways)
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &random{ways: ways, seed: seed, state: seed}
}

func (r *random) Name() string       { return string(Random) }
func (r *random) Touch(set, way int) {}

// Reset implements Policy: the PRNG restarts from its construction seed.
func (r *random) Reset() { r.state = r.seed }

func (r *random) Victim(set int) int {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return int((r.state * 0x2545F4914F6CDD1D) >> 33 % uint64(r.ways))
}

func checkGeom(sets, ways int) {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("replacement: invalid geometry sets=%d ways=%d", sets, ways))
	}
}
