// Package asm is a two-pass assembler for μRISC source text.
//
// Syntax, one statement per line (';' or '#' start a comment):
//
//	.text                ; switch to the text section (default)
//	.data                ; private initialized data
//	.shared              ; data mapped to shared physical frames
//	.quad 1, 2, label    ; emit 8-byte little-endian words (data sections)
//	.space 128           ; emit zero bytes (data sections)
//	label:               ; define a label at the current location
//	movi r1, 0x40        ; instructions (text section only)
//	ld   r2, [r1+8]
//	st   [r1], r2
//	beq  r1, r2, done
//
// Immediates are decimal or 0x-hex, optionally negative, or a label name
// (optionally label+offset / label-offset). Registers are r0..r15; r0 reads
// as zero, r15 is the stack pointer (also writable as "sp").
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"timecache/internal/isa"
)

// Layout fixes the virtual addresses of the program segments.
type Layout struct {
	TextBase   uint64
	DataBase   uint64
	SharedBase uint64
	StackTop   uint64
	StackSize  uint64
}

// DefaultLayout places text at 64 KiB with data, shared-library image, and
// stack in distinct, page-aligned regions.
func DefaultLayout() Layout {
	return Layout{
		TextBase:   0x0001_0000,
		DataBase:   0x0010_0000,
		SharedBase: 0x0100_0000,
		StackTop:   0x00F0_0000,
		StackSize:  64 << 10,
	}
}

type section int

const (
	secText section = iota
	secData
	secShared
)

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type fixup struct {
	line  int
	instr int // index into instrs
	word  int // byte offset of a .quad in data/shared, -1 for instr
	sec   section
	expr  string
}

type assembler struct {
	layout Layout
	sec    section
	instrs []isa.Instr
	data   []byte
	shared []byte
	labels map[string]uint64
	fixups []fixup
}

// Assemble translates source into a Program using the default layout.
func Assemble(src string) (*isa.Program, error) {
	return AssembleLayout(src, DefaultLayout())
}

// AssembleLayout translates source into a Program with an explicit layout.
func AssembleLayout(src string, layout Layout) (*isa.Program, error) {
	a := &assembler{layout: layout, labels: map[string]uint64{}}
	for ln, raw := range strings.Split(src, "\n") {
		if err := a.line(ln+1, raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	return &isa.Program{
		TextBase:   layout.TextBase,
		Instrs:     a.instrs,
		DataBase:   layout.DataBase,
		Data:       a.data,
		SharedBase: layout.SharedBase,
		Shared:     a.shared,
		StackTop:   layout.StackTop,
		StackSize:  layout.StackSize,
		Labels:     a.labels,
		Entry:      layout.TextBase,
	}, nil
}

func (a *assembler) here() uint64 {
	switch a.sec {
	case secText:
		return a.layout.TextBase + uint64(len(a.instrs))*isa.InstrBytes
	case secData:
		return a.layout.DataBase + uint64(len(a.data))
	default:
		return a.layout.SharedBase + uint64(len(a.shared))
	}
}

func (a *assembler) line(ln int, raw string) error {
	s := raw
	// Strip the comment, honoring quoted strings (so `.ascii "a;b"` works).
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case !inStr && (s[i] == ';' || s[i] == '#'):
			s = s[:i]
			i = len(s)
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels (possibly several) at line start.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !validIdent(name) {
			return &Error{ln, fmt.Sprintf("invalid label %q", name)}
		}
		if _, dup := a.labels[name]; dup {
			return &Error{ln, fmt.Sprintf("duplicate label %q", name)}
		}
		a.labels[name] = a.here()
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(ln, s)
	}
	if a.sec != secText {
		return &Error{ln, "instructions are only allowed in .text"}
	}
	return a.instr(ln, s)
}

func (a *assembler) directive(ln int, s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".shared":
		a.sec = secShared
	case ".quad":
		if a.sec == secText {
			return &Error{ln, ".quad not allowed in .text"}
		}
		for _, f := range splitOperands(rest) {
			buf := a.curData()
			off := len(*buf)
			*buf = append(*buf, make([]byte, 8)...)
			if v, err := parseInt(f); err == nil {
				putU64(*buf, off, uint64(v))
			} else {
				a.fixups = append(a.fixups, fixup{line: ln, word: off, sec: a.sec, expr: f, instr: -1})
			}
		}
	case ".space":
		if a.sec == secText {
			return &Error{ln, ".space not allowed in .text"}
		}
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return &Error{ln, fmt.Sprintf("bad .space size %q", rest)}
		}
		buf := a.curData()
		*buf = append(*buf, make([]byte, n)...)
	case ".byte":
		if a.sec == secText {
			return &Error{ln, ".byte not allowed in .text"}
		}
		buf := a.curData()
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil || v < 0 || v > 255 {
				return &Error{ln, fmt.Sprintf("bad byte value %q", f)}
			}
			*buf = append(*buf, byte(v))
		}
	case ".ascii":
		if a.sec == secText {
			return &Error{ln, ".ascii not allowed in .text"}
		}
		str, err := parseString(rest)
		if err != nil {
			return &Error{ln, err.Error()}
		}
		buf := a.curData()
		*buf = append(*buf, str...)
	case ".align":
		if a.sec == secText {
			return &Error{ln, ".align not allowed in .text"}
		}
		n, err := parseInt(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return &Error{ln, fmt.Sprintf("bad .align boundary %q (power of two required)", rest)}
		}
		buf := a.curData()
		for uint64(len(*buf))%uint64(n) != 0 {
			*buf = append(*buf, 0)
		}
	default:
		return &Error{ln, fmt.Sprintf("unknown directive %s", name)}
	}
	return nil
}

func (a *assembler) curData() *[]byte {
	if a.sec == secData {
		return &a.data
	}
	return &a.shared
}

func (a *assembler) instr(ln int, s string) error {
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(mn)
	op, ok := isa.OpByName[mn]
	if !ok {
		return &Error{ln, fmt.Sprintf("unknown mnemonic %q", mn)}
	}
	ops := splitOperands(strings.TrimSpace(rest))
	in := isa.Instr{Op: op}
	fail := func(format string, args ...any) error {
		return &Error{ln, fmt.Sprintf(format, args...)}
	}
	need := func(n int) error {
		if len(ops) != n {
			return fail("%s takes %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	reg := func(tok string) (uint8, error) {
		r, err := parseReg(tok)
		if err != nil {
			return 0, fail("%v", err)
		}
		return r, nil
	}
	// imm parses an immediate now or defers it to the fixup pass.
	imm := func(tok string) error {
		if v, err := parseInt(tok); err == nil {
			in.Imm = v
			return nil
		}
		a.fixups = append(a.fixups, fixup{line: ln, instr: len(a.instrs), word: -1, expr: tok})
		return nil
	}

	var err error
	switch op {
	case isa.NOP, isa.HALT, isa.RET, isa.FENCE:
		err = need(0)
	case isa.MOVI:
		if err = need(2); err == nil {
			if in.Rd, err = reg(ops[0]); err == nil {
				err = imm(ops[1])
			}
		}
	case isa.MOV, isa.NOT:
		if err = need(2); err == nil {
			if in.Rd, err = reg(ops[0]); err == nil {
				in.Rs, err = reg(ops[1])
			}
		}
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		if err = need(3); err == nil {
			if in.Rd, err = reg(ops[0]); err == nil {
				if in.Rs, err = reg(ops[1]); err == nil {
					in.Rt, err = reg(ops[2])
				}
			}
		}
	case isa.ADDI, isa.SHLI, isa.SHRI:
		if err = need(3); err == nil {
			if in.Rd, err = reg(ops[0]); err == nil {
				if in.Rs, err = reg(ops[1]); err == nil {
					err = imm(ops[2])
				}
			}
		}
	case isa.LD:
		if err = need(2); err == nil {
			if in.Rd, err = reg(ops[0]); err == nil {
				in.Rs, in.Imm, err = a.parseMem(ln, ops[1])
			}
		}
	case isa.ST:
		if err = need(2); err == nil {
			if in.Rs, in.Imm, err = a.parseMem(ln, ops[0]); err == nil {
				in.Rt, err = reg(ops[1])
			}
		}
	case isa.CLFLUSH:
		if err = need(1); err == nil {
			in.Rs, in.Imm, err = a.parseMem(ln, ops[0])
		}
	case isa.RDTSC, isa.POP:
		if err = need(1); err == nil {
			in.Rd, err = reg(ops[0])
		}
	case isa.PUSH:
		if err = need(1); err == nil {
			in.Rs, err = reg(ops[0])
		}
	case isa.JMP, isa.CALL:
		if err = need(1); err == nil {
			err = imm(ops[0])
		}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if err = need(3); err == nil {
			if in.Rs, err = reg(ops[0]); err == nil {
				if in.Rt, err = reg(ops[1]); err == nil {
					err = imm(ops[2])
				}
			}
		}
	case isa.SYS:
		if err = need(1); err == nil {
			err = imm(ops[0])
		}
	default:
		err = fail("unhandled mnemonic %q", mn)
	}
	if err != nil {
		return err
	}
	a.instrs = append(a.instrs, in)
	return nil
}

// parseMem parses "[rN]", "[rN+imm]", "[rN-imm]", with imm possibly a label.
func (a *assembler) parseMem(ln int, tok string) (uint8, int64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, &Error{ln, fmt.Sprintf("bad memory operand %q", tok)}
	}
	inner := strings.TrimSpace(tok[1 : len(tok)-1])
	regTok := inner
	offTok := ""
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			regTok, offTok = strings.TrimSpace(inner[:i]), strings.TrimSpace(inner[i:])
			break
		}
	}
	r, err := parseReg(regTok)
	if err != nil {
		return 0, 0, &Error{ln, err.Error()}
	}
	if offTok == "" {
		return r, 0, nil
	}
	v, err := parseInt(offTok)
	if err != nil {
		return 0, 0, &Error{ln, fmt.Sprintf("bad offset %q", offTok)}
	}
	return r, v, nil
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		v, err := a.eval(f.expr)
		if err != nil {
			return &Error{f.line, err.Error()}
		}
		if f.word >= 0 {
			switch f.sec {
			case secData:
				putU64(a.data, f.word, uint64(v))
			case secShared:
				putU64(a.shared, f.word, uint64(v))
			}
		} else {
			a.instrs[f.instr].Imm = v
		}
	}
	return nil
}

// eval resolves "label", "label+N", or "label-N".
func (a *assembler) eval(expr string) (int64, error) {
	name, off := expr, int64(0)
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			v, err := parseInt(expr[i:])
			if err != nil {
				return 0, fmt.Errorf("bad expression %q", expr)
			}
			name, off = expr[:i], v
			break
		}
	}
	addr, ok := a.labels[name]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return int64(addr) + off, nil
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	// Split on commas not inside brackets.
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(tok string) (uint8, error) {
	t := strings.ToLower(strings.TrimSpace(tok))
	if t == "sp" {
		return isa.RSP, nil
	}
	if len(t) >= 2 && t[0] == 'r' {
		if n, err := strconv.Atoi(t[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func parseInt(tok string) (int64, error) {
	t := strings.TrimSpace(tok)
	neg := false
	if strings.HasPrefix(t, "+") {
		t = t[1:]
	} else if strings.HasPrefix(t, "-") {
		neg, t = true, t[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		v, err = strconv.ParseUint(t[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(t, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseString parses a double-quoted string with \n, \t, \\, \" and \0
// escapes.
func parseString(tok string) ([]byte, error) {
	t := strings.TrimSpace(tok)
	if len(t) < 2 || t[0] != '"' || t[len(t)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %q", tok)
	}
	body := t[1 : len(t)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("dangling escape in %q", tok)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		case '0':
			out = append(out, 0)
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}
