package asm

import (
	"strings"
	"testing"

	"timecache/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := mustAsm(t, `
		movi r1, 42
		mov  r2, r1
		add  r3, r1, r2
		addi r4, r3, -5
		halt
	`)
	if len(p.Instrs) != 5 {
		t.Fatalf("got %d instrs, want 5", len(p.Instrs))
	}
	if p.Instrs[0].Op != isa.MOVI || p.Instrs[0].Rd != 1 || p.Instrs[0].Imm != 42 {
		t.Fatalf("movi decoded wrong: %+v", p.Instrs[0])
	}
	if p.Instrs[3].Imm != -5 {
		t.Fatalf("negative immediate: %+v", p.Instrs[3])
	}
	if p.Instrs[4].Op != isa.HALT {
		t.Fatal("halt missing")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
	start:
		movi r1, 0
	loop:
		addi r1, r1, 1
		movi r2, 10
		blt  r1, r2, loop
		jmp  done
		nop
	done:
		halt
	`)
	loop, err := p.Label("loop")
	if err != nil {
		t.Fatal(err)
	}
	if loop != p.TextBase+1*isa.InstrBytes {
		t.Fatalf("loop at %#x, want %#x", loop, p.TextBase+8)
	}
	// blt's target must resolve to loop's address.
	if got := uint64(p.Instrs[3].Imm); got != loop {
		t.Fatalf("blt target %#x, want %#x", got, loop)
	}
	done, _ := p.Label("done")
	if got := uint64(p.Instrs[4].Imm); got != done {
		t.Fatalf("jmp target %#x, want %#x", got, done)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAsm(t, `
		ld r1, [r2]
		ld r3, [r4+16]
		ld r5, [r6-8]
		st [r7+24], r8
		clflush [r9]
	`)
	if i := p.Instrs[0]; i.Rs != 2 || i.Imm != 0 {
		t.Fatalf("ld [r2]: %+v", i)
	}
	if i := p.Instrs[1]; i.Rs != 4 || i.Imm != 16 {
		t.Fatalf("ld [r4+16]: %+v", i)
	}
	if i := p.Instrs[2]; i.Rs != 6 || i.Imm != -8 {
		t.Fatalf("ld [r6-8]: %+v", i)
	}
	if i := p.Instrs[3]; i.Op != isa.ST || i.Rs != 7 || i.Imm != 24 || i.Rt != 8 {
		t.Fatalf("st: %+v", i)
	}
	if i := p.Instrs[4]; i.Op != isa.CLFLUSH || i.Rs != 9 {
		t.Fatalf("clflush: %+v", i)
	}
}

func TestDataSectionsAndLabelImmediates(t *testing.T) {
	p := mustAsm(t, `
	.data
	counter: .quad 7
	buf:     .space 64
	.shared
	table:   .quad 1, 2, 3
	.text
		movi r1, counter
		movi r2, table
		movi r3, table+16
		ld   r4, [r1]
	`)
	counter, _ := p.Label("counter")
	if counter != p.DataBase {
		t.Fatalf("counter at %#x, want data base %#x", counter, p.DataBase)
	}
	if len(p.Data) != 8+64 {
		t.Fatalf("data segment %d bytes, want 72", len(p.Data))
	}
	if p.Data[0] != 7 {
		t.Fatal(".quad 7 not encoded")
	}
	table, _ := p.Label("table")
	if table != p.SharedBase {
		t.Fatalf("table at %#x, want shared base %#x", table, p.SharedBase)
	}
	if len(p.Shared) != 24 {
		t.Fatalf("shared segment %d bytes, want 24", len(p.Shared))
	}
	if uint64(p.Instrs[0].Imm) != counter {
		t.Fatal("movi counter address wrong")
	}
	if uint64(p.Instrs[2].Imm) != table+16 {
		t.Fatal("label+offset expression wrong")
	}
}

func TestQuadLabelFixup(t *testing.T) {
	p := mustAsm(t, `
	.data
	ptr: .quad target
	.text
	target: halt
	`)
	target, _ := p.Label("target")
	var got uint64
	for i := 0; i < 8; i++ {
		got |= uint64(p.Data[i]) << (8 * i)
	}
	if got != target {
		t.Fatalf("data fixup = %#x, want %#x", got, target)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAsm(t, `
	; full line comment
	# hash comment
		movi r1, 1 ; trailing
		halt       # trailing hash
	`)
	if len(p.Instrs) != 2 {
		t.Fatalf("got %d instrs, want 2", len(p.Instrs))
	}
}

func TestSPAlias(t *testing.T) {
	p := mustAsm(t, `
		movi sp, 0x1000
		push r1
		pop  r2
	`)
	if p.Instrs[0].Rd != isa.RSP {
		t.Fatal("sp alias must map to r15")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"movi r77, 1", "bad register"},
		{"movi r1", "takes 2 operands"},
		{".data\nmovi r1, 1", "only allowed in .text"},
		{"ld r1, r2", "bad memory operand"},
		{"jmp nowhere", "undefined symbol"},
		{"x: halt\nx: halt", "duplicate label"},
		{".quad 1", "not allowed in .text"},
		{".bogus", "unknown directive"},
		{"9lbl: halt", "invalid label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line 3 in error, got %v", err)
	}
}

func TestAllOpcodesAssemble(t *testing.T) {
	src := `
	lbl:
		nop
		movi r1, 5
		mov r2, r1
		add r3, r1, r2
		addi r3, r3, 1
		sub r4, r3, r1
		mul r5, r4, r2
		div r6, r5, r2
		mod r7, r5, r2
		and r8, r7, r1
		or  r9, r8, r1
		xor r10, r9, r1
		not r11, r10
		shl r12, r1, r2
		shli r12, r1, 3
		shr r13, r12, r2
		shri r13, r12, 3
		ld r1, [r2+8]
		st [r2+8], r1
		clflush [r2]
		rdtsc r14
		fence
		jmp lbl
		beq r1, r2, lbl
		bne r1, r2, lbl
		blt r1, r2, lbl
		bge r1, r2, lbl
		call lbl
		ret
		push r1
		pop r2
		sys 1
		halt
	`
	p := mustAsm(t, src)
	if len(p.Instrs) != 33 {
		t.Fatalf("got %d instrs, want 33", len(p.Instrs))
	}
}

func TestInstrStringRoundTripish(t *testing.T) {
	// String() must produce something containing the mnemonic for each op.
	p := mustAsm(t, "movi r1, 3\nld r2, [r1+8]\nst [r1], r2\nhalt")
	for _, in := range p.Instrs {
		s := in.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("bad String for %+v: %q", in, s)
		}
	}
}

func TestByteAsciiAlignDirectives(t *testing.T) {
	p := mustAsm(t, `
	.data
	bytes: .byte 1, 2, 255
	       .align 8
	msg:   .ascii "hi;#\n\0"
	.text
		halt
	`)
	if p.Data[0] != 1 || p.Data[1] != 2 || p.Data[2] != 255 {
		t.Fatalf(".byte encoding wrong: %v", p.Data[:3])
	}
	msg, _ := p.Label("msg")
	off := msg - p.DataBase
	if off%8 != 0 {
		t.Fatalf(".align failed: msg at offset %d", off)
	}
	want := []byte{'h', 'i', ';', '#', '\n', 0}
	got := p.Data[off : off+uint64(len(want))]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf(".ascii byte %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{".data\n.byte 300", "bad byte value"},
		{".data\n.align 3", "power of two"},
		{".data\n.ascii nope", "bad string literal"},
		{".data\n.ascii \"bad\\q\"", "unknown escape"},
		{".byte 1", "not allowed in .text"},
		{".ascii \"x\"", "not allowed in .text"},
		{".align 4", "not allowed in .text"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: err %v, want containing %q", c.src, err, c.want)
		}
	}
}
