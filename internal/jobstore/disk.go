package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record the coordinator saw
	// succeed survives power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache. Survives process
	// SIGKILL (the write(2) completed) but not power loss; appropriate for
	// CI smoke tests and throwaway sweeps.
	SyncNone
)

// DiskOptions configures Open.
type DiskOptions struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 4 MiB). Compaction drops whole dead segments cheaply.
	SegmentBytes int64
}

const defaultSegmentBytes = 4 << 20

// Disk is the production Store: an append-only log sharded into segment
// files wal-000000.log, wal-000001.log, … inside one directory. Only the
// highest-numbered segment is ever written; earlier segments are immutable,
// which makes compaction a rewrite-and-rename with no locking against
// readers of old data.
//
// A torn frame at the tail of the *final* segment (the footprint of a crash
// mid-append) is truncated away on Open. A torn or corrupt frame anywhere
// else is reported as an error: it means lost history, not a clean crash.
type Disk struct {
	dir  string
	opts DiskOptions

	mu      sync.Mutex
	active  *os.File
	actSize int64
	actSeq  int
	closed  bool
	stats   Stats
}

// Open opens (creating if necessary) the log directory and recovers the
// active segment, truncating a torn tail if the last writer crashed
// mid-append.
func Open(dir string, opts DiskOptions) (*Disk, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: create dir: %w", err)
	}
	d := &Disk{dir: dir, opts: opts}
	segs, err := d.segments()
	if err != nil {
		return nil, err
	}
	// Scan every segment to count live records and repair the tail.
	for i, seg := range segs {
		final := i == len(segs)-1
		n, valid, err := scanSegment(seg, final)
		if err != nil {
			return nil, err
		}
		fi, statErr := os.Stat(seg)
		if statErr != nil {
			return nil, statErr
		}
		if final && valid < fi.Size() {
			if err := os.Truncate(seg, valid); err != nil {
				return nil, fmt.Errorf("jobstore: truncate torn tail of %s: %w", seg, err)
			}
		}
		d.stats.Records += uint64(n)
		d.stats.Bytes += uint64(valid)
	}
	d.stats.Segments = uint64(len(segs))
	if len(segs) == 0 {
		d.actSeq = 0
		d.stats.Segments = 1
	} else {
		d.actSeq = seqOf(segs[len(segs)-1])
	}
	f, err := os.OpenFile(d.segPath(d.actSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d.active, d.actSize = f, fi.Size()
	return d, nil
}

func (d *Disk) segPath(seq int) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal-%06d.log", seq))
}

// segments lists segment files in sequence order.
func (d *Disk) segments() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, filepath.Join(d.dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func seqOf(path string) int {
	var seq int
	fmt.Sscanf(filepath.Base(path), "wal-%06d.log", &seq)
	return seq
}

// scanSegment walks a segment's frames. Returns the record count and the
// byte offset of the last valid frame end. In the final segment a truncated
// tail stops the scan cleanly; anywhere else (or any CRC failure) it is an
// error.
func scanSegment(path string, final bool) (records int, validBytes int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(buf) {
		body, n, err := ReadFrame(buf[off:])
		if err != nil {
			if IsTruncated(err) && final {
				return records, int64(off), nil
			}
			return 0, 0, fmt.Errorf("jobstore: segment %s offset %d: %w", path, off, err)
		}
		if _, err := Decode(body); err != nil {
			return 0, 0, fmt.Errorf("jobstore: segment %s offset %d: %w", path, off, err)
		}
		records++
		off += n
	}
	return records, int64(off), nil
}

func (d *Disk) Append(r Record) error {
	body, err := r.Encode()
	if err != nil {
		return err
	}
	frame := AppendFrame(nil, body)

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		d.stats.AppendErrors++
		return ErrClosed
	}
	if d.actSize >= d.opts.SegmentBytes {
		if err := d.rollLocked(); err != nil {
			d.stats.AppendErrors++
			return err
		}
	}
	if _, err := d.active.Write(frame); err != nil {
		d.stats.AppendErrors++
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if d.opts.Sync == SyncAlways {
		if err := d.active.Sync(); err != nil {
			d.stats.AppendErrors++
			return fmt.Errorf("jobstore: fsync: %w", err)
		}
	}
	d.actSize += int64(len(frame))
	d.stats.Records++
	d.stats.Bytes += uint64(len(frame))
	return nil
}

// rollLocked closes the active segment and starts the next one. Caller
// holds d.mu.
func (d *Disk) rollLocked() error {
	if err := d.active.Sync(); err != nil {
		return err
	}
	if err := d.active.Close(); err != nil {
		return err
	}
	d.actSeq++
	f, err := os.OpenFile(d.segPath(d.actSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	d.active, d.actSize = f, 0
	d.stats.Segments++
	return nil
}

func (d *Disk) Replay(fn func(r Record) error) error {
	d.mu.Lock()
	segs, err := d.segments()
	d.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		final := i == len(segs)-1
		buf, err := os.ReadFile(seg)
		if err != nil {
			return err
		}
		off := 0
		for off < len(buf) {
			body, n, err := ReadFrame(buf[off:])
			if err != nil {
				if IsTruncated(err) && final {
					break // torn tail already repaired on next Open
				}
				return fmt.Errorf("jobstore: segment %s offset %d: %w", seg, off, err)
			}
			rec, err := Decode(body)
			if err != nil {
				return fmt.Errorf("jobstore: segment %s offset %d: %w", seg, off, err)
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Compact rewrites the log keeping only records keep approves. The surviving
// records are written to a fresh segment sequence; old segments are removed
// only after the rewrite is durable, so a crash mid-compaction leaves either
// the old log or the new one, never neither. Appends are blocked for the
// duration (compaction is rare and the log is small after dropping dead
// jobs).
func (d *Disk) Compact(keep func(r Record) bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.active.Sync(); err != nil {
		return err
	}

	segs, err := d.segments()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "compact-*.tmp")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after the rename below

	var kept uint64
	var keptBytes int64
	for i, seg := range segs {
		buf, err := os.ReadFile(seg)
		if err != nil {
			tmp.Close()
			return err
		}
		off := 0
		for off < len(buf) {
			body, n, err := ReadFrame(buf[off:])
			if err != nil {
				if IsTruncated(err) && i == len(segs)-1 {
					break
				}
				tmp.Close()
				return fmt.Errorf("jobstore: compact: segment %s offset %d: %w", seg, off, err)
			}
			rec, err := Decode(body)
			if err != nil {
				tmp.Close()
				return fmt.Errorf("jobstore: compact: segment %s offset %d: %w", seg, off, err)
			}
			if keep(rec) {
				if _, err := tmp.Write(buf[off : off+n]); err != nil {
					tmp.Close()
					return err
				}
				kept++
				keptBytes += int64(n)
			}
			off += n
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	// Swap: rename the compacted log over segment 0, delete the rest, and
	// restart the sequence. rename(2) is atomic within the directory.
	d.active.Close()
	if err := os.Rename(tmpPath, d.segPath(0)); err != nil {
		return err
	}
	for _, seg := range segs {
		if seqOf(seg) != 0 {
			os.Remove(seg)
		}
	}
	d.actSeq = 0
	f, err := os.OpenFile(d.segPath(0), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	d.active, d.actSize = f, keptBytes
	d.stats.Records = kept
	d.stats.Bytes = uint64(keptBytes)
	d.stats.Segments = 1
	d.stats.Compactions++
	return nil
}

func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.active.Sync(); err != nil {
		d.active.Close()
		return err
	}
	return d.active.Close()
}
