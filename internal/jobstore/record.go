// Package jobstore is the job service's write-ahead, replayable persistence
// layer: an append-only log of versioned records describing everything that
// happened to every job — acceptance, state transitions, SSE events, per-leg
// results, and the terminal result. A coordinator that replays the log in
// order reconstructs its full pre-crash state: queued jobs re-queue,
// interrupted jobs resume at the first unfinished leg, and finished jobs
// (results, resource accounts, and byte-exact SSE histories) come back
// read-only.
//
// Records are opaque to this package beyond their envelope (version, kind,
// job id): the payload is whatever the coordinator serialized, so the store
// never chases the service's schema. On disk each record is CRC-framed
// inside size-bounded segments (disk.go); the in-memory Mem store backs
// sleep-free crash tests (store.go).
package jobstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// RecordVersion tags every encoded record. Bump it when the envelope or any
// payload schema changes incompatibly; Decode rejects versions from the
// future so an old binary never misreads a new log.
const RecordVersion = 1

// Kind discriminates the record types the coordinator appends.
type Kind uint8

const (
	// KindAccepted: a job passed admission. Payload: the spec and admission
	// metadata. Always the job's first record.
	KindAccepted Kind = 1
	// KindState: a lifecycle transition (queued → running → terminal).
	KindState Kind = 2
	// KindEvent: one SSE frame, stored verbatim so GET /v1/jobs/{id}/events
	// replays byte-identically after a restart.
	KindEvent Kind = 3
	// KindLeg: one completed leg's rendered slice and resource delta. An
	// interrupted job resumes at its first leg with no KindLeg record.
	KindLeg Kind = 4
	// KindResult: the terminal record — final state, merged table, resource
	// account. A job with a KindResult replays read-only.
	KindResult Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindAccepted:
		return "accepted"
	case KindState:
		return "state"
	case KindEvent:
		return "event"
	case KindLeg:
		return "leg"
	case KindResult:
		return "result"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one log entry: the envelope the store understands plus an opaque
// payload owned by the writer.
type Record struct {
	// Version is RecordVersion for records this build writes; Decode carries
	// the on-log version through so a reader can branch on old schemas.
	Version uint8
	// Kind discriminates the payload schema.
	Kind Kind
	// JobID scopes the record to one job ("job-000042").
	JobID string
	// Payload is the writer-owned body (the service uses JSON).
	Payload []byte
}

// Record payload layout (everything inside the CRC frame):
//
//	[version u8][kind u8][idlen u16 BE][job id bytes][payload bytes]
//
// The frame around it (framing helpers in disk.go, shared by the fuzzer):
//
//	[len u32 BE][crc32(body) u32 BE][body]
const recordHeaderLen = 1 + 1 + 2

// maxIDLen bounds the job id so a corrupt length field cannot demand a
// multi-gigabyte allocation before the CRC is even checked.
const maxIDLen = 1 << 10

// Encode serializes the record body (unframed). Returns an error rather
// than panicking on impossible field values so fuzzed round-trips stay
// total.
func (r Record) Encode() ([]byte, error) {
	if r.Version == 0 {
		r.Version = RecordVersion
	}
	if r.Kind < KindAccepted || r.Kind > KindResult {
		return nil, fmt.Errorf("jobstore: unknown record kind %d", uint8(r.Kind))
	}
	if len(r.JobID) > maxIDLen {
		return nil, fmt.Errorf("jobstore: job id length %d exceeds %d", len(r.JobID), maxIDLen)
	}
	buf := make([]byte, 0, recordHeaderLen+len(r.JobID)+len(r.Payload))
	buf = append(buf, r.Version, byte(r.Kind))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.JobID)))
	buf = append(buf, r.JobID...)
	buf = append(buf, r.Payload...)
	return buf, nil
}

// Decode parses an unframed record body. It never panics: every length is
// bounds-checked before use, and unknown versions/kinds are errors, not
// crashes.
func Decode(body []byte) (Record, error) {
	if len(body) < recordHeaderLen {
		return Record{}, fmt.Errorf("jobstore: record body %d bytes, want >= %d", len(body), recordHeaderLen)
	}
	r := Record{Version: body[0], Kind: Kind(body[1])}
	if r.Version == 0 || r.Version > RecordVersion {
		return Record{}, fmt.Errorf("jobstore: unsupported record version %d (this build writes %d)", r.Version, RecordVersion)
	}
	if r.Kind < KindAccepted || r.Kind > KindResult {
		return Record{}, fmt.Errorf("jobstore: unknown record kind %d", body[1])
	}
	idLen := int(binary.BigEndian.Uint16(body[2:4]))
	if idLen > maxIDLen {
		return Record{}, fmt.Errorf("jobstore: job id length %d exceeds %d", idLen, maxIDLen)
	}
	if recordHeaderLen+idLen > len(body) {
		return Record{}, fmt.Errorf("jobstore: job id length %d overruns %d-byte body", idLen, len(body))
	}
	r.JobID = string(body[recordHeaderLen : recordHeaderLen+idLen])
	if rest := body[recordHeaderLen+idLen:]; len(rest) > 0 {
		r.Payload = append([]byte(nil), rest...)
	}
	return r, nil
}

// frameLen is the per-record framing overhead: u32 body length + u32 CRC.
const frameLen = 8

// maxRecordLen bounds one framed record. Large enough for any rendered
// result table, small enough that a corrupt length field fails fast.
const maxRecordLen = 16 << 20

// crcTable is Castagnoli — hardware-accelerated on both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the CRC frame for body to dst.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// ReadFrame parses one frame from the head of buf, returning the body and
// the number of bytes consumed.
//
//   - A short buffer (header or body cut off) returns errTruncated — the
//     torn-tail case a crashed writer leaves, which replay tolerates on the
//     final segment only.
//   - A CRC or length-field mismatch returns a hard corruption error.
func ReadFrame(buf []byte) (body []byte, n int, err error) {
	if len(buf) < frameLen {
		return nil, 0, errTruncated
	}
	bl := binary.BigEndian.Uint32(buf)
	if bl > maxRecordLen {
		return nil, 0, fmt.Errorf("jobstore: framed record claims %d bytes (max %d): %w", bl, maxRecordLen, errCorrupt)
	}
	if len(buf) < frameLen+int(bl) {
		return nil, 0, errTruncated
	}
	body = buf[frameLen : frameLen+int(bl)]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(buf[4:]); got != want {
		return nil, 0, fmt.Errorf("jobstore: frame CRC %08x != stored %08x: %w", got, want, errCorrupt)
	}
	return body, frameLen + int(bl), nil
}
