package jobstore

import (
	"errors"
	"sync"
)

var (
	// errTruncated marks a frame cut off mid-write — what a crash leaves at
	// the tail of the active segment. Tolerated there, fatal elsewhere.
	errTruncated = errors.New("jobstore: truncated frame")
	// errCorrupt marks a CRC or length-field mismatch: real damage, never
	// tolerated.
	errCorrupt = errors.New("jobstore: corrupt frame")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("jobstore: store closed")
)

// IsTruncated reports whether err is the tolerable torn-tail condition (as
// opposed to hard corruption).
func IsTruncated(err error) bool { return errors.Is(err, errTruncated) }

// Stats counts what the store has absorbed. Gauges for the current shape,
// counters for lifetime totals; the server mirrors them into the
// timecache_jobstore_* metric families.
type Stats struct {
	Records      uint64 // live records (post-compaction)
	Bytes        uint64 // live log bytes, framing included
	Segments     uint64 // on-disk segment files (1 for Mem)
	Compactions  uint64 // completed Compact calls
	AppendErrors uint64 // appends that failed (I/O error or frozen store)
}

// Store is the write-ahead log the coordinator journals through.
//
// Append must be safe for concurrent use and durable per the store's sync
// policy when it returns. Replay streams every live record in append order
// and is only called before the coordinator starts executing (single
// goroutine, no concurrent Appends). Compact rewrites the log keeping only
// records the caller's keep func approves; it may run concurrently with
// Appends.
type Store interface {
	Append(r Record) error
	Replay(fn func(r Record) error) error
	Compact(keep func(r Record) bool) error
	Stats() Stats
	Close() error
}

// Mem is an in-memory Store for tests. Freeze makes every subsequent Append
// vanish without error — the coordinator believes it journaled, the log
// doesn't have it — which is exactly the window a SIGKILL opens between
// "decided" and "durable". Crash tests freeze the store, hard-stop the
// server, then hand the same Mem to a fresh server to replay.
type Mem struct {
	mu     sync.Mutex
	recs   []Record
	frozen bool
	closed bool
	stats  Stats
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Freeze drops all future appends on the floor, simulating a crash at this
// instant: everything already appended replays, nothing after does.
func (m *Mem) Freeze() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frozen = true
}

func (m *Mem) Append(r Record) error {
	// Round-trip through the codec so Mem exercises the same encode path
	// (and the same field bounds) as the disk store.
	body, err := r.Encode()
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.stats.AppendErrors++
		return ErrClosed
	}
	if m.frozen {
		return nil
	}
	dec, err := Decode(body)
	if err != nil {
		m.stats.AppendErrors++
		return err
	}
	m.recs = append(m.recs, dec)
	m.stats.Records++
	m.stats.Bytes += uint64(frameLen + len(body))
	return nil
}

func (m *Mem) Replay(fn func(r Record) error) error {
	m.mu.Lock()
	recs := make([]Record, len(m.recs))
	copy(recs, m.recs)
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func (m *Mem) Compact(keep func(r Record) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	kept := m.recs[:0]
	var bytes uint64
	for _, r := range m.recs {
		if keep(r) {
			kept = append(kept, r)
			body, _ := r.Encode()
			bytes += uint64(frameLen + len(body))
		}
	}
	m.recs = kept
	m.stats.Records = uint64(len(kept))
	m.stats.Bytes = bytes
	m.stats.Compactions++
	return nil
}

func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Segments = 1
	return s
}

func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
