package jobstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func rec(kind Kind, id, payload string) Record {
	return Record{Kind: kind, JobID: id, Payload: []byte(payload)}
}

// collect replays the store into a slice.
func collect(t *testing.T, s Store) []Record {
	t.Helper()
	var out []Record
	if err := s.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range []Record{
		rec(KindAccepted, "job-000001", `{"experiment":"table2"}`),
		rec(KindState, "job-000001", `{"state":"running"}`),
		rec(KindEvent, "job-000001", ""),
		rec(KindLeg, "j", strings.Repeat("x", 10_000)),
		rec(KindResult, "", `{}`),
	} {
		body, err := r.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", r.Kind, err)
		}
		got, err := Decode(body)
		if err != nil {
			t.Fatalf("decode %v: %v", r.Kind, err)
		}
		want := r
		want.Version = RecordVersion
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %v: got %+v want %+v", r.Kind, got, want)
		}
	}
}

func TestRecordRejects(t *testing.T) {
	if _, err := (Record{JobID: "x"}).Encode(); err == nil {
		t.Error("encode with no kind succeeded")
	}
	if _, err := (Record{Kind: KindState, JobID: strings.Repeat("a", maxIDLen+1)}).Encode(); err == nil {
		t.Error("encode with oversized id succeeded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("decode of empty body succeeded")
	}
	if _, err := Decode([]byte{99, byte(KindState), 0, 0}); err == nil {
		t.Error("decode of future version succeeded")
	}
	if _, err := Decode([]byte{RecordVersion, 77, 0, 0}); err == nil {
		t.Error("decode of unknown kind succeeded")
	}
	// id length field overrunning the body must error, not slice out of range.
	if _, err := Decode([]byte{RecordVersion, byte(KindState), 0xff, 0xff}); err == nil {
		t.Error("decode with overrunning id length succeeded")
	}
}

func TestFrameCRC(t *testing.T) {
	body, _ := rec(KindState, "job-1", "payload").Encode()
	framed := AppendFrame(nil, body)

	got, n, err := ReadFrame(framed)
	if err != nil || n != len(framed) {
		t.Fatalf("ReadFrame: n=%d err=%v", n, err)
	}
	if string(got) != string(body) {
		t.Fatal("frame body mismatch")
	}
	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), framed...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := ReadFrame(bad); err == nil || IsTruncated(err) {
		t.Errorf("corrupt frame: got %v, want hard corruption error", err)
	}
	// Every strict prefix is truncated, never corrupt, never a panic.
	for cut := 0; cut < len(framed); cut++ {
		if _, _, err := ReadFrame(framed[:cut]); !IsTruncated(err) {
			t.Fatalf("prefix %d: got %v, want truncated", cut, err)
		}
	}
	// Absurd length field is corruption, not an allocation attempt.
	huge := binary.BigEndian.AppendUint32(nil, maxRecordLen+1)
	huge = append(huge, 0, 0, 0, 0)
	if _, _, err := ReadFrame(huge); err == nil || IsTruncated(err) {
		t.Errorf("oversized frame: got %v, want hard corruption error", err)
	}
}

func TestMemFreeze(t *testing.T) {
	m := NewMem()
	for i := 0; i < 3; i++ {
		if err := m.Append(rec(KindState, fmt.Sprintf("job-%d", i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	m.Freeze()
	if err := m.Append(rec(KindState, "job-lost", "b")); err != nil {
		t.Fatalf("append after freeze errored: %v", err)
	}
	got := collect(t, m)
	if len(got) != 3 {
		t.Fatalf("replay after freeze: %d records, want 3", len(got))
	}
	for _, r := range got {
		if r.JobID == "job-lost" {
			t.Fatal("frozen append survived")
		}
	}
}

func TestMemCompact(t *testing.T) {
	m := NewMem()
	for i := 0; i < 10; i++ {
		kind := KindEvent
		if i%2 == 0 {
			kind = KindLeg
		}
		if err := m.Append(rec(kind, "job-1", "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(func(r Record) bool { return r.Kind == KindEvent }); err != nil {
		t.Fatal(err)
	}
	got := collect(t, m)
	if len(got) != 5 {
		t.Fatalf("compacted to %d records, want 5", len(got))
	}
	st := m.Stats()
	if st.Records != 5 || st.Compactions != 1 {
		t.Errorf("stats after compact: %+v", st)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := rec(KindEvent, fmt.Sprintf("job-%06d", i%7), fmt.Sprintf(`{"seq":%d}`, i))
		r.Version = RecordVersion
		want = append(want, r)
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := collect(t, d2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch: %d records vs %d", len(got), len(want))
	}
	st := d2.Stats()
	if st.Records != 100 {
		t.Errorf("Records = %d, want 100", st.Records)
	}
}

func TestDiskSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Append(rec(KindEvent, "job-1", strings.Repeat("p", 64))); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2 after rolling", st.Segments)
	}
	d.Close()

	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := len(collect(t, d2)); got != 50 {
		t.Fatalf("replay across segments: %d records, want 50", got)
	}
}

func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Append(rec(KindState, "job-1", "complete")); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	// Chop mid-frame: the last record loses its final byte.
	seg := filepath.Join(dir, "wal-000000.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := len(collect(t, d2)); got != 4 {
		t.Fatalf("replay after torn tail: %d records, want 4", got)
	}
	// The tail was repaired, so appends continue cleanly.
	if err := d2.Append(rec(KindState, "job-2", "after-crash")); err != nil {
		t.Fatal(err)
	}
	d2.Close()
	d3, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := len(collect(t, d3)); got != 5 {
		t.Fatalf("replay after repair+append: %d records, want 5", got)
	}
}

func TestDiskCorruptMiddleRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Append(rec(KindState, "job-1", "complete")); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	// Flip a byte in the middle of the segment: hard corruption, Open fails.
	seg := filepath.Join(dir, "wal-000000.log")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DiskOptions{}); err == nil {
		t.Fatal("open of mid-corrupt log succeeded")
	}
}

func TestDiskCompact(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id := "job-dead"
		if i%4 == 0 {
			id = "job-live"
		}
		if err := d.Append(rec(KindEvent, id, strings.Repeat("e", 48))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(func(r Record) bool { return r.JobID == "job-live" }); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Records != 10 || st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}
	// Appends keep working post-compaction and everything survives reopen.
	if err := d.Append(rec(KindState, "job-live", "done")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := collect(t, d2)
	if len(got) != 11 {
		t.Fatalf("replay after compact: %d records, want 11", len(got))
	}
	for _, r := range got {
		if r.JobID != "job-live" {
			t.Fatalf("dead record survived compaction: %+v", r)
		}
	}
}

func TestDiskAppendAfterClose(t *testing.T) {
	d, err := Open(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := d.Append(rec(KindState, "job-1", "x")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if d.Stats().AppendErrors != 1 {
		t.Errorf("AppendErrors = %d, want 1", d.Stats().AppendErrors)
	}
}
