package jobstore

import (
	"bytes"
	"testing"
)

// FuzzWALRecord fuzzes both layers of the on-log format from both sides:
//
//   - Structured inputs (kind, id, payload) must round-trip through
//     Encode → AppendFrame → ReadFrame → Decode bit-exactly.
//   - The same frame with any single byte flipped must be rejected by the
//     CRC, and any strict prefix must read as a clean truncation.
//   - Arbitrary bytes fed straight into ReadFrame/Decode must never panic
//     or round-trip to different bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add(uint8(KindAccepted), "job-000001", []byte(`{"experiment":"table2"}`))
	f.Add(uint8(KindState), "job-000042", []byte(`{"state":"running"}`))
	f.Add(uint8(KindEvent), "", []byte{})
	f.Add(uint8(KindResult), "j", bytes.Repeat([]byte{0xa5}, 300))
	f.Add(uint8(0), "raw", []byte{0, 1, 2, 0xff, 0xfe})

	f.Fuzz(func(t *testing.T, kind uint8, id string, payload []byte) {
		r := Record{Kind: Kind(kind), JobID: id, Payload: payload}
		body, err := r.Encode()
		if err == nil {
			framed := AppendFrame(nil, body)

			got, n, err := ReadFrame(framed)
			if err != nil {
				t.Fatalf("ReadFrame of fresh frame: %v", err)
			}
			if n != len(framed) || !bytes.Equal(got, body) {
				t.Fatalf("frame round trip: n=%d len=%d", n, len(framed))
			}
			dec, err := Decode(got)
			if err != nil {
				t.Fatalf("Decode of fresh record: %v", err)
			}
			if dec.Kind != r.Kind || dec.JobID != r.JobID || !bytes.Equal(dec.Payload, r.Payload) {
				t.Fatalf("record round trip: got %+v want %+v", dec, r)
			}

			// Any strict prefix is a truncation, detected, no panic.
			for _, cut := range []int{0, 1, len(framed) / 2, len(framed) - 1} {
				if cut >= len(framed) {
					continue
				}
				if _, _, err := ReadFrame(framed[:cut]); !IsTruncated(err) {
					t.Fatalf("prefix %d/%d: got %v, want truncated", cut, len(framed), err)
				}
			}

			// Any single-byte corruption is caught: in the body by the CRC,
			// in the header by the CRC or length/bounds checks.
			if len(framed) > 0 {
				i := int(kind) % len(framed)
				mut := append([]byte(nil), framed...)
				mut[i] ^= 0x40
				if mb, _, err := ReadFrame(mut); err == nil {
					// The flip landed in the length field and happened to
					// still frame a valid CRC region — impossible, since the
					// CRC covers the body the length selects. Defensive:
					if bytes.Equal(mb, body) {
						t.Fatal("corrupted frame read back original body")
					}
					if _, err := Decode(mb); err == nil {
						t.Fatal("corrupted frame decoded cleanly")
					}
				}
			}
		}

		// Adversarial side: raw bytes through the readers must not panic,
		// and anything that does parse must re-encode to the same body.
		if body2, n, err := ReadFrame(payload); err == nil {
			if n > len(payload) {
				t.Fatalf("ReadFrame consumed %d of %d bytes", n, len(payload))
			}
			if dec, err := Decode(body2); err == nil {
				re, err := dec.Encode()
				if err != nil {
					t.Fatalf("re-encode of decoded record: %v", err)
				}
				if !bytes.Equal(re, body2) {
					t.Fatalf("decode/encode not identity:\n in %x\nout %x", body2, re)
				}
			}
		}
		_, _ = Decode(payload)
	})
}
