package machine

import (
	"fmt"
	"sync"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/telemetry"
	"timecache/internal/workload"
)

// TestHierarchyConfigMapping pins the canonical Config → HierarchyConfig
// derivation: the zero Config keeps every paper default, and each Config
// field lands in exactly the HierarchyConfig field the old per-caller
// derivations (timecache.go, internal/harness) used to set. HierarchyConfig
// is comparable, so the zero-config case is a single == against
// cache.DefaultHierarchyConfig.
func TestHierarchyConfigMapping(t *testing.T) {
	if got, want := (Config{}).HierarchyConfig(), cache.DefaultHierarchyConfig(); got != want {
		t.Fatalf("zero Config must map to the paper defaults:\n got %+v\nwant %+v", got, want)
	}

	full := Config{
		Mode:              cache.SecTimeCache,
		Cores:             4,
		ThreadsPerCore:    2,
		L1Size:            16 << 10,
		LLCSize:           1 << 20,
		TimestampBits:     16,
		GateLevel:         true,
		MaxSharers:        3,
		ConstantTimeFlush: true,
		Partitioned:       true,
		RandomizedIndex:   0xABCD,
		CoherenceCheck:    true,
		NextLinePrefetch:  true,
		DisableDirectory:  true,
		Policy:            "random",
		PolicySeed:        99,
	}
	want := cache.DefaultHierarchyConfig()
	want.Mode = cache.SecTimeCache
	want.Cores = 4
	want.ThreadsPerCore = 2
	want.L1Size = 16 << 10
	want.LLCSize = 1 << 20
	want.Sec.TimestampBits = 16
	want.Sec.GateLevel = true
	want.Sec.MaxSharers = 3
	want.ConstantTimeFlush = true
	want.Partitioned = true
	want.IndexRand = 0xABCD
	want.CoherenceCheck = true
	want.NextLinePrefetch = true
	want.DisableDirectory = true
	want.Policy = "random"
	want.PolicySeed = 99
	if got := full.HierarchyConfig(); got != want {
		t.Fatalf("full Config mapping:\n got %+v\nwant %+v", got, want)
	}
}

// TestKernelConfigMapping pins the Config → kernel.Config derivation.
func TestKernelConfigMapping(t *testing.T) {
	if got, want := (Config{}).KernelConfig(), kernel.DefaultConfig(); got != want {
		t.Fatalf("zero Config must map to the kernel defaults:\n got %+v\nwant %+v", got, want)
	}
	want := kernel.DefaultConfig()
	want.SliceCycles = 12345
	want.FlushOnSwitch = true
	if got := (Config{SliceCycles: 12345, FlushOnSwitch: true}).KernelConfig(); got != want {
		t.Fatalf("kernel mapping:\n got %+v\nwant %+v", got, want)
	}
}

// runWorkloadPair runs two small SPEC workload models to completion on m
// and returns a fingerprint of everything externally observable: total
// cycles, kernel stats, and every cache's counter block. Two fingerprints
// are equal iff the runs were cycle- and counter-identical.
func runWorkloadPair(t testing.TB, m *Machine) string {
	t.Helper()
	k := m.Kernel()
	for i, name := range []string{"gobmk", "lbm"} {
		prof, err := workload.Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		as, err := workload.BuildSharedAS(k, prof)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Spawn(name, workload.NewProc(prof, 20_000, uint64(1001+i*1001)), as, 0); err != nil {
			t.Fatal(err)
		}
	}
	cycles := k.Run(1 << 62)
	fp := fmt.Sprintf("cycles=%d stats=%+v", cycles, k.Stats)
	for _, c := range m.Hierarchy().Caches() {
		fp += fmt.Sprintf(" %s=%+v", c.Name(), c.Stats)
	}
	return fp
}

// TestResetDeterminism is the core pooling contract: a machine that ran a
// workload and was Reset must replay the same workload with exactly the
// cycles and counters a fresh machine produces. The golden experiment tests
// enforce the same property end-to-end; this one localizes a violation to
// the machine layer.
func TestResetDeterminism(t *testing.T) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	fresh := runWorkloadPair(t, New(cfg))

	m := New(cfg)
	if got := runWorkloadPair(t, m); got != fresh {
		t.Fatalf("two fresh machines disagree:\n got %s\nwant %s", got, fresh)
	}
	m.Reset()
	if got := runWorkloadPair(t, m); got != fresh {
		t.Fatalf("reset machine diverged from fresh:\n got %s\nwant %s", got, fresh)
	}
}

// TestResetDetachesTelemetry: Reset must drop the observer so a pooled
// machine never reports into a previous run's collector.
func TestResetDetachesTelemetry(t *testing.T) {
	m := New(Config{PhysFrames: 8192})
	m.AttachTelemetry(telemetry.Config{})
	if m.Hierarchy().Observer() == nil {
		t.Fatal("AttachTelemetry did not install an observer")
	}
	m.Reset()
	if m.Hierarchy().Observer() != nil {
		t.Fatal("Reset left the telemetry observer attached")
	}
}

// TestPoolReuse pins the pool contract: Get after Put with the same config
// returns the same machine (reset), concurrent checkouts and different
// configs get distinct machines, nil pool → always fresh.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	a := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	b := Config{Mode: cache.SecOff, PhysFrames: 8192}

	m1 := p.Get(a)
	if m2 := p.Get(a); m2 == m1 {
		t.Fatal("pool handed out a checked-out machine twice")
	}
	p.Put(m1)
	if m2 := p.Get(a); m2 != m1 {
		t.Fatal("pool did not reuse the returned machine for an identical config")
	}
	if m3 := p.Get(b); m3 == m1 {
		t.Fatal("pool returned the same machine for a different config")
	}
	p.Put(m1)
	if p.Size() != 1 {
		t.Fatalf("pool holds %d idle machines, want 1", p.Size())
	}

	var nilPool *Pool
	n1, n2 := nilPool.Get(a), nilPool.Get(a)
	if n1 == nil || n2 == nil || n1 == n2 {
		t.Fatal("nil pool must build a fresh machine per Get")
	}
	nilPool.Put(n1) // must not panic
	if nilPool.Size() != 0 {
		t.Fatal("nil pool reports nonzero size")
	}
}

// TestPoolConcurrent hammers one shared pool from 8 goroutines under -race:
// every goroutine repeatedly checks machines out, runs a short workload on
// them, and puts them back. Each checked-out machine must behave exactly
// like a private fresh machine — the fingerprints prove no two goroutines
// ever shared simulator state, and the race detector proves the pool's own
// bookkeeping is synchronized.
func TestPoolConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pool := NewPool()
	cfgs := []Config{
		{Mode: cache.SecTimeCache, PhysFrames: 8192},
		{Mode: cache.SecOff, PhysFrames: 8192},
	}
	// Reference fingerprints from private fresh machines.
	want := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = runWorkloadPair(t, New(cfg))
	}

	const goroutines = 8
	const itersPer = 6
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < itersPer; i++ {
				ci := (g + i) % len(cfgs)
				m := pool.Get(cfgs[ci])
				got := runWorkloadPair(t, m)
				pool.Put(m)
				if got != want[ci] {
					errc <- fmt.Errorf("goroutine %d iter %d: pooled machine diverged:\n got %s\nwant %s", g, i, got, want[ci])
					return
				}
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	if pool.Size() > goroutines*len(cfgs) {
		t.Fatalf("pool grew unboundedly: %d idle machines", pool.Size())
	}
}

// BenchmarkMachineNew measures full machine assembly (the per-run cost the
// pool eliminates) for the paper's default TimeCache shape.
func BenchmarkMachineNew(b *testing.B) {
	cfg := Config{Mode: cache.SecTimeCache}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(cfg)
	}
}

// BenchmarkMachineReset measures returning an assembled machine to cold
// state. Compare against BenchmarkMachineNew: the difference is what every
// pooled sweep leg saves.
func BenchmarkMachineReset(b *testing.B) {
	m := New(Config{Mode: cache.SecTimeCache})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
	}
}

// BenchmarkSweepRebuild and BenchmarkSweepReuse run the same small workload
// leg per iteration; Rebuild assembles a fresh machine each time (the old
// sweep behavior), Reuse takes a Reset machine from a pool (the new
// behavior). The gap is the measured end-to-end pooling win.
func BenchmarkSweepRebuild(b *testing.B) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runWorkloadPair(b, New(cfg))
	}
}

func BenchmarkSweepReuse(b *testing.B) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	pool := NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := pool.Get(cfg)
		runWorkloadPair(b, m)
		pool.Put(m)
	}
}

// TestPoolStats checks the hit/miss accounting: a Get served from an empty
// pool (or a different config's shelf) counts a miss, a Get that reuses a
// returned machine counts a hit, and a nil pool reports zeros forever.
func TestPoolStats(t *testing.T) {
	p := NewPool()
	a := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	b := Config{Mode: cache.SecOff, PhysFrames: 8192}

	if s := p.Stats(); s != (PoolStats{IdleCap: DefaultIdleCap}) {
		t.Fatalf("fresh pool stats = %+v, want zero counters", s)
	}
	m1 := p.Get(a) // miss: pool empty
	p.Get(a)       // miss: m1 checked out
	if s := p.Stats(); s != (PoolStats{Misses: 2, IdleCap: DefaultIdleCap}) {
		t.Fatalf("after two cold Gets stats = %+v, want 2 misses", s)
	}
	p.Put(m1)
	if m := p.Get(a); m != m1 { // hit
		t.Fatal("pool did not reuse the returned machine")
	}
	p.Get(b) // miss: different config shelf is empty
	if s := p.Stats(); s != (PoolStats{Hits: 1, Misses: 3, IdleCap: DefaultIdleCap}) {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses", s)
	}

	var nilPool *Pool
	nilPool.Get(a)
	if s := nilPool.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v, want zeros", s)
	}
}
