//go:build race

package machine

// raceEnabled gates allocation-count assertions: testing.AllocsPerRun is
// unreliable under the race detector, which instruments allocations.
const raceEnabled = true
