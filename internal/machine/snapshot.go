// Machine snapshot/fork: capture the complete warm state of a machine and
// restore it into another machine of the same Config at near-Reset cost.
//
// A Snapshot holds a frozen deep copy of the source machine — its cache
// line arrays and s-bit columns, LLC sharer directory and replacement
// state, kernel process table, scheduler position, saved columns and
// clocks, and physical memory. The frozen machine is never run; it exists
// only to be copied out of. Physical memory is captured copy-on-write:
// Snapshot seals the live machine's frame buffers and the frozen copy
// aliases them, as does every fork — the first store to a shared frame
// copies just that 4 KB page (mem.Physical's write barrier), so forking is
// near-O(1) in memory instead of O(frames).
//
// Determinism contract: running a fork to completion produces exactly the
// cycles and counters the source machine would have produced had it simply
// kept running — and, because Reset-equals-fresh already holds, exactly
// what a cold machine running the whole workload produces. The harness's
// golden forced-on/off tests and -snapshot-check mode enforce this
// end-to-end.
package machine

import "fmt"

// Snapshot is an immutable capture of a machine's complete simulation
// state. Any number of machines may be forked from one snapshot, serially
// or concurrently; forks never write through to the snapshot.
type Snapshot struct {
	cfg Config
	m   *Machine // frozen deep copy; never run

	// Tag carries caller metadata alongside the snapshot (the harness
	// stores the warm-point measurement it subtracts after the fork runs).
	Tag any
}

// Config returns the configuration the snapshot was captured from; only
// machines of this exact Config can be fork targets.
func (s *Snapshot) Config() Config { return s.cfg }

// Snapshot captures m's current state. The machine must be stopped (not
// inside Run); it remains fully usable afterwards and may keep running —
// continuing is byte-identical to never having snapshotted, since the
// capture only reads simulation state and the sealed frame buffers
// copy-on-write transparently. Snapshot fails if any live process's Proc
// does not implement sim.Forker.
func (m *Machine) Snapshot() (*Snapshot, error) {
	frozen := New(m.cfg)
	if err := frozen.k.CopyFrom(m.k); err != nil {
		return nil, err
	}
	// Hierarchy.CopyFrom also deep-copies runtime defense state (clepsydra
	// deadlines, fase ownership): New installed a same-kind instance on the
	// frozen machine because the Config carries the defense kind, and
	// CopyFrom refuses (panics) on a kind mismatch rather than shelving a
	// machine with silently dropped defense state.
	frozen.hier.CopyFrom(m.hier)
	// Seal before aliasing: from here on, stores on the live machine copy
	// their frame first, so the frozen machine's view never changes.
	m.phys.Seal()
	frozen.phys.CopyFrom(m.phys)
	return &Snapshot{cfg: m.cfg, m: frozen}, nil
}

// copyFrom restores src's complete state into m (same Config required).
// It overwrites everything Reset touches, so restoring into a dirty pooled
// machine needs no prior Reset.
func (m *Machine) copyFrom(src *Machine) error {
	if err := m.k.CopyFrom(src.k); err != nil {
		return err
	}
	m.hier.CopyFrom(src.hier)
	m.phys.CopyFrom(src.phys)
	return nil
}

// ForkInto restores the snapshot into m, which must have the snapshot's
// Config. m may be dirty (no Reset needed — the restore is total) but must
// not be running. Concurrent ForkInto calls from one snapshot are safe.
func (s *Snapshot) ForkInto(m *Machine) error {
	if m.cfg != s.cfg {
		return fmt.Errorf("machine: fork into config %+v, snapshot has %+v", m.cfg, s.cfg)
	}
	return m.copyFrom(s.m)
}

// Fork builds a fresh machine positioned at the snapshot point.
func (s *Snapshot) Fork() *Machine {
	m := New(s.cfg)
	if err := s.ForkInto(m); err != nil {
		// Unreachable: the config matches by construction and the frozen
		// machine's procs are themselves forks, hence forkable.
		panic(err)
	}
	return m
}

// PutSnapshot shelves s under key for later Fork checkouts. The shelf is
// bounded: once full, the oldest key is dropped (FIFO) — snapshots are an
// optimization, never a correctness dependency. Storing an existing key
// replaces its snapshot. Nil pools ignore the call.
func (p *Pool) PutSnapshot(key any, s *Snapshot) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.snaps[key]; !ok {
		if len(p.snapOrder) >= defaultSnapCap {
			oldest := p.snapOrder[0]
			p.snapOrder = p.snapOrder[1:]
			delete(p.snaps, oldest)
		}
		p.snapOrder = append(p.snapOrder, key)
	}
	p.snaps[key] = s
}

// Snapshot returns the shelved snapshot for key, or nil. Lookups count into
// Stats().SnapshotHits/SnapshotMisses.
func (p *Pool) Snapshot(key any) *Snapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	s := p.snaps[key]
	p.mu.Unlock()
	if s == nil {
		p.snapMisses.Add(1)
		return nil
	}
	p.snapHits.Add(1)
	return s
}

// Fork checks a machine out of the pool positioned at s: an idle machine of
// s's Config when available (restored without an intermediate Reset — the
// restore overwrites everything Reset would), a fresh build otherwise. The
// caller owns the machine and should Put it back when done, exactly as with
// Get. A nil pool forks a fresh machine.
func (p *Pool) Fork(s *Snapshot) *Machine {
	if p == nil {
		return s.Fork()
	}
	p.mu.Lock()
	if list := p.machines[s.cfg]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		p.machines[s.cfg] = list[:len(list)-1]
		p.mu.Unlock()
		p.hits.Add(1)
		if err := s.ForkInto(m); err != nil {
			panic(err) // unreachable: config matches by construction
		}
		return m
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return s.Fork()
}
