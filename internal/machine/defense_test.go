package machine

import (
	"fmt"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/defense"
)

// TestDefenseConfigMapping pins the Config.Defense routing (static()): each
// registry kind maps to exactly the hierarchy/kernel configuration its
// legacy per-field spelling produced, a set Defense overrides the legacy
// structural fields entirely, and New installs a runtime defense for — and
// only for — the kinds that declare one.
func TestDefenseConfigMapping(t *testing.T) {
	legacy := map[string]Config{
		defense.None:          {},
		defense.TimeCache:     {Mode: cache.SecTimeCache},
		defense.FTM:           {Mode: cache.SecFTM},
		defense.DAWGLite:      {Partitioned: true},
		defense.FlushOnSwitch: {FlushOnSwitch: true},
		defense.Clepsydra:     {},
		defense.FASE:          {},
	}
	for kind, want := range legacy {
		cfg := Config{Defense: kind}
		if got, w := cfg.HierarchyConfig(), want.HierarchyConfig(); got != w {
			t.Errorf("%s: HierarchyConfig\n got %+v\nwant %+v", kind, got, w)
		}
		if got, w := cfg.KernelConfig(), want.KernelConfig(); got != w {
			t.Errorf("%s: KernelConfig\n got %+v\nwant %+v", kind, got, w)
		}
	}

	// A set Defense is authoritative: the legacy structural fields are
	// ignored, never merged.
	over := Config{Defense: defense.None, Mode: cache.SecTimeCache, Partitioned: true, FlushOnSwitch: true}
	if got, want := over.HierarchyConfig(), (Config{}).HierarchyConfig(); got != want {
		t.Errorf("Defense did not override legacy fields:\n got %+v\nwant %+v", got, want)
	}
	if got, want := over.KernelConfig(), (Config{}).KernelConfig(); got != want {
		t.Errorf("Defense did not override FlushOnSwitch:\n got %+v\nwant %+v", got, want)
	}

	runtime := map[string]bool{defense.Clepsydra: true, defense.FASE: true}
	for _, kind := range defense.Kinds() {
		m := New(Config{Defense: kind, PhysFrames: 8192})
		d := m.Hierarchy().Defense()
		if runtime[kind] {
			if d == nil || d.Name() != kind {
				t.Errorf("New(%s) installed defense %v, want runtime %q", kind, d, kind)
			}
			if st := m.Hierarchy().DefenseStats(); st.Name != kind {
				t.Errorf("DefenseStats().Name = %q, want %q", st.Name, kind)
			}
		} else if d != nil {
			t.Errorf("New(%s) installed runtime defense %q, want structural-only", kind, d.Name())
		}
	}
}

// TestDefenseConfigEquivalence is the tentpole's byte-identity claim at the
// machine layer: for every pure-static kind, a machine configured through
// the registry spelling runs cycle- and counter-identical to one configured
// through the legacy flags.
func TestDefenseConfigEquivalence(t *testing.T) {
	cases := []struct {
		kind   string
		legacy Config
	}{
		{defense.None, Config{Mode: cache.SecOff}},
		{defense.TimeCache, Config{Mode: cache.SecTimeCache}},
		{defense.FTM, Config{Mode: cache.SecFTM}},
		{defense.DAWGLite, Config{Partitioned: true}},
		{defense.FlushOnSwitch, Config{FlushOnSwitch: true}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			lcfg := tc.legacy
			lcfg.PhysFrames = 8192
			want := runWorkloadPair(t, New(lcfg))
			got := runWorkloadPair(t, New(Config{Defense: tc.kind, PhysFrames: 8192}))
			if got != want {
				t.Errorf("registry spelling diverged from legacy flags:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// defenseFingerprint extends runWorkloadPair's fingerprint with the runtime
// defense's own counters, so a stale TTL table or ownership map that
// happens not to move the cycle count still fails the comparison.
func defenseFingerprint(t testing.TB, m *Machine) string {
	return runWorkloadPair(t, m) + fmt.Sprintf(" def=%+v", m.Hierarchy().DefenseStats())
}

// TestDefenseResetDeterminism extends the pooling contract to runtime
// defenses: a Reset (and a pooled Get-after-Put) machine carrying clepsydra
// or fase state must replay exactly like a fresh machine.
func TestDefenseResetDeterminism(t *testing.T) {
	for _, kind := range []string{defense.Clepsydra, defense.FASE} {
		t.Run(kind, func(t *testing.T) {
			cfg := Config{Defense: kind, PhysFrames: 8192}
			fresh := defenseFingerprint(t, New(cfg))

			m := New(cfg)
			if got := defenseFingerprint(t, m); got != fresh {
				t.Fatalf("two fresh machines disagree:\n got %s\nwant %s", got, fresh)
			}
			m.Reset()
			if m.Hierarchy().Defense() == nil {
				t.Fatal("Reset uninstalled the runtime defense")
			}
			if got := defenseFingerprint(t, m); got != fresh {
				t.Fatalf("reset machine diverged from fresh:\n got %s\nwant %s", got, fresh)
			}

			pool := NewPool()
			p1 := pool.Get(cfg)
			defenseFingerprint(t, p1)
			pool.Put(p1)
			p2 := pool.Get(cfg)
			if p2 != p1 {
				t.Fatal("pool did not reuse the machine for the defense config")
			}
			if got := defenseFingerprint(t, p2); got != fresh {
				t.Fatalf("pooled machine diverged from fresh:\n got %s\nwant %s", got, fresh)
			}
		})
	}
}

// TestDefenseSnapshotForkDeterminism extends the snapshot contract to
// runtime defenses: the TTL table / ownership map is deep-copied at capture,
// so a fork of a warm snapshot finishes counter- and defense-counter-
// identical to a cold run, and sibling forks do not share defense state.
func TestDefenseSnapshotForkDeterminism(t *testing.T) {
	const total, warmup = 20_000, 15_000
	for _, kind := range []string{defense.Clepsydra, defense.FASE} {
		t.Run(kind, func(t *testing.T) {
			cfg := Config{Defense: kind, PhysFrames: 8192}
			cold := New(cfg)
			spawnPairWarm(t, cold, total, warmup, nil)
			want := finishFingerprint(cold, cold.Kernel().Run(1<<62)) +
				fmt.Sprintf(" def=%+v", cold.Hierarchy().DefenseStats())

			snap, src := warmSnapshot(t, cfg, total, warmup)
			finish := func(m *Machine) string {
				return finishFingerprint(m, m.Kernel().Run(1<<62)) +
					fmt.Sprintf(" def=%+v", m.Hierarchy().DefenseStats())
			}
			f1 := snap.Fork()
			if got := finish(f1); got != want {
				t.Fatalf("fork diverged from cold run:\n got %s\nwant %s", got, want)
			}
			f2 := snap.Fork()
			if got := finish(f2); got != want {
				t.Fatalf("second fork diverged (defense state shared between siblings?):\n got %s\nwant %s", got, want)
			}
			if got := finish(src); got != want {
				t.Fatalf("snapshotted source diverged from cold run:\n got %s\nwant %s", got, want)
			}
		})
	}
}
