// Package machine is the single assembly point for a simulated machine: one
// Config describes the whole shape (defense mode, core count, cache
// geometry, kernel parameters, physical memory size), and New composes the
// clock-bearing kernel, cache hierarchy, and physical memory from it.
//
// Every entry point that needs a machine — the public timecache.System, the
// experiment harness, the attack scenarios, and the CLIs — derives a Config
// and calls New here, so `machine.New` is the only place outside tests where
// cache.NewHierarchy, mem.NewPhysical, and kernel.New are composed.
//
// Machines are reusable: Reset returns one to the exact state New left it
// in, without reallocating the line arrays, s-bit columns, or frame tables.
// A Pool keyed by Config lets sweep workers run many experiment legs on a
// handful of machines instead of rebuilding per run; because a reset machine
// is indistinguishable from a fresh one, pooled results are byte-identical.
package machine

import (
	"sync"
	"sync/atomic"

	"timecache/internal/cache"
	"timecache/internal/defense"
	"timecache/internal/kernel"
	"timecache/internal/mem"
	"timecache/internal/replacement"
	"timecache/internal/telemetry"
)

// DefaultPhysFrames is the physical memory size when Config.PhysFrames is
// zero: 32768 frames = 128 MB.
const DefaultPhysFrames = 32768

// Config describes a simulated machine. The zero value assembles the
// paper's evaluation machine: one 2 GHz core, 32 KB 8-way L1I/L1D, 2 MB
// 16-way inclusive LLC, 32-bit timestamps, no defense.
//
// Config is comparable (it has no slice, map, or func fields) so it can key
// a Pool: two configs are the same machine shape iff they are ==.
type Config struct {
	// Mode selects the defense (cache.SecOff, SecTimeCache, SecFTM).
	Mode cache.SecMode
	// Defense, when non-empty, selects the defense by registry kind
	// (internal/defense: "none", "timecache", "ftm", "dawg-lite",
	// "flush-on-switch", "clepsydra", "fase"), overriding Mode,
	// Partitioned, and FlushOnSwitch, and installing the kind's runtime
	// defense instance on the hierarchy when it has one. Because Config is
	// comparable, the field participates in pool and snapshot-shelf keys
	// automatically: machines with different defenses never alias. An
	// unknown kind panics at assembly; validate at the job layer first.
	Defense string
	// Cores is the number of cores; zero keeps the default (1).
	Cores int
	// ThreadsPerCore is the SMT width; zero keeps the default (1).
	ThreadsPerCore int
	// L1Size and LLCSize are cache sizes in bytes; zero keeps the defaults
	// (32 KB and 2 MB).
	L1Size, LLCSize int
	// TimestampBits is the Tc width; zero keeps the default (32).
	TimestampBits uint
	// GateLevel routes context-switch timestamp comparisons through the
	// gate-level transposed-SRAM comparator model.
	GateLevel bool
	// MaxSharers, when positive, selects the limited-pointer s-bit tracker
	// (§VI-C) with that many slots per line.
	MaxSharers int
	// ConstantTimeFlush makes clflush constant-time (the §VII-C mitigation).
	ConstantTimeFlush bool
	// Partitioned enables the DAWG-lite way-partitioning baseline.
	Partitioned bool
	// RandomizedIndex enables CEASER-lite LLC index randomization with the
	// given nonzero key.
	RandomizedIndex uint64
	// CoherenceCheck cross-checks the LLC sharer directory against a
	// brute-force probe on every coherence event (debug mode).
	CoherenceCheck bool
	// NextLinePrefetch enables the next-line prefetcher.
	NextLinePrefetch bool
	// DisableDirectory forces broadcast coherence where the sharer
	// directory would apply (A/B benchmarking).
	DisableDirectory bool
	// Policy overrides the replacement policy; empty keeps the default
	// (true LRU). PolicySeed seeds the random policy.
	Policy     replacement.Kind
	PolicySeed uint64
	// SliceCycles overrides the scheduler time slice; zero keeps the
	// default (200k cycles).
	SliceCycles uint64
	// FlushOnSwitch flushes every cache at each context switch (the
	// baseline defense of §IV-C).
	FlushOnSwitch bool
	// PhysFrames sizes physical memory; zero keeps DefaultPhysFrames.
	// Capacity only gates out-of-memory — it never changes timing — so
	// callers may round it up freely to share pooled machines.
	PhysFrames int
}

// HierarchyConfig is the canonical Config → cache.HierarchyConfig mapping,
// deduplicating the derivations that used to live separately in timecache.go
// and internal/harness. Zero-valued fields keep the paper defaults from
// cache.DefaultHierarchyConfig; TestHierarchyConfigMapping pins every field.
func (c Config) HierarchyConfig() cache.HierarchyConfig {
	st := c.static()
	h := cache.DefaultHierarchyConfig()
	if c.Cores > 0 {
		h.Cores = c.Cores
	}
	if c.ThreadsPerCore > 0 {
		h.ThreadsPerCore = c.ThreadsPerCore
	}
	h.Mode = st.Mode
	if c.L1Size != 0 {
		h.L1Size = c.L1Size
	}
	if c.LLCSize != 0 {
		h.LLCSize = c.LLCSize
	}
	if c.TimestampBits != 0 {
		h.Sec.TimestampBits = c.TimestampBits
	}
	h.Sec.GateLevel = c.GateLevel
	h.Sec.MaxSharers = c.MaxSharers
	h.ConstantTimeFlush = c.ConstantTimeFlush
	h.Partitioned = st.Partitioned
	h.IndexRand = c.RandomizedIndex
	h.CoherenceCheck = c.CoherenceCheck
	h.NextLinePrefetch = c.NextLinePrefetch
	h.DisableDirectory = c.DisableDirectory
	if c.Policy != "" {
		h.Policy = c.Policy
	}
	h.PolicySeed = c.PolicySeed
	return h
}

// KernelConfig is the canonical Config → kernel.Config mapping.
func (c Config) KernelConfig() kernel.Config {
	k := kernel.DefaultConfig()
	if c.SliceCycles != 0 {
		k.SliceCycles = c.SliceCycles
	}
	k.FlushOnSwitch = c.static().FlushOnSwitch
	return k
}

// static resolves the effective structural defense configuration: the
// Defense registry kind when set, else the legacy per-field selection. The
// two spellings of the same defense produce identical machines
// (TestDefenseConfigEquivalence pins this).
func (c Config) static() defense.Static {
	if c.Defense == "" {
		return defense.Static{Mode: c.Mode, Partitioned: c.Partitioned, FlushOnSwitch: c.FlushOnSwitch}
	}
	st, err := defense.StaticOf(c.Defense)
	if err != nil {
		panic(err)
	}
	return st
}

func (c Config) frames() int {
	if c.PhysFrames > 0 {
		return c.PhysFrames
	}
	return DefaultPhysFrames
}

// Machine is an assembled simulated machine. The kernel owns the cores and
// their clocks; the hierarchy and physical memory are reachable both here
// and through the kernel.
type Machine struct {
	cfg  Config
	hier *cache.Hierarchy
	phys *mem.Physical
	k    *kernel.Kernel
}

// New assembles a machine from cfg.
func New(cfg Config) *Machine {
	hcfg := cfg.HierarchyConfig()
	hier := cache.NewHierarchy(hcfg)
	if cfg.Defense != "" {
		// Defense kinds with runtime state (clepsydra, fase) get their
		// instance here, once per machine: Reset resets it in place, and
		// Snapshot/Fork build the destination through New so CopyFrom
		// always finds a same-kind instance to deep-copy into.
		if d := defense.NewRuntime(cfg.Defense, hier); d != nil {
			hier.SetDefense(d)
		}
	}
	phys := mem.NewPhysical(cfg.frames(), hcfg.DRAMLat)
	return &Machine{cfg: cfg, hier: hier, phys: phys, k: kernel.New(cfg.KernelConfig(), hier, phys)}
}

// Config returns the machine's assembly configuration.
func (m *Machine) Config() Config { return m.cfg }

// Kernel returns the machine's kernel (the run entry point).
func (m *Machine) Kernel() *kernel.Kernel { return m.k }

// Hierarchy returns the machine's cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Physical returns the machine's physical memory.
func (m *Machine) Physical() *mem.Physical { return m.phys }

// Reset returns the machine to the cold state New left it in without
// reallocating: processes dropped, caches and s-bits cleared, replacement
// and directory state rewound, frames freed in an order that makes the next
// run's allocations identical to a fresh machine's, clocks zeroed, telemetry
// hooks detached. Running the same workload after Reset produces exactly the
// cycles and counters a fresh machine would (TestResetDeterminism and the
// golden experiment tests enforce this).
func (m *Machine) Reset() { m.k.Reset() }

// AttachTelemetry installs a telemetry collector (interval sampler, latency
// histograms, trace exporter, manifest) on the machine. Reset detaches it.
func (m *Machine) AttachTelemetry(cfg telemetry.Config) *telemetry.Collector {
	return telemetry.New(cfg).Attach(m.k)
}

// Pool reuses machines across experiment runs, keyed by Config. Get checks a
// machine out of the pool (after Reset) when one with the identical config
// was Put back earlier, so a worker running many legs of the same shape pays
// construction once; Put returns a machine for later reuse.
//
// A Pool is safe for concurrent use from any number of goroutines: Get and
// Put hand each machine to exactly one owner at a time, so sweep workers and
// the job service can share one pool (runner.MapWorkers still supports
// per-worker pools where isolation is preferred). A nil *Pool is valid: Get
// builds a fresh machine and Put discards.
type Pool struct {
	mu       sync.Mutex
	machines map[Config][]*Machine
	idleCap  int

	// snaps shelves warm-state snapshots keyed by the caller's key (the
	// harness keys on machine config + workload recipe), with FIFO
	// eviction once snapCap keys are resident.
	snaps     map[any]*Snapshot
	snapOrder []any

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	snapHits   atomic.Uint64
	snapMisses atomic.Uint64
}

// DefaultIdleCap bounds each config's idle list. Sweeps check at most one
// machine per worker in and out per shape, so a small cap holds the working
// set while shifting sweep shapes (an LLC ladder retires one config per
// step) stop accumulating dead machines.
const DefaultIdleCap = 8

// defaultSnapCap bounds the snapshot shelf (distinct keys). Each snapshot
// pins a frozen machine, so the shelf must not grow with sweep length.
const defaultSnapCap = 16

// PoolStats counts how Gets were served: a hit reuses a pooled machine
// (Reset, ~23µs), a miss assembles a fresh one (~141µs). Evictions counts
// idle machines dropped because their config's shelf was at IdleCap.
// SnapshotHits/SnapshotMisses count snapshot-shelf lookups. The job service
// reports the Get delta per job and the totals on /metrics.
type PoolStats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Evictions      uint64 `json:"evictions"`
	IdleCap        int    `json:"idle_cap"`
	SnapshotHits   uint64 `json:"snapshot_hits"`
	SnapshotMisses uint64 `json:"snapshot_misses"`
}

// Stats returns the pool's cumulative counters (zero for a nil pool, whose
// Gets always build fresh).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Evictions:      p.evictions.Load(),
		IdleCap:        p.idleCap,
		SnapshotHits:   p.snapHits.Load(),
		SnapshotMisses: p.snapMisses.Load(),
	}
}

// NewPool returns an empty pool with the default idle bound.
func NewPool() *Pool {
	return &Pool{
		machines: map[Config][]*Machine{},
		idleCap:  DefaultIdleCap,
		snaps:    map[any]*Snapshot{},
	}
}

// Get returns a machine assembled from cfg: a pooled one (after Reset) when
// available, a fresh one otherwise. The caller owns the machine exclusively
// until it Puts it back; a machine that is never Put is simply dropped.
func (p *Pool) Get(cfg Config) *Machine {
	if p == nil {
		return New(cfg)
	}
	p.mu.Lock()
	if list := p.machines[cfg]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		p.machines[cfg] = list[:len(list)-1]
		p.mu.Unlock()
		p.hits.Add(1)
		m.Reset()
		return m
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return New(cfg)
}

// Put returns a machine to the pool for a later Get with the same Config.
// The machine may be dirty — Get Resets before reuse — but must no longer be
// running. A Put that would push a config's idle list past IdleCap drops the
// machine instead (counted in Stats().Evictions). Put on a nil pool
// discards the machine.
func (p *Pool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	if len(p.machines[m.cfg]) >= p.idleCap {
		p.mu.Unlock()
		p.evictions.Add(1)
		return
	}
	p.machines[m.cfg] = append(p.machines[m.cfg], m)
	p.mu.Unlock()
}

// Size returns the number of idle machines the pool currently holds.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.machines {
		n += len(list)
	}
	return n
}
