package machine

import (
	"fmt"
	"sync"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/workload"
)

// spawnPairWarm installs the runWorkloadPair workloads with a warmup
// boundary: each process calls onWarm once when it crosses warmup
// instructions (nil skips the hook).
func spawnPairWarm(t testing.TB, m *Machine, total, warmup uint64, onWarm func()) {
	t.Helper()
	k := m.Kernel()
	for i, name := range []string{"gobmk", "lbm"} {
		prof, err := workload.Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		as, err := workload.BuildSharedAS(k, prof)
		if err != nil {
			t.Fatal(err)
		}
		proc := workload.NewProc(prof, total, uint64(1001+i*1001))
		proc.Warmup, proc.OnWarm = warmup, onWarm
		if _, err := k.Spawn(name, proc, as, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// finishFingerprint formats the same externally-observable state
// runWorkloadPair fingerprints, for runs whose spawn and Run are split.
func finishFingerprint(m *Machine, cycles uint64) string {
	fp := fmt.Sprintf("cycles=%d stats=%+v", cycles, m.Kernel().Stats)
	for _, c := range m.Hierarchy().Caches() {
		fp += fmt.Sprintf(" %s=%+v", c.Name(), c.Stats)
	}
	return fp
}

// warmSnapshot runs the workload pair on a fresh machine to its warm point
// (both processes past warmup), captures a snapshot there, and returns it
// along with the still-running source machine.
func warmSnapshot(t testing.TB, cfg Config, total, warmup uint64) (*Snapshot, *Machine) {
	t.Helper()
	m := New(cfg)
	k := m.Kernel()
	warmed := 0
	spawnPairWarm(t, m, total, warmup, func() {
		warmed++
		if warmed == 2 {
			k.Interrupt()
		}
	})
	k.Run(1 << 62)
	if warmed != 2 || k.AllExited() {
		t.Fatalf("warm point not reached mid-run: warmed=%d exited=%v", warmed, k.AllExited())
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k.ClearInterrupt()
	return snap, m
}

// TestSnapshotForkDeterminism is the tentpole contract: a fork of a warm
// snapshot, run to completion, is counter-identical to a cold machine that
// ran the whole workload — and the snapshotted source, resumed, is too (the
// capture is a pure bystander). Every path below must produce one
// fingerprint.
func TestSnapshotForkDeterminism(t *testing.T) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	const total, warmup = 20_000, 15_000

	cold := New(cfg)
	spawnPairWarm(t, cold, total, warmup, nil)
	want := finishFingerprint(cold, cold.Kernel().Run(1<<62))

	snap, src := warmSnapshot(t, cfg, total, warmup)

	// The source machine resumes and finishes as if never snapshotted.
	if got := finishFingerprint(src, src.Kernel().Run(1<<62)); got != want {
		t.Fatalf("snapshotted source diverged from cold run:\n got %s\nwant %s", got, want)
	}

	// A fork runs the remainder identically.
	f1 := snap.Fork()
	if got := finishFingerprint(f1, f1.Kernel().Run(1<<62)); got != want {
		t.Fatalf("first fork diverged from cold run:\n got %s\nwant %s", got, want)
	}

	// A second fork is unaffected by the first fork's writes.
	f2 := snap.Fork()
	if got := finishFingerprint(f2, f2.Kernel().Run(1<<62)); got != want {
		t.Fatalf("second fork diverged (sibling isolation):\n got %s\nwant %s", got, want)
	}

	// ForkInto a dirty machine (the finished source) needs no Reset.
	if err := snap.ForkInto(src); err != nil {
		t.Fatal(err)
	}
	if got := finishFingerprint(src, src.Kernel().Run(1<<62)); got != want {
		t.Fatalf("ForkInto a dirty machine diverged:\n got %s\nwant %s", got, want)
	}
}

// TestSnapshotConfigMismatch: ForkInto refuses a machine of a different
// shape instead of silently corrupting it.
func TestSnapshotConfigMismatch(t *testing.T) {
	snap, _ := warmSnapshot(t, Config{Mode: cache.SecTimeCache, PhysFrames: 8192}, 20_000, 15_000)
	other := New(Config{Mode: cache.SecOff, PhysFrames: 8192})
	if err := snap.ForkInto(other); err == nil {
		t.Fatal("ForkInto accepted a machine with a different Config")
	}
}

// TestSnapshotConcurrentForks forks one snapshot from many goroutines under
// -race: the frozen machine and the sealed frame buffers are shared
// read-only, so concurrent forks must neither race nor diverge.
func TestSnapshotConcurrentForks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	const total, warmup = 20_000, 15_000

	cold := New(cfg)
	spawnPairWarm(t, cold, total, warmup, nil)
	want := finishFingerprint(cold, cold.Kernel().Run(1<<62))

	snap, _ := warmSnapshot(t, cfg, total, warmup)
	const goroutines = 8
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := snap.Fork()
			if got := finishFingerprint(f, f.Kernel().Run(1<<62)); got != want {
				errc <- fmt.Errorf("goroutine %d: fork diverged:\n got %s\nwant %s", g, got, want)
				return
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPoolForkAndSnapshotShelf pins the pool-side snapshot surface: Fork
// reuses idle machines without Reset, the shelf stores and returns by key
// with hit/miss accounting, and the shelf is FIFO-bounded.
func TestPoolForkAndSnapshotShelf(t *testing.T) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	const total, warmup = 20_000, 15_000

	cold := New(cfg)
	spawnPairWarm(t, cold, total, warmup, nil)
	want := finishFingerprint(cold, cold.Kernel().Run(1<<62))

	snap, _ := warmSnapshot(t, cfg, total, warmup)
	p := NewPool()

	// Fork from an empty pool builds fresh (a miss).
	m1 := p.Fork(snap)
	if got := finishFingerprint(m1, m1.Kernel().Run(1<<62)); got != want {
		t.Fatalf("pool fork (fresh) diverged:\n got %s\nwant %s", got, want)
	}
	p.Put(m1)
	// Fork again: the dirty machine is reused without Reset.
	m2 := p.Fork(snap)
	if m2 != m1 {
		t.Fatal("pool did not reuse the idle machine for Fork")
	}
	if got := finishFingerprint(m2, m2.Kernel().Run(1<<62)); got != want {
		t.Fatalf("pool fork (reused, no Reset) diverged:\n got %s\nwant %s", got, want)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("pool stats after two Forks = %+v, want 1 hit / 1 miss", s)
	}

	// Shelf: miss, put, hit.
	type key struct{ name string }
	if got := p.Snapshot(key{"a"}); got != nil {
		t.Fatal("empty shelf returned a snapshot")
	}
	p.PutSnapshot(key{"a"}, snap)
	if got := p.Snapshot(key{"a"}); got != snap {
		t.Fatal("shelf did not return the stored snapshot")
	}
	s = p.Stats()
	if s.SnapshotHits != 1 || s.SnapshotMisses != 1 {
		t.Fatalf("snapshot stats = %+v, want 1 hit / 1 miss", s)
	}

	// FIFO bound: overfilling evicts the oldest key.
	for i := 0; i < defaultSnapCap; i++ {
		p.PutSnapshot(key{fmt.Sprintf("fill%d", i)}, snap)
	}
	if got := p.Snapshot(key{"a"}); got != nil {
		t.Fatal("oldest shelf key survived past the cap")
	}
	if got := p.Snapshot(key{fmt.Sprintf("fill%d", defaultSnapCap-1)}); got != snap {
		t.Fatal("newest shelf key missing")
	}

	// Nil-pool forks still work.
	var nilPool *Pool
	m3 := nilPool.Fork(snap)
	if got := finishFingerprint(m3, m3.Kernel().Run(1<<62)); got != want {
		t.Fatalf("nil-pool fork diverged:\n got %s\nwant %s", got, want)
	}
	nilPool.PutSnapshot(key{"x"}, snap) // must not panic
	if nilPool.Snapshot(key{"x"}) != nil {
		t.Fatal("nil pool returned a snapshot")
	}
}

// TestPoolIdleCapEviction: Puts past the per-config cap drop the machine
// and count an eviction.
func TestPoolIdleCapEviction(t *testing.T) {
	p := NewPool()
	cfg := Config{Mode: cache.SecOff, PhysFrames: 8192}
	for i := 0; i < DefaultIdleCap+3; i++ {
		p.Put(New(cfg))
	}
	if got := p.Size(); got != DefaultIdleCap {
		t.Fatalf("pool size = %d, want %d (cap)", got, DefaultIdleCap)
	}
	if s := p.Stats(); s.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", s.Evictions)
	}
}

// TestForkRestoreAllocs pins the fork hot path's allocation behavior: the
// bulk state movers — Physical.CopyFrom and Hierarchy.CopyFrom — must be
// allocation-free once the destination's buffers exist (COW means no page
// copies at fork time; line arrays and s-bit columns are reused in place).
func TestForkRestoreAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	snap, _ := warmSnapshot(t, cfg, 20_000, 15_000)
	dst := snap.Fork() // populate dst's buffers once

	src := snap.m
	if n := testing.AllocsPerRun(10, func() {
		dst.Physical().CopyFrom(src.Physical())
	}); n != 0 {
		t.Errorf("Physical.CopyFrom allocates %v per steady-state restore, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		dst.Hierarchy().CopyFrom(src.Hierarchy())
	}); n != 0 {
		t.Errorf("Hierarchy.CopyFrom allocates %v per steady-state restore, want 0", n)
	}
}

// runWarmLeg is the benchmark leg: a warmup-dominated run (18k of 20k
// instructions are warmup) of the standard workload pair.
const benchTotal, benchWarmup = 20_000, 18_000

// BenchmarkSweepColdWarmup prices the old way to run repeated same-shape
// legs: every iteration pays the full warmup from a Reset machine.
func BenchmarkSweepColdWarmup(b *testing.B) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	pool := NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pool.Get(cfg)
		spawnPairWarm(b, m, benchTotal, benchWarmup, nil)
		m.Kernel().Run(1 << 62)
		pool.Put(m)
	}
}

// BenchmarkSweepFork prices the snapshot path for the same leg: the warmup
// runs once (outside the timer) and every iteration forks the warm snapshot
// and runs only the measured remainder. The ratio to BenchmarkSweepColdWarmup
// is the per-leg speedup on warmup-dominated sweeps.
func BenchmarkSweepFork(b *testing.B) {
	cfg := Config{Mode: cache.SecTimeCache, PhysFrames: 8192}
	snap, _ := warmSnapshot(b, cfg, benchTotal, benchWarmup)
	pool := NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pool.Fork(snap)
		m.Kernel().Run(1 << 62)
		pool.Put(m)
	}
}
