package kernel

import (
	"context"
	"strings"
	"testing"

	"timecache/internal/asm"
	"timecache/internal/cache"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

func newMachine(t *testing.T, mode cache.SecMode, cores int) *Kernel {
	t.Helper()
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.Cores = cores
	hcfg.Mode = mode
	hier := cache.NewHierarchy(hcfg)
	phys := mem.NewPhysical(16384, hcfg.DRAMLat)
	return New(DefaultConfig(), hier, phys)
}

func TestLoadAndRunProgram(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	prog, err := asm.Assemble(`
	.data
	x: .quad 20
	.text
		movi r1, x
		ld   r2, [r1]
		addi r2, r2, 22
		st   [r1], r2
		ld   r3, [r1]
		mov  r1, r3
		sys  0
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, cpu, err := k.Load(prog, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	if p.State != Exited {
		t.Fatalf("process state = %v, want exited", p.State)
	}
	if p.ExitCode != 42 {
		t.Fatalf("exit code = %d, want 42", p.ExitCode)
	}
	if cpu.Fault != nil {
		t.Fatalf("fault: %v", cpu.Fault)
	}
	if p.Stats.Instructions == 0 || p.Stats.CPUCycles == 0 {
		t.Fatal("stats not accounted")
	}
}

func TestTwoProcessesShareTextFrames(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	prog, err := asm.Assemble(`
	.data
	priv: .quad 9
	.shared
	tbl: .quad 1, 2, 3, 4
	.text
		movi r1, tbl
		ld   r2, [r1]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := k.Load(prog, LoadOptions{ShareKey: "bench"})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := k.Load(prog, LoadOptions{ShareKey: "bench"})
	if err != nil {
		t.Fatal(err)
	}
	f1, ok1 := p1.AS.FrameAt(prog.TextBase)
	f2, ok2 := p2.AS.FrameAt(prog.TextBase)
	if !ok1 || !ok2 || f1 != f2 {
		t.Fatal("text frames must be shared under the same share key")
	}
	s1, _ := p1.AS.FrameAt(prog.SharedBase)
	s2, _ := p2.AS.FrameAt(prog.SharedBase)
	if s1 != s2 {
		t.Fatal("library frames must be shared")
	}
	d1, _ := p1.AS.FrameAt(prog.DataBase)
	d2, _ := p2.AS.FrameAt(prog.DataBase)
	if d1 == d2 {
		t.Fatal("data frames must be private")
	}
	k.Run(10_000_000)
	if !k.AllExited() {
		t.Fatal("programs did not finish")
	}
}

func TestRoundRobinPreemption(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	// Two infinite-ish loops: both must make progress (preemption works).
	src := `
		movi r1, 0
		movi r2, 2000000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, _ := k.Load(prog, LoadOptions{ShareKey: "loop", Name: "A"})
	pb, _, _ := k.Load(prog, LoadOptions{ShareKey: "loop", Name: "B"})
	k.Run(3_000_000)
	if pa.Stats.Instructions == 0 || pb.Stats.Instructions == 0 {
		t.Fatal("both processes must run")
	}
	ratio := float64(pa.Stats.Instructions) / float64(pb.Stats.Instructions)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("grossly unfair scheduling: %d vs %d", pa.Stats.Instructions, pb.Stats.Instructions)
	}
	if k.Stats.ContextSwitches < 4 {
		t.Fatalf("expected several context switches, got %d", k.Stats.ContextSwitches)
	}
}

func TestSleepAndYield(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	sleeper, err := asm.Assemble(`
		rdtsc r2
		movi r1, 100000
		sys  2        ; sleep 100k cycles
		rdtsc r3
		sub  r1, r3, r2
		sys  0        ; exit with elapsed cycles
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := k.Load(sleeper, LoadOptions{Name: "sleeper"})
	k.Run(10_000_000)
	if p.State != Exited {
		t.Fatalf("sleeper state %v", p.State)
	}
	if p.ExitCode < 100000 {
		t.Fatalf("sleep elapsed %d cycles, want >= 100000", p.ExitCode)
	}
}

func TestTimeCacheBookkeepingCharged(t *testing.T) {
	k := newMachine(t, cache.SecTimeCache, 1)
	prog, err := asm.Assemble(`
		movi r1, 0
		movi r2, 500000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	k.Load(prog, LoadOptions{ShareKey: "w", Name: "A"})
	k.Load(prog, LoadOptions{ShareKey: "w", Name: "B"})
	k.Run(50_000_000)
	if !k.AllExited() {
		t.Fatal("did not finish")
	}
	if k.Stats.ContextSwitches == 0 {
		t.Fatal("expected context switches")
	}
	wantBK := (k.Stats.ContextSwitches - 1) * k.cfg.Cost.DMACycles // first switch-in has no save
	if k.Stats.BookkeepingCycles < wantBK/2 || k.Stats.BookkeepingCycles == 0 {
		t.Fatalf("bookkeeping cycles = %d, switches = %d", k.Stats.BookkeepingCycles, k.Stats.ContextSwitches)
	}
}

func TestFirstAccessAcrossContextSwitches(t *testing.T) {
	// Two processes share text; with TimeCache each must pay first-access
	// misses for the other's cached lines; baseline must not.
	src := `
		movi r1, 0
		movi r2, 20000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`
	run := func(mode cache.SecMode) uint64 {
		k := newMachine(t, mode, 1)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		k.Load(prog, LoadOptions{ShareKey: "w", Name: "A"})
		k.Load(prog, LoadOptions{ShareKey: "w", Name: "B"})
		k.Run(100_000_000)
		if !k.AllExited() {
			t.Fatal("did not finish")
		}
		var fa uint64
		for _, c := range k.Hierarchy().Caches() {
			fa += c.Stats.FirstAccess
		}
		return fa
	}
	if fa := run(cache.SecOff); fa != 0 {
		t.Fatalf("baseline recorded %d first accesses", fa)
	}
	if fa := run(cache.SecTimeCache); fa == 0 {
		t.Fatal("TimeCache must record first accesses for shared text")
	}
}

func TestPageFaultKillsProcess(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	prog, err := asm.Assemble(`
		movi r1, 0xdead0000
		ld   r2, [r1]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := k.Load(prog, LoadOptions{})
	k.Run(1_000_000)
	if p.State != Exited || p.Err == nil {
		t.Fatalf("state=%v err=%v; want exited with page fault", p.State, p.Err)
	}
	if !strings.Contains(p.Err.Error(), "page fault") {
		t.Fatalf("err = %v", p.Err)
	}
}

func TestWriteToReadOnlySharedTextFaults(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	prog, err := asm.Assemble(`
		movi r1, 0x10000  ; text base
		st   [r1], r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := k.Load(prog, LoadOptions{ShareKey: "t"})
	k.Run(1_000_000)
	if p.Err == nil || !strings.Contains(p.Err.Error(), "read-only") {
		t.Fatalf("err = %v, want read-only violation", p.Err)
	}
}

func TestForkCOW(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	parentAS := NewAddressSpace(k.Physical())
	if err := parentAS.MapAnon(0x100000, mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	pa, _, _ := parentAS.Translate(0x100000, true)
	k.Physical().WriteU64(pa, 777)

	childAS, err := k.Fork(parentAS)
	if err != nil {
		t.Fatal(err)
	}
	// Same frame before any write.
	f1, _ := parentAS.FrameAt(0x100000)
	f2, _ := childAS.FrameAt(0x100000)
	if f1 != f2 {
		t.Fatal("fork must share frames")
	}
	// Child reads the parent's value.
	ca, _, _ := childAS.Translate(0x100000, false)
	if k.Physical().ReadU64(ca) != 777 {
		t.Fatal("child must see parent's data")
	}
	// Child write breaks COW.
	ca2, broke, err := childAS.Translate(0x100000, true)
	if err != nil || !broke {
		t.Fatalf("COW break expected, got broke=%v err=%v", broke, err)
	}
	k.Physical().WriteU64(ca2, 888)
	if k.Physical().ReadU64(pa) != 777 {
		t.Fatal("parent's page must be unchanged")
	}
	f1, _ = parentAS.FrameAt(0x100000)
	f2, _ = childAS.FrameAt(0x100000)
	if f1 == f2 {
		t.Fatal("COW break must split frames")
	}
}

func TestDedupMergesIdenticalPages(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	mk := func(name string) *Process {
		as := NewAddressSpace(k.Physical())
		if err := as.MapAnon(0x200000, 2*mem.PageSize, true); err != nil {
			t.Fatal(err)
		}
		// Fill the first page with identical contents in both processes.
		pa, _, _ := as.Translate(0x200000, true)
		for i := uint64(0); i < mem.PageSize; i += 8 {
			k.Physical().WriteU64(pa+i, i*3)
		}
		// Second page differs per process.
		pb, _, _ := as.Translate(0x200000+mem.PageSize, true)
		k.Physical().WriteU64(pb, uint64(len(name)))
		p, err := k.Spawn(name, sim.ProcFunc(func(env sim.Env) bool { return false }), as, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := mk("one"), mk("three")
	merged := k.DedupScan()
	if merged != 1 {
		t.Fatalf("merged = %d, want 1 (only the identical page)", merged)
	}
	f1, _ := p1.AS.FrameAt(0x200000)
	f2, _ := p2.AS.FrameAt(0x200000)
	if f1 != f2 {
		t.Fatal("identical pages must share a frame after dedup")
	}
	if k.SavedFrames() != 1 {
		t.Fatalf("saved frames = %d, want 1", k.SavedFrames())
	}
	// A write to the merged page must break COW, not corrupt the other.
	pa2, broke, err := p2.AS.Translate(0x200000, true)
	if err != nil || !broke {
		t.Fatalf("post-dedup write must break COW: broke=%v err=%v", broke, err)
	}
	k.Physical().WriteU64(pa2, 12345)
	pa1, _, _ := p1.AS.Translate(0x200000, false)
	if k.Physical().ReadU64(pa1) == 12345 {
		t.Fatal("dedup COW isolation violated")
	}
}

func TestDedupEnablesCrossProcessCacheSharing(t *testing.T) {
	// After dedup, an access by process B hits the line process A loaded —
	// the reuse channel. With TimeCache it must be a first-access instead.
	for _, mode := range []cache.SecMode{cache.SecOff, cache.SecTimeCache} {
		k := newMachine(t, mode, 1)
		mkAS := func() *AddressSpace {
			as := NewAddressSpace(k.Physical())
			if err := as.MapAnon(0x300000, mem.PageSize, true); err != nil {
				t.Fatal(err)
			}
			pa, _, _ := as.Translate(0x300000, true)
			for i := uint64(0); i < mem.PageSize; i += 8 {
				k.Physical().WriteU64(pa+i, i)
			}
			return as
		}
		as1, as2 := mkAS(), mkAS()
		done1, done2 := false, false
		var res2 cache.Result
		p1 := sim.ProcFunc(func(env sim.Env) bool {
			if done1 {
				return false
			}
			done1 = true
			env.Load(0x300000)
			env.Instret(1)
			return true
		})
		p2 := sim.ProcFunc(func(env sim.Env) bool {
			if done2 {
				return false
			}
			done2 = true
			env.Instret(1)
			start := env.Now()
			env.Load(0x300000)
			elapsed := env.Now() - start
			res2 = cache.Result{Latency: elapsed}
			return true
		})
		k.Spawn("A", p1, as1, 0)
		k.Spawn("B", p2, as2, 0)
		if k.DedupScan() == 0 {
			t.Fatal("dedup found nothing")
		}
		k.Run(10_000_000)
		hcfg := k.Hierarchy().Config()
		fast := hcfg.L1Lat + hcfg.LLCLat // anything <= LLC hit is "fast reuse"
		if mode == cache.SecOff && res2.Latency > fast+hcfg.L1Lat {
			t.Fatalf("baseline: B's access should be a fast reuse hit, took %d", res2.Latency)
		}
		if mode == cache.SecTimeCache && res2.Latency < hcfg.DRAMLat {
			t.Fatalf("timecache: B's first access must pay the miss path, took %d", res2.Latency)
		}
	}
}

func TestFlushOnSwitchMode(t *testing.T) {
	hcfg := cache.DefaultHierarchyConfig()
	hier := cache.NewHierarchy(hcfg)
	phys := mem.NewPhysical(16384, hcfg.DRAMLat)
	kcfg := DefaultConfig()
	kcfg.FlushOnSwitch = true
	k := New(kcfg, hier, phys)
	prog, err := asm.Assemble(`
		movi r1, 0
		movi r2, 100000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	k.Load(prog, LoadOptions{ShareKey: "w", Name: "A"})
	k.Load(prog, LoadOptions{ShareKey: "w", Name: "B"})
	k.Run(200_000_000)
	if !k.AllExited() {
		t.Fatal("did not finish")
	}
	// Flushing on each switch forces refills: miss counts must be large.
	if hier.L1I(0).Stats.Misses < k.Stats.ContextSwitches {
		t.Fatalf("flush-on-switch should cause refills: misses=%d switches=%d",
			hier.L1I(0).Stats.Misses, k.Stats.ContextSwitches)
	}
}

func TestMultiCoreRunsConcurrently(t *testing.T) {
	k := newMachine(t, cache.SecOff, 2)
	prog, err := asm.Assemble(`
		movi r1, 0
		movi r2, 50000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, _ := k.Load(prog, LoadOptions{ShareKey: "w", Core: 0, Name: "A"})
	pb, _, _ := k.Load(prog, LoadOptions{ShareKey: "w", Core: 1, Name: "B"})
	k.Run(100_000_000)
	if pa.State != Exited || pb.State != Exited {
		t.Fatal("both must exit")
	}
	// Each ran on its own core with no context switching between them.
	if k.CoreClock(0) == 0 || k.CoreClock(1) == 0 {
		t.Fatal("both cores must have advanced")
	}
}

func TestKernelTextTouchedOnSyscall(t *testing.T) {
	k := newMachine(t, cache.SecOff, 1)
	before := k.Hierarchy().L1I(0).Stats.Accesses
	prog, err := asm.Assemble("sys 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	k.Load(prog, LoadOptions{})
	k.Run(1_000_000)
	after := k.Hierarchy().L1I(0).Stats.Accesses
	// 2 program fetches + kernel lines for the yield syscall.
	if after-before < uint64(2+k.Config().KernelLinesPerSyscall) {
		t.Fatalf("kernel text accesses missing: %d fetches", after-before)
	}
}

func TestRunInline(t *testing.T) {
	k := newMachine(t, cache.SecTimeCache, 1)
	as := NewAddressSpace(k.Physical())
	if err := as.MapAnon(0x100000, mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	idle := sim.ProcFunc(func(env sim.Env) bool { return false })
	p, err := k.Spawn("inline", idle, as, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first, second uint64
	err = k.RunInline(p, func(env sim.Env) {
		t0 := env.Now()
		env.Load(0x100000)
		first = env.Now() - t0
		t0 = env.Now()
		env.Load(0x100000)
		second = env.Now() - t0
		env.Store(0x100008, 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	if first <= second {
		t.Fatalf("first load should miss (%d), second hit (%d)", first, second)
	}
	// Memory effects are real.
	pa, _, _ := as.Translate(0x100008, false)
	if k.Physical().ReadU64(pa) != 42 {
		t.Fatal("inline store did not reach memory")
	}
	// RunInline on an exited process must error.
	p.State = Exited
	if err := k.RunInline(p, func(env sim.Env) {}); err == nil {
		t.Fatal("RunInline on exited process must error")
	}
}

// TestRunCtxNoStaleInterrupt pins the RunCtx/AfterFunc synchronization:
// when a context cancellation races with run completion, the interrupt
// callback must have finished before RunCtx returns. Otherwise a pooled
// machine could be Reset (clearing the sticky flag) and handed to a new
// run, and the stale callback would then spuriously abort that unrelated
// run. After RunCtx+Reset the flag must therefore always read clear.
func TestRunCtxNoStaleInterrupt(t *testing.T) {
	k := newMachine(t, cache.SecTimeCache, 1)
	for i := 0; i < 300; i++ {
		as := NewAddressSpace(k.Physical())
		if err := as.MapAnon(0x100000, mem.PageSize, true); err != nil {
			t.Fatal(err)
		}
		steps := 0
		proc := sim.ProcFunc(func(env sim.Env) bool {
			env.Load(0x100000)
			steps++
			return steps < 4
		})
		if _, err := k.Spawn("short", proc, as, 0); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // race the cancellation against run completion
		k.RunCtx(ctx, 10_000_000)
		k.Reset()
		if k.Interrupted() {
			t.Fatalf("iteration %d: interrupt callback fired after RunCtx returned and Reset cleared the flag", i)
		}
	}
}

func TestSMTSchedulerRunsSiblingThreads(t *testing.T) {
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.Cores = 1
	hcfg.ThreadsPerCore = 2
	hier := cache.NewHierarchy(hcfg)
	phys := mem.NewPhysical(8192, hcfg.DRAMLat)
	k := New(DefaultConfig(), hier, phys)
	prog, err := asm.Assemble(`
		movi r1, 0
		movi r2, 30000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Two logical CPUs on one physical core: both must run concurrently,
	// sharing the L1I (one text copy, fetched by both hardware threads).
	pa, _, _ := k.Load(prog, LoadOptions{ShareKey: "smt", Core: 0, Name: "t0"})
	pb, _, _ := k.Load(prog, LoadOptions{ShareKey: "smt", Core: 1, Name: "t1"})
	k.Run(100_000_000)
	if pa.State != Exited || pb.State != Exited {
		t.Fatal("both hyperthreads must finish")
	}
	if k.Stats.ContextSwitches > 2 {
		t.Fatalf("SMT threads have their own contexts; got %d switches", k.Stats.ContextSwitches)
	}
	if hier.L1I(0).Stats.Accesses == 0 {
		t.Fatal("shared L1I unused")
	}
}

func TestMigrationPreservesLLCContextAndSecurity(t *testing.T) {
	k := newMachine(t, cache.SecTimeCache, 2)
	prog, err := asm.Assemble(`
		movi r1, 0
		movi r2, 60000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Two processes sharing text, started on core 0.
	pa, _, _ := k.Load(prog, LoadOptions{ShareKey: "mig", Core: 0, Name: "A"})
	pb, _, _ := k.Load(prog, LoadOptions{ShareKey: "mig", Core: 0, Name: "B"})
	// Run briefly, then migrate whichever process is descheduled (with two
	// processes on one core, at most one can be Running).
	k.Run(300_000)
	mig := pb
	if mig.State == Running {
		mig = pa
	}
	if mig.State == Running {
		t.Fatal("both processes running on one core")
	}
	if err := k.Migrate(mig, 1); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d", k.Stats.Migrations)
	}
	k.Run(1 << 62)
	if pa.State != Exited || pb.State != Exited {
		t.Fatalf("processes did not finish: A=%v B=%v", pa.State, pb.State)
	}
	// Migration must not error for bad targets.
	if err := k.Migrate(pa, 99); err == nil {
		t.Fatal("out-of-range CPU must error")
	}
	if err := k.Migrate(pa, 1); err == nil {
		t.Fatal("migrating an exited process must error")
	}
}
