package kernel

import (
	"context"
	"fmt"
	"sync/atomic"

	"timecache/internal/cache"
	"timecache/internal/clock"
	"timecache/internal/core"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

// Config controls kernel behavior.
type Config struct {
	// SliceCycles is the scheduler time slice.
	SliceCycles uint64
	// SwitchBaseCycles is the context switch cost excluding TimeCache
	// bookkeeping (register save, scheduler work).
	SwitchBaseCycles uint64
	// MinorFaultCycles is charged when a COW page is copied.
	MinorFaultCycles uint64
	// Cost models the s-bit save/restore charged per switch when the
	// hierarchy runs in TimeCache mode.
	Cost core.CostModel
	// FlushOnSwitch flushes every cache at each context switch (the
	// baseline defense the paper contrasts with, §IV-C).
	FlushOnSwitch bool
	// KernelLinesPerSyscall is how many shared kernel-text lines each
	// syscall touches in the calling process's context; this models the
	// kernel-space sharing the paper identifies as a first-access source.
	KernelLinesPerSyscall int
	// KernelTextLines is the size of the kernel text region in lines.
	KernelTextLines int
}

// DefaultConfig returns kernel parameters sized for the simulator's scale.
func DefaultConfig() Config {
	return Config{
		SliceCycles:           200_000,
		SwitchBaseCycles:      2_000,
		MinorFaultCycles:      600,
		Cost:                  core.DefaultCostModel(),
		KernelLinesPerSyscall: 8,
		KernelTextLines:       512, // 32 KB of kernel text
	}
}

// Stats aggregates kernel-wide accounting.
type Stats struct {
	ContextSwitches uint64
	// BookkeepingCycles is the total cycles charged for s-bit save/restore
	// (the 0.02% component of the paper's 1.13% overhead).
	BookkeepingCycles uint64
	// SwitchCycles is total context-switch cost including bookkeeping.
	SwitchCycles uint64
	COWBreaks    uint64
	Syscalls     uint64
	DedupMerged  uint64
	Migrations   uint64
}

// Delta returns the counter advance since an earlier snapshot.
func (s Stats) Delta(before Stats) Stats {
	return Stats{
		ContextSwitches:   s.ContextSwitches - before.ContextSwitches,
		BookkeepingCycles: s.BookkeepingCycles - before.BookkeepingCycles,
		SwitchCycles:      s.SwitchCycles - before.SwitchCycles,
		COWBreaks:         s.COWBreaks - before.COWBreaks,
		Syscalls:          s.Syscalls - before.Syscalls,
		DedupMerged:       s.DedupMerged - before.DedupMerged,
		Migrations:        s.Migrations - before.Migrations,
	}
}

// SwitchEvent describes one context switch for telemetry probes.
type SwitchEvent struct {
	Core            int
	OutPID, InPID   int // zero when no process on that side
	OutName, InName string
	// Start and End bracket the whole switch on the core's clock.
	Start, End uint64
	// BookkeepStart and BookkeepEnd bracket the cycles charged for the
	// TimeCache s-bit save/restore DMA inside the switch (equal when the
	// hierarchy has no per-switch bookkeeping).
	BookkeepStart, BookkeepEnd uint64
}

// Probe observes scheduler-level events. All callbacks run synchronously
// inside the scheduler loop; when no probe is installed each hook costs a
// single nil check. AfterStep fires after every Proc.Step, OnRunSpan when a
// process is descheduled (one on-core occupancy span), and OnContextSwitch
// once per charged context switch.
type Probe interface {
	AfterStep(core int, now uint64)
	OnContextSwitch(ev SwitchEvent)
	OnRunSpan(core, pid int, name string, start, end uint64)
}

// coreState is one schedulable hardware context's state: with SMT the
// kernel sees every hardware thread as a logical CPU with its own run
// queue and clock, while sibling threads share L1 caches in the hierarchy.
type coreState struct {
	id    int // logical CPU id == global hardware context id
	ctx   int // global hardware context driven by this CPU
	clock clock.Clock
	runq  []*Process
	cur   *Process
	// prev is the most recently descheduled process; its s-bit columns are
	// still in the hardware and must be saved at the next context switch.
	prev *Process
	// sliceEnd is the preemption deadline for cur.
	sliceEnd uint64
	// sliceInstrs counts instructions in the current slice (debug/stats).
	sliceInstrs uint64
	// runStart is the clock when cur was scheduled in (telemetry spans).
	runStart uint64

	// secCaches and secLineCounts are the caches whose s-bit columns this
	// context saves/restores at each switch, precomputed at kernel
	// construction so the switch path does not allocate.
	secCaches     []cache.CacheCtx
	secLineCounts []int
	// switchCost is the fixed per-switch s-bit bookkeeping charge for this
	// context's caches under the configured cost model.
	switchCost uint64

	// req is this CPU's long-lived memory request: every access the core
	// issues (process loads/stores/fetches, kernel text touches, flushes)
	// reuses it, so the per-access path performs no allocation even though
	// the hierarchy hands the request to observers through an interface.
	req cache.Request
}

// Kernel owns the machine: physical memory, the cache hierarchy, cores, and
// processes.
type Kernel struct {
	cfg  Config
	hier *cache.Hierarchy
	phys *mem.Physical

	cores   []*coreState
	procs   []*Process
	nextPID int

	// shared regions by name (library images, explicit shared memory).
	regions map[string][]mem.Frame

	// kernelText is the physical region syscalls touch.
	kernelText []mem.Frame

	probe Probe

	// interrupted is set asynchronously by Interrupt and polled by Run at a
	// coarse stride; it is the only kernel field another goroutine may touch
	// while the machine runs.
	interrupted atomic.Bool

	Stats Stats
}

// SetProbe installs (or, with nil, removes) the scheduler telemetry probe.
func (k *Kernel) SetProbe(p Probe) { k.probe = p }

// New builds a kernel over the given hierarchy and physical memory. One
// hardware context per core is scheduled (the hierarchy may expose more for
// SMT experiments driven directly through the cache API).
func New(cfg Config, hier *cache.Hierarchy, phys *mem.Physical) *Kernel {
	k := &Kernel{
		cfg:     cfg,
		hier:    hier,
		phys:    phys,
		regions: map[string][]mem.Frame{},
		nextPID: 1,
	}
	ncpus := hier.Contexts()
	for c := 0; c < ncpus; c++ {
		cs := &coreState{id: c, ctx: c}
		cs.secCaches = hier.SecCaches(c)
		for _, cc := range cs.secCaches {
			cs.secLineCounts = append(cs.secLineCounts, cc.Cache.Lines())
		}
		if len(cs.secLineCounts) > 0 {
			cs.switchCost = cfg.Cost.SwitchCost(cs.secLineCounts)
		}
		k.cores = append(k.cores, cs)
	}
	k.allocKernelText()
	return k
}

// allocKernelText allocates the kernel text region. On a fresh Physical the
// frames come out dense from 0; Reset re-runs this after Physical.Reset and
// gets the identical frames back.
func (k *Kernel) allocKernelText() {
	lines := k.cfg.KernelTextLines
	if lines <= 0 {
		lines = 1
	}
	pages := (lines*cache.LineSize + mem.PageSize - 1) / mem.PageSize
	for i := 0; i < pages; i++ {
		f, err := k.phys.Alloc()
		if err != nil {
			panic(fmt.Sprintf("kernel: cannot allocate kernel text: %v", err))
		}
		k.kernelText = append(k.kernelText, f)
	}
}

// Reset returns the kernel — and through it the whole machine: hierarchy,
// physical memory, cores — to the state New left it in, without reallocating
// the large arrays. Processes are dropped, stats and probes cleared, core
// clocks rewound to zero, and the kernel text re-allocated (deterministically
// receiving the same frames). machine.Reset is the public entry point.
func (k *Kernel) Reset() {
	k.hier.Reset()
	k.phys.Reset()
	k.probe = nil
	k.Stats = Stats{}
	k.procs = k.procs[:0]
	k.nextPID = 1
	clear(k.regions)
	for _, c := range k.cores {
		c.clock = clock.Clock{}
		c.runq = c.runq[:0]
		c.cur, c.prev = nil, nil
		c.sliceEnd, c.sliceInstrs, c.runStart = 0, 0, 0
	}
	k.kernelText = k.kernelText[:0]
	k.interrupted.Store(false)
	k.allocKernelText()
}

// Hierarchy returns the machine's cache hierarchy.
func (k *Kernel) Hierarchy() *cache.Hierarchy { return k.hier }

// Physical returns the machine's physical memory.
func (k *Kernel) Physical() *mem.Physical { return k.phys }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Processes returns all spawned processes.
func (k *Kernel) Processes() []*Process { return k.procs }

// SharedRegion returns (creating on first use) a named shared region of the
// given size; subsequent calls must pass the same size. The initialized
// contents are written by the first creator via Physical().
func (k *Kernel) SharedRegion(name string, size uint64) ([]mem.Frame, error) {
	if fr, ok := k.regions[name]; ok {
		need := int((size + mem.PageSize - 1) >> mem.PageShift)
		if need != len(fr) {
			return nil, fmt.Errorf("kernel: shared region %q size mismatch", name)
		}
		return fr, nil
	}
	n := int((size + mem.PageSize - 1) >> mem.PageShift)
	frames := make([]mem.Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := k.phys.Alloc()
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	k.regions[name] = frames
	return frames, nil
}

// Spawn registers a process running proc in address space as, pinned to
// core. The address space may be shared with another process (threads).
func (k *Kernel) Spawn(name string, proc sim.Proc, as *AddressSpace, coreID int) (*Process, error) {
	if coreID < 0 || coreID >= len(k.cores) {
		return nil, fmt.Errorf("kernel: core %d out of range", coreID)
	}
	p := &Process{
		PID:   k.nextPID,
		Name:  name,
		Core:  coreID,
		AS:    as,
		Proc:  proc,
		State: Ready,
	}
	k.nextPID++
	k.procs = append(k.procs, p)
	k.cores[coreID].runq = append(k.cores[coreID].runq, p)
	return p, nil
}

// syscall handles a kernel service request from the running process.
func (k *Kernel) syscall(c *coreState, p *Process, num, arg uint64) uint64 {
	k.Stats.Syscalls++
	k.touchKernelText(c)
	switch num {
	case sim.SysExit:
		p.ExitCode = arg
		p.State = Exited
	case sim.SysYield:
		// The slice ends now; the scheduler loop rotates the run queue.
		c.sliceEnd = c.clock.Now()
	case sim.SysSleep:
		p.State = Sleeping
		p.wakeAt = c.clock.Now() + arg
		c.sliceEnd = c.clock.Now()
	case sim.SysGetPID:
		return uint64(p.PID)
	case sim.SysPrint:
		// Recorded by the Proc itself (e.g. vm.CPU.Output); nothing to do.
	default:
		// Unknown syscalls are ignored, returning 0, like a stub kernel.
	}
	return 0
}

// touchKernelText models the kernel's own cache footprint during a syscall:
// a few lines of kernel text are fetched in the current hardware context.
// Because kernel text is shared physical memory, these accesses generate
// first-access misses across security contexts exactly as the paper notes
// for system calls and kernel data structures.
func (k *Kernel) touchKernelText(c *coreState) {
	n := k.cfg.KernelLinesPerSyscall
	if n <= 0 || len(k.kernelText) == 0 {
		return
	}
	total := k.cfg.KernelTextLines
	start := int(k.Stats.Syscalls) * 7 % total
	for i := 0; i < n; i++ {
		line := (start + i) % total
		pa := k.kernelText[line*cache.LineSize/mem.PageSize].Addr() +
			uint64(line*cache.LineSize%mem.PageSize)
		r := &c.req
		r.Now, r.Ctx, r.Addr, r.Kind = c.clock.Now(), c.ctx, pa, cache.Fetch
		k.hier.Serve(r)
		c.clock.Advance(r.Latency)
	}
}

// contextSwitch performs the software half of TimeCache: save the outgoing
// process's s-bit columns and Ts, restore the incoming process's columns,
// and let the hardware comparator reconcile them with current cache state.
func (k *Kernel) contextSwitch(c *coreState, out, in *Process) {
	k.Stats.ContextSwitches++
	start := c.clock.Now()
	c.clock.Advance(k.cfg.SwitchBaseCycles)

	if k.cfg.FlushOnSwitch {
		k.hier.FlushAll()
	}
	if in != nil {
		// Partitioned (DAWG-lite) hierarchies confine each security domain
		// to its ways; processes map to domains by PID.
		k.hier.SetActiveDomain(k.hier.CoreOf(c.ctx), in.PID)
	}
	// Runtime defenses (FASE-style selective flushing) act at the switch and
	// charge their cost inside the switch window, so it lands in
	// Stats.SwitchCycles like the base and bookkeeping components.
	outPID, inPID := 0, 0
	if out != nil {
		outPID = out.PID
	}
	if in != nil {
		inPID = in.PID
	}
	if cost := k.hier.DefenseSwitch(k.hier.CoreOf(c.ctx), outPID, inPID, c.clock.Now()); cost > 0 {
		c.clock.Advance(cost)
	}

	var bkStart, bkEnd uint64
	if len(c.secCaches) > 0 {
		if out != nil {
			for _, cc := range c.secCaches {
				// Reuse the process's saved-column buffer across switches;
				// the first save on each cache allocates it once.
				cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, out.savedBuf(cc.Cache))
			}
			out.Ts = c.clock.Now()
			out.everRan = true
		}
		if in != nil {
			now := c.clock.Now()
			for _, cc := range c.secCaches {
				var v core.SecVec
				if in.everRan {
					v = in.savedFor(cc.Cache)
				}
				cc.Cache.Sec().RestoreColumn(cc.LocalCtx, v, in.Ts, now)
			}
		}
		// The paper charges a single DMA transfer per switch for the save
		// and restore of the s-bit buffer (cost precomputed per context).
		bk := c.switchCost
		bkStart = c.clock.Now()
		c.clock.Advance(bk)
		bkEnd = c.clock.Now()
		k.Stats.BookkeepingCycles += bk
	}
	k.Stats.SwitchCycles += c.clock.Now() - start
	if in != nil {
		in.Stats.Switches++
	}
	if k.probe != nil {
		ev := SwitchEvent{
			Core: c.id, Start: start, End: c.clock.Now(),
			BookkeepStart: bkStart, BookkeepEnd: bkEnd,
		}
		if out != nil {
			ev.OutPID, ev.OutName = out.PID, out.Name
		}
		if in != nil {
			ev.InPID, ev.InName = in.PID, in.Name
		}
		k.probe.OnContextSwitch(ev)
	}
}

// schedule picks the next process for core c and performs the context
// switch. Returns false if the core has nothing runnable.
func (k *Kernel) schedule(c *coreState) bool {
	k.wakeSleepers(c)
	if len(c.runq) == 0 {
		// If everything is sleeping, skip idle time to the earliest wake.
		var earliest uint64
		found := false
		for _, p := range k.procs {
			if p.Core == c.id && p.State == Sleeping {
				if !found || p.wakeAt < earliest {
					earliest, found = p.wakeAt, true
				}
			}
		}
		if !found {
			return false
		}
		if earliest > c.clock.Now() {
			c.clock.AdvanceTo(earliest)
		}
		k.wakeSleepers(c)
		if len(c.runq) == 0 {
			return false
		}
	}
	next := c.runq[0]
	c.runq = c.runq[1:]
	out := c.prev
	// Avoid charging a switch when the same single process continues.
	if out != next {
		k.contextSwitch(c, out, next)
	}
	c.prev = nil
	c.cur = next
	next.State = Running
	c.runStart = c.clock.Now()
	c.sliceEnd = c.clock.Now() + k.cfg.SliceCycles
	c.sliceInstrs = 0
	return true
}

func (k *Kernel) wakeSleepers(c *coreState) {
	for _, p := range k.procs {
		if p.Core == c.id && p.State == Sleeping && p.wakeAt <= c.clock.Now() {
			p.State = Ready
			c.runq = append(c.runq, p)
		}
	}
}

// stepCurrent runs one instruction of the core's current process, handling
// faults and termination. Returns whether the process remains current.
func (k *Kernel) stepCurrent(c *coreState) {
	p := c.cur
	env := &procEnv{k: k, cpu: c, proc: p}
	before := c.clock.Now()
	alive := func() (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if pf, isFault := r.(*procFault); isFault {
					p.Err = pf.err
					p.State = Exited
					ok = false
					return
				}
				panic(r)
			}
		}()
		return p.Proc.Step(env)
	}()
	p.Stats.CPUCycles += c.clock.Now() - before
	if k.probe != nil {
		k.probe.AfterStep(c.id, c.clock.Now())
	}

	if !alive || p.State == Exited {
		if p.State != Exited {
			p.State = Exited
		}
		p.Stats.FinishedAt = c.clock.Now()
		k.endRunSpan(c, p)
		// An exited process's caching context need not be saved; the next
		// restore clears its hardware s-bits.
		c.cur, c.prev = nil, nil
		return
	}
	if p.State == Sleeping {
		k.endRunSpan(c, p)
		c.cur, c.prev = nil, p
		return
	}
	if c.clock.Now() >= c.sliceEnd {
		// Preempt: back of the queue. If nothing else is runnable the
		// scheduler will immediately re-pick it without a switch charge.
		k.endRunSpan(c, p)
		p.State = Ready
		c.runq = append(c.runq, p)
		c.cur, c.prev = nil, p
	}
}

// endRunSpan reports the on-core occupancy span ending now for p.
func (k *Kernel) endRunSpan(c *coreState, p *Process) {
	if k.probe != nil {
		k.probe.OnRunSpan(c.id, p.PID, p.Name, c.runStart, c.clock.Now())
	}
}

// Interrupt asks a Run in progress (possibly on another goroutine) to stop
// at its next checkpoint. The request is sticky: it persists until
// ClearInterrupt or Reset, so an interrupt delivered between runs still
// stops the next Run immediately. Interrupt never perturbs simulated state —
// an interrupted run simply ends early, and Interrupted()/AllExited() tell
// the caller it did.
func (k *Kernel) Interrupt() { k.interrupted.Store(true) }

// Interrupted reports whether an Interrupt request is pending.
func (k *Kernel) Interrupted() bool { return k.interrupted.Load() }

// ClearInterrupt withdraws a pending Interrupt request.
func (k *Kernel) ClearInterrupt() { k.interrupted.Store(false) }

// interruptStride is how many scheduler steps Run executes between polls of
// the interrupt flag: coarse enough that the atomic load vanishes against
// the cost of a step, fine enough that cancellation lands in microseconds.
const interruptStride = 1024

// RunCtx is Run bounded by a context: when ctx is cancelled (client
// disconnect, deadline, SIGTERM drain) the machine stops at the next
// interrupt checkpoint and RunCtx returns the clock reached so far. The
// caller distinguishes completion from cancellation via ctx.Err() and
// AllExited. A nil or never-cancelled context behaves exactly like Run.
func (k *Kernel) RunCtx(ctx context.Context, maxCycles uint64) uint64 {
	if ctx == nil || ctx.Done() == nil {
		return k.Run(maxCycles)
	}
	if ctx.Err() != nil {
		return k.maxClock()
	}
	// After a cancelled run the flag intentionally stays set: the machine is
	// mid-workload and must be Reset before reuse (Reset clears it). That
	// reasoning only holds if the callback cannot fire after RunCtx returns —
	// a late Interrupt landing after the next Reset would spuriously abort an
	// unrelated run on a pooled machine. AfterFunc's stop does not wait for
	// an in-flight callback, so when stop reports the callback has started we
	// block until it completes before returning.
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		k.Interrupt()
		close(fired)
	})
	n := k.Run(maxCycles)
	if !stop() {
		<-fired
	}
	return n
}

// Run advances the machine until every process has exited or any core's
// clock passes maxCycles. It returns the maximum core clock reached.
func (k *Kernel) Run(maxCycles uint64) uint64 {
	sincePoll := interruptStride - 1 // poll on the first iteration
	for {
		if sincePoll++; sincePoll >= interruptStride {
			sincePoll = 0
			if k.interrupted.Load() {
				break
			}
		}
		// Pick the live core whose next event is earliest, keeping
		// cross-core interleaving fine-grained, deterministic, and causally
		// ordered. A core whose processes are all sleeping will fast-forward
		// its clock to the earliest wake, so its effective time is that
		// wake-up, not its current clock.
		var c *coreState
		var cTime uint64
		for _, cand := range k.cores {
			if cand.cur == nil && !k.coreHasWork(cand) {
				continue
			}
			t := k.nextEventTime(cand)
			if c == nil || t < cTime {
				c, cTime = cand, t
			}
		}
		if c == nil {
			break // all processes exited
		}
		if cTime >= maxCycles {
			break
		}
		if c.cur == nil {
			if !k.schedule(c) {
				// Nothing runnable ever again on this core.
				continue
			}
		}
		k.stepCurrent(c)
	}
	return k.maxClock()
}

// maxClock returns the highest core clock.
func (k *Kernel) maxClock() uint64 {
	var maxT uint64
	for _, c := range k.cores {
		if c.clock.Now() > maxT {
			maxT = c.clock.Now()
		}
	}
	return maxT
}

// nextEventTime returns the simulation time of core c's next action: its
// clock if something is runnable now, otherwise the earliest sleeper wake.
func (k *Kernel) nextEventTime(c *coreState) uint64 {
	if c.cur != nil || len(c.runq) > 0 {
		return c.clock.Now()
	}
	var earliest uint64
	found := false
	for _, p := range k.procs {
		if p.Core == c.id && p.State == Sleeping {
			if !found || p.wakeAt < earliest {
				earliest, found = p.wakeAt, true
			}
		}
	}
	if found && earliest > c.clock.Now() {
		return earliest
	}
	return c.clock.Now()
}

func (k *Kernel) coreHasWork(c *coreState) bool {
	if len(c.runq) > 0 {
		return true
	}
	for _, p := range k.procs {
		if p.Core == c.id && p.State == Sleeping {
			return true
		}
	}
	return false
}

// CoreClock returns core c's current cycle count.
func (k *Kernel) CoreClock(c int) uint64 { return k.cores[c].clock.Now() }

// AllExited reports whether every process has terminated.
func (k *Kernel) AllExited() bool {
	for _, p := range k.procs {
		if p.State != Exited {
			return false
		}
	}
	return true
}
