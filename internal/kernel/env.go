package kernel

import (
	"timecache/internal/cache"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

// procEnv implements sim.Env for the process currently running on a core.
// It routes memory traffic through the hierarchy under the core's hardware
// context, charges latencies to the core clock, and dispatches syscalls to
// the kernel.
type procEnv struct {
	k    *Kernel
	cpu  *coreState
	proc *Process
}

var _ sim.Env = (*procEnv)(nil)

func (e *procEnv) Now() uint64 { return e.cpu.clock.Now() }

func (e *procEnv) Tick(n uint64) { e.cpu.clock.Advance(n) }

func (e *procEnv) Instret(n uint64) {
	e.proc.Stats.Instructions += n
	e.cpu.sliceInstrs += n
}

func (e *procEnv) PID() int { return e.proc.PID }

// translate resolves a virtual address with a small per-process TLB.
func (e *procEnv) translate(vaddr uint64, write bool) uint64 {
	p := e.proc
	if p.tlbVer != p.AS.Version() {
		p.flushTLB()
		p.tlbVer = p.AS.Version()
	}
	vp := vaddr >> mem.PageShift
	slot := &p.tlb[vp%tlbEntries]
	if slot.vpage == vp+1 && (!write || slot.write) {
		return slot.base | (vaddr & (mem.PageSize - 1))
	}
	pa, brokeCOW, err := p.AS.Translate(vaddr, write)
	if err != nil {
		panic(&procFault{err})
	}
	if brokeCOW {
		e.cpu.clock.Advance(e.k.cfg.MinorFaultCycles)
		e.k.Stats.COWBreaks++
		p.tlbVer = p.AS.Version()
		p.flushTLB()
	}
	slot = &p.tlb[vp%tlbEntries] // flushTLB may have cleared it
	*slot = tlbEntry{vpage: vp + 1, base: pa &^ (mem.PageSize - 1), write: write}
	return pa
}

// procFault carries a fatal process error (page fault, protection violation)
// out of the Env methods; the scheduler recovers it and kills the process.
type procFault struct{ err error }

func (e *procEnv) access(vaddr uint64, kind cache.Kind) uint64 {
	write := kind == cache.Store
	pa := e.translate(vaddr, write)
	r := &e.cpu.req
	r.Now, r.Ctx, r.Addr, r.Kind = e.cpu.clock.Now(), e.cpu.ctx, pa, kind
	e.k.hier.Serve(r)
	e.cpu.clock.Advance(r.Latency)
	return pa
}

func (e *procEnv) Fetch(vaddr uint64) { e.access(vaddr, cache.Fetch) }

func (e *procEnv) Load(vaddr uint64) uint64 {
	pa := e.access(vaddr, cache.Load)
	return e.k.phys.ReadU64(pa &^ 7)
}

func (e *procEnv) Store(vaddr uint64, v uint64) {
	pa := e.access(vaddr, cache.Store)
	e.k.phys.WriteU64(pa&^7, v)
}

func (e *procEnv) Flush(vaddr uint64) {
	pa := e.translate(vaddr, false)
	r := &e.cpu.req
	r.Now, r.Ctx, r.Addr = e.cpu.clock.Now(), e.cpu.ctx, pa
	e.k.hier.ServeFlush(r)
	e.cpu.clock.Advance(r.Latency)
}

func (e *procEnv) Syscall(num, arg uint64) uint64 {
	return e.k.syscall(e.cpu, e.proc, num, arg)
}
