package kernel

import (
	"timecache/internal/cache"
	"timecache/internal/core"
	"timecache/internal/sim"
)

// ProcState is a process's scheduler state.
type ProcState int

// Process states.
const (
	Ready ProcState = iota
	Running
	Sleeping
	Exited
)

func (s ProcState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Sleeping:
		return "sleeping"
	case Exited:
		return "exited"
	}
	return "unknown"
}

// ProcStats accumulates per-process accounting.
type ProcStats struct {
	// Instructions retired by the process.
	Instructions uint64
	// CPUCycles is the time the process spent scheduled.
	CPUCycles uint64
	// FinishedAt is the core clock when the process exited (0 if running).
	FinishedAt uint64
	// Switches counts times the process was scheduled in.
	Switches uint64
}

// Process is a schedulable program instance.
type Process struct {
	PID  int
	Name string
	Core int // core affinity (fixed at spawn)

	AS   *AddressSpace
	Proc sim.Proc

	State  ProcState
	wakeAt uint64

	// Ts is the process's preemption timestamp (full width); the paper's
	// "context-switch timestamp" saved by software.
	Ts uint64
	// everRan marks that saved s-bit columns exist; a process that never
	// ran restores an all-zero caching context.
	everRan bool
	// saved holds the process's s-bit column per cache, written at
	// preemption and consumed at resumption. A process saves columns for
	// at most a handful of caches (its core's L1I/L1D plus shared levels),
	// so a linearly scanned slice beats a map on the switch path.
	saved []savedColumn

	// ExitCode is the SysExit argument (VM programs) or 0.
	ExitCode uint64
	// Err records a fault that killed the process.
	Err error

	Stats ProcStats

	// tlb is the process's cached translations (invalidated on page-table
	// version changes).
	tlb    [tlbEntries]tlbEntry
	tlbVer uint64
}

// savedColumn pairs a cache with the process's saved s-bit column for it.
type savedColumn struct {
	cache *cache.Cache
	buf   core.SecVec
}

// savedBuf returns the process's saved-column buffer for c, allocating it on
// the first save against that cache and reusing it thereafter.
func (p *Process) savedBuf(c *cache.Cache) core.SecVec {
	for i := range p.saved {
		if p.saved[i].cache == c {
			return p.saved[i].buf
		}
	}
	buf := make(core.SecVec, core.VecWords(c.Lines()))
	p.saved = append(p.saved, savedColumn{cache: c, buf: buf})
	return buf
}

// savedFor returns the process's saved column for c, or nil if it has never
// been saved against that cache.
func (p *Process) savedFor(c *cache.Cache) core.SecVec {
	for i := range p.saved {
		if p.saved[i].cache == c {
			return p.saved[i].buf
		}
	}
	return nil
}

type tlbEntry struct {
	vpage uint64 // vaddr >> PageShift, +1 so zero value is invalid
	base  uint64 // physical page base
	write bool   // translation valid for writes
}

const tlbEntries = 8

func (p *Process) flushTLB() {
	p.tlb = [tlbEntries]tlbEntry{}
}
