package kernel

import (
	"encoding/binary"

	"timecache/internal/isa"
	"timecache/internal/mem"
	"timecache/internal/vm"
)

// LoadOptions controls program loading.
type LoadOptions struct {
	// Core is the core affinity for the new process.
	Core int
	// ShareKey, when non-empty, maps the program's text and shared segments
	// to a named shared region: processes loaded with the same key share
	// those physical frames, like processes running the same binary against
	// the same shared library. When empty, all segments are private.
	ShareKey string
	// Name labels the process; defaults to the share key or "prog".
	Name string
}

// Load assembles an address space for prog, installs its segments, and
// spawns a vm.CPU process executing it. It returns both the process and the
// CPU so callers can inspect registers and output after the run.
func (k *Kernel) Load(prog *isa.Program, opts LoadOptions) (*Process, *vm.CPU, error) {
	name := opts.Name
	if name == "" {
		if opts.ShareKey != "" {
			name = opts.ShareKey
		} else {
			name = "prog"
		}
	}
	as := NewAddressSpace(k.phys)

	textImg := EncodeText(prog.Instrs)
	if opts.ShareKey != "" {
		if err := k.mapSharedImage(as, opts.ShareKey+".text", prog.TextBase, textImg, false); err != nil {
			return nil, nil, err
		}
		if len(prog.Shared) > 0 {
			// The .shared segment models shared data (a memory-mapped
			// region), so unlike text it stays writable.
			if err := k.mapSharedImage(as, opts.ShareKey+".lib", prog.SharedBase, prog.Shared, true); err != nil {
				return nil, nil, err
			}
		}
	} else {
		if err := k.mapPrivateImage(as, prog.TextBase, textImg, false); err != nil {
			return nil, nil, err
		}
		if len(prog.Shared) > 0 {
			if err := k.mapPrivateImage(as, prog.SharedBase, prog.Shared, true); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(prog.Data) > 0 {
		if err := k.mapPrivateImage(as, prog.DataBase, prog.Data, true); err != nil {
			return nil, nil, err
		}
	}
	stackBase := (prog.StackTop - prog.StackSize) &^ (mem.PageSize - 1)
	if err := as.MapAnon(stackBase, prog.StackSize+mem.PageSize, true); err != nil {
		return nil, nil, err
	}

	cpu := vm.New(prog)
	p, err := k.Spawn(name, cpu, as, opts.Core)
	if err != nil {
		return nil, nil, err
	}
	return p, cpu, nil
}

// mapSharedImage maps a named shared region at vaddr, initializing its
// contents on first creation. Text images are mapped read-only; shared
// data segments writable.
func (k *Kernel) mapSharedImage(as *AddressSpace, key string, vaddr uint64, img []byte, writable bool) error {
	size := uint64(len(img))
	if size == 0 {
		size = 1
	}
	_, existed := k.regions[key]
	frames, err := k.SharedRegion(key, size)
	if err != nil {
		return err
	}
	if !existed {
		k.writeImage(frames, img)
	}
	return as.MapShared(vaddr, frames, writable)
}

// mapPrivateImage allocates private frames at vaddr holding img.
func (k *Kernel) mapPrivateImage(as *AddressSpace, vaddr uint64, img []byte, writable bool) error {
	size := uint64(len(img))
	if err := as.MapAnon(vaddr, size, writable); err != nil {
		return err
	}
	for off := 0; off < len(img); off += mem.PageSize {
		f, _ := as.FrameAt(vaddr + uint64(off))
		end := off + mem.PageSize
		if end > len(img) {
			end = len(img)
		}
		copy(k.phys.Page(f), img[off:end])
	}
	return nil
}

func (k *Kernel) writeImage(frames []mem.Frame, img []byte) {
	for off := 0; off < len(img); off += mem.PageSize {
		end := off + mem.PageSize
		if end > len(img) {
			end = len(img)
		}
		copy(k.phys.Page(frames[off/mem.PageSize]), img[off:end])
	}
}

// EncodeText serializes instructions into their 8-byte memory encoding:
// opcode, rd, rs, rt, then the low 32 bits of the immediate. The VM decodes
// from the Program directly; the encoded bytes exist so text pages have
// deterministic contents (letting page deduplication merge identical
// binaries) and so fetch addresses are backed by real memory.
func EncodeText(instrs []isa.Instr) []byte {
	out := make([]byte, len(instrs)*isa.InstrBytes)
	for i, in := range instrs {
		b := out[i*isa.InstrBytes:]
		b[0] = byte(in.Op)
		b[1] = in.Rd
		b[2] = in.Rs
		b[3] = in.Rt
		binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	}
	return out
}

// MapAnonRegion is a convenience for native (non-VM) procs: it maps size
// bytes of zeroed private memory at vaddr in as.
func (k *Kernel) MapAnonRegion(as *AddressSpace, vaddr, size uint64) error {
	return as.MapAnon(vaddr, size, true)
}

// MapSharedRegion maps a named shared region (creating it on first use) at
// vaddr in as, writable. Native attacker/victim pairs use this as their
// shared memory-mapped segment.
func (k *Kernel) MapSharedRegion(as *AddressSpace, key string, vaddr, size uint64) error {
	frames, err := k.SharedRegion(key, size)
	if err != nil {
		return err
	}
	return as.MapShared(vaddr, frames, true)
}

// Fork creates a child address space sharing all of parent's private pages
// copy-on-write (shared-region mappings are shared outright), modeling a
// unix fork for the dedup/COW experiments.
func (k *Kernel) Fork(parent *AddressSpace) (*AddressSpace, error) {
	child := NewAddressSpace(k.phys)
	for vp, m := range parent.pages {
		k.phys.Ref(m.frame)
		nm := &mapping{frame: m.frame, writable: m.writable, shared: m.shared}
		if !m.shared && m.writable {
			nm.cow = true
			m.cow = true
		}
		child.pages[vp] = nm
	}
	parent.version++
	child.version++
	return child, nil
}
