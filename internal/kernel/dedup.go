package kernel

import "timecache/internal/mem"

// DedupScan performs one KSM-style same-page-merging pass over every
// process's private anonymous pages: pages with identical contents are
// merged onto a single frame, with all mappings marked copy-on-write.
// It returns the number of pages merged.
//
// This is the memory-saving optimization the paper's introduction motivates:
// it creates cross-process physical sharing — and hence a reuse side
// channel — which TimeCache makes safe to deploy.
func (k *Kernel) DedupScan() int {
	type slot struct {
		as *AddressSpace
		vp uint64
		m  *mapping
	}
	byHash := map[uint64][]slot{}
	seen := map[*AddressSpace]bool{}
	for _, p := range k.procs {
		if p.State == Exited || seen[p.AS] {
			continue
		}
		seen[p.AS] = true
		p.AS.anonPages(func(vp uint64, m *mapping) {
			h := k.phys.HashFrame(m.frame)
			byHash[h] = append(byHash[h], slot{p.AS, vp, m})
		})
	}
	merged := 0
	for _, slots := range byHash {
		if len(slots) < 2 {
			continue
		}
		// Merge every matching frame onto the first verified-equal one.
		for i := 1; i < len(slots); i++ {
			a, b := slots[0], slots[i]
			if a.m.frame == b.m.frame {
				continue
			}
			if !k.phys.SameContents(a.m.frame, b.m.frame) {
				continue // hash collision; leave untouched
			}
			k.phys.Ref(a.m.frame)
			k.phys.Unref(b.m.frame)
			b.m.frame = a.m.frame
			b.m.cow = b.m.writable
			a.m.cow = a.m.writable
			a.as.version++
			b.as.version++
			merged++
		}
	}
	k.Stats.DedupMerged += uint64(merged)
	// Invalidate cached translations: the TLBs check the version counter,
	// which the merges bumped.
	return merged
}

// SavedFrames reports how many frames dedup is currently saving: the sum
// over shared anonymous frames of (refs - 1). Approximate bookkeeping for
// the dedup example.
func (k *Kernel) SavedFrames() int {
	counted := map[mem.Frame]bool{}
	saved := 0
	seen := map[*AddressSpace]bool{}
	for _, p := range k.procs {
		if seen[p.AS] {
			continue
		}
		seen[p.AS] = true
		p.AS.anonPages(func(vp uint64, m *mapping) {
			if m.cow && !counted[m.frame] {
				counted[m.frame] = true
				saved += k.phys.Refs(m.frame) - 1
			}
		})
	}
	return saved
}
