package kernel

import (
	"fmt"

	"timecache/internal/sim"
)

// RunInline executes fn synchronously in the context of process p on its
// CPU, outside the scheduler loop. The function receives the same Env the
// scheduler would hand to p's Proc, so memory operations go through p's
// address space and hardware context and charge p's core clock.
//
// It is intended for setup and measurement phases that are naturally
// imperative — e.g. an attacker calibrating thresholds or discovering
// eviction sets before the scheduled phase of an experiment — and may only
// be used while the scheduler is idle (no process is Running). A context
// switch (with its TimeCache bookkeeping) is performed if p is not the
// CPU's current process, so s-bit state remains correct.
func (k *Kernel) RunInline(p *Process, fn func(env sim.Env)) error {
	if p.State == Exited {
		return fmt.Errorf("kernel: RunInline on exited process %d", p.PID)
	}
	c := k.cores[p.Core]
	if c.cur != nil {
		return fmt.Errorf("kernel: RunInline while CPU %d is running %q", c.id, c.cur.Name)
	}
	if c.prev != p {
		k.contextSwitch(c, c.prev, p)
	}
	c.prev = nil
	prevState := p.State
	p.State = Running
	fn(&procEnv{k: k, cpu: c, proc: p})
	if p.State == Running {
		p.State = prevState
	}
	c.prev = p
	return nil
}
