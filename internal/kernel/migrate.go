package kernel

import (
	"fmt"

	"timecache/internal/core"
)

// Migrate moves a ready or sleeping process to another logical CPU. The
// TimeCache consequences mirror real hardware: the process's saved s-bit
// columns are keyed by cache, so its LLC caching context survives the move
// (the LLC is shared), while columns for the old core's private L1s no
// longer apply — on the new core the L1 columns restore empty and the
// process pays first accesses there, exactly as a freshly migrated process
// re-warms its new L1s. Security is unaffected in either direction.
func (k *Kernel) Migrate(p *Process, newCPU int) error {
	if newCPU < 0 || newCPU >= len(k.cores) {
		return fmt.Errorf("kernel: cpu %d out of range", newCPU)
	}
	if p.State == Running {
		return fmt.Errorf("kernel: cannot migrate running process %d", p.PID)
	}
	if p.State == Exited {
		return fmt.Errorf("kernel: cannot migrate exited process %d", p.PID)
	}
	if p.Core == newCPU {
		return nil
	}
	old := k.cores[p.Core]
	// Remove from the old run queue if queued.
	for i, q := range old.runq {
		if q == p {
			old.runq = append(old.runq[:i], old.runq[i+1:]...)
			break
		}
	}
	// If the process's s-bits are still live in the old core's hardware
	// (it was the most recently descheduled there), save them now so the
	// shared-cache (LLC) column follows the process.
	if old.prev == p {
		for _, cc := range old.secCaches {
			buf := p.saved[cc.Cache]
			if buf == nil {
				buf = make(core.SecVec, core.VecWords(cc.Cache.Lines()))
				p.saved[cc.Cache] = buf
			}
			cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, buf)
		}
		p.Ts = old.clock.Now()
		p.everRan = true
		old.prev = nil
	}
	// Drop saved columns for caches the new CPU does not share: the
	// restore on the new core would not find them anyway, but pruning
	// keeps the software-side caching context honest (and bounded).
	keep := map[interface{}]bool{}
	for _, cc := range k.cores[newCPU].secCaches {
		keep[cc.Cache] = true
	}
	for c := range p.saved {
		if !keep[c] {
			delete(p.saved, c)
		}
	}
	p.Core = newCPU
	// The destination clock may trail the origin; the process's Ts must
	// not be in the destination's future, or restored lines would be
	// spuriously reset forever. Clamp to the destination clock (safe:
	// a smaller Ts only causes extra conservative resets).
	if ts := k.cores[newCPU].clock.Now(); p.Ts > ts {
		p.Ts = ts
	}
	if p.State == Ready {
		k.cores[newCPU].runq = append(k.cores[newCPU].runq, p)
	}
	k.Stats.Migrations++
	return nil
}
