package kernel

import "fmt"

// Migrate moves a ready or sleeping process to another logical CPU. The
// TimeCache consequences mirror real hardware: the process's saved s-bit
// columns are keyed by cache, so its LLC caching context survives the move
// (the LLC is shared), while columns for the old core's private L1s no
// longer apply — on the new core the L1 columns restore empty and the
// process pays first accesses there, exactly as a freshly migrated process
// re-warms its new L1s. Security is unaffected in either direction.
func (k *Kernel) Migrate(p *Process, newCPU int) error {
	if newCPU < 0 || newCPU >= len(k.cores) {
		return fmt.Errorf("kernel: cpu %d out of range", newCPU)
	}
	if p.State == Running {
		return fmt.Errorf("kernel: cannot migrate running process %d", p.PID)
	}
	if p.State == Exited {
		return fmt.Errorf("kernel: cannot migrate exited process %d", p.PID)
	}
	if p.Core == newCPU {
		return nil
	}
	old := k.cores[p.Core]
	// Remove from the old run queue if queued.
	for i, q := range old.runq {
		if q == p {
			old.runq = append(old.runq[:i], old.runq[i+1:]...)
			break
		}
	}
	// If the process's s-bits are still live in the old core's hardware
	// (it was the most recently descheduled there), save them now so the
	// shared-cache (LLC) column follows the process.
	if old.prev == p {
		for _, cc := range old.secCaches {
			cc.Cache.Sec().SaveColumnInto(cc.LocalCtx, p.savedBuf(cc.Cache))
		}
		p.Ts = old.clock.Now()
		p.everRan = true
		old.prev = nil
	}
	// Drop saved columns for caches the new CPU does not share: the
	// restore on the new core would not find them anyway, but pruning
	// keeps the software-side caching context honest (and bounded).
	kept := p.saved[:0]
	for _, sc := range p.saved {
		for _, cc := range k.cores[newCPU].secCaches {
			if cc.Cache == sc.cache {
				kept = append(kept, sc)
				break
			}
		}
	}
	for i := len(kept); i < len(p.saved); i++ {
		p.saved[i] = savedColumn{}
	}
	p.saved = kept
	p.Core = newCPU
	// The destination clock may trail the origin; the process's Ts must
	// not be in the destination's future, or restored lines would be
	// spuriously reset forever. Clamp to the destination clock (safe:
	// a smaller Ts only causes extra conservative resets).
	if ts := k.cores[newCPU].clock.Now(); p.Ts > ts {
		p.Ts = ts
	}
	if p.State == Ready {
		k.cores[newCPU].runq = append(k.cores[newCPU].runq, p)
	}
	k.Stats.Migrations++
	return nil
}
