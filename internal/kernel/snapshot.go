// Snapshot support: restoring one kernel's complete runtime state —
// process table, scheduler position, per-core clocks, saved s-bit columns,
// and address spaces — into another kernel built from the same Config over
// a same-shape hierarchy and physical memory. Machine forking
// (internal/machine) composes this with Hierarchy.CopyFrom and
// Physical.CopyFrom to clone a warm machine.
package kernel

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/core"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

// CopyFrom restores src's kernel state into k. Both kernels must be built
// from the same Config over hierarchies of the same shape; the caller
// (Machine.copyFrom) is responsible for also copying the hierarchy and
// physical memory, which this method does not touch. Pointer-valued state
// is remapped: cache pointers inside saved columns map positionally via
// Caches() order, cloned processes get cloned address spaces (preserving
// thread-sharing topology), and run-queue/current/previous slots point at
// the clones. src is only read — never mutated — so concurrent CopyFrom
// calls may share one frozen source.
//
// Every src process's Proc must implement sim.Forker; otherwise CopyFrom
// returns an error before modifying k.
func (k *Kernel) CopyFrom(src *Kernel) error {
	for _, sp := range src.procs {
		if _, ok := sp.Proc.(sim.Forker); !ok {
			return fmt.Errorf("kernel: process %q (%T) does not support snapshotting", sp.Name, sp.Proc)
		}
	}

	// Positional cache remap: both hierarchies enumerate Caches() in the
	// same construction order.
	srcCaches, dstCaches := src.hier.Caches(), k.hier.Caches()
	cmap := make(map[*cache.Cache]*cache.Cache, len(srcCaches))
	for i, c := range srcCaches {
		cmap[c] = dstCaches[i]
	}

	// Clone the process table. Address spaces are deduplicated through an
	// identity map so threads that share an AS in src share one clone in k.
	asMap := make(map[*AddressSpace]*AddressSpace)
	cloneAS := func(sas *AddressSpace) *AddressSpace {
		if sas == nil {
			return nil
		}
		if d, ok := asMap[sas]; ok {
			return d
		}
		d := &AddressSpace{
			phys:    k.phys,
			pages:   make(map[uint64]*mapping, len(sas.pages)),
			version: sas.version,
			refs:    sas.refs,
		}
		for vp, m := range sas.pages {
			mc := *m
			d.pages[vp] = &mc
		}
		asMap[sas] = d
		return d
	}
	pmap := make(map[*Process]*Process, len(src.procs))
	k.procs = k.procs[:0]
	for _, sp := range src.procs {
		p := &Process{}
		*p = *sp // flat fields: PID/Name/Core/State/wakeAt/Ts/everRan/ExitCode/Err/Stats/tlb/tlbVer
		p.Proc = sp.Proc.(sim.Forker).ForkProc()
		p.AS = cloneAS(sp.AS)
		// Deep-copy the saved s-bit columns, remapping their cache keys.
		// Read sp.saved directly — savedBuf would append to the source.
		p.saved = make([]savedColumn, len(sp.saved))
		for i, sc := range sp.saved {
			buf := make(core.SecVec, len(sc.buf))
			copy(buf, sc.buf)
			p.saved[i] = savedColumn{cache: cmap[sc.cache], buf: buf}
		}
		pmap[sp] = p
		k.procs = append(k.procs, p)
	}
	k.nextPID = src.nextPID

	// Scheduler position per core. secCaches/secLineCounts/switchCost are
	// construction invariants and req is per-access scratch; none change
	// after New, so they are not copied.
	for i, sc := range src.cores {
		dc := k.cores[i]
		dc.clock = sc.clock
		dc.runq = dc.runq[:0]
		for _, p := range sc.runq {
			dc.runq = append(dc.runq, pmap[p])
		}
		dc.cur = pmap[sc.cur] // pmap[nil] == nil
		dc.prev = pmap[sc.prev]
		dc.sliceEnd = sc.sliceEnd
		dc.sliceInstrs = sc.sliceInstrs
		dc.runStart = sc.runStart
	}

	// Kernel-level bookkeeping. Frame numbers are identical across
	// same-Config machines (allocation order is deterministic), so region
	// and kernel-text frame lists copy by value.
	clear(k.regions)
	for name, frames := range src.regions {
		k.regions[name] = append([]mem.Frame(nil), frames...)
	}
	k.kernelText = append(k.kernelText[:0], src.kernelText...)
	k.Stats = src.Stats
	k.probe = nil
	k.interrupted.Store(false)
	return nil
}
