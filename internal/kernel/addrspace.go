// Package kernel is the software half of the simulation: processes with
// virtual address spaces, a per-core round-robin scheduler, the context
// switch bookkeeping that saves/restores TimeCache s-bit columns (paper
// §IV-C), syscalls, and KSM-style page deduplication.
package kernel

import (
	"fmt"

	"timecache/internal/mem"
)

// mapping describes one virtual page's backing.
type mapping struct {
	frame    mem.Frame
	writable bool
	// cow marks a writable mapping whose frame is shared and must be
	// copied on the first write.
	cow bool
	// shared marks pages backed by a named shared region (library text or
	// explicitly shared memory); dedup never merges into or out of these,
	// and COW does not apply.
	shared bool
}

// AddressSpace is a per-process page table.
type AddressSpace struct {
	phys  *mem.Physical
	pages map[uint64]*mapping // keyed by vaddr >> PageShift
	// version increments on every table change so cached translations
	// (the Env's TLB) can be invalidated.
	version uint64
	// refs counts processes sharing this address space (threads).
	refs int
}

// NewAddressSpace creates an empty address space over phys.
func NewAddressSpace(phys *mem.Physical) *AddressSpace {
	return &AddressSpace{phys: phys, pages: map[uint64]*mapping{}, refs: 1}
}

// Version returns the current page-table version.
func (as *AddressSpace) Version() uint64 { return as.version }

// MapAnon maps [vaddr, vaddr+size) to fresh zeroed private frames.
func (as *AddressSpace) MapAnon(vaddr, size uint64, writable bool) error {
	return as.mapRange(vaddr, size, func() (mem.Frame, error) { return as.phys.Alloc() },
		func(m *mapping) { m.writable = writable })
}

// MapShared maps [vaddr, vaddr+len(frames)*PageSize) to the given shared
// frames, taking a reference on each.
func (as *AddressSpace) MapShared(vaddr uint64, frames []mem.Frame, writable bool) error {
	if vaddr&(mem.PageSize-1) != 0 {
		return fmt.Errorf("kernel: unaligned mapping at %#x", vaddr)
	}
	for i, f := range frames {
		vp := (vaddr >> mem.PageShift) + uint64(i)
		if _, exists := as.pages[vp]; exists {
			return fmt.Errorf("kernel: page %#x already mapped", vp<<mem.PageShift)
		}
		as.phys.Ref(f)
		as.pages[vp] = &mapping{frame: f, writable: writable, shared: true}
	}
	as.version++
	return nil
}

func (as *AddressSpace) mapRange(vaddr, size uint64, alloc func() (mem.Frame, error), init func(*mapping)) error {
	if vaddr&(mem.PageSize-1) != 0 {
		return fmt.Errorf("kernel: unaligned mapping at %#x", vaddr)
	}
	npages := (size + mem.PageSize - 1) >> mem.PageShift
	for i := uint64(0); i < npages; i++ {
		vp := (vaddr >> mem.PageShift) + i
		if _, exists := as.pages[vp]; exists {
			return fmt.Errorf("kernel: page %#x already mapped", vp<<mem.PageShift)
		}
		f, err := alloc()
		if err != nil {
			return err
		}
		m := &mapping{frame: f}
		init(m)
		as.pages[vp] = m
	}
	as.version++
	return nil
}

// Translate resolves vaddr to a physical address. A write to a COW page
// copies the frame first and reports brokeCOW so the caller can charge a
// minor-fault latency.
func (as *AddressSpace) Translate(vaddr uint64, write bool) (pa uint64, brokeCOW bool, err error) {
	vp := vaddr >> mem.PageShift
	m, ok := as.pages[vp]
	if !ok {
		return 0, false, fmt.Errorf("kernel: page fault at %#x (unmapped)", vaddr)
	}
	if write {
		if !m.writable {
			return 0, false, fmt.Errorf("kernel: write to read-only page at %#x", vaddr)
		}
		if m.cow {
			if as.phys.Refs(m.frame) > 1 {
				nf, err := as.phys.CopyFrame(m.frame)
				if err != nil {
					return 0, false, err
				}
				as.phys.Unref(m.frame)
				m.frame = nf
				brokeCOW = true
			}
			m.cow = false
			as.version++
		}
	}
	return m.frame.Addr() | (vaddr & (mem.PageSize - 1)), brokeCOW, nil
}

// FrameAt returns the frame backing vaddr, for dedup and tests.
func (as *AddressSpace) FrameAt(vaddr uint64) (mem.Frame, bool) {
	m, ok := as.pages[vaddr>>mem.PageShift]
	if !ok {
		return 0, false
	}
	return m.frame, true
}

// Release drops one reference; when the last goes, all frames are unrefed.
func (as *AddressSpace) Release() {
	as.refs--
	if as.refs > 0 {
		return
	}
	for vp, m := range as.pages {
		as.phys.Unref(m.frame)
		delete(as.pages, vp)
	}
	as.version++
}

// Share adds a reference for a second process (thread) using this space.
func (as *AddressSpace) Share() *AddressSpace {
	as.refs++
	return as
}

// anonPages iterates private anonymous pages, used by the dedup scanner.
// Shared-region pages are skipped (they are already deduplicated by
// construction and belong to a named region).
func (as *AddressSpace) anonPages(fn func(vp uint64, m *mapping)) {
	for vp, m := range as.pages {
		if !m.shared {
			fn(vp, m)
		}
	}
}
