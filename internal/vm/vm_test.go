package vm

import (
	"strings"
	"testing"

	"timecache/internal/asm"
	"timecache/internal/isa"
	"timecache/internal/sim"
)

// fakeEnv is a flat-memory, unit-latency environment for VM semantics tests.
type fakeEnv struct {
	mem      map[uint64]uint64
	now      uint64
	flushes  []uint64
	syscalls []uint64
	exited   bool
	instrs   uint64
}

func newFakeEnv(p *isa.Program) *fakeEnv {
	e := &fakeEnv{mem: map[uint64]uint64{}}
	for i := 0; i+8 <= len(p.Data); i += 8 {
		e.mem[p.DataBase+uint64(i)] = le64(p.Data[i:])
	}
	for i := 0; i+8 <= len(p.Shared); i += 8 {
		e.mem[p.SharedBase+uint64(i)] = le64(p.Shared[i:])
	}
	return e
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func (e *fakeEnv) Fetch(uint64)     { e.now++ }
func (e *fakeEnv) Tick(n uint64)    { e.now += n }
func (e *fakeEnv) Instret(n uint64) { e.instrs += n }
func (e *fakeEnv) Now() uint64      { return e.now }
func (e *fakeEnv) PID() int         { return 1 }
func (e *fakeEnv) Load(a uint64) uint64 {
	e.now += 2
	return e.mem[a&^7]
}
func (e *fakeEnv) Store(a uint64, v uint64) {
	e.now += 2
	e.mem[a&^7] = v
}
func (e *fakeEnv) Flush(a uint64) { e.flushes = append(e.flushes, a); e.now += 40 }
func (e *fakeEnv) Syscall(num, arg uint64) uint64 {
	e.syscalls = append(e.syscalls, num)
	if num == sim.SysExit {
		e.exited = true
	}
	if num == sim.SysGetPID {
		return 1
	}
	return 0
}

func run(t *testing.T, src string, maxSteps int) (*CPU, *fakeEnv) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	e := newFakeEnv(p)
	for i := 0; i < maxSteps && c.Step(e); i++ {
	}
	if c.Fault != nil {
		t.Fatalf("fault: %v", c.Fault)
	}
	if !c.Halted() {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	return c, e
}

func TestArithmetic(t *testing.T) {
	c, _ := run(t, `
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2   ; 42
		addi r4, r3, 100  ; 142
		sub  r5, r4, r1   ; 136
		div  r6, r5, r2   ; 19
		mod  r7, r5, r2   ; 3
		xor  r8, r1, r2   ; 1
		shli r9, r2, 4    ; 112
		shri r10, r9, 2   ; 28
		not  r11, r0      ; all ones
		halt
	`, 100)
	want := map[int]uint64{3: 42, 4: 142, 5: 136, 6: 19, 7: 3, 8: 1, 9: 112, 10: 28, 11: ^uint64(0)}
	for r, v := range want {
		if c.Reg(r) != v {
			t.Errorf("r%d = %d, want %d", r, c.Reg(r), v)
		}
	}
}

func TestR0IsZero(t *testing.T) {
	c, _ := run(t, `
		movi r0, 99
		mov  r1, r0
		halt
	`, 10)
	if c.Reg(0) != 0 || c.Reg(1) != 0 {
		t.Fatal("r0 must stay zero")
	}
}

func TestLoopAndBranches(t *testing.T) {
	c, _ := run(t, `
		movi r1, 0      ; sum
		movi r2, 0      ; i
		movi r3, 10
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`, 1000)
	if c.Reg(1) != 45 {
		t.Fatalf("sum = %d, want 45", c.Reg(1))
	}
}

func TestMemoryAndDataSegment(t *testing.T) {
	c, _ := run(t, `
	.data
	vals: .quad 11, 22, 33
	out:  .quad 0
	.text
		movi r1, vals
		ld   r2, [r1]
		ld   r3, [r1+8]
		ld   r4, [r1+16]
		add  r5, r2, r3
		add  r5, r5, r4
		movi r6, out
		st   [r6], r5
		ld   r7, [r6]
		halt
	`, 100)
	if c.Reg(7) != 66 {
		t.Fatalf("stored sum = %d, want 66", c.Reg(7))
	}
}

func TestCallRetAndStack(t *testing.T) {
	c, _ := run(t, `
		movi r1, 5
		call double
		call double
		halt
	double:
		add r1, r1, r1
		ret
	`, 100)
	if c.Reg(1) != 20 {
		t.Fatalf("r1 = %d, want 20", c.Reg(1))
	}
}

func TestPushPop(t *testing.T) {
	c, _ := run(t, `
		movi r1, 7
		movi r2, 9
		push r1
		push r2
		pop  r3   ; 9
		pop  r4   ; 7
		halt
	`, 100)
	if c.Reg(3) != 9 || c.Reg(4) != 7 {
		t.Fatalf("pop order wrong: r3=%d r4=%d", c.Reg(3), c.Reg(4))
	}
}

func TestRdtscMonotonic(t *testing.T) {
	c, _ := run(t, `
		rdtsc r1
		ld    r3, [r0+4096]
		rdtsc r2
		halt
	`, 10)
	if c.Reg(2) <= c.Reg(1) {
		t.Fatal("rdtsc must advance across a load")
	}
}

func TestClflushReachesEnv(t *testing.T) {
	_, e := run(t, `
		movi r1, 0x2000
		clflush [r1+64]
		halt
	`, 10)
	if len(e.flushes) != 1 || e.flushes[0] != 0x2040 {
		t.Fatalf("flushes = %v, want [0x2040]", e.flushes)
	}
}

func TestSysExit(t *testing.T) {
	p, err := asm.Assemble("movi r1, 3\nsys 0\nnop")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	e := newFakeEnv(p)
	for c.Step(e) {
	}
	if !e.exited {
		t.Fatal("SysExit must reach the env")
	}
	if !c.Halted() {
		t.Fatal("exit must halt the CPU")
	}
}

func TestSysPrintCollectsOutput(t *testing.T) {
	c, _ := run(t, `
		movi r1, 123
		sys 4
		movi r1, 456
		sys 4
		halt
	`, 20)
	if len(c.Output) != 2 || c.Output[0] != 123 || c.Output[1] != 456 {
		t.Fatalf("output = %v", c.Output)
	}
}

func TestSysGetPIDReturnValue(t *testing.T) {
	c, _ := run(t, `
		sys 3
		halt
	`, 10)
	if c.Reg(1) != 1 {
		t.Fatalf("getpid returned %d, want 1", c.Reg(1))
	}
}

func TestDivByZeroFaults(t *testing.T) {
	p, err := asm.Assemble("movi r1, 1\ndiv r2, r1, r0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	e := newFakeEnv(p)
	for c.Step(e) {
	}
	if c.Fault == nil || !strings.Contains(c.Fault.Error(), "division by zero") {
		t.Fatalf("fault = %v", c.Fault)
	}
}

func TestRunOffTextFaults(t *testing.T) {
	p, err := asm.Assemble("nop")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	e := newFakeEnv(p)
	for c.Step(e) {
	}
	if c.Fault == nil {
		t.Fatal("running past text must fault")
	}
}

func TestRetiredCount(t *testing.T) {
	c, e := run(t, "nop\nnop\nnop\nhalt", 10)
	if c.Retired != 4 {
		t.Fatalf("retired = %d, want 4", c.Retired)
	}
	if e.instrs != 4 {
		t.Fatalf("env instret = %d, want 4", e.instrs)
	}
}
