// Package vm interprets μRISC programs. One CPU executes one program; each
// Step runs a single instruction: the fetch goes through the simulated L1I,
// loads/stores through the L1D, and every instruction charges at least one
// compute cycle, matching the TimingSimpleCPU model the paper evaluates on.
package vm

import (
	"fmt"

	"timecache/internal/isa"
	"timecache/internal/sim"
)

// CPU is a μRISC interpreter implementing sim.Proc.
type CPU struct {
	prog *isa.Program
	regs [isa.NumRegs]uint64
	pc   uint64

	halted bool
	// Fault holds the first execution fault (bad PC, division by zero);
	// the CPU halts when it faults.
	Fault error

	// Retired counts executed instructions.
	Retired uint64
	// Output collects SysPrint values for tests and examples.
	Output []uint64
}

// New creates a CPU ready to run prog from its entry point with the stack
// pointer set to the program's stack top.
func New(prog *isa.Program) *CPU {
	c := &CPU{prog: prog, pc: prog.Entry}
	c.regs[isa.RSP] = prog.StackTop
	return c
}

// Reg returns the value of register r.
func (c *CPU) Reg(r int) uint64 { return c.regs[r] }

// SetReg sets register r (r0 stays zero).
func (c *CPU) SetReg(r int, v uint64) {
	if r != isa.RZero {
		c.regs[r] = v
	}
}

// PC returns the current program counter.
func (c *CPU) PC() uint64 { return c.pc }

// Halted reports whether the CPU has executed HALT, exited, or faulted.
func (c *CPU) Halted() bool { return c.halted }

func (c *CPU) fault(format string, args ...any) bool {
	c.Fault = fmt.Errorf("vm: pc=%#x: %s", c.pc, fmt.Sprintf(format, args...))
	c.halted = true
	return false
}

// Step executes one instruction. It implements sim.Proc.
func (c *CPU) Step(env sim.Env) bool {
	if c.halted {
		return false
	}
	in, err := c.prog.InstrAt(c.pc)
	if err != nil {
		return c.fault("%v", err)
	}
	env.Fetch(c.pc)
	env.Tick(1)
	env.Instret(1)
	c.Retired++

	next := c.pc + isa.InstrBytes
	rd, rs, rt := int(in.Rd), int(in.Rs), int(in.Rt)
	switch in.Op {
	case isa.NOP, isa.FENCE:
		// FENCE orders memory with RDTSC; in this in-order one-access-at-a-
		// time model ordering is inherent, so it costs only its cycle.
	case isa.HALT:
		c.halted = true
		return false
	case isa.MOVI:
		c.SetReg(rd, uint64(in.Imm))
	case isa.MOV:
		c.SetReg(rd, c.regs[rs])
	case isa.ADD:
		c.SetReg(rd, c.regs[rs]+c.regs[rt])
	case isa.ADDI:
		c.SetReg(rd, c.regs[rs]+uint64(in.Imm))
	case isa.SUB:
		c.SetReg(rd, c.regs[rs]-c.regs[rt])
	case isa.MUL:
		c.SetReg(rd, c.regs[rs]*c.regs[rt])
	case isa.DIV:
		if c.regs[rt] == 0 {
			return c.fault("division by zero")
		}
		c.SetReg(rd, c.regs[rs]/c.regs[rt])
	case isa.MOD:
		if c.regs[rt] == 0 {
			return c.fault("modulo by zero")
		}
		c.SetReg(rd, c.regs[rs]%c.regs[rt])
	case isa.AND:
		c.SetReg(rd, c.regs[rs]&c.regs[rt])
	case isa.OR:
		c.SetReg(rd, c.regs[rs]|c.regs[rt])
	case isa.XOR:
		c.SetReg(rd, c.regs[rs]^c.regs[rt])
	case isa.NOT:
		c.SetReg(rd, ^c.regs[rs])
	case isa.SHL:
		c.SetReg(rd, c.regs[rs]<<(c.regs[rt]&63))
	case isa.SHLI:
		c.SetReg(rd, c.regs[rs]<<(uint64(in.Imm)&63))
	case isa.SHR:
		c.SetReg(rd, c.regs[rs]>>(c.regs[rt]&63))
	case isa.SHRI:
		c.SetReg(rd, c.regs[rs]>>(uint64(in.Imm)&63))
	case isa.LD:
		c.SetReg(rd, env.Load(c.regs[rs]+uint64(in.Imm)))
	case isa.ST:
		env.Store(c.regs[rs]+uint64(in.Imm), c.regs[rt])
	case isa.CLFLUSH:
		env.Flush(c.regs[rs] + uint64(in.Imm))
	case isa.RDTSC:
		c.SetReg(rd, env.Now())
	case isa.JMP:
		next = uint64(in.Imm)
	case isa.BEQ:
		if c.regs[rs] == c.regs[rt] {
			next = uint64(in.Imm)
		}
	case isa.BNE:
		if c.regs[rs] != c.regs[rt] {
			next = uint64(in.Imm)
		}
	case isa.BLT:
		if c.regs[rs] < c.regs[rt] {
			next = uint64(in.Imm)
		}
	case isa.BGE:
		if c.regs[rs] >= c.regs[rt] {
			next = uint64(in.Imm)
		}
	case isa.CALL:
		c.regs[isa.RSP] -= 8
		env.Store(c.regs[isa.RSP], next)
		next = uint64(in.Imm)
	case isa.RET:
		next = env.Load(c.regs[isa.RSP])
		c.regs[isa.RSP] += 8
	case isa.PUSH:
		c.regs[isa.RSP] -= 8
		env.Store(c.regs[isa.RSP], c.regs[rs])
	case isa.POP:
		c.SetReg(rd, env.Load(c.regs[isa.RSP]))
		c.regs[isa.RSP] += 8
	case isa.SYS:
		switch uint64(in.Imm) {
		case sim.SysExit:
			c.halted = true
			env.Syscall(sim.SysExit, c.regs[1])
			return false
		case sim.SysPrint:
			c.Output = append(c.Output, c.regs[1])
			env.Syscall(sim.SysPrint, c.regs[1])
		default:
			c.regs[1] = env.Syscall(uint64(in.Imm), c.regs[1])
		}
	default:
		return c.fault("illegal opcode %v", in.Op)
	}
	c.pc = next
	return true
}
