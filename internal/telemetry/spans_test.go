package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// steppedClock hands out strictly increasing fake timestamps.
type steppedClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *steppedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestSpanRecorderLifecycleAndLegs(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := NewSpanRecorder(func() time.Time { return base })

	r.Lifecycle("validate", base, base.Add(time.Millisecond), nil)
	r.Instant("enqueue", base.Add(time.Millisecond), nil)
	// Two overlapping legs must land on different tracks; a third that
	// starts after the first ends reuses track 1.
	r.Span("legA", "leg", base.Add(2*time.Millisecond), base.Add(10*time.Millisecond), nil)
	r.Span("legB", "leg", base.Add(3*time.Millisecond), base.Add(9*time.Millisecond), nil)
	r.Span("legC", "leg", base.Add(11*time.Millisecond), base.Add(12*time.Millisecond), nil)

	byName := map[string]TraceEvent{}
	for _, ev := range r.Events() {
		if ev.Ph != "M" {
			byName[ev.Name] = ev
		}
	}
	if got := byName["validate"]; got.TID != 0 || got.Ph != "X" {
		t.Errorf("validate span = %+v, want X on tid 0", got)
	}
	if got := byName["enqueue"]; got.Ph != "i" {
		t.Errorf("enqueue = %+v, want instant", got)
	}
	a, b, c := byName["legA"], byName["legB"], byName["legC"]
	if a.TID == b.TID {
		t.Errorf("overlapping legs share tid %d", a.TID)
	}
	if c.TID != a.TID {
		t.Errorf("legC tid = %d, want reuse of legA's track %d", c.TID, a.TID)
	}
	if a.Dur != 8000 {
		t.Errorf("legA dur = %v µs, want 8000", a.Dur)
	}
}

func TestSpanRecorderJSONSchema(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := NewSpanRecorder(func() time.Time { return base })
	r.Lifecycle("run", base, base.Add(time.Second), map[string]any{"k": "v"})
	b, err := r.JSON(map[string]any{"job": "job-000001"})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["job"] != "job-000001" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
}

func TestSpanRecorderEmptyJSON(t *testing.T) {
	r := NewSpanRecorder(nil)
	b, err := r.JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents must serialize as [], not null")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	clk := &steppedClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: time.Microsecond}
	r := NewSpanRecorder(clk.Now)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := clk.Now()
				r.Span("leg", "leg", s, s.Add(time.Microsecond), nil)
			}
		}()
	}
	wg.Wait()
	spans := 0
	for _, ev := range r.Events() {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans != 800 {
		t.Fatalf("recorded %d spans, want 800", spans)
	}
}
