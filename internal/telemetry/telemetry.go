// Package telemetry is the simulator's observability layer: an interval
// sampler that turns machine counters into time series (MPKI, hit rate,
// first-access rate, per-process IPC), log2 latency histograms per cache
// level and access class, a Chrome trace-event JSON exporter whose output
// loads in Perfetto / chrome://tracing, and JSON run manifests.
//
// The Collector implements both the cache hierarchy's Observer hook and the
// kernel's Probe hook; Attach installs it on a machine. When no collector is
// attached, the hooks cost the hierarchy and scheduler one nil check each
// (see BenchmarkAccessTelemetryDisabled in internal/cache).
package telemetry

import (
	"fmt"
	"os"
	"strings"
	"time"

	"timecache/internal/cache"
	"timecache/internal/kernel"
)

func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

// Config selects what a Collector records and where Finish writes it. Output
// paths left empty are not written; a zero Config records samples and
// histograms in memory only.
type Config struct {
	// SampleEvery is the interval-sampler period in instruction steps
	// (DefaultSampleEvery when zero).
	SampleEvery uint64
	// CyclesPerUs converts simulation cycles to trace-JSON microseconds
	// (DefaultCyclesPerUs when zero; the paper models a 2 GHz clock).
	CyclesPerUs float64
	// TraceAccesses adds one instant event per memory access to the trace.
	// Very verbose: use only with small instruction budgets.
	TraceAccesses bool

	// MetricsCSV is the interval-metrics CSV output path.
	MetricsCSV string
	// HistogramCSV is the latency-histogram CSV output path.
	HistogramCSV string
	// TraceJSON is the Chrome trace-event JSON output path.
	TraceJSON string
	// ManifestJSON is the run-manifest output path.
	ManifestJSON string
}

// WithSuffix returns a copy of the config with "_suffix" inserted before the
// extension of every output path, so one config can label many runs.
func (c Config) WithSuffix(suffix string) Config {
	ins := func(path string) string {
		if path == "" {
			return ""
		}
		if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
			return path[:i] + "_" + suffix + path[i:]
		}
		return path + "_" + suffix
	}
	c.MetricsCSV = ins(c.MetricsCSV)
	c.HistogramCSV = ins(c.HistogramCSV)
	c.TraceJSON = ins(c.TraceJSON)
	c.ManifestJSON = ins(c.ManifestJSON)
	return c
}

// enabled reports whether any output is requested.
func (c Config) enabled() bool {
	return c.MetricsCSV != "" || c.HistogramCSV != "" || c.TraceJSON != "" || c.ManifestJSON != ""
}

// Collector wires the sampler, histograms, and trace builder into a
// machine's probe hooks.
type Collector struct {
	cfg     Config
	k       *kernel.Kernel
	sampler *Sampler
	hist    LatencyHistograms
	trace   *TraceBuilder
	meta    map[string]any
	started time.Time
}

// Interface checks: a Collector is both hooks.
var (
	_ cache.Observer = (*Collector)(nil)
	_ kernel.Probe   = (*Collector)(nil)
)

// New creates a collector from cfg. Call Attach before running the machine.
func New(cfg Config) *Collector {
	return &Collector{
		cfg:   cfg,
		trace: NewTraceBuilder(cfg.CyclesPerUs),
		meta:  map[string]any{},
	}
}

// Attach installs the collector's hooks on the machine and starts the wall
// clock. A collector observes exactly one machine.
func (c *Collector) Attach(k *kernel.Kernel) *Collector {
	c.k = k
	c.sampler = NewSampler(k, c.cfg.SampleEvery)
	k.SetProbe(c)
	k.Hierarchy().SetObserver(c)
	c.started = time.Now()
	return c
}

// Detach removes the collector's hooks from the machine.
func (c *Collector) Detach() {
	if c.k != nil {
		c.k.SetProbe(nil)
		c.k.Hierarchy().SetObserver(nil)
	}
}

// SetMeta records a key in the manifest's meta section (workload names,
// seeds, tool flags).
func (c *Collector) SetMeta(key string, v any) { c.meta[key] = v }

// ObserveAccess implements cache.Observer: one callback per access, with
// the full request trail.
func (c *Collector) ObserveAccess(r *cache.Request) {
	res := r.Result()
	c.hist.Observe(r.Kind, res)
	if c.cfg.TraceAccesses {
		c.trace.Instant(Classify(res).String(), "access", r.Ctx, r.Now, map[string]any{
			"addr": fmt.Sprintf("%#x", r.Addr), "kind": r.Kind.String(),
			"latency": r.Latency, "level": r.Level,
		})
	}
}

// AfterStep implements kernel.Probe.
func (c *Collector) AfterStep(core int, now uint64) { c.sampler.AfterStep() }

// OnContextSwitch implements kernel.Probe: a "sched" span for the switch,
// with a nested "timecache" sub-span for the s-bit bookkeeping when the
// defense charged any.
func (c *Collector) OnContextSwitch(ev kernel.SwitchEvent) {
	name := fmt.Sprintf("switch %s→%s", orIdle(ev.OutName), orIdle(ev.InName))
	c.trace.Complete(name, "sched", ev.Core, ev.Start, ev.End, map[string]any{
		"out_pid": ev.OutPID, "in_pid": ev.InPID,
	})
	if ev.BookkeepEnd > ev.BookkeepStart {
		c.trace.Complete("s-bit save/restore", "timecache", ev.Core, ev.BookkeepStart, ev.BookkeepEnd, map[string]any{
			"cycles": ev.BookkeepEnd - ev.BookkeepStart,
		})
	}
}

func orIdle(name string) string {
	if name == "" {
		return "idle"
	}
	return name
}

// OnRunSpan implements kernel.Probe: one span per on-core occupancy.
func (c *Collector) OnRunSpan(core, pid int, name string, start, end uint64) {
	c.trace.Complete(name, "run", core, start, end, map[string]any{"pid": pid})
}

// Sampler returns the interval sampler (nil before Attach).
func (c *Collector) Sampler() *Sampler { return c.sampler }

// Histograms returns the latency histograms.
func (c *Collector) Histograms() *LatencyHistograms { return &c.hist }

// Trace returns the trace builder.
func (c *Collector) Trace() *TraceBuilder { return c.trace }

// Manifest builds the run manifest from the machine's current counters.
func (c *Collector) Manifest() Manifest {
	m := buildManifest(c.k)
	m.WallSeconds = time.Since(c.started).Seconds()
	m.Samples = len(c.sampler.Samples())
	m.TraceEvents = c.trace.Len()
	if len(c.meta) > 0 {
		m.Meta = c.meta
	}
	return m
}

// Finish flushes the sampler's trailing partial interval and writes every
// configured output file. It may be called once, after the run.
func (c *Collector) Finish() error {
	c.sampler.Flush()
	if c.cfg.MetricsCSV != "" {
		if err := writeFile(c.cfg.MetricsCSV, []byte(c.sampler.CSV())); err != nil {
			return fmt.Errorf("telemetry: metrics csv: %w", err)
		}
	}
	if c.cfg.HistogramCSV != "" {
		if err := writeFile(c.cfg.HistogramCSV, []byte(c.hist.Table().CSV())); err != nil {
			return fmt.Errorf("telemetry: histogram csv: %w", err)
		}
	}
	if c.cfg.TraceJSON != "" {
		b, err := c.trace.JSON(map[string]any{"cycles_per_us": c.trace.cyclesPerUs})
		if err != nil {
			return fmt.Errorf("telemetry: trace json: %w", err)
		}
		if err := writeFile(c.cfg.TraceJSON, b); err != nil {
			return fmt.Errorf("telemetry: trace json: %w", err)
		}
	}
	if c.cfg.ManifestJSON != "" {
		if err := c.Manifest().WriteJSON(c.cfg.ManifestJSON); err != nil {
			return fmt.Errorf("telemetry: manifest: %w", err)
		}
	}
	return nil
}
