package telemetry

import (
	"encoding/json"
	"fmt"
)

// TraceEvent is one Chrome trace-event record (the subset of the Trace
// Event Format that Perfetto and chrome://tracing load: complete "X" spans,
// instant "i" events, and "M" metadata).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format wrapper.
type traceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// DefaultCyclesPerUs is the paper's 2 GHz clock.
const DefaultCyclesPerUs = 2000

// tracePID is the single "process" the machine's cores appear under.
const tracePID = 1

// TraceBuilder accumulates trace events in memory; JSON() serializes them as
// a Perfetto-loadable Chrome trace. Timestamps are simulation cycles
// converted to microseconds at CyclesPerUs.
type TraceBuilder struct {
	cyclesPerUs float64
	events      []TraceEvent
	named       map[int]bool
}

// NewTraceBuilder creates a builder (cyclesPerUs 0 = DefaultCyclesPerUs).
func NewTraceBuilder(cyclesPerUs float64) *TraceBuilder {
	if cyclesPerUs <= 0 {
		cyclesPerUs = DefaultCyclesPerUs
	}
	return &TraceBuilder{cyclesPerUs: cyclesPerUs, named: map[int]bool{}}
}

func (t *TraceBuilder) us(cycles uint64) float64 { return float64(cycles) / t.cyclesPerUs }

// nameCore emits the thread-name metadata for a core once.
func (t *TraceBuilder) nameCore(core int) {
	if t.named[core] {
		return
	}
	t.named[core] = true
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: tracePID, TID: core,
		Args: map[string]any{"name": fmt.Sprintf("core%d", core)},
	})
}

// Complete records an "X" span of [start, end] cycles on a core's track.
func (t *TraceBuilder) Complete(name, cat string, core int, start, end uint64, args map[string]any) {
	t.nameCore(core)
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", PID: tracePID, TID: core,
		Ts: t.us(start), Dur: t.us(end - start), Args: args,
	})
}

// Instant records an "i" event at ts cycles on a core's track.
func (t *TraceBuilder) Instant(name, cat string, core int, ts uint64, args map[string]any) {
	t.nameCore(core)
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i", PID: tracePID, TID: core,
		Ts: t.us(ts), S: "t", Args: args,
	})
}

// Len returns the number of recorded events.
func (t *TraceBuilder) Len() int { return len(t.events) }

// Events returns the recorded events (for tests and filtering).
func (t *TraceBuilder) Events() []TraceEvent { return t.events }

// JSON serializes the trace in the Chrome trace-event JSON Object Format.
func (t *TraceBuilder) JSON(other map[string]any) ([]byte, error) {
	return marshalTraceFile(t.events, other)
}

// marshalTraceFile wraps events in the JSON Object Format; TraceBuilder
// (simulation-cycle traces) and SpanRecorder (wall-clock job traces) share
// it so both outputs load in the same viewers.
func marshalTraceFile(events []TraceEvent, other map[string]any) ([]byte, error) {
	f := traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       other,
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	return json.MarshalIndent(f, "", " ")
}
