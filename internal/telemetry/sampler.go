package telemetry

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/stats"
	"timecache/internal/textplot"
)

// ProcSample is one process's share of an interval.
type ProcSample struct {
	PID    int
	Name   string
	Instrs uint64 // instructions retired in the interval
	Cycles uint64 // CPU cycles consumed in the interval
	IPC    float64
}

// Sample is one interval of the time series the sampler emits: counter
// deltas between two snapshots, reduced to the rates the paper's figures
// are built from.
type Sample struct {
	Index    int
	EndCycle uint64 // max core clock at the end of the interval
	Instrs   uint64 // instructions retired machine-wide in the interval
	Cycles   uint64 // wall (max-clock) cycles elapsed in the interval

	IPC             float64 // Instrs / Cycles
	LLCMPKI         float64 // LLC misses + first accesses per kilo-instruction
	FirstAccessMPKI float64 // first accesses (all levels) per kilo-instruction
	L1HitRate       float64 // visible L1 hits / L1 accesses
	LLCHitRate      float64 // visible LLC hits / LLC accesses
	FirstAccessRate float64 // first accesses / L1 accesses
	Switches        uint64  // context switches in the interval

	PerProc []ProcSample
}

// snapshot is the raw counter state a Sample is the delta of.
type snapshot struct {
	cycle   uint64
	l1      cache.Stats // all private L1I+L1D, aggregated
	llc     cache.Stats
	kern    kernel.Stats
	fa      uint64 // first accesses across all levels
	perProc map[int]procSnap
}

type procSnap struct {
	name           string
	instrs, cycles uint64
}

// Sampler turns periodic counter snapshots into a time series. It is driven
// by the kernel Probe's AfterStep hook: every Every steps (a step retires
// one bounded unit of work, approximately one instruction) it snapshots the
// machine counters and appends the delta as a Sample.
type Sampler struct {
	every   uint64
	k       *kernel.Kernel
	steps   uint64
	prev    snapshot
	samples []Sample
}

// DefaultSampleEvery is the default sampling period in instruction steps.
const DefaultSampleEvery = 10_000

// NewSampler creates a sampler over k taking a sample every `every` steps
// (DefaultSampleEvery when zero).
func NewSampler(k *kernel.Kernel, every uint64) *Sampler {
	if every == 0 {
		every = DefaultSampleEvery
	}
	s := &Sampler{every: every, k: k}
	s.prev = s.snap()
	return s
}

func (s *Sampler) snap() snapshot {
	h := s.k.Hierarchy()
	sn := snapshot{kern: s.k.Stats, perProc: make(map[int]procSnap)}
	for c := 0; c < h.Config().Cores; c++ {
		sn.l1 = sn.l1.Add(h.L1I(c).Stats).Add(h.L1D(c).Stats)
		if t := s.k.CoreClock(c); t > sn.cycle {
			sn.cycle = t
		}
	}
	sn.llc = h.LLC().Stats
	sn.fa = sn.l1.FirstAccess + sn.llc.FirstAccess
	for _, p := range s.k.Processes() {
		sn.perProc[p.PID] = procSnap{name: p.Name, instrs: p.Stats.Instructions, cycles: p.Stats.CPUCycles}
	}
	return sn
}

// AfterStep advances the step counter and samples when the period elapses.
func (s *Sampler) AfterStep() {
	s.steps++
	if s.steps >= s.every {
		s.steps = 0
		s.take()
	}
}

// Flush appends a final partial sample if any steps elapsed since the last
// one. Call once after the run completes.
func (s *Sampler) Flush() {
	if s.steps > 0 {
		s.steps = 0
		s.take()
	}
}

func (s *Sampler) take() {
	cur := s.snap()
	prev := s.prev
	s.prev = cur

	l1 := cur.l1.Delta(prev.l1)
	llc := cur.llc.Delta(prev.llc)
	kern := cur.kern.Delta(prev.kern)

	var instrs uint64
	var perProc []ProcSample
	for _, p := range s.k.Processes() {
		c := cur.perProc[p.PID]
		b := prev.perProc[p.PID] // zero value for processes spawned mid-interval
		di, dc := c.instrs-b.instrs, c.cycles-b.cycles
		instrs += di
		if di == 0 && dc == 0 {
			continue
		}
		ps := ProcSample{PID: p.PID, Name: c.name, Instrs: di, Cycles: dc}
		if dc > 0 {
			ps.IPC = float64(di) / float64(dc)
		}
		perProc = append(perProc, ps)
	}

	sm := Sample{
		Index:           len(s.samples),
		EndCycle:        cur.cycle,
		Instrs:          instrs,
		Cycles:          cur.cycle - prev.cycle,
		LLCMPKI:         stats.MPKI(llc.Misses+llc.FirstAccess, instrs),
		FirstAccessMPKI: stats.MPKI(cur.fa-prev.fa, instrs),
		Switches:        kern.ContextSwitches,
		PerProc:         perProc,
	}
	if sm.Cycles > 0 {
		sm.IPC = float64(instrs) / float64(sm.Cycles)
	}
	if l1.Accesses > 0 {
		sm.L1HitRate = float64(l1.Hits) / float64(l1.Accesses)
		sm.FirstAccessRate = float64(cur.fa-prev.fa) / float64(l1.Accesses)
	}
	if llc.Accesses > 0 {
		sm.LLCHitRate = float64(llc.Hits) / float64(llc.Accesses)
	}
	s.samples = append(s.samples, sm)
}

// Samples returns the series collected so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// Table renders the series as a table (one row per interval), with one
// trailing IPC column per process observed anywhere in the run.
func (s *Sampler) Table() *stats.Table {
	// Union of processes across all samples, in PID order of appearance.
	var procIDs []int
	procNames := map[int]string{}
	for _, sm := range s.samples {
		for _, p := range sm.PerProc {
			if _, ok := procNames[p.PID]; !ok {
				procNames[p.PID] = p.Name
				procIDs = append(procIDs, p.PID)
			}
		}
	}
	header := []string{
		"sample", "end_cycle", "instrs", "cycles", "ipc",
		"llc_mpki", "first_access_mpki", "l1_hit_rate", "llc_hit_rate",
		"first_access_rate", "switches",
	}
	for _, pid := range procIDs {
		header = append(header, fmt.Sprintf("ipc_pid%d_%s", pid, procNames[pid]))
	}
	tb := stats.NewTable(header...)
	for _, sm := range s.samples {
		row := []any{
			sm.Index, sm.EndCycle, sm.Instrs, sm.Cycles, sm.IPC,
			sm.LLCMPKI, sm.FirstAccessMPKI, sm.L1HitRate, sm.LLCHitRate,
			sm.FirstAccessRate, sm.Switches,
		}
		byPID := map[int]float64{}
		for _, p := range sm.PerProc {
			byPID[p.PID] = p.IPC
		}
		for _, pid := range procIDs {
			row = append(row, byPID[pid])
		}
		tb.Add(row...)
	}
	return tb
}

// CSV renders the series as RFC-4180 CSV.
func (s *Sampler) CSV() string { return s.Table().CSV() }

// Render returns terminal sparklines of the headline series.
func (s *Sampler) Render() string {
	ipc := make([]float64, len(s.samples))
	mpki := make([]float64, len(s.samples))
	fam := make([]float64, len(s.samples))
	hit := make([]float64, len(s.samples))
	for i, sm := range s.samples {
		ipc[i] = sm.IPC
		mpki[i] = sm.LLCMPKI
		fam[i] = sm.FirstAccessMPKI
		hit[i] = sm.L1HitRate
	}
	ts := textplot.TimeSeries{Title: fmt.Sprintf("interval metrics (%d samples of ~%d instrs)", len(s.samples), s.every)}
	ts.Add("IPC", ipc)
	ts.Add("LLC MPKI", mpki)
	ts.Add("first-access MPKI", fam)
	ts.Add("L1 hit rate", hit)
	return ts.String()
}
