package telemetry

import (
	"encoding/json"
	"os"
	"time"

	"timecache/internal/kernel"
)

// MachineInfo records the simulated machine configuration in a manifest.
type MachineInfo struct {
	Mode           string `json:"mode"`
	Cores          int    `json:"cores"`
	ThreadsPerCore int    `json:"threads_per_core"`
	L1SizeBytes    int    `json:"l1_size_bytes"`
	L1Ways         int    `json:"l1_ways"`
	LLCSizeBytes   int    `json:"llc_size_bytes"`
	LLCWays        int    `json:"llc_ways"`
	DRAMLatCycles  uint64 `json:"dram_lat_cycles"`
	SliceCycles    uint64 `json:"slice_cycles"`
}

// CacheCounters is one cache's end-of-run counters.
type CacheCounters struct {
	Name        string `json:"name"`
	Accesses    uint64 `json:"accesses"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	FirstAccess uint64 `json:"first_access"`
	Evictions   uint64 `json:"evictions"`
	Writebacks  uint64 `json:"writebacks"`
	Invalidates uint64 `json:"invalidates"`
}

// ProcCounters is one process's end-of-run counters.
type ProcCounters struct {
	PID          int    `json:"pid"`
	Name         string `json:"name"`
	Instructions uint64 `json:"instructions"`
	CPUCycles    uint64 `json:"cpu_cycles"`
	FinishedAt   uint64 `json:"finished_at_cycle"`
	Switches     uint64 `json:"times_scheduled"`
}

// Counters is the machine-wide counter section of a manifest.
type Counters struct {
	MaxCycle          uint64          `json:"max_cycle"`
	ContextSwitches   uint64          `json:"context_switches"`
	BookkeepingCycles uint64          `json:"bookkeeping_cycles"`
	SwitchCycles      uint64          `json:"switch_cycles"`
	Syscalls          uint64          `json:"syscalls"`
	COWBreaks         uint64          `json:"cow_breaks"`
	DedupMerged       uint64          `json:"dedup_merged_pages"`
	Caches            []CacheCounters `json:"caches"`
	Processes         []ProcCounters  `json:"processes"`
}

// Manifest is the JSON sidecar describing one simulator run: what ran, on
// what machine, what it counted, and how long it took on the wall clock.
type Manifest struct {
	Tool        string         `json:"tool"`
	CreatedAt   time.Time      `json:"created_at"`
	WallSeconds float64        `json:"wall_seconds"`
	Machine     MachineInfo    `json:"machine"`
	Counters    Counters       `json:"counters"`
	Samples     int            `json:"telemetry_samples"`
	TraceEvents int            `json:"trace_events"`
	Meta        map[string]any `json:"meta,omitempty"`
}

// buildManifest snapshots a kernel into a Manifest.
func buildManifest(k *kernel.Kernel) Manifest {
	h := k.Hierarchy()
	hcfg := h.Config()
	m := Manifest{
		Tool:      "timecache-sim",
		CreatedAt: time.Now().UTC(),
		Machine: MachineInfo{
			Mode:           hcfg.Mode.String(),
			Cores:          hcfg.Cores,
			ThreadsPerCore: hcfg.ThreadsPerCore,
			L1SizeBytes:    hcfg.L1Size,
			L1Ways:         hcfg.L1Ways,
			LLCSizeBytes:   hcfg.LLCSize,
			LLCWays:        hcfg.LLCWays,
			DRAMLatCycles:  hcfg.DRAMLat,
			SliceCycles:    k.Config().SliceCycles,
		},
		Counters: Counters{
			ContextSwitches:   k.Stats.ContextSwitches,
			BookkeepingCycles: k.Stats.BookkeepingCycles,
			SwitchCycles:      k.Stats.SwitchCycles,
			Syscalls:          k.Stats.Syscalls,
			COWBreaks:         k.Stats.COWBreaks,
			DedupMerged:       k.Stats.DedupMerged,
		},
	}
	for c := 0; c < hcfg.Cores; c++ {
		if t := k.CoreClock(c); t > m.Counters.MaxCycle {
			m.Counters.MaxCycle = t
		}
	}
	for _, c := range h.Caches() {
		m.Counters.Caches = append(m.Counters.Caches, CacheCounters{
			Name:        c.Name(),
			Accesses:    c.Stats.Accesses,
			Hits:        c.Stats.Hits,
			Misses:      c.Stats.Misses,
			FirstAccess: c.Stats.FirstAccess,
			Evictions:   c.Stats.Evictions,
			Writebacks:  c.Stats.Writebacks,
			Invalidates: c.Stats.Invalidates,
		})
	}
	for _, p := range k.Processes() {
		m.Counters.Processes = append(m.Counters.Processes, ProcCounters{
			PID:          p.PID,
			Name:         p.Name,
			Instructions: p.Stats.Instructions,
			CPUCycles:    p.Stats.CPUCycles,
			FinishedAt:   p.Stats.FinishedAt,
			Switches:     p.Stats.Switches,
		})
	}
	return m
}

// WriteJSON writes the manifest to path.
func (m Manifest) WriteJSON(path string) error {
	b, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
