package telemetry

import (
	"sync"
	"time"
)

// SpanSink receives wall-clock spans. The job service's per-job
// SpanRecorder implements it; the experiment harness emits one span per
// simulated machine run (leg) into whatever sink its Options carry. A nil
// sink costs callers one comparison.
type SpanSink interface {
	Span(name, cat string, start, end time.Time, args map[string]any)
}

// spanPID is the single "process" a job's spans appear under in the trace.
const spanPID = 1

// lifecycleTID is the reserved track for the job lifecycle spans
// (validate → enqueue → queue-wait → run → render); legs are laid out on
// tracks 1+ so concurrent sweep legs never overlap on one track.
const lifecycleTID = 0

// SpanRecorder accumulates wall-clock spans for one job and serializes them
// as a Chrome trace-event JSON document (the same schema the simulator's
// TraceBuilder emits, so both load in Perfetto / chrome://tracing).
// Timestamps are microseconds relative to the recorder's base time, which is
// fixed by the first recorded event.
//
// A SpanRecorder is safe for concurrent use: the job service records
// lifecycle spans while harness sweep workers record leg spans.
type SpanRecorder struct {
	now func() time.Time

	mu     sync.Mutex
	base   time.Time
	events []TraceEvent
	// trackEnd[i] is the end timestamp (µs) of the last span on leg track
	// i; a new leg span takes the first track it does not overlap.
	trackEnd []float64
	named    map[int]bool
}

var _ SpanSink = (*SpanRecorder)(nil)

// NewSpanRecorder creates a recorder whose timestamps come from now
// (nil = time.Now). The job service injects its wall clock here so traces
// are deterministic under a fake clock.
func NewSpanRecorder(now func() time.Time) *SpanRecorder {
	if now == nil {
		now = time.Now
	}
	return &SpanRecorder{now: now, named: map[int]bool{}}
}

// Now returns the recorder's current wall time (the injected clock).
func (r *SpanRecorder) Now() time.Time { return r.now() }

// us converts t to trace microseconds, pinning the base to the first event.
// Caller holds r.mu.
func (r *SpanRecorder) us(t time.Time) float64 {
	if r.base.IsZero() {
		r.base = t
	}
	return float64(t.Sub(r.base)) / float64(time.Microsecond)
}

// nameTrack emits the track-name metadata once per tid. Caller holds r.mu.
func (r *SpanRecorder) nameTrack(tid int, name string) {
	if r.named[tid] {
		return
	}
	r.named[tid] = true
	r.events = append(r.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: spanPID, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Lifecycle records an "X" span on the reserved lifecycle track.
func (r *SpanRecorder) Lifecycle(name string, start, end time.Time, args map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nameTrack(lifecycleTID, "lifecycle")
	r.events = append(r.events, TraceEvent{
		Name: name, Cat: "lifecycle", Ph: "X", PID: spanPID, TID: lifecycleTID,
		Ts: r.us(start), Dur: r.us(end) - r.us(start), Args: args,
	})
}

// Span implements SpanSink: an "X" span on the first leg track where it
// does not overlap an earlier span (concurrent sweep legs spread across
// tracks instead of stacking on one line).
func (r *SpanRecorder) Span(name, cat string, start, end time.Time, args map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, te := r.us(start), r.us(end)
	track := -1
	for i, last := range r.trackEnd {
		if last <= ts {
			track = i
			break
		}
	}
	if track == -1 {
		r.trackEnd = append(r.trackEnd, 0)
		track = len(r.trackEnd) - 1
	}
	r.trackEnd[track] = te
	tid := track + 1 // track 0 is the lifecycle line
	r.nameTrack(tid, "legs")
	r.events = append(r.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", PID: spanPID, TID: tid,
		Ts: ts, Dur: te - ts, Args: args,
	})
}

// Instant records an "i" event on the lifecycle track.
func (r *SpanRecorder) Instant(name string, at time.Time, args map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nameTrack(lifecycleTID, "lifecycle")
	r.events = append(r.events, TraceEvent{
		Name: name, Cat: "lifecycle", Ph: "i", PID: spanPID, TID: lifecycleTID,
		Ts: r.us(at), S: "t", Args: args,
	})
}

// Len returns the number of recorded events.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot of the recorded events.
func (r *SpanRecorder) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.events...)
}

// JSON serializes the recorded spans in the Chrome trace-event JSON Object
// Format (displayTimeUnit ms, like TraceBuilder).
func (r *SpanRecorder) JSON(other map[string]any) ([]byte, error) {
	r.mu.Lock()
	events := append([]TraceEvent(nil), r.events...)
	r.mu.Unlock()
	return marshalTraceFile(events, other)
}
