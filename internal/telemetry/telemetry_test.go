package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/mem"
	"timecache/internal/workload"
)

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 200, 222} {
		h.Observe(v)
	}
	cases := []struct {
		bucket int
		want   uint64
	}{
		{0, 1}, // {0}
		{1, 1}, // {1}
		{2, 2}, // [2,3]
		{3, 2}, // [4,7]
		{4, 1}, // [8,15]
		{8, 2}, // [128,255]
	}
	for _, c := range cases {
		if got := h.Buckets[c.bucket]; got != c.want {
			t.Errorf("bucket %d = %d, want %d", c.bucket, got, c.want)
		}
	}
	if h.Count != 9 || h.Min != 0 || h.Max != 222 {
		t.Errorf("count/min/max = %d/%d/%d", h.Count, h.Min, h.Max)
	}
	if lo, hi := BucketBounds(8); lo != 128 || hi != 255 {
		t.Errorf("BucketBounds(8) = [%d,%d]", lo, hi)
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Errorf("BucketBounds(0) = [%d,%d]", lo, hi)
	}
	// Every value must land in the bucket whose bounds contain it.
	for _, v := range []uint64{0, 1, 5, 63, 64, 1 << 40} {
		b := BucketOf(v)
		lo, hi := BucketBounds(b)
		if v < lo || v > hi {
			t.Errorf("value %d in bucket %d with bounds [%d,%d]", v, b, lo, hi)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(2) // L1 hits
	}
	h.Observe(222) // one miss
	if q := h.Quantile(0.5); q < 2 || q > 3 {
		t.Errorf("p50 = %d, want within the hit bucket [2,3]", q)
	}
	if q := h.Quantile(0.999); q != 222 {
		t.Errorf("p99.9 = %d, want 222 (clamped to observed max)", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean must be 0")
	}
}

func TestClassify(t *testing.T) {
	if Classify(cache.Result{Hit: true}) != ClassHit {
		t.Error("hit")
	}
	if Classify(cache.Result{}) != ClassMiss {
		t.Error("miss")
	}
	if Classify(cache.Result{FirstAccess: true}) != ClassFirstAccess {
		t.Error("first access")
	}
}

// buildMachine constructs a small two-process machine under mode.
func buildMachine(t *testing.T, mode cache.SecMode, instrs uint64) *kernel.Kernel {
	t.Helper()
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.Mode = mode
	kcfg := kernel.DefaultConfig()
	kcfg.SliceCycles = 50_000 // frequent switches so the trace has spans
	k := kernel.New(kcfg, cache.NewHierarchy(hcfg), mem.NewPhysical(8192, hcfg.DRAMLat))
	prof, err := workload.Spec("lbm")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := workload.Spawn(k, prof, workload.SpawnOptions{Instrs: instrs, Seed: uint64(1001 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

func TestSamplerWindows(t *testing.T) {
	const instrs, every = 20_000, 1_000
	k := buildMachine(t, cache.SecTimeCache, instrs)
	col := New(Config{SampleEvery: every}).Attach(k)
	k.Run(1 << 62)
	if !k.AllExited() {
		t.Fatal("did not finish")
	}
	col.Sampler().Flush()
	samples := col.Sampler().Samples()

	// 2 procs x 20k instrs at one step per instruction = 40 windows.
	want := int(2 * instrs / every)
	if len(samples) < want-1 || len(samples) > want+1 {
		t.Fatalf("got %d samples, want ~%d", len(samples), want)
	}
	var total uint64
	prevEnd := uint64(0)
	for i, s := range samples {
		if s.Index != i {
			t.Errorf("sample %d has index %d", i, s.Index)
		}
		if s.EndCycle < prevEnd {
			t.Errorf("sample %d: EndCycle went backwards (%d < %d)", i, s.EndCycle, prevEnd)
		}
		prevEnd = s.EndCycle
		total += s.Instrs
		if s.IPC < 0 || s.L1HitRate < 0 || s.L1HitRate > 1 {
			t.Errorf("sample %d: implausible rates %+v", i, s)
		}
	}
	// Window deltas must tile the whole run: no instruction counted twice
	// or dropped.
	if total != 2*instrs {
		t.Fatalf("samples cover %d instructions, want %d", total, 2*instrs)
	}
	// A flush with no residual steps must not add an empty sample.
	n := len(samples)
	col.Sampler().Flush()
	if len(col.Sampler().Samples()) != n {
		t.Error("second Flush added a sample")
	}
}

func TestSamplerPerProcessIPC(t *testing.T) {
	k := buildMachine(t, cache.SecOff, 10_000)
	col := New(Config{SampleEvery: 4_000}).Attach(k)
	k.Run(1 << 62)
	col.Sampler().Flush()
	samples := col.Sampler().Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	seen := map[int]bool{}
	for _, s := range samples {
		for _, p := range s.PerProc {
			seen[p.PID] = true
			if p.Name == "" {
				t.Errorf("process %d has no name", p.PID)
			}
			if p.Cycles > 0 && p.IPC <= 0 {
				t.Errorf("process %d ran %d cycles with IPC %f", p.PID, p.Cycles, p.IPC)
			}
		}
	}
	if len(seen) != 2 {
		t.Fatalf("per-process samples cover %d processes, want 2", len(seen))
	}
}

func TestTraceJSONValidity(t *testing.T) {
	k := buildMachine(t, cache.SecTimeCache, 20_000)
	col := New(Config{}).Attach(k)
	k.Run(1 << 62)

	b, err := col.Trace().JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var sched, book, run int
	for _, e := range f.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" && e.Ph != "M" {
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("negative time in %+v", e)
		}
		switch e.Cat {
		case "sched":
			sched++
		case "timecache":
			book++
		case "run":
			run++
		}
	}
	if sched == 0 || run == 0 {
		t.Fatalf("trace missing spans: %d sched, %d run", sched, run)
	}
	// TimeCache mode charges s-bit bookkeeping inside every switch.
	if book != sched {
		t.Fatalf("%d bookkeeping sub-spans for %d switches", book, sched)
	}

	// Baseline mode must emit no bookkeeping sub-spans.
	k2 := buildMachine(t, cache.SecOff, 20_000)
	col2 := New(Config{}).Attach(k2)
	k2.Run(1 << 62)
	for _, e := range col2.Trace().Events() {
		if e.Cat == "timecache" {
			t.Fatal("baseline trace contains bookkeeping spans")
		}
	}
}

func TestCollectorFinishWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		SampleEvery:  5_000,
		MetricsCSV:   filepath.Join(dir, "m.csv"),
		HistogramCSV: filepath.Join(dir, "h.csv"),
		TraceJSON:    filepath.Join(dir, "t.json"),
		ManifestJSON: filepath.Join(dir, "run.json"),
	}
	k := buildMachine(t, cache.SecTimeCache, 20_000)
	col := New(cfg).Attach(k)
	col.SetMeta("seed", 1001)
	k.Run(1 << 62)
	if err := col.Finish(); err != nil {
		t.Fatal(err)
	}

	// Metrics CSV parses and is non-empty.
	mb, err := os.ReadFile(cfg.MetricsCSV)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(string(mb))).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV unparseable: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("metrics CSV has %d rows, want header + samples", len(recs))
	}

	// Histogram CSV parses.
	hb, err := os.ReadFile(cfg.HistogramCSV)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csv.NewReader(strings.NewReader(string(hb))).ReadAll(); err != nil {
		t.Fatalf("histogram CSV unparseable: %v", err)
	}

	// Trace JSON is valid.
	tb, err := os.ReadFile(cfg.TraceJSON)
	if err != nil {
		t.Fatal(err)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(tb, &anyJSON); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}

	// Manifest round-trips with counters and meta.
	var m Manifest
	rb, err := os.ReadFile(cfg.ManifestJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rb, &m); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Machine.Mode != "timecache" || m.Counters.MaxCycle == 0 || len(m.Counters.Caches) != 3 {
		t.Fatalf("manifest content wrong: %+v", m)
	}
	if len(m.Counters.Processes) != 2 || m.Counters.Processes[0].Instructions == 0 {
		t.Fatalf("manifest processes wrong: %+v", m.Counters.Processes)
	}
	if m.Meta["seed"] == nil {
		t.Error("manifest meta lost")
	}
	if m.Samples == 0 || m.TraceEvents == 0 {
		t.Errorf("manifest telemetry counts: %d samples, %d events", m.Samples, m.TraceEvents)
	}
}

func TestConfigWithSuffix(t *testing.T) {
	c := Config{MetricsCSV: "out/m.csv", TraceJSON: "t.json", ManifestJSON: "noext"}
	s := c.WithSuffix("2Xlbm_timecache")
	if s.MetricsCSV != "out/m_2Xlbm_timecache.csv" {
		t.Errorf("MetricsCSV = %q", s.MetricsCSV)
	}
	if s.TraceJSON != "t_2Xlbm_timecache.json" {
		t.Errorf("TraceJSON = %q", s.TraceJSON)
	}
	if s.ManifestJSON != "noext_2Xlbm_timecache" {
		t.Errorf("ManifestJSON = %q", s.ManifestJSON)
	}
	if s.HistogramCSV != "" {
		t.Errorf("empty path must stay empty, got %q", s.HistogramCSV)
	}
}

func TestTraceAccessesInstantEvents(t *testing.T) {
	k := buildMachine(t, cache.SecOff, 2_000)
	col := New(Config{TraceAccesses: true}).Attach(k)
	k.Run(1 << 62)
	instants := 0
	for _, e := range col.Trace().Events() {
		if e.Ph == "i" && e.Cat == "access" {
			instants++
		}
	}
	if instants == 0 {
		t.Fatal("TraceAccesses produced no instant events")
	}
}

func TestDetachStopsCollection(t *testing.T) {
	k := buildMachine(t, cache.SecOff, 5_000)
	col := New(Config{SampleEvery: 1_000}).Attach(k)
	col.Detach()
	k.Run(1 << 62)
	col.Sampler().Flush()
	if n := len(col.Sampler().Samples()); n != 0 {
		t.Fatalf("detached collector still sampled %d windows", n)
	}
	if col.Histograms().Total() != 0 {
		t.Fatal("detached collector still observed accesses")
	}
}
