package telemetry

import (
	"fmt"
	"math/bits"
	"strings"

	"timecache/internal/cache"
	"timecache/internal/stats"
)

// Histogram is a log2-bucketed latency histogram. Bucket 0 counts the value
// 0; bucket i (i >= 1) counts values in [2^(i-1), 2^i - 1]. Cycle latencies
// in the simulator span from 2 (L1 hit) to a few hundred (DRAM plus
// first-access descent), so the populated range is narrow and the bimodal
// "first access looks like a miss" signature shows as two separated modes.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [65]uint64
}

// BucketOf returns the bucket index for a value.
func BucketOf(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[BucketOf(v)]++
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-th quantile (q in [0,1]),
// resolved to bucket granularity.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if n > 0 && seen > target {
			_, hi := BucketBounds(i)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// AccessClass partitions accesses by how the hierarchy serviced them.
type AccessClass int

// Access classes.
const (
	ClassHit         AccessClass = iota // served from a visible resident line
	ClassMiss                           // tag miss, filled from below
	ClassFirstAccess                    // resident but delayed (s-bit clear)
	classCount
)

func (c AccessClass) String() string {
	switch c {
	case ClassHit:
		return "hit"
	case ClassMiss:
		return "miss"
	case ClassFirstAccess:
		return "first-access"
	default:
		return fmt.Sprintf("AccessClass(%d)", int(c))
	}
}

// Classify maps an access result to its class.
func Classify(res cache.Result) AccessClass {
	switch {
	case res.FirstAccess:
		return ClassFirstAccess
	case res.Hit:
		return ClassHit
	default:
		return ClassMiss
	}
}

// maxLevel is the deepest service level a Result reports (1 = L1, 2 = LLC,
// 3 = memory / remote forward).
const maxLevel = 3

// LatencyHistograms keys one Histogram per (service level, access class),
// plus per access kind (fetch/load/store) totals.
type LatencyHistograms struct {
	ByLevelClass [maxLevel + 1][classCount]Histogram
	ByKind       [3]Histogram // indexed by cache.Kind
}

// Observe records one access result.
func (l *LatencyHistograms) Observe(kind cache.Kind, res cache.Result) {
	lvl := res.Level
	if lvl < 0 || lvl > maxLevel {
		lvl = 0
	}
	l.ByLevelClass[lvl][Classify(res)].Observe(res.Latency)
	if k := int(kind); k >= 0 && k < len(l.ByKind) {
		l.ByKind[k].Observe(res.Latency)
	}
}

// Total returns the number of observed accesses.
func (l *LatencyHistograms) Total() uint64 {
	var n uint64
	for lvl := range l.ByLevelClass {
		for cls := range l.ByLevelClass[lvl] {
			n += l.ByLevelClass[lvl][cls].Count
		}
	}
	return n
}

func levelName(lvl int) string {
	switch lvl {
	case 1:
		return "L1"
	case 2:
		return "LLC"
	case 3:
		return "mem"
	default:
		return fmt.Sprintf("level%d", lvl)
	}
}

// Render returns a terminal rendering: one bar chart per populated
// (level, class) histogram over its populated bucket range.
func (l *LatencyHistograms) Render() string {
	var sb strings.Builder
	sb.WriteString("latency histograms (log2 cycle buckets)\n")
	for lvl := 1; lvl <= maxLevel; lvl++ {
		for cls := AccessClass(0); cls < classCount; cls++ {
			h := &l.ByLevelClass[lvl][cls]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "\n%s/%s: n=%d mean=%.1f p50<=%d p99<=%d max=%d\n",
				levelName(lvl), cls, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max)
			lo, hi := BucketOf(h.Min), BucketOf(h.Max)
			for i := lo; i <= hi; i++ {
				bLo, bHi := BucketBounds(i)
				bar := barOf(h.Buckets[i], h.Count, 40)
				fmt.Fprintf(&sb, "  [%4d,%4d] %-40s %d\n", bLo, bHi, bar, h.Buckets[i])
			}
		}
	}
	return sb.String()
}

func barOf(n, total uint64, width int) string {
	if total == 0 || n == 0 {
		return ""
	}
	w := int(float64(n) / float64(total) * float64(width))
	if w == 0 {
		w = 1
	}
	return strings.Repeat("#", w)
}

// Table renders every populated (level, class) histogram as CSV-ready rows.
func (l *LatencyHistograms) Table() *stats.Table {
	tb := stats.NewTable("level", "class", "bucket_lo", "bucket_hi", "count")
	for lvl := 1; lvl <= maxLevel; lvl++ {
		for cls := AccessClass(0); cls < classCount; cls++ {
			h := &l.ByLevelClass[lvl][cls]
			if h.Count == 0 {
				continue
			}
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				lo, hi := BucketBounds(i)
				tb.Add(levelName(lvl), cls.String(), lo, hi, n)
			}
		}
	}
	return tb
}
