// Package promtext parses and lints the Prometheus text exposition format
// (version 0.0.4) — just enough of it to validate what the job service's
// /metrics endpoint emits. The server tests parse two live scrapes through
// it and assert counter monotonicity; cmd/promcheck wraps it for the CI
// smoke job; the bench client's dashboard reads queue depth through it.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed time series sample.
type Sample struct {
	// Name is the metric name (without labels).
	Name string
	// Labels are the label pairs in appearance order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
	// Line is the 1-based source line, for error messages.
	Line int
}

// Label is one name="value" pair with the escape sequences decoded.
type Label struct {
	Name, Value string
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Key identifies the series: name plus sorted label pairs, re-escaped. Two
// scrapes' samples with equal keys are the same series.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	pairs := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		pairs[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(pairs)
	return s.Name + "{" + strings.Join(pairs, ",") + "}"
}

// Family is one metric family: its # HELP/# TYPE metadata and samples.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, summary, histogram, untyped
	Samples []Sample
}

// Metrics is a parsed exposition.
type Metrics struct {
	// Families in appearance order.
	Families []Family
	byName   map[string]*Family
}

// Family returns the named family (nil when absent). Summary/histogram
// child series (name_sum, name_count, name_bucket) resolve to their parent.
func (m *Metrics) Family(name string) *Family {
	if f := m.byName[name]; f != nil {
		return f
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := m.byName[base]; f != nil && (f.Type == "summary" || f.Type == "histogram") {
				return f
			}
		}
	}
	return nil
}

// Samples returns every sample across all families, in appearance order.
func (m *Metrics) Samples() []Sample {
	var out []Sample
	for _, f := range m.Families {
		out = append(out, f.Samples...)
	}
	return out
}

// Sample returns the first sample whose series key matches name and labels
// exactly, or nil.
func (m *Metrics) Sample(name string, labels ...Label) *Sample {
	want := Sample{Name: name, Labels: labels}.Key()
	for _, f := range m.Families {
		for i := range f.Samples {
			if f.Samples[i].Key() == want {
				return &f.Samples[i]
			}
		}
	}
	return nil
}

// Parse reads a text exposition. It is strict: malformed lines, samples
// without a preceding # TYPE and # HELP, duplicate metadata, bad escapes,
// and unparsable values are all errors — Parse doubles as the lint the
// /metrics tests and cmd/promcheck run.
func Parse(r io.Reader) (*Metrics, error) {
	m := &Metrics{byName: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.TrimSpace(text) == "":
			continue
		case strings.HasPrefix(text, "# HELP "):
			rest := strings.TrimPrefix(text, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", line)
			}
			f := m.family(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", line, name)
			}
			f.Help = help
		case strings.HasPrefix(text, "# TYPE "):
			rest := strings.TrimPrefix(text, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE", line)
			}
			switch kind {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", line, kind)
			}
			f := m.family(name)
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", line, name)
			}
			f.Type = kind
		case strings.HasPrefix(text, "#"):
			continue // other comments are legal and ignored
		default:
			s, err := parseSample(text, line)
			if err != nil {
				return nil, err
			}
			f := m.Family(s.Name)
			if f == nil {
				return nil, fmt.Errorf("line %d: sample %s has no # TYPE", line, s.Name)
			}
			if f.Help == "" {
				return nil, fmt.Errorf("line %d: sample %s has no # HELP", line, s.Name)
			}
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range m.Families {
		if f.Type == "" {
			return nil, fmt.Errorf("metric %s has HELP but no TYPE", f.Name)
		}
	}
	return m, nil
}

// family returns (creating if needed) the family record for name.
func (m *Metrics) family(name string) *Family {
	if f := m.byName[name]; f != nil {
		return f
	}
	m.Families = append(m.Families, Family{Name: name})
	f := &m.Families[len(m.Families)-1]
	m.byName[name] = f
	return f
}

// validName reports whether s is a legal metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(text string, line int) (Sample, error) {
	s := Sample{Line: line}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("line %d: sample %q has no value", line, text)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", line, s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parseLabels(rest[1:], line)
		if err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want `value [timestamp]` after %s, got %q", line, s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("line %d: value %q: %v", line, fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `name="value",...}` (the caller consumed the opening
// brace), decoding the \\, \", and \n escapes. It returns the remainder
// after the closing brace.
func parseLabels(rest string, line int) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: label without '='", line)
		}
		name := rest[:eq]
		if !validName(name) || strings.ContainsRune(name, ':') {
			return nil, "", fmt.Errorf("line %d: invalid label name %q", line, name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("line %d: label %s value is not quoted", line, name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("line %d: unterminated label value for %s", line, name)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return nil, "", fmt.Errorf("line %d: dangling escape in label %s", line, name)
				}
				e := rest[0]
				rest = rest[1:]
				switch e {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("line %d: invalid escape \\%c in label %s", line, e, name)
				}
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("line %d: raw newline in label %s", line, name)
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("line %d: expected ',' or '}' after label %s", line, name)
	}
}

// CheckMonotonic compares two scrapes (before, after) and returns an error
// naming the first counter series that moved backwards. Series present only
// in one scrape are ignored (families appear on first use).
func CheckMonotonic(before, after *Metrics) error {
	prev := map[string]float64{}
	for _, f := range before.Families {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			prev[s.Key()] = s.Value
		}
	}
	for _, f := range after.Families {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			if p, ok := prev[s.Key()]; ok && s.Value < p {
				return fmt.Errorf("counter %s went backwards: %g -> %g", s.Key(), p, s.Value)
			}
		}
	}
	return nil
}
