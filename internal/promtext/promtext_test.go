package promtext

import (
	"strings"
	"testing"
)

const sample = `# HELP jobs_accepted_total Jobs accepted.
# TYPE jobs_accepted_total counter
jobs_accepted_total 42
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 3
# HELP job_duration_seconds Job wall time.
# TYPE job_duration_seconds summary
job_duration_seconds{quantile="0.5"} 0.25
job_duration_seconds{quantile="0.99"} 1.5
job_duration_seconds_sum 12.5
job_duration_seconds_count 42
# HELP weird_label Label escaping.
# TYPE weird_label gauge
weird_label{path="a\"b\\c\nd"} 1
`

func TestParseSample(t *testing.T) {
	m, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Families) != 4 {
		t.Fatalf("families = %d, want 4", len(m.Families))
	}
	if f := m.Family("jobs_accepted_total"); f == nil || f.Type != "counter" || f.Help != "Jobs accepted." {
		t.Fatalf("jobs_accepted_total family = %+v", f)
	}
	if s := m.Sample("queue_depth"); s == nil || s.Value != 3 {
		t.Fatalf("queue_depth = %+v", s)
	}
	// Summary children resolve to the parent family.
	if f := m.Family("job_duration_seconds_sum"); f == nil || f.Name != "job_duration_seconds" {
		t.Fatalf("sum family = %+v", f)
	}
	if s := m.Sample("job_duration_seconds", Label{"quantile", "0.99"}); s == nil || s.Value != 1.5 {
		t.Fatalf("p99 = %+v", s)
	}
	// Escapes decode.
	if s := m.Sample("weird_label", Label{"path", "a\"b\\c\nd"}); s == nil {
		t.Fatalf("escaped label did not round-trip; samples: %+v", m.Samples())
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "# HELP x h\nx 1\n",
		"no HELP":          "# TYPE x gauge\nx 1\n",
		"dup TYPE":         "# HELP x h\n# TYPE x gauge\n# TYPE x gauge\nx 1\n",
		"dup HELP":         "# HELP x h\n# HELP x h\n# TYPE x gauge\nx 1\n",
		"bad type":         "# HELP x h\n# TYPE x widget\nx 1\n",
		"bad value":        "# HELP x h\n# TYPE x gauge\nx banana\n",
		"bad name":         "# HELP 9x h\n# TYPE 9x gauge\n9x 1\n",
		"bad escape":       "# HELP x h\n# TYPE x gauge\nx{l=\"a\\qb\"} 1\n",
		"unquoted label":   "# HELP x h\n# TYPE x gauge\nx{l=v} 1\n",
		"unterminated":     "# HELP x h\n# TYPE x gauge\nx{l=\"v} 1\n",
		"type after data":  "# HELP x h\n# TYPE x gauge\nx 1\n# TYPE x gauge\n",
		"help without any": "# HELP x h\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

func TestParseIgnoresOtherComments(t *testing.T) {
	m, err := Parse(strings.NewReader("# a stray comment\n# HELP x h\n# TYPE x gauge\nx 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Sample("x"); s == nil || s.Value != 1 {
		t.Fatalf("x = %+v", s)
	}
}

func TestSampleKeySortsLabels(t *testing.T) {
	a := Sample{Name: "m", Labels: []Label{{"b", "2"}, {"a", "1"}}}
	b := Sample{Name: "m", Labels: []Label{{"a", "1"}, {"b", "2"}}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestCheckMonotonic(t *testing.T) {
	mk := func(v string) *Metrics {
		m, err := Parse(strings.NewReader(
			"# HELP c x\n# TYPE c counter\nc " + v + "\n# HELP g x\n# TYPE g gauge\ng 100\n"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if err := CheckMonotonic(mk("5"), mk("7")); err != nil {
		t.Fatalf("forward counter flagged: %v", err)
	}
	if err := CheckMonotonic(mk("7"), mk("5")); err == nil {
		t.Fatal("backward counter not flagged")
	}
	// Gauges may move freely: only the counter family is compared.
	before, _ := Parse(strings.NewReader("# HELP g x\n# TYPE g gauge\ng 100\n"))
	after, _ := Parse(strings.NewReader("# HELP g x\n# TYPE g gauge\ng 1\n"))
	if err := CheckMonotonic(before, after); err != nil {
		t.Fatalf("gauge movement flagged: %v", err)
	}
}
