// Leg sharding: every experiment a Job can dispatch is an index-addressed
// list of independent legs whose rendered rows concatenate positionally into
// the full table (the sweeps already run exactly this way internally, via
// runner.MapWorkersCtx). JobLegs / RunJobLeg / MergeLegTables expose that
// structure so a coordinator can schedule the legs of one job across many
// executors — worker goroutines, separate worker processes, or a mix — and
// reassemble a byte-identical result: stats.Table rows are pre-rendered
// strings, each leg's rows depend only on the canonical job and the leg
// index, and the merge is a positional concatenation.
//
// The leg unit per experiment:
//
//	table2       one SPEC pair            (one Table II row)
//	parsec       one PARSEC workload      (one row)
//	llc-sweep    one LLC size, all pairs  (one sweep point; geomean is
//	                                       within-size, so it shards cleanly)
//	ablation     one defense config       (re-runs the baseline per leg for
//	                                       normalization; row 0 IS the baseline)
//	bookkeeping  one slice length         (one row)
//	matrix       one defense row          (runs the attack columns and the
//	                                       perf baseline for that row)
//	security     the whole experiment     (four short sequential runs)
//
// Sharded ablation and matrix legs re-run their normalization baseline
// inside each leg, so a sharded run simulates more cycles than an unsharded
// one — the rendered bytes are identical (determinism), but the resource
// account is not. Callers that need exact resource equivalence with an
// unsharded run (TestResourceEquivalence pins table2) get it on the
// experiments whose legs are disjoint.
package harness

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/stats"
	"timecache/internal/workload"
)

// JobLegs returns how many schedulable legs the job dispatches. The count is
// a pure function of the canonical job, so a coordinator and a worker that
// were handed the same job always agree on the leg address space.
func JobLegs(j Job) (int, error) {
	if err := j.Validate(); err != nil {
		return 0, err
	}
	j = j.Canonical()
	switch j.Experiment {
	case ExpTableII:
		pairs, _ := selectPairs(j.Pairs)
		return len(pairs), nil
	case ExpParsec:
		return len(j.Workloads), nil
	case ExpLLCSweep:
		return len(j.LLCSizes), nil
	case ExpAblation:
		return len(ablationConfigs()), nil
	case ExpBookkeeping:
		return len(j.SliceCycles), nil
	case ExpSecurity:
		return 1, nil
	case ExpMatrix:
		return len(j.Defenses), nil
	}
	return 0, fmt.Errorf("harness: unknown experiment %q", j.Experiment)
}

// RunJobLeg runs one leg of the job and renders just that leg's table slice
// (same header as the full table, the leg's rows only). The leg index
// addresses the canonical job: RunJobLeg(j, i) computes row block i of
// RunJob(j) byte-identically, regardless of which process or pool runs it.
func RunJobLeg(j Job, leg int, opts Options) (*stats.Table, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	j = j.Canonical()
	n, _ := JobLegs(j)
	if leg < 0 || leg >= n {
		return nil, fmt.Errorf("harness: job has %d legs, leg %d out of range", n, leg)
	}
	switch j.Experiment {
	case ExpTableII:
		pairs, _ := selectPairs(j.Pairs)
		return TableIITable(pairs[leg:leg+1], opts)
	case ExpParsec:
		return ParsecTable(j.Workloads[leg:leg+1], opts)
	case ExpLLCSweep:
		pairs, _ := selectPairs(j.Pairs)
		return LLCSweepTable(j.LLCSizes[leg:leg+1], pairs, opts)
	case ExpAblation:
		pairs, _ := selectPairs(j.Pairs)
		return ablationRow(pairs[0], leg, opts)
	case ExpBookkeeping:
		return BookkeepingTable(j.SliceCycles[leg:leg+1], opts)
	case ExpSecurity:
		return SecurityTable(j.KeyBits, j.Seed, opts)
	case ExpMatrix:
		pairs, _ := selectPairs(j.Pairs)
		return MatrixTable(j.Defenses[leg:leg+1], j.Attacks, pairs, j.AttackBits, j.Seed, opts)
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", j.Experiment)
}

// MergeLegTables reassembles a full result table from its per-leg slices in
// leg order. Headers must agree (they are a function of the experiment, so a
// mismatch means the parts came from different jobs); rows concatenate
// positionally, which is exactly how the unsharded runners order them.
func MergeLegTables(j Job, parts []*stats.Table) (*stats.Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("harness: merge of zero leg tables")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("harness: leg %d of %s has no table", i, j.Experiment)
		}
		if len(p.Header) != len(parts[0].Header) {
			return nil, fmt.Errorf("harness: leg %d header width %d != leg 0 width %d",
				i, len(p.Header), len(parts[0].Header))
		}
		for c, h := range p.Header {
			if h != parts[0].Header[c] {
				return nil, fmt.Errorf("harness: leg %d header %q != leg 0 header %q", i, h, parts[0].Header[c])
			}
		}
	}
	out := stats.NewTable(parts[0].Header...)
	for _, p := range parts {
		out.Rows = append(out.Rows, p.Rows...)
	}
	return out, nil
}

// ablationRow renders row idx of the defense ablation. Normalization needs
// the baseline cycles, so every non-baseline leg runs two machines (baseline
// + its defense); the rendered row is still byte-identical to the unsharded
// table because both runs are deterministic.
func ablationRow(pair workload.Pair, idx int, opts Options) (*stats.Table, error) {
	opts = opts.withDefaults()
	pa, err := workload.Spec(pair.A)
	if err != nil {
		return nil, err
	}
	pb, err := workload.Spec(pair.B)
	if err != nil {
		return nil, err
	}
	frames := workload.FramesNeeded(pa) + workload.FramesNeeded(pb) + 1024

	configs := ablationConfigs()
	cfg := configs[idx]
	pool := opts.newPool()
	run := func(c ablationConfig) (uint64, error) {
		if err := opts.ctx().Err(); err != nil {
			return 0, err
		}
		mcfg := machineConfig(cache.SecOff, 1, opts, frames)
		mcfg.Mode, mcfg.Defense = cache.SecOff, c.kind
		l, err := specLeg(pair, mcfg, c.name, opts, nil)
		if err != nil {
			return 0, err
		}
		m, err := runLeg(pool, opts, l)
		if err != nil {
			return 0, err
		}
		return m.cycles, nil
	}
	baseline, err := run(configs[0])
	if err != nil {
		return nil, err
	}
	cycles := baseline
	if idx != 0 {
		if cycles, err = run(cfg); err != nil {
			return nil, err
		}
	}
	tab := stats.NewTable("defense", "normalized-time")
	tab.Add(cfg.name, stats.Normalized(cycles, baseline))
	return tab, nil
}
