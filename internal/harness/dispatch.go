// Job dispatch: a declarative description of one experiment, attack, or
// sweep run, decoupled from any CLI flag parsing, plus the renderers that
// turn results into the exact tables cmd/reproduce and the golden artifacts
// use. The HTTP job service (internal/server) and the golden tests both
// funnel through this layer, so a job submitted over the network is
// byte-identical to one run in-process.
package harness

import (
	"fmt"
	"sort"
	"time"

	"timecache/internal/attack"
	"timecache/internal/cache"
	"timecache/internal/defense"
	"timecache/internal/stats"
	"timecache/internal/workload"
)

// Experiment names Dispatchable job kinds.
const (
	ExpTableII     = "table2"      // SPEC pairs: Fig. 7/8, Table II rows
	ExpParsec      = "parsec"      // PARSEC workloads: Fig. 9a/9b
	ExpLLCSweep    = "llc-sweep"   // Fig. 10 LLC-size sensitivity
	ExpAblation    = "ablation"    // defense comparison on one pair
	ExpBookkeeping = "bookkeeping" // §VI-D slice-length scaling
	ExpSecurity    = "security"    // §VI-A microbenchmark + RSA attack
	ExpMatrix      = "matrix"      // defense×attack leakage/overhead grid
)

// Experiments lists the dispatchable experiment names, sorted.
func Experiments() []string {
	out := []string{ExpTableII, ExpParsec, ExpLLCSweep, ExpAblation, ExpBookkeeping, ExpSecurity, ExpMatrix}
	sort.Strings(out)
	return out
}

// Job describes one dispatchable run. Zero-valued selection fields fall back
// to each experiment's full default set, so {Experiment: "table2"} runs the
// whole SPEC half of Table II while {Experiment: "table2", Pairs: ["2Xlbm"]}
// runs one row.
type Job struct {
	// Experiment is one of the Exp* names.
	Experiment string
	// Pairs selects Table II / sweep / ablation workload pairs by label
	// ("2Xlbm", "leslie+gobmk"). Empty selects the experiment's default:
	// every pair for table2, the same-benchmark pairs for llc-sweep, and
	// 2Xgobmk for ablation (which takes exactly one pair).
	Pairs []string
	// Workloads selects PARSEC workloads by name. Empty selects all.
	Workloads []string
	// LLCSizes are the llc-sweep points in bytes. Empty selects the Fig. 10
	// default sweep (512 KB – 4 MB).
	LLCSizes []int
	// SliceCycles are the bookkeeping-scaling slice lengths. Empty selects
	// the default ladder (100k – 800k).
	SliceCycles []uint64
	// KeyBits is the security experiment's RSA key length (default 64).
	KeyBits int
	// Seed seeds the security and matrix experiments' secret generation
	// (default 12345).
	Seed uint64
	// Defenses selects the matrix experiment's rows by registry kind
	// (defense.Kinds). Empty selects every registered defense.
	Defenses []string
	// Attacks selects the matrix experiment's leakage columns
	// (MatrixAttacks). Empty selects the full attack corpus.
	Attacks []string
	// AttackBits is the secret length each matrix attack transmits
	// (default 32).
	AttackBits int
}

// Validate checks the job before it is queued: the experiment must exist and
// every named pair/workload must resolve. It is intentionally strict so the
// job service can reject bad specs with a 400 instead of failing at run time.
func (j Job) Validate() error {
	switch j.Experiment {
	case ExpTableII, ExpLLCSweep:
		_, err := selectPairs(j.Pairs)
		return err
	case ExpAblation:
		if _, err := selectPairs(j.Pairs); err != nil {
			return err
		}
		if len(j.Pairs) > 1 {
			// Report the requested count, not the resolved one: with empty
			// labels selectPairs resolves to the full default set, and the
			// resolved count would misstate what the client actually asked
			// for.
			return fmt.Errorf("harness: ablation takes exactly one pair, got %d", len(j.Pairs))
		}
		return nil
	case ExpParsec:
		for _, name := range j.Workloads {
			if _, err := workload.Parsec(name); err != nil {
				return err
			}
		}
		return nil
	case ExpBookkeeping, ExpSecurity:
		return nil
	case ExpMatrix:
		if _, err := selectPairs(j.Pairs); err != nil {
			return err
		}
		for _, d := range j.Defenses {
			if !defense.Valid(d) {
				return fmt.Errorf("harness: unknown defense %q (want one of %v)", d, defense.Kinds())
			}
		}
		for _, a := range j.Attacks {
			if matrixAttackByName(a) == nil {
				return fmt.Errorf("harness: unknown attack %q (want one of %v)", a, MatrixAttacks())
			}
		}
		if j.AttackBits < 0 {
			return fmt.Errorf("harness: matrix attack bits must be non-negative, got %d", j.AttackBits)
		}
		return nil
	case "":
		return fmt.Errorf("harness: job has no experiment (want one of %v)", Experiments())
	default:
		return fmt.Errorf("harness: unknown experiment %q (want one of %v)", j.Experiment, Experiments())
	}
}

// selectPairs resolves pair labels against the Table II list, preserving
// request order. Empty labels select every pair. The lookup is a linear scan
// over the 24-entry list — it sits on the fingerprint/admission path, where
// a map would cost an allocation per call for no measurable speedup.
func selectPairs(labels []string) ([]workload.Pair, error) {
	all := workload.SpecPairs()
	if len(labels) == 0 {
		return all, nil
	}
	out := make([]workload.Pair, 0, len(labels))
lookup:
	for _, l := range labels {
		for _, p := range all {
			if p.Label == l {
				out = append(out, p)
				continue lookup
			}
		}
		return nil, fmt.Errorf("harness: unknown workload pair %q", l)
	}
	return out, nil
}

// RunJob validates and runs a job, returning its rendered result table. The
// run obeys opts.Ctx (cancellation, deadlines), draws machines from
// opts.Pool when set, and reports opts.Progress after each completed leg.
//
// The job is canonicalized first (Canonical is the single source of truth
// for every defaulted selection), so the result depends only on the
// canonical form — which is exactly what Fingerprint hashes and what the
// result cache in front of the job service keys on.
func RunJob(j Job, opts Options) (*stats.Table, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	j = j.Canonical()
	switch j.Experiment {
	case ExpTableII:
		pairs, _ := selectPairs(j.Pairs)
		return TableIITable(pairs, opts)
	case ExpParsec:
		return ParsecTable(j.Workloads, opts)
	case ExpLLCSweep:
		pairs, _ := selectPairs(j.Pairs)
		return LLCSweepTable(j.LLCSizes, pairs, opts)
	case ExpAblation:
		pairs, _ := selectPairs(j.Pairs)
		return AblationTable(pairs[0], opts)
	case ExpBookkeeping:
		return BookkeepingTable(j.SliceCycles, opts)
	case ExpSecurity:
		return SecurityTable(j.KeyBits, j.Seed, opts)
	case ExpMatrix:
		pairs, _ := selectPairs(j.Pairs)
		return MatrixTable(j.Defenses, j.Attacks, pairs, j.AttackBits, j.Seed, opts)
	}
	// Unreachable: Validate rejected everything else.
	return nil, fmt.Errorf("harness: unknown experiment %q", j.Experiment)
}

func samePairs(pairs []workload.Pair) []workload.Pair {
	var out []workload.Pair
	for _, p := range pairs {
		if p.A == p.B {
			out = append(out, p)
		}
	}
	return out
}

// TableIITable runs the given pairs and renders them in the golden Table II
// slice format (results/golden/table2_slice.csv): one row per pair with
// normalized time, LLC MPKI under both modes, and per-level first-access
// MPKI. The golden tests diff this exact rendering.
func TableIITable(pairs []workload.Pair, opts Options) (*stats.Table, error) {
	rows, err := RunSpecPairs(pairs, opts)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("workload", "normalized", "mpki-base", "mpki-tc", "fa-l1i", "fa-l1d", "fa-llc")
	for _, r := range rows {
		tab.Add(r.Label, r.Normalized, r.MPKIBase, r.MPKITC,
			r.FirstAccess.L1I, r.FirstAccess.L1D, r.FirstAccess.LLC)
	}
	return tab, nil
}

// ParsecTable runs the named PARSEC workloads and renders them in the Table
// II slice format.
func ParsecTable(names []string, opts Options) (*stats.Table, error) {
	rows, err := RunParsecSet(names, opts)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("workload", "normalized", "mpki-base", "mpki-tc", "fa-l1i", "fa-l1d", "fa-llc")
	for _, r := range rows {
		tab.Add(r.Label, r.Normalized, r.MPKIBase, r.MPKITC,
			r.FirstAccess.L1I, r.FirstAccess.L1D, r.FirstAccess.LLC)
	}
	return tab, nil
}

// LLCSweepTable runs the Fig. 10 sweep over the given sizes and pairs and
// renders it in the golden sweep format (results/golden/llc_sweep.csv).
func LLCSweepTable(sizes []int, pairs []workload.Pair, opts Options) (*stats.Table, error) {
	pts, err := RunLLCSensitivity(sizes, pairs, opts)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("llc", "geomean-normalized", "overhead-pct")
	for _, p := range pts {
		tab.Add(fmt.Sprintf("%dKB", p.LLCSize>>10), p.GeoMeanNorm, p.OverheadPct)
	}
	return tab, nil
}

// AblationTable runs the defense ablation on one pair and renders it in
// cmd/reproduce's ablation format.
func AblationTable(pair workload.Pair, opts Options) (*stats.Table, error) {
	rows, err := RunDefenseAblation(pair, opts)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("defense", "normalized-time")
	for _, r := range rows {
		tab.Add(r.Defense, r.Normalized)
	}
	return tab, nil
}

// BookkeepingTable runs the §VI-D slice-length scaling and renders it in
// cmd/reproduce's bookkeeping format.
func BookkeepingTable(slices []uint64, opts Options) (*stats.Table, error) {
	pts, err := RunBookkeepingScaling(workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}, slices, opts)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("slice-cycles", "bookkeeping-pct", "total-overhead-pct")
	for _, p := range pts {
		tab.Add(fmt.Sprintf("%d", p.SliceCycles), p.BookkeepingPct, p.OverheadPct)
	}
	return tab, nil
}

// SecurityTable runs the §VI-A security evaluation (microbenchmark and RSA
// flush+reload under baseline and TimeCache) and renders it in
// cmd/reproduce's security format. The four runs are short and sequential;
// Progress is reported after each.
func SecurityTable(keyBits int, seed uint64, opts Options) (*stats.Table, error) {
	opts = opts.withDefaults()
	tab := stats.NewTable("experiment", "mode", "result")
	modes := []cache.SecMode{cache.SecOff, cache.SecTimeCache}
	total := 2 * len(modes)
	done := 0
	step := func() {
		done++
		if opts.Progress != nil {
			opts.Progress(done, total)
		}
	}
	// The attack scenarios own their machines internally, so these legs are
	// accounted by count and span only (no kernel counters to read).
	leg := func(name string, start time.Time) {
		opts.Account.AddLeg()
		if opts.Spans != nil {
			opts.Spans.Span(name, "leg", start, opts.wallNow(), nil)
		}
	}
	for _, mode := range modes {
		if err := opts.ctx().Err(); err != nil {
			return nil, err
		}
		start := opts.legStart()
		mb, err := attack.RunMicrobenchmark(mode)
		if err != nil {
			return nil, err
		}
		leg("microbenchmark/"+mode.String(), start)
		tab.Add("microbenchmark (§VI-A1)", mode.String(),
			fmt.Sprintf("%d/%d lines hit", mb.Hits, mb.Lines))
		step()
	}
	for _, mode := range modes {
		if err := opts.ctx().Err(); err != nil {
			return nil, err
		}
		start := opts.legStart()
		rsa, err := attack.RunRSA(mode, keyBits, seed)
		if err != nil {
			return nil, err
		}
		leg("rsa/"+mode.String(), start)
		tab.Add("RSA flush+reload (§VI-A2)", mode.String(),
			fmt.Sprintf("%.0f%% of key bits, %d hits, victim correct=%v",
				rsa.Accuracy*100, rsa.Hits, rsa.VictimCorrect))
		step()
	}
	return tab, nil
}
