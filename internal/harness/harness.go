// Package harness runs the paper's experiments end to end: it builds paired
// (baseline, TimeCache) machines, executes the calibrated workloads, and
// reduces the counters to the quantities each table and figure reports.
package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"timecache/internal/cache"
	"timecache/internal/core"
	"timecache/internal/defense"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/runner"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
	"timecache/internal/workload"
)

// Options controls experiment scale and fidelity.
type Options struct {
	// InstrsPerProc is the per-process measured instruction budget (the
	// paper runs 1B instructions in gem5; the default here is sized for
	// seconds-scale runs — raise it for tighter statistics).
	InstrsPerProc uint64
	// WarmupInstrs run before measurement starts so cold-start misses do
	// not pollute steady-state MPKI and timing (the paper's 1B-instruction
	// runs amortize them; short runs must exclude them explicitly).
	WarmupInstrs uint64
	// LLCSize overrides the last-level cache size (Fig. 10 sweeps it).
	LLCSize int
	// GateLevel routes context-switch comparisons through the gate-level
	// bit-serial model.
	GateLevel bool
	// SliceCycles overrides the scheduler time slice.
	SliceCycles uint64
	// CoherenceCheck cross-checks the LLC sharer directory against a
	// brute-force probe of every L1 on every coherence event (debug mode;
	// slows runs by O(cores) per access).
	CoherenceCheck bool
	// Telemetry, when non-nil, attaches a telemetry collector to every run;
	// configured output paths are suffixed with the workload label and mode
	// so one config fans out over a whole sweep.
	Telemetry *telemetry.Config
	// Jobs is the number of simulation runs executed concurrently by the
	// sweep entry points (RunAllSpecPairs, RunAllParsec, RunLLCSensitivity,
	// RunDefenseAblation, RunBookkeepingScaling). Each run builds its own
	// machine, so results are bit-identical to sequential execution; see
	// internal/runner. Zero or negative selects runtime.GOMAXPROCS(0);
	// 1 is strictly sequential.
	Jobs int
	// Progress, when non-nil, is called after each completed run of a sweep
	// with (done, total). Calls are serialized.
	Progress func(done, total int)
	// Ctx, when non-nil, bounds every run: cancellation stops the simulated
	// machine within a few thousand instructions and surfaces as Ctx.Err()
	// from the sweep entry point. Nil means never cancelled.
	Ctx context.Context
	// Pool, when non-nil, supplies (and receives back) the machines for
	// every run instead of per-worker private pools. machine.Pool is safe
	// for concurrent use, so one pool may serve a whole sweep — the job
	// service shares one pool per service worker across all its jobs.
	Pool *machine.Pool
	// Spans, when non-nil, receives one wall-clock span per simulated
	// machine run (experiment leg), named "<label>/<mode>" with the run's
	// simulated cycles and instructions as args. The job service passes the
	// job's SpanRecorder here. Nil costs the run one comparison.
	Spans telemetry.SpanSink
	// Now supplies the wall timestamps for Spans. Nil means time.Now; the
	// job service injects its wall clock so traces are deterministic in
	// tests.
	Now func() time.Time
	// Account, when non-nil, accumulates the resource counters of every
	// completed run (simulated cycles, instructions, per-level accesses,
	// context switches, s-bit delayed loads). Adds are atomic, so one
	// account serves a parallel sweep. Nil costs the run one comparison.
	Account *ResourceAccount
	// Snapshot selects whether legs may reuse warm machine state through
	// the pool's snapshot shelf (see SnapshotMode). Results are identical
	// in every mode — the golden forced-on/off tests and SnapshotCheck
	// enforce it — only the work to produce them changes. The zero value
	// is SnapshotAuto.
	Snapshot SnapshotMode
	// SnapshotCheck cross-runs every snapshot-forked leg from cold and
	// errors on any counter divergence, in the spirit of CoherenceCheck: a
	// debug mode that fails loudly instead of changing results. It forces
	// Snapshot on (except under SnapshotOff) so the fork path is actually
	// exercised.
	SnapshotCheck bool
}

// SnapshotMode controls warm-state snapshot/fork reuse across legs.
type SnapshotMode int

const (
	// SnapshotAuto (the default) shelves a snapshot at each leg's warm
	// point and forks any later leg whose warmup prefix — machine Config,
	// workload spawn recipe, and instruction budgets — matches a shelved
	// key. Legs with no match run exactly as before (the snapshot capture
	// is a pure bystander: the run continues in place). Repeated
	// same-shape legs — job-service jobs sharing legs, repeated pairs —
	// skip their warmup entirely.
	SnapshotAuto SnapshotMode = iota
	// SnapshotOn additionally measures the first leg of each shape on a
	// fork of its own warm snapshot (instead of continuing in place), so
	// every measured leg exercises the fork path. Used by the golden
	// equality tests and -snapshot-check.
	SnapshotOn
	// SnapshotOff disables snapshotting entirely: every leg runs cold.
	SnapshotOff
)

// pool builds the runner options for this configuration.
func (o Options) pool() runner.Options {
	return runner.Options{Workers: o.Jobs, Progress: o.Progress}
}

// ctx returns the configured context, never nil.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// newPool returns the machine pool for one sweep worker: the shared
// Options.Pool when set, otherwise a fresh private pool.
func (o Options) newPool() *machine.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return machine.NewPool()
}

// attachTelemetry attaches a collector for a run labeled label/mode, or
// returns nil when telemetry is off.
func (o Options) attachTelemetry(k *kernel.Kernel, label string, mode cache.SecMode) *telemetry.Collector {
	if o.Telemetry == nil {
		return nil
	}
	cfg := o.Telemetry.WithSuffix(sanitizeLabel(label) + "_" + mode.String())
	col := telemetry.New(cfg).Attach(k)
	col.SetMeta("workload", label)
	col.SetMeta("mode", mode.String())
	return col
}

// finishTelemetry writes a run's telemetry outputs (nil-safe).
func finishTelemetry(col *telemetry.Collector) error {
	if col == nil {
		return nil
	}
	return col.Finish()
}

// wallNow reads the injected wall clock (time.Now when unset).
func (o Options) wallNow() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// legStart stamps the beginning of one machine run when spans are on. The
// zero time when Spans is nil keeps the disabled path off the clock.
func (o Options) legStart() time.Time {
	if o.Spans == nil {
		return time.Time{}
	}
	return o.wallNow()
}

// finishLeg accounts one completed machine run and records its span. Both
// hooks are leg-granularity: nothing here runs on the per-access or
// per-instruction hot paths, so an attached account or sink costs one
// counter snapshot per leg and a disabled one costs two nil checks.
func (o Options) finishLeg(name string, start time.Time, k *kernel.Kernel) {
	if o.Account == nil && o.Spans == nil {
		return
	}
	m := snapCounters(k)
	o.Account.add(m)
	if o.Spans != nil {
		o.Spans.Span(name, "leg", start, o.wallNow(), map[string]any{
			"sim_cycles":   m.cycles,
			"instructions": m.instrs,
		})
	}
}

// sanitizeLabel makes a workload label safe as a filename fragment.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ', ':':
			return '-'
		}
		return r
	}, label)
}

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.InstrsPerProc == 0 {
		o.InstrsPerProc = 300_000
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = 250_000
	}
	if o.LLCSize == 0 {
		o.LLCSize = 2 << 20
	}
	return o
}

// measurement is a counter snapshot delta between the warm point (when the
// last process crosses its warmup budget) and the end of the run. It keeps
// whole Stats structs per level; derived quantities (LLC MPKI inputs,
// per-level first accesses) are read off the structs in result().
type measurement struct {
	cycles uint64
	instrs uint64
	l1i    cache.Stats // aggregated across cores
	l1d    cache.Stats
	llc    cache.Stats
	kern   kernel.Stats
}

// snapCounters captures the counters measurement subtracts.
func snapCounters(k *kernel.Kernel) measurement {
	h := k.Hierarchy()
	m := measurement{
		cycles: maxClock(k),
		instrs: totalInstructions(k),
		llc:    h.LLC().Stats,
		kern:   k.Stats,
	}
	for c := 0; c < h.Config().Cores; c++ {
		m.l1i = m.l1i.Add(h.L1I(c).Stats)
		m.l1d = m.l1d.Add(h.L1D(c).Stats)
	}
	return m
}

func (m measurement) sub(start measurement) measurement {
	return measurement{
		cycles: m.cycles - start.cycles,
		instrs: m.instrs - start.instrs,
		l1i:    m.l1i.Delta(start.l1i),
		l1d:    m.l1d.Delta(start.l1d),
		llc:    m.llc.Delta(start.llc),
		kern:   m.kern.Delta(start.kern),
	}
}

// LevelMPKI holds per-cache-level first-access (delayed access) MPKI, the
// quantity of Figures 8 and 9b.
type LevelMPKI struct {
	L1I, L1D, LLC float64
}

// PairResult is one workload row across both configurations.
type PairResult struct {
	Label string

	BaselineCycles  uint64
	TimeCacheCycles uint64
	// Normalized is TimeCacheCycles/BaselineCycles (Fig. 7 / 9a / 10).
	Normalized float64

	// MPKIBase and MPKITC are LLC misses (including first-access misses)
	// per kilo-instruction, Table II's last two columns.
	MPKIBase, MPKITC float64

	// FirstAccess is the delayed-access MPKI per level under TimeCache
	// (Fig. 8 / 9b).
	FirstAccess LevelMPKI

	// BookkeepingPct is the share of total TimeCache cycles spent on s-bit
	// save/restore (the paper reports ~0.02%).
	BookkeepingPct float64
	// ContextSwitches under the TimeCache run.
	ContextSwitches uint64
}

// machineConfig derives the machine assembly config for an experiment. The
// defense registry kind is spelled out alongside the legacy mode so every
// experiment leg runs through the Defense seam (for the historical modes the
// two spellings configure identical machines; TestDefenseEquivalence pins
// that).
func machineConfig(mode cache.SecMode, cores int, opts Options, frames int) machine.Config {
	return machine.Config{
		Mode:           mode,
		Defense:        defense.KindOfMode(mode),
		Cores:          cores,
		LLCSize:        opts.LLCSize,
		GateLevel:      opts.GateLevel,
		CoherenceCheck: opts.CoherenceCheck,
		SliceCycles:    opts.SliceCycles,
		PhysFrames:     frameBudget(frames),
	}
}

// frameBudget rounds a frame requirement up to an 8192-frame (32 MB)
// bucket. Physical capacity only gates out-of-memory — it never changes
// timing — so coarse buckets let workloads with similar footprints share
// one pooled machine shape instead of splitting the pool per exact size.
func frameBudget(frames int) int {
	const bucket = 8192
	return (frames + bucket - 1) / bucket * bucket
}

// snapKey identifies a shared warmup prefix on the pool's snapshot shelf.
// Two legs share warm state exactly when the full machine Config, the
// workload spawn recipe (kind + profile names + seeds are fixed per kind),
// and the instruction budgets all match — mode, LLC size, slice length,
// partitioning, and flush policy are all part of machine.Config, so
// distinct sweep legs can never alias.
type snapKey struct {
	cfg    machine.Config
	kind   string // "spec" (two processes, one core) or "parsec" (2 threads, 2 cores)
	a, b   string
	warmup uint64
	total  uint64
}

// leg describes one machine run: how to build its machine, how to populate
// it, and how to label its outputs. runLeg executes it cold, from a
// snapshot fork, or cold-with-capture depending on Options.Snapshot.
type leg struct {
	label string         // span name and error-message subject, e.g. "2Xlbm/timecache"
	mcfg  machine.Config // machine shape (includes mode and overrides)
	key   snapKey        // warmup-prefix identity on the snapshot shelf
	// attach, when non-nil, attaches telemetry to the kernel (cold path
	// only; telemetry disables snapshotting).
	attach func(*kernel.Kernel) *telemetry.Collector
	// spawn installs the leg's processes with their warmup set and OnWarm
	// wired to onWarm, returning how many processes must warm before the
	// measurement window starts.
	spawn func(k *kernel.Kernel, onWarm func()) (int, error)
}

// runLeg runs one leg and returns its steady-state measurement, routing
// through the snapshot shelf per opts.Snapshot. Telemetry runs always take
// the cold path: a collector observes the whole run, warmup included, so a
// forked run would change its outputs.
func runLeg(pool *machine.Pool, opts Options, l leg) (measurement, error) {
	mode := opts.Snapshot
	if opts.SnapshotCheck && mode != SnapshotOff {
		mode = SnapshotOn
	}
	if opts.Telemetry != nil {
		mode = SnapshotOff
	}
	if mode == SnapshotOff {
		return runLegCold(pool, opts, l)
	}
	if s := pool.Snapshot(l.key); s != nil {
		return runLegFork(pool, opts, l, s)
	}
	return runLegCapture(pool, opts, l, mode)
}

// runLegCold is the pre-snapshot behavior: pooled machine, full run, warm
// subtraction.
func runLegCold(pool *machine.Pool, opts Options, l leg) (measurement, error) {
	legStart := opts.legStart()
	m := pool.Get(l.mcfg)
	defer pool.Put(m)
	k := m.Kernel()
	var warm measurement
	warmed, targets := 0, -1
	onWarm := func() {
		warmed++
		if warmed == targets {
			warm = snapCounters(k)
		}
	}
	n, err := l.spawn(k, onWarm)
	if err != nil {
		return measurement{}, err
	}
	targets = n
	var col *telemetry.Collector
	if l.attach != nil {
		col = l.attach(k)
	}
	k.RunCtx(opts.ctx(), 1<<62)
	if err := opts.ctx().Err(); err != nil {
		return measurement{}, err
	}
	if !k.AllExited() {
		return measurement{}, fmt.Errorf("harness: %s did not finish", l.label)
	}
	if warmed != targets {
		return measurement{}, fmt.Errorf("harness: %s never reached steady state", l.label)
	}
	if err := finishTelemetry(col); err != nil {
		return measurement{}, err
	}
	opts.finishLeg(l.label, legStart, k)
	return snapCounters(k).sub(warm), nil
}

// runLegCapture is the shelf-miss path: run from cold, pause at the warm
// point (Interrupt stops Run between scheduler steps within a poll stride),
// shelve a snapshot for later same-key legs, then either resume in place
// (SnapshotAuto — the pause and capture are invisible to the simulation) or
// measure on a fork of the snapshot just taken (SnapshotOn).
func runLegCapture(pool *machine.Pool, opts Options, l leg, mode SnapshotMode) (measurement, error) {
	legStart := opts.legStart()
	m := pool.Get(l.mcfg)
	defer pool.Put(m)
	k := m.Kernel()
	var warm measurement
	warmed, targets := 0, -1
	onWarm := func() {
		warmed++
		if warmed == targets {
			warm = snapCounters(k)
			k.Interrupt()
		}
	}
	n, err := l.spawn(k, onWarm)
	if err != nil {
		return measurement{}, err
	}
	targets = n
	k.RunCtx(opts.ctx(), 1<<62)
	if err := opts.ctx().Err(); err != nil {
		return measurement{}, err
	}
	var snap *machine.Snapshot
	if warmed == targets && !k.AllExited() {
		// A process that cannot be snapshotted (no sim.Forker) just skips
		// the shelf; the leg still measures normally.
		if s, err := m.Snapshot(); err == nil {
			s.Tag = warm
			pool.PutSnapshot(l.key, s)
			snap = s
		}
	}
	k.ClearInterrupt()
	if mode == SnapshotOn && snap != nil {
		// The warm machine goes back to the pool mid-run (the deferred
		// Put; forking resets nothing it does not overwrite) and the
		// measurement happens on a fork, exercising the exact path a
		// shelf hit takes.
		return runLegFork(pool, opts, l, snap)
	}
	k.RunCtx(opts.ctx(), 1<<62)
	if err := opts.ctx().Err(); err != nil {
		return measurement{}, err
	}
	if !k.AllExited() {
		return measurement{}, fmt.Errorf("harness: %s did not finish", l.label)
	}
	if warmed != targets {
		return measurement{}, fmt.Errorf("harness: %s never reached steady state", l.label)
	}
	opts.finishLeg(l.label, legStart, k)
	return snapCounters(k).sub(warm), nil
}

// runLegFork is the shelf-hit path: fork the snapshot into a pooled machine
// and run only the measured remainder. Under SnapshotCheck the same leg is
// re-run cold and the two measurements must agree exactly.
func runLegFork(pool *machine.Pool, opts Options, l leg, s *machine.Snapshot) (measurement, error) {
	warm, ok := s.Tag.(measurement)
	if !ok {
		return measurement{}, fmt.Errorf("harness: snapshot for %s carries no warm measurement", l.label)
	}
	legStart := opts.legStart()
	m := pool.Fork(s)
	defer pool.Put(m)
	k := m.Kernel()
	k.RunCtx(opts.ctx(), 1<<62)
	if err := opts.ctx().Err(); err != nil {
		return measurement{}, err
	}
	if !k.AllExited() {
		return measurement{}, fmt.Errorf("harness: %s did not finish", l.label)
	}
	opts.finishLeg(l.label, legStart, k)
	got := snapCounters(k).sub(warm)
	if opts.SnapshotCheck {
		cold := opts
		cold.Snapshot = SnapshotOff
		cold.SnapshotCheck = false
		cold.Telemetry = nil
		cold.Spans = nil
		cold.Account = nil
		ref, err := runLegCold(pool, cold, l)
		if err != nil {
			return measurement{}, fmt.Errorf("harness: snapshot-check cold rerun of %s: %w", l.label, err)
		}
		if ref != got {
			return measurement{}, fmt.Errorf("harness: snapshot-check divergence on %s: forked %+v != cold %+v", l.label, got, ref)
		}
	}
	return got, nil
}

// specLeg builds the leg for one Fig. 7 workload (two processes, one core)
// under the given mode. labelSuffix names the leg's span/error label
// ("<pair>/<suffix>"); it is the mode name for the paired runs and the
// defense name for ablation legs.
func specLeg(pair workload.Pair, mcfg machine.Config, labelSuffix string, opts Options,
	attach func(*kernel.Kernel) *telemetry.Collector) (leg, error) {
	pa, err := workload.Spec(pair.A)
	if err != nil {
		return leg{}, err
	}
	pb, err := workload.Spec(pair.B)
	if err != nil {
		return leg{}, err
	}
	total := opts.WarmupInstrs + opts.InstrsPerProc
	return leg{
		label:  pair.Label + "/" + labelSuffix,
		mcfg:   mcfg,
		key:    snapKey{cfg: mcfg, kind: "spec", a: pair.A, b: pair.B, warmup: opts.WarmupInstrs, total: total},
		attach: attach,
		spawn: func(k *kernel.Kernel, onWarm func()) (int, error) {
			_, procA, err := workload.Spawn(k, pa, workload.SpawnOptions{Instrs: total, Seed: 1001})
			if err != nil {
				return 0, err
			}
			_, procB, err := workload.Spawn(k, pb, workload.SpawnOptions{Instrs: total, Seed: 2002})
			if err != nil {
				return 0, err
			}
			procA.Warmup, procA.OnWarm = opts.WarmupInstrs, onWarm
			procB.Warmup, procB.OnWarm = opts.WarmupInstrs, onWarm
			return 2, nil
		},
	}, nil
}

// specFrames is the frame budget for a two-process spec pair.
func specFrames(pair workload.Pair) (int, error) {
	pa, err := workload.Spec(pair.A)
	if err != nil {
		return 0, err
	}
	pb, err := workload.Spec(pair.B)
	if err != nil {
		return 0, err
	}
	return workload.FramesNeeded(pa) + workload.FramesNeeded(pb) + 1024, nil
}

// runSpecPairOnce runs one Fig. 7 workload (two processes, one core) under
// the given mode and returns the steady-state measurement. The machine
// comes from pool (nil builds fresh).
func runSpecPairOnce(pool *machine.Pool, pair workload.Pair, mode cache.SecMode, opts Options) (measurement, error) {
	frames, err := specFrames(pair)
	if err != nil {
		return measurement{}, err
	}
	l, err := specLeg(pair, machineConfig(mode, 1, opts, frames), mode.String(), opts,
		func(k *kernel.Kernel) *telemetry.Collector { return opts.attachTelemetry(k, pair.Label, mode) })
	if err != nil {
		return measurement{}, err
	}
	return runLeg(pool, opts, l)
}

func totalInstructions(k *kernel.Kernel) uint64 {
	var n uint64
	for _, p := range k.Processes() {
		n += p.Stats.Instructions
	}
	return n
}

func maxClock(k *kernel.Kernel) uint64 {
	var m uint64
	for c := 0; c < k.Hierarchy().Config().Cores; c++ {
		if t := k.CoreClock(c); t > m {
			m = t
		}
	}
	return m
}

// result reduces two steady-state measurements to a PairResult.
func result(label string, mb, mt measurement) PairResult {
	res := PairResult{
		Label:           label,
		BaselineCycles:  mb.cycles,
		TimeCacheCycles: mt.cycles,
		MPKIBase:        stats.MPKI(mb.llc.Misses+mb.llc.FirstAccess, mb.instrs),
		MPKITC:          stats.MPKI(mt.llc.Misses+mt.llc.FirstAccess, mt.instrs),
		FirstAccess: LevelMPKI{
			L1I: stats.MPKI(mt.l1i.FirstAccess, mt.instrs),
			L1D: stats.MPKI(mt.l1d.FirstAccess, mt.instrs),
			LLC: stats.MPKI(mt.llc.FirstAccess, mt.instrs),
		},
		ContextSwitches: mt.kern.ContextSwitches,
	}
	res.Normalized = stats.Normalized(res.TimeCacheCycles, res.BaselineCycles)
	if res.TimeCacheCycles > 0 {
		res.BookkeepingPct = float64(mt.kern.BookkeepingCycles) / float64(res.TimeCacheCycles) * 100
	}
	return res
}

// RunSpecPair measures one Fig. 7 / Table II row: the same pair under the
// baseline and under TimeCache. Machines come from Options.Pool when set
// (which also enables warm-snapshot reuse across repeated calls).
func RunSpecPair(pair workload.Pair, opts Options) (PairResult, error) {
	return runSpecPair(opts.Pool, pair, opts)
}

// runSpecPair is RunSpecPair drawing machines from pool.
func runSpecPair(pool *machine.Pool, pair workload.Pair, opts Options) (PairResult, error) {
	opts = opts.withDefaults()
	mb, err := runSpecPairOnce(pool, pair, cache.SecOff, opts)
	if err != nil {
		return PairResult{}, err
	}
	mt, err := runSpecPairOnce(pool, pair, cache.SecTimeCache, opts)
	if err != nil {
		return PairResult{}, err
	}
	return result(pair.Label, mb, mt), nil
}

// RunAllSpecPairs reproduces Figures 7 and 8 and the SPEC half of Table II.
// Pairs are fully independent, so they fan out across Options.Jobs workers
// with results in paper order; each worker reuses one pooled machine per
// configuration (Reset between runs) instead of rebuilding.
func RunAllSpecPairs(opts Options) ([]PairResult, error) {
	pairs := workload.SpecPairs()
	return RunSpecPairs(pairs, opts)
}

// RunSpecPairs measures an arbitrary selection of Fig. 7 / Table II pairs,
// fanned out across Options.Jobs workers with pooled machines.
func RunSpecPairs(pairs []workload.Pair, opts Options) ([]PairResult, error) {
	opts = opts.withDefaults()
	return runner.MapWorkersCtx(opts.ctx(), len(pairs), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (PairResult, error) {
		return runSpecPair(pool, pairs[i], opts)
	})
}

// runParsecOnce runs one 2-thread/2-core PARSEC workload on a machine from
// pool (nil builds fresh).
func runParsecOnce(pool *machine.Pool, name string, mode cache.SecMode, opts Options) (measurement, error) {
	prof, err := workload.Parsec(name)
	if err != nil {
		return measurement{}, err
	}
	frames := workload.FramesNeeded(prof) + 1024
	mcfg := machineConfig(mode, 2, opts, frames)
	total := opts.WarmupInstrs + opts.InstrsPerProc
	l := leg{
		label: name + "/" + mode.String(),
		mcfg:  mcfg,
		key:   snapKey{cfg: mcfg, kind: "parsec", a: name, warmup: opts.WarmupInstrs, total: total},
		attach: func(k *kernel.Kernel) *telemetry.Collector {
			return opts.attachTelemetry(k, name, mode)
		},
		spawn: func(k *kernel.Kernel, onWarm func()) (int, error) {
			as, err := workload.BuildSharedAS(k, prof)
			if err != nil {
				return 0, err
			}
			for t := 0; t < 2; t++ {
				proc := workload.NewProc(prof, total, uint64(3000+t*17))
				proc.Warmup, proc.OnWarm = opts.WarmupInstrs, onWarm
				if _, err := k.Spawn(fmt.Sprintf("%s.t%d", name, t), proc, as.Share(), t); err != nil {
					return 0, err
				}
			}
			return 2, nil
		},
	}
	return runLeg(pool, opts, l)
}

// RunParsec measures one Fig. 9 row. Machines come from Options.Pool when
// set (which also enables warm-snapshot reuse across repeated calls).
func RunParsec(name string, opts Options) (PairResult, error) {
	return runParsec(opts.Pool, name, opts)
}

// runParsec is RunParsec drawing machines from pool.
func runParsec(pool *machine.Pool, name string, opts Options) (PairResult, error) {
	opts = opts.withDefaults()
	mb, err := runParsecOnce(pool, name, cache.SecOff, opts)
	if err != nil {
		return PairResult{}, err
	}
	mt, err := runParsecOnce(pool, name, cache.SecTimeCache, opts)
	if err != nil {
		return PairResult{}, err
	}
	return result(name, mb, mt), nil
}

// RunAllParsec reproduces Figures 9a/9b and the PARSEC rows of Table II,
// fanned out across Options.Jobs workers with per-worker machine pools.
func RunAllParsec(opts Options) ([]PairResult, error) {
	names := workload.ParsecNames()
	return RunParsecSet(names, opts)
}

// RunParsecSet measures an arbitrary selection of Fig. 9 workloads, fanned
// out across Options.Jobs workers with pooled machines.
func RunParsecSet(names []string, opts Options) ([]PairResult, error) {
	opts = opts.withDefaults()
	return runner.MapWorkersCtx(opts.ctx(), len(names), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (PairResult, error) {
		return runParsec(pool, names[i], opts)
	})
}

// SensitivityPoint is one Fig. 10 sweep point.
type SensitivityPoint struct {
	LLCSize     int
	GeoMeanNorm float64
	OverheadPct float64
}

// RunLLCSensitivity reproduces Fig. 10: geometric-mean overhead of the
// same-benchmark pairs at each LLC size. The whole size×pair grid is
// flattened into one job list so small sweeps still saturate the pool, and
// each worker keeps one machine per (mode, LLC size) shape, Reset between
// runs, instead of rebuilding the hierarchy per grid cell.
func RunLLCSensitivity(sizes []int, pairs []workload.Pair, opts Options) ([]SensitivityPoint, error) {
	opts = opts.withDefaults()
	norms, err := runner.MapWorkersCtx(opts.ctx(), len(sizes)*len(pairs), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (float64, error) {
		o := opts
		o.LLCSize = sizes[i/len(pairs)]
		r, err := runSpecPair(pool, pairs[i%len(pairs)], o)
		if err != nil {
			return 0, err
		}
		return r.Normalized, nil
	})
	if err != nil {
		return nil, err
	}
	var out []SensitivityPoint
	for si, size := range sizes {
		gm := stats.GeoMean(norms[si*len(pairs) : (si+1)*len(pairs)])
		out = append(out, SensitivityPoint{LLCSize: size, GeoMeanNorm: gm, OverheadPct: stats.OverheadPct(gm)})
	}
	return out, nil
}

// DefenseResult is one row of the defense-ablation comparison.
type DefenseResult struct {
	Defense    string
	Normalized float64
}

// ablationConfig names one ablation row: the registry kind that configures
// the machine and the row's display name.
type ablationConfig struct {
	name string
	kind string
}

// ablationConfigs enumerates the defense registry in canonical order under
// the ablation's historical row names ("baseline" for none, "partitioned"
// for dawg-lite; the rest display their registry kind).
func ablationConfigs() []ablationConfig {
	out := make([]ablationConfig, 0, len(defense.Kinds()))
	for _, kind := range defense.Kinds() {
		name := kind
		switch kind {
		case defense.None:
			name = "baseline"
		case defense.DAWGLite:
			name = "partitioned"
		}
		out = append(out, ablationConfig{name: name, kind: kind})
	}
	return out
}

// RunDefenseAblation compares the overhead of TimeCache against the
// alternative defenses DESIGN.md catalogs (FTM, DAWG-lite way partitioning,
// flush-on-context-switch) on one workload pair.
func RunDefenseAblation(pair workload.Pair, opts Options) ([]DefenseResult, error) {
	opts = opts.withDefaults()
	pa, err := workload.Spec(pair.A)
	if err != nil {
		return nil, err
	}
	pb, err := workload.Spec(pair.B)
	if err != nil {
		return nil, err
	}
	frames := workload.FramesNeeded(pa) + workload.FramesNeeded(pb) + 1024

	// The rows come from the defense registry: the historical display names
	// are kept for the first five (their kinds configure machines identical
	// to the legacy mode/flag spellings), and the runtime defenses the
	// registry added (clepsydra, fase) ride along as extra rows.
	configs := ablationConfigs()
	// Each defense configuration is an independent machine; run them all
	// concurrently and normalize against the baseline's cycles afterwards.
	cyclesFor, err := runner.MapWorkersCtx(opts.ctx(), len(configs), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (uint64, error) {
		cfgDef := configs[i]
		mcfg := machineConfig(cache.SecOff, 1, opts, frames)
		mcfg.Mode, mcfg.Defense = cache.SecOff, cfgDef.kind
		l, err := specLeg(pair, mcfg, cfgDef.name, opts, nil)
		if err != nil {
			return 0, err
		}
		m, err := runLeg(pool, opts, l)
		if err != nil {
			return 0, err
		}
		return m.cycles, nil
	})
	if err != nil {
		return nil, err
	}
	baseline := cyclesFor[0] // configs[0] is the baseline
	var out []DefenseResult
	for i, cfgDef := range configs {
		out = append(out, DefenseResult{Defense: cfgDef.name, Normalized: stats.Normalized(cyclesFor[i], baseline)})
	}
	return out, nil
}

// BookkeepingPoint relates scheduler time-slice length to the share of
// execution time spent on s-bit save/restore.
type BookkeepingPoint struct {
	SliceCycles    uint64
	BookkeepingPct float64
	OverheadPct    float64
}

// RunBookkeepingScaling reproduces the §VI-D argument quantitatively: the
// fixed per-switch DMA cost (1.08 µs = 2160 cycles at 2 GHz) shrinks as a
// fraction of execution time as the time slice grows toward realistic
// 1–10 ms scheduler quanta, converging on the paper's ~0.02% figure.
func RunBookkeepingScaling(pair workload.Pair, slices []uint64, opts Options) ([]BookkeepingPoint, error) {
	opts = opts.withDefaults()
	return runner.MapWorkersCtx(opts.ctx(), len(slices), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (BookkeepingPoint, error) {
		o := opts
		o.SliceCycles = slices[i]
		r, err := runSpecPair(pool, pair, o)
		if err != nil {
			return BookkeepingPoint{}, err
		}
		return BookkeepingPoint{
			SliceCycles:    slices[i],
			BookkeepingPct: r.BookkeepingPct,
			OverheadPct:    stats.OverheadPct(r.Normalized),
		}, nil
	})
}

// SbitCostBreakdown quantifies §VI-D: how many transfers one switch needs
// per cache and the cycles charged per switch by each cost model.
type SbitCostBreakdown struct {
	L1Transfers, LLCTransfers int
	DMACyclesPerSwitch        uint64
	CopyCyclesPerSwitch       uint64
}

// SbitCost computes the §VI-D bookkeeping costs for the configured caches.
func SbitCost(opts Options) SbitCostBreakdown {
	opts = opts.withDefaults()
	l1Lines := (32 << 10) / cache.LineSize
	llcLines := opts.LLCSize / cache.LineSize
	dma := core.DefaultCostModel()
	copyModel := core.CostModel{TransferCycles: 200} // one 64B DRAM transfer
	return SbitCostBreakdown{
		L1Transfers:         core.SbitTransfers(l1Lines),
		LLCTransfers:        core.SbitTransfers(llcLines),
		DMACyclesPerSwitch:  dma.SwitchCost([]int{l1Lines, l1Lines, llcLines}),
		CopyCyclesPerSwitch: copyModel.SwitchCost([]int{l1Lines, l1Lines, llcLines}),
	}
}
