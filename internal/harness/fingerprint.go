// Job canonicalization and content addressing. The simulator is
// deterministic by construction (the golden tests byte-diff -j1 vs -j8 and
// HTTP vs CLI), so a validated Job — after its defaults are applied — fully
// determines the rendered result bytes. Canonical() makes that determination
// explicit: it resolves every defaulted selection field to the concrete
// values RunJob would use and zeroes every field the experiment ignores, so
// two specs that run the same simulation compare (and hash) equal.
// Fingerprint() is a SHA-256 over a stable, length-delimited encoding of the
// canonical form plus a schema-version tag; the result cache in front of the
// job service keys on it.
//
// Field order is kept, not sorted: Pairs/Workloads/LLCSizes/SliceCycles
// order selects the row order of the rendered table, so it is semantically
// significant and two selections that differ only in order are different
// results. Nothing in Job is order-irrelevant today; if such a field is ever
// added, Canonical must sort it.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"

	"timecache/internal/workload"
)

// FingerprintSchemaVersion tags every fingerprint. Bump it whenever a
// result-affecting change lands — new defaults, workload profile changes,
// timing-model changes — so stale cache entries from older builds can never
// alias the new results. The golden tests catch unintended result drift; an
// intended drift is exactly when this constant must move.
const FingerprintSchemaVersion = 1

// Default selections, shared by Canonical and RunJob so the canonical form
// can never diverge from what actually runs.

// defaultLLCSizes is the Fig. 10 default sweep ladder (512 KB – 4 MB).
func defaultLLCSizes() []int { return []int{512 << 10, 1 << 20, 2 << 20, 4 << 20} }

// defaultSliceLadder is the §VI-D bookkeeping-scaling default ladder.
func defaultSliceLadder() []uint64 { return []uint64{100_000, 200_000, 400_000, 800_000} }

// Security experiment defaults.
const (
	defaultKeyBits = 64
	defaultSeed    = 12345
)

// defaultAblationPair is the pair RunDefenseAblation uses when none is named.
const defaultAblationPair = "2Xgobmk"

// pairLabels projects a pair list back to its labels.
func pairLabels(pairs []workload.Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.Label
	}
	return out
}

// Canonical resolves the job's defaults and drops its ignored fields: the
// returned job selects exactly what RunJob would run, with every selection
// spelled out explicitly. Canonical is idempotent, and RunJob(j) and
// RunJob(j.Canonical()) produce byte-identical results (RunJob canonicalizes
// internally). The result is only meaningful for jobs that pass Validate.
func (j Job) Canonical() Job {
	c := Job{Experiment: j.Experiment}
	switch j.Experiment {
	case ExpTableII:
		pairs, _ := selectPairs(j.Pairs)
		c.Pairs = pairLabels(pairs)
	case ExpLLCSweep:
		pairs, _ := selectPairs(j.Pairs)
		if len(j.Pairs) == 0 {
			// Fig. 10 default: the same-benchmark pairs only.
			pairs = samePairs(pairs)
		}
		c.Pairs = pairLabels(pairs)
		c.LLCSizes = append([]int(nil), j.LLCSizes...)
		if len(c.LLCSizes) == 0 {
			c.LLCSizes = defaultLLCSizes()
		}
	case ExpAblation:
		c.Pairs = append([]string(nil), j.Pairs...)
		if len(c.Pairs) == 0 {
			c.Pairs = []string{defaultAblationPair}
		}
	case ExpParsec:
		c.Workloads = append([]string(nil), j.Workloads...)
		if len(c.Workloads) == 0 {
			c.Workloads = workload.ParsecNames()
		}
	case ExpBookkeeping:
		c.SliceCycles = append([]uint64(nil), j.SliceCycles...)
		if len(c.SliceCycles) == 0 {
			c.SliceCycles = defaultSliceLadder()
		}
	case ExpSecurity:
		c.KeyBits, c.Seed = j.KeyBits, j.Seed
		if c.KeyBits == 0 {
			c.KeyBits = defaultKeyBits
		}
		if c.Seed == 0 {
			c.Seed = defaultSeed
		}
	}
	return c
}

// Fingerprint returns the job's content address: a hex SHA-256 over a
// stable, length-delimited encoding of the canonical form, prefixed with
// FingerprintSchemaVersion. Default-equivalent jobs ({table2} vs {table2,
// Pairs: <every pair spelled out>}) fingerprint equal; any result-affecting
// field change fingerprints different; the value is stable across processes
// and platforms. Fields an experiment ignores (e.g. Seed on table2) are
// dropped by Canonical and so cannot perturb the hash.
func (j Job) Fingerprint() string {
	c := j.Canonical()
	h := sha256.New()
	fmt.Fprintf(h, "timecache-job/%d\x00", FingerprintSchemaVersion)
	hashString(h, c.Experiment)
	hashStrings(h, c.Pairs)
	hashStrings(h, c.Workloads)
	hashInts(h, c.LLCSizes)
	hashUints(h, c.SliceCycles)
	fmt.Fprintf(h, "i%d\x00u%d\x00", c.KeyBits, c.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// FidelityTag returns a stable encoding of the result-affecting fidelity
// options — instruction budgets, LLC size, gate-level routing, and the
// slice override — with defaults resolved, so an unset field and its
// explicit default tag identically. Result-invariant options are excluded:
// Jobs (the golden tests prove -j1 and -j8 are byte-identical), Progress,
// Ctx, Pool, Spans, Now, Account, Telemetry, and CoherenceCheck (a debug
// cross-check that fails loudly rather than changing results). The job
// service folds this into its result-cache key alongside Fingerprint.
func (o Options) FidelityTag() string {
	o = o.withDefaults()
	return fmt.Sprintf("timecache-fidelity/%d:i%d:w%d:l%d:g%t:s%d",
		FingerprintSchemaVersion, o.InstrsPerProc, o.WarmupInstrs, o.LLCSize, o.GateLevel, o.SliceCycles)
}

// The encoding is length-delimited so adjacent fields can never alias
// ([]string{"ab","c"} vs []string{"a","bc"}, or a pair label bleeding into
// the workload list).

func hashString(h hash.Hash, s string) {
	fmt.Fprintf(h, "s%d\x00%s", len(s), s)
}

func hashStrings(h hash.Hash, ss []string) {
	fmt.Fprintf(h, "l%d\x00", len(ss))
	for _, s := range ss {
		hashString(h, s)
	}
}

func hashInts(h hash.Hash, xs []int) {
	fmt.Fprintf(h, "l%d\x00", len(xs))
	for _, x := range xs {
		fmt.Fprintf(h, "i%d\x00", x)
	}
}

func hashUints(h hash.Hash, xs []uint64) {
	fmt.Fprintf(h, "l%d\x00", len(xs))
	for _, x := range xs {
		fmt.Fprintf(h, "u%d\x00", x)
	}
}
