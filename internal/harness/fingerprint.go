// Job canonicalization and content addressing. The simulator is
// deterministic by construction (the golden tests byte-diff -j1 vs -j8 and
// HTTP vs CLI), so a validated Job — after its defaults are applied — fully
// determines the rendered result bytes. Canonical() makes that determination
// explicit: it resolves every defaulted selection field to the concrete
// values RunJob would use and zeroes every field the experiment ignores, so
// two specs that run the same simulation compare (and hash) equal.
// Fingerprint() is a SHA-256 over a stable, length-delimited encoding of the
// canonical form plus a schema-version tag; the result cache in front of the
// job service keys on it.
//
// Field order is kept, not sorted: Pairs/Workloads/LLCSizes/SliceCycles
// order selects the row order of the rendered table, so it is semantically
// significant and two selections that differ only in order are different
// results. Nothing in Job is order-irrelevant today; if such a field is ever
// added, Canonical must sort it.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"timecache/internal/defense"
	"timecache/internal/workload"
)

// FingerprintSchemaVersion tags every fingerprint. Bump it whenever a
// result-affecting change lands — new defaults, workload profile changes,
// timing-model changes — so stale cache entries from older builds can never
// alias the new results. The golden tests catch unintended result drift; an
// intended drift is exactly when this constant must move.
//
// v2: the Defense seam and the matrix experiment — Job gained Defenses,
// Attacks, and AttackBits, the ablation gained the registry's runtime
// defense rows, and the encoding below appends the new fields for every
// experiment.
const FingerprintSchemaVersion = 2

// Default selections, shared by Canonical and RunJob so the canonical form
// can never diverge from what actually runs.

// defaultLLCSizes is the Fig. 10 default sweep ladder (512 KB – 4 MB).
func defaultLLCSizes() []int { return []int{512 << 10, 1 << 20, 2 << 20, 4 << 20} }

// defaultSliceLadder is the §VI-D bookkeeping-scaling default ladder.
func defaultSliceLadder() []uint64 { return []uint64{100_000, 200_000, 400_000, 800_000} }

// Security experiment defaults.
const (
	defaultKeyBits = 64
	defaultSeed    = 12345
)

// defaultAblationPair is the pair RunDefenseAblation uses when none is named.
const defaultAblationPair = "2Xgobmk"

// defaultAttackBits is the matrix experiment's default secret length.
const defaultAttackBits = 32

// pairLabels projects a pair list back to its labels.
func pairLabels(pairs []workload.Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.Label
	}
	return out
}

// Canonical resolves the job's defaults and drops its ignored fields: the
// returned job selects exactly what RunJob would run, with every selection
// spelled out explicitly. Canonical is idempotent, and RunJob(j) and
// RunJob(j.Canonical()) produce byte-identical results (RunJob canonicalizes
// internally). The result is only meaningful for jobs that pass Validate.
func (j Job) Canonical() Job {
	c := Job{Experiment: j.Experiment}
	switch j.Experiment {
	case ExpTableII:
		pairs, _ := selectPairs(j.Pairs)
		c.Pairs = pairLabels(pairs)
	case ExpLLCSweep:
		pairs, _ := selectPairs(j.Pairs)
		if len(j.Pairs) == 0 {
			// Fig. 10 default: the same-benchmark pairs only.
			pairs = samePairs(pairs)
		}
		c.Pairs = pairLabels(pairs)
		c.LLCSizes = append([]int(nil), j.LLCSizes...)
		if len(c.LLCSizes) == 0 {
			c.LLCSizes = defaultLLCSizes()
		}
	case ExpAblation:
		c.Pairs = append([]string(nil), j.Pairs...)
		if len(c.Pairs) == 0 {
			c.Pairs = []string{defaultAblationPair}
		}
	case ExpParsec:
		c.Workloads = append([]string(nil), j.Workloads...)
		if len(c.Workloads) == 0 {
			c.Workloads = workload.ParsecNames()
		}
	case ExpBookkeeping:
		c.SliceCycles = append([]uint64(nil), j.SliceCycles...)
		if len(c.SliceCycles) == 0 {
			c.SliceCycles = defaultSliceLadder()
		}
	case ExpSecurity:
		c.KeyBits, c.Seed = j.KeyBits, j.Seed
		if c.KeyBits == 0 {
			c.KeyBits = defaultKeyBits
		}
		if c.Seed == 0 {
			c.Seed = defaultSeed
		}
	case ExpMatrix:
		c.Pairs = append([]string(nil), j.Pairs...)
		if len(c.Pairs) == 0 {
			c.Pairs = []string{defaultAblationPair}
		}
		c.Defenses = append([]string(nil), j.Defenses...)
		if len(c.Defenses) == 0 {
			c.Defenses = defense.Kinds()
		}
		c.Attacks = append([]string(nil), j.Attacks...)
		if len(c.Attacks) == 0 {
			c.Attacks = MatrixAttacks()
		}
		c.AttackBits, c.Seed = j.AttackBits, j.Seed
		if c.AttackBits == 0 {
			c.AttackBits = defaultAttackBits
		}
		if c.Seed == 0 {
			c.Seed = defaultSeed
		}
	}
	return c
}

// Fingerprint returns the job's content address: a hex SHA-256 over a
// stable, length-delimited encoding of the canonical form, prefixed with
// FingerprintSchemaVersion. Default-equivalent jobs ({table2} vs {table2,
// Pairs: <every pair spelled out>}) fingerprint equal; any result-affecting
// field change fingerprints different; the value is stable across processes
// and platforms. Fields an experiment ignores (e.g. Seed on table2) are
// dropped by Canonical and so cannot perturb the hash.
// The canonical bytes are appended into one stack-friendly buffer and hashed
// with sha256.Sum256 in a single call: no hash.Hash state, no Fprintf
// formatting machinery, no per-field writes. The byte stream is identical to
// the historical streaming encoding, so fingerprints (and therefore result
// caches) carry over.
func (j Job) Fingerprint() string {
	c := j.Canonical()
	buf := make([]byte, 0, 256)
	buf = append(buf, "timecache-job/"...)
	buf = strconv.AppendInt(buf, FingerprintSchemaVersion, 10)
	buf = append(buf, 0)
	buf = appendString(buf, c.Experiment)
	buf = appendStrings(buf, c.Pairs)
	buf = appendStrings(buf, c.Workloads)
	buf = appendInts(buf, c.LLCSizes)
	buf = appendUints(buf, c.SliceCycles)
	buf = append(buf, 'i')
	buf = strconv.AppendInt(buf, int64(c.KeyBits), 10)
	buf = append(buf, 0, 'u')
	buf = strconv.AppendUint(buf, c.Seed, 10)
	buf = append(buf, 0)
	// v2 fields (matrix); zero-valued on every other experiment, so their
	// encoding stays constant there.
	buf = appendStrings(buf, c.Defenses)
	buf = appendStrings(buf, c.Attacks)
	buf = append(buf, 'i')
	buf = strconv.AppendInt(buf, int64(c.AttackBits), 10)
	buf = append(buf, 0)
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// FidelityTag returns a stable encoding of the result-affecting fidelity
// options — instruction budgets, LLC size, gate-level routing, and the
// slice override — with defaults resolved, so an unset field and its
// explicit default tag identically. Result-invariant options are excluded:
// Jobs (the golden tests prove -j1 and -j8 are byte-identical), Progress,
// Ctx, Pool, Spans, Now, Account, Telemetry, CoherenceCheck (a debug
// cross-check that fails loudly rather than changing results), and
// Snapshot/SnapshotCheck (the golden forced-on/off tests prove snapshot
// forking is result-invariant, and SnapshotCheck fails loudly like
// CoherenceCheck). The job service folds this into its result-cache key
// alongside Fingerprint.
func (o Options) FidelityTag() string {
	o = o.withDefaults()
	return fmt.Sprintf("timecache-fidelity/%d:i%d:w%d:l%d:g%t:s%d",
		FingerprintSchemaVersion, o.InstrsPerProc, o.WarmupInstrs, o.LLCSize, o.GateLevel, o.SliceCycles)
}

// The encoding is length-delimited so adjacent fields can never alias
// ([]string{"ab","c"} vs []string{"a","bc"}, or a pair label bleeding into
// the workload list).

func appendString(buf []byte, s string) []byte {
	buf = append(buf, 's')
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, 0)
	return append(buf, s...)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = append(buf, 'l')
	buf = strconv.AppendInt(buf, int64(len(ss)), 10)
	buf = append(buf, 0)
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func appendInts(buf []byte, xs []int) []byte {
	buf = append(buf, 'l')
	buf = strconv.AppendInt(buf, int64(len(xs)), 10)
	buf = append(buf, 0)
	for _, x := range xs {
		buf = append(buf, 'i')
		buf = strconv.AppendInt(buf, int64(x), 10)
		buf = append(buf, 0)
	}
	return buf
}

func appendUints(buf []byte, xs []uint64) []byte {
	buf = append(buf, 'l')
	buf = strconv.AppendInt(buf, int64(len(xs)), 10)
	buf = append(buf, 0)
	for _, x := range xs {
		buf = append(buf, 'u')
		buf = strconv.AppendUint(buf, x, 10)
		buf = append(buf, 0)
	}
	return buf
}
