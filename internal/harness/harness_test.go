package harness

import (
	"testing"

	"timecache/internal/machine"
	"timecache/internal/telemetry"
	"timecache/internal/workload"
)

// smallOpts keeps harness tests fast; calibration-grade runs happen in the
// benchmarks and the reproduce tool.
func smallOpts() Options {
	return Options{InstrsPerProc: 60_000, WarmupInstrs: 120_000}
}

func TestRunSpecPairProducesSaneRow(t *testing.T) {
	pair := workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}
	r, err := RunSpecPair(pair, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineCycles == 0 || r.TimeCacheCycles == 0 {
		t.Fatal("cycles not measured")
	}
	if r.Normalized < 0.9 || r.Normalized > 1.3 {
		t.Fatalf("normalized time %.4f implausible", r.Normalized)
	}
	if r.MPKITC < r.MPKIBase {
		t.Fatalf("TimeCache MPKI (%.4f) should not be below baseline (%.4f): first accesses add misses",
			r.MPKITC, r.MPKIBase)
	}
	if r.FirstAccess.L1I == 0 {
		t.Fatal("shared code across context switches must generate L1I first accesses")
	}
	if r.ContextSwitches == 0 {
		t.Fatal("two processes on one core must context switch")
	}
	if r.BookkeepingPct <= 0 {
		t.Fatal("bookkeeping must be charged")
	}
}

func TestStreamingPairHasHigherMPKI(t *testing.T) {
	low, err := RunSpecPair(workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunSpecPair(workload.Pair{Label: "2Xlbm", A: "lbm", B: "lbm"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if high.MPKIBase < 10*low.MPKIBase {
		t.Fatalf("lbm (%.3f) must dwarf namd (%.3f) in LLC MPKI, as in Table II",
			high.MPKIBase, low.MPKIBase)
	}
}

func TestRunParsecNoL1FirstAccesses(t *testing.T) {
	r, err := RunParsec("blackscholes", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9b: threads pinned to separate cores never share an L1, so all
	// first accesses land at the LLC.
	if r.FirstAccess.L1I != 0 || r.FirstAccess.L1D != 0 {
		t.Fatalf("PARSEC threads on separate cores must have no L1 first accesses, got i=%.4f d=%.4f",
			r.FirstAccess.L1I, r.FirstAccess.L1D)
	}
	if r.FirstAccess.LLC == 0 {
		t.Fatal("shared data across cores must generate LLC first accesses")
	}
}

func TestLLCSensitivityTrend(t *testing.T) {
	pairs := []workload.Pair{
		{Label: "2Xwrf", A: "wrf", B: "wrf"},
		{Label: "2Xperlbench", A: "perlbench", B: "perlbench"},
	}
	pts, err := RunLLCSensitivity([]int{512 << 10, 2 << 20}, pairs, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Fig. 10: overhead shrinks with LLC size (fewer evictions of shared
	// lines means fewer first accesses).
	if pts[1].OverheadPct > pts[0].OverheadPct+0.05 {
		t.Fatalf("2MB overhead (%.3f%%) should not exceed 512KB overhead (%.3f%%)",
			pts[1].OverheadPct, pts[0].OverheadPct)
	}
}

func TestDefenseAblationOrdering(t *testing.T) {
	rows, err := RunDefenseAblation(workload.Pair{Label: "2Xgobmk", A: "gobmk", B: "gobmk"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, r := range rows {
		norm[r.Defense] = r.Normalized
	}
	if norm["baseline"] != 1.0 {
		t.Fatalf("baseline must normalize to 1.0, got %v", norm["baseline"])
	}
	// Flush-on-switch pays full refills every slice: by far the worst.
	if norm["flush-on-switch"] < norm["timecache"]+0.05 {
		t.Fatalf("flush-on-switch (%.4f) must cost much more than TimeCache (%.4f)",
			norm["flush-on-switch"], norm["timecache"])
	}
	// Way partitioning halves effective cache: worse than TimeCache here.
	if norm["partitioned"] < norm["timecache"] {
		t.Fatalf("partitioned (%.4f) expected to cost more than TimeCache (%.4f)",
			norm["partitioned"], norm["timecache"])
	}
	if _, ok := norm["ftm"]; !ok {
		t.Fatal("ftm row missing")
	}
}

func TestBookkeepingScalesDownWithSlice(t *testing.T) {
	pts, err := RunBookkeepingScaling(
		workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"},
		[]uint64{100_000, 400_000}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].BookkeepingPct >= pts[0].BookkeepingPct {
		t.Fatalf("longer slices must shrink bookkeeping share: %.4f%% -> %.4f%%",
			pts[0].BookkeepingPct, pts[1].BookkeepingPct)
	}
}

func TestSbitCostMatchesPaper(t *testing.T) {
	b := SbitCost(Options{LLCSize: 2 << 20})
	if b.L1Transfers != 1 {
		t.Fatalf("32KB L1 s-bit column = %d transfers, want 1", b.L1Transfers)
	}
	if b.LLCTransfers != 64 {
		t.Fatalf("2MB LLC s-bit column = %d transfers, want 64", b.LLCTransfers)
	}
	// The DMA model charges the paper's 1.08 µs = 2160 cycles at 2 GHz.
	if b.DMACyclesPerSwitch != 2160 {
		t.Fatalf("DMA cycles = %d, want 2160", b.DMACyclesPerSwitch)
	}
}

func TestGateLevelMatchesFastPath(t *testing.T) {
	pair := workload.Pair{Label: "2Xspecrand", A: "specrand", B: "specrand"}
	opts := Options{InstrsPerProc: 30_000, WarmupInstrs: 50_000}
	fast, err := RunSpecPair(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	gopts := opts
	gopts.GateLevel = true
	gate, err := RunSpecPair(pair, gopts)
	if err != nil {
		t.Fatal(err)
	}
	// The gate-level comparator is functionally identical to the reference
	// comparison, so the simulation outcome must be identical.
	if fast.TimeCacheCycles != gate.TimeCacheCycles {
		t.Fatalf("gate-level run diverged: %d vs %d cycles", fast.TimeCacheCycles, gate.TimeCacheCycles)
	}
	if fast.MPKITC != gate.MPKITC {
		t.Fatalf("gate-level MPKI diverged: %v vs %v", fast.MPKITC, gate.MPKITC)
	}
}

// TestSnapshotShelfReuse pins the SnapshotAuto win: two identical legs on
// one shared pool produce identical results, and the second is served from
// the snapshot shelf (one shelf hit) instead of re-running its warmup.
func TestSnapshotShelfReuse(t *testing.T) {
	pair := workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}
	pool := machine.NewPool()
	opts := smallOpts()
	opts.Pool = pool

	first, err := RunSpecPair(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.SnapshotHits != 0 {
		t.Fatalf("first run already hit the shelf: %+v", s)
	}
	second, err := RunSpecPair(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("shelf-forked rerun diverged:\n first %+v\nsecond %+v", first, second)
	}
	s = pool.Stats()
	// The second run's two legs (baseline, timecache) both fork.
	if s.SnapshotHits != 2 {
		t.Fatalf("snapshot hits = %d, want 2 (both modes forked)", s.SnapshotHits)
	}
}

// TestSnapshotModesAgree runs one pair under every snapshot mode and with
// the cold cross-check enabled: all four results must be identical.
func TestSnapshotModesAgree(t *testing.T) {
	pair := workload.Pair{Label: "2Xlbm", A: "lbm", B: "lbm"}
	base := smallOpts()

	var results []PairResult
	for _, mode := range []SnapshotMode{SnapshotOff, SnapshotAuto, SnapshotOn} {
		opts := base
		opts.Snapshot = mode
		r, err := RunSpecPair(pair, opts)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		results = append(results, r)
	}
	check := base
	check.SnapshotCheck = true
	r, err := RunSpecPair(pair, check)
	if err != nil {
		t.Fatalf("snapshot-check: %v", err)
	}
	results = append(results, r)
	for i, got := range results[1:] {
		if got != results[0] {
			t.Fatalf("result %d diverged from SnapshotOff:\n got %+v\nwant %+v", i+1, got, results[0])
		}
	}
}

// TestSnapshotTelemetryForcesCold: a telemetry collector observes the whole
// run including warmup, so telemetry legs must never fork (no shelf
// activity) even under SnapshotOn.
func TestSnapshotTelemetryForcesCold(t *testing.T) {
	pair := workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}
	pool := machine.NewPool()
	opts := smallOpts()
	opts.Pool = pool
	opts.Snapshot = SnapshotOn
	opts.Telemetry = &telemetry.Config{}

	if _, err := RunSpecPair(pair, opts); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.SnapshotHits != 0 || s.SnapshotMisses != 0 {
		t.Fatalf("telemetry run touched the snapshot shelf: %+v", s)
	}
}
