package harness

import (
	"testing"

	"timecache/internal/machine"
	"timecache/internal/stats"
)

// shardSpecs are small-budget jobs covering every experiment's leg shape.
func shardSpecs() map[string]Job {
	return map[string]Job{
		"table2": {Experiment: ExpTableII, Pairs: []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"}},
		"parsec": {Experiment: ExpParsec, Workloads: []string{"blackscholes", "swaptions"}},
		"llc-sweep": {Experiment: ExpLLCSweep, Pairs: []string{"2Xlbm", "2Xgobmk"},
			LLCSizes: []int{512 << 10, 1 << 20}},
		"ablation":    {Experiment: ExpAblation, Pairs: []string{"2Xlbm"}},
		"bookkeeping": {Experiment: ExpBookkeeping, SliceCycles: []uint64{100_000, 200_000}},
		"security":    {Experiment: ExpSecurity, KeyBits: 16, Seed: 7},
		"matrix": {Experiment: ExpMatrix, Pairs: []string{"2Xlbm"},
			Defenses: []string{"none", "timecache"}, Attacks: []string{"smt", "coherence"}, AttackBits: 8},
	}
}

// runSharded runs every leg of the job on its own fresh pool — the worst
// case for state sharing, matching a fleet of separate worker processes —
// and merges the slices positionally.
func runSharded(job Job, opts Options) (*stats.Table, error) {
	n, err := JobLegs(job)
	if err != nil {
		return nil, err
	}
	parts := make([]*stats.Table, n)
	for leg := 0; leg < n; leg++ {
		o := opts
		o.Pool = machine.NewPool()
		if parts[leg], err = RunJobLeg(job, leg, o); err != nil {
			return nil, err
		}
	}
	return MergeLegTables(job, parts)
}

// TestShardEquivalence is the sharding seam's correctness anchor: for every
// experiment, running each leg independently (fresh pool per leg, as a
// distributed worker would) and merging positionally must render bytes
// identical to the unsharded RunJob.
func TestShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Options{InstrsPerProc: 20_000, WarmupInstrs: 10_000}
	for name, job := range shardSpecs() {
		job := job
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := RunJob(job, opts)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := runSharded(job, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := merged.CSV(); got != want.CSV() {
				t.Errorf("sharded result diverged from unsharded\n--- want ---\n%s--- got ---\n%s", want.CSV(), got)
			}
			if merged.Markdown() != want.Markdown() {
				t.Errorf("sharded markdown diverged from unsharded")
			}
		})
	}
}

// TestJobLegsCounts pins the leg unit per experiment.
func TestJobLegsCounts(t *testing.T) {
	for name, want := range map[string]int{
		"table2": 3, "parsec": 2, "llc-sweep": 2, "bookkeeping": 2, "security": 1, "matrix": 2,
	} {
		n, err := JobLegs(shardSpecs()[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != want {
			t.Errorf("JobLegs(%s) = %d, want %d", name, n, want)
		}
	}
	// Ablation's leg count is the defense registry size.
	n, err := JobLegs(shardSpecs()["ablation"])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ablationConfigs()) {
		t.Errorf("JobLegs(ablation) = %d, want %d", n, len(ablationConfigs()))
	}
	// Defaulted selections count their canonical set, same as RunJob runs.
	n, err = JobLegs(Job{Experiment: ExpTableII})
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Errorf("JobLegs(table2, all pairs) = %d, want 24", n)
	}
}

// TestMergeLegTablesRejects: merging missing or mismatched parts errors
// instead of silently producing a corrupt table.
func TestMergeLegTablesRejects(t *testing.T) {
	job := Job{Experiment: ExpTableII}
	if _, err := MergeLegTables(job, nil); err == nil {
		t.Error("merge of zero parts succeeded")
	}
	a := stats.NewTable("workload", "normalized")
	b := stats.NewTable("workload", "different")
	if _, err := MergeLegTables(job, []*stats.Table{a, nil}); err == nil {
		t.Error("merge with nil part succeeded")
	}
	if _, err := MergeLegTables(job, []*stats.Table{a, b}); err == nil {
		t.Error("merge with mismatched headers succeeded")
	}
}

// TestRunJobLegRange: out-of-range legs are rejected.
func TestRunJobLegRange(t *testing.T) {
	job := Job{Experiment: ExpTableII, Pairs: []string{"2Xlbm"}}
	if _, err := RunJobLeg(job, 1, Options{InstrsPerProc: 1000, WarmupInstrs: 500}); err == nil {
		t.Error("leg 1 of a 1-leg job succeeded")
	}
	if _, err := RunJobLeg(job, -1, Options{}); err == nil {
		t.Error("leg -1 succeeded")
	}
}
