// The defense×attack evaluation matrix: every registered defense is run
// against every side-channel attack in the corpus and against real
// workloads, producing one grid that shows in a single table what each
// mechanism stops, what it misses, and what it costs. This is the
// experiment the Defense seam exists for — a row is added by registering a
// kind, not by writing a new experiment.
package harness

import (
	"fmt"

	"timecache/internal/attack"
	"timecache/internal/cache"
	"timecache/internal/defense"
	"timecache/internal/machine"
	"timecache/internal/replacement"
	"timecache/internal/runner"
	"timecache/internal/stats"
	"timecache/internal/workload"
)

// matrixAttack ties an attack-corpus name to its Config-parameterized
// runner, reduced to the attacker's bit-recovery accuracy. Declaration
// order is the canonical column order (the matrix job's default attack
// set).
type matrixAttack struct {
	name string
	run  func(cfg machine.Config, bits int, seed uint64) (float64, error)
}

var matrixAttacks = []matrixAttack{
	{"flush-reload", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunRSAConfig(cfg, bits, seed)
		return r.Accuracy, err
	}},
	{"flush-flush", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunFlushFlushConfig(cfg, bits, seed)
		return r.Accuracy, err
	}},
	{"prime-probe", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunPrimeProbeConfig(cfg, bits, seed)
		return r.Accuracy, err
	}},
	{"lru", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunLRUConfig(cfg, replacement.LRU, bits, seed)
		return r.Accuracy, err
	}},
	{"coherence", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunCoherenceConfig(cfg, bits, seed)
		return r.Accuracy, err
	}},
	{"smt", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunSMTConfig(cfg, bits, seed)
		return r.Accuracy, err
	}},
	{"llc-occupancy", func(cfg machine.Config, bits int, seed uint64) (float64, error) {
		r, err := attack.RunLLCOccupancy(cfg, bits, seed)
		return r.Accuracy, err
	}},
}

// MatrixAttacks lists the attack-corpus names in canonical column order.
func MatrixAttacks() []string {
	out := make([]string, len(matrixAttacks))
	for i, a := range matrixAttacks {
		out[i] = a.name
	}
	return out
}

func matrixAttackByName(name string) *matrixAttack {
	for i := range matrixAttacks {
		if matrixAttacks[i].name == name {
			return &matrixAttacks[i]
		}
	}
	return nil
}

// matrixCell is one unit of matrix work: an attack mounted under a defense
// (attack != "") or a workload pair run under a defense for the overhead
// columns (attack == "").
type matrixCell struct {
	defense string
	attack  string
	pair    workload.Pair
}

// MatrixTable runs the defenses×(attacks ∪ pairs) grid and renders it with
// one row per defense: a leaked-bits column per attack (the binary-channel
// capacity of the attacker's recovery, 0 = defended) and a normalized-
// slowdown column per workload pair (against the "none" baseline, which is
// run implicitly when not among the requested rows). Cells are fanned out
// across opts.Jobs workers in flat declaration order, so -j1 and -jN render
// byte-identical tables.
func MatrixTable(defenses, attacks []string, pairs []workload.Pair, attackBits int, seed uint64, opts Options) (*stats.Table, error) {
	opts = opts.withDefaults()

	// The overhead columns normalize against "none"; run its legs even when
	// the row was not requested.
	perfDefs := defenses
	if !containsString(defenses, defense.None) {
		perfDefs = append([]string{defense.None}, defenses...)
	}

	cells := make([]matrixCell, 0, len(defenses)*len(attacks)+len(perfDefs)*len(pairs))
	for _, d := range defenses {
		for _, a := range attacks {
			cells = append(cells, matrixCell{defense: d, attack: a})
		}
	}
	for _, d := range perfDefs {
		for _, p := range pairs {
			cells = append(cells, matrixCell{defense: d, pair: p})
		}
	}

	vals, err := runner.MapWorkersCtx(opts.ctx(), len(cells), opts.pool(), opts.newPool, func(pool *machine.Pool, i int) (float64, error) {
		c := cells[i]
		if c.attack != "" {
			return runMatrixAttack(c.defense, c.attack, attackBits, seed, opts)
		}
		return runMatrixPerf(pool, c.defense, c.pair, opts)
	})
	if err != nil {
		return nil, err
	}

	header := []string{"defense"}
	for _, a := range attacks {
		header = append(header, "bits-"+a)
	}
	for _, p := range pairs {
		header = append(header, "slowdown-"+p.Label)
	}
	tab := stats.NewTable(header...)

	// vals is laid out exactly as cells was: the attack block (defense-major)
	// then the perf block (perfDefs-major).
	perfBase := len(defenses) * len(attacks)
	baseline := func(pi int) float64 {
		for di, d := range perfDefs {
			if d == defense.None {
				return vals[perfBase+di*len(pairs)+pi]
			}
		}
		return 0 // unreachable: perfDefs always contains "none"
	}
	for di, d := range defenses {
		row := make([]any, 0, len(header))
		row = append(row, d)
		for ai := range attacks {
			row = append(row, stats.BinaryChannelBits(attackBits, vals[di*len(attacks)+ai]))
		}
		pdi := indexOfString(perfDefs, d)
		for pi := range pairs {
			cycles := vals[perfBase+pdi*len(pairs)+pi]
			base := baseline(pi)
			if base == 0 {
				return nil, fmt.Errorf("harness: matrix baseline run of %s produced zero cycles", pairs[pi].Label)
			}
			row = append(row, cycles/base)
		}
		tab.Add(row...)
	}
	return tab, nil
}

// runMatrixAttack mounts one attack under one defense. The attack scenarios
// assemble their own machines, so the leg is accounted by count and span
// only, mirroring SecurityTable.
func runMatrixAttack(def, att string, bits int, seed uint64, opts Options) (float64, error) {
	a := matrixAttackByName(att)
	if a == nil {
		return 0, fmt.Errorf("harness: unknown attack %q (want one of %v)", att, MatrixAttacks())
	}
	start := opts.legStart()
	cfg := machineConfig(cache.SecOff, 1, opts, 0)
	cfg.Defense = def
	acc, err := a.run(cfg, bits, seed)
	if err != nil {
		return 0, err
	}
	opts.Account.AddLeg()
	if opts.Spans != nil {
		opts.Spans.Span("matrix/"+def+"/"+att, "leg", start, opts.wallNow(), nil)
	}
	return acc, nil
}

// runMatrixPerf runs one workload pair under one defense and returns its
// measured cycles (the caller normalizes against the "none" cell).
func runMatrixPerf(pool *machine.Pool, def string, pair workload.Pair, opts Options) (float64, error) {
	pa, err := workload.Spec(pair.A)
	if err != nil {
		return 0, err
	}
	pb, err := workload.Spec(pair.B)
	if err != nil {
		return 0, err
	}
	frames := workload.FramesNeeded(pa) + workload.FramesNeeded(pb) + 1024
	mcfg := machineConfig(cache.SecOff, 1, opts, frames)
	mcfg.Defense = def
	l, err := specLeg(pair, mcfg, "matrix-"+def, opts, nil)
	if err != nil {
		return 0, err
	}
	m, err := runLeg(pool, opts, l)
	if err != nil {
		return 0, err
	}
	return float64(m.cycles), nil
}

func containsString(ss []string, s string) bool { return indexOfString(ss, s) >= 0 }

func indexOfString(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}
