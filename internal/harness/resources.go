// Per-job resource accounting: where a job's simulated work went, summed
// over every machine run (leg) it dispatched. The job service attaches one
// ResourceAccount per job and surfaces the snapshot in the result JSON and
// on /metrics; cmd/reproduce can write the same snapshot with -resources.
// The counters come from the same kernel/hierarchy stats the experiment
// tables are reduced from, so an HTTP job and an equivalent CLI run report
// byte-identical numbers.
package harness

import (
	"sync/atomic"

	"timecache/internal/kernel"
)

// Resources is a point-in-time snapshot of a ResourceAccount: total
// simulated work across all accounted legs. SBitDelayedLoads is the paper's
// leakage-relevant counter — accesses to resident lines that TimeCache
// delayed because the per-process s-bit was clear (summed over L1I, L1D,
// and LLC).
type Resources struct {
	Legs             uint64 `json:"legs"`
	SimCycles        uint64 `json:"sim_cycles"`
	Instructions     uint64 `json:"instructions"`
	L1IAccesses      uint64 `json:"l1i_accesses"`
	L1DAccesses      uint64 `json:"l1d_accesses"`
	LLCAccesses      uint64 `json:"llc_accesses"`
	ContextSwitches  uint64 `json:"context_switches"`
	SBitDelayedLoads uint64 `json:"sbit_delayed_loads"`
}

// Add returns the element-wise sum (used when aggregating jobs).
func (r Resources) Add(o Resources) Resources {
	return Resources{
		Legs:             r.Legs + o.Legs,
		SimCycles:        r.SimCycles + o.SimCycles,
		Instructions:     r.Instructions + o.Instructions,
		L1IAccesses:      r.L1IAccesses + o.L1IAccesses,
		L1DAccesses:      r.L1DAccesses + o.L1DAccesses,
		LLCAccesses:      r.LLCAccesses + o.LLCAccesses,
		ContextSwitches:  r.ContextSwitches + o.ContextSwitches,
		SBitDelayedLoads: r.SBitDelayedLoads + o.SBitDelayedLoads,
	}
}

// ResourceAccount accumulates Resources across concurrent sweep legs. All
// adds are atomic, so one account may be shared by every worker of a
// parallel sweep; the zero value is ready to use.
type ResourceAccount struct {
	legs             atomic.Uint64
	simCycles        atomic.Uint64
	instructions     atomic.Uint64
	l1iAccesses      atomic.Uint64
	l1dAccesses      atomic.Uint64
	llcAccesses      atomic.Uint64
	contextSwitches  atomic.Uint64
	sbitDelayedLoads atomic.Uint64
}

// AddRun charges one completed machine run: the kernel's whole-run totals
// (from cold Reset to now, warmup included — these are resource counters,
// not steady-state measurements).
func (a *ResourceAccount) AddRun(k *kernel.Kernel) {
	if a == nil {
		return
	}
	a.add(snapCounters(k))
}

// add charges one run from an already-taken counter snapshot.
func (a *ResourceAccount) add(m measurement) {
	if a == nil {
		return
	}
	a.legs.Add(1)
	a.simCycles.Add(m.cycles)
	a.instructions.Add(m.instrs)
	a.l1iAccesses.Add(m.l1i.Accesses)
	a.l1dAccesses.Add(m.l1d.Accesses)
	a.llcAccesses.Add(m.llc.Accesses)
	a.contextSwitches.Add(m.kern.ContextSwitches)
	a.sbitDelayedLoads.Add(m.l1i.FirstAccess + m.l1d.FirstAccess + m.llc.FirstAccess)
}

// AddLeg charges a leg that has no kernel to read counters from (the
// security experiment's attack runs own their machines internally); only
// the leg count advances.
func (a *ResourceAccount) AddLeg() {
	if a == nil {
		return
	}
	a.legs.Add(1)
}

// Snapshot returns the current totals. It may be called while legs are
// still running; each counter is individually consistent.
func (a *ResourceAccount) Snapshot() Resources {
	if a == nil {
		return Resources{}
	}
	return Resources{
		Legs:             a.legs.Load(),
		SimCycles:        a.simCycles.Load(),
		Instructions:     a.instructions.Load(),
		L1IAccesses:      a.l1iAccesses.Load(),
		L1DAccesses:      a.l1dAccesses.Load(),
		LLCAccesses:      a.llcAccesses.Load(),
		ContextSwitches:  a.contextSwitches.Load(),
		SBitDelayedLoads: a.sbitDelayedLoads.Load(),
	}
}
