package harness

import (
	"testing"
	"time"

	"timecache/internal/workload"
)

func TestResourcesAdd(t *testing.T) {
	a := Resources{Legs: 1, SimCycles: 2, Instructions: 3, L1IAccesses: 4,
		L1DAccesses: 5, LLCAccesses: 6, ContextSwitches: 7, SBitDelayedLoads: 8}
	b := Resources{Legs: 10, SimCycles: 20, Instructions: 30, L1IAccesses: 40,
		L1DAccesses: 50, LLCAccesses: 60, ContextSwitches: 70, SBitDelayedLoads: 80}
	want := Resources{Legs: 11, SimCycles: 22, Instructions: 33, L1IAccesses: 44,
		L1DAccesses: 55, LLCAccesses: 66, ContextSwitches: 77, SBitDelayedLoads: 88}
	if got := a.Add(b); got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

// TestResourceAccountOnRun attaches an account to a real (small) SPEC pair
// run and checks the leg-granularity accounting: one leg per mode, whole-run
// counters strictly above the steady-state numbers the row reports (warmup
// is charged), and deterministic across identical runs.
func TestResourceAccountOnRun(t *testing.T) {
	pair := workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}
	run := func() Resources {
		account := &ResourceAccount{}
		opts := smallOpts()
		opts.Account = account
		if _, err := RunSpecPair(pair, opts); err != nil {
			t.Fatal(err)
		}
		return account.Snapshot()
	}
	got := run()
	if got.Legs != 2 {
		t.Fatalf("a pair runs baseline + timecache = 2 legs, got %d", got.Legs)
	}
	if got.SimCycles == 0 || got.Instructions == 0 {
		t.Fatalf("cycles/instructions not charged: %+v", got)
	}
	// Two processes, both instruction budgets, both modes: at least
	// 2 procs x (warmup+measured) x 2 legs instructions executed.
	min := 2 * 2 * (smallOpts().InstrsPerProc + smallOpts().WarmupInstrs)
	if got.Instructions < min {
		t.Fatalf("instructions %d below the %d the budgets demand", got.Instructions, min)
	}
	if got.L1IAccesses == 0 || got.L1DAccesses == 0 || got.LLCAccesses == 0 {
		t.Fatalf("cache accesses not charged at every level: %+v", got)
	}
	if got.ContextSwitches == 0 {
		t.Fatalf("two processes on one core must context switch: %+v", got)
	}
	if got.SBitDelayedLoads == 0 {
		t.Fatalf("the TimeCache leg must delay some first accesses: %+v", got)
	}
	if again := run(); again != got {
		t.Fatalf("identical runs diverged:\n got %+v\nwant %+v", again, got)
	}
}

func TestResourceAccountNilSafe(t *testing.T) {
	var a *ResourceAccount
	a.AddRun(nil)
	a.AddLeg()
	if s := a.Snapshot(); s != (Resources{}) {
		t.Fatalf("nil account snapshot = %+v, want zeros", s)
	}
}

// TestLegHooksZeroAlloc is the zero-overhead guard: with neither an account
// nor a span sink attached, the per-leg hooks must not allocate (and must
// not read the clock — legStart returns the zero time). This is what keeps
// observability free for plain CLI runs.
func TestLegHooksZeroAlloc(t *testing.T) {
	var opts Options
	allocs := testing.AllocsPerRun(1000, func() {
		start := opts.legStart()
		opts.finishLeg("x", start, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled leg hooks allocate %.1f allocs/op, want 0", allocs)
	}
	if !opts.legStart().IsZero() {
		t.Fatal("legStart must not read the clock when no span sink is attached")
	}
}

// BenchmarkLegHooksDisabled measures the disabled-path cost recorded in
// BENCH_baseline.json (expected: sub-ns, 0 allocs/op).
func BenchmarkLegHooksDisabled(b *testing.B) {
	var opts Options
	b.ReportAllocs()
	var start time.Time
	for i := 0; i < b.N; i++ {
		start = opts.legStart()
		opts.finishLeg("x", start, nil)
	}
	_ = start
}
