package harness

import (
	"strings"
	"testing"

	"timecache/internal/defense"
	"timecache/internal/workload"
)

// allPairLabels spells out the full Table II pair list explicitly.
func allPairLabels() []string {
	return pairLabels(workload.SpecPairs())
}

// TestFingerprintDefaultEquivalence: a job that leaves a selection empty and
// one that spells the default out explicitly are the same simulation, and
// must hash equal.
func TestFingerprintDefaultEquivalence(t *testing.T) {
	same := []struct {
		name string
		a, b Job
	}{
		{"table2 pairs", Job{Experiment: ExpTableII}, Job{Experiment: ExpTableII, Pairs: allPairLabels()}},
		{"parsec workloads", Job{Experiment: ExpParsec}, Job{Experiment: ExpParsec, Workloads: workload.ParsecNames()}},
		{"llc-sweep sizes", Job{Experiment: ExpLLCSweep}, Job{Experiment: ExpLLCSweep, LLCSizes: defaultLLCSizes()}},
		{"ablation pair", Job{Experiment: ExpAblation}, Job{Experiment: ExpAblation, Pairs: []string{defaultAblationPair}}},
		{"bookkeeping ladder", Job{Experiment: ExpBookkeeping}, Job{Experiment: ExpBookkeeping, SliceCycles: defaultSliceLadder()}},
		{"security key+seed", Job{Experiment: ExpSecurity}, Job{Experiment: ExpSecurity, KeyBits: defaultKeyBits, Seed: defaultSeed}},
		{"matrix defaults", Job{Experiment: ExpMatrix}, Job{Experiment: ExpMatrix, Pairs: []string{defaultAblationPair},
			Defenses: defense.Kinds(), Attacks: MatrixAttacks(), AttackBits: defaultAttackBits, Seed: defaultSeed}},
		// Fields the experiment ignores must not perturb the hash.
		{"table2 ignores seed", Job{Experiment: ExpTableII}, Job{Experiment: ExpTableII, KeyBits: 128, Seed: 999, SliceCycles: []uint64{1}}},
	}
	for _, tc := range same {
		if got, want := tc.a.Fingerprint(), tc.b.Fingerprint(); got != want {
			t.Errorf("%s: fingerprints differ\n a=%s\n b=%s", tc.name, got, want)
		}
	}
}

// TestFingerprintSensitivity: every result-affecting field change must move
// the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := Job{Experiment: ExpTableII, Pairs: []string{"2Xlbm", "2Xgobmk"}}
	variants := map[string]Job{
		"experiment":      {Experiment: ExpLLCSweep, Pairs: base.Pairs},
		"pair set":        {Experiment: ExpTableII, Pairs: []string{"2Xlbm"}},
		"pair order":      {Experiment: ExpTableII, Pairs: []string{"2Xgobmk", "2Xlbm"}},
		"security seed":   {Experiment: ExpSecurity, Seed: 7},
		"security bits":   {Experiment: ExpSecurity, KeyBits: 32},
		"sweep sizes":     {Experiment: ExpLLCSweep, Pairs: base.Pairs, LLCSizes: []int{1 << 20}},
		"slice ladder":    {Experiment: ExpBookkeeping, SliceCycles: []uint64{50_000}},
		"parsec selected": {Experiment: ExpParsec, Workloads: []string{"x264"}},
		"matrix default":  {Experiment: ExpMatrix},
		"matrix defenses": {Experiment: ExpMatrix, Defenses: []string{"none", "timecache"}},
		"matrix defense order": {Experiment: ExpMatrix,
			Defenses: []string{"timecache", "none"}},
		"matrix attacks": {Experiment: ExpMatrix, Attacks: []string{"smt", "coherence"}},
		"matrix attack order": {Experiment: ExpMatrix,
			Attacks: []string{"coherence", "smt"}},
		"matrix bits": {Experiment: ExpMatrix, AttackBits: 16},
		"matrix seed": {Experiment: ExpMatrix, Seed: 7},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, j := range variants {
		fp := j.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, fp)
		}
		seen[fp] = name
	}
	// Adjacent list fields must not alias through concatenation.
	a := Job{Experiment: ExpTableII, Pairs: []string{"2Xlbm", "2Xgobmk"}}
	b := Job{Experiment: ExpTableII, Pairs: []string{"2Xlbm2Xgobmk"}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("split vs joined pair labels alias")
	}
}

// TestFingerprintStableAcrossProcesses pins a golden fingerprint value: the
// encoding has no map iteration, pointers, or process-local state, so the
// hex digest must be identical in every process and on every platform. If
// this test fails because results legitimately changed (new defaults, new
// pair list), bump FingerprintSchemaVersion and re-pin.
func TestFingerprintStableAcrossProcesses(t *testing.T) {
	const wantTable2Default = "8e93f83cc7e145916a01eabb41f70c2e0a8de5f6f6db0fbb9df0b94739f955b4"
	got := Job{Experiment: ExpTableII}.Fingerprint()
	if got != wantTable2Default {
		t.Errorf("Fingerprint({table2}) = %s, want pinned %s (result-affecting change? bump FingerprintSchemaVersion and re-pin)", got, wantTable2Default)
	}
	if len(got) != 64 || strings.ToLower(got) != got {
		t.Errorf("fingerprint %q is not lowercase hex sha256", got)
	}
}

// TestCanonicalIdempotent: canonicalizing twice is a fixed point, and the
// canonical form fingerprints identically to the original.
func TestCanonicalIdempotent(t *testing.T) {
	jobs := []Job{
		{Experiment: ExpTableII},
		{Experiment: ExpTableII, Pairs: []string{"2Xmilc"}},
		{Experiment: ExpParsec, Workloads: []string{"x264", "facesim"}},
		{Experiment: ExpLLCSweep},
		{Experiment: ExpAblation},
		{Experiment: ExpBookkeeping, SliceCycles: []uint64{123}},
		{Experiment: ExpSecurity, KeyBits: 32, Seed: 42},
		{Experiment: ExpMatrix},
		{Experiment: ExpMatrix, Defenses: []string{"fase"}, Attacks: []string{"lru"}, AttackBits: 8},
	}
	for _, j := range jobs {
		c := j.Canonical()
		cc := c.Canonical()
		if c.Fingerprint() != cc.Fingerprint() {
			t.Errorf("Canonical not idempotent for %+v", j)
		}
		if j.Fingerprint() != c.Fingerprint() {
			t.Errorf("Fingerprint(j) != Fingerprint(j.Canonical()) for %+v", j)
		}
	}
}

// FuzzFingerprint drives randomized specs through the canonicalization
// invariants: determinism, idempotence, canonical/raw agreement, and the
// soundness direction of the cache key — equal fingerprints imply equal
// canonical forms (no aliasing across configs; an aliased key would silently
// serve one config's results for another).
func FuzzFingerprint(f *testing.F) {
	f.Add(uint8(0), "2Xlbm", "x264", 0, uint64(0), 0, uint64(0), "", "", 0)
	f.Add(uint8(2), "", "", 1<<20, uint64(200_000), 64, uint64(12345), "", "", 0)
	f.Add(uint8(5), "2Xgobmk", "facesim", 512<<10, uint64(100_000), 32, uint64(7), "", "", 0)
	f.Add(uint8(4), "2Xgobmk", "", 0, uint64(0), 0, uint64(99), "timecache", "llc-occupancy", 16)
	f.Add(uint8(4), "", "", 0, uint64(0), 0, uint64(0), "clepsydra", "flush-reload", 8)
	exps := Experiments()
	f.Fuzz(func(t *testing.T, expIdx uint8, pair, wl string, llc int, slice uint64, keyBits int, seed uint64, def, att string, attackBits int) {
		j := Job{Experiment: exps[int(expIdx)%len(exps)], KeyBits: keyBits, Seed: seed, AttackBits: attackBits}
		if pair != "" {
			j.Pairs = []string{pair}
		}
		if wl != "" {
			j.Workloads = []string{wl}
		}
		if llc != 0 {
			j.LLCSizes = []int{llc}
		}
		if slice != 0 {
			j.SliceCycles = []uint64{slice}
		}
		if def != "" {
			j.Defenses = []string{def}
		}
		if att != "" {
			j.Attacks = []string{att}
		}
		if j.Validate() != nil {
			t.Skip()
		}
		fp := j.Fingerprint()
		if fp != j.Fingerprint() {
			t.Fatal("fingerprint not deterministic")
		}
		c := j.Canonical()
		if got := c.Fingerprint(); got != fp {
			t.Fatalf("canonical fingerprint %s != raw %s", got, fp)
		}
		if got := c.Canonical().Fingerprint(); got != fp {
			t.Fatalf("double-canonical fingerprint %s != raw %s", got, fp)
		}
		// A perturbed result-affecting field must move the hash.
		perturbed := j
		perturbed.Experiment = exps[(int(expIdx)+1)%len(exps)]
		if perturbed.Validate() == nil && perturbed.Fingerprint() == fp {
			t.Fatalf("experiment change did not move fingerprint: %+v", j)
		}
	})
}

// BenchmarkJobFingerprint prices the cache-key computation on the admission
// path (one hash per POST /v1/jobs; compare against milliseconds of
// simulation per miss).
func BenchmarkJobFingerprint(b *testing.B) {
	j := Job{Experiment: ExpTableII, Pairs: []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if j.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}
