// Package workload provides synthetic statistical models of the SPEC2006
// and PARSEC benchmarks the paper evaluates with. Each profile is
// calibrated against the paper's Table II baseline LLC MPKI and the
// qualitative code-footprint observations (e.g. wrf and perlbench have
// large shared instruction footprints), so the reproduction exercises the
// same mechanisms: streaming misses, resident working sets, shared binary
// text, a shared libc image, and kernel-text sharing across context
// switches.
package workload

import (
	"fmt"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/sim"
)

// Profile is a statistical model of one benchmark.
type Profile struct {
	Name string

	// MemRatio is the fraction of instructions performing a data access.
	MemRatio float64
	// StoreRatio is the fraction of data accesses that are stores.
	StoreRatio float64
	// StreamFrac is the fraction of data accesses that walk a large
	// streaming region sequentially (the LLC-miss generator).
	StreamFrac float64
	// StreamBytes is the streaming region size; larger than the LLC so
	// streamed lines always miss.
	StreamBytes uint64
	// WSBytes is the resident random-access working set.
	WSBytes uint64
	// CodeBytes is the benchmark's instruction footprint (shared between
	// instances of the same benchmark).
	CodeBytes uint64
	// LibFrac is the fraction of fetches that go to the shared libc image.
	LibFrac float64
	// LibDataFrac is the fraction of data accesses that read shared libc
	// data structures (the cross-process shared-data component that
	// produces L1D first accesses in Fig. 8).
	LibDataFrac float64
	// JumpEvery is the number of sequential fetches between jumps to a
	// random spot in the code region (controls L1I locality).
	JumpEvery int
}

// Region layout for workload address spaces.
const (
	codeBase    = 0x0100_0000
	libBase     = 0x0800_0000
	libDataBase = 0x0900_0000
	streamBase  = 0x1000_0000
	wsBase      = 0x3000_0000

	// LibBytes is the hot shared libc footprint, common to every process
	// (the actively used subset of the library, not its full image).
	LibBytes = 64 << 10
	// LibDataBytes is the hot shared libc data footprint.
	LibDataBytes = 16 << 10
)

// Proc is a running workload instance implementing sim.Proc.
type Proc struct {
	prof    Profile
	budget  uint64
	retired uint64
	rng     uint64

	// Warmup marks the instruction count after which OnWarm fires once;
	// the harness uses it to snapshot counters so cold-start misses do not
	// pollute steady-state measurements (the paper amortizes them over 1B
	// instructions).
	Warmup uint64
	// OnWarm is invoked when Warmup instructions have retired.
	OnWarm func()
	warmed bool

	codePos   uint64
	sinceJump int
	streamPos uint64
}

// NewProc creates a workload process that retires `instrs` instructions.
func NewProc(prof Profile, instrs uint64, seed uint64) *Proc {
	if prof.JumpEvery <= 0 {
		prof.JumpEvery = 16
	}
	return &Proc{prof: prof, budget: instrs, rng: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

// Retired returns the number of instructions executed so far.
func (p *Proc) Retired() uint64 { return p.retired }

// ForkProc implements sim.Forker: the process state is a flat value (RNG
// position, retirement count, stream/code cursors), so a shallow copy is a
// complete execution-state clone. The OnWarm callback is dropped — it
// belongs to the run that installed it, and snapshots are only taken at or
// after the warm point, where `warmed` already prevents it from refiring.
func (p *Proc) ForkProc() sim.Proc {
	q := *p
	q.OnWarm = nil
	return &q
}

func (p *Proc) rand() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}

// randFloat returns a uniform float in [0,1).
func (p *Proc) randFloat() float64 {
	return float64(p.rand()>>11) / float64(1<<53)
}

// pick returns a uniform index in [0,n). Shared regions are sized to their
// hot footprint (a process touches a small part of libc), so uniform access
// covers them during warmup and steady-state first accesses reflect genuine
// evict-refill dynamics rather than one-time cold coverage.
func (p *Proc) pick(n uint64) uint64 {
	return p.rand() % n
}

// Step executes one modeled instruction: a fetch, possibly a data access,
// and one compute cycle.
func (p *Proc) Step(env sim.Env) bool {
	if p.retired >= p.budget {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	// Instruction fetch: mostly sequential within the code region, with
	// periodic jumps; a LibFrac slice fetches shared-library code.
	var fetchAddr uint64
	if p.prof.LibFrac > 0 && p.randFloat() < p.prof.LibFrac {
		fetchAddr = libBase + p.pick(LibBytes/cache.LineSize)*cache.LineSize
	} else {
		p.sinceJump++
		if p.sinceJump >= p.prof.JumpEvery {
			p.sinceJump = 0
			p.codePos = p.pick(p.prof.CodeBytes)
		} else {
			p.codePos = (p.codePos + 8) % p.prof.CodeBytes
		}
		fetchAddr = codeBase + (p.codePos &^ 7)
	}
	env.Fetch(fetchAddr)

	if p.randFloat() < p.prof.MemRatio {
		switch {
		case p.prof.LibDataFrac > 0 && p.randFloat() < p.prof.LibDataFrac:
			// Shared libc data is read-only from the process's viewpoint.
			env.Load(libDataBase + p.pick(LibDataBytes/8)*8)
		case p.randFloat() < p.prof.StreamFrac:
			addr := streamBase + p.streamPos
			p.streamPos = (p.streamPos + 8) % p.prof.StreamBytes
			if p.randFloat() < p.prof.StoreRatio {
				env.Store(addr, p.rng)
			} else {
				env.Load(addr)
			}
		default:
			addr := wsBase + (p.rand()%(p.prof.WSBytes/8))*8
			if p.randFloat() < p.prof.StoreRatio {
				env.Store(addr, p.rng)
			} else {
				env.Load(addr)
			}
		}
	}
	env.Tick(1)
	env.Instret(1)
	p.retired++
	if !p.warmed && p.Warmup > 0 && p.retired >= p.Warmup {
		p.warmed = true
		if p.OnWarm != nil {
			p.OnWarm()
		}
	}
	return true
}

// SpawnOptions controls workload placement.
type SpawnOptions struct {
	// Core pins the process.
	Core int
	// Instrs is the instruction budget.
	Instrs uint64
	// Seed perturbs the access stream (give the two instances of a pair
	// different seeds).
	Seed uint64
	// ShareAS, when non-nil, reuses an existing address space (PARSEC-style
	// threads sharing code and data).
	ShareAS *kernel.AddressSpace
}

// Spawn sets up an address space for prof and schedules a workload process:
// the benchmark text is a shared region keyed by the benchmark name (two
// instances of the same benchmark share their binary, as the paper's
// 2X runs do), libc is a globally shared region, and the streaming/working
// set data is private.
func Spawn(k *kernel.Kernel, prof Profile, opts SpawnOptions) (*kernel.Process, *Proc, error) {
	as := opts.ShareAS
	if as == nil {
		var err error
		as, err = buildAS(k, prof)
		if err != nil {
			return nil, nil, err
		}
	}
	proc := NewProc(prof, opts.Instrs, opts.Seed)
	p, err := k.Spawn(prof.Name, proc, as, opts.Core)
	if err != nil {
		return nil, nil, err
	}
	return p, proc, nil
}

// buildAS maps the four workload regions for one instance of prof.
func buildAS(k *kernel.Kernel, prof Profile) (*kernel.AddressSpace, error) {
	as := kernel.NewAddressSpace(k.Physical())
	if err := k.MapSharedRegion(as, "bench:"+prof.Name+":text", codeBase, prof.CodeBytes); err != nil {
		return nil, fmt.Errorf("workload %s: code: %w", prof.Name, err)
	}
	if err := k.MapSharedRegion(as, "libc", libBase, LibBytes); err != nil {
		return nil, fmt.Errorf("workload %s: libc: %w", prof.Name, err)
	}
	if err := k.MapSharedRegion(as, "libc.data", libDataBase, LibDataBytes); err != nil {
		return nil, fmt.Errorf("workload %s: libc data: %w", prof.Name, err)
	}
	if err := as.MapAnon(streamBase, prof.StreamBytes, true); err != nil {
		return nil, fmt.Errorf("workload %s: stream: %w", prof.Name, err)
	}
	if err := as.MapAnon(wsBase, prof.WSBytes, true); err != nil {
		return nil, fmt.Errorf("workload %s: ws: %w", prof.Name, err)
	}
	return as, nil
}

// BuildSharedAS exposes buildAS for PARSEC-style thread groups that share
// one address space across cores.
func BuildSharedAS(k *kernel.Kernel, prof Profile) (*kernel.AddressSpace, error) {
	return buildAS(k, prof)
}

// FramesNeeded estimates the physical frames one instance of prof needs,
// for sizing physical memory.
func FramesNeeded(prof Profile) int {
	bytes := prof.StreamBytes + prof.WSBytes + prof.CodeBytes + LibBytes
	return int(bytes/4096) + 16
}
