package workload

import "fmt"

// The profiles below are calibrated so that the baseline (no defense)
// simulation lands near the paper's Table II LLC MPKI for each workload.
// The controlling identity for the streaming model is
//
//	MPKI_LLC ≈ 1000 * MemRatio * StreamFrac / 8
//
// because a sequential 8-byte-stride stream over a region larger than the
// LLC misses once per 64-byte line. Code footprints follow the paper's
// qualitative notes: wrf and perlbench carry large shared instruction
// footprints (their first-access MPKI dominates Fig. 8); everything shares
// a libc image and kernel text.

// MB is a mebibyte, used by profile definitions.
const MB = 1 << 20

// KB is a kibibyte.
const KB = 1 << 10

// specProfiles models the SPEC2006 subset evaluated in the paper.
var specProfiles = map[string]Profile{
	"specrand":   {MemRatio: 0.20, StoreRatio: 0.3, StreamFrac: 0.0002, StreamBytes: 3 * MB, WSBytes: 64 * KB, CodeBytes: 64 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
	"lbm":        {MemRatio: 0.45, StoreRatio: 0.40, StreamFrac: 0.2494, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 96 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 32},
	"leslie3d":   {MemRatio: 0.45, StoreRatio: 0.30, StreamFrac: 0.3666, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 160 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 24},
	"gobmk":      {MemRatio: 0.30, StoreRatio: 0.25, StreamFrac: 0.0875, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 256 * KB, LibFrac: 0.05, LibDataFrac: 0.02, JumpEvery: 8},
	"libquantum": {MemRatio: 0.30, StoreRatio: 0.25, StreamFrac: 0.1560, StreamBytes: 3 * MB, WSBytes: 128 * KB, CodeBytes: 64 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 32},
	"wrf":        {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.1081, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 384 * KB, LibFrac: 0.06, LibDataFrac: 0.02, JumpEvery: 12},
	"calculix":   {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0048, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 192 * KB, LibFrac: 0.05, LibDataFrac: 0.02, JumpEvery: 16},
	"sjeng":      {MemRatio: 0.35, StoreRatio: 0.25, StreamFrac: 0.3835, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 128 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 8},
	"perlbench":  {MemRatio: 0.35, StoreRatio: 0.35, StreamFrac: 0.0233, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 512 * KB, LibFrac: 0.10, LibDataFrac: 0.02, JumpEvery: 10},
	"astar":      {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0129, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 96 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 12},
	"h264ref":    {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0127, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 192 * KB, LibFrac: 0.07, LibDataFrac: 0.02, JumpEvery: 14},
	"milc":       {MemRatio: 0.40, StoreRatio: 0.35, StreamFrac: 0.3294, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 128 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 24},
	"sphinx3":    {MemRatio: 0.35, StoreRatio: 0.25, StreamFrac: 0.0061, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 160 * KB, LibFrac: 0.05, LibDataFrac: 0.02, JumpEvery: 14},
	"namd":       {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0037, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 128 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
	"gromacs":    {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0067, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 128 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
	"zeusmp":     {MemRatio: 0.40, StoreRatio: 0.35, StreamFrac: 0.1736, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 192 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 24},
	"cactus":     {MemRatio: 0.45, StoreRatio: 0.35, StreamFrac: 0.3900, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 192 * KB, LibFrac: 0.03, LibDataFrac: 0.02, JumpEvery: 24},
}

// parsecProfiles models the 2-thread PARSEC runs (Fig. 9). Threads share
// one address space, so the streaming and working-set regions are shared
// data: cross-thread reuse at the LLC is what generates first accesses.
var parsecProfiles = map[string]Profile{
	"blackscholes": {MemRatio: 0.30, StoreRatio: 0.25, StreamFrac: 0.0012, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 96 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 20},
	"swaptions":    {MemRatio: 0.30, StoreRatio: 0.25, StreamFrac: 0.0002, StreamBytes: 3 * MB, WSBytes: 128 * KB, CodeBytes: 96 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
	"fluidanimate": {MemRatio: 0.35, StoreRatio: 0.35, StreamFrac: 0.0030, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 128 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
	"raytrace":     {MemRatio: 0.35, StoreRatio: 0.20, StreamFrac: 0.0065, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 160 * KB, LibFrac: 0.05, LibDataFrac: 0.02, JumpEvery: 12},
	"x264":         {MemRatio: 0.35, StoreRatio: 0.30, StreamFrac: 0.0189, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 256 * KB, LibFrac: 0.05, LibDataFrac: 0.02, JumpEvery: 12},
	"facesim":      {MemRatio: 0.40, StoreRatio: 0.35, StreamFrac: 0.0768, StreamBytes: 3 * MB, WSBytes: 256 * KB, CodeBytes: 256 * KB, LibFrac: 0.04, LibDataFrac: 0.02, JumpEvery: 16},
}

// Spec returns the named SPEC2006 profile.
func Spec(name string) (Profile, error) {
	p, ok := specProfiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown SPEC profile %q", name)
	}
	p.Name = name
	return p, nil
}

// Parsec returns the named PARSEC profile.
func Parsec(name string) (Profile, error) {
	p, ok := parsecProfiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown PARSEC profile %q", name)
	}
	p.Name = name
	return p, nil
}

// SpecNames lists available SPEC profiles (stable order).
func SpecNames() []string {
	return []string{
		"specrand", "lbm", "leslie3d", "gobmk", "libquantum", "wrf",
		"calculix", "sjeng", "perlbench", "astar", "h264ref", "milc",
		"sphinx3", "namd", "gromacs", "zeusmp", "cactus",
	}
}

// ParsecNames lists available PARSEC profiles (stable order, matching the
// paper's Table II).
func ParsecNames() []string {
	return []string{"fluidanimate", "raytrace", "blackscholes", "x264", "swaptions", "facesim"}
}

// Pair is one single-core two-process workload from Fig. 7 / Table II.
type Pair struct {
	Label string
	A, B  string
}

// SpecPairs returns the paper's Table II single-core workload list: fifteen
// same-benchmark pairs followed by nine mixed pairs.
func SpecPairs() []Pair {
	same := []string{
		"specrand", "lbm", "leslie3d", "gobmk", "libquantum", "wrf",
		"calculix", "sjeng", "perlbench", "astar", "h264ref", "milc",
		"sphinx3", "namd", "gromacs",
	}
	out := make([]Pair, 0, 24)
	for _, n := range same {
		out = append(out, Pair{Label: "2X" + n, A: n, B: n})
	}
	mixes := []Pair{
		{Label: "leslie+gobmk", A: "leslie3d", B: "gobmk"},
		{Label: "namd+lbm", A: "namd", B: "lbm"},
		{Label: "milc+zeusmp", A: "milc", B: "zeusmp"},
		{Label: "lbm+wrf", A: "lbm", B: "wrf"},
		{Label: "h264+sjeng", A: "h264ref", B: "sjeng"},
		{Label: "perl+wrf", A: "perlbench", B: "wrf"},
		{Label: "cactus+leslie", A: "cactus", B: "leslie3d"},
		{Label: "gobmk+astar", A: "gobmk", B: "astar"},
		{Label: "zeusmp+gromacs", A: "zeusmp", B: "gromacs"},
	}
	return append(out, mixes...)
}

// PaperTableII records the paper's measured numbers for comparison in
// EXPERIMENTS.md and the reproduce tool: normalized execution time and
// baseline/TimeCache LLC MPKI per workload.
var PaperTableII = map[string][3]float64{
	"2Xspecrand":     {0.9908, 0.0035, 0.0238},
	"2Xlbm":          {1.0039, 14.0349, 14.138},
	"2Xleslie3d":     {1.0751, 20.6163, 24.3556},
	"2Xgobmk":        {0.9961, 3.2832, 3.3361},
	"2Xlibquantum":   {1.0001, 5.8532, 5.8831},
	"2Xwrf":          {1.0135, 4.7286, 4.8964},
	"2Xcalculix":     {1.0548, 0.2099, 0.2672},
	"2Xsjeng":        {0.999, 16.7773, 16.8382},
	"2Xperlbench":    {1.0134, 1.021, 1.1582},
	"2Xastar":        {1.0107, 0.5654, 0.6144},
	"2Xh264ref":      {1.014, 0.555, 0.5953},
	"2Xmilc":         {1.0026, 16.4722, 16.5295},
	"2Xsphinx3":      {0.9982, 0.2648, 0.3118},
	"2Xnamd":         {1.0108, 0.1623, 0.2181},
	"2Xgromacs":      {0.9992, 0.292, 0.3703},
	"leslie+gobmk":   {0.9996, 22.3133, 22.3669},
	"namd+lbm":       {1.0579, 6.3764, 7.1136},
	"milc+zeusmp":    {1.0024, 12.5757, 12.6121},
	"lbm+wrf":        {1.0007, 9.7181, 9.7898},
	"h264+sjeng":     {1.0108, 9.0769, 9.1915},
	"perl+wrf":       {1.0143, 1.3984, 1.4626},
	"cactus+leslie":  {1.0034, 21.2749, 21.3736},
	"gobmk+astar":    {0.9994, 1.1053, 1.1469},
	"zeusmp+gromacs": {1.0035, 5.6352, 5.5924},
}

// PaperParsec records Fig. 9a/Table II numbers for the PARSEC runs.
var PaperParsec = map[string][3]float64{
	"fluidanimate": {1.029, 0.1317, 0.1583},
	"raytrace":     {1.0015, 0.2833, 0.2836},
	"blackscholes": {1.0013, 0.0466, 0.0511},
	"x264":         {1.0052, 0.8264, 0.8634},
	"swaptions":    {1.0025, 0.0051, 0.0053},
	"facesim":      {1.0086, 3.3585, 3.3589},
}
