package workload

import (
	"testing"
	"testing/quick"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/mem"
	"timecache/internal/sim"
)

func TestProfileLookups(t *testing.T) {
	for _, name := range SpecNames() {
		p, err := Spec(name)
		if err != nil {
			t.Fatalf("Spec(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile name not set for %q", name)
		}
		if p.MemRatio <= 0 || p.MemRatio > 1 {
			t.Errorf("%s: MemRatio %v out of range", name, p.MemRatio)
		}
		if p.CodeBytes == 0 || p.WSBytes == 0 || p.StreamBytes == 0 {
			t.Errorf("%s: zero-sized region", name)
		}
	}
	for _, name := range ParsecNames() {
		if _, err := Parsec(name); err != nil {
			t.Fatalf("Parsec(%q): %v", name, err)
		}
	}
	if _, err := Spec("nope"); err == nil {
		t.Error("unknown SPEC profile must error")
	}
	if _, err := Parsec("nope"); err == nil {
		t.Error("unknown PARSEC profile must error")
	}
}

func TestSpecPairsMatchTableII(t *testing.T) {
	pairs := SpecPairs()
	if len(pairs) != 24 {
		t.Fatalf("Table II has 24 SPEC workloads, got %d", len(pairs))
	}
	for _, p := range pairs {
		if _, err := Spec(p.A); err != nil {
			t.Errorf("pair %s references unknown profile %s", p.Label, p.A)
		}
		if _, err := Spec(p.B); err != nil {
			t.Errorf("pair %s references unknown profile %s", p.Label, p.B)
		}
		if _, ok := PaperTableII[p.Label]; !ok {
			t.Errorf("no paper reference for %s", p.Label)
		}
	}
	for _, name := range ParsecNames() {
		if _, ok := PaperParsec[name]; !ok {
			t.Errorf("no paper reference for parsec %s", name)
		}
	}
}

// countingEnv tallies the access mix a Proc generates.
type countingEnv struct {
	fetches, loads, stores uint64
	fetchAddrs             map[uint64]bool
	loadAddrs              map[uint64]bool
	now                    uint64
	exited                 bool
}

func newCountingEnv() *countingEnv {
	return &countingEnv{fetchAddrs: map[uint64]bool{}, loadAddrs: map[uint64]bool{}}
}

func (e *countingEnv) Fetch(v uint64)           { e.fetches++; e.fetchAddrs[v&^63] = true; e.now++ }
func (e *countingEnv) Load(v uint64) uint64     { e.loads++; e.loadAddrs[v&^63] = true; e.now++; return 0 }
func (e *countingEnv) Store(v uint64, x uint64) { e.stores++; e.now++ }
func (e *countingEnv) Flush(v uint64)           { e.now++ }
func (e *countingEnv) Now() uint64              { return e.now }
func (e *countingEnv) Tick(n uint64)            { e.now += n }
func (e *countingEnv) Instret(n uint64)         {}
func (e *countingEnv) PID() int                 { return 1 }
func (e *countingEnv) Syscall(n, a uint64) uint64 {
	if n == sim.SysExit {
		e.exited = true
	}
	return 0
}

func TestProcAccessMixMatchesProfile(t *testing.T) {
	prof, _ := Spec("lbm")
	const n = 200_000
	p := NewProc(prof, n, 7)
	env := newCountingEnv()
	for p.Step(env) {
	}
	if !env.exited {
		t.Fatal("proc must exit at its budget")
	}
	if env.fetches != n {
		t.Fatalf("fetches = %d, want one per instruction (%d)", env.fetches, n)
	}
	memOps := float64(env.loads + env.stores)
	gotRatio := memOps / float64(n)
	if gotRatio < prof.MemRatio*0.9 || gotRatio > prof.MemRatio*1.1 {
		t.Fatalf("memory ratio %.3f, profile says %.3f", gotRatio, prof.MemRatio)
	}
	storeShare := float64(env.stores) / memOps
	// Stores apply within stream and WS accesses (not libc data), so the
	// observed share sits slightly below StoreRatio.
	if storeShare < prof.StoreRatio*0.8 || storeShare > prof.StoreRatio*1.1 {
		t.Fatalf("store share %.3f vs StoreRatio %.3f", storeShare, prof.StoreRatio)
	}
}

func TestProcDeterministicPerSeed(t *testing.T) {
	prof, _ := Spec("gobmk")
	run := func(seed uint64) (uint64, uint64) {
		p := NewProc(prof, 20_000, seed)
		env := newCountingEnv()
		for p.Step(env) {
		}
		return env.loads, env.stores
	}
	l1, s1 := run(42)
	l2, s2 := run(42)
	l3, _ := run(43)
	if l1 != l2 || s1 != s2 {
		t.Fatal("same seed must give identical streams")
	}
	if l1 == l3 {
		t.Fatal("different seeds should differ")
	}
}

func TestWarmupCallbackFiresOnce(t *testing.T) {
	prof, _ := Spec("namd")
	p := NewProc(prof, 10_000, 1)
	fired := 0
	p.Warmup, p.OnWarm = 5_000, func() { fired++ }
	env := newCountingEnv()
	for p.Step(env) {
	}
	if fired != 1 {
		t.Fatalf("OnWarm fired %d times, want 1", fired)
	}
	if p.Retired() != 10_000 {
		t.Fatalf("retired %d, want 10000", p.Retired())
	}
}

func TestSpawnSharesCodeAndLibc(t *testing.T) {
	hcfg := cache.DefaultHierarchyConfig()
	hier := cache.NewHierarchy(hcfg)
	phys := mem.NewPhysical(8192, hcfg.DRAMLat)
	k := kernel.New(kernel.DefaultConfig(), hier, phys)
	prof, _ := Spec("namd")
	p1, _, err := Spawn(k, prof, SpawnOptions{Instrs: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Spawn(k, prof, SpawnOptions{Instrs: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same benchmark: code frames shared; streams private.
	f1, _ := p1.AS.FrameAt(codeBase)
	f2, _ := p2.AS.FrameAt(codeBase)
	if f1 != f2 {
		t.Fatal("benchmark text must be shared between instances")
	}
	l1, _ := p1.AS.FrameAt(libBase)
	l2, _ := p2.AS.FrameAt(libBase)
	if l1 != l2 {
		t.Fatal("libc must be shared")
	}
	s1, _ := p1.AS.FrameAt(streamBase)
	s2, _ := p2.AS.FrameAt(streamBase)
	if s1 == s2 {
		t.Fatal("stream regions must be private")
	}
	// A different benchmark shares libc but not code.
	prof2, _ := Spec("gobmk")
	p3, _, err := Spawn(k, prof2, SpawnOptions{Instrs: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f3, _ := p3.AS.FrameAt(codeBase)
	if f3 == f1 {
		t.Fatal("different benchmarks must not share text")
	}
	l3, _ := p3.AS.FrameAt(libBase)
	if l3 != l1 {
		t.Fatal("libc is shared across all benchmarks")
	}
}

func TestFramesNeededCoversRegions(t *testing.T) {
	f := func(seedByte uint8) bool {
		names := SpecNames()
		prof, _ := Spec(names[int(seedByte)%len(names)])
		need := FramesNeeded(prof)
		total := int(prof.StreamBytes+prof.WSBytes+prof.CodeBytes+LibBytes) / 4096
		return need >= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcAddressesStayInRegions(t *testing.T) {
	prof, _ := Spec("wrf")
	p := NewProc(prof, 50_000, 11)
	env := newCountingEnv()
	for p.Step(env) {
	}
	for a := range env.fetchAddrs {
		inCode := a >= codeBase && a < codeBase+prof.CodeBytes
		inLib := a >= libBase && a < libBase+LibBytes
		if !inCode && !inLib {
			t.Fatalf("fetch outside code/lib regions: %#x", a)
		}
	}
	for a := range env.loadAddrs {
		inStream := a >= streamBase && a < streamBase+prof.StreamBytes
		inWS := a >= wsBase && a < wsBase+prof.WSBytes
		inLibData := a >= libDataBase && a < libDataBase+LibDataBytes
		if !inStream && !inWS && !inLibData {
			t.Fatalf("load outside data regions: %#x", a)
		}
	}
}
