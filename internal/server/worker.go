package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"

	"timecache/internal/clock"
	"timecache/internal/harness"
	"timecache/internal/machine"
)

// WorkerConfig sizes a leg-executor worker daemon.
type WorkerConfig struct {
	// Clock supplies span timestamps inside leg runs. Nil defaults to the
	// real clock.
	Clock clock.WallClock
	// Logger receives one line per leg served. Nil discards.
	Logger *slog.Logger
}

// worker is the daemon behind timecache-serve -worker: a stateless leg
// executor. The coordinator POSTs {spec, leg} to /v1/legs; the worker runs
// exactly that leg through the shared harness seam and returns the rendered
// slice plus its resource account. Statelessness is the point — any worker
// can run any leg of any job, a worker that dies mid-leg just forfeits its
// lease, and determinism guarantees the replacement renders identical bytes.
type worker struct {
	cfg   WorkerConfig
	clk   clock.WallClock
	log   *slog.Logger
	mux   *http.ServeMux
	pools sync.Pool // *machine.Pool, one checked out per in-flight leg
}

// NewWorker builds the worker daemon's HTTP handler.
func NewWorker(cfg WorkerConfig) http.Handler {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	w := &worker{cfg: cfg, clk: clk, log: logger}
	w.pools.New = func() any { return machine.NewPool() }
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	w.mux.HandleFunc("POST /v1/legs", w.handleLeg)
	return w
}

func (w *worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

func (w *worker) handleLeg(rw http.ResponseWriter, r *http.Request) {
	start := w.clk.Now()
	var req legRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode leg request: %w", err))
		return
	}
	if err := req.Spec.validate(); err != nil {
		// Invalid specs are a permanent condition, same class as a
		// deterministic simulation error: retrying elsewhere cannot help.
		writeError(rw, http.StatusUnprocessableEntity, err)
		return
	}

	account := &harness.ResourceAccount{}
	opts := req.Spec.options()
	opts.Ctx = r.Context()
	opts.Now = w.clk.Now
	opts.Account = account
	pool := w.pools.Get().(*machine.Pool)
	defer w.pools.Put(pool)
	opts.Pool = pool

	ps0 := pool.Stats()
	tab, err := harness.RunJobLeg(req.Spec.harnessJob(), req.Leg, opts)
	ps1 := pool.Stats()
	if err != nil {
		w.log.Warn("leg failed", "experiment", req.Spec.Experiment, "leg", req.Leg, "error", err)
		writeError(rw, http.StatusUnprocessableEntity, err)
		return
	}
	res := JobResources{
		Resources:      account.Snapshot(),
		PoolHits:       ps1.Hits - ps0.Hits,
		PoolMisses:     ps1.Misses - ps0.Misses,
		PoolEvictions:  ps1.Evictions - ps0.Evictions,
		SnapshotHits:   ps1.SnapshotHits - ps0.SnapshotHits,
		SnapshotMisses: ps1.SnapshotMisses - ps0.SnapshotMisses,
	}
	w.log.Info("leg served", "experiment", req.Spec.Experiment, "leg", req.Leg,
		"rows", len(tab.Rows), "duration", w.clk.Now().Sub(start))
	writeJSON(rw, http.StatusOK, legResponse{Header: tab.Header, Rows: tab.Rows, Resources: res})
}
