package server

import (
	"math"
	"sync"
	"time"

	"timecache/internal/clock"
)

// quotas is the per-tenant admission rate limiter: one lazily-refilled token
// bucket per tenant, all reading the injected clock so quota tests advance a
// clock.Fake instead of sleeping. No timers run — each admission attempt
// refills the caller's bucket from the elapsed time since its last visit.
type quotas struct {
	rate  float64 // tokens per second
	burst float64
	clk   clock.WallClock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate, burst float64, clk clock.WallClock) *quotas {
	return &quotas{rate: rate, burst: burst, clk: clk, buckets: map[string]*bucket{}}
}

// admit spends one token from the tenant's bucket. On refusal it returns the
// whole seconds until a token will have accrued, for the Retry-After header.
func (q *quotas) admit(tenant string) (ok bool, retryAfter int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.clk.Now()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(q.burst, b.tokens+q.rate*dt)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.rate <= 0 {
		return false, 1
	}
	wait := (1 - b.tokens) / q.rate
	return false, int(math.Max(1, math.Ceil(wait)))
}
