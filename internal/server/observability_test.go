package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"timecache/internal/harness"
	"timecache/internal/promtext"
)

// newTestLogger builds a text-format slog logger writing to w.
func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// traceDoc decodes the subset of the Chrome trace-event format the tests
// inspect.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func getTrace(t *testing.T, ts *httptest.Server, id string) traceDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: %s", id, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("trace content type = %q", ct)
	}
	var doc traceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestJobTrace pins the trace contract: a finished job's trace contains the
// five lifecycle spans (validate, enqueue, queue-wait, run, render) on the
// lifecycle track plus one leg span per machine run, and the lifecycle spans
// tile at least 95% of the job's wall time (request arrival to finished).
func TestJobTrace(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	final := waitTerminal(t, ts, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job %s: %s", final.State, final.Error)
	}

	doc := getTrace(t, ts, st.ID)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	lifecycle := map[string]float64{} // name -> dur
	var spanSum, minTs, maxEnd float64
	minTs = -1
	legs := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Cat == "lifecycle" {
			lifecycle[ev.Name] += ev.Dur
			spanSum += ev.Dur
			if minTs < 0 || ev.Ts < minTs {
				minTs = ev.Ts
			}
			if end := ev.Ts + ev.Dur; end > maxEnd {
				maxEnd = end
			}
		}
		if ev.Cat == "leg" {
			legs++
			if ev.Args["sim_cycles"] == nil {
				t.Errorf("leg span %s missing sim_cycles arg", ev.Name)
			}
		}
	}
	for _, name := range []string{"validate", "enqueue", "queue-wait", "run", "render"} {
		if _, ok := lifecycle[name]; !ok {
			t.Errorf("lifecycle span %q missing (have %v)", name, lifecycle)
		}
	}
	// smallSpec is one pair under two modes: two machine runs.
	if legs != 2 {
		t.Errorf("leg spans = %d, want 2", legs)
	}
	if total := maxEnd - minTs; total > 0 && spanSum < 0.95*total {
		t.Errorf("lifecycle spans cover %.1fµs of %.1fµs (%.1f%%), want >= 95%%",
			spanSum, total, 100*spanSum/total)
	}
	// The trace is also retrievable mid-life (before terminal state): submit
	// to a workerless server and fetch immediately.
	_, ts2 := startServer(t, Config{Workers: 0})
	st2, _ := submit(t, ts2, smallSpec())
	doc2 := getTrace(t, ts2, st2.ID)
	if len(doc2.TraceEvents) == 0 {
		t.Error("queued job's trace is empty; want validate/enqueue spans")
	}
}

// TestResourceEquivalence: the resource account a job reports over HTTP must
// equal, field for field, what an identical in-process harness run accounts —
// the service adds observability, never different numbers.
func TestResourceEquivalence(t *testing.T) {
	spec := smallSpec()
	_, ts := startServer(t, Config{Workers: 1})
	st, _ := submit(t, ts, spec)
	final := waitTerminal(t, ts, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job %s: %s", final.State, final.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Resources *JobResources `json:"resources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Resources == nil {
		t.Fatal("result JSON has no resources block")
	}

	account := &harness.ResourceAccount{}
	opts := spec.options()
	opts.Account = account
	if _, err := harness.RunJob(spec.harnessJob(), opts); err != nil {
		t.Fatal(err)
	}
	want := account.Snapshot()
	if result.Resources.Resources != want {
		t.Errorf("HTTP resources = %+v, in-process = %+v", result.Resources.Resources, want)
	}
	if want.Legs == 0 || want.SimCycles == 0 || want.Instructions == 0 ||
		want.L1DAccesses == 0 || want.ContextSwitches == 0 {
		t.Errorf("in-process account left zero counters: %+v", want)
	}
	// Every leg was served by the worker's pool, one way or the other.
	if got := result.Resources.PoolHits + result.Resources.PoolMisses; got != want.Legs {
		t.Errorf("pool hits+misses = %d, want %d (one Get per leg)", got, want.Legs)
	}
}

// scrapeMetrics fetches /metrics, asserts the exposition content type, and
// runs the scrape through the strict promtext parser.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *promtext.Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content type = %q", ct)
	}
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics exposition failed lint: %v", err)
	}
	return m
}

// TestMetricsExposition parses two live scrapes (with concurrent scrape +
// job traffic in between) through the promtext parser: every family must
// carry # TYPE and # HELP, labels must escape cleanly, and no counter may
// move backwards between scrapes.
func TestMetricsExposition(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	before := scrapeMetrics(t, ts)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrapeMetrics(t, ts)
				}
			}
		}()
	}
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := submit(t, ts, smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if final := waitTerminal(t, ts, id, 60*time.Second); final.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, final.State, final.Error)
		}
	}
	close(stop)
	wg.Wait()
	after := scrapeMetrics(t, ts)

	if err := promtext.CheckMonotonic(before, after); err != nil {
		t.Error(err)
	}
	for name, wantType := range map[string]string{
		"timecache_jobs_accepted_total":      "counter",
		"timecache_jobs_finished_total":      "counter",
		"timecache_queue_depth":              "gauge",
		"timecache_sse_subscribers":          "gauge",
		"timecache_pool_hits_total":          "counter",
		"timecache_pool_misses_total":        "counter",
		"timecache_pool_evictions_total":     "counter",
		"timecache_pool_idle_cap":            "gauge",
		"timecache_snapshot_hits_total":      "counter",
		"timecache_snapshot_misses_total":    "counter",
		"timecache_job_legs_total":           "counter",
		"timecache_sim_cycles_total":         "counter",
		"timecache_sim_instructions_total":   "counter",
		"timecache_cache_accesses_total":     "counter",
		"timecache_context_switches_total":   "counter",
		"timecache_sbit_delayed_loads_total": "counter",
		"timecache_job_duration_ms":          "summary",
		"timecache_experiment_duration_ms":   "summary",
	} {
		f := after.Family(name)
		if f == nil {
			t.Errorf("family %s missing from scrape", name)
			continue
		}
		if f.Type != wantType {
			t.Errorf("family %s type = %s, want %s", name, f.Type, wantType)
		}
	}
	if s := after.Sample("timecache_jobs_accepted_total"); s == nil || s.Value < 3 {
		t.Errorf("jobs_accepted = %+v, want >= 3", s)
	}
	if s := after.Sample("timecache_sim_cycles_total"); s == nil || s.Value <= 0 {
		t.Errorf("sim_cycles = %+v, want > 0", s)
	}
	for _, level := range []string{"l1i", "l1d", "llc"} {
		if s := after.Sample("timecache_cache_accesses_total", promtext.Label{Name: "level", Value: level}); s == nil || s.Value <= 0 {
			t.Errorf("cache_accesses{level=%q} = %+v, want > 0", level, s)
		}
	}
	if s := after.Sample("timecache_experiment_duration_ms_count",
		promtext.Label{Name: "experiment", Value: "table2"}); s == nil || s.Value < 3 {
		t.Errorf("experiment_duration_count{table2} = %+v, want >= 3", s)
	}
	if s := after.Sample("timecache_jobs_finished_total",
		promtext.Label{Name: "state", Value: "done"}); s == nil || s.Value < 3 {
		t.Errorf("finished{done} = %+v, want >= 3", s)
	}
}

// TestSSESubscriberGauge: the gauge tracks open event streams.
func TestSSESubscriberGauge(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	st, _ := submit(t, ts, smallSpec())
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The stream is open (job never finishes on a workerless server); the
	// gauge must read 1. Poll: the handler increments after the response
	// headers are written.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := scrapeMetrics(t, ts).Sample("timecache_sse_subscribers"); s != nil && s.Value == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sse_subscribers never reached 1 with an open stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLogLines: every lifecycle transition emits a structured log line
// scoped with the job id.
func TestLogLines(t *testing.T) {
	var buf syncBuffer
	logger := newTestLogger(&buf)
	_, ts := startServer(t, Config{Workers: 1, Logger: logger})
	st, _ := submit(t, ts, smallSpec())
	final := waitTerminal(t, ts, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job %s: %s", final.State, final.Error)
	}
	logs := buf.String()
	for _, want := range []string{
		"server started",
		"job accepted",
		"job running",
		"job finished",
		`job=` + st.ID,
		"state=done",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %q:\n%s", want, logs)
		}
	}
	if strings.Contains(logs, "level=ERROR") {
		t.Errorf("unexpected error logs:\n%s", logs)
	}
}

// syncBuffer is a goroutine-safe strings.Builder for capturing logs.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var _ io.Writer = (*syncBuffer)(nil)
