package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"timecache/internal/clock"
	"timecache/internal/jobstore"
)

// multiLegSpec is a three-pair table2 job: three independent legs at the
// small test budget.
func multiLegSpec() Spec {
	return Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"},
		InstrsPerProc: 20_000,
		WarmupInstrs:  10_000,
	}
}

// copyStore rebuilds src's live records in a fresh Mem, keeping only the
// records keep admits (nil keeps everything). Tests use it to hand a
// "crashed" server's log to a fresh server, optionally simulating records
// that were lost or compacted away.
func copyStore(t *testing.T, src jobstore.Store, keep func(jobstore.Record) bool) *jobstore.Mem {
	t.Helper()
	dst := jobstore.NewMem()
	err := src.Replay(func(r jobstore.Record) error {
		if keep != nil && !keep(r) {
			return nil
		}
		return dst.Append(r)
	})
	if err != nil {
		t.Fatalf("copy store: %v", err)
	}
	return dst
}

// crashServer builds a server without the drain cleanup startServer
// registers: the test abandons it, simulating a process that died.
func crashServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRestartReplaysTerminalJob: a finished job must come back from the log
// read-only — same state, same result bytes, same SSE event history — and
// count toward the replay metric.
func TestRestartReplaysTerminalJob(t *testing.T) {
	store := jobstore.NewMem()
	_, ts1 := crashServer(t, Config{Workers: 2, Store: store})
	st, resp := submit(t, ts1, multiLegSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if final := waitTerminal(t, ts1, st.ID, time.Minute); final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	wantCSV := fetchCSV(t, ts1, st.ID)
	wantSSE := readSSE(t, ts1, st.ID)

	_, ts2 := startServer(t, Config{Workers: 2, Store: copyStore(t, store, nil)})
	got := getStatus(t, ts2, st.ID)
	if got.State != StateDone {
		t.Fatalf("replayed state = %s, want done", got.State)
	}
	if gotCSV := fetchCSV(t, ts2, st.ID); !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("replayed CSV diverged\n--- want ---\n%s--- got ---\n%s", wantCSV, gotCSV)
	}
	gotSSE := readSSE(t, ts2, st.ID)
	if len(gotSSE) != len(wantSSE) {
		t.Fatalf("replayed SSE stream has %d events, want %d", len(gotSSE), len(wantSSE))
	}
	for i := range wantSSE {
		if gotSSE[i] != wantSSE[i] {
			t.Errorf("SSE event %d diverged: got %+v, want %+v", i, gotSSE[i], wantSSE[i])
		}
	}
	if n := scrapeMetric(t, ts2, "timecache_jobstore_replayed_jobs_total"); n < 1 {
		t.Errorf("replayed_jobs_total = %v, want >= 1", n)
	}
	// Simulating nothing on replay is the point: the restarted server's
	// resource counters stay zero until a genuinely new job runs.
	if n := scrapeMetric(t, ts2, "timecache_sim_cycles_total"); n != 0 {
		t.Errorf("sim_cycles_total after replay = %v, want 0", n)
	}
}

// TestRestartResumesQueuedJob: a job accepted but never started (crashed
// before any executor picked it up) re-enters the queue on restart and
// finishes with the same bytes a healthy run produces. Uses the real disk
// store so the file round-trip is exercised end to end.
func TestRestartResumesQueuedJob(t *testing.T) {
	// Reference bytes from a storeless run.
	_, ref := startServer(t, Config{Workers: 2})
	rst, _ := submit(t, ref, multiLegSpec())
	if final := waitTerminal(t, ref, rst.ID, time.Minute); final.State != StateDone {
		t.Fatalf("reference run: %s (%s)", final.State, final.Error)
	}
	wantCSV := fetchCSV(t, ref, rst.ID)

	dir := t.TempDir()
	storeA, err := jobstore.Open(dir, jobstore.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Workers: 0 — the job is accepted and journaled but no executor ever
	// claims it, pinning the crashed-while-queued shape deterministically.
	_, tsA := crashServer(t, Config{Workers: 0, Store: storeA})
	st, resp := submit(t, tsA, multiLegSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got := getStatus(t, tsA, st.ID); got.State != StateQueued {
		t.Fatalf("pre-crash state = %s, want queued", got.State)
	}
	if err := storeA.Close(); err != nil {
		t.Fatal(err)
	}

	storeB, err := jobstore.Open(dir, jobstore.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { storeB.Close() })
	_, tsB := startServer(t, Config{Workers: 2, Store: storeB})
	final := waitTerminal(t, tsB, st.ID, time.Minute)
	if final.State != StateDone {
		t.Fatalf("resumed state = %s (%s), want done", final.State, final.Error)
	}
	if gotCSV := fetchCSV(t, tsB, st.ID); !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("resumed CSV diverged\n--- want ---\n%s--- got ---\n%s", wantCSV, gotCSV)
	}
	// New submissions must not collide with replayed ids.
	st2, _ := submit(t, tsB, smallSpec())
	if st2.ID == st.ID {
		t.Errorf("post-restart submission reused id %s", st2.ID)
	}
}

// TestRestartResumesMidRunJob: a job that crashed with some legs journaled
// resumes at its first unfinished leg — only the missing legs re-run, and
// the merged result is byte-identical.
func TestRestartResumesMidRunJob(t *testing.T) {
	store := jobstore.NewMem()
	_, ts1 := crashServer(t, Config{Workers: 1, Store: store})
	st, _ := submit(t, ts1, multiLegSpec())
	if final := waitTerminal(t, ts1, st.ID, time.Minute); final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	wantCSV := fetchCSV(t, ts1, st.ID)

	// Simulate the crash landing between leg completions: drop the terminal
	// result record and leg 1's checkpoint, keeping legs 0 and 2.
	crashed := copyStore(t, store, func(r jobstore.Record) bool {
		if r.Kind == jobstore.KindResult {
			return false
		}
		if r.Kind == jobstore.KindLeg {
			var lr struct {
				Leg int `json:"leg"`
			}
			if err := json.Unmarshal(r.Payload, &lr); err != nil {
				t.Fatalf("leg record: %v", err)
			}
			return lr.Leg != 1
		}
		return true
	})

	_, ts2 := startServer(t, Config{Workers: 2, Store: crashed})
	final := waitTerminal(t, ts2, st.ID, time.Minute)
	if final.State != StateDone {
		t.Fatalf("resumed state = %s (%s), want done", final.State, final.Error)
	}
	if gotCSV := fetchCSV(t, ts2, st.ID); !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("resumed CSV diverged\n--- want ---\n%s--- got ---\n%s", wantCSV, gotCSV)
	}
	// Exactly the one missing leg re-ran.
	if n := scrapeMetric(t, ts2, "timecache_legs_completed_total"); n != 1 {
		t.Errorf("legs_completed_total after resume = %v, want 1 (one leg re-run)", n)
	}
}

// TestCacheHitAfterRestart: a done job's result re-seeds the cache on
// replay, so resubmitting its spec after a restart is a hit that simulates
// nothing — the restarted server's sim-cycle counter stays zero.
func TestCacheHitAfterRestart(t *testing.T) {
	store := jobstore.NewMem()
	cfgA := cachedConfig(2)
	cfgA.Store = store
	_, ts1 := crashServer(t, cfgA)
	st, hdr := submitHdr(t, ts1, smallSpec())
	if hdr != "miss" {
		t.Fatalf("cold submit header = %q, want miss", hdr)
	}
	if final := waitTerminal(t, ts1, st.ID, time.Minute); final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	wantCSV := fetchCSV(t, ts1, st.ID)

	cfgB := cachedConfig(2) // fresh, empty cache: only replay can fill it
	cfgB.Store = copyStore(t, store, nil)
	_, ts2 := startServer(t, cfgB)
	st2, hdr2 := submitHdr(t, ts2, smallSpec())
	if hdr2 != "hit" {
		t.Fatalf("post-restart submit header = %q, want hit", hdr2)
	}
	if final := waitTerminal(t, ts2, st2.ID, 10*time.Second); final.State != StateDone {
		t.Fatalf("hit job state = %s, want done", final.State)
	}
	if gotCSV := fetchCSV(t, ts2, st2.ID); !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("cached CSV diverged from pre-crash bytes")
	}
	if n := scrapeMetric(t, ts2, "timecache_sim_cycles_total"); n != 0 {
		t.Errorf("sim_cycles_total = %v, want 0 (hit must not re-simulate)", n)
	}
	if n := scrapeMetric(t, ts2, "timecache_legs_completed_total"); n != 0 {
		t.Errorf("legs_completed_total = %v, want 0 (hit must not dispatch legs)", n)
	}
}

// TestCoalescedReplay: after a crash that left a leader+follower pair
// queued, replay re-admits the leader as leader and re-coalesces the
// follower; if the leader's records died with the crash, the orphaned
// follower is re-led and completes on its own.
func TestCoalescedReplay(t *testing.T) {
	store := jobstore.NewMem()
	cfgA := cachedConfig(0) // no executors: both jobs stay pre-run forever
	cfgA.Store = store
	_, ts1 := crashServer(t, cfgA)
	leader, hdr1 := submitHdr(t, ts1, smallSpec())
	follower, hdr2 := submitHdr(t, ts1, smallSpec())
	if hdr1 != "miss" || hdr2 != "coalesced" {
		t.Fatalf("submit headers = %q, %q; want miss, coalesced", hdr1, hdr2)
	}

	t.Run("leader survives", func(t *testing.T) {
		cfgB := cachedConfig(2)
		cfgB.Store = copyStore(t, store, nil)
		_, ts2 := startServer(t, cfgB)
		stL := waitTerminal(t, ts2, leader.ID, time.Minute)
		stF := waitTerminal(t, ts2, follower.ID, time.Minute)
		if stL.State != StateDone || stF.State != StateDone {
			t.Fatalf("states = %s/%s (%s/%s), want done/done", stL.State, stF.State, stL.Error, stF.Error)
		}
		if stF.Cache != "coalesced" {
			t.Errorf("follower disposition = %q, want coalesced", stF.Cache)
		}
		if !bytes.Equal(fetchCSV(t, ts2, leader.ID), fetchCSV(t, ts2, follower.ID)) {
			t.Error("leader and follower results diverged after replay")
		}
	})

	t.Run("leader lost", func(t *testing.T) {
		cfgB := cachedConfig(2)
		cfgB.Store = copyStore(t, store, func(r jobstore.Record) bool {
			return r.JobID != leader.ID
		})
		_, ts2 := startServer(t, cfgB)
		st := waitTerminal(t, ts2, follower.ID, time.Minute)
		if st.State != StateDone {
			t.Fatalf("re-led follower state = %s (%s), want done", st.State, st.Error)
		}
		// The orphan was promoted: it led its own flight instead of waiting
		// forever on a leader that no longer exists.
		if st.Cache != "miss" {
			t.Errorf("re-led follower disposition = %q, want miss", st.Cache)
		}
	})
}

// TestWorkerCountDeterminism: the same job renders byte-identical results
// whether its legs run on one executor or race across four.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := map[string]Spec{
		"table2": multiLegSpec(),
		"llc-sweep": {Experiment: "llc-sweep", Pairs: []string{"2Xlbm", "2Xgobmk"},
			LLCSizesKB: []int{512, 1024}, InstrsPerProc: 20_000, WarmupInstrs: 10_000},
		"ablation": {Experiment: "ablation", Pairs: []string{"2Xlbm"},
			InstrsPerProc: 20_000, WarmupInstrs: 10_000},
		"matrix": {Experiment: "matrix", Pairs: []string{"2Xlbm"},
			Defenses: []string{"none", "timecache"}, Attacks: []string{"smt", "coherence"},
			AttackBits: 8, InstrsPerProc: 20_000, WarmupInstrs: 10_000},
	}
	results := map[int]map[string][]byte{}
	for _, workers := range []int{1, 4} {
		_, ts := startServer(t, Config{Workers: workers})
		results[workers] = map[string][]byte{}
		for name, spec := range specs {
			st, resp := submit(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s @%d workers: submit %s", name, workers, resp.Status)
			}
			if final := waitTerminal(t, ts, st.ID, 2*time.Minute); final.State != StateDone {
				t.Fatalf("%s @%d workers: %s (%s)", name, workers, final.State, final.Error)
			}
			results[workers][name] = fetchCSV(t, ts, st.ID)
		}
	}
	for name := range specs {
		if !bytes.Equal(results[1][name], results[4][name]) {
			t.Errorf("%s: -workers 1 and -workers 4 rendered different bytes\n--- 1 ---\n%s--- 4 ---\n%s",
				name, results[1][name], results[4][name])
		}
	}
}

// TestRemoteWorkerEquivalence: a coordinator whose only executors are
// spawned worker daemons (the /v1/legs protocol) renders the same bytes as
// the in-process pool.
func TestRemoteWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ref := startServer(t, Config{Workers: 2})
	worker := httptest.NewServer(NewWorker(WorkerConfig{}))
	t.Cleanup(worker.Close)
	_, remote := startServer(t, Config{Workers: 0, WorkerAddrs: []string{worker.URL, worker.URL}})

	for name, spec := range map[string]Spec{
		"table2": multiLegSpec(),
		"matrix": {Experiment: "matrix", Pairs: []string{"2Xlbm"},
			Defenses: []string{"none", "timecache"}, Attacks: []string{"smt", "coherence"},
			AttackBits: 8, InstrsPerProc: 20_000, WarmupInstrs: 10_000},
	} {
		rst, _ := submit(t, ref, spec)
		if final := waitTerminal(t, ref, rst.ID, 2*time.Minute); final.State != StateDone {
			t.Fatalf("%s in-process: %s (%s)", name, final.State, final.Error)
		}
		wst, resp := submit(t, remote, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s remote: submit %s", name, resp.Status)
		}
		final := waitTerminal(t, remote, wst.ID, 2*time.Minute)
		if final.State != StateDone {
			t.Fatalf("%s remote: %s (%s)", name, final.State, final.Error)
		}
		want := fetchCSV(t, ref, rst.ID)
		got := fetchCSV(t, remote, wst.ID)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: remote workers rendered different bytes\n--- in-proc ---\n%s--- remote ---\n%s",
				name, want, got)
		}
	}
	// Remote legs carry their resource accounts home over the wire.
	if n := scrapeMetric(t, remote, "timecache_sim_cycles_total"); n == 0 {
		t.Error("remote coordinator sim_cycles_total = 0, want > 0 (accounts lost on the wire)")
	}
}

// TestLegRetryExhaustion: a leg whose executors fail retryably (worker
// unreachable) is retried on the fake clock's backoff up to MaxLegAttempts,
// then the job fails with the transport error.
func TestLegRetryExhaustion(t *testing.T) {
	fake := clock.NewFake(time.Time{})
	_, ts := startServer(t, Config{
		Workers:        0,
		WorkerAddrs:    []string{"http://127.0.0.1:1"}, // nothing listens here
		Clock:          fake,
		MaxLegAttempts: 3,
		RetryBackoff:   time.Second,
	})
	st, resp := submit(t, ts, smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	deadline := time.Now().Add(30 * time.Second)
	var final Status
	for {
		final = getStatus(t, ts, st.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s; attempts=%d", final.State, final.Attempt)
		}
		fake.Advance(time.Second) // fire any pending retry backoff
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "worker") {
		t.Errorf("error = %q, want the transport failure", final.Error)
	}
	if final.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (3 dispatches, 2 retries)", final.Attempt)
	}
	if n := scrapeMetric(t, ts, "timecache_leg_retries_total"); n != 2 {
		t.Errorf("leg_retries_total = %v, want 2", n)
	}
}

// TestLeaseExpiryReissuesLeg: a worker that hangs loses its lease on the
// fake clock; the leg is re-issued, the replacement run's result stands,
// and the job still finishes done.
func TestLeaseExpiryReissuesLeg(t *testing.T) {
	real := NewWorker(WorkerConfig{})
	var calls atomic.Int64
	firstArrived := make(chan struct{})
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && calls.Add(1) == 1 {
			// Drain the body first: the server only notices the client
			// abandoning the request (and cancels r.Context) once the
			// request body has been consumed.
			io.Copy(io.Discard, r.Body)
			close(firstArrived)
			select {
			case <-r.Context().Done(): // the coordinator abandoned us
			case <-time.After(time.Minute): // safety net: never wedge Close
			}
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(worker.Close)

	fake := clock.NewFake(time.Time{})
	_, ts := startServer(t, Config{
		Workers:      0,
		WorkerAddrs:  []string{worker.URL},
		Clock:        fake,
		LeaseTimeout: 30 * time.Second,
	})
	st, _ := submit(t, ts, smallSpec())
	select {
	case <-firstArrived:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never saw the first leg")
	}
	fake.Advance(31 * time.Second) // expire the lease
	final := waitTerminal(t, ts, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 (one lease lost)", final.Attempt)
	}
	if n := scrapeMetric(t, ts, "timecache_leases_expired_total"); n != 1 {
		t.Errorf("leases_expired_total = %v, want 1", n)
	}
}

// TestTenantQuota: per-tenant token buckets refill on the injected clock;
// one tenant exhausting its burst neither blocks another tenant nor is
// locked out once the bucket refills.
func TestTenantQuota(t *testing.T) {
	fake := clock.NewFake(time.Time{})
	_, ts := startServer(t, Config{Workers: 0, Clock: fake, QuotaBurst: 2, QuotaRate: 1})
	spec := smallSpec()
	spec.Tenant = "alice"
	for i := 0; i < 2; i++ {
		if _, resp := submit(t, ts, spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: %s", i, resp.Status)
		}
	}
	_, resp := submit(t, ts, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over-quota submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over-quota 429 missing Retry-After")
	}
	spec.Tenant = "bob"
	if _, resp := submit(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit: %s (quotas must be per-tenant)", resp.Status)
	}
	fake.Advance(time.Second) // refill alice by one token
	spec.Tenant = "alice"
	if _, resp := submit(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice post-refill submit: %s", resp.Status)
	}
	if n := scrapeMetric(t, ts, "timecache_quota_rejected_total"); n != 1 {
		t.Errorf("quota_rejected_total = %v, want 1", n)
	}
}

// TestPrioritySubmitValidation: the priority field is validated, surfaced in
// status, and defaults to normal.
func TestPrioritySubmitValidation(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	spec := smallSpec()
	spec.Priority = "urgent"
	if _, resp := submit(t, ts, spec); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid priority: %s, want 400", resp.Status)
	}
	spec.Priority = "high"
	spec.Tenant = "ops"
	st, resp := submit(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("high-priority submit: %s", resp.Status)
	}
	got := getStatus(t, ts, st.ID)
	if got.Priority != "high" || got.Tenant != "ops" {
		t.Errorf("status = priority %q tenant %q, want high/ops", got.Priority, got.Tenant)
	}
	st2, _ := submit(t, ts, smallSpec())
	if got := getStatus(t, ts, st2.ID); got.Priority != "normal" || got.Tenant != "default" {
		t.Errorf("default status = priority %q tenant %q, want normal/default", got.Priority, got.Tenant)
	}
}

// TestSchedPriorityOrder: the scheduler claims every high-priority leg
// before any normal leg, FIFO within a class, and hands a multi-leg job's
// legs out in leg order.
func TestSchedPriorityOrder(t *testing.T) {
	sc := newSched()
	mk := func(id string, prio int, legs int) *job {
		j := newJob(id, Spec{}, time.Time{})
		j.priority = prio
		j.initLegs(legs)
		return j
	}
	n1 := mk("n1", priorityNormal, 1)
	hi := mk("hi", priorityHigh, 2)
	n2 := mk("n2", priorityNormal, 1)
	sc.enqueue(n1)
	sc.enqueue(hi)
	sc.enqueue(n2)
	var got []string
	for i := 0; i < 4; i++ {
		j, leg, _, ok := sc.next()
		if !ok {
			t.Fatalf("next %d: scheduler closed early", i)
		}
		got = append(got, fmt.Sprintf("%s/%d", j.id, leg))
	}
	want := []string{"hi/0", "hi/1", "n1/0", "n2/0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claim order = %v, want %v", got, want)
		}
	}
	sc.close()
	if _, _, _, ok := sc.next(); ok {
		t.Error("next after close+drain returned a leg")
	}
}

// TestListPagination: GET /v1/jobs pages with ?limit= and ?after=, keeping
// submission order and returning a resume cursor while truncated.
func TestListPagination(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	var ids []string
	for i := 0; i < 5; i++ {
		st, resp := submit(t, ts, smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids = append(ids, st.ID)
	}
	page := func(query string) (got []string, next string, code int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, "", resp.StatusCode
		}
		var out struct {
			Jobs []Status `json:"jobs"`
			Next string   `json:"next"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		for _, st := range out.Jobs {
			got = append(got, st.ID)
		}
		return got, out.Next, resp.StatusCode
	}

	got, next, _ := page("?limit=2")
	if len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Fatalf("page 1 = %v, want %v", got, ids[:2])
	}
	if next != ids[1] {
		t.Fatalf("page 1 next = %q, want %q", next, ids[1])
	}
	got, next, _ = page("?limit=2&after=" + next)
	if len(got) != 2 || got[0] != ids[2] || got[1] != ids[3] {
		t.Fatalf("page 2 = %v, want %v", got, ids[2:4])
	}
	got, next, _ = page("?limit=2&after=" + next)
	if len(got) != 1 || got[0] != ids[4] || next != "" {
		t.Fatalf("page 3 = %v next=%q, want [%s] and no cursor", got, next, ids[4])
	}
	if all, _, _ := page(""); len(all) != 5 {
		t.Fatalf("unpaginated list = %d jobs, want 5", len(all))
	}
	if _, _, code := page("?limit=zero"); code != http.StatusBadRequest {
		t.Errorf("limit=zero → %d, want 400", code)
	}
	if _, _, code := page("?limit=-1"); code != http.StatusBadRequest {
		t.Errorf("limit=-1 → %d, want 400", code)
	}
	if _, _, code := page("?after=job-999999"); code != http.StatusBadRequest {
		t.Errorf("unknown cursor → %d, want 400", code)
	}
}

// TestStoreCompaction: compaction drops terminal jobs' intermediate records
// but keeps replay-complete histories; with StoreRetain it also evicts the
// oldest terminal jobs from the log and the job table.
func TestStoreCompaction(t *testing.T) {
	store := jobstore.NewMem()
	cfg := Config{Workers: 1, Store: store, StoreRetain: 1}
	_, ts := startServer(t, cfg)
	var ids []string
	for i := 0; i < 3; i++ {
		spec := smallSpec()
		spec.Seed = uint64(i + 1) // distinct specs; no cache configured anyway
		st, _ := submit(t, ts, spec)
		if final := waitTerminal(t, ts, st.ID, time.Minute); final.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, final.State, final.Error)
		}
		ids = append(ids, st.ID)
	}
	before := store.Stats()

	resp, err := http.Post(ts.URL+"/v1/store/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %s", resp.Status)
	}
	var out struct {
		Records     uint64 `json:"records"`
		Compactions uint64 `json:"compactions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Records >= before.Records {
		t.Errorf("records %d -> %d: compaction dropped nothing", before.Records, after.Records)
	}
	if after.Compactions == 0 {
		t.Error("compactions counter did not move")
	}
	// Retention kept only the newest terminal job, in the table and the log.
	if r, err := http.Get(ts.URL + "/v1/jobs/" + ids[0]); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s still listed: %s", ids[0], r.Status)
		}
	}
	if r, err := http.Get(ts.URL + "/v1/jobs/" + ids[2]); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("retained job %s: %s", ids[2], r.Status)
		}
	}

	// The compacted log still replays the retained job byte-identically.
	want := fetchCSV(t, ts, ids[2])
	_, ts2 := startServer(t, Config{Workers: 1, Store: copyStore(t, store, nil)})
	if got := fetchCSV(t, ts2, ids[2]); !bytes.Equal(got, want) {
		t.Error("retained job's result diverged after compaction + replay")
	}
	if r, err := http.Get(ts2.URL + "/v1/jobs/" + ids[0]); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s resurrected by replay: %s", ids[0], r.Status)
		}
	}
}

// TestStoreCompactWithoutStore: the endpoint 404s when no store is wired.
func TestStoreCompactWithoutStore(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	resp, err := http.Post(ts.URL+"/v1/store/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("compact without store: %s, want 404", resp.Status)
	}
}
