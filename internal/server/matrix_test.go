package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestMatrixGoldenEquivalence runs the full defense×attack matrix over HTTP
// against a cache-enabled server: the cold run's bytes must match the
// checked-in golden artifact (so the HTTP path, the CLI, and the in-process
// dispatch all render one result), and an identical resubmission must be
// answered from the result cache without simulating anything.
func TestMatrixGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "results", "golden", "matrix.csv"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, cachedConfig(4))
	spec := Spec{
		Experiment:    "matrix",
		AttackBits:    12,
		InstrsPerProc: 60_000,
		WarmupInstrs:  40_000,
		Jobs:          4,
	}
	cold, hdr := submitHdr(t, ts, spec)
	if hdr != "miss" {
		t.Fatalf("cold submit header = %q, want miss", hdr)
	}
	if final := waitTerminal(t, ts, cold.ID, 2*time.Minute); final.State != StateDone {
		t.Fatalf("cold matrix job %s: %s", final.State, final.Error)
	}
	if got := fetchCSV(t, ts, cold.ID); !bytes.Equal(want, got) {
		t.Fatalf("HTTP matrix result diverged from golden artifact\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	cyclesBefore := scrapeMetric(t, ts, "timecache_sim_cycles_total")

	warm, hdr := submitHdr(t, ts, spec)
	if hdr != "hit" {
		t.Fatalf("repeat submit header = %q, want hit", hdr)
	}
	if final := waitTerminal(t, ts, warm.ID, 10*time.Second); final.State != StateDone {
		t.Fatalf("hit matrix job %s: %s", final.State, final.Error)
	}
	if got := fetchCSV(t, ts, warm.ID); !bytes.Equal(want, got) {
		t.Errorf("cached matrix result diverged from golden artifact\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if after := scrapeMetric(t, ts, "timecache_sim_cycles_total"); after != cyclesBefore {
		t.Errorf("sim cycles moved %v -> %v on a matrix cache hit", cyclesBefore, after)
	}
}

// TestMatrixValidation: malformed matrix specs are rejected at admission
// with a 400, never enqueued.
func TestMatrixValidation(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	bad := []Spec{
		{Experiment: "matrix", Defenses: []string{"no-such-defense"}},
		{Experiment: "matrix", Attacks: []string{"no-such-attack"}},
		{Experiment: "matrix", AttackBits: -1},
		{Experiment: "matrix", Pairs: []string{"no-such-pair"}},
	}
	for i, spec := range bad {
		_, resp := submit(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d admitted with %s, want 400", i, resp.Status)
		}
	}
}

// TestMatrixProgress: the matrix job reports per-cell progress over SSE —
// Total is the number of grid legs and Done reaches it.
func TestMatrixProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts := startServer(t, Config{Workers: 1})
	spec := Spec{
		Experiment:    "matrix",
		Defenses:      []string{"none", "timecache"},
		Attacks:       []string{"smt", "coherence"},
		AttackBits:    8,
		InstrsPerProc: 20_000,
		WarmupInstrs:  10_000,
	}
	st, resp := submit(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	final := waitTerminal(t, ts, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("matrix job %s: %s", final.State, final.Error)
	}
	// 2 defenses × 2 attacks + 2 perf legs (none is already requested).
	if final.Total == 0 || final.Done != final.Total {
		t.Errorf("matrix progress = %d/%d, want a complete nonzero count", final.Done, final.Total)
	}
	events := readSSE(t, ts, st.ID)
	progress := 0
	for _, ev := range events {
		if ev.Name == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Error("matrix job emitted no SSE progress events")
	}
}
