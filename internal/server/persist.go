package server

import (
	"encoding/json"
	"fmt"
	"time"

	"timecache/internal/harness"
	"timecache/internal/jobstore"
	"timecache/internal/resultcache"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
)

// Record payloads journaled to the jobstore. One acceptedRecord opens every
// job's history; eventRecords mirror the SSE stream verbatim (so a restart
// replays it byte-identically); legRecords checkpoint completed legs (so an
// interrupted job resumes at its first unfinished leg); a resultRecord
// closes the history and makes the job replay read-only.
type acceptedRecord struct {
	Spec    Spec      `json:"spec"`
	Created time.Time `json:"created"`
	Cache   string    `json:"cache,omitempty"`
	Legs    int       `json:"legs"`
}

type stateRecord struct {
	State State     `json:"state"`
	At    time.Time `json:"at"`
}

type eventRecord struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

type legRecord struct {
	Leg       int          `json:"leg"`
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Resources JobResources `json:"resources"`
}

type resultRecord struct {
	State    State         `json:"state"`
	Error    string        `json:"error,omitempty"`
	Done     int           `json:"done"`
	Total    int           `json:"total"`
	Started  time.Time     `json:"started"`
	Finished time.Time     `json:"finished"`
	Header   []string      `json:"header,omitempty"`
	Rows     [][]string    `json:"rows,omitempty"`
	Res      *JobResources `json:"resources,omitempty"`
}

// appendRecord journals one record. Persistence failures are logged and
// counted (the store tracks AppendErrors) but never fail the job: the
// service degrades to in-memory behavior rather than refusing work.
func (s *Server) appendRecord(kind jobstore.Kind, jobID string, payload any) {
	if s.cfg.Store == nil {
		return
	}
	err := s.cfg.Store.Append(jobstore.Record{Kind: kind, JobID: jobID, Payload: mustJSON(payload)})
	if err != nil {
		s.log.Error("jobstore append failed", "kind", kind.String(), "job", jobID, "error", err)
	}
}

// attachPersistence wires the job's SSE event log into the durable store and
// journals its acceptance. Called once per job, after admission succeeds and
// before the first event is published.
func (s *Server) attachPersistence(j *job) {
	if s.cfg.Store == nil {
		return
	}
	j.mu.Lock()
	legs := len(j.legs)
	created := j.created
	j.mu.Unlock()
	s.appendRecord(jobstore.KindAccepted, j.id, acceptedRecord{
		Spec: j.spec, Created: created, Cache: j.cacheDisp, Legs: legs,
	})
	j.events.persist = func(ev event) {
		s.appendRecord(jobstore.KindEvent, j.id, eventRecord{Name: ev.name, Data: ev.data})
	}
}

func (s *Server) persistState(j *job, st State) {
	s.appendRecord(jobstore.KindState, j.id, stateRecord{State: st, At: s.now()})
}

func (s *Server) persistLeg(j *job, leg int, tab *stats.Table, res JobResources) {
	s.appendRecord(jobstore.KindLeg, j.id, legRecord{
		Leg: leg, Header: tab.Header, Rows: tab.Rows, Resources: res,
	})
}

func (s *Server) persistResult(j *job) {
	if s.cfg.Store == nil {
		return
	}
	j.mu.Lock()
	rec := resultRecord{
		State: j.state, Error: j.errMsg, Done: j.done, Total: j.total,
		Started: j.started, Finished: j.finished, Res: j.resources,
	}
	if j.state == StateDone && j.table != nil {
		rec.Header, rec.Rows = j.table.Header, j.table.Rows
	}
	j.mu.Unlock()
	s.appendRecord(jobstore.KindResult, j.id, rec)
}

// replayedJob accumulates one job's records during log replay.
type replayedJob struct {
	id       string
	accepted *acceptedRecord
	events   []event
	legs     map[int]legRecord
	result   *resultRecord
}

// replay rebuilds the server's job table from the durable log. Runs in New,
// single-threaded, before any executor starts:
//
//   - a job with a resultRecord is reconstructed read-only — terminal state,
//     merged table, resource account, and byte-identical SSE history — and a
//     done job's result re-seeds the result cache (Seed moves no hit/miss
//     counters, so a post-restart cache hit provably re-simulates nothing);
//   - a job without one is re-admitted: completed legs are restored from
//     their legRecords and only the unfinished legs are re-queued. Cache
//     admission re-runs in original submission order, so the first live job
//     of a fingerprint becomes the new singleflight leader — a follower
//     whose leader died mid-crash is re-led — and later ones re-coalesce.
func (s *Server) replay() {
	if s.cfg.Store == nil {
		return
	}
	byID := map[string]*replayedJob{}
	var order []string
	err := s.cfg.Store.Replay(func(r jobstore.Record) error {
		rj := byID[r.JobID]
		if rj == nil {
			rj = &replayedJob{id: r.JobID, legs: map[int]legRecord{}}
			byID[r.JobID] = rj
			order = append(order, r.JobID)
		}
		switch r.Kind {
		case jobstore.KindAccepted:
			var a acceptedRecord
			if err := json.Unmarshal(r.Payload, &a); err != nil {
				return fmt.Errorf("job %s accepted record: %w", r.JobID, err)
			}
			rj.accepted = &a
		case jobstore.KindEvent:
			var e eventRecord
			if err := json.Unmarshal(r.Payload, &e); err != nil {
				return fmt.Errorf("job %s event record: %w", r.JobID, err)
			}
			rj.events = append(rj.events, event{name: e.Name, data: e.Data})
		case jobstore.KindLeg:
			var l legRecord
			if err := json.Unmarshal(r.Payload, &l); err != nil {
				return fmt.Errorf("job %s leg record: %w", r.JobID, err)
			}
			rj.legs[l.Leg] = l
		case jobstore.KindResult:
			var res resultRecord
			if err := json.Unmarshal(r.Payload, &res); err != nil {
				return fmt.Errorf("job %s result record: %w", r.JobID, err)
			}
			rj.result = &res
		case jobstore.KindState:
			// Informational; terminal-ness is decided by the resultRecord.
		}
		return nil
	})
	if err != nil {
		// A log this build cannot read is a deployment problem; refuse to
		// guess at state and start empty rather than half-replayed.
		s.log.Error("jobstore replay failed; starting with empty job table", "error", err)
		return
	}

	var maxID uint64
	for _, id := range order {
		rj := byID[id]
		if rj.accepted == nil {
			continue // acceptance compacted away or torn off; nothing to rebuild
		}
		var n uint64
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		if rj.result != nil {
			s.restoreTerminal(rj)
		} else {
			s.resumeJob(rj)
		}
		s.metrics.replayedJobs.Add(1)
	}
	// Never reissue an id that exists in the log.
	for s.nextID.Load() < maxID {
		s.nextID.Store(maxID)
	}
	s.log.Info("jobstore replay complete", "jobs", len(order))
}

// restoreTerminal rebuilds a finished job read-only and re-seeds the result
// cache from a done job's table.
func (s *Server) restoreTerminal(rj *replayedJob) {
	j := newJob(rj.id, rj.accepted.Spec, rj.accepted.Created)
	j.trace = telemetry.NewSpanRecorder(s.clk.Now)
	j.log = s.log.With("job", rj.id, "experiment", rj.accepted.Spec.Experiment)
	j.cacheDisp = rj.accepted.Cache
	res := rj.result
	j.state = res.State
	j.errMsg = res.Error
	j.done, j.total = res.Done, res.Total
	j.started, j.finished = res.Started, res.Finished
	j.resources = res.Res
	if res.State == StateDone {
		j.table = &stats.Table{Header: res.Header, Rows: res.Rows}
	}
	j.events.seed(rj.events)
	j.events.close()
	close(j.doneCh)

	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	if res.State == StateDone && s.cfg.Cache != nil && !j.spec.NoCache && j.table != nil {
		s.cfg.Cache.Seed(&resultcache.Entry{
			Key:      j.spec.cacheKey(),
			CSV:      []byte(j.table.CSV()),
			Markdown: []byte(j.table.Markdown()),
			Table:    j.table,
			Meta:     mustJSON(cachedMeta{Resources: res.Res, Done: res.Done, Total: res.Total}),
		})
	}
}

// resumeJob re-admits an interrupted job: completed legs keep their recorded
// tables and resource deltas, pending legs go back to the scheduler, and the
// deadline restarts from now.
func (s *Server) resumeJob(rj *replayedJob) {
	spec := rj.accepted.Spec
	j := newJob(rj.id, spec, rj.accepted.Created)
	j.trace = telemetry.NewSpanRecorder(s.clk.Now)
	j.log = s.log.With("job", rj.id, "experiment", spec.Experiment)
	j.events.seed(rj.events)
	if s.cfg.Store != nil {
		j.events.persist = func(ev event) {
			s.appendRecord(jobstore.KindEvent, j.id, eventRecord{Name: ev.name, Data: ev.data})
		}
	}

	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	s.armJob(j, timeout)

	// Re-run cache admission in submission order. An entry seeded by an
	// earlier terminal job finishes this one outright; otherwise the first
	// live job of a fingerprint leads and later ones re-coalesce — which is
	// how a follower orphaned by its leader's death gets re-led.
	if s.cfg.Cache != nil && !spec.NoCache {
		entry, flight, leader := s.cfg.Cache.Begin(spec.cacheKey())
		switch {
		case entry != nil:
			s.finishReplayedFromCache(j, entry)
			return
		case leader:
			flight.SetLeaderTag(j.id)
			j.flight = flight
			j.cacheDisp = cacheMiss
		default:
			j.flight = flight
			j.cacheDisp = cacheCoalesced
		}
	} else if spec.NoCache && s.cfg.Cache != nil {
		j.cacheDisp = cacheBypass
	}

	if j.cacheDisp == cacheCoalesced {
		s.mu.Lock()
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		j.flight.OnProgress(func(done, total int) {
			j.mu.Lock()
			if j.state.Terminal() {
				j.mu.Unlock()
				return
			}
			j.done, j.total = done, total
			j.mu.Unlock()
			j.events.publish("progress", mustJSON(map[string]int{"done": done, "total": total}))
		})
		s.followers.Add(1)
		go s.waitCoalesced(j)
		j.log.Info("job replayed as coalesced follower", "leader", j.flight.LeaderTag())
		return
	}

	legs, err := harness.JobLegs(spec.harnessJob())
	if err != nil {
		// The spec was valid when accepted; a failure here means the leg
		// address space changed under the log. Fail the job explicitly.
		s.registerReplayed(j)
		s.failReplayed(j, fmt.Errorf("replay: leg count: %w", err))
		return
	}
	j.initLegs(legs)
	restored := 0
	j.mu.Lock()
	for idx, lr := range rj.legs {
		if idx < 0 || idx >= legs {
			continue
		}
		j.legs[idx].status = legDone
		j.legs[idx].table = &stats.Table{Header: lr.Header, Rows: lr.Rows}
		j.legs[idx].res = lr.Resources
		j.legsDone++
		restored++
	}
	allDone := j.legsDone == legs
	j.mu.Unlock()

	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queued++
	j.hasSlot = true
	s.mu.Unlock()

	j.mu.Lock()
	j.enqueued = s.now()
	j.mu.Unlock()
	j.log.Info("job replayed; resuming", "legs", legs, "legs_restored", restored)
	if allDone {
		// Every leg finished but the terminal record was lost: only the
		// merge remains.
		s.finalize(j, nil)
		return
	}
	s.sched.enqueue(j)
}

// finishReplayedFromCache finalizes a resumed job from a seeded cache entry.
// Unlike finishFromCache it moves no admission metrics — a replayed job is
// not a new submission.
func (s *Server) finishReplayedFromCache(j *job, e *resultcache.Entry) {
	var meta cachedMeta
	if err := json.Unmarshal(e.Meta, &meta); err != nil {
		j.log.Warn("cache entry metadata unreadable; serving result without resources", "error", err)
	}
	now := s.now()
	j.mu.Lock()
	j.state = StateDone
	j.cacheDisp = cacheHit
	j.table = e.Table
	j.resources = meta.Resources
	j.done, j.total = meta.Done, meta.Total
	j.finished = now
	j.mu.Unlock()
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	j.log.Info("replayed job served from result cache", "key", e.Key)
	j.events.publish("progress", mustJSON(map[string]int{"done": meta.Done, "total": meta.Total}))
	s.publishState(j)
	s.persistResult(j)
	j.events.close()
	close(j.doneCh)
}

func (s *Server) registerReplayed(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

func (s *Server) failReplayed(j *job, err error) {
	now := s.now()
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = now
	j.mu.Unlock()
	s.persistResult(j)
	s.publishState(j)
	j.events.close()
	close(j.doneCh)
}

// compactStore rewrites the durable log: state and leg records of terminal
// jobs are dropped (their resultRecord carries everything a replay needs;
// eventRecords stay so SSE history still replays), and when Config.StoreRetain
// is set, whole histories of all but the most recent StoreRetain terminal
// jobs are dropped from the log and the in-memory table alike.
func (s *Server) compactStore() (jobstore.Stats, error) {
	if s.cfg.Store == nil {
		return jobstore.Stats{}, fmt.Errorf("job store disabled")
	}
	s.mu.Lock()
	terminal := map[string]bool{}
	var terminalOrder []string
	for _, id := range s.order {
		if s.jobs[id].status().State.Terminal() {
			terminal[id] = true
			terminalOrder = append(terminalOrder, id)
		}
	}
	drop := map[string]bool{}
	if n := s.cfg.StoreRetain; n > 0 && len(terminalOrder) > n {
		for _, id := range terminalOrder[:len(terminalOrder)-n] {
			drop[id] = true
		}
		for _, id := range terminalOrder[:len(terminalOrder)-n] {
			delete(s.jobs, id)
		}
		kept := s.order[:0]
		for _, id := range s.order {
			if !drop[id] {
				kept = append(kept, id)
			}
		}
		s.order = kept
	}
	s.mu.Unlock()

	err := s.cfg.Store.Compact(func(r jobstore.Record) bool {
		if drop[r.JobID] {
			return false
		}
		if !terminal[r.JobID] {
			return true
		}
		switch r.Kind {
		case jobstore.KindAccepted, jobstore.KindEvent, jobstore.KindResult:
			return true
		default:
			return false
		}
	})
	if err != nil {
		return jobstore.Stats{}, err
	}
	st := s.cfg.Store.Stats()
	s.log.Info("jobstore compacted", "records", st.Records, "bytes", st.Bytes,
		"segments", st.Segments, "dropped_jobs", len(drop))
	return st, nil
}
