package server

import "sync"

// Priority classes, index-ordered: class 0 drains strictly before class 1.
const (
	priorityHigh   = 0
	priorityNormal = 1
	priorityLevels = 2
)

// sched is the coordinator's leg scheduler: two strict-priority FIFO queues
// of jobs whose legs want executors. A job appears in its queue at most once
// regardless of how many pending legs it has; an executor that claims a leg
// leaves the job at the head while more legs are pending, so the legs of one
// job fan out across every idle executor, in leg order, while jobs of equal
// priority still start in submission order.
//
// Lock order: sched.mu is taken before job.mu (claimLeg runs under both).
// Nothing holding job.mu may call back into the scheduler.
type sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	queues [priorityLevels][]*job
}

func newSched() *sched {
	q := &sched{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueue adds the job to its priority queue if it is not already there.
// Called at admission, on lease expiry, and on retry backoff completion.
func (q *sched) enqueue(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.inQueue {
		return
	}
	j.inQueue = true
	q.queues[j.priority] = append(q.queues[j.priority], j)
	q.cond.Signal()
}

// next blocks until a leg is claimable, claims it, and returns it. ok=false
// only once the scheduler is closed AND every queued leg has been claimed —
// executors therefore drain the backlog before exiting, which is what lets
// a graceful Drain finish queued jobs.
func (q *sched) next() (j *job, leg int, epoch uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for pri := 0; pri < priorityLevels; pri++ {
			for len(q.queues[pri]) > 0 {
				head := q.queues[pri][0]
				leg, epoch, more, claimed := head.claimLeg()
				if !more {
					// Nothing further pending (all claimed, or the job went
					// terminal): drop it from the queue. It re-enters via
					// enqueue if a lease expires or a retry re-arms a leg.
					q.queues[pri] = q.queues[pri][1:]
					head.inQueue = false
				}
				if claimed {
					return head, leg, epoch, true
				}
			}
		}
		if q.closed {
			return nil, 0, 0, false
		}
		q.cond.Wait()
	}
}

// queuedJobs reports how many jobs currently sit in the scheduler.
func (q *sched) queuedJobs() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for pri := 0; pri < priorityLevels; pri++ {
		n += len(q.queues[pri])
	}
	return n
}

// close wakes every blocked executor; they drain the remaining queue and
// exit. Idempotent.
func (q *sched) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
