// Package server is the simulation job service: a long-running daemon that
// serves experiment, attack, and sweep jobs over a JSON/HTTP API.
//
// Jobs are submitted to POST /v1/jobs as a Spec (experiment name + workload
// selection + machine overrides, mirroring the CLI flags), checked against a
// content-addressed result cache (internal/resultcache: repeat specs are
// answered without simulating, and concurrent identical specs coalesce onto
// one run — the X-Timecache-Cache header reports each submission's
// disposition), checked against optional per-tenant token quotas, and
// admitted into a bounded two-class priority queue ("high" before
// "normal", FIFO within a class).
//
// Execution is coordinator/worker: the coordinator splits each job into
// its independent sweep legs (harness.JobLegs), leases legs to executors
// with a lease timeout and bounded retries, and reassembles the per-leg
// tables positionally (harness.MergeLegTables) so the merged result is
// byte-identical to a single-process run. Executors are in-process by
// default (-workers goroutines, one machine.Pool each, so hot simulator
// state is reused across legs exactly like the batch sweeps) or remote
// worker daemons (timecache-serve -worker) speaking the /v1/legs
// HTTP/JSON protocol; determinism makes the two interchangeable mid-job.
//
// With a jobstore.Store configured, every admission, state transition,
// SSE event, completed leg, and final result is appended to a
// write-ahead log before it is acknowledged. On restart the coordinator
// replays the log: terminal jobs come back with their exact result bytes
// and full event history, interrupted jobs resume at their first
// unfinished leg, and queued jobs re-enter the queue — clients polling a
// job ID across a crash observe the same bytes they would have without
// it. POST /v1/store/compact rewrites the log, keeping terminal jobs'
// result records and dropping replayed-over intermediate state.
//
// When the queue is full the server answers 429 with Retry-After instead
// of buffering unboundedly; when draining it answers 503. Progress
// streams over SSE from GET /v1/jobs/{id}/events; results are
// retrievable as CSV, markdown, or JSON. DELETE /v1/jobs/{id} cancels a
// job mid-run: the per-job context interrupts the simulated machine
// within a few thousand instructions.
//
// Every job is observable end to end: the server records a wall-clock span
// for each lifecycle stage (validate → enqueue → queue-wait → run → render)
// and the harness records one span per machine run inside the run stage, all
// retrievable as a Chrome trace from GET /v1/jobs/{id}/trace. The JSON
// result carries a resource account (simulated cycles, instructions,
// per-level cache accesses, context switches, s-bit delayed loads, pool
// hits/misses), /metrics aggregates the same counters across jobs, and every
// state transition emits a structured log line through the injected
// slog.Logger. All wall time — timestamps, durations, job deadlines — comes
// from the injected clock.WallClock, so the timeout and drain paths are
// testable on a fake clock.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"timecache/internal/clock"
	"timecache/internal/harness"
	"timecache/internal/jobstore"
	"timecache/internal/resultcache"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
)

// cacheHeader reports the submission's result-cache disposition ("hit",
// "miss", "coalesced", "bypass") on every POST /v1/jobs response while the
// cache is enabled.
const cacheHeader = "X-Timecache-Cache"

// Config sizes the service.
type Config struct {
	// Workers is the number of job executors. Each worker owns one private
	// machine.Pool. Zero starts no workers — jobs queue but never run —
	// which tests use to pin queue behavior deterministically; the
	// timecache-serve CLI defaults this to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// running). Zero defaults to 64. A full queue rejects with 429.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not set Spec.TimeoutMS. Zero
	// means unbounded.
	DefaultTimeout time.Duration
	// RetryAfter is the Retry-After hint (seconds) sent with 429 responses.
	// Zero defaults to 1.
	RetryAfter int
	// Clock supplies all wall time: job timestamps, durations, deadline
	// timers, trace span endpoints. Nil defaults to the real clock; tests
	// inject *clock.Fake and step deadlines deterministically.
	Clock clock.WallClock
	// Logger receives the service's structured logs (one line per state
	// transition, admission decision, cancellation, timeout, drain step).
	// Nil discards.
	Logger *slog.Logger
	// Cache, when non-nil, is the content-addressed result cache consulted
	// before admission: a spec whose canonical fingerprint matches a cached
	// entry is answered without simulating, and concurrent submissions of
	// one fingerprint coalesce onto a single in-flight run. Nil disables
	// caching — every job simulates, no cache headers are emitted, and the
	// cache endpoints report disabled. The timecache-serve CLI enables it
	// by default (-cache-entries / -cache-bytes).
	Cache *resultcache.Cache

	// Store, when non-nil, is the durable write-ahead job log. Every
	// acceptance, SSE event, completed leg, and terminal result is journaled
	// to it, and New replays it: finished jobs come back read-only (their
	// results re-seed the cache), interrupted jobs resume at their first
	// unfinished leg. Nil keeps all job state in memory (the pre-store
	// behavior). The timecache-serve CLI wires a disk store via -store-dir.
	Store jobstore.Store
	// StoreRetain bounds how many terminal jobs compaction keeps in the log
	// (and the in-memory job table). Zero retains everything.
	StoreRetain int

	// WorkerAddrs lists remote leg-executor workers (timecache-serve
	// -worker daemons) by base URL. Each address gets one executor loop in
	// addition to the Workers in-process executors; legs are interchangeable
	// between them because rendering is deterministic.
	WorkerAddrs []string
	// LeaseTimeout bounds one leg execution. An executor that has not
	// completed its leg within the lease loses it: the leg is re-queued for
	// another executor and the stale run's eventual outcome is discarded.
	// Zero disables leases (a leg runs as long as the job's deadline
	// allows).
	LeaseTimeout time.Duration
	// MaxLegAttempts bounds how many times one leg may be dispatched when
	// executors fail retryably (worker unreachable, 5xx). Zero defaults
	// to 3. Deterministic simulation errors are never retried.
	MaxLegAttempts int
	// RetryBackoff is the delay before a retryable leg failure re-queues
	// (on the injected clock). Zero defaults to 250ms.
	RetryBackoff time.Duration

	// QuotaBurst enables per-tenant admission quotas when positive: each
	// tenant holds a token bucket of this capacity, refilled at QuotaRate
	// tokens/second, and a submission with no token is rejected 429.
	QuotaBurst float64
	// QuotaRate is the per-tenant bucket refill rate in tokens/second.
	QuotaRate float64
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) retryAfter() int {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 1
}

func (c Config) maxLegAttempts() int {
	if c.MaxLegAttempts > 0 {
		return c.MaxLegAttempts
	}
	return 3
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 250 * time.Millisecond
}

// Cancellation causes, distinguished from deadline expiry via
// context.Cause: a client cancel or a drain hard-stop lands the job in
// StateCancelled; a deadline (and any run error) is StateFailed.
var (
	errClientCancel = errors.New("cancelled by client")
	errDrainStop    = errors.New("cancelled by server drain")
	// errLeaseExpired interrupts a leg run whose lease the coordinator
	// revoked; the job itself continues on another executor.
	errLeaseExpired = errors.New("leg lease expired")
)

// Server is the coordinator of the job service: it owns admission (quota,
// priority, backpressure), the durable log, lease-based leg scheduling, and
// positional result merging. Leg execution is delegated to executors —
// in-process goroutines and/or remote worker daemons. Create with New,
// mount via Handler, stop with Drain. The zero value is not usable.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	sched  *sched
	quotas *quotas // nil when per-tenant quotas are disabled

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order, for GET /v1/jobs
	queued int      // jobs holding admission-queue slots (accepted, not yet running)

	nextID    atomic.Uint64
	running   atomic.Int64
	draining  atomic.Bool
	closeOnce sync.Once
	workers   sync.WaitGroup
	// followers tracks waitCoalesced goroutines; Drain waits for them after
	// the workers, so every coalesced job reaches a terminal state before
	// Drain returns (leaders resolve their flights as the workers unwind).
	followers sync.WaitGroup

	metrics *metrics
	clk     clock.WallClock
	log     *slog.Logger
}

// New builds a server and starts its workers.
func New(cfg Config) *Server {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		sched:   newSched(),
		jobs:    map[string]*job{},
		metrics: newMetrics(),
		clk:     clk,
		log:     logger,
	}
	if cfg.QuotaBurst > 0 {
		s.quotas = newQuotas(cfg.QuotaRate, cfg.QuotaBurst, clk)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCachePurge)
	s.mux.HandleFunc("POST /v1/store/compact", s.handleStoreCompact)

	// Replay the durable log before any executor starts: reconstruction is
	// single-threaded, and resumed jobs are already queued when the first
	// executor wakes. Startup compaction then drops the dead weight the
	// previous process accumulated.
	s.replay()
	if cfg.Store != nil {
		if _, err := s.compactStore(); err != nil {
			s.log.Warn("startup compaction failed", "error", err)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.executorLoop(newInProcExecutor(s))
	}
	for _, addr := range cfg.WorkerAddrs {
		s.workers.Add(1)
		go s.executorLoop(newRemoteExecutor(addr))
	}
	s.log.Info("server started", "workers", cfg.Workers, "remote_workers", len(cfg.WorkerAddrs),
		"queue_depth", cfg.queueDepth(), "store", cfg.Store != nil)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// now reads the injected wall clock.
func (s *Server) now() time.Time { return s.clk.Now() }

// Drain gracefully stops the server: new submissions are rejected with 503,
// queued and running jobs are allowed to finish, and Drain returns when the
// workers exit. If ctx expires first, every unfinished job is hard-cancelled
// (reaching StateCancelled — never silently dropped) and Drain returns
// ctx.Err() after the workers unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("drain started", "queued", s.queuedCount(), "running", s.running.Load())
	s.closeOnce.Do(func() { s.sched.close() })
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.followers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete", "forced", false)
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		jobs := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		s.log.Warn("drain grace expired; hard-cancelling unfinished jobs", "jobs", len(jobs))
		for _, j := range jobs {
			if j.cancel != nil {
				j.cancel(errDrainStop)
			}
		}
		<-done
		s.log.Info("drain complete", "forced", true)
		return ctx.Err()
	}
}

// DrainWithGrace drains with a hard-stop deadline of grace from now,
// measured on the server's injected clock (so tests can expire the grace
// with a fake-clock Advance). A non-positive grace waits forever.
func (s *Server) DrainWithGrace(grace time.Duration) error {
	if grace <= 0 {
		return s.Drain(context.Background())
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	timer := s.clk.AfterFunc(grace, func() { cancel(context.DeadlineExceeded) })
	defer timer.Stop()
	defer cancel(nil)
	return s.Drain(ctx)
}

// executorLoop pulls claimed legs from the scheduler until it closes and the
// backlog drains. Every executor — in-process or remote — runs this same
// loop; the scheduler hands the legs of one job to as many idle executors as
// exist, in leg order.
func (s *Server) executorLoop(ex legExecutor) {
	defer s.workers.Done()
	for {
		j, leg, epoch, ok := s.sched.next()
		if !ok {
			return
		}
		s.runLeg(j, leg, epoch, ex)
	}
}

// queuedCount reports how many jobs hold admission-queue slots.
func (s *Server) queuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// releaseQueueSlot frees the job's admission slot exactly once (first leg
// start, or death while queued). Must not be called holding j.mu.
func (s *Server) releaseQueueSlot(j *job) {
	s.mu.Lock()
	if j.hasSlot {
		j.hasSlot = false
		s.queued--
	}
	s.mu.Unlock()
}

// markRunning performs the queued→running transition the first time any leg
// of the job starts; later legs find the job already running and no-op.
func (s *Server) markRunning(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = s.now()
	j.wasRunning = true
	started, enqueued := j.started, j.enqueued
	j.mu.Unlock()
	s.releaseQueueSlot(j)
	s.running.Add(1)
	s.metrics.jobsRunning.Store(s.running.Load())
	j.trace.Lifecycle("queue-wait", enqueued, started, nil)
	j.log.Info("job running", "queue_wait", started.Sub(enqueued))
	s.persistState(j, StateRunning)
	s.publishState(j)
}

// runLeg drives one claimed leg: lease timer, execution, then completion or
// the error path. The per-leg context lets a lease expiry interrupt the
// stale run without touching the job's own context.
func (s *Server) runLeg(j *job, leg int, epoch uint64, ex legExecutor) {
	s.markRunning(j)
	if j.ctx.Err() != nil {
		// Cancelled or timed out while queued: nothing to execute.
		s.finalize(j, context.Cause(j.ctx))
		return
	}
	legCtx, cancelRun := context.WithCancelCause(j.ctx)
	defer cancelRun(nil)
	var lease clock.WallTimer
	if s.cfg.LeaseTimeout > 0 {
		lease = s.clk.AfterFunc(s.cfg.LeaseTimeout, func() {
			s.expireLease(j, leg, epoch, cancelRun)
		})
	}
	j.mu.Lock()
	wire := len(j.legs) == 1 // single-leg jobs stream the harness's inner progress
	j.mu.Unlock()
	tab, res, wired, err := ex.runLeg(legCtx, j, leg, wire)
	if lease != nil {
		lease.Stop()
	}
	if err != nil {
		s.legError(j, leg, epoch, err)
		return
	}
	s.completeLeg(j, leg, epoch, tab, res, wired)
}

// expireLease revokes leg's lease if the same epoch still holds it: the leg
// returns to pending under a new epoch (so the overrun executor's eventual
// outcome is discarded as stale), the running executor is interrupted, and
// the job re-enters the scheduler.
func (s *Server) expireLease(j *job, leg int, epoch uint64, cancelRun context.CancelCauseFunc) {
	j.mu.Lock()
	if j.state.Terminal() || leg >= len(j.legs) {
		j.mu.Unlock()
		return
	}
	l := &j.legs[leg]
	if l.status != legLeased || l.epoch != epoch {
		j.mu.Unlock()
		return
	}
	l.epoch++
	l.status = legPending
	j.attempt++
	j.mu.Unlock()
	s.metrics.leasesExpired.Add(1)
	j.log.Warn("leg lease expired; re-queueing", "leg", leg, "lease", s.cfg.LeaseTimeout)
	cancelRun(errLeaseExpired)
	s.sched.enqueue(j)
}

// completeLeg records one leg's result. Stale completions (the lease was
// revoked and the leg re-issued under a newer epoch) are discarded — the
// replacement run's result stands, and determinism guarantees the bytes
// would have been identical anyway. The last leg in triggers finalize.
func (s *Server) completeLeg(j *job, leg int, epoch uint64, tab *stats.Table, res JobResources, wired bool) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	l := &j.legs[leg]
	if l.status == legDone || l.epoch != epoch {
		j.mu.Unlock()
		return
	}
	l.status = legDone
	l.table = tab
	l.res = res
	j.legsDone++
	done, total := j.legsDone, len(j.legs)
	if !wired {
		j.done, j.total = done, total
	}
	j.mu.Unlock()
	s.metrics.legsCompleted.Add(1)
	s.persistLeg(j, leg, tab, res)
	if !wired {
		// Multi-leg jobs report progress at leg granularity; single-leg jobs
		// already streamed the harness's finer-grained counts.
		j.events.publish("progress", mustJSON(map[string]int{"done": done, "total": total}))
		if j.flight != nil {
			j.flight.Progress(done, total)
		}
	}
	if done == total {
		s.finalize(j, nil)
	}
}

// legError handles a failed leg execution. Retryable failures (the execution
// channel broke — worker unreachable, 5xx) re-queue the leg after a backoff,
// up to MaxLegAttempts; anything else — including the job's own context
// ending — finalizes the job.
func (s *Server) legError(j *job, leg int, epoch uint64, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	l := &j.legs[leg]
	if l.status != legLeased || l.epoch != epoch {
		// The lease already expired and the leg was re-issued; this
		// executor's failure is stale news.
		j.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		j.mu.Unlock()
		s.finalize(j, context.Cause(j.ctx))
		return
	}
	if isRetryable(err) && !s.draining.Load() && int(l.epoch)+1 < s.cfg.maxLegAttempts() {
		l.epoch++
		l.status = legPending
		j.attempt++
		attempt := j.attempt
		j.mu.Unlock()
		s.metrics.legRetries.Add(1)
		backoff := s.cfg.retryBackoff()
		j.log.Warn("leg failed on retryable error; backing off",
			"leg", leg, "attempt", attempt, "backoff", backoff, "error", err)
		s.clk.AfterFunc(backoff, func() {
			if s.draining.Load() {
				// Executors may already be unwinding; a re-queued leg could
				// strand the job non-terminal. Fail it explicitly instead.
				s.finalize(j, fmt.Errorf("leg %d retry abandoned: server draining: %w", leg, err))
				return
			}
			s.sched.enqueue(j)
		})
		return
	}
	j.mu.Unlock()
	s.finalize(j, err)
}

// finalize drives the job to its terminal state exactly once: merge the leg
// tables positionally, sum the per-leg resource accounts, resolve the
// result-cache flight, persist the terminal record, close the SSE stream,
// and settle the metrics. Safe to call from racing paths (last leg, cancel,
// deadline, drain) — the first caller wins.
func (s *Server) finalize(j *job, runErr error) {
	runEnd := s.now()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	started := j.started
	if started.IsZero() {
		started = runEnd
	}
	res := JobResources{}
	parts := make([]*stats.Table, len(j.legs))
	for i := range j.legs {
		parts[i] = j.legs[i].table
		res = res.add(j.legs[i].res)
	}
	var tab *stats.Table
	var mergeErr error
	if runErr == nil {
		tab, mergeErr = harness.MergeLegTables(j.spec.harnessJob(), parts)
	}
	finished := s.now()
	j.finished = finished
	j.resources = &res
	switch cause := context.Cause(j.ctx); {
	case runErr == nil && mergeErr == nil:
		j.state = StateDone
		j.table = tab
	case errors.Is(cause, errClientCancel) || errors.Is(cause, errDrainStop):
		j.state = StateCancelled
		j.errMsg = cause.Error()
	case errors.Is(cause, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = cause.Error()
	case mergeErr != nil:
		j.state = StateFailed
		j.errMsg = mergeErr.Error()
	default:
		j.state = StateFailed
		j.errMsg = runErr.Error()
	}
	state, errMsg := j.state, j.errMsg
	doneN, totalN := j.done, j.total
	wasRunning := j.wasRunning
	j.mu.Unlock()
	s.releaseQueueSlot(j)

	if j.flight != nil {
		// Resolve the result-cache flight this job leads: publish the fully
		// rendered result for future hits and current followers, or fail the
		// followers with an error naming this job.
		if state == StateDone {
			s.cfg.Cache.Complete(j.flight, &resultcache.Entry{
				Key:      j.flight.Key(),
				CSV:      []byte(tab.CSV()),
				Markdown: []byte(tab.Markdown()),
				Table:    tab,
				Meta:     mustJSON(cachedMeta{Resources: &res, Done: doneN, Total: totalN}),
			}, nil)
		} else {
			s.cfg.Cache.Complete(j.flight, nil,
				fmt.Errorf("leader job %s %s: %s", j.id, state, errMsg))
		}
	}

	// The run span covers every leg execution; the render stage merges the
	// slices and finalizes the result. The five lifecycle stages still tile
	// the job's whole wall time from request arrival to finished.
	j.trace.Lifecycle("run", started, runEnd, map[string]any{
		"legs": res.Legs, "sim_cycles": res.SimCycles, "instructions": res.Instructions,
	})
	j.trace.Lifecycle("render", runEnd, finished, nil)
	s.persistResult(j)
	s.publishState(j)
	j.events.close()

	if wasRunning {
		s.running.Add(-1)
		s.metrics.jobsRunning.Store(s.running.Load())
	}
	s.metrics.finish(state, j.spec.Experiment, finished.Sub(started))
	s.metrics.addJob(res)
	log := j.log.With("state", state, "duration", finished.Sub(started),
		"legs", res.Legs, "sim_cycles", res.SimCycles,
		"pool_hits", res.PoolHits, "pool_misses", res.PoolMisses)
	switch state {
	case StateDone:
		log.Info("job finished")
	default:
		log.Warn("job finished", "error", errMsg)
	}
	close(j.doneCh)
}

// publishState emits the job's current Status as an SSE "state" event.
func (s *Server) publishState(j *job) {
	j.events.publish("state", mustJSON(j.status()))
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshal %T: %v", v, err))
	}
	return b
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.queueDepth.Store(int64(s.queuedCount()))
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		s.metrics.storeRecords.Store(int64(st.Records))
		s.metrics.storeBytes.Store(int64(st.Bytes))
		s.metrics.storeSegments.Store(int64(st.Segments))
		s.metrics.storeCompactions.Store(st.Compactions)
		s.metrics.storeAppendErrors.Store(st.AppendErrors)
	}
	var cs resultcache.Stats
	if s.cfg.Cache != nil {
		cs = s.cfg.Cache.Stats()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.metrics.render(cs)))
}

// handleStoreCompact rewrites the write-ahead log in place, dropping
// replayed-over intermediate records (and, with StoreRetain set, the oldest
// terminal jobs beyond the retention bound). 404 when no store is
// configured.
func (s *Server) handleStoreCompact(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, errors.New("no job store configured"))
		return
	}
	st, err := s.compactStore()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("compact job store: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records":     st.Records,
		"bytes":       st.Bytes,
		"segments":    st.Segments,
		"compactions": st.Compactions,
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": harness.Experiments()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqStart := s.now()
	if s.draining.Load() {
		s.log.Info("submit rejected: draining")
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.log.Info("submit rejected: bad spec", "error", err)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	if err := spec.validate(); err != nil {
		s.log.Info("submit rejected: invalid spec", "experiment", spec.Experiment, "error", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Per-tenant quota, checked after validation (malformed requests spend
	// no tokens) and before cache admission (a tenant over quota does not
	// get to lead or join flights).
	if s.quotas != nil {
		if ok, retry := s.quotas.admit(spec.tenant()); !ok {
			s.metrics.quotaRejected.Add(1)
			s.log.Info("submit rejected: tenant over quota", "tenant", spec.tenant())
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("tenant %q over admission quota; retry later", spec.tenant()))
			return
		}
	}
	legs, err := harness.JobLegs(spec.harnessJob())
	if err != nil { // unreachable after validate; defensive
		writeError(w, http.StatusBadRequest, err)
		return
	}

	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))
	j := newJob(id, spec, reqStart)
	j.trace = telemetry.NewSpanRecorder(s.clk.Now)
	j.log = s.log.With("job", id, "experiment", spec.Experiment)
	j.trace.Lifecycle("validate", reqStart, s.now(), map[string]any{"experiment": spec.Experiment})

	// Result-cache admission. A hit finalizes the job immediately — the job
	// still gets its own id, status, SSE history, and result endpoints, but
	// no queue slot, worker, or deadline timer. A miss makes this job the
	// leader of a singleflight; concurrent identical submissions become
	// followers finalized from the leader's flight.
	if s.cfg.Cache != nil {
		if spec.NoCache {
			j.cacheDisp = cacheBypass
			s.metrics.cacheBypass.Add(1)
		} else {
			entry, flight, leader := s.cfg.Cache.Begin(spec.cacheKey())
			switch {
			case entry != nil:
				s.finishFromCache(j, entry, reqStart)
				w.Header().Set(cacheHeader, cacheHit)
				writeJSON(w, http.StatusAccepted, j.status())
				return
			case leader:
				flight.SetLeaderTag(id)
				j.flight = flight
				j.cacheDisp = cacheMiss
			default:
				j.flight = flight
				j.cacheDisp = cacheCoalesced
			}
		}
	}

	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	s.armJob(j, timeout)

	if j.cacheDisp == cacheCoalesced {
		s.mu.Lock()
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.attachPersistence(j)
		// Follower: no queue slot and no worker — the leader's flight
		// resolves this job. It still has its own deadline timer and
		// context, and mirrors the leader's progress onto its own SSE
		// stream. waitCoalesced is the sole finalizer.
		j.flight.OnProgress(func(done, total int) {
			j.mu.Lock()
			if j.state.Terminal() {
				j.mu.Unlock()
				return
			}
			j.done, j.total = done, total
			j.mu.Unlock()
			j.events.publish("progress", mustJSON(map[string]int{"done": done, "total": total}))
		})
		s.followers.Add(1)
		go s.waitCoalesced(j)
		s.metrics.jobsAccepted.Add(1)
		j.log.Info("job coalesced onto in-flight simulation", "leader", j.flight.LeaderTag())
		s.publishState(j)
		w.Header().Set(cacheHeader, cacheCoalesced)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}

	validated := s.now()
	// Admission-queue backpressure. The depth check and the registration
	// are one critical section, so no rollback (and no rollback race with a
	// concurrent submit) is possible: either the job is registered holding
	// a slot, or it was never visible at all.
	s.mu.Lock()
	if s.queued >= s.cfg.queueDepth() {
		depth := s.cfg.queueDepth()
		s.mu.Unlock()
		// Releases the deadline goroutine too: it selects on ctx.Done.
		j.cancel(errors.New("rejected: queue full"))
		if j.flight != nil {
			// The leader of a flight never ran; fail its followers now
			// rather than leaving them waiting on a simulation that will
			// never start.
			s.cfg.Cache.Complete(j.flight, nil,
				fmt.Errorf("leader job %s rejected: queue full", id))
		}
		s.metrics.jobsRejected.Add(1)
		j.log.Warn("job rejected: queue full", "queue_depth", depth, "retry_after_s", s.cfg.retryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfter()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d queued); retry later", depth))
		return
	}
	s.queued++
	j.hasSlot = true
	s.jobs[id] = j
	s.order = append(s.order, id)
	queueLen := s.queued
	s.mu.Unlock()

	j.initLegs(legs)
	s.attachPersistence(j)
	enqueued := s.now()
	j.mu.Lock()
	j.enqueued = enqueued
	j.mu.Unlock()
	j.trace.Lifecycle("enqueue", validated, enqueued, nil)
	s.metrics.jobsAccepted.Add(1)
	j.log.Info("job accepted", "queue_len", queueLen, "timeout", timeout, "legs", legs, "priority", j.priority)
	s.publishState(j)
	s.sched.enqueue(j)
	if j.cacheDisp != "" {
		w.Header().Set(cacheHeader, j.cacheDisp)
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// armJob creates the job's cancellable context and, when timeout is
// positive, its deadline. The deadline is a clock timer, not
// context.WithDeadline, so a fake clock can expire it deterministically;
// context.Cause still reads DeadlineExceeded. The timer is released when
// the job finishes — or, for a job rejected at admission (whose doneCh
// never closes), when the rejection path cancels the context.
func (s *Server) armJob(j *job, timeout time.Duration) {
	ctx, cancel := context.WithCancelCause(context.Background())
	j.ctx, j.cancel = ctx, cancel
	if timeout > 0 {
		timer := s.clk.AfterFunc(timeout, func() {
			cancel(context.DeadlineExceeded)
			j.trace.Instant("deadline", s.now(), map[string]any{"timeout_ms": timeout.Milliseconds()})
			j.log.Warn("job deadline expired", "timeout", timeout)
		})
		go func() {
			select {
			case <-j.doneCh:
			case <-ctx.Done():
			}
			timer.Stop()
		}()
	}
}

// finishFromCache finalizes a submission straight from a cache entry: the
// job goes directly to done with the cached table, rendered bytes, resource
// snapshot, and progress totals — byte-identical to a cold run by the
// simulator's determinism. The only lifecycle stage after validate is a
// single "cache-hit" span; none of the simulation metrics (legs, sim cycles,
// pool counters) move, which is the observable proof nothing was simulated.
func (s *Server) finishFromCache(j *job, e *resultcache.Entry, reqStart time.Time) {
	var meta cachedMeta
	if err := json.Unmarshal(e.Meta, &meta); err != nil {
		j.log.Warn("cache entry metadata unreadable; serving result without resources", "error", err)
	}
	now := s.now()
	j.mu.Lock()
	j.state = StateDone
	j.cacheDisp = cacheHit
	j.table = e.Table
	j.resources = meta.Resources
	j.done, j.total = meta.Done, meta.Total
	j.finished = now
	j.mu.Unlock()
	j.trace.Lifecycle("cache-hit", reqStart, now, map[string]any{"key": e.Key})

	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.attachPersistence(j)

	s.metrics.jobsAccepted.Add(1)
	s.metrics.finish(StateDone, j.spec.Experiment, now.Sub(reqStart))
	j.log.Info("job served from result cache", "key", e.Key)
	j.events.publish("progress", mustJSON(map[string]int{"done": meta.Done, "total": meta.Total}))
	s.publishState(j)
	s.persistResult(j)
	j.events.close()
	close(j.doneCh)
}

// waitCoalesced finalizes a follower job when its leader's flight resolves
// or its own context ends (deadline, client cancel, drain hard-stop),
// whichever comes first. It is the follower's sole finalizer — the cancel
// handler only cancels the context and lets this goroutine observe it — so
// the terminal transition happens exactly once.
func (s *Server) waitCoalesced(j *job) {
	defer s.followers.Done()
	waitStart := s.now()
	var entry *resultcache.Entry
	var flightErr error
	select {
	case <-j.flight.Done():
		entry, flightErr = j.flight.Result()
	case <-j.ctx.Done():
		flightErr = context.Cause(j.ctx)
	}

	now := s.now()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	var meta cachedMeta
	switch cause := context.Cause(j.ctx); {
	case entry != nil && flightErr == nil:
		if err := json.Unmarshal(entry.Meta, &meta); err != nil {
			j.log.Warn("cache entry metadata unreadable; serving result without resources", "error", err)
		}
		j.state = StateDone
		j.table = entry.Table
		j.resources = meta.Resources
		j.done, j.total = meta.Done, meta.Total
	case errors.Is(cause, errClientCancel) || errors.Is(cause, errDrainStop):
		j.state = StateCancelled
		j.errMsg = cause.Error()
	case errors.Is(cause, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = cause.Error()
	default:
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("coalesced onto job %s, which did not complete: %v",
			j.flight.LeaderTag(), flightErr)
	}
	j.finished = now
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()

	j.trace.Lifecycle("coalesced-wait", waitStart, now,
		map[string]any{"leader": j.flight.LeaderTag(), "key": j.flight.Key()})
	if state == StateDone {
		j.events.publish("progress", mustJSON(map[string]int{"done": meta.Done, "total": meta.Total}))
	}
	s.persistResult(j)
	s.publishState(j)
	j.events.close()
	// No addJob: this job consumed no simulation resources of its own.
	s.metrics.finish(state, j.spec.Experiment, now.Sub(waitStart))
	log := j.log.With("state", state, "leader", j.flight.LeaderTag(), "wait", now.Sub(waitStart))
	switch state {
	case StateDone:
		log.Info("coalesced job finished")
	default:
		log.Warn("coalesced job finished", "error", errMsg)
	}
	close(j.doneCh)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// s.order is already submission-ordered; sorting the id strings would
	// diverge from submission order once the %06d width overflows.
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid limit %q: want a positive integer", raw))
			return
		}
		limit = n
	}
	after := q.Get("after")

	s.mu.Lock()
	start := 0
	if after != "" {
		found := false
		for i, id := range s.order {
			if id == after {
				start, found = i+1, true
				break
			}
		}
		if !found {
			s.mu.Unlock()
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown cursor %q", after))
			return
		}
	}
	end := len(s.order)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	out := make([]Status, 0, end-start)
	for _, id := range s.order[start:end] {
		out = append(out, s.jobs[id].status())
	}
	truncated := end < len(s.order)
	s.mu.Unlock()

	resp := map[string]any{"jobs": out}
	if truncated && len(out) > 0 {
		// Resume with ?after=<next>: the cursor is the last id returned, so
		// pagination is stable as new jobs append to the tail.
		resp["next"] = out[len(out)-1].ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookup resolves {id}, writing 404 on miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		st := j.statusLocked()
		j.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
		return
	case j.state == StateQueued && j.cacheDisp == cacheCoalesced:
		// Coalesced follower: cancel the context and let waitCoalesced —
		// the follower's sole finalizer — observe it; finalizing inline
		// here would race it.
		j.mu.Unlock()
		j.cancel(errClientCancel)
		j.trace.Instant("cancel", s.now(), map[string]any{"while": "coalesced"})
		j.log.Info("coalesced job cancel requested")
	case j.state == StateQueued:
		// Not yet picked up: mark terminal here; the worker skips it.
		j.state = StateCancelled
		j.errMsg = errClientCancel.Error()
		j.finished = s.now()
		j.mu.Unlock()
		s.releaseQueueSlot(j)
		j.cancel(errClientCancel)
		if j.flight != nil {
			// A flight whose leader never ran: fail the followers now.
			s.cfg.Cache.Complete(j.flight, nil,
				fmt.Errorf("leader job %s cancelled while queued", j.id))
		}
		j.trace.Instant("cancel", s.now(), map[string]any{"while": "queued"})
		j.log.Info("job cancelled while queued")
		s.metrics.finish(StateCancelled, j.spec.Experiment, 0)
		s.persistResult(j)
		s.publishState(j)
		j.events.close()
		close(j.doneCh)
	default: // running: the worker observes the context and finalizes.
		j.mu.Unlock()
		j.cancel(errClientCancel)
		j.trace.Instant("cancel", s.now(), map[string]any{"while": "running"})
		j.log.Info("job cancel requested while running")
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.metrics.sseSubscribers.Add(1)
	defer s.metrics.sseSubscribers.Add(-1)
	hist, live, unsub := j.events.subscribe()
	defer unsub()
	writeSSE := func(ev event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	}
	for _, ev := range hist {
		writeSSE(ev)
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	tab, err := j.result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Write([]byte(tab.CSV()))
	case "md", "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		w.Write([]byte(tab.Markdown()))
	case "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"id":        j.id,
			"header":    tab.Header,
			"rows":      tab.Rows,
			"resources": j.resourcesSnapshot(),
		})
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want csv, md, or json)", format))
	}
}

// handleTrace serves the job's span recorder as a Chrome trace-event JSON
// document (load it in Perfetto or chrome://tracing). Available at any point
// in the job's life; spans recorded so far are returned.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	b, err := j.trace.JSON(map[string]any{"job": j.id, "experiment": j.spec.Experiment})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(b)
}

// handleCacheStats serves the result cache's accounting snapshot. With the
// cache disabled only {"enabled": false} is returned.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	type response struct {
		Enabled bool `json:"enabled"`
		resultcache.Stats
	}
	if s.cfg.Cache == nil {
		writeJSON(w, http.StatusOK, response{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, response{Enabled: true, Stats: s.cfg.Cache.Stats()})
}

// handleCachePurge drops every cached result (in-flight simulations are not
// interrupted; they re-publish on completion). The operator's recourse after
// a result-affecting deploy that forgot to bump FingerprintSchemaVersion.
func (s *Server) handleCachePurge(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		writeError(w, http.StatusNotFound, errors.New("result cache disabled"))
		return
	}
	n := s.cfg.Cache.Purge()
	s.log.Info("result cache purged", "entries", n)
	writeJSON(w, http.StatusOK, map[string]any{"purged": n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
