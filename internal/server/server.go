// Package server is the simulation job service: a long-running daemon that
// serves experiment, attack, and sweep jobs over a JSON/HTTP API.
//
// Jobs are submitted to POST /v1/jobs as a Spec (experiment name + workload
// selection + machine overrides, mirroring the CLI flags), admitted into a
// bounded queue, and executed by a fixed worker pool — one machine.Pool per
// worker, so hot simulator state is reused across jobs exactly like the
// batch sweeps reuse it across legs, and results remain byte-identical to
// the CLIs and the golden artifacts (the dispatch layer in internal/harness
// is shared). When the queue is full the server answers 429 with
// Retry-After instead of buffering unboundedly; when draining it answers
// 503. Progress streams over SSE from GET /v1/jobs/{id}/events; results are
// retrievable as CSV, markdown, or JSON. DELETE /v1/jobs/{id} cancels a job
// mid-run: the per-job context interrupts the simulated machine within a
// few thousand instructions.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"timecache/internal/harness"
	"timecache/internal/machine"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of job executors. Each worker owns one private
	// machine.Pool. Zero starts no workers — jobs queue but never run —
	// which tests use to pin queue behavior deterministically; the
	// timecache-serve CLI defaults this to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// running). Zero defaults to 64. A full queue rejects with 429.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not set Spec.TimeoutMS. Zero
	// means unbounded.
	DefaultTimeout time.Duration
	// RetryAfter is the Retry-After hint (seconds) sent with 429 responses.
	// Zero defaults to 1.
	RetryAfter int
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) retryAfter() int {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 1
}

// Cancellation causes, distinguished from deadline expiry via
// context.Cause: a client cancel or a drain hard-stop lands the job in
// StateCancelled; everything else (including deadline) is StateFailed.
var (
	errClientCancel = errors.New("cancelled by client")
	errDrainStop    = errors.New("cancelled by server drain")
)

// Server is the job service. Create with New, mount via Handler, stop with
// Drain. The zero value is not usable.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // job IDs in submission order, for GET /v1/jobs

	nextID    atomic.Uint64
	running   atomic.Int64
	draining  atomic.Bool
	closeOnce sync.Once
	workers   sync.WaitGroup

	metrics *metrics
	now     func() time.Time
}

// New builds a server and starts its workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.queueDepth()),
		jobs:    map[string]*job{},
		metrics: newMetrics(),
		now:     time.Now,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the server: new submissions are rejected with 503,
// queued and running jobs are allowed to finish, and Drain returns when the
// workers exit. If ctx expires first, every unfinished job is hard-cancelled
// (reaching StateCancelled — never silently dropped) and Drain returns
// ctx.Err() after the workers unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.closeOnce.Do(func() { close(s.queue) })
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		jobs := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			if j.cancel != nil {
				j.cancel(errDrainStop)
			}
		}
		<-done
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes. Each worker owns one
// machine pool; pooled machines are Reset between jobs, which the golden
// tests prove is invisible in the results.
func (s *Server) worker() {
	defer s.workers.Done()
	pool := machine.NewPool()
	for j := range s.queue {
		s.runJob(j, pool)
	}
}

// runJob drives one job from queued to a terminal state.
func (s *Server) runJob(j *job, pool *machine.Pool) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = s.now()
	j.mu.Unlock()
	s.running.Add(1)
	s.metrics.jobsRunning.Store(s.running.Load())
	s.publishState(j)

	opts := j.spec.options()
	opts.Ctx = j.ctx
	opts.Pool = pool
	opts.Progress = func(done, total int) {
		j.mu.Lock()
		j.done, j.total = done, total
		j.mu.Unlock()
		j.events.publish("progress", mustJSON(map[string]int{"done": done, "total": total}))
	}

	tab, err := harness.RunJob(j.spec.harnessJob(), opts)

	finished := s.now()
	j.mu.Lock()
	j.finished = finished
	switch cause := context.Cause(j.ctx); {
	case err == nil:
		j.state = StateDone
		j.table = tab
	case errors.Is(cause, errClientCancel) || errors.Is(cause, errDrainStop):
		j.state = StateCancelled
		j.errMsg = cause.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	started := j.started
	j.mu.Unlock()

	s.running.Add(-1)
	s.metrics.jobsRunning.Store(s.running.Load())
	s.metrics.finish(state, finished.Sub(started))
	s.publishState(j)
	j.events.close()
	close(j.doneCh)
}

// publishState emits the job's current Status as an SSE "state" event.
func (s *Server) publishState(j *job) {
	j.events.publish("state", mustJSON(j.status()))
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshal %T: %v", v, err))
	}
	return b
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.queueDepth.Store(int64(len(s.queue)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.metrics.render()))
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": harness.Experiments()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))
	j := newJob(id, spec, s.now())
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	base := context.Background()
	ctx, cancel := context.WithCancelCause(base)
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithDeadlineCause(ctx, s.now().Add(timeout), context.DeadlineExceeded)
		// The deadline timer is released when the job finishes — or, for a
		// job rejected at admission (whose doneCh never closes), when the
		// rejection path cancels the context.
		go func() {
			select {
			case <-j.doneCh:
			case <-ctx.Done():
			}
			tcancel()
		}()
	}
	j.ctx, j.cancel = ctx, cancel

	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		// Queue full: roll the registration back and push back on the
		// client instead of buffering unboundedly. The lock was released
		// between registering and the queue send, so a concurrent submit
		// may have appended after us — remove our id by value, not by
		// truncating the tail.
		s.mu.Lock()
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		cancel(errors.New("rejected: queue full"))
		s.metrics.jobsRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfter()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d queued); retry later", cap(s.queue)))
		return
	}
	s.metrics.jobsAccepted.Add(1)
	s.publishState(j)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// s.order is already submission-ordered; sorting the id strings would
	// diverge from submission order once the %06d width overflows.
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup resolves {id}, writing 404 on miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		st := j.statusLocked()
		j.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
		return
	case j.state == StateQueued:
		// Not yet picked up: mark terminal here; the worker skips it.
		j.state = StateCancelled
		j.errMsg = errClientCancel.Error()
		j.finished = s.now()
		j.mu.Unlock()
		j.cancel(errClientCancel)
		s.metrics.finish(StateCancelled, 0)
		s.publishState(j)
		j.events.close()
		close(j.doneCh)
	default: // running: the worker observes the context and finalizes.
		j.mu.Unlock()
		j.cancel(errClientCancel)
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	hist, live, unsub := j.events.subscribe()
	defer unsub()
	writeSSE := func(ev event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	}
	for _, ev := range hist {
		writeSSE(ev)
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	tab, err := j.result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Write([]byte(tab.CSV()))
	case "md", "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		w.Write([]byte(tab.Markdown()))
	case "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"id":     j.id,
			"header": tab.Header,
			"rows":   tab.Rows,
		})
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want csv, md, or json)", format))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
