package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"timecache/internal/harness"
	"timecache/internal/machine"
	"timecache/internal/stats"
)

// legExecutor runs one leg of one job. The coordinator owns scheduling,
// leases, retries, and merging; the executor owns only the simulation. Two
// implementations: inProcExecutor (a goroutine with a private machine.Pool,
// the default) and remoteExecutor (a separate worker process speaking the
// /v1/legs HTTP protocol, see worker.go). Determinism makes them
// interchangeable mid-job: a leg renders the same bytes wherever it runs.
type legExecutor interface {
	// runLeg executes leg of j under ctx. wireProgress asks the executor to
	// stream the harness's inner progress callbacks into the job (only
	// meaningful for single-leg jobs run in-process); wired reports whether
	// it actually did, so the coordinator knows not to overwrite the inner
	// counts with leg-granularity progress.
	runLeg(ctx context.Context, j *job, leg int, wireProgress bool) (tab *stats.Table, res JobResources, wired bool, err error)
}

// retryableError marks a failure of the execution channel, not of the
// simulation: connection refused, worker 5xx, truncated response. The
// coordinator re-runs the leg elsewhere. Simulation errors are never
// retryable — the simulator is deterministic, so a second run fails
// identically.
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

func isRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// inProcExecutor is a coordinator-local executor: one per -workers slot,
// each owning a private machine pool (pooled machines are Reset between
// legs; the golden tests prove reuse is invisible in results).
type inProcExecutor struct {
	s    *Server
	pool *machine.Pool
}

func newInProcExecutor(s *Server) *inProcExecutor {
	return &inProcExecutor{s: s, pool: machine.NewPool()}
}

func (e *inProcExecutor) runLeg(ctx context.Context, j *job, leg int, wireProgress bool) (*stats.Table, JobResources, bool, error) {
	account := &harness.ResourceAccount{}
	opts := j.spec.options()
	opts.Ctx = ctx
	opts.Pool = e.pool
	opts.Spans = j.trace
	opts.Now = e.s.clk.Now
	opts.Account = account
	if wireProgress {
		opts.Progress = func(done, total int) { j.progress(done, total) }
	}

	ps0 := e.pool.Stats()
	tab, err := harness.RunJobLeg(j.spec.harnessJob(), leg, opts)
	ps1 := e.pool.Stats()
	res := JobResources{
		Resources:      account.Snapshot(),
		PoolHits:       ps1.Hits - ps0.Hits,
		PoolMisses:     ps1.Misses - ps0.Misses,
		PoolEvictions:  ps1.Evictions - ps0.Evictions,
		SnapshotHits:   ps1.SnapshotHits - ps0.SnapshotHits,
		SnapshotMisses: ps1.SnapshotMisses - ps0.SnapshotMisses,
	}
	return tab, res, wireProgress, err
}

// legRequest / legResponse are the coordinator↔worker wire format for one
// leg (POST {worker}/v1/legs).
type legRequest struct {
	Spec Spec `json:"spec"`
	Leg  int  `json:"leg"`
}

type legResponse struct {
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Resources JobResources `json:"resources"`
}

// remoteExecutor proxies legs to a worker daemon (timecache-serve -worker).
// The coordinator keeps scheduling and merging; only RunJobLeg crosses the
// wire. A worker that answers 422 reported a deterministic simulation error
// (permanent); any transport failure or other status is retryable — the leg
// is re-leased to a different executor.
type remoteExecutor struct {
	addr   string // base URL, e.g. "http://127.0.0.1:9090"
	client *http.Client
}

func newRemoteExecutor(addr string) *remoteExecutor {
	return &remoteExecutor{addr: addr, client: &http.Client{}}
}

func (e *remoteExecutor) runLeg(ctx context.Context, j *job, leg int, wireProgress bool) (*stats.Table, JobResources, bool, error) {
	body := mustJSON(legRequest{Spec: j.spec, Leg: leg})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.addr+"/v1/legs", bytes.NewReader(body))
	if err != nil {
		return nil, JobResources{}, false, retryableError{fmt.Errorf("worker %s: %w", e.addr, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return nil, JobResources{}, false, retryableError{fmt.Errorf("worker %s: %w", e.addr, err)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, JobResources{}, false, retryableError{fmt.Errorf("worker %s: read response: %w", e.addr, err)}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusUnprocessableEntity:
		var fail struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &fail) == nil && fail.Error != "" {
			return nil, JobResources{}, false, errors.New(fail.Error)
		}
		return nil, JobResources{}, false, fmt.Errorf("worker %s: leg failed: %s", e.addr, raw)
	default:
		return nil, JobResources{}, false,
			retryableError{fmt.Errorf("worker %s: status %d: %s", e.addr, resp.StatusCode, raw)}
	}
	var lr legResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		return nil, JobResources{}, false, retryableError{fmt.Errorf("worker %s: decode response: %w", e.addr, err)}
	}
	return &stats.Table{Header: lr.Header, Rows: lr.Rows}, lr.Resources, false, nil
}
