package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"timecache/internal/harness"
	"timecache/internal/resultcache"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
)

// Spec is the wire-format job description accepted by POST /v1/jobs. It
// mirrors the cmd/reproduce and cmd/timecache-sim flag surface: an experiment
// name, the workload selection, and the machine/fidelity overrides. Zero
// values defer to the same defaults the CLIs use.
type Spec struct {
	// Experiment is one of harness.Experiments() ("table2", "parsec",
	// "llc-sweep", "ablation", "bookkeeping", "security", "matrix").
	Experiment string `json:"experiment"`
	// Pairs selects SPEC workload pairs by Table II label ("2Xlbm",
	// "leslie+gobmk"). Empty runs the experiment's default set.
	Pairs []string `json:"pairs,omitempty"`
	// Workloads selects PARSEC workloads by name. Empty runs all.
	Workloads []string `json:"workloads,omitempty"`
	// LLCSizesKB are llc-sweep points in KB (mirrors -llc on the sweep
	// path). Empty selects the Fig. 10 default ladder.
	LLCSizesKB []int `json:"llc_sizes_kb,omitempty"`
	// SliceLadder are the bookkeeping-scaling slice lengths in cycles.
	SliceLadder []uint64 `json:"slice_ladder,omitempty"`
	// KeyBits and Seed parameterize the security experiment's RSA victim
	// (Seed also seeds the matrix experiment's secrets).
	KeyBits int    `json:"key_bits,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Defenses selects the matrix experiment's rows by registry kind
	// ("none", "timecache", "ftm", "dawg-lite", "flush-on-switch",
	// "clepsydra", "fase"). Empty runs every registered defense.
	Defenses []string `json:"defenses,omitempty"`
	// Attacks selects the matrix experiment's leakage columns. Empty runs
	// the full attack corpus.
	Attacks []string `json:"attacks,omitempty"`
	// AttackBits is the secret length each matrix attack transmits
	// (default 32).
	AttackBits int `json:"attack_bits,omitempty"`

	// InstrsPerProc and WarmupInstrs mirror -instrs/-warmup: the measured
	// and warmup instruction budgets per process.
	InstrsPerProc uint64 `json:"instrs_per_proc,omitempty"`
	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	// LLCSizeKB overrides the machine's LLC size (mirrors -llc).
	LLCSizeKB int `json:"llc_size_kb,omitempty"`
	// GateLevel routes context-switch comparisons through the gate-level
	// bit-serial model (mirrors -gatelevel).
	GateLevel bool `json:"gate_level,omitempty"`
	// SliceCycles overrides the scheduler time slice (mirrors -slice).
	SliceCycles uint64 `json:"slice_cycles,omitempty"`
	// Jobs is the within-job sweep parallelism (mirrors -j). Default 1 so
	// concurrent service jobs do not multiply against each other.
	Jobs int `json:"jobs,omitempty"`
	// TimeoutMS bounds the job's run time; the job fails with a deadline
	// error when exceeded. Zero uses the server's default (if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this submission: the job always
	// simulates, and its result is not stored. Use it to force a fresh run
	// (e.g. when profiling the simulator itself).
	NoCache bool `json:"no_cache,omitempty"`

	// Tenant names the submitting tenant for per-tenant admission quotas
	// (empty means "default"). Free-form; excluded from the cache key, so
	// tenants share cached results.
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the admission class: "high" jobs are scheduled
	// strictly before "normal" ones (empty means "normal"). Excluded from
	// the cache key.
	Priority string `json:"priority,omitempty"`
}

// priorityClass maps the wire priority to a scheduler queue index.
// validate has already rejected anything else.
func (s Spec) priorityClass() int {
	if s.Priority == "high" {
		return priorityHigh
	}
	return priorityNormal
}

// tenant returns the quota bucket name.
func (s Spec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// harnessJob translates the selection half of the spec.
func (s Spec) harnessJob() harness.Job {
	sizes := make([]int, len(s.LLCSizesKB))
	for i, kb := range s.LLCSizesKB {
		sizes[i] = kb << 10
	}
	return harness.Job{
		Experiment:  s.Experiment,
		Pairs:       s.Pairs,
		Workloads:   s.Workloads,
		LLCSizes:    sizes,
		SliceCycles: s.SliceLadder,
		KeyBits:     s.KeyBits,
		Seed:        s.Seed,
		Defenses:    s.Defenses,
		Attacks:     s.Attacks,
		AttackBits:  s.AttackBits,
	}
}

// cacheKey is the spec's content address in the result cache: a digest over
// the canonical selection fingerprint (harness.Job.Fingerprint) and the
// result-affecting fidelity options (harness.Options.FidelityTag), both with
// defaults resolved — so a spec that spells out a default and one that omits
// it share an entry. Result-invariant fields are deliberately excluded and
// cannot split the key space: Jobs (the golden tests prove -j1 and -j8
// render byte-identical tables), TimeoutMS, and NoCache itself.
func (s Spec) cacheKey() string {
	h := sha256.New()
	io.WriteString(h, s.harnessJob().Fingerprint())
	io.WriteString(h, "\x00")
	io.WriteString(h, s.options().FidelityTag())
	return hex.EncodeToString(h.Sum(nil))
}

// validate rejects malformed specs before they are queued.
func (s Spec) validate() error {
	if s.Jobs < 0 {
		return fmt.Errorf("jobs must be >= 0, got %d", s.Jobs)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", s.TimeoutMS)
	}
	for _, kb := range s.LLCSizesKB {
		if kb <= 0 {
			return fmt.Errorf("llc_sizes_kb entries must be positive, got %d", kb)
		}
	}
	if s.LLCSizeKB < 0 {
		return fmt.Errorf("llc_size_kb must be >= 0, got %d", s.LLCSizeKB)
	}
	if s.AttackBits < 0 {
		return fmt.Errorf("attack_bits must be >= 0, got %d", s.AttackBits)
	}
	switch s.Priority {
	case "", "normal", "high":
	default:
		return fmt.Errorf("priority must be \"normal\" or \"high\", got %q", s.Priority)
	}
	return s.harnessJob().Validate()
}

// options translates the fidelity half of the spec into harness options for
// one run. jobs defaults to 1: the service's parallelism unit is the job,
// not the sweep leg, unless the client asks otherwise.
func (s Spec) options() harness.Options {
	jobs := s.Jobs
	if jobs == 0 {
		jobs = 1
	}
	return harness.Options{
		InstrsPerProc: s.InstrsPerProc,
		WarmupInstrs:  s.WarmupInstrs,
		LLCSize:       s.LLCSizeKB << 10,
		GateLevel:     s.GateLevel,
		SliceCycles:   s.SliceCycles,
		Jobs:          jobs,
	}
}

// State is a job lifecycle state. Transitions are strictly
// queued → running → {done, failed, cancelled}, except that a queued job may
// go directly to cancelled (client DELETE before a worker picks it up).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Cache dispositions, reported in the X-Timecache-Cache response header and
// the Status.Cache field of every submission made while the result cache is
// enabled.
const (
	// cacheHit: the result was served from the cache; no simulation ran.
	cacheHit = "hit"
	// cacheMiss: this submission led a new simulation for its fingerprint.
	cacheMiss = "miss"
	// cacheCoalesced: this submission attached to an identical in-flight
	// simulation and shares its result.
	cacheCoalesced = "coalesced"
	// cacheBypass: the spec set no_cache; the job simulated unconditionally.
	cacheBypass = "bypass"
)

// Status is the wire representation of a job's current state, returned by
// GET /v1/jobs/{id} and embedded in SSE state events.
type Status struct {
	ID         string `json:"id"`
	State      State  `json:"state"`
	Experiment string `json:"experiment"`
	Error      string `json:"error,omitempty"`
	// Cache is the submission's result-cache disposition ("hit", "miss",
	// "coalesced", "bypass"); empty when the server runs without a cache.
	Cache string `json:"cache,omitempty"`
	// Tenant and Priority echo the spec's admission fields (defaults
	// resolved). Attempt counts leg re-executions after lease expiry or a
	// retryable worker failure — 0 for a job that never lost a leg.
	Tenant   string     `json:"tenant"`
	Priority string     `json:"priority"`
	Attempt  int        `json:"attempt"`
	Done     int        `json:"progress_done"`
	Total    int        `json:"progress_total"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// cachedMeta is the producer metadata stored alongside each cache entry: the
// resource account and progress totals of the run that produced it, replayed
// to every hit and follower so their JSON results match a cold run's.
type cachedMeta struct {
	Resources *JobResources `json:"resources"`
	Done      int           `json:"done"`
	Total     int           `json:"total"`
}

// JobResources is the resource-accounting block of a job's JSON result: the
// harness counters summed over every leg the job dispatched, plus how the
// worker's machine pool served those legs. The harness counters byte-match
// an equivalent in-process run (TestResourceEquivalence pins this); the pool
// delta is service-side only.
type JobResources struct {
	harness.Resources
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// PoolEvictions counts idle machines the worker pool dropped at its
	// per-config cap while this job ran; SnapshotHits/SnapshotMisses count
	// how the pool's warm-snapshot shelf served the job's legs.
	PoolEvictions  uint64 `json:"pool_evictions"`
	SnapshotHits   uint64 `json:"snapshot_hits"`
	SnapshotMisses uint64 `json:"snapshot_misses"`
}

// add sums two resource accounts field-wise (legs of one job accumulate
// into the job total).
func (r JobResources) add(o JobResources) JobResources {
	r.Resources = r.Resources.Add(o.Resources)
	r.PoolHits += o.PoolHits
	r.PoolMisses += o.PoolMisses
	r.PoolEvictions += o.PoolEvictions
	r.SnapshotHits += o.SnapshotHits
	r.SnapshotMisses += o.SnapshotMisses
	return r
}

// job is the server-side job record. The mutex guards every mutable field;
// done is closed exactly once, when the job reaches a terminal state. Each
// job carries its own span recorder (served raw by /v1/jobs/{id}/trace) and
// a job-scoped structured logger.
type job struct {
	id   string
	spec Spec

	ctx    context.Context
	cancel context.CancelCauseFunc
	trace  *telemetry.SpanRecorder
	log    *slog.Logger

	// flight is the result-cache singleflight this job participates in:
	// as leader (cacheDisp == cacheMiss, this job runs the simulation and
	// publishes the entry) or as follower (cacheDisp == cacheCoalesced,
	// finalized by waitCoalesced when the leader's flight resolves). Nil
	// for hits, bypasses, and cache-disabled servers. Written once before
	// the job is registered, never mutated after.
	flight *resultcache.Flight
	// cacheDisp is the submission's cache disposition (see the cache*
	// constants); written before registration, immutable after.
	cacheDisp string

	// priority is the scheduler queue index (priorityHigh/priorityNormal);
	// written once at creation. inQueue is guarded by the scheduler's mutex
	// (the job is in its priority queue at most once). hasSlot is guarded by
	// the server's mutex: true while the job holds an admission-queue slot
	// (from acceptance until its first leg starts or it dies queued).
	priority int
	inQueue  bool
	hasSlot  bool

	mu        sync.Mutex
	state     State
	errMsg    string
	table     *stats.Table
	done      int
	total     int
	created   time.Time
	enqueued  time.Time
	started   time.Time
	finished  time.Time
	resources *JobResources

	// legs is the job's leg scoreboard (initLegs sizes it from
	// harness.JobLegs before the job is scheduled). legsDone counts legDone
	// entries; attempt counts re-executions (lease expiry, worker retry);
	// wasRunning records that markRunning ran, so finalize knows whether to
	// decrement the running gauge.
	legs       []legState
	legsDone   int
	attempt    int
	wasRunning bool

	events *eventLog
	doneCh chan struct{}
}

// legStatus is one leg's scheduling state.
type legStatus uint8

const (
	legPending legStatus = iota // wants an executor
	legLeased                   // claimed by an executor, lease live
	legDone                     // completed; table and res recorded
)

// legState is one entry of the job's leg scoreboard, guarded by job.mu.
// epoch fences stale executors: a lease expiry bumps it, and a completion
// or error carrying an older epoch is discarded — the leg has already been
// handed to someone else.
type legState struct {
	status legStatus
	epoch  uint64
	table  *stats.Table
	res    JobResources
}

// initLegs sizes the leg scoreboard for an n-leg job.
func (j *job) initLegs(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.legs = make([]legState, n)
}

// claimLeg hands out the first pending leg. more reports whether further
// pending legs remain after this claim (the scheduler keeps the job queued
// if so). Called with the scheduler's mutex held; takes job.mu (lock order:
// sched.mu → job.mu).
func (j *job) claimLeg() (leg int, epoch uint64, more, claimed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return 0, 0, false, false
	}
	for i := range j.legs {
		if j.legs[i].status != legPending {
			continue
		}
		if !claimed {
			j.legs[i].status = legLeased
			leg, epoch, claimed = i, j.legs[i].epoch, true
		} else {
			more = true
			break
		}
	}
	return leg, epoch, more, claimed
}

// progress records inner (within-leg) progress and mirrors it to the SSE
// stream and any result-cache followers. Only single-leg jobs wire this
// through; multi-leg jobs report at leg granularity via completeLeg.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
	j.events.publish("progress", mustJSON(map[string]int{"done": done, "total": total}))
	if j.flight != nil {
		j.flight.Progress(done, total)
	}
}

func newJob(id string, spec Spec, now time.Time) *job {
	return &job{
		id:       id,
		spec:     spec,
		state:    StateQueued,
		priority: spec.priorityClass(),
		created:  now,
		events:   newEventLog(),
		doneCh:   make(chan struct{}),
	}
}

// resourcesSnapshot returns the job's final resource account (nil until the
// job has run).
func (j *job) resourcesSnapshot() *JobResources {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resources
}

// status snapshots the job for serialization.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked is status for callers already holding j.mu.
func (j *job) statusLocked() Status {
	st := Status{
		ID:         j.id,
		State:      j.state,
		Experiment: j.spec.Experiment,
		Error:      j.errMsg,
		Cache:      j.cacheDisp,
		Tenant:     j.spec.tenant(),
		Priority:   [priorityLevels]string{"high", "normal"}[j.priority],
		Attempt:    j.attempt,
		Done:       j.done,
		Total:      j.total,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// result returns the finished table, or an error describing why none exists.
func (j *job) result() (*stats.Table, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone:
		return j.table, nil
	case j.state.Terminal():
		return nil, fmt.Errorf("job %s %s: %s", j.id, j.state, j.errMsg)
	default:
		return nil, fmt.Errorf("job %s is %s; result not ready", j.id, j.state)
	}
}

// event is one SSE frame: a named event with a JSON payload.
type event struct {
	name string
	data []byte
}

// eventLog is a replayable broadcast channel for one job's SSE stream. Every
// published event is appended to history; a subscriber first receives the
// full history, then live events. closed marks end-of-stream (terminal job
// state): subscribers' channels are closed after the history drains.
type eventLog struct {
	mu     sync.Mutex
	hist   []event
	subs   map[chan event]struct{}
	closed bool
	// persist, when set, journals each published event to the durable job
	// store (under mu, so the log order and the durable order agree). Events
	// seeded from a replay bypass it — they are already durable.
	persist func(ev event)
}

func newEventLog() *eventLog {
	return &eventLog{subs: map[chan event]struct{}{}}
}

// publish appends an event and fans it out to live subscribers. Subscriber
// channels are buffered; a subscriber that stopped draining is dropped
// rather than blocking the publisher (it already has the history replayed,
// and SSE clients reconnect).
func (l *eventLog) publish(name string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := event{name: name, data: data}
	l.hist = append(l.hist, ev)
	if l.persist != nil {
		l.persist(ev)
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// seed installs replayed history without re-persisting or fanning out.
// Called only during log replay, before the job is visible to subscribers.
func (l *eventLog) seed(evs []event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hist = append(l.hist, evs...)
}

// close ends the stream: no further events are accepted and every
// subscriber's channel is closed once drained.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = map[chan event]struct{}{}
}

// subscribe returns the event history so far plus a channel of subsequent
// events (nil when the stream already ended) and an unsubscribe function.
func (l *eventLog) subscribe() ([]event, chan event, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	hist := append([]event(nil), l.hist...)
	if l.closed {
		return hist, nil, func() {}
	}
	ch := make(chan event, 64)
	l.subs[ch] = struct{}{}
	return hist, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}
