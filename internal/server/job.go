package server

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"timecache/internal/harness"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
)

// Spec is the wire-format job description accepted by POST /v1/jobs. It
// mirrors the cmd/reproduce and cmd/timecache-sim flag surface: an experiment
// name, the workload selection, and the machine/fidelity overrides. Zero
// values defer to the same defaults the CLIs use.
type Spec struct {
	// Experiment is one of harness.Experiments() ("table2", "parsec",
	// "llc-sweep", "ablation", "bookkeeping", "security").
	Experiment string `json:"experiment"`
	// Pairs selects SPEC workload pairs by Table II label ("2Xlbm",
	// "leslie+gobmk"). Empty runs the experiment's default set.
	Pairs []string `json:"pairs,omitempty"`
	// Workloads selects PARSEC workloads by name. Empty runs all.
	Workloads []string `json:"workloads,omitempty"`
	// LLCSizesKB are llc-sweep points in KB (mirrors -llc on the sweep
	// path). Empty selects the Fig. 10 default ladder.
	LLCSizesKB []int `json:"llc_sizes_kb,omitempty"`
	// SliceLadder are the bookkeeping-scaling slice lengths in cycles.
	SliceLadder []uint64 `json:"slice_ladder,omitempty"`
	// KeyBits and Seed parameterize the security experiment's RSA victim.
	KeyBits int    `json:"key_bits,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`

	// InstrsPerProc and WarmupInstrs mirror -instrs/-warmup: the measured
	// and warmup instruction budgets per process.
	InstrsPerProc uint64 `json:"instrs_per_proc,omitempty"`
	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	// LLCSizeKB overrides the machine's LLC size (mirrors -llc).
	LLCSizeKB int `json:"llc_size_kb,omitempty"`
	// GateLevel routes context-switch comparisons through the gate-level
	// bit-serial model (mirrors -gatelevel).
	GateLevel bool `json:"gate_level,omitempty"`
	// SliceCycles overrides the scheduler time slice (mirrors -slice).
	SliceCycles uint64 `json:"slice_cycles,omitempty"`
	// Jobs is the within-job sweep parallelism (mirrors -j). Default 1 so
	// concurrent service jobs do not multiply against each other.
	Jobs int `json:"jobs,omitempty"`
	// TimeoutMS bounds the job's run time; the job fails with a deadline
	// error when exceeded. Zero uses the server's default (if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// harnessJob translates the selection half of the spec.
func (s Spec) harnessJob() harness.Job {
	sizes := make([]int, len(s.LLCSizesKB))
	for i, kb := range s.LLCSizesKB {
		sizes[i] = kb << 10
	}
	return harness.Job{
		Experiment:  s.Experiment,
		Pairs:       s.Pairs,
		Workloads:   s.Workloads,
		LLCSizes:    sizes,
		SliceCycles: s.SliceLadder,
		KeyBits:     s.KeyBits,
		Seed:        s.Seed,
	}
}

// validate rejects malformed specs before they are queued.
func (s Spec) validate() error {
	if s.Jobs < 0 {
		return fmt.Errorf("jobs must be >= 0, got %d", s.Jobs)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", s.TimeoutMS)
	}
	for _, kb := range s.LLCSizesKB {
		if kb <= 0 {
			return fmt.Errorf("llc_sizes_kb entries must be positive, got %d", kb)
		}
	}
	if s.LLCSizeKB < 0 {
		return fmt.Errorf("llc_size_kb must be >= 0, got %d", s.LLCSizeKB)
	}
	return s.harnessJob().Validate()
}

// options translates the fidelity half of the spec into harness options for
// one run. jobs defaults to 1: the service's parallelism unit is the job,
// not the sweep leg, unless the client asks otherwise.
func (s Spec) options() harness.Options {
	jobs := s.Jobs
	if jobs == 0 {
		jobs = 1
	}
	return harness.Options{
		InstrsPerProc: s.InstrsPerProc,
		WarmupInstrs:  s.WarmupInstrs,
		LLCSize:       s.LLCSizeKB << 10,
		GateLevel:     s.GateLevel,
		SliceCycles:   s.SliceCycles,
		Jobs:          jobs,
	}
}

// State is a job lifecycle state. Transitions are strictly
// queued → running → {done, failed, cancelled}, except that a queued job may
// go directly to cancelled (client DELETE before a worker picks it up).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is the wire representation of a job's current state, returned by
// GET /v1/jobs/{id} and embedded in SSE state events.
type Status struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	Experiment string     `json:"experiment"`
	Error      string     `json:"error,omitempty"`
	Done       int        `json:"progress_done"`
	Total      int        `json:"progress_total"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
}

// JobResources is the resource-accounting block of a job's JSON result: the
// harness counters summed over every leg the job dispatched, plus how the
// worker's machine pool served those legs. The harness counters byte-match
// an equivalent in-process run (TestResourceEquivalence pins this); the pool
// delta is service-side only.
type JobResources struct {
	harness.Resources
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
}

// job is the server-side job record. The mutex guards every mutable field;
// done is closed exactly once, when the job reaches a terminal state. Each
// job carries its own span recorder (served raw by /v1/jobs/{id}/trace) and
// a job-scoped structured logger.
type job struct {
	id   string
	spec Spec

	ctx    context.Context
	cancel context.CancelCauseFunc
	trace  *telemetry.SpanRecorder
	log    *slog.Logger

	mu        sync.Mutex
	state     State
	errMsg    string
	table     *stats.Table
	done      int
	total     int
	created   time.Time
	enqueued  time.Time
	started   time.Time
	finished  time.Time
	resources *JobResources

	events *eventLog
	doneCh chan struct{}
}

func newJob(id string, spec Spec, now time.Time) *job {
	return &job{
		id:      id,
		spec:    spec,
		state:   StateQueued,
		created: now,
		events:  newEventLog(),
		doneCh:  make(chan struct{}),
	}
}

// resourcesSnapshot returns the job's final resource account (nil until the
// job has run).
func (j *job) resourcesSnapshot() *JobResources {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resources
}

// status snapshots the job for serialization.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked is status for callers already holding j.mu.
func (j *job) statusLocked() Status {
	st := Status{
		ID:         j.id,
		State:      j.state,
		Experiment: j.spec.Experiment,
		Error:      j.errMsg,
		Done:       j.done,
		Total:      j.total,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// result returns the finished table, or an error describing why none exists.
func (j *job) result() (*stats.Table, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone:
		return j.table, nil
	case j.state.Terminal():
		return nil, fmt.Errorf("job %s %s: %s", j.id, j.state, j.errMsg)
	default:
		return nil, fmt.Errorf("job %s is %s; result not ready", j.id, j.state)
	}
}

// event is one SSE frame: a named event with a JSON payload.
type event struct {
	name string
	data []byte
}

// eventLog is a replayable broadcast channel for one job's SSE stream. Every
// published event is appended to history; a subscriber first receives the
// full history, then live events. closed marks end-of-stream (terminal job
// state): subscribers' channels are closed after the history drains.
type eventLog struct {
	mu     sync.Mutex
	hist   []event
	subs   map[chan event]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: map[chan event]struct{}{}}
}

// publish appends an event and fans it out to live subscribers. Subscriber
// channels are buffered; a subscriber that stopped draining is dropped
// rather than blocking the publisher (it already has the history replayed,
// and SSE clients reconnect).
func (l *eventLog) publish(name string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := event{name: name, data: data}
	l.hist = append(l.hist, ev)
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream: no further events are accepted and every
// subscriber's channel is closed once drained.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = map[chan event]struct{}{}
}

// subscribe returns the event history so far plus a channel of subsequent
// events (nil when the stream already ended) and an unsubscribe function.
func (l *eventLog) subscribe() ([]event, chan event, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	hist := append([]event(nil), l.hist...)
	if l.closed {
		return hist, nil, func() {}
	}
	ch := make(chan event, 64)
	l.subs[ch] = struct{}{}
	return hist, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}
