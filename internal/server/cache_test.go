package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"timecache/internal/promtext"
	"timecache/internal/resultcache"
)

// cachedConfig is the standard cache-enabled test server configuration.
func cachedConfig(workers int) Config {
	return Config{Workers: workers, Cache: resultcache.New(resultcache.WithMaxEntries(64))}
}

// submitHdr submits a spec and returns the status plus the cache header.
func submitHdr(t *testing.T, ts *httptest.Server, spec Spec) (Status, string) {
	t.Helper()
	st, resp := submit(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	return st, resp.Header.Get("X-Timecache-Cache")
}

// scrapeMetric fetches /metrics and returns one unlabeled sample's value.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("parse metrics: %v", err)
	}
	s := m.Sample(name)
	if s == nil {
		t.Fatalf("metrics missing %s", name)
	}
	return s.Value
}

// fetchCSV fetches a done job's CSV result.
func fetchCSV(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s: %s", id, resp.Status, body)
	}
	return body
}

// resultJSON fetches a done job's JSON result.
func resultJSON(t *testing.T, ts *httptest.Server, id string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode result json: %v", err)
	}
	return out
}

// TestCacheGoldenEquivalence is the cache's correctness anchor: a repeat
// submission is answered from the cache (header "hit"), its bytes are
// identical to the cold run's and to the checked-in golden artifact, its
// JSON result carries the producing run's resource snapshot — and none of
// the simulation metrics move, which proves nothing was simulated.
func TestCacheGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "results", "golden", "table2_slice.csv"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, cachedConfig(2))
	spec := Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"},
		InstrsPerProc: 60_000,
		WarmupInstrs:  40_000,
		Jobs:          2,
	}
	cold, hdr := submitHdr(t, ts, spec)
	if hdr != "miss" {
		t.Fatalf("cold submit header = %q, want miss", hdr)
	}
	if final := waitTerminal(t, ts, cold.ID, 2*time.Minute); final.State != StateDone {
		t.Fatalf("cold job %s: %s", final.State, final.Error)
	}
	coldCSV := fetchCSV(t, ts, cold.ID)
	if !bytes.Equal(want, coldCSV) {
		t.Fatalf("cold result diverged from golden artifact\n--- want ---\n%s--- got ---\n%s", want, coldCSV)
	}

	cyclesBefore := scrapeMetric(t, ts, "timecache_sim_cycles_total")
	legsBefore := scrapeMetric(t, ts, "timecache_job_legs_total")

	// Equivalent spec, not an identical one: defaults spelled out differently
	// (Jobs omitted instead of 2) must map to the same cache key.
	spec.Jobs = 0
	warm, hdr := submitHdr(t, ts, spec)
	if hdr != "hit" {
		t.Fatalf("repeat submit header = %q, want hit", hdr)
	}
	final := waitTerminal(t, ts, warm.ID, 10*time.Second)
	if final.State != StateDone {
		t.Fatalf("hit job %s: %s", final.State, final.Error)
	}
	if final.Cache != "hit" {
		t.Errorf("hit job Status.Cache = %q, want hit", final.Cache)
	}
	if final.Done != final.Total || final.Total == 0 {
		t.Errorf("hit job progress = %d/%d, want the producer's completed totals", final.Done, final.Total)
	}
	if got := fetchCSV(t, ts, warm.ID); !bytes.Equal(want, got) {
		t.Errorf("cached result diverged from golden artifact\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	res := resultJSON(t, ts, warm.ID)
	var resources struct {
		Legs uint64 `json:"legs"`
	}
	if err := json.Unmarshal(res["resources"], &resources); err != nil || resources.Legs == 0 {
		t.Errorf("hit job resources = %s (err %v), want the producing run's snapshot", res["resources"], err)
	}

	// The SSE history of a hit job is complete and terminal.
	events := readSSE(t, ts, warm.ID)
	last := events[len(events)-1]
	if last.Name != "state" || !strings.Contains(last.Data, `"state": "done"`) && !strings.Contains(last.Data, `"state":"done"`) {
		t.Errorf("hit job SSE trailer = %s %s, want a done state event", last.Name, last.Data)
	}

	// Nothing simulated: the sim counters are exactly where they were.
	if after := scrapeMetric(t, ts, "timecache_sim_cycles_total"); after != cyclesBefore {
		t.Errorf("sim cycles moved %v -> %v on a cache hit", cyclesBefore, after)
	}
	if after := scrapeMetric(t, ts, "timecache_job_legs_total"); after != legsBefore {
		t.Errorf("job legs moved %v -> %v on a cache hit", legsBefore, after)
	}
	if hits := scrapeMetric(t, ts, "timecache_result_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := scrapeMetric(t, ts, "timecache_result_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}
}

// TestCacheThunderingHerd is the singleflight requirement: 64 concurrent
// identical submissions cost exactly one simulation. A long blocker job
// holds the single worker while the herd lands, so the herd's leader is
// still queued when every follower admits — the split is deterministically
// 1 miss + 63 coalesced. Every job (leader and followers) must reach done
// with the same result bytes, every SSE stream must terminate, and the
// metrics must account exactly one herd simulation.
func TestCacheThunderingHerd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const herd = 64
	_, ts := startServer(t, cachedConfig(1))

	blocker, _ := submitHdr(t, ts, longSpec())
	waitRunning(t, ts, blocker.ID)

	spec := smallSpec()
	type sub struct {
		id   string
		disp string
	}
	subs := make([]sub, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := submit(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: %s", i, resp.Status)
				return
			}
			subs[i] = sub{id: st.ID, disp: resp.Header.Get("X-Timecache-Cache")}
		}(i)
	}
	wg.Wait()

	misses, coalesced := 0, 0
	var leaderID string
	for _, s := range subs {
		switch s.disp {
		case "miss":
			misses++
			leaderID = s.id
		case "coalesced":
			coalesced++
		default:
			t.Errorf("job %s disposition = %q", s.id, s.disp)
		}
	}
	if misses != 1 || coalesced != herd-1 {
		t.Fatalf("dispositions = %d miss / %d coalesced, want 1/%d", misses, coalesced, herd-1)
	}

	// Every SSE stream — follower or leader — must reach done and close.
	var sseWG sync.WaitGroup
	for _, s := range subs {
		sseWG.Add(1)
		go func(id string) {
			defer sseWG.Done()
			events := readSSE(t, ts, id)
			if len(events) == 0 {
				t.Errorf("job %s: empty SSE stream", id)
				return
			}
			last := events[len(events)-1]
			var st Status
			if err := json.Unmarshal([]byte(last.Data), &st); err != nil || st.State != StateDone {
				t.Errorf("job %s SSE trailer = %s %s, want done", id, last.Name, last.Data)
			}
		}(s.id)
	}
	sseWG.Wait()

	wantCSV := fetchCSV(t, ts, leaderID)
	for _, s := range subs {
		final := waitTerminal(t, ts, s.id, 30*time.Second)
		if final.State != StateDone {
			t.Fatalf("job %s: %s (%s)", s.id, final.State, final.Error)
		}
		if !bytes.Equal(wantCSV, fetchCSV(t, ts, s.id)) {
			t.Errorf("job %s result differs from the leader's", s.id)
		}
	}
	if final := waitTerminal(t, ts, blocker.ID, 2*time.Minute); final.State != StateDone {
		t.Fatalf("blocker %s: %s", final.State, final.Error)
	}

	// Exactly one herd simulation ran: total legs = blocker's + one job's.
	var blockerRes, leaderRes struct {
		Legs uint64 `json:"legs"`
	}
	if err := json.Unmarshal(resultJSON(t, ts, blocker.ID)["resources"], &blockerRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resultJSON(t, ts, leaderID)["resources"], &leaderRes); err != nil {
		t.Fatal(err)
	}
	wantLegs := float64(blockerRes.Legs + leaderRes.Legs)
	if got := scrapeMetric(t, ts, "timecache_job_legs_total"); got != wantLegs {
		t.Errorf("total legs = %v, want %v (blocker %d + one herd run %d)",
			got, wantLegs, blockerRes.Legs, leaderRes.Legs)
	}
	if got := scrapeMetric(t, ts, "timecache_result_cache_coalesced_total"); got != herd-1 {
		t.Errorf("coalesced counter = %v, want %d", got, herd-1)
	}
}

// TestCacheBypass: no_cache forces a fresh simulation and stores nothing —
// the next cacheable identical spec is still a miss.
func TestCacheBypass(t *testing.T) {
	_, ts := startServer(t, cachedConfig(1))
	spec := smallSpec()
	spec.NoCache = true
	st, hdr := submitHdr(t, ts, spec)
	if hdr != "bypass" {
		t.Fatalf("no_cache submit header = %q, want bypass", hdr)
	}
	if final := waitTerminal(t, ts, st.ID, time.Minute); final.State != StateDone {
		t.Fatalf("bypass job: %s (%s)", final.State, final.Error)
	}

	spec.NoCache = false
	st2, hdr := submitHdr(t, ts, spec)
	if hdr != "miss" {
		t.Errorf("first cacheable submit header = %q, want miss (bypass must not populate)", hdr)
	}
	if final := waitTerminal(t, ts, st2.ID, time.Minute); final.State != StateDone {
		t.Fatalf("miss job: %s (%s)", final.State, final.Error)
	}
	if bypass := scrapeMetric(t, ts, "timecache_result_cache_bypass_total"); bypass != 1 {
		t.Errorf("bypass counter = %v, want 1", bypass)
	}
}

// TestCacheOpsEndpoints covers /v1/cache/stats and DELETE /v1/cache: the
// stats reflect hits and residency, and a purge empties the store so the
// next identical spec misses again.
func TestCacheOpsEndpoints(t *testing.T) {
	_, ts := startServer(t, cachedConfig(1))
	st, _ := submitHdr(t, ts, smallSpec())
	waitTerminal(t, ts, st.ID, time.Minute)
	if _, hdr := submitHdr(t, ts, smallSpec()); hdr != "hit" {
		t.Fatalf("repeat header = %q, want hit", hdr)
	}

	var cacheStats struct {
		Enabled bool `json:"enabled"`
		Hits    int  `json:"hits"`
		Misses  int  `json:"misses"`
		Entries int  `json:"entries"`
	}
	resp, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cacheStats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !cacheStats.Enabled || cacheStats.Hits != 1 || cacheStats.Misses != 1 || cacheStats.Entries != 1 {
		t.Errorf("cache stats = %+v, want enabled with 1 hit / 1 miss / 1 entry", cacheStats)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cache", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var purged struct {
		Purged int `json:"purged"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&purged); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || purged.Purged != 1 {
		t.Errorf("purge: %s, purged %d, want 200 with 1", resp2.Status, purged.Purged)
	}
	st3, hdr := submitHdr(t, ts, smallSpec())
	if hdr != "miss" {
		t.Errorf("post-purge submit header = %q, want miss", hdr)
	}
	waitTerminal(t, ts, st3.ID, time.Minute)
}

// TestCacheDisabled: with no cache configured nothing changes — no header,
// no Status.Cache, stats report disabled, purge is a 404.
func TestCacheDisabled(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	st, resp := submit(t, ts, smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if hdr := resp.Header.Get("X-Timecache-Cache"); hdr != "" {
		t.Errorf("cache header on cacheless server = %q, want empty", hdr)
	}
	if st.Cache != "" {
		t.Errorf("Status.Cache on cacheless server = %q, want empty", st.Cache)
	}
	resp2, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Enabled bool `json:"enabled"`
	}
	json.NewDecoder(resp2.Body).Decode(&stats)
	resp2.Body.Close()
	if stats.Enabled {
		t.Error("cache stats report enabled on a cacheless server")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cache", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("purge on cacheless server: got %s, want 404", resp3.Status)
	}
	// The cache metric families still render, at zero.
	if v := scrapeMetric(t, ts, "timecache_result_cache_hits_total"); v != 0 {
		t.Errorf("cache hits on cacheless server = %v, want 0", v)
	}
}

// TestCacheLeaderCancelFailsFollowers pins the documented coalescing
// semantics when the leader never completes: cancelling a queued leader
// fails every follower with an error naming the leader (followers do not
// silently inherit a cancel they never asked for, and they do not hang).
func TestCacheLeaderCancelFailsFollowers(t *testing.T) {
	_, ts := startServer(t, cachedConfig(0)) // no workers: the leader stays queued
	leader, hdr := submitHdr(t, ts, smallSpec())
	if hdr != "miss" {
		t.Fatalf("leader header = %q, want miss", hdr)
	}
	follower, hdr := submitHdr(t, ts, smallSpec())
	if hdr != "coalesced" {
		t.Fatalf("follower header = %q, want coalesced", hdr)
	}
	if st := getStatus(t, ts, follower.ID); st.Cache != "coalesced" {
		t.Errorf("follower Status.Cache = %q, want coalesced", st.Cache)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+leader.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	lf := waitTerminal(t, ts, leader.ID, 10*time.Second)
	if lf.State != StateCancelled {
		t.Fatalf("leader state = %s, want cancelled", lf.State)
	}
	ff := waitTerminal(t, ts, follower.ID, 10*time.Second)
	if ff.State != StateFailed {
		t.Fatalf("follower state = %s (%s), want failed", ff.State, ff.Error)
	}
	if !strings.Contains(ff.Error, leader.ID) {
		t.Errorf("follower error = %q, want it to name leader %s", ff.Error, leader.ID)
	}
}

// TestCacheFollowerCancel: a follower can be cancelled individually without
// touching the leader or the other followers.
func TestCacheFollowerCancel(t *testing.T) {
	_, ts := startServer(t, cachedConfig(0))
	leader, _ := submitHdr(t, ts, smallSpec())
	follower, hdr := submitHdr(t, ts, smallSpec())
	if hdr != "coalesced" {
		t.Fatalf("follower header = %q, want coalesced", hdr)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+follower.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("follower cancel: %s", resp.Status)
	}
	ff := waitTerminal(t, ts, follower.ID, 10*time.Second)
	if ff.State != StateCancelled {
		t.Fatalf("follower state = %s, want cancelled", ff.State)
	}
	if st := getStatus(t, ts, leader.ID); st.State != StateQueued {
		t.Errorf("leader state after follower cancel = %s, want still queued", st.State)
	}
}

// TestCacheFollowerTimeout: a follower's own deadline fires independently of
// the leader's simulation.
func TestCacheFollowerTimeout(t *testing.T) {
	_, ts := startServer(t, cachedConfig(0))
	submitHdr(t, ts, smallSpec()) // leader, never runs (no workers)
	spec := smallSpec()
	spec.TimeoutMS = 50
	follower, hdr := submitHdr(t, ts, spec)
	if hdr != "coalesced" {
		// TimeoutMS must not split the cache key.
		t.Fatalf("follower header = %q, want coalesced", hdr)
	}
	ff := waitTerminal(t, ts, follower.ID, 10*time.Second)
	if ff.State != StateFailed || !strings.Contains(ff.Error, "deadline") {
		t.Fatalf("follower after deadline = %s (%q), want failed with deadline", ff.State, ff.Error)
	}
}

// TestCacheKeyEquivalence: specs that spell defaults differently share one
// cache entry; specs that differ in a result-affecting field do not.
func TestCacheKeyEquivalence(t *testing.T) {
	base := Spec{Experiment: "table2", Pairs: []string{"2Xlbm"}, InstrsPerProc: 20_000, WarmupInstrs: 10_000}
	equiv := base
	equiv.Jobs = 4          // parallelism is result-invariant
	equiv.TimeoutMS = 9_999 // deadlines are result-invariant
	if base.cacheKey() != equiv.cacheKey() {
		t.Error("jobs/timeout split the cache key; they are result-invariant")
	}
	llcDefault := base
	llcDefault.LLCSizeKB = 2 << 10 // the default 2 MiB, spelled out
	if base.cacheKey() != llcDefault.cacheKey() {
		t.Error("explicit default LLC size split the cache key")
	}
	diff := base
	diff.InstrsPerProc = 20_001
	if base.cacheKey() == diff.cacheKey() {
		t.Error("instruction budget change did not move the cache key")
	}
	gl := base
	gl.GateLevel = true
	if base.cacheKey() == gl.cacheKey() {
		t.Error("gate-level routing change did not move the cache key")
	}
}

// TestCacheDrainWaitsForFollowers: Drain must not return while a follower
// is still waiting on its leader; after Drain every job — leader, follower,
// blocker — is terminal.
func TestCacheDrainWaitsForFollowers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, ts := startServer(t, cachedConfig(1))
	blocker, _ := submitHdr(t, ts, longSpec())
	waitRunning(t, ts, blocker.ID)
	leader, _ := submitHdr(t, ts, smallSpec())
	follower, hdr := submitHdr(t, ts, smallSpec())
	if hdr != "coalesced" {
		t.Fatalf("follower header = %q, want coalesced", hdr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{blocker.ID, leader.ID, follower.ID} {
		st := getStatus(t, ts, id)
		if st.State != StateDone {
			t.Errorf("job %s = %s (%s) after drain, want done", id, st.State, st.Error)
		}
	}
}
