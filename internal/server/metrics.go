package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timecache/internal/harness"
	"timecache/internal/machine"
	"timecache/internal/resultcache"
	"timecache/internal/telemetry"
)

// metrics is the /metrics endpoint's state, rendered in the Prometheus text
// exposition format. Job durations reuse telemetry.Histogram — the same
// log2-bucketed histogram the simulator uses for access latencies — so the
// service layer and the simulator report through one mechanism. Beyond the
// queue/job counters it aggregates every finished job's resource account
// (simulated cycles, instructions, per-level cache accesses, context
// switches, s-bit delayed loads) and the machine-pool hit/miss totals, so an
// operator can see where simulated work went without fetching any result.
type metrics struct {
	jobsAccepted   atomic.Int64
	jobsRejected   atomic.Int64
	jobsRunning    atomic.Int64
	queueDepth     atomic.Int64
	sseSubscribers atomic.Int64

	poolHits       atomic.Uint64
	poolMisses     atomic.Uint64
	poolEvictions  atomic.Uint64
	snapshotHits   atomic.Uint64
	snapshotMisses atomic.Uint64

	// cacheBypass counts no_cache submissions. The hit/miss/coalesced/
	// eviction counters live in the resultcache itself and are folded into
	// render's snapshot argument; bypasses never reach the cache, so the
	// server counts them here.
	cacheBypass atomic.Uint64

	// Coordinator counters: per-tenant quota rejections and the leg
	// scheduling machinery (completions, channel-failure retries, lease
	// expiries).
	quotaRejected atomic.Uint64
	legsCompleted atomic.Uint64
	legRetries    atomic.Uint64
	leasesExpired atomic.Uint64

	// Job-store state. The gauges mirror Store.Stats at scrape time (set by
	// handleMetrics); replayedJobs counts jobs reconstructed from the log at
	// startup.
	replayedJobs      atomic.Uint64
	storeRecords      atomic.Int64
	storeBytes        atomic.Int64
	storeSegments     atomic.Int64
	storeCompactions  atomic.Uint64
	storeAppendErrors atomic.Uint64

	mu           sync.Mutex
	finished     map[State]int64
	duration     telemetry.Histogram // job wall time, milliseconds, all jobs
	byExperiment map[string]*telemetry.Histogram
	resources    harness.Resources
}

func newMetrics() *metrics {
	return &metrics{
		finished:     map[State]int64{},
		byExperiment: map[string]*telemetry.Histogram{},
	}
}

// finish records one terminal job and its duration, overall and per
// experiment type.
func (m *metrics) finish(state State, experiment string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	ms := uint64(d.Milliseconds())
	m.duration.Observe(ms)
	h := m.byExperiment[experiment]
	if h == nil {
		h = &telemetry.Histogram{}
		m.byExperiment[experiment] = h
	}
	h.Observe(ms)
}

// addJob folds one finished job's resource account and pool delta into the
// totals.
func (m *metrics) addJob(res JobResources) {
	m.poolHits.Add(res.PoolHits)
	m.poolMisses.Add(res.PoolMisses)
	m.poolEvictions.Add(res.PoolEvictions)
	m.snapshotHits.Add(res.SnapshotHits)
	m.snapshotMisses.Add(res.SnapshotMisses)
	m.mu.Lock()
	m.resources = m.resources.Add(res.Resources)
	m.mu.Unlock()
}

// render produces the Prometheus text format. All mu-guarded state is copied
// in one lock acquisition up front; quantiles and the rest of the rendering
// work off that snapshot so a slow scrape never holds the lock that the job
// finish path takes. cs is the result cache's accounting snapshot (the zero
// value when the server runs without a cache — the families still render, at
// zero, so dashboards need not special-case disabled caches).
func (m *metrics) render(cs resultcache.Stats) string {
	m.mu.Lock()
	finished := make(map[State]int64, len(m.finished))
	for st, n := range m.finished {
		finished[st] = n
	}
	duration := m.duration // value copy: the bucket array copies with it
	byExp := make(map[string]telemetry.Histogram, len(m.byExperiment))
	for name, h := range m.byExperiment {
		byExp[name] = *h
	}
	res := m.resources
	m.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("timecache_jobs_accepted_total", "Jobs admitted to the queue.", uint64(m.jobsAccepted.Load()))
	counter("timecache_jobs_rejected_total", "Jobs rejected with 429 (queue full).", uint64(m.jobsRejected.Load()))
	gauge("timecache_jobs_running", "Jobs currently executing.", m.jobsRunning.Load())
	gauge("timecache_queue_depth", "Jobs accepted but not yet running.", m.queueDepth.Load())
	gauge("timecache_sse_subscribers", "Open SSE event-stream connections.", m.sseSubscribers.Load())
	counter("timecache_pool_hits_total", "Machine-pool gets served by a pooled (Reset) machine.", m.poolHits.Load())
	counter("timecache_pool_misses_total", "Machine-pool gets that assembled a fresh machine.", m.poolMisses.Load())
	counter("timecache_pool_evictions_total", "Idle machines dropped because a config's shelf was at its cap.", m.poolEvictions.Load())
	gauge("timecache_pool_idle_cap", "Per-config bound on each worker pool's idle machine list.", int64(machine.DefaultIdleCap))
	counter("timecache_snapshot_hits_total", "Experiment legs forked from a shelved warm snapshot.", m.snapshotHits.Load())
	counter("timecache_snapshot_misses_total", "Snapshot-shelf lookups that found no matching warm state.", m.snapshotMisses.Load())

	counter("timecache_result_cache_hits_total", "Submissions answered from the result cache without simulating.", cs.Hits)
	counter("timecache_result_cache_misses_total", "Submissions that led a new simulation for their fingerprint.", cs.Misses)
	counter("timecache_result_cache_coalesced_total", "Submissions coalesced onto an identical in-flight simulation.", cs.Coalesced)
	counter("timecache_result_cache_evictions_total", "Result-cache entries displaced by the capacity bounds.", cs.Evictions)
	counter("timecache_result_cache_bypass_total", "Submissions that bypassed the result cache (no_cache).", m.cacheBypass.Load())
	gauge("timecache_result_cache_entries", "Result-cache entries currently resident.", int64(cs.Entries))
	gauge("timecache_result_cache_bytes", "Accounted bytes currently resident in the result cache.", cs.Bytes)

	counter("timecache_quota_rejected_total", "Submissions rejected by a per-tenant token quota.", m.quotaRejected.Load())
	counter("timecache_legs_completed_total", "Sweep legs completed by executors (across retries).", m.legsCompleted.Load())
	counter("timecache_leg_retries_total", "Leg re-leases after a retryable executor failure.", m.legRetries.Load())
	counter("timecache_leases_expired_total", "Leg leases that timed out and were re-queued.", m.leasesExpired.Load())
	counter("timecache_jobstore_replayed_jobs_total", "Jobs reconstructed from the write-ahead log at startup.", m.replayedJobs.Load())
	gauge("timecache_jobstore_records", "Live records in the job store.", m.storeRecords.Load())
	gauge("timecache_jobstore_bytes", "Framed bytes in the job store.", m.storeBytes.Load())
	gauge("timecache_jobstore_segments", "Log segments in the job store.", m.storeSegments.Load())
	counter("timecache_jobstore_compactions_total", "Job-store compactions performed.", m.storeCompactions.Load())
	counter("timecache_jobstore_append_errors_total", "Job-store appends that failed (job proceeded without durability).", m.storeAppendErrors.Load())

	counter("timecache_job_legs_total", "Machine runs (experiment legs) dispatched by finished jobs.", res.Legs)
	counter("timecache_sim_cycles_total", "Simulated cycles executed by finished jobs.", res.SimCycles)
	counter("timecache_sim_instructions_total", "Simulated instructions executed by finished jobs.", res.Instructions)
	fmt.Fprintf(&b, "# HELP timecache_cache_accesses_total Cache accesses by finished jobs, per level.\n")
	fmt.Fprintf(&b, "# TYPE timecache_cache_accesses_total counter\n")
	fmt.Fprintf(&b, "timecache_cache_accesses_total{level=\"l1i\"} %d\n", res.L1IAccesses)
	fmt.Fprintf(&b, "timecache_cache_accesses_total{level=\"l1d\"} %d\n", res.L1DAccesses)
	fmt.Fprintf(&b, "timecache_cache_accesses_total{level=\"llc\"} %d\n", res.LLCAccesses)
	counter("timecache_context_switches_total", "Simulated context switches by finished jobs.", res.ContextSwitches)
	counter("timecache_sbit_delayed_loads_total", "Loads TimeCache delayed on a clear s-bit (first access after a context switch), summed over levels.", res.SBitDelayedLoads)

	fmt.Fprintf(&b, "# HELP timecache_jobs_finished_total Jobs reaching a terminal state.\n")
	fmt.Fprintf(&b, "# TYPE timecache_jobs_finished_total counter\n")
	states := make([]string, 0, len(finished))
	for st := range finished {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(&b, "timecache_jobs_finished_total{state=%q} %d\n", st, finished[State(st)])
	}

	summary := func(name, help string, labels string, h telemetry.Histogram) {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{%squantile=\"%g\"} %d\n", name, labels, q, h.Quantile(q))
		}
		if labels == "" {
			fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
		} else {
			l := strings.TrimSuffix(labels, ",")
			fmt.Fprintf(&b, "%s_sum{%s} %d\n%s_count{%s} %d\n", name, l, h.Sum, name, l, h.Count)
		}
	}
	fmt.Fprintf(&b, "# HELP timecache_job_duration_ms Job wall time in milliseconds.\n")
	fmt.Fprintf(&b, "# TYPE timecache_job_duration_ms summary\n")
	summary("timecache_job_duration_ms", "", "", duration)

	if len(byExp) > 0 {
		fmt.Fprintf(&b, "# HELP timecache_experiment_duration_ms Job wall time in milliseconds, per experiment type.\n")
		fmt.Fprintf(&b, "# TYPE timecache_experiment_duration_ms summary\n")
		names := make([]string, 0, len(byExp))
		for name := range byExp {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			summary("timecache_experiment_duration_ms", "", fmt.Sprintf("experiment=%q,", name), byExp[name])
		}
	}
	return b.String()
}
