package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timecache/internal/telemetry"
)

// metrics is the /metrics endpoint's state, rendered in the Prometheus text
// exposition format. Job durations reuse telemetry.Histogram — the same
// log2-bucketed histogram the simulator uses for access latencies — so the
// service layer and the simulator report through one mechanism.
type metrics struct {
	jobsAccepted atomic.Int64
	jobsRejected atomic.Int64
	jobsRunning  atomic.Int64
	queueDepth   atomic.Int64

	mu       sync.Mutex
	finished map[State]int64
	duration telemetry.Histogram // job wall time, milliseconds
}

func newMetrics() *metrics {
	return &metrics{finished: map[State]int64{}}
}

// finish records one terminal job.
func (m *metrics) finish(state State, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	m.duration.Observe(uint64(d.Milliseconds()))
}

// render produces the Prometheus text format.
func (m *metrics) render() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("timecache_jobs_accepted_total", "Jobs admitted to the queue.", m.jobsAccepted.Load())
	counter("timecache_jobs_rejected_total", "Jobs rejected with 429 (queue full).", m.jobsRejected.Load())
	gauge("timecache_jobs_running", "Jobs currently executing.", m.jobsRunning.Load())
	gauge("timecache_queue_depth", "Jobs accepted but not yet running.", m.queueDepth.Load())

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(&b, "# HELP timecache_jobs_finished_total Jobs reaching a terminal state.\n")
	fmt.Fprintf(&b, "# TYPE timecache_jobs_finished_total counter\n")
	states := make([]string, 0, len(m.finished))
	for st := range m.finished {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(&b, "timecache_jobs_finished_total{state=%q} %d\n", st, m.finished[State(st)])
	}

	fmt.Fprintf(&b, "# HELP timecache_job_duration_ms Job wall time in milliseconds.\n")
	fmt.Fprintf(&b, "# TYPE timecache_job_duration_ms summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, "timecache_job_duration_ms{quantile=\"%g\"} %d\n", q, m.duration.Quantile(q))
	}
	fmt.Fprintf(&b, "timecache_job_duration_ms_sum %d\n", m.duration.Sum)
	fmt.Fprintf(&b, "timecache_job_duration_ms_count %d\n", m.duration.Count)
	return b.String()
}
