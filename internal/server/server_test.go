package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"timecache/internal/clock"
)

// smallSpec is a seconds-scale single-pair job: two modes at 20k measured
// instructions each.
func smallSpec() Spec {
	return Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm"},
		InstrsPerProc: 20_000,
		WarmupInstrs:  10_000,
	}
}

// longSpec runs long enough (hundreds of ms) that a test can reliably
// observe it mid-run.
func longSpec() Spec {
	return Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"},
		InstrsPerProc: 3_000_000,
		WarmupInstrs:  100_000,
	}
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec Spec) (Status, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", id, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, within time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, st.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed frame from the events stream.
type sseEvent struct {
	Name string
	Data string
}

// readSSE consumes the whole event stream (the server closes it when the
// job reaches a terminal state) and returns the parsed frames.
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events %s: %s", id, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Name != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	return out
}

// TestLifecycle is the end-to-end happy path: submit → SSE stream shows
// queued → running → done with progress in between → result retrievable in
// all three formats and consistent with /v1/jobs.
func TestLifecycle(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	st, resp := submit(t, ts, smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}

	events := readSSE(t, ts, st.ID)
	var states []string
	sawProgress := false
	for _, ev := range events {
		switch ev.Name {
		case "state":
			var s Status
			if err := json.Unmarshal([]byte(ev.Data), &s); err != nil {
				t.Fatalf("state event %q: %v", ev.Data, err)
			}
			states = append(states, string(s.State))
		case "progress":
			sawProgress = true
		}
	}
	if len(states) == 0 || states[len(states)-1] != string(StateDone) {
		t.Fatalf("SSE states = %v, want trailing done", states)
	}
	if !sawProgress {
		t.Error("SSE stream carried no progress events")
	}

	final := getStatus(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Done != final.Total || final.Total == 0 {
		t.Errorf("progress = %d/%d, want complete", final.Done, final.Total)
	}

	for _, format := range []string{"csv", "md", "json"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result format=%s: %s", format, resp.Status)
		}
		if format == "csv" && !strings.HasPrefix(string(body), "workload,normalized") {
			t.Errorf("csv result starts %q", string(body)[:min(40, len(body))])
		}
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}
}

// TestSubmitValidation: malformed and invalid specs are rejected with 400
// before touching the queue.
func TestSubmitValidation(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	for _, body := range []string{
		`{`,
		`{"experiment":"nope"}`,
		`{"experiment":"table2","pairs":["nope"]}`,
		`{"experiment":"table2","bogus_field":1}`,
		`{"experiment":"table2","jobs":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: got %s, want 400", body, resp.Status)
		}
	}
}

// TestBackpressure pins the admission contract: with no workers draining
// the queue, QueueDepth jobs are accepted and the next is rejected with
// 429 + Retry-After, without losing the accepted ones.
func TestBackpressure(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0, QueueDepth: 2, RetryAfter: 7})
	var accepted []string
	for i := 0; i < 2; i++ {
		st, resp := submit(t, ts, smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		accepted = append(accepted, st.ID)
	}
	_, resp := submit(t, ts, smallSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: got %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	for _, id := range accepted {
		if st := getStatus(t, ts, id); st.State != StateQueued {
			t.Errorf("accepted job %s state = %s, want queued", id, st.State)
		}
	}
	// The rejected job must not appear in the list.
	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	json.NewDecoder(resp2.Body).Decode(&list)
	if len(list.Jobs) != 2 {
		t.Errorf("job list has %d entries, want 2", len(list.Jobs))
	}
}

// TestConcurrentSubmitRollback pins the queue-full rollback under
// concurrent submission: a rejected job must remove its own id from the
// registry, never a concurrently accepted one. The old positional rollback
// (truncate the last element of s.order) could delete the id of a submit
// that registered in between, leaving a dangling id that made GET /v1/jobs
// panic and the accepted job vanish from the listing. The specs carry a
// timeout so the rejection path also exercises the deadline-goroutine
// release (a rejected job's doneCh never closes; the goroutine must exit
// via the cancelled context instead of leaking).
func TestConcurrentSubmitRollback(t *testing.T) {
	spec := smallSpec()
	spec.TimeoutMS = 60_000
	base := runtime.NumGoroutine()
	const rounds, submitters = 10, 8
	for round := 0; round < rounds; round++ {
		s := New(Config{Workers: 0, QueueDepth: 1})
		ts := httptest.NewServer(s.Handler())
		ids := make([]string, submitters)
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st, resp := submit(t, ts, spec)
				switch resp.StatusCode {
				case http.StatusAccepted:
					ids[i] = st.ID
				case http.StatusTooManyRequests:
				default:
					t.Errorf("round %d submit %d: %s", round, i, resp.Status)
				}
			}(i)
		}
		wg.Wait()
		want := map[string]bool{}
		for _, id := range ids {
			if id != "" {
				want[id] = true
			}
		}
		if len(want) != 1 {
			t.Fatalf("round %d: %d jobs accepted, want 1", round, len(want))
		}
		// The listing must contain exactly the accepted ids — a dangling
		// order entry panics the handler (the client sees a dropped
		// connection rather than a 200).
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("round %d list: %v", round, err)
		}
		var list struct {
			Jobs []Status `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatalf("round %d decode list: %v", round, err)
		}
		resp.Body.Close()
		if len(list.Jobs) != len(want) {
			t.Fatalf("round %d: listed %d jobs, want %d", round, len(list.Jobs), len(want))
		}
		for _, st := range list.Jobs {
			if !want[st.ID] {
				t.Errorf("round %d: listing has %s, not an accepted job", round, st.ID)
			}
		}
		// Release this round's resources so the final goroutine count only
		// sees leaks: cancelling the accepted job closes its doneCh (its
		// deadline goroutine exits), and closing the server tears down the
		// HTTP connections.
		for id := range want {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		ts.Close()
		dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Drain(dctx)
		dcancel()
	}
	// Every rejected job's deadline goroutine must have exited via its
	// cancelled context (a rejected job's doneCh never closes). Before the
	// fix ~70 goroutines survived here.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+20 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d; rejected-job deadline goroutines leaked",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelQueued: DELETE on a job no worker has picked up moves it
// straight to cancelled.
func TestCancelQueued(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	st, _ := submit(t, ts, smallSpec())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s", resp.Status)
	}
	if st := getStatus(t, ts, st.ID); st.State != StateCancelled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	// Result is a 409, and a second DELETE reports the conflict too.
	resp2, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: got %s, want 409", resp2.Status)
	}
}

// TestCancelRunning: DELETE while the simulation is mid-run interrupts the
// machine (kernel-level interrupt poll) and lands the job in cancelled,
// fast — not after the job would have finished.
func TestCancelRunning(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	st, _ := submit(t, ts, longSpec())
	// Wait until a worker has it.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelAt := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	final := waitTerminal(t, ts, st.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("state after mid-run cancel = %s (%s)", final.State, final.Error)
	}
	if took := time.Since(cancelAt); took > 5*time.Second {
		t.Errorf("cancellation took %s; interrupt did not cut the run short", took)
	}
}

// waitRunning polls until a worker has picked the job up.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, id).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobTimeout: a per-job deadline expires the job into failed (not
// cancelled — the distinction is the cancellation cause). The deadline is
// driven entirely by the injected fake clock: no matter how fast or slow the
// machine runs the simulation, the job cannot fail until Advance crosses the
// timeout, and must fail after.
func TestJobTimeout(t *testing.T) {
	fake := clock.NewFake(time.Time{})
	_, ts := startServer(t, Config{Workers: 1, Clock: fake})
	spec := longSpec()
	spec.TimeoutMS = 60_000
	st, _ := submit(t, ts, spec)
	waitRunning(t, ts, st.ID)
	if got := getStatus(t, ts, st.ID); got.State != StateRunning {
		t.Fatalf("before Advance: state = %s, want running", got.State)
	}
	fake.Advance(61 * time.Second)
	final := waitTerminal(t, ts, st.ID, 15*time.Second)
	if final.State != StateFailed {
		t.Fatalf("state after timeout = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("timeout error = %q, want a deadline message", final.Error)
	}
}

// TestJobTimeoutNotPremature: advancing the fake clock to just short of the
// deadline must not fail the job — it runs to completion.
func TestJobTimeoutNotPremature(t *testing.T) {
	fake := clock.NewFake(time.Time{})
	_, ts := startServer(t, Config{Workers: 1, Clock: fake})
	spec := smallSpec()
	spec.TimeoutMS = 60_000
	st, _ := submit(t, ts, spec)
	fake.Advance(59 * time.Second)
	final := waitTerminal(t, ts, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done under an unexpired deadline", final.State, final.Error)
	}
}

// TestDrain pins the graceful-drain contract: after Drain returns, every
// accepted job has reached a terminal state (none silently dropped), new
// submissions get 503, and readiness reports draining.
func TestDrain(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 6; i++ {
		st, resp := submit(t, ts, smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st := getStatus(t, ts, id)
		if st.State != StateDone {
			t.Errorf("job %s = %s (%s) after graceful drain, want done", id, st.State, st.Error)
		}
	}
	if _, resp := submit(t, ts, smallSpec()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: got %s, want 503", resp.Status)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: got %s, want 503", resp.Status)
	}
}

// TestDrainHardStop: when the drain grace period expires mid-run, jobs are
// hard-cancelled — they still reach a terminal state rather than being
// dropped. The grace period is measured on the injected fake clock
// (DrainWithGrace), so the hard-stop fires when the test advances time, not
// when the wall does.
func TestDrainHardStop(t *testing.T) {
	fake := clock.NewFake(time.Time{})
	s, ts := startServer(t, Config{Workers: 1, Clock: fake})
	st, _ := submit(t, ts, longSpec())
	waitRunning(t, ts, st.ID)
	errCh := make(chan error, 1)
	go func() { errCh <- s.DrainWithGrace(5 * time.Second) }()
	// Advance until the grace timer (registered inside DrainWithGrace,
	// concurrently with this loop) has fired and Drain has returned. Each
	// Advance covers the full grace, so exactly one firing is ever needed
	// once the timer exists; the loop only rides out the registration race.
	deadline := time.Now().Add(15 * time.Second)
	for {
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatal("hard drain returned nil, want context error")
			}
			final := getStatus(t, ts, st.ID)
			if !final.State.Terminal() {
				t.Fatalf("job %s non-terminal after hard drain: %s", st.ID, final.State)
			}
			if final.State != StateCancelled {
				t.Errorf("hard-drained job state = %s, want cancelled", final.State)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("drain did not return after grace expiry")
		}
		fake.Advance(6 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGoldenEquivalence is the cross-layer reproducibility check: the Table
// II slice fetched through the HTTP API must be byte-identical to the
// checked-in golden artifact that the in-process golden tests pin.
func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "results", "golden", "table2_slice.csv"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Workers: 2})
	st, resp := submit(t, ts, Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"},
		InstrsPerProc: 60_000,
		WarmupInstrs:  40_000,
		Jobs:          2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	final := waitTerminal(t, ts, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("golden job %s: %s", final.State, final.Error)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(want, got) {
		t.Errorf("HTTP result diverged from golden artifact\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestConcurrent64 is the capacity requirement: 64 jobs in flight at once,
// all admitted, none dropped, none stuck, every result retrievable.
func TestConcurrent64(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 64
	_, ts := startServer(t, Config{Workers: 8, QueueDepth: n})
	spec := Spec{
		Experiment:    "table2",
		Pairs:         []string{"2Xlbm"},
		InstrsPerProc: 10_000,
		WarmupInstrs:  5_000,
	}
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := submit(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("submit %d: %s", i, resp.Status)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range ids {
		final := waitTerminal(t, ts, id, 2*time.Minute)
		if final.State != StateDone {
			t.Errorf("job %s: %s (%s)", id, final.State, final.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), fmt.Sprintf(`timecache_jobs_finished_total{state="done"} %d`, n)) {
		t.Errorf("metrics missing %d done jobs:\n%s", n, body)
	}
}

// TestMetricsAndHealth smoke-tests the operational endpoints.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 0})
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/experiments"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %s", path, resp.Status)
		}
		if path == "/metrics" && !strings.Contains(string(body), "timecache_jobs_accepted_total") {
			t.Errorf("metrics output missing counters:\n%s", body)
		}
		if path == "/v1/experiments" && !strings.Contains(string(body), "table2") {
			t.Errorf("experiments output missing table2: %s", body)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: got %s, want 404", resp.Status)
		}
	}
}
