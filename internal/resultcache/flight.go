package resultcache

import "sync"

// Group deduplicates in-flight work by key: the first admission for a key
// becomes the flight's leader and runs the simulation; every admission that
// lands while the flight is open becomes a follower and waits for the
// leader's result instead of re-running it. Unlike x/sync/singleflight,
// followers do not block inside the admit call — they get a Flight handle
// with a Done channel and a progress feed, so the job service can give each
// follower its own job id, SSE stream, and deadline while exactly one
// simulation runs.
type Group struct {
	mu       sync.Mutex
	inflight map[string]*Flight
}

// NewGroup builds an empty group.
func NewGroup() *Group {
	return &Group{inflight: map[string]*Flight{}}
}

// Admit joins or opens the flight for key. The boolean reports leadership:
// the leader MUST eventually call Finish (directly or via Cache.Complete),
// or followers wait forever.
func (g *Group) Admit(key string) (*Flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.inflight[key]; ok {
		f.mu.Lock()
		f.followers++
		f.mu.Unlock()
		return f, false
	}
	f := &Flight{g: g, key: key, doneCh: make(chan struct{})}
	g.inflight[key] = f
	return f, true
}

// Len reports how many keys are currently in flight.
func (g *Group) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.inflight)
}

// Flight is one in-flight simulation shared by a leader and its followers.
type Flight struct {
	g   *Group
	key string

	mu         sync.Mutex
	leaderTag  string
	followers  int
	onProgress []func(done, total int)

	doneCh chan struct{}
	entry  *Entry
	err    error
}

// Key returns the flight's content address.
func (f *Flight) Key() string { return f.key }

// SetLeaderTag records an opaque identity for the leader (the job service
// stores the leader's job id) so followers can name it in errors and spans.
func (f *Flight) SetLeaderTag(tag string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.leaderTag = tag
}

// LeaderTag returns the tag set by SetLeaderTag ("" until the leader sets
// one).
func (f *Flight) LeaderTag() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaderTag
}

// Followers reports how many admissions coalesced onto this flight so far.
func (f *Flight) Followers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.followers
}

// OnProgress registers a callback fed by the leader's Progress calls.
// Callbacks registered after the flight finished are never invoked (the
// follower will observe Done immediately instead).
func (f *Flight) OnProgress(fn func(done, total int)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.doneCh:
		return
	default:
	}
	f.onProgress = append(f.onProgress, fn)
}

// Progress fans the leader's progress out to every registered follower.
// Calls are serialized under the flight mutex, matching the harness
// Progress contract.
func (f *Flight) Progress(done, total int) {
	f.mu.Lock()
	fns := append([]func(done, total int){}, f.onProgress...)
	f.mu.Unlock()
	for _, fn := range fns {
		fn(done, total)
	}
}

// Finish resolves the flight: followers unblock with (entry, err), and the
// key leaves the group so the next admission opens a fresh flight. Only the
// leader may call Finish, exactly once.
func (f *Flight) Finish(entry *Entry, err error) {
	f.g.mu.Lock()
	delete(f.g.inflight, f.key)
	f.g.mu.Unlock()
	f.mu.Lock()
	f.entry, f.err = entry, err
	f.onProgress = nil
	f.mu.Unlock()
	close(f.doneCh)
}

// Done is closed when the flight resolves.
func (f *Flight) Done() <-chan struct{} { return f.doneCh }

// Result returns the flight's outcome; valid only after Done is closed.
func (f *Flight) Result() (*Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.entry, f.err
}
