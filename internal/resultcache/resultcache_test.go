package resultcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timecache/internal/stats"
)

func entry(key string, size int) *Entry {
	return &Entry{Key: key, CSV: make([]byte, size), Table: stats.NewTable("a")}
}

// TestStoreLRUOrder: the entry bound evicts least-recently-used first, and
// Get refreshes recency.
func TestStoreLRUOrder(t *testing.T) {
	s := NewMemoryStore(2, 0)
	var evicted []string
	s.OnEvict(func(e *Entry) { evicted = append(evicted, e.Key) })
	s.Put("a", entry("a", 10))
	s.Put("b", entry("b", 10))
	if _, ok := s.Get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a missing")
	}
	s.Put("c", entry("c", 10))
	if _, ok := s.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	if _, ok := s.Get("c"); !ok {
		t.Error("c (just inserted) was evicted")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted = %v, want [b]", evicted)
	}
}

// TestStoreByteBound: the byte bound displaces oldest entries until the
// footprint fits, and a single oversized entry is still admitted alone.
func TestStoreByteBound(t *testing.T) {
	one := entry("probe", 0).Size() // fixed per-entry overhead
	s := NewMemoryStore(0, 3*one+300)
	s.Put("a", entry("a", 100))
	s.Put("b", entry("b", 100))
	s.Put("c", entry("c", 100))
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	s.Put("d", entry("d", 100))
	if s.Len() != 3 {
		t.Errorf("len after overflow = %d, want 3", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Error("oldest entry a survived byte-bound eviction")
	}
	// Oversized single entry: everything else evicted, the giant stays.
	s.Put("giant", entry("giant", 10_000))
	if _, ok := s.Get("giant"); !ok {
		t.Error("oversized entry was not admitted")
	}
	if s.Len() != 1 {
		t.Errorf("len with oversized entry = %d, want 1", s.Len())
	}
}

// TestStoreReplaceAndRemove: replacing a key re-accounts its bytes; Remove
// and Purge drop entries without counting as evictions.
func TestStoreReplaceAndRemove(t *testing.T) {
	s := NewMemoryStore(0, 0)
	evictions := 0
	s.OnEvict(func(*Entry) { evictions++ })
	s.Put("a", entry("a", 1000))
	big := s.Bytes()
	s.Put("a", entry("a", 10))
	if s.Bytes() >= big {
		t.Errorf("bytes after shrink-replace = %d, want < %d", s.Bytes(), big)
	}
	if s.Len() != 1 {
		t.Errorf("len after replace = %d, want 1", s.Len())
	}
	if !s.Remove("a") || s.Remove("a") {
		t.Error("Remove should report presence exactly once")
	}
	if s.Bytes() != 0 {
		t.Errorf("bytes after remove = %d, want 0", s.Bytes())
	}
	s.Put("x", entry("x", 1))
	s.Put("y", entry("y", 1))
	if n := s.Purge(); n != 2 {
		t.Errorf("purge = %d, want 2", n)
	}
	if evictions != 0 {
		t.Errorf("evictions = %d, want 0 (Remove/Purge are not evictions)", evictions)
	}
}

// TestCacheBeginAccounting: hit/miss/coalesced each count exactly once per
// admission, and the post-leadership re-check turns a lost race into a hit.
func TestCacheBeginAccounting(t *testing.T) {
	c := New(WithMaxEntries(8))
	e, f, leader := c.Begin("k")
	if e != nil || f == nil || !leader {
		t.Fatalf("first Begin = (%v, %v, %v), want miss leadership", e, f, leader)
	}
	e2, f2, leader2 := c.Begin("k")
	if e2 != nil || f2 != f || leader2 {
		t.Fatalf("second Begin should coalesce onto the same flight")
	}
	c.Complete(f, entry("k", 10), nil)
	e3, f3, _ := c.Begin("k")
	if e3 == nil || f3 != nil {
		t.Fatalf("Begin after Complete should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 coalesced", st)
	}
	if st.Entries != 1 || st.InFlight != 0 {
		t.Errorf("stats footprint = %+v, want 1 entry, 0 in flight", st)
	}
}

// TestCacheFailedFlightStaysUncached: a failed leader leaves the key
// uncached, so the next admission re-runs.
func TestCacheFailedFlightStaysUncached(t *testing.T) {
	c := New()
	_, f, leader := c.Begin("k")
	if !leader {
		t.Fatal("want leadership")
	}
	c.Complete(f, nil, errors.New("boom"))
	if e, _ := f.Result(); e != nil {
		t.Error("failed flight carries an entry")
	}
	_, f2, leader2 := c.Begin("k")
	if !leader2 || f2 == f {
		t.Error("after failure the next admission must open a fresh flight")
	}
	c.Complete(f2, entry("k", 1), nil)
}

// TestFlightFollowers: followers see progress fan-out and the final result;
// a thundering herd admits exactly one leader.
func TestFlightFollowers(t *testing.T) {
	c := New()
	const herd = 64
	var leaders, coalesced, progressed atomic.Int64
	var wg sync.WaitGroup
	leaderCh := make(chan *Flight, 1)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, f, leader := c.Begin("k")
			if e != nil {
				t.Error("unexpected hit: nothing was completed yet")
				return
			}
			if leader {
				leaders.Add(1)
				leaderCh <- f
				return
			}
			coalesced.Add(1)
			f.OnProgress(func(done, total int) { progressed.Add(1) })
			select {
			case <-f.Done():
			case <-time.After(10 * time.Second):
				t.Error("follower never unblocked")
				return
			}
			if e, err := f.Result(); err != nil || e == nil || e.Key != "k" {
				t.Errorf("follower result = (%v, %v)", e, err)
			}
		}()
	}
	f := <-leaderCh
	// Let the followers register, then progress and finish.
	for f.Followers() < herd-1 {
		time.Sleep(time.Millisecond)
	}
	f.Progress(1, 2)
	c.Complete(f, entry("k", 10), nil)
	wg.Wait()
	if leaders.Load() != 1 || coalesced.Load() != herd-1 {
		t.Errorf("leaders=%d coalesced=%d, want 1/%d", leaders.Load(), coalesced.Load(), herd-1)
	}
	if progressed.Load() == 0 {
		t.Error("no follower saw the progress fan-out")
	}
	if st := c.Stats(); st.Misses != 1 || st.Coalesced != herd-1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCachePurge: purge empties the store and reports the count; stats
// reflect the empty footprint.
func TestCachePurge(t *testing.T) {
	c := New(WithMaxEntries(16))
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		_, f, _ := c.Begin(key)
		c.Complete(f, entry(key, 10), nil)
	}
	if n := c.Purge(); n != 5 {
		t.Errorf("purge = %d, want 5", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after purge = %+v", st)
	}
}

// TestWithStore: a custom backend slots in behind the same admission logic.
func TestWithStore(t *testing.T) {
	backend := NewMemoryStore(1, 0)
	c := New(WithStore(backend))
	_, f, _ := c.Begin("a")
	c.Complete(f, entry("a", 1), nil)
	_, f, _ = c.Begin("b")
	c.Complete(f, entry("b", 1), nil)
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("stats with bounded custom store = %+v, want 1 entry / 1 eviction", st)
	}
	if e, _, _ := c.Begin("b"); e == nil {
		t.Error("surviving key b should hit")
	}
}

// TestStoreConcurrent hammers one store from many goroutines under -race.
func TestStoreConcurrent(t *testing.T) {
	s := NewMemoryStore(32, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if _, ok := s.Get(key); !ok {
					s.Put(key, entry(key, i%256))
				}
				if i%97 == 0 {
					s.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 32 {
		t.Errorf("len = %d exceeds bound", s.Len())
	}
}

// --- benchmarks (recorded in BENCH_baseline.json) ---

// BenchmarkCacheHit prices the hot path a repeat submission pays instead of
// a simulation: one store lookup under the admission counters.
func BenchmarkCacheHit(b *testing.B) {
	c := New(WithMaxEntries(512))
	_, f, _ := c.Begin("k")
	c.Complete(f, entry("k", 4096), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e, _, _ := c.Begin("k"); e == nil {
			b.Fatal("miss on warm key")
		}
	}
}

// BenchmarkCacheMiss prices a cold admission: leadership plus the
// bookkeeping to resolve the flight (store write included).
func BenchmarkCacheMiss(b *testing.B) {
	c := New(WithMaxEntries(512))
	e := entry("k", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i)
		_, f, leader := c.Begin(key)
		if !leader {
			b.Fatal("expected leadership")
		}
		e.Key = key
		c.Complete(f, e, nil)
	}
}

// BenchmarkCacheCoalesced prices a follower admission against an open
// flight: what each member of a thundering herd pays.
func BenchmarkCacheCoalesced(b *testing.B) {
	c := New(WithMaxEntries(512))
	_, f, _ := c.Begin("k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ff, leader := c.Begin("k"); leader || ff != f {
			b.Fatal("expected coalesce")
		}
	}
	b.StopTimer()
	c.Complete(f, entry("k", 1), nil)
}
