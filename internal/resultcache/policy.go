package resultcache

// lruPolicy is the built-in store's replacement policy: an intrusive
// doubly-linked recency list plus the capacity bounds that decide when the
// store must displace. It is deliberately separated from the map bookkeeping
// in MemoryStore (the modecache store/policy split) so a different policy —
// segmented LRU, cost-aware (evict cheap-to-recompute results first), TTL —
// can replace it without touching storage or accounting.
//
// The policy is not goroutine-safe; MemoryStore serializes access under its
// mutex.
type lruPolicy struct {
	maxEntries int   // 0 = unbounded
	maxBytes   int64 // 0 = unbounded

	// head is most recently used, tail least. Intrusive nodes avoid a
	// second allocation per entry.
	head, tail *lruNode
}

// lruNode is one entry's position in the recency list.
type lruNode struct {
	key        string
	entry      *Entry
	prev, next *lruNode
}

// overfull reports whether the store must evict at the given footprint.
func (p *lruPolicy) overfull(entries int, bytes int64) bool {
	if p.maxEntries > 0 && entries > p.maxEntries {
		return true
	}
	if p.maxBytes > 0 && bytes > p.maxBytes {
		return true
	}
	return false
}

// push inserts n as most recently used.
func (p *lruPolicy) push(n *lruNode) {
	n.prev, n.next = nil, p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

// touch marks n most recently used.
func (p *lruPolicy) touch(n *lruNode) {
	if p.head == n {
		return
	}
	p.unlink(n)
	p.push(n)
}

// oldest returns the next eviction victim (nil when empty).
func (p *lruPolicy) oldest() *lruNode { return p.tail }

// remove unlinks n from the recency list.
func (p *lruPolicy) remove(n *lruNode) { p.unlink(n) }

func (p *lruPolicy) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if p.head == n {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if p.tail == n {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// reset empties the recency list.
func (p *lruPolicy) reset() { p.head, p.tail = nil, nil }
