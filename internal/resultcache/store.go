package resultcache

import "sync"

// Store is the persistence seam behind the cache: fingerprint-keyed access
// to rendered results. Implementations must be safe for concurrent use.
// The built-in MemoryStore is a bounded in-process LRU; the interface is
// deliberately small so alternative backends (disk spill, a shared network
// tier) can slot in via WithStore without touching admission.
type Store interface {
	// Get returns the entry for key, if present. A Get marks the entry
	// recently used where the backend tracks recency.
	Get(key string) (*Entry, bool)
	// Put inserts or replaces the entry for key, evicting as needed to
	// respect the backend's bounds.
	Put(key string, e *Entry)
	// Remove drops one key, reporting whether it was present.
	Remove(key string) bool
	// Purge drops everything, returning how many entries were removed.
	Purge() int
	// Len and Bytes report the current footprint.
	Len() int
	Bytes() int64
}

// EvictionReporter is implemented by stores that can report displaced
// entries; the cache uses it to drive its eviction counter.
type EvictionReporter interface {
	OnEvict(func(*Entry))
}

// MemoryStore is the built-in Store: a mutex-guarded map with LRU eviction
// bounded by entry count and accounted bytes. The zero value is not usable;
// construct with NewMemoryStore.
type MemoryStore struct {
	mu      sync.Mutex
	entries map[string]*lruNode
	policy  lruPolicy
	bytes   int64
	onEvict func(*Entry)
}

// NewMemoryStore builds a store bounded to maxEntries entries and maxBytes
// accounted bytes (0 disables that bound). A single entry larger than
// maxBytes is still admitted alone: refusing it would make the largest
// results — exactly the ones worth caching — permanently uncacheable.
func NewMemoryStore(maxEntries int, maxBytes int64) *MemoryStore {
	return &MemoryStore{
		entries: map[string]*lruNode{},
		policy:  lruPolicy{maxEntries: maxEntries, maxBytes: maxBytes},
	}
}

// OnEvict registers a callback invoked (outside the lock's critical
// operations but under the store mutex) for every displaced entry.
func (s *MemoryStore) OnEvict(fn func(*Entry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEvict = fn
}

// Get returns the entry for key and marks it most recently used.
func (s *MemoryStore) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.policy.touch(n)
	return n.entry, true
}

// Put inserts or replaces key, then evicts least-recently-used entries
// until the policy's bounds hold again.
func (s *MemoryStore) Put(key string, e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.entry.Size()
		s.policy.remove(old)
		delete(s.entries, key)
	}
	n := &lruNode{key: key, entry: e}
	s.policy.push(n)
	s.entries[key] = n
	s.bytes += e.Size()
	for s.policy.overfull(len(s.entries), s.bytes) && len(s.entries) > 1 {
		s.evictOldest()
	}
	// A single oversized entry stays resident alone; evict it only when the
	// entry bound itself says so.
	if s.policy.maxEntries > 0 && len(s.entries) > s.policy.maxEntries {
		s.evictOldest()
	}
}

// evictOldest drops the least-recently-used entry. Caller holds the mutex.
func (s *MemoryStore) evictOldest() {
	n := s.policy.oldest()
	if n == nil {
		return
	}
	s.policy.remove(n)
	delete(s.entries, n.key)
	s.bytes -= n.entry.Size()
	if s.onEvict != nil {
		s.onEvict(n.entry)
	}
}

// Remove drops one key.
func (s *MemoryStore) Remove(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		return false
	}
	s.policy.remove(n)
	delete(s.entries, key)
	s.bytes -= n.entry.Size()
	return true
}

// Purge drops every entry (not counted as evictions: purges are operator
// actions, evictions are capacity pressure).
func (s *MemoryStore) Purge() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.entries)
	s.entries = map[string]*lruNode{}
	s.policy.reset()
	s.bytes = 0
	return n
}

// Len reports the resident entry count.
func (s *MemoryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the accounted resident bytes.
func (s *MemoryStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
