// Package resultcache is the content-addressed result cache in front of the
// simulation job service. The simulator is deterministic by construction
// (the golden tests byte-diff -j1 vs -j8 and HTTP vs CLI), so a canonical
// job fingerprint fully determines the rendered result bytes — which makes
// repeat submissions a map lookup instead of milliseconds of simulation.
//
// The package splits three concerns, in the modecache idiom
// (store / policy / metrics):
//
//   - Store (store.go) is the persistence seam: Get/Put/Remove/Purge over
//     fingerprint-keyed entries. The built-in MemoryStore is a bounded
//     in-process LRU; alternative backends (disk, redis, shared tier) plug
//     in via WithStore without touching the admission logic.
//   - policy (policy.go) decides what the built-in store evicts and when:
//     recency order plus entry- and byte-capacity bounds.
//   - Cache (this file) fronts the store with admission bookkeeping — the
//     hit/miss/coalesced/eviction/bytes accounting the service exports on
//     /metrics and /v1/cache/stats — and with singleflight admission
//     (flight.go): concurrent submissions of one fingerprint collapse onto
//     a single in-flight simulation, so a thundering herd of N identical
//     sweeps costs exactly one run.
package resultcache

import (
	"encoding/json"
	"sync/atomic"

	"timecache/internal/stats"
)

// Entry is one cached, fully rendered job result. Entries are immutable
// once published: the service hands the same Entry (and Table) to every
// hit, so nothing may write through these pointers after Put.
type Entry struct {
	// Key is the content address (the canonical spec fingerprint).
	Key string
	// CSV and Markdown are the rendered result bytes, byte-identical to a
	// cold run by construction.
	CSV      []byte
	Markdown []byte
	// Table is the structured result, for renderings that embed per-job
	// fields (the JSON result format carries the job id).
	Table *stats.Table
	// Meta is opaque producer metadata replayed to every hit — the job
	// service stores the producing run's resource snapshot and progress
	// totals here.
	Meta json.RawMessage
}

// Size is the entry's accounted footprint in bytes: the rendered payloads
// plus key and metadata, with a small fixed overhead standing in for the
// structured table (whose cells the CSV already mirrors). The byte bound is
// an accounting bound, not an allocator measurement.
func (e *Entry) Size() int64 {
	const entryOverhead = 256
	return int64(len(e.Key) + len(e.CSV) + len(e.Markdown) + len(e.Meta) + entryOverhead)
}

// Stats is a point-in-time snapshot of the cache's accounting, served on
// GET /v1/cache/stats and folded into /metrics.
type Stats struct {
	// Hits are admissions served straight from the store.
	Hits uint64 `json:"hits"`
	// Misses are admissions that led a new simulation.
	Misses uint64 `json:"misses"`
	// Coalesced are admissions that attached to another submission's
	// in-flight simulation (singleflight followers).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries the built-in store displaced to stay within
	// its bounds (custom backends report their own evictions, if any).
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes are the store's current footprint.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// CapEntries and CapBytes echo the configured bounds (0 = unbounded).
	CapEntries int   `json:"capacity_entries"`
	CapBytes   int64 `json:"capacity_bytes"`
	// InFlight is the number of fingerprints currently being simulated.
	InFlight int `json:"in_flight"`
}

// Cache combines the store, the admission singleflight group, and the
// metrics. All methods are safe for concurrent use.
type Cache struct {
	store Store
	group *Group

	capEntries int
	capBytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// Option configures a Cache.
type Option func(*config)

type config struct {
	maxEntries int
	maxBytes   int64
	store      Store
}

// WithMaxEntries bounds the built-in store's entry count (0 = unbounded).
// Ignored when WithStore supplies a custom backend.
func WithMaxEntries(n int) Option { return func(c *config) { c.maxEntries = n } }

// WithMaxBytes bounds the built-in store's accounted bytes (0 = unbounded).
// Ignored when WithStore supplies a custom backend.
func WithMaxBytes(n int64) Option { return func(c *config) { c.maxBytes = n } }

// WithStore replaces the built-in memory store with a custom backend. The
// backend owns its own bounds; the cache's eviction counter then only moves
// if the backend reports through an EvictionReporter.
func WithStore(s Store) Option { return func(c *config) { c.store = s } }

// New builds a cache. With no options the store is an unbounded in-memory
// LRU; production callers set WithMaxEntries/WithMaxBytes (the
// timecache-serve defaults are 512 entries / 256 MiB).
func New(opts ...Option) *Cache {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	c := &Cache{group: NewGroup(), capEntries: cfg.maxEntries, capBytes: cfg.maxBytes}
	if cfg.store != nil {
		c.store = cfg.store
		c.capEntries, c.capBytes = 0, 0
	} else {
		c.store = NewMemoryStore(cfg.maxEntries, cfg.maxBytes)
	}
	if er, ok := c.store.(EvictionReporter); ok {
		er.OnEvict(func(*Entry) { c.evictions.Add(1) })
	}
	return c
}

// Begin resolves one admission for key and counts it exactly once:
//
//   - entry != nil: a hit — serve the cached result, no flight involved.
//   - flight != nil, leader true: a miss — the caller owns the simulation
//     and MUST eventually call Complete (success or failure), or every
//     follower of the flight blocks forever.
//   - flight != nil, leader false: coalesced — another caller is already
//     simulating this key; wait on flight.Done() and read flight.Result().
//
// The store is re-checked after winning leadership, closing the race where
// the previous leader published between our lookup and our admit — that
// window resolves to a hit instead of a redundant simulation.
func (c *Cache) Begin(key string) (entry *Entry, flight *Flight, leader bool) {
	if e, ok := c.store.Get(key); ok {
		c.hits.Add(1)
		return e, nil, false
	}
	f, isLeader := c.group.Admit(key)
	if !isLeader {
		c.coalesced.Add(1)
		return nil, f, false
	}
	if e, ok := c.store.Get(key); ok {
		f.Finish(e, nil)
		c.hits.Add(1)
		return e, nil, false
	}
	c.misses.Add(1)
	return nil, f, true
}

// Complete finishes a flight the caller leads. On success the entry is
// published to the store and replayed to every follower; on failure the
// error is, and the key stays uncached so the next submission re-runs.
func (c *Cache) Complete(f *Flight, e *Entry, err error) {
	if err == nil && e != nil {
		c.store.Put(e.Key, e)
	}
	f.Finish(e, err)
}

// Lookup reads the store without admission bookkeeping (no counters move).
func (c *Cache) Lookup(key string) (*Entry, bool) { return c.store.Get(key) }

// Seed installs an entry without moving any admission counters. Used when a
// coordinator replays its durable log after a restart: the re-populated
// results should serve future hits, but replay itself is neither a hit nor
// a miss and must not distort the cache statistics.
func (c *Cache) Seed(e *Entry) {
	if e != nil && e.Key != "" {
		c.store.Put(e.Key, e)
	}
}

// Purge drops every cached entry, returning how many were removed.
// In-flight simulations are not interrupted; they re-publish on completion.
func (c *Cache) Purge() int { return c.store.Purge() }

// Stats snapshots the cache accounting.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Coalesced:  c.coalesced.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    c.store.Len(),
		Bytes:      c.store.Bytes(),
		CapEntries: c.capEntries,
		CapBytes:   c.capBytes,
		InFlight:   c.group.Len(),
	}
}
