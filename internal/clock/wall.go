// Wall time for the service layer.
//
// The simulator's cycle clock (Clock) is deterministic by construction; the
// job service's wall timestamps historically were not, which made every
// timeout and drain test a race against real time. WallClock is the
// injectable seam: production code uses Real, tests use a Fake whose Advance
// fires timers deterministically. Server code must not call time.Now or
// time.AfterFunc directly — the discipline the simulation side has always
// had, extended to the daemon.
package clock

import (
	"sort"
	"sync"
	"time"
)

// WallClock abstracts wall time: timestamps and one-shot timers. Implemented
// by Real (production) and *Fake (tests).
type WallClock interface {
	// Now returns the current wall time.
	Now() time.Time
	// AfterFunc runs f after d has elapsed, on its own goroutine for Real
	// and synchronously inside Advance for Fake. Stop prevents a firing
	// that has not happened yet.
	AfterFunc(d time.Duration, f func()) WallTimer
}

// WallTimer is a stoppable one-shot timer returned by AfterFunc.
type WallTimer interface {
	// Stop cancels the timer, reporting whether it prevented the firing.
	Stop() bool
}

// Real is the production WallClock backed by package time.
type Real struct{}

// Now implements WallClock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements WallClock.
func (Real) AfterFunc(d time.Duration, f func()) WallTimer { return time.AfterFunc(d, f) }

// Fake is a manually advanced WallClock for tests. Timers fire inside
// Advance, on the calling goroutine, in deadline order; equal deadlines fire
// in registration order. The zero value starts at the zero time; NewFake
// picks a fixed non-zero epoch so timestamps are recognizably synthetic.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers []*fakeTimer
}

type fakeTimer struct {
	f       *Fake
	at      time.Time
	seq     int
	fn      func()
	stopped bool
	fired   bool
}

// NewFake returns a Fake clock starting at start; a zero start picks
// 2000-01-01T00:00:00Z.
func NewFake(start time.Time) *Fake {
	if start.IsZero() {
		start = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Fake{now: start}
}

// Now implements WallClock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// AfterFunc implements WallClock. A non-positive d fires on the next
// Advance (of any amount), never synchronously, so callers observe the same
// "timer fires later" contract Real gives them.
func (f *Fake) AfterFunc(d time.Duration, fn func()) WallTimer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{f: f, at: f.now.Add(d), seq: f.seq, fn: fn}
	f.seq++
	f.timers = append(f.timers, t)
	return t
}

// Stop implements WallTimer.
func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves the clock forward by d and fires every timer whose deadline
// has been reached, in deadline order. Callbacks run on the caller's
// goroutine with the clock unlocked, so they may read Now or register new
// timers; timers registered during Advance fire only if their deadline is
// within the already-advanced time.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		due := f.due(target)
		if len(due) == 0 {
			break
		}
		for _, t := range due {
			f.now = t.at
			t.fired = true
			f.mu.Unlock()
			t.fn()
			f.mu.Lock()
		}
	}
	f.now = target
	f.mu.Unlock()
}

// due collects (and marks) unfired timers with deadlines at or before
// target, sorted by (deadline, registration). Caller holds f.mu.
func (f *Fake) due(target time.Time) []*fakeTimer {
	var due []*fakeTimer
	kept := f.timers[:0]
	for _, t := range f.timers {
		switch {
		case t.stopped || t.fired:
		case !t.at.After(target):
			due = append(due, t)
		default:
			kept = append(kept, t)
		}
	}
	f.timers = kept
	sort.SliceStable(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		return due[i].seq < due[j].seq
	})
	return due
}
