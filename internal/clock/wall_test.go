package clock

import (
	"testing"
	"time"
)

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake(time.Time{})
	start := f.Now()
	if start.IsZero() {
		t.Fatal("NewFake with zero start should pick a non-zero epoch")
	}
	f.Advance(90 * time.Second)
	if got := f.Now().Sub(start); got != 90*time.Second {
		t.Fatalf("advanced %s, want 90s", got)
	}
}

func TestFakeTimerFiresInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Time{})
	var order []string
	f.AfterFunc(3*time.Second, func() { order = append(order, "c") })
	f.AfterFunc(1*time.Second, func() { order = append(order, "a") })
	f.AfterFunc(2*time.Second, func() { order = append(order, "b") })
	f.AfterFunc(10*time.Second, func() { order = append(order, "late") })
	f.Advance(5 * time.Second)
	if got := len(order); got != 3 {
		t.Fatalf("fired %d timers, want 3 (%v)", got, order)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("fire order = %v, want [a b c]", order)
	}
	f.Advance(10 * time.Second)
	if len(order) != 4 || order[3] != "late" {
		t.Fatalf("after second advance order = %v", order)
	}
}

func TestFakeTimerClockReadsDeadline(t *testing.T) {
	// A callback reading Now must see its own deadline, not the advance
	// target — matching how Real timers observe time.
	f := NewFake(time.Time{})
	start := f.Now()
	var at time.Time
	f.AfterFunc(2*time.Second, func() { at = f.Now() })
	f.Advance(time.Hour)
	if got := at.Sub(start); got != 2*time.Second {
		t.Fatalf("callback saw now = start+%s, want start+2s", got)
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Time{})
	fired := false
	tm := f.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	f.Advance(time.Minute)
	if fired {
		t.Fatal("stopped timer fired")
	}

	tm2 := f.AfterFunc(time.Second, func() {})
	f.Advance(time.Minute)
	if tm2.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestFakeTimerRegisteredDuringAdvance(t *testing.T) {
	// A callback chaining another AfterFunc whose deadline is inside the
	// advance window fires within the same Advance.
	f := NewFake(time.Time{})
	var fired []string
	f.AfterFunc(1*time.Second, func() {
		fired = append(fired, "first")
		f.AfterFunc(1*time.Second, func() { fired = append(fired, "chained") })
	})
	f.Advance(5 * time.Second)
	if len(fired) != 2 || fired[1] != "chained" {
		t.Fatalf("fired = %v, want [first chained]", fired)
	}
}

func TestRealClock(t *testing.T) {
	var c WallClock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now = %s, before %s", now, before)
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
	if tm := c.AfterFunc(time.Hour, func() {}); !tm.Stop() {
		t.Fatal("Stop of pending real timer should report true")
	}
}
