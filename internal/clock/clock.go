// Package clock provides the simulation cycle clock and the truncated
// hardware timestamps used by TimeCache.
//
// The simulator keeps full 64-bit cycle counts in software (the kernel's Ts
// bookkeeping), while the modeled hardware stores only a truncated Tc per
// cache line (32 bits in the paper). Rollover of the truncated counter is
// detected in software by comparing epochs of the full counts, exactly as
// described in the paper (§VI-C).
package clock

import "fmt"

// Cycles is a full-width simulation time in CPU cycles.
type Cycles = uint64

// DefaultTimestampBits is the Tc width used in the paper's evaluation.
const DefaultTimestampBits = 32

// Timestamp is a hardware timestamp truncated to a configured bit width.
type Timestamp uint64

// Trunc returns the hardware timestamp for a full cycle count at the given
// width. Width must be in [1, 64].
func Trunc(now Cycles, bits uint) Timestamp {
	if bits == 0 || bits > 64 {
		panic(fmt.Sprintf("clock: invalid timestamp width %d", bits))
	}
	if bits == 64 {
		return Timestamp(now)
	}
	return Timestamp(now & ((1 << bits) - 1))
}

// Epoch returns the rollover epoch of a full cycle count, i.e. how many times
// a bits-wide counter would have wrapped by time now.
func Epoch(now Cycles, bits uint) uint64 {
	if bits == 0 || bits > 64 {
		panic(fmt.Sprintf("clock: invalid timestamp width %d", bits))
	}
	if bits == 64 {
		return 0
	}
	return now >> bits
}

// RolledOver reports whether a bits-wide hardware counter wrapped between the
// two full cycle counts. This is the software-side rollover check performed
// when a process resumes: if true, all restored s-bits must be reset because
// Tc comparisons against Ts are no longer meaningful.
func RolledOver(ts, now Cycles, bits uint) bool {
	return Epoch(ts, bits) != Epoch(now, bits)
}

// Clock is a monotonic simulation clock. The zero value starts at cycle 0.
type Clock struct {
	now Cycles
}

// Now returns the current cycle count.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycles) Cycles {
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving backwards panics: the
// simulator's interleaving must keep every clock monotonic.
func (c *Clock) AdvanceTo(t Cycles) {
	if t < c.now {
		panic(fmt.Sprintf("clock: time moved backwards: %d -> %d", c.now, t))
	}
	c.now = t
}
