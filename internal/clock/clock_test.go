package clock

import (
	"testing"
	"testing/quick"
)

func TestTrunc(t *testing.T) {
	cases := []struct {
		now  Cycles
		bits uint
		want Timestamp
	}{
		{0, 32, 0},
		{1, 32, 1},
		{1 << 32, 32, 0},
		{(1 << 32) + 5, 32, 5},
		{0xff, 8, 0xff},
		{0x100, 8, 0},
		{0x1ff, 8, 0xff},
		{42, 64, 42},
		{^uint64(0), 64, Timestamp(^uint64(0))},
	}
	for _, c := range cases {
		if got := Trunc(c.now, c.bits); got != c.want {
			t.Errorf("Trunc(%d, %d) = %d, want %d", c.now, c.bits, got, c.want)
		}
	}
}

func TestTruncPanicsOnBadWidth(t *testing.T) {
	for _, bits := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Trunc with width %d did not panic", bits)
				}
			}()
			Trunc(1, bits)
		}()
	}
}

func TestEpoch(t *testing.T) {
	if Epoch(0, 8) != 0 || Epoch(255, 8) != 0 {
		t.Error("epoch of first window must be 0")
	}
	if Epoch(256, 8) != 1 {
		t.Error("epoch after one wrap must be 1")
	}
	if Epoch(1<<33, 32) != 2 {
		t.Error("epoch of 2^33 at 32 bits must be 2")
	}
	if Epoch(^uint64(0), 64) != 0 {
		t.Error("64-bit counter never wraps")
	}
}

func TestRolledOver(t *testing.T) {
	// The paper's 2-decimal-digit illustration: preempt at 98, resume at 105
	// with a counter that wraps every 100 "cycles". Our counters are binary;
	// the analogous case with 8 bits: preempt at 250, resume at 260.
	if !RolledOver(250, 260, 8) {
		t.Error("wrap between 250 and 260 at 8 bits must be detected")
	}
	if RolledOver(100, 105, 8) {
		t.Error("no wrap between 100 and 105 at 8 bits")
	}
	if RolledOver(0, 1<<32-1, 32) {
		t.Error("no wrap inside the first 32-bit window")
	}
	if !RolledOver(1<<32-1, 1<<32, 32) {
		t.Error("wrap at the 32-bit boundary must be detected")
	}
}

// Property: within a single epoch, truncated ordering matches full ordering.
func TestTruncOrderWithinEpoch(t *testing.T) {
	f := func(a, b uint32) bool {
		fa, fb := Cycles(a), Cycles(b)
		ta, tb := Trunc(fa, 32), Trunc(fb, 32)
		return (fa < fb) == (ta < tb) && (fa == fb) == (ta == tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RolledOver is false iff both times share an epoch.
func TestRolledOverMatchesEpoch(t *testing.T) {
	f := func(a, b uint64, bitsRaw uint8) bool {
		bits := uint(bitsRaw%64) + 1
		return RolledOver(a, b, bits) == (Epoch(a, bits) != Epoch(b, bits))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	if c.Advance(10) != 10 || c.Now() != 10 {
		t.Fatal("advance by 10")
	}
	c.AdvanceTo(15)
	if c.Now() != 15 {
		t.Fatal("advance to 15")
	}
	c.AdvanceTo(15) // idempotent
	defer func() {
		if recover() == nil {
			t.Error("moving a clock backwards must panic")
		}
	}()
	c.AdvanceTo(5)
}
