package stats

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMPKI(t *testing.T) {
	if !almost(MPKI(14, 1000), 14) {
		t.Error("14 events / 1k instr = 14 MPKI")
	}
	if !almost(MPKI(5, 2000), 2.5) {
		t.Error("5/2000 = 2.5 MPKI")
	}
	if MPKI(5, 0) != 0 {
		t.Error("zero instructions must not divide by zero")
	}
}

func TestNormalizedAndOverhead(t *testing.T) {
	n := Normalized(1013, 1000)
	if !almost(n, 1.013) {
		t.Errorf("normalized = %v", n)
	}
	if !almost(OverheadPct(n), 1.3000000000000042) && math.Abs(OverheadPct(n)-1.3) > 1e-9 {
		t.Errorf("overhead = %v", OverheadPct(n))
	}
	if Normalized(5, 0) != 0 {
		t.Error("zero baseline guarded")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Error("geomean(2,8) = 4")
	}
	if !almost(GeoMean([]float64{1, 1, 1}), 1) {
		t.Error("geomean of ones is 1")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean is 0")
	}
	if !almost(GeoMean([]float64{4, -1, 0}), 4) {
		t.Error("non-positive values skipped")
	}
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("workload", "overhead")
	tb.Add("2Xlbm", 1.0039)
	tb.Add("2Xleslie3d", 1.0751)
	s := tb.String()
	if !strings.Contains(s, "2Xleslie3d") || !strings.Contains(s, "1.0751") {
		t.Fatalf("table output missing data:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "workload,overhead\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
}

// Regression: cells containing commas, quotes, or newlines must be quoted
// per RFC 4180 or the file is corrupt (extra columns, broken rows).
func TestCSVQuoting(t *testing.T) {
	tb := NewTable("name", "note")
	tb.Add("a,b", `say "hi"`)
	tb.Add("line\nbreak", "plain")
	got := tb.CSV()
	want := "name,note\n" +
		`"a,b","say ""hi"""` + "\n" +
		"\"line\nbreak\",plain\n"
	if got != want {
		t.Fatalf("CSV quoting wrong:\ngot  %q\nwant %q", got, want)
	}
	// The encoding must round-trip through a standard CSV parser.
	recs, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("stdlib csv cannot parse output: %v", err)
	}
	if len(recs) != 3 || recs[1][0] != "a,b" || recs[1][1] != `say "hi"` || recs[2][0] != "line\nbreak" {
		t.Fatalf("round-trip mismatch: %q", recs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Error("extremes")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Error("median")
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Error("p25")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty input")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("input mutated")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Add("x", 1.5)
	md := tb.Markdown()
	want := "| a | b |\n| --- | --- |\n| x | 1.5000 |\n"
	if md != want {
		t.Fatalf("markdown = %q, want %q", md, want)
	}
}
