// Package stats aggregates simulation measurements into the quantities the
// paper reports: misses and first accesses per kilo-instruction (MPKI),
// normalized execution time, and geometric means.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MPKI returns events per thousand instructions.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// Normalized returns the normalized execution time (defense / baseline), the
// quantity plotted in Figures 7, 9a, and 10.
func Normalized(defenseCycles, baselineCycles uint64) float64 {
	if baselineCycles == 0 {
		return 0
	}
	return float64(defenseCycles) / float64(baselineCycles)
}

// OverheadPct converts a normalized time to a percentage overhead.
func OverheadPct(normalized float64) float64 { return (normalized - 1) * 100 }

// BinaryChannelBits converts an attack's bit-recovery accuracy over n
// transmitted bits into the capacity of the equivalent binary symmetric
// channel, n·(1 − H(p)) where p is the per-bit error rate: n when every bit
// is recovered, 0 at coin-flip accuracy. Accuracy below 0.5 is folded (a
// consistently wrong channel still carries information).
func BinaryChannelBits(n int, accuracy float64) float64 {
	p := accuracy
	if p < 0.5 {
		p = 1 - p
	}
	if p >= 1 {
		return float64(n)
	}
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	return float64(n) * (1 - h)
}

// GeoMean returns the geometric mean of xs (zero for empty input; any
// non-positive element is skipped, matching how overhead ratios behave).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (zero for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a simple fixed-column text table used by the harness and the
// reproduce tool to print paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are formatted with %v, floats with 4 digits.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// csvQuote escapes one CSV field per RFC 4180: fields containing commas,
// double quotes, or line breaks are wrapped in double quotes with embedded
// quotes doubled; anything else passes through unchanged.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the table as RFC-4180 comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvQuote(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it copies and sorts the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
