package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocZeroedAndRefcounted(t *testing.T) {
	p := NewPhysical(4, 200)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p.Refs(f) != 1 {
		t.Fatalf("fresh frame refs = %d, want 1", p.Refs(f))
	}
	for i, b := range p.Page(f) {
		if b != 0 {
			t.Fatalf("fresh frame byte %d = %d, want 0", i, b)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	p := NewPhysical(2, 200)
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err == nil {
		t.Fatal("third alloc in a 2-frame memory must fail")
	}
}

func TestFreeListReuseZeroes(t *testing.T) {
	p := NewPhysical(1, 200)
	f, _ := p.Alloc()
	p.StoreByte(f.Addr()+7, 0xAB)
	p.Unref(f)
	g, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatalf("expected frame reuse, got %d want %d", g, f)
	}
	if p.LoadByte(g.Addr()+7) != 0 {
		t.Fatal("reused frame must be zeroed")
	}
}

func TestRefUnref(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	p.Ref(f)
	p.Unref(f)
	if p.Refs(f) != 1 {
		t.Fatalf("refs = %d, want 1", p.Refs(f))
	}
	p.Unref(f)
	defer func() {
		if recover() == nil {
			t.Error("access to freed frame must panic")
		}
	}()
	p.LoadByte(f.Addr())
}

func TestReadWriteU64RoundTrip(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	base := f.Addr()
	f2 := func(off16 uint16, v uint64) bool {
		off := uint64(off16) % (PageSize - 8)
		off &^= 7
		p.WriteU64(base+off, v)
		return p.ReadU64(base+off) == v
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossPageAccessPanics(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	defer func() {
		if recover() == nil {
			t.Error("cross-page word access must panic")
		}
	}()
	p.ReadU64(f.Addr() + PageSize - 4)
}

func TestCopyFrameAndSameContents(t *testing.T) {
	p := NewPhysical(4, 200)
	a, _ := p.Alloc()
	for i := 0; i < PageSize; i += 8 {
		p.WriteU64(a.Addr()+uint64(i), uint64(i)*31)
	}
	b, err := p.CopyFrame(a)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SameContents(a, b) {
		t.Fatal("copied frame must match source")
	}
	if p.HashFrame(a) != p.HashFrame(b) {
		t.Fatal("hashes of identical frames must match")
	}
	p.StoreByte(b.Addr(), 1)
	if p.SameContents(a, b) {
		t.Fatal("frames differ after write")
	}
	if p.HashFrame(a) == p.HashFrame(b) {
		t.Fatal("hashes should differ after write (fnv collision would be astonishing here)")
	}
}

func TestFrameAddrRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		fr := Frame(n)
		return FrameOf(fr.Addr()) == fr && FrameOf(fr.Addr()+PageSize-1) == fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatedCount(t *testing.T) {
	p := NewPhysical(8, 200)
	var fs []Frame
	for i := 0; i < 5; i++ {
		f, _ := p.Alloc()
		fs = append(fs, f)
	}
	if p.Allocated() != 5 {
		t.Fatalf("allocated = %d, want 5", p.Allocated())
	}
	p.Unref(fs[2])
	if p.Allocated() != 4 {
		t.Fatalf("allocated = %d, want 4", p.Allocated())
	}
}
