package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocZeroedAndRefcounted(t *testing.T) {
	p := NewPhysical(4, 200)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p.Refs(f) != 1 {
		t.Fatalf("fresh frame refs = %d, want 1", p.Refs(f))
	}
	for i, b := range p.Page(f) {
		if b != 0 {
			t.Fatalf("fresh frame byte %d = %d, want 0", i, b)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	p := NewPhysical(2, 200)
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err == nil {
		t.Fatal("third alloc in a 2-frame memory must fail")
	}
}

func TestFreeListReuseZeroes(t *testing.T) {
	p := NewPhysical(1, 200)
	f, _ := p.Alloc()
	p.StoreByte(f.Addr()+7, 0xAB)
	p.Unref(f)
	g, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatalf("expected frame reuse, got %d want %d", g, f)
	}
	if p.LoadByte(g.Addr()+7) != 0 {
		t.Fatal("reused frame must be zeroed")
	}
}

func TestRefUnref(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	p.Ref(f)
	p.Unref(f)
	if p.Refs(f) != 1 {
		t.Fatalf("refs = %d, want 1", p.Refs(f))
	}
	p.Unref(f)
	defer func() {
		if recover() == nil {
			t.Error("access to freed frame must panic")
		}
	}()
	p.LoadByte(f.Addr())
}

func TestReadWriteU64RoundTrip(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	base := f.Addr()
	f2 := func(off16 uint16, v uint64) bool {
		off := uint64(off16) % (PageSize - 8)
		off &^= 7
		p.WriteU64(base+off, v)
		return p.ReadU64(base+off) == v
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossPageAccessPanics(t *testing.T) {
	p := NewPhysical(2, 200)
	f, _ := p.Alloc()
	defer func() {
		if recover() == nil {
			t.Error("cross-page word access must panic")
		}
	}()
	p.ReadU64(f.Addr() + PageSize - 4)
}

func TestCopyFrameAndSameContents(t *testing.T) {
	p := NewPhysical(4, 200)
	a, _ := p.Alloc()
	for i := 0; i < PageSize; i += 8 {
		p.WriteU64(a.Addr()+uint64(i), uint64(i)*31)
	}
	b, err := p.CopyFrame(a)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SameContents(a, b) {
		t.Fatal("copied frame must match source")
	}
	if p.HashFrame(a) != p.HashFrame(b) {
		t.Fatal("hashes of identical frames must match")
	}
	p.StoreByte(b.Addr(), 1)
	if p.SameContents(a, b) {
		t.Fatal("frames differ after write")
	}
	if p.HashFrame(a) == p.HashFrame(b) {
		t.Fatal("hashes should differ after write (fnv collision would be astonishing here)")
	}
}

func TestFrameAddrRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		fr := Frame(n)
		return FrameOf(fr.Addr()) == fr && FrameOf(fr.Addr()+PageSize-1) == fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatedCount(t *testing.T) {
	p := NewPhysical(8, 200)
	var fs []Frame
	for i := 0; i < 5; i++ {
		f, _ := p.Alloc()
		fs = append(fs, f)
	}
	if p.Allocated() != 5 {
		t.Fatalf("allocated = %d, want 5", p.Allocated())
	}
	p.Unref(fs[2])
	if p.Allocated() != 4 {
		t.Fatalf("allocated = %d, want 4", p.Allocated())
	}
}

// TestSealCopyFromIsolation pins the host-level COW contract: after Seal +
// CopyFrom the two memories alias the same frame buffers, and the first
// store on either side copies its frame privately — writes are never
// visible across the aliasing, in either direction.
func TestSealCopyFromIsolation(t *testing.T) {
	src := NewPhysical(8, 200)
	var fs []Frame
	for i := 0; i < 4; i++ {
		f, _ := src.Alloc()
		src.WriteU64(f.Addr(), uint64(0xA0+i))
		fs = append(fs, f)
	}
	src.Seal()
	dst := NewPhysical(8, 200)
	dst.CopyFrom(src)

	if dst.Allocated() != src.Allocated() {
		t.Fatalf("dst allocated = %d, want %d", dst.Allocated(), src.Allocated())
	}
	for i, f := range fs {
		if got := dst.ReadU64(f.Addr()); got != uint64(0xA0+i) {
			t.Fatalf("dst frame %d reads %#x, want %#x", f, got, 0xA0+i)
		}
	}

	// A write in the fork must not reach the source...
	dst.WriteU64(fs[0].Addr(), 0xDEAD)
	if got := src.ReadU64(fs[0].Addr()); got != 0xA0 {
		t.Fatalf("fork write leaked into source: src reads %#x", got)
	}
	// ...and a write in the (sealed, still running) source must not reach
	// the fork.
	src.StoreByte(fs[1].Addr(), 0xFF)
	if got := dst.ReadU64(fs[1].Addr()); got != 0xA1 {
		t.Fatalf("source write leaked into fork: dst reads %#x", got)
	}
	// Untouched frames still agree.
	if src.ReadU64(fs[2].Addr()) != dst.ReadU64(fs[2].Addr()) {
		t.Fatal("untouched frame diverged")
	}
}

// TestCopyFromSiblingIsolation: two forks of one sealed source are isolated
// from each other, not just from the source.
func TestCopyFromSiblingIsolation(t *testing.T) {
	src := NewPhysical(4, 200)
	f, _ := src.Alloc()
	src.WriteU64(f.Addr(), 42)
	src.Seal()

	a := NewPhysical(4, 200)
	a.CopyFrom(src)
	b := NewPhysical(4, 200)
	b.CopyFrom(src)

	a.WriteU64(f.Addr(), 1)
	b.WriteU64(f.Addr(), 2)
	if got := a.ReadU64(f.Addr()); got != 1 {
		t.Fatalf("fork a reads %d, want 1", got)
	}
	if got := b.ReadU64(f.Addr()); got != 2 {
		t.Fatalf("fork b reads %d, want 2", got)
	}
	if got := src.ReadU64(f.Addr()); got != 42 {
		t.Fatalf("source reads %d, want 42", got)
	}
}

// TestAllocReuseOfSharedFrame: a freed frame whose buffer is aliased by a
// snapshot must come back from Alloc with a fresh zeroed buffer — zeroing in
// place would corrupt the snapshot's view.
func TestAllocReuseOfSharedFrame(t *testing.T) {
	src := NewPhysical(1, 200)
	f, _ := src.Alloc()
	src.WriteU64(f.Addr(), 7)
	src.Seal()
	snap := NewPhysical(1, 200)
	snap.CopyFrom(src)

	src.Unref(f) // frees the frame; its buffer is still aliased by snap
	g, err := src.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatalf("free-list reuse returned frame %d, want %d", g, f)
	}
	for i, b := range src.Page(g) {
		if b != 0 {
			t.Fatalf("reused frame byte %d = %d, want 0", i, b)
		}
	}
	if got := snap.ReadU64(f.Addr()); got != 7 {
		t.Fatalf("snapshot view corrupted by frame reuse: reads %d, want 7", got)
	}
}

// TestCopyFromRewindsGrowth: restoring a small snapshot into a memory that
// had grown past it must truncate the frame table so allocation order
// replays identically.
func TestCopyFromRewindsGrowth(t *testing.T) {
	src := NewPhysical(8, 200)
	a, _ := src.Alloc()
	src.WriteU64(a.Addr(), 11)
	src.Seal()

	dst := NewPhysical(8, 200)
	for i := 0; i < 5; i++ {
		dst.Alloc()
	}
	dst.CopyFrom(src)
	if dst.Allocated() != 1 {
		t.Fatalf("dst allocated = %d, want 1", dst.Allocated())
	}
	b, _ := dst.Alloc()
	c, _ := src.Alloc()
	if b != c {
		t.Fatalf("post-restore alloc order diverged: dst got %d, src got %d", b, c)
	}
}

// TestAllocatedO1AcrossResetAndUnref: the live-frame counter must track
// Alloc/Unref/Reset exactly (it replaced an O(frames) scan).
func TestAllocatedO1AcrossResetAndUnref(t *testing.T) {
	p := NewPhysical(16, 200)
	var fs []Frame
	for i := 0; i < 10; i++ {
		f, _ := p.Alloc()
		fs = append(fs, f)
	}
	p.Ref(fs[0]) // second ref must not change the live count on first Unref
	p.Unref(fs[0])
	if p.Allocated() != 10 {
		t.Fatalf("allocated = %d, want 10 (frame still referenced)", p.Allocated())
	}
	p.Unref(fs[0])
	p.Unref(fs[1])
	if p.Allocated() != 8 {
		t.Fatalf("allocated = %d, want 8", p.Allocated())
	}
	p.Reset()
	if p.Allocated() != 0 {
		t.Fatalf("allocated after Reset = %d, want 0", p.Allocated())
	}
	f, _ := p.Alloc()
	if p.Allocated() != 1 || f != 0 {
		t.Fatalf("first post-Reset alloc: frame %d, allocated %d", f, p.Allocated())
	}
}
