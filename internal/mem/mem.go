// Package mem models physical memory: a frame allocator with reference
// counts (supporting copy-on-write sharing and page deduplication) over
// byte-addressable contents, plus the DRAM latency model that terminates the
// cache hierarchy.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// PageSize is the physical frame and virtual page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Frame identifies a physical frame. Frame numbers are dense and start at 0.
type Frame uint64

// Addr converts a frame number to the physical address of its first byte.
func (f Frame) Addr() uint64 { return uint64(f) << PageShift }

// FrameOf returns the frame containing physical address pa.
func FrameOf(pa uint64) Frame { return Frame(pa >> PageShift) }

// Physical is a physical memory: a set of allocated frames with contents and
// reference counts. The zero value is not usable; use NewPhysical.
type Physical struct {
	frames   []*frameInfo
	free     []Frame
	capacity int
	live     int // frames with refs > 0, maintained by Alloc/Unref/Reset

	// DRAMLatency is the cycles charged for a request serviced by memory.
	DRAMLatency uint64
}

// frameInfo is one frame's contents and bookkeeping. A shared frame's data
// buffer is aliased by a machine snapshot (or by the snapshot's source) and
// must never be written in place: every mutation goes through writable,
// which swaps in a private buffer on first write (host-level copy-on-write).
// This sharing is invisible to the simulation — frame numbers, refcounts,
// and timing are untouched; only the Go-level backing buffers are shared.
// The simulated COW (minor faults on AddressSpace.Translate) is a separate,
// timing-visible mechanism and does not interact with this flag.
type frameInfo struct {
	data   []byte
	refs   int
	shared bool
}

// NewPhysical creates a physical memory with capacity frames and the given
// DRAM access latency in cycles.
func NewPhysical(capacityFrames int, dramLatency uint64) *Physical {
	if capacityFrames <= 0 {
		panic("mem: capacity must be positive")
	}
	return &Physical{capacity: capacityFrames, DRAMLatency: dramLatency}
}

// Alloc allocates a zeroed frame with refcount 1.
func (p *Physical) Alloc() (Frame, error) {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		fi := p.frames[f]
		fi.refs = 1
		p.live++
		if fi.shared {
			// The old buffer is still aliased by a snapshot; zeroing it in
			// place would corrupt the frozen copy. Swap in a private one.
			fi.data = make([]byte, PageSize)
			fi.shared = false
			return f, nil
		}
		for i := range fi.data {
			fi.data[i] = 0
		}
		return f, nil
	}
	if len(p.frames) >= p.capacity {
		return 0, fmt.Errorf("mem: out of physical memory (%d frames)", p.capacity)
	}
	f := Frame(len(p.frames))
	p.frames = append(p.frames, &frameInfo{data: make([]byte, PageSize), refs: 1})
	p.live++
	return f, nil
}

// Reset frees every frame without releasing backing storage, restoring the
// allocation order of a fresh Physical: the free list is rebuilt descending
// so successive Allocs pop frames 0, 1, 2, ... exactly as first-time append
// allocation numbered them. Frame contents are zeroed lazily by Alloc.
func (p *Physical) Reset() {
	p.free = p.free[:0]
	for i := len(p.frames) - 1; i >= 0; i-- {
		p.frames[i].refs = 0
		p.free = append(p.free, Frame(i))
	}
	p.live = 0
}

// Ref increments the reference count of f (e.g. when a second address space
// maps the frame, or when COW duplicates a mapping).
func (p *Physical) Ref(f Frame) {
	p.info(f).refs++
}

// Unref decrements the reference count of f, freeing it when it reaches zero.
func (p *Physical) Unref(f Frame) {
	fi := p.info(f)
	if fi.refs <= 0 {
		panic(fmt.Sprintf("mem: unref of free frame %d", f))
	}
	fi.refs--
	if fi.refs == 0 {
		p.free = append(p.free, f)
		p.live--
	}
}

// Refs returns the current reference count of f.
func (p *Physical) Refs(f Frame) int { return p.info(f).refs }

// Allocated returns the number of live (refcount > 0) frames. O(1): the
// count is maintained by Alloc/Unref/Reset.
func (p *Physical) Allocated() int { return p.live }

// Capacity returns the total number of frames this memory can hold.
func (p *Physical) Capacity() int { return p.capacity }

func (p *Physical) info(f Frame) *frameInfo {
	if int(f) >= len(p.frames) {
		panic(fmt.Sprintf("mem: frame %d out of range (%d allocated)", f, len(p.frames)))
	}
	fi := p.frames[f]
	if fi.refs <= 0 {
		panic(fmt.Sprintf("mem: access to free frame %d", f))
	}
	return fi
}

// writable is the host-COW write barrier: it returns f's frameInfo with a
// buffer that is private to this Physical, breaking buffer sharing with any
// snapshot on the first store to a shared frame.
func (p *Physical) writable(f Frame) *frameInfo {
	fi := p.info(f)
	if fi.shared {
		data := make([]byte, PageSize)
		copy(data, fi.data)
		fi.data = data
		fi.shared = false
	}
	return fi
}

// Page returns the contents of frame f. The returned slice aliases the
// frame; callers must not hold it across a free. Callers write through the
// returned slice (the kernel loader does), so Page counts as a store and
// breaks host-COW sharing.
func (p *Physical) Page(f Frame) []byte { return p.writable(f).data }

// ReadU64 reads the 8-byte little-endian word at physical address pa.
// Accesses must not cross a frame boundary.
func (p *Physical) ReadU64(pa uint64) uint64 {
	off := pa & (PageSize - 1)
	if off > PageSize-8 {
		panic(fmt.Sprintf("mem: unaligned cross-page read at %#x", pa))
	}
	return binary.LittleEndian.Uint64(p.info(FrameOf(pa)).data[off:])
}

// WriteU64 writes the 8-byte little-endian word v at physical address pa.
func (p *Physical) WriteU64(pa uint64, v uint64) {
	off := pa & (PageSize - 1)
	if off > PageSize-8 {
		panic(fmt.Sprintf("mem: unaligned cross-page write at %#x", pa))
	}
	binary.LittleEndian.PutUint64(p.writable(FrameOf(pa)).data[off:], v)
}

// LoadByte reads the byte at physical address pa.
func (p *Physical) LoadByte(pa uint64) byte {
	return p.info(FrameOf(pa)).data[pa&(PageSize-1)]
}

// StoreByte writes the byte at physical address pa.
func (p *Physical) StoreByte(pa uint64, v byte) {
	p.writable(FrameOf(pa)).data[pa&(PageSize-1)] = v
}

// CopyFrame duplicates src into a fresh frame (the COW break path) and
// returns the copy, which has refcount 1.
func (p *Physical) CopyFrame(src Frame) (Frame, error) {
	dst, err := p.Alloc()
	if err != nil {
		return 0, err
	}
	copy(p.frames[dst].data, p.info(src).data)
	return dst, nil
}

// HashFrame returns a content hash of frame f, used by the KSM-style
// deduplication scanner to find identical pages.
func (p *Physical) HashFrame(f Frame) uint64 {
	h := fnv.New64a()
	h.Write(p.info(f).data)
	return h.Sum64()
}

// SameContents reports whether two frames hold identical bytes. Dedup must
// confirm equality after a hash match before merging.
func (p *Physical) SameContents(a, b Frame) bool {
	return bytes.Equal(p.info(a).data, p.info(b).data)
}

// Seal marks every frame's buffer as shared, so the next store to any frame
// copies the buffer first. A machine snapshot calls this on the live
// machine immediately before aliasing its buffers into the frozen copy;
// Seal itself is not concurrency-safe and must not race with forks.
func (p *Physical) Seal() {
	for _, fi := range p.frames {
		fi.shared = true
	}
}

// CopyFrom makes p an exact logical copy of src without copying any page
// contents: every frame of p aliases src's buffer and is marked shared, so
// the first store to a frame copies just that page (near-O(1) fork). src is
// never mutated — src's own frames must already be sealed (snapshots are) —
// so any number of CopyFrom calls may read one src concurrently.
func (p *Physical) CopyFrom(src *Physical) {
	if len(src.frames) > p.capacity {
		panic(fmt.Sprintf("mem: CopyFrom source has %d frames, capacity %d", len(src.frames), p.capacity))
	}
	for len(p.frames) < len(src.frames) {
		p.frames = append(p.frames, &frameInfo{})
	}
	p.frames = p.frames[:len(src.frames)]
	for i, sf := range src.frames {
		df := p.frames[i]
		df.data = sf.data
		df.refs = sf.refs
		df.shared = true
	}
	p.free = append(p.free[:0], src.free...)
	p.live = src.live
}
