// Package sim defines the interfaces between the kernel's scheduler and the
// programs it runs. A Proc is anything executable — the μRISC interpreter
// (internal/vm), a synthetic workload generator (internal/workload), an
// attacker or victim (internal/attack, internal/rsa). The kernel hands each
// Proc an Env that routes memory traffic through the simulated hierarchy,
// charges cycles, and exposes syscalls.
package sim

// Syscall numbers understood by the kernel.
const (
	SysExit   = 0 // terminate the process
	SysYield  = 1 // give up the remainder of the time slice
	SysSleep  = 2 // arg = cycles to sleep
	SysGetPID = 3 // returns the PID
	SysPrint  = 4 // arg is emitted to the process's output log
)

// Env is the execution environment the kernel provides to a running Proc.
// All memory operations take virtual addresses in the process's address
// space and charge the access latency to the process's core clock.
type Env interface {
	// Fetch performs an instruction fetch at vaddr through the L1I.
	Fetch(vaddr uint64)
	// Load reads the 8-byte word at vaddr through the L1D.
	Load(vaddr uint64) uint64
	// Store writes the 8-byte word at vaddr through the L1D.
	Store(vaddr uint64, v uint64)
	// Flush executes clflush for the line containing vaddr.
	Flush(vaddr uint64)
	// Now returns the current cycle count of the process's core. Memory
	// latencies are reflected immediately, so RDTSC-style timing works.
	Now() uint64
	// Tick charges n compute cycles.
	Tick(n uint64)
	// Instret retires n instructions (for MPKI/IPC accounting).
	Instret(n uint64)
	// Syscall invokes a kernel service; the meaning of arg and the return
	// value depend on the syscall number.
	Syscall(num, arg uint64) uint64
	// PID returns the calling process's ID.
	PID() int
}

// Proc is a schedulable program. Step executes one instruction (or one
// bounded unit of work) against env and reports whether the process is
// still running; returning false terminates it. The kernel may preempt
// between Step calls.
type Proc interface {
	Step(env Env) bool
}

// Forker is an optional interface a Proc implements to support machine
// snapshotting: ForkProc returns an independent copy of the process's
// execution state, positioned exactly where the original is, such that
// stepping the copy and stepping the original produce identical instruction
// streams without affecting each other. Procs that do not implement Forker
// cannot be captured by Machine.Snapshot.
type Forker interface {
	ForkProc() Proc
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(env Env) bool

// Step implements Proc.
func (f ProcFunc) Step(env Env) bool { return f(env) }
