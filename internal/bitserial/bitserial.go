// Package bitserial models the paper's bit-serial, timestamp-parallel
// comparison hardware (Figures 5 and 6): a transposed SRAM array holding one
// Tc timestamp per cache line, a shift register holding the resuming
// process's Ts, and a per-bitline peripheral made of two SR latches and two
// AND gates.
//
// The array is stored transposed: plane[i] holds bit i (MSB first) of every
// timestamp, one bit per line. A comparison reads one plane per iteration —
// constant time in the number of timestamp bits, independent of the number
// of cache lines — and produces, per line, whether Tc > Ts (the condition
// under which the line's restored s-bit must be reset).
package bitserial

import "fmt"

// SRLatch is a set-reset latch. Set dominates in this model; the peripheral
// circuit never asserts both inputs in the same iteration.
type SRLatch struct {
	q bool
}

// Apply drives the latch inputs for one iteration and returns Q.
func (l *SRLatch) Apply(s, r bool) bool {
	switch {
	case s:
		l.q = true
	case r:
		l.q = false
	}
	return l.q
}

// Q returns the latch output.
func (l *SRLatch) Q() bool { return l.q }

// Reset clears the latch (the pre-comparison reset pulse).
func (l *SRLatch) Reset() { l.q = false }

// Array is the transposed timestamp SRAM for one cache: `lines` timestamps
// of `bits` width each, stored as bit planes.
type Array struct {
	bits   uint
	lines  int
	planes [][]uint64 // planes[i] = bit (bits-1-i) of every line, packed 64/word

	// Peripherals: one pair of latches per line (per bitline in hardware).
	gt   []SRLatch // latched "Tc > Ts" result
	stop []SRLatch // latched "Tc < Ts, stop comparing" result
}

// NewArray creates a transposed array for the given line count and timestamp
// width in bits (1..64).
func NewArray(lines int, bits uint) *Array {
	if lines <= 0 {
		panic("bitserial: line count must be positive")
	}
	if bits == 0 || bits > 64 {
		panic(fmt.Sprintf("bitserial: invalid timestamp width %d", bits))
	}
	words := (lines + 63) / 64
	planes := make([][]uint64, bits)
	for i := range planes {
		planes[i] = make([]uint64, words)
	}
	return &Array{
		bits:   bits,
		lines:  lines,
		planes: planes,
		gt:     make([]SRLatch, lines),
		stop:   make([]SRLatch, lines),
	}
}

// Lines returns the number of timestamps in the array.
func (a *Array) Lines() int { return a.lines }

// Bits returns the timestamp width.
func (a *Array) Bits() uint { return a.bits }

// Store writes the timestamp for one line through the transpose interface
// (the regular-operation path used when a cache line is filled).
func (a *Array) Store(line int, tc uint64) {
	a.check(line)
	word, bit := line/64, uint(line%64)
	for i := uint(0); i < a.bits; i++ {
		// plane 0 holds the MSB.
		v := (tc >> (a.bits - 1 - i)) & 1
		if v == 1 {
			a.planes[i][word] |= 1 << bit
		} else {
			a.planes[i][word] &^= 1 << bit
		}
	}
}

// Load reads back the timestamp of one line through the transpose interface.
func (a *Array) Load(line int) uint64 {
	a.check(line)
	word, bit := line/64, uint(line%64)
	var tc uint64
	for i := uint(0); i < a.bits; i++ {
		tc <<= 1
		tc |= (a.planes[i][word] >> bit) & 1
	}
	return tc
}

// ShiftRegister holds Ts and shifts out one bit per iteration, MSB first.
type ShiftRegister struct {
	bits uint
	v    uint64
	pos  uint
}

// NewShiftRegister loads Ts into a bits-wide register.
func NewShiftRegister(ts uint64, bits uint) *ShiftRegister {
	if bits == 0 || bits > 64 {
		panic(fmt.Sprintf("bitserial: invalid shift register width %d", bits))
	}
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << bits) - 1
	}
	return &ShiftRegister{bits: bits, v: ts & mask}
}

// Shift returns the next bit, MSB first. Shifting past the end panics: the
// controller runs exactly `bits` iterations.
func (s *ShiftRegister) Shift() bool {
	if s.pos >= s.bits {
		panic("bitserial: shift register exhausted")
	}
	b := (s.v >> (s.bits - 1 - s.pos)) & 1
	s.pos++
	return b == 1
}

// CompareGT runs the full bit-serial comparison against ts and returns, for
// each line, whether Tc > Ts. The returned mask is packed 64 lines per word.
//
// The iteration mirrors Figure 6 exactly: for bit i (MSB first), with a =
// Ts[i] from the shift register and b = Tc[i] from the bit plane,
//
//	gt latch set   <- b AND NOT a AND NOT stop.Q  (Tc proven greater)
//	stop latch set <- a AND NOT b AND NOT gt.Q    (Tc proven smaller)
//
// Exactly `bits` iterations run regardless of data — the comparison is
// constant time, which is what keeps the context-switch update itself from
// becoming a timing channel.
func (a *Array) CompareGT(ts uint64) []uint64 {
	return a.CompareGTInto(ts, make([]uint64, (a.lines+63)/64))
}

// CompareGTInto is CompareGT writing the packed result into dst, which must
// have (Lines()+63)/64 words. It performs no allocation, so a caller that
// compares on every context switch can reuse one buffer. Returns dst.
func (a *Array) CompareGTInto(ts uint64, dst []uint64) []uint64 {
	if want := (a.lines + 63) / 64; len(dst) != want {
		panic(fmt.Sprintf("bitserial: result buffer has %d words, want %d", len(dst), want))
	}
	for i := range a.gt {
		a.gt[i].Reset()
		a.stop[i].Reset()
	}
	// A stack-allocated register: the constructor's pointer return would
	// escape to the heap, and this path must stay allocation-free.
	mask := ^uint64(0)
	if a.bits < 64 {
		mask = (1 << a.bits) - 1
	}
	sr := ShiftRegister{bits: a.bits, v: ts & mask}
	for i := uint(0); i < a.bits; i++ {
		tsBit := sr.Shift()
		plane := a.planes[i]
		for line := 0; line < a.lines; line++ {
			tcBit := (plane[line/64]>>(uint(line%64)))&1 == 1
			decided := a.gt[line].Q() || a.stop[line].Q()
			a.gt[line].Apply(tcBit && !tsBit && !decided, false)
			a.stop[line].Apply(tsBit && !tcBit && !decided, false)
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	for line := 0; line < a.lines; line++ {
		if a.gt[line].Q() {
			dst[line/64] |= 1 << uint(line%64)
		}
	}
	return dst
}

// Iterations returns the number of bit-serial steps a comparison takes; it
// is always exactly Bits(), independent of the stored data. Exposed so
// tests can assert the constant-time property structurally.
func (a *Array) Iterations() uint { return a.bits }

func (a *Array) check(line int) {
	if line < 0 || line >= a.lines {
		panic(fmt.Sprintf("bitserial: line %d out of range [0,%d)", line, a.lines))
	}
}

// ReferenceGT computes the same Tc > Ts mask with plain integer compares.
// It exists so property tests can verify the gate-level model, and as the
// fast path used by the simulator when gate-level fidelity is not requested.
func ReferenceGT(tcs []uint64, ts uint64, bits uint) []uint64 {
	return ReferenceGTInto(tcs, ts, bits, make([]uint64, (len(tcs)+63)/64))
}

// ReferenceGTInto is ReferenceGT writing the packed result into dst, which
// must have (len(tcs)+63)/64 words; no allocation. Returns dst.
func ReferenceGTInto(tcs []uint64, ts uint64, bits uint, dst []uint64) []uint64 {
	if want := (len(tcs) + 63) / 64; len(dst) != want {
		panic(fmt.Sprintf("bitserial: result buffer has %d words, want %d", len(dst), want))
	}
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << bits) - 1
	}
	ts &= mask
	for i := range dst {
		dst[i] = 0
	}
	for i, tc := range tcs {
		if tc&mask > ts {
			dst[i/64] |= 1 << uint(i%64)
		}
	}
	return dst
}
