package bitserial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSRLatch(t *testing.T) {
	var l SRLatch
	if l.Q() {
		t.Fatal("latch must start reset")
	}
	if !l.Apply(true, false) {
		t.Fatal("set must drive Q high")
	}
	if !l.Apply(false, false) {
		t.Fatal("latch must hold")
	}
	if l.Apply(false, true) {
		t.Fatal("reset must drive Q low")
	}
	l.Apply(true, false)
	l.Reset()
	if l.Q() {
		t.Fatal("Reset must clear")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	a := NewArray(130, 32) // >2 words of lines, odd count
	vals := []uint64{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 1 << 31, 0x12345678}
	for i, v := range vals {
		a.Store(i*17, v)
	}
	for i, v := range vals {
		if got := a.Load(i * 17); got != v {
			t.Errorf("line %d: load = %#x, want %#x", i*17, got, v)
		}
	}
}

func TestStoreTruncatesToWidth(t *testing.T) {
	a := NewArray(4, 8)
	a.Store(0, 0x1FF) // 9 bits; top bit must be dropped
	if got := a.Load(0); got != 0xFF {
		t.Fatalf("load = %#x, want 0xFF", got)
	}
}

func TestShiftRegisterMSBFirst(t *testing.T) {
	sr := NewShiftRegister(0b1100, 4)
	want := []bool{true, true, false, false}
	for i, w := range want {
		if got := sr.Shift(); got != w {
			t.Fatalf("bit %d = %v, want %v", i, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("shifting past the end must panic")
		}
	}()
	sr.Shift()
}

func TestCompareGTPaperExample(t *testing.T) {
	// From the paper §V-C2: the greater of 1100 and 0101 is decided at the
	// MSB. With Tc=1100 and Ts=0101, Tc > Ts must be flagged.
	a := NewArray(2, 4)
	a.Store(0, 0b1100)
	a.Store(1, 0b0101)
	mask := a.CompareGT(0b0101)
	if mask[0]&1 == 0 {
		t.Error("line 0 (Tc=1100 > Ts=0101) must be flagged")
	}
	if mask[0]&2 != 0 {
		t.Error("line 1 (Tc=0101 == Ts) must not be flagged")
	}
}

func TestCompareGTEdges(t *testing.T) {
	a := NewArray(3, 32)
	a.Store(0, 100) // == Ts
	a.Store(1, 99)  // < Ts
	a.Store(2, 101) // > Ts
	mask := a.CompareGT(100)
	if mask[0]&0b001 != 0 {
		t.Error("equal timestamps: not greater")
	}
	if mask[0]&0b010 != 0 {
		t.Error("smaller timestamp: not greater")
	}
	if mask[0]&0b100 == 0 {
		t.Error("larger timestamp: must be greater")
	}
}

// Property: the gate-level comparator matches plain unsigned comparison for
// random timestamps at several widths.
func TestCompareGTMatchesReference(t *testing.T) {
	for _, bits := range []uint{1, 4, 8, 17, 32, 64} {
		bits := bits
		f := func(seed int64, tsRaw uint64) bool {
			rng := rand.New(rand.NewSource(seed))
			const lines = 100
			a := NewArray(lines, bits)
			tcs := make([]uint64, lines)
			for i := range tcs {
				tcs[i] = rng.Uint64()
				a.Store(i, tcs[i])
			}
			got := a.CompareGT(tsRaw)
			want := ReferenceGT(tcs, tsRaw, bits)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("width %d: %v", bits, err)
		}
	}
}

func TestCompareIsRepeatable(t *testing.T) {
	// Latches must be reset between comparisons: a second compare with a
	// different Ts must not be polluted by the first.
	a := NewArray(1, 8)
	a.Store(0, 50)
	if m := a.CompareGT(10); m[0]&1 == 0 {
		t.Fatal("50 > 10")
	}
	if m := a.CompareGT(200); m[0]&1 != 0 {
		t.Fatal("50 < 200: stale latch state leaked into second comparison")
	}
}

func TestConstantIterationCount(t *testing.T) {
	a := NewArray(8, 32)
	if a.Iterations() != 32 {
		t.Fatalf("iterations = %d, want 32", a.Iterations())
	}
}

func TestReferenceGTWidthMasking(t *testing.T) {
	// At 8 bits, 0x1FF and 0x0FF are the same timestamp.
	m := ReferenceGT([]uint64{0x1FF}, 0xFF, 8)
	if m[0]&1 != 0 {
		t.Error("0x1FF masked to 8 bits equals Ts=0xFF; not greater")
	}
}

func BenchmarkCompareGT32K(b *testing.B) {
	a := NewArray(32768, 32) // 2 MB LLC worth of lines
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 32768; i++ {
		a.Store(i, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CompareGT(uint64(i))
	}
}
