package isa

import (
	"strings"
	"testing"
)

func TestOpNamesBijective(t *testing.T) {
	for name, op := range OpByName {
		if op.String() != name {
			t.Errorf("OpByName[%q] = %v, String() = %q", name, op, op.String())
		}
	}
	if len(OpByName) != int(numOps) {
		t.Errorf("OpByName has %d entries, want %d", len(OpByName), numOps)
	}
}

func TestUnknownOpString(t *testing.T) {
	if got := Op(200).String(); !strings.HasPrefix(got, "Op(") {
		t.Errorf("unknown op string: %q", got)
	}
}

func TestInstrAt(t *testing.T) {
	p := &Program{
		TextBase: 0x1000,
		Instrs:   []Instr{{Op: NOP}, {Op: HALT}},
	}
	in, err := p.InstrAt(0x1000)
	if err != nil || in.Op != NOP {
		t.Fatalf("InstrAt(base) = %v, %v", in, err)
	}
	in, err = p.InstrAt(0x1008)
	if err != nil || in.Op != HALT {
		t.Fatalf("InstrAt(base+8) = %v, %v", in, err)
	}
	if _, err := p.InstrAt(0x1010); err == nil {
		t.Error("pc past end must error")
	}
	if _, err := p.InstrAt(0x1004); err == nil {
		t.Error("misaligned pc must error")
	}
	if _, err := p.InstrAt(0x800); err == nil {
		t.Error("pc before text must error")
	}
}

func TestLabelLookup(t *testing.T) {
	p := &Program{Labels: map[string]uint64{"x": 0x42}}
	if a, err := p.Label("x"); err != nil || a != 0x42 {
		t.Fatalf("Label(x) = %#x, %v", a, err)
	}
	if _, err := p.Label("missing"); err == nil {
		t.Error("missing label must error")
	}
}

func TestInstrStringCoversAllOps(t *testing.T) {
	for name, op := range OpByName {
		in := Instr{Op: op, Rd: 1, Rs: 2, Rt: 3, Imm: 4}
		s := in.String()
		if s == "" {
			t.Errorf("empty String for %s", name)
		}
		if strings.HasPrefix(s, "Op(") {
			t.Errorf("String for %s fell through to default: %q", name, s)
		}
	}
}

func TestRegisterConventions(t *testing.T) {
	if RZero != 0 || RSP != 15 || NumRegs != 16 {
		t.Fatal("register conventions changed; assembler and VM depend on these")
	}
	if InstrBytes != 8 {
		t.Fatal("instruction size must be 8 bytes (8 per cache line)")
	}
}
