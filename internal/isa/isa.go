// Package isa defines μRISC, the small instruction set the simulator's
// programs are written in: 16 general registers, 64-bit words, loads and
// stores, unsigned compare-and-branch, a stack, and the side-channel
// primitives the paper's attacks require — CLFLUSH, RDTSC, and FENCE.
//
// Every instruction occupies 8 bytes of the text segment, so a 64-byte
// cache line holds 8 instructions; instruction fetches go through the L1I.
package isa

import "fmt"

// InstrBytes is the encoded size of one instruction in the text segment.
const InstrBytes = 8

// Register conventions: R0 is hardwired to zero; R15 is the stack pointer.
const (
	NumRegs = 16
	RZero   = 0
	RSP     = 15
)

// Op is a μRISC opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	HALT
	MOVI    // rd <- imm
	MOV     // rd <- rs
	ADD     // rd <- rs + rt
	ADDI    // rd <- rs + imm
	SUB     // rd <- rs - rt
	MUL     // rd <- rs * rt
	DIV     // rd <- rs / rt (unsigned; rt==0 traps)
	MOD     // rd <- rs % rt (unsigned; rt==0 traps)
	AND     // rd <- rs & rt
	OR      // rd <- rs | rt
	XOR     // rd <- rs ^ rt
	NOT     // rd <- ^rs
	SHL     // rd <- rs << (rt & 63)
	SHLI    // rd <- rs << (imm & 63)
	SHR     // rd <- rs >> (rt & 63) (logical)
	SHRI    // rd <- rs >> (imm & 63)
	LD      // rd <- mem[rs + imm]
	ST      // mem[rs + imm] <- rt
	CLFLUSH // flush line containing rs + imm
	RDTSC   // rd <- cycle counter
	FENCE   // order memory and rdtsc (timing fence)
	JMP     // pc <- imm
	BEQ     // if rs == rt: pc <- imm
	BNE     // if rs != rt: pc <- imm
	BLT     // if rs <  rt (unsigned): pc <- imm
	BGE     // if rs >= rt (unsigned): pc <- imm
	CALL    // push pc+8; pc <- imm
	RET     // pc <- pop
	PUSH    // sp -= 8; mem[sp] <- rs
	POP     // rd <- mem[sp]; sp += 8
	SYS     // syscall: number imm, argument r1, result -> r1
	numOps
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", MOVI: "movi", MOV: "mov", ADD: "add",
	ADDI: "addi", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", NOT: "not", SHL: "shl", SHLI: "shli",
	SHR: "shr", SHRI: "shri", LD: "ld", ST: "st", CLFLUSH: "clflush",
	RDTSC: "rdtsc", FENCE: "fence", JMP: "jmp", BEQ: "beq", BNE: "bne",
	BLT: "blt", BGE: "bge", CALL: "call", RET: "ret", PUSH: "push",
	POP: "pop", SYS: "sys",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// OpByName maps mnemonic to opcode; the assembler uses it.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Instr is one decoded μRISC instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int64
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT, RET, FENCE:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, [r%d%+d]", i.Rd, i.Rs, i.Imm)
	case ST:
		return fmt.Sprintf("st [r%d%+d], r%d", i.Rs, i.Imm, i.Rt)
	case CLFLUSH:
		return fmt.Sprintf("clflush [r%d%+d]", i.Rs, i.Imm)
	case JMP, CALL:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Rs, i.Rt, uint64(i.Imm))
	case SYS:
		return fmt.Sprintf("sys %d", i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d (imm=%d)", i.Op, i.Rd, i.Rs, i.Rt, i.Imm)
	}
}

// Program is an assembled μRISC binary: a text segment of instructions plus
// initialized private and shared data segments.
type Program struct {
	// TextBase is the virtual address of Instrs[0]; instruction k lives at
	// TextBase + k*InstrBytes.
	TextBase uint64
	Instrs   []Instr

	// DataBase/Data is the private initialized data segment.
	DataBase uint64
	Data     []byte

	// SharedBase/Shared is the segment the loader maps to shared physical
	// frames (a shared library image): processes loaded with the same share
	// key reference the same frames.
	SharedBase uint64
	Shared     []byte

	// StackTop is the initial stack pointer (stack grows down).
	StackTop uint64
	// StackSize is the reserved stack region size in bytes.
	StackSize uint64

	// Labels maps every assembler label to its virtual address.
	Labels map[string]uint64

	// Entry is the initial PC.
	Entry uint64
}

// InstrAt returns the instruction at virtual address pc, or an error if pc
// is outside the text segment or misaligned.
func (p *Program) InstrAt(pc uint64) (Instr, error) {
	if pc < p.TextBase || (pc-p.TextBase)%InstrBytes != 0 {
		return Instr{}, fmt.Errorf("isa: bad pc %#x", pc)
	}
	k := (pc - p.TextBase) / InstrBytes
	if k >= uint64(len(p.Instrs)) {
		return Instr{}, fmt.Errorf("isa: pc %#x past end of text", pc)
	}
	return p.Instrs[k], nil
}

// Label returns the address of a label, or an error if undefined.
func (p *Program) Label(name string) (uint64, error) {
	a, ok := p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("isa: undefined label %q", name)
	}
	return a, nil
}
