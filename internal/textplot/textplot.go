// Package textplot renders simple ASCII bar charts for the reproduce tool,
// approximating the paper's figures in terminal output.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal bar chart.
type Chart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Baseline subtracts a reference value before scaling (useful for
	// normalized-execution-time charts where 1.0 is the floor).
	Baseline float64
	// Format renders the numeric value (default "%.4f").
	Format string
}

// Add appends a bar.
func (c *Chart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (c *Chart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.Format
	if format == "" {
		format = "%.4f"
	}
	labelW := 0
	maxV := 0.0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if v := b.Value - c.Baseline; v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(c.Title)))
		sb.WriteByte('\n')
	}
	for _, b := range c.Bars {
		v := b.Value - c.Baseline
		n := 0
		if maxV > 0 && v > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&sb, "%-*s | %s %s\n", labelW, b.Label,
			strings.Repeat("#", n), fmt.Sprintf(format, b.Value))
	}
	return sb.String()
}

// sparkLevels are the block characters Sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character sparkline scaled to
// [min, max] of the data. Width 0 keeps one character per value; otherwise
// the series is resampled to the given width by bucket-averaging.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > 0 && len(values) > width {
		resampled := make([]float64, width)
		for i := range resampled {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range values[lo:hi] {
				sum += v
			}
			resampled[i] = sum / float64(hi-lo)
		}
		values = resampled
	}
	minV, maxV := values[0], values[0]
	for _, v := range values[1:] {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	var sb strings.Builder
	for _, v := range values {
		lvl := 0
		if maxV > minV {
			lvl = int((v - minV) / (maxV - minV) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[lvl])
	}
	return sb.String()
}

// TimeSeries renders labeled sparklines with min/max/last annotations, the
// terminal rendering of the telemetry interval sampler's series.
type TimeSeries struct {
	Title string
	Rows  []SeriesRow
	// Width is the sparkline width in characters (default 60).
	Width int
	// Format renders the annotated numbers (default "%.3g").
	Format string
}

// SeriesRow is one labeled series.
type SeriesRow struct {
	Label  string
	Values []float64
}

// Add appends a series.
func (t *TimeSeries) Add(label string, values []float64) {
	t.Rows = append(t.Rows, SeriesRow{Label: label, Values: values})
}

// String renders the series chart.
func (t *TimeSeries) String() string {
	width := t.Width
	if width <= 0 {
		width = 60
	}
	format := t.Format
	if format == "" {
		format = "%.3g"
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		if len(r.Values) == 0 {
			fmt.Fprintf(&sb, "%-*s | (no samples)\n", labelW, r.Label)
			continue
		}
		minV, maxV := r.Values[0], r.Values[0]
		for _, v := range r.Values[1:] {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		fmt.Fprintf(&sb, "%-*s | %s  min="+format+" max="+format+" last="+format+"\n",
			labelW, r.Label, Sparkline(r.Values, width), minV, maxV, r.Values[len(r.Values)-1])
	}
	return sb.String()
}

// Grouped renders series of values per label as consecutive rows (used for
// the per-level MPKI figures).
type Grouped struct {
	Title  string
	Series []string // one name per value column
	Rows   []GroupedRow
	Width  int
	Format string
}

// GroupedRow is one label with one value per series.
type GroupedRow struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (g *Grouped) Add(label string, values ...float64) {
	g.Rows = append(g.Rows, GroupedRow{Label: label, Values: values})
}

// String renders the grouped chart.
func (g *Grouped) String() string {
	width := g.Width
	if width <= 0 {
		width = 40
	}
	format := g.Format
	if format == "" {
		format = "%.4f"
	}
	labelW := 0
	seriesW := 0
	maxV := 0.0
	for _, r := range g.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		for _, v := range r.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	for _, s := range g.Series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	var sb strings.Builder
	if g.Title != "" {
		sb.WriteString(g.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(g.Title)))
		sb.WriteByte('\n')
	}
	for _, r := range g.Rows {
		for i, v := range r.Values {
			name := ""
			if i < len(g.Series) {
				name = g.Series[i]
			}
			lbl := ""
			if i == 0 {
				lbl = r.Label
			}
			n := 0
			if maxV > 0 && v > 0 {
				n = int(math.Round(v / maxV * float64(width)))
			}
			fmt.Fprintf(&sb, "%-*s %-*s | %s %s\n", labelW, lbl, seriesW, name,
				strings.Repeat("#", n), fmt.Sprintf(format, v))
		}
	}
	return sb.String()
}
