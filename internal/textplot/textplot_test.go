package textplot

import (
	"strings"
	"testing"
)

func TestChartRendersBars(t *testing.T) {
	c := Chart{Title: "overheads", Width: 10}
	c.Add("a", 2)
	c.Add("bb", 4)
	s := c.String()
	if !strings.Contains(s, "overheads") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title+rule+2 rows, got %d:\n%s", len(lines), s)
	}
	// The 4-value bar must be twice the 2-value bar.
	aHashes := strings.Count(lines[2], "#")
	bHashes := strings.Count(lines[3], "#")
	if bHashes != 10 || aHashes != 5 {
		t.Fatalf("bar scaling wrong: a=%d b=%d\n%s", aHashes, bHashes, s)
	}
}

func TestChartBaseline(t *testing.T) {
	c := Chart{Baseline: 1.0, Width: 10}
	c.Add("x", 1.0) // at baseline: zero-length bar
	c.Add("y", 1.5)
	s := c.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if strings.Count(lines[0], "#") != 0 {
		t.Fatal("baseline bar should be empty")
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatal("max bar should be full width")
	}
}

func TestChartEmptyAndZeroSafe(t *testing.T) {
	var c Chart
	if c.String() != "" {
		t.Fatal("empty chart renders empty")
	}
	c.Add("z", 0)
	if !strings.Contains(c.String(), "z") {
		t.Fatal("zero-value bars still render labels")
	}
}

func TestGrouped(t *testing.T) {
	g := Grouped{Title: "mpki", Series: []string{"l1i", "llc"}, Width: 8}
	g.Add("lbm", 1.0, 0.5)
	g.Add("wrf", 2.0, 1.0)
	s := g.String()
	if !strings.Contains(s, "l1i") || !strings.Contains(s, "llc") {
		t.Fatal("series names missing")
	}
	if !strings.Contains(s, "lbm") || !strings.Contains(s, "wrf") {
		t.Fatal("labels missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("want title+rule+4 rows, got %d", len(lines))
	}
}
