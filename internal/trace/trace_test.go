package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/mem"
	"timecache/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{KindFetch, 0x1000},
		{KindLoad, 0xDEADBEEF},
		{KindStore, 0},
		{KindFlush, 1 << 40},
		{KindTick, 7},
		{KindInstret, 1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, addrs []uint64) bool {
		n := len(kinds)
		if len(addrs) < n {
			n = len(addrs)
		}
		var recs []Record
		for i := 0; i < n; i++ {
			recs = append(recs, Record{Kind(kinds[i] % uint8(kindCount)), addrs[i]})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("nope....")).Read(); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{KindLoad, 1 << 40})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record must error")
	}
}

func TestEmptyTraceCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Flush()
	r := NewReader(&buf)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty trace: err = %v, want io.EOF", err)
	}
}

func TestInvalidKindRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Kind(99), 1}); err == nil {
		t.Fatal("invalid kind must be rejected on write")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d missing a name", k)
		}
	}
}

// machine builds a 1-core kernel for record/replay tests.
func machine() (*kernel.Kernel, cache.HierarchyConfig) {
	hcfg := cache.DefaultHierarchyConfig()
	hier := cache.NewHierarchy(hcfg)
	phys := mem.NewPhysical(8192, hcfg.DRAMLat)
	return kernel.New(kernel.DefaultConfig(), hier, phys), hcfg
}

// TestRecordReplayReproducesCacheBehavior records a workload run, then
// replays the trace through an identical fresh machine and checks that the
// cache counters match exactly.
func TestRecordReplayReproducesCacheBehavior(t *testing.T) {
	prof, err := workload.Spec("gobmk")
	if err != nil {
		t.Fatal(err)
	}

	// Recording run.
	k1, _ := machine()
	as1, err := workload.BuildSharedAS(k1, prof)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := &RecordingProc{Inner: workload.NewProc(prof, 30_000, 7), W: w}
	if _, err := k1.Spawn("rec", rec, as1, 0); err != nil {
		t.Fatal(err)
	}
	k1.Run(1 << 62)
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}

	// Replay run on a fresh, identical machine.
	k2, _ := machine()
	as2, err := workload.BuildSharedAS(k2, prof)
	if err != nil {
		t.Fatal(err)
	}
	rep := &ReplayProc{Records: recs}
	if _, err := k2.Spawn("rep", rep, as2, 0); err != nil {
		t.Fatal(err)
	}
	k2.Run(1 << 62)
	if rep.Replayed() != len(recs) {
		t.Fatalf("replayed %d/%d records", rep.Replayed(), len(recs))
	}

	for i, c1 := range k1.Hierarchy().Caches() {
		c2 := k2.Hierarchy().Caches()[i]
		if c1.Stats.Accesses != c2.Stats.Accesses ||
			c1.Stats.Hits != c2.Stats.Hits ||
			c1.Stats.Misses != c2.Stats.Misses {
			t.Fatalf("%s counters diverge: record %+v vs replay %+v",
				c1.Name(), c1.Stats, c2.Stats)
		}
	}
}
