package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// FuzzReader feeds arbitrary byte streams to the trace decoder: whatever the
// input (corrupt magic, truncated varints, invalid kinds, random garbage),
// Read must return records or an error — never panic, never loop forever.
func FuzzReader(f *testing.F) {
	// A valid two-record stream.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write(Record{Kind: KindLoad, Addr: 0x1000})
	_ = w.Write(Record{Kind: KindTick, Addr: 1 << 40})
	_ = w.Flush()
	f.Add(valid.Bytes())
	// Corrupt magic.
	f.Add([]byte("XXXX\x00\x01"))
	// Bare magic (clean EOF) and short header.
	f.Add([]byte("TCT1"))
	f.Add([]byte("TC"))
	// Truncated varint: kind byte then a continuation byte with no successor.
	f.Add(append([]byte("TCT1"), byte(KindLoad), 0x80))
	// Invalid kind.
	f.Add(append([]byte("TCT1"), 0xff, 0x01))
	// Varint longer than 64 bits.
	f.Add(append([]byte("TCT1"), byte(KindStore),
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			if i > len(data)+1 {
				t.Fatalf("decoded more records than input bytes: stuck reader")
			}
			_, err := r.Read()
			if err != nil {
				break
			}
		}
	})
}

// TestWriteReadRoundTrip is the property test pinning the binary format:
// any sequence of valid records survives a write→read cycle bit-exactly.
func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		in := make([]Record, n)
		for i := range in {
			in[i] = Record{Kind: Kind(rng.Intn(int(kindCount))), Addr: rng.Uint64() >> uint(rng.Intn(64))}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range in {
			if err := w.Write(r); err != nil {
				t.Fatalf("trial %d: write: %v", trial, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("trial %d: flush: %v", trial, err)
		}
		if w.Count() != n {
			t.Fatalf("trial %d: wrote %d records, Count() = %d", trial, n, w.Count())
		}
		out, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("trial %d: read back: %v", trial, err)
		}
		if len(out) != n {
			t.Fatalf("trial %d: wrote %d records, read %d", trial, n, len(out))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("trial %d: record %d: wrote %+v, read %+v", trial, i, in[i], out[i])
			}
		}
	}
}

// TestReaderRejectsInvalidKind pins the specific corruptions the fuzz seeds
// cover, so the errors stay errors (not panics, not silent acceptance).
func TestReaderRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", []byte("XXXX\x00\x01")},
		{"short header", []byte("TC")},
		{"invalid kind", append([]byte("TCT1"), 0xff, 0x01)},
		{"truncated varint", append([]byte("TCT1"), byte(KindLoad), 0x80)},
	}
	for _, c := range cases {
		r := NewReader(bytes.NewReader(c.data))
		if _, err := r.Read(); err == nil || err == io.EOF {
			t.Errorf("%s: want a decode error, got %v", c.name, err)
		}
	}
	// A bare magic header is a clean, empty trace.
	if _, err := NewReader(bytes.NewReader([]byte("TCT1"))).Read(); err != io.EOF {
		t.Errorf("bare magic: want io.EOF, got %v", err)
	}
}
