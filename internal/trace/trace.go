// Package trace records and replays memory access traces. A RecordingProc
// wraps any sim.Proc and tees its memory operations into a compact binary
// stream; a ReplayProc drives the simulated hierarchy from a recorded (or
// externally generated) stream. Replaying a recording through an identical
// machine reproduces the original cache behavior exactly, which makes
// traces useful for regression pinning, sharing workloads, and driving the
// simulator from real-application traces collected elsewhere.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"timecache/internal/sim"
)

// Kind tags one trace record.
type Kind uint8

// Record kinds.
const (
	KindFetch Kind = iota
	KindLoad
	KindStore
	KindFlush
	KindTick    // Addr holds the cycle count
	KindInstret // Addr holds the instruction count
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindFlush:
		return "flush"
	case KindTick:
		return "tick"
	case KindInstret:
		return "instret"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one traced operation.
type Record struct {
	Kind Kind
	Addr uint64 // address, or count for Tick/Instret
}

// magic identifies the binary trace format.
var magic = [4]byte{'T', 'C', 'T', '1'}

// Writer streams records to an io.Writer in a compact varint encoding.
type Writer struct {
	w       *bufio.Writer
	started bool
	n       int
	buf     [binary.MaxVarintLen64 + 1]byte
}

// NewWriter creates a trace writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if !tw.started {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.started = true
	}
	if r.Kind >= kindCount {
		return fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	tw.buf[0] = byte(r.Kind)
	n := binary.PutUvarint(tw.buf[1:], r.Addr)
	if _, err := tw.w.Write(tw.buf[:1+n]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() int { return tw.n }

// Flush drains buffered output.
func (tw *Writer) Flush() error {
	if !tw.started {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader creates a trace reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Read returns the next record, or io.EOF at end of trace.
func (tr *Reader) Read() (Record, error) {
	if !tr.started {
		var got [4]byte
		if _, err := io.ReadFull(tr.r, got[:]); err != nil {
			return Record{}, fmt.Errorf("trace: bad header: %w", err)
		}
		if got != magic {
			return Record{}, errors.New("trace: not a trace stream (bad magic)")
		}
		tr.started = true
	}
	k, err := tr.r.ReadByte()
	if err != nil {
		return Record{}, err // io.EOF at a record boundary is clean EOF
	}
	if Kind(k) >= kindCount {
		return Record{}, fmt.Errorf("trace: corrupt stream: kind %d", k)
	}
	addr, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Record{Kind: Kind(k), Addr: addr}, nil
}

// ReadAll decodes the remaining records.
func (tr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// recordingEnv tees every Env operation into the writer.
type recordingEnv struct {
	sim.Env
	w   *Writer
	err error
}

func (e *recordingEnv) rec(r Record) {
	if e.err == nil {
		e.err = e.w.Write(r)
	}
}

func (e *recordingEnv) Fetch(v uint64) { e.rec(Record{KindFetch, v}); e.Env.Fetch(v) }
func (e *recordingEnv) Load(v uint64) uint64 {
	e.rec(Record{KindLoad, v})
	return e.Env.Load(v)
}
func (e *recordingEnv) Store(v uint64, x uint64) { e.rec(Record{KindStore, v}); e.Env.Store(v, x) }
func (e *recordingEnv) Flush(v uint64)           { e.rec(Record{KindFlush, v}); e.Env.Flush(v) }
func (e *recordingEnv) Tick(n uint64)            { e.rec(Record{KindTick, n}); e.Env.Tick(n) }
func (e *recordingEnv) Instret(n uint64)         { e.rec(Record{KindInstret, n}); e.Env.Instret(n) }

// RecordingProc wraps a Proc, recording its memory operations. Stores are
// recorded by address only (values are not part of the timing model).
type RecordingProc struct {
	Inner sim.Proc
	W     *Writer
	// Err holds the first write error; the proc keeps running regardless.
	Err error
}

// Step implements sim.Proc.
func (p *RecordingProc) Step(env sim.Env) bool {
	re := &recordingEnv{Env: env, w: p.W}
	alive := p.Inner.Step(re)
	if p.Err == nil {
		p.Err = re.err
	}
	return alive
}

// ReplayProc replays a record stream through the hierarchy, one record per
// Step. Stores write the record's address with a zero value.
type ReplayProc struct {
	Records []Record
	pos     int
}

// Step implements sim.Proc.
func (p *ReplayProc) Step(env sim.Env) bool {
	if p.pos >= len(p.Records) {
		env.Syscall(sim.SysExit, 0)
		return false
	}
	r := p.Records[p.pos]
	p.pos++
	switch r.Kind {
	case KindFetch:
		env.Fetch(r.Addr)
	case KindLoad:
		env.Load(r.Addr)
	case KindStore:
		env.Store(r.Addr, 0)
	case KindFlush:
		env.Flush(r.Addr)
	case KindTick:
		env.Tick(r.Addr)
	case KindInstret:
		env.Instret(r.Addr)
	}
	return true
}

// Replayed returns how many records have been consumed.
func (p *ReplayProc) Replayed() int { return p.pos }
