module timecache

go 1.22
