package timecache

import (
	"context"

	"timecache/internal/harness"
	"timecache/internal/telemetry"
	"timecache/internal/workload"
)

// ExperimentOptions scales the table/figure reproductions. The zero value
// uses defaults sized for seconds-scale runs; raise InstrsPerProc and
// WarmupInstrs for tighter statistics.
type ExperimentOptions struct {
	// InstrsPerProc is the measured per-process instruction budget.
	InstrsPerProc uint64
	// WarmupInstrs run before measurement to exclude cold-start misses.
	WarmupInstrs uint64
	// LLCSizeBytes overrides the LLC size (Fig. 10 sweeps it).
	LLCSizeBytes int
	// GateLevel runs the gate-level bit-serial comparator during context
	// switches instead of the fast functional path.
	GateLevel bool
	// CoherenceCheck cross-checks the LLC sharer directory against a
	// brute-force probe of every L1 on every coherence event (debug mode).
	CoherenceCheck bool
	// Telemetry, when non-nil, attaches a telemetry collector to every
	// underlying run; output paths are suffixed per workload and mode.
	Telemetry *telemetry.Config
	// Jobs is the number of independent simulation runs executed
	// concurrently by the sweep reproductions. Each run constructs its own
	// machine, so results (and therefore CSV/markdown output) are
	// byte-identical to a sequential run at any job count. Zero or negative
	// uses runtime.GOMAXPROCS(0); 1 runs sequentially.
	Jobs int
	// Progress, when non-nil, receives (done, total) after each completed
	// run of a sweep. Calls are serialized.
	Progress func(done, total int)
	// Ctx, when non-nil, bounds every reproduction: cancellation or
	// deadline expiry interrupts the simulated machines within a few
	// thousand instructions and surfaces as Ctx's error. Nil means never
	// cancelled.
	Ctx context.Context
	// Account, when non-nil, accumulates per-leg resource counters
	// (simulated cycles, instructions, per-level cache accesses, context
	// switches, s-bit delayed loads) across every run the reproduction
	// dispatches — the same accounting the job service reports in its
	// result JSON, so a CLI run and an HTTP job can be compared number for
	// number (cmd/reproduce -resources writes the snapshot).
	Account *harness.ResourceAccount
	// Snapshot selects whether legs may reuse warm machine state through
	// snapshot/fork (harness.SnapshotAuto, the zero value, shelves and
	// reuses; SnapshotOn measures every shape on a fork; SnapshotOff runs
	// every leg cold). Results are identical in every mode.
	Snapshot harness.SnapshotMode
	// SnapshotCheck cross-runs every snapshot-forked leg from cold and
	// errors on any divergence (debug mode, in the spirit of
	// CoherenceCheck).
	SnapshotCheck bool
}

func (o ExperimentOptions) harness() harness.Options {
	return harness.Options{
		InstrsPerProc:  o.InstrsPerProc,
		WarmupInstrs:   o.WarmupInstrs,
		LLCSize:        o.LLCSizeBytes,
		GateLevel:      o.GateLevel,
		CoherenceCheck: o.CoherenceCheck,
		Telemetry:      o.Telemetry,
		Jobs:           o.Jobs,
		Progress:       o.Progress,
		Ctx:            o.Ctx,
		Account:        o.Account,
		Snapshot:       o.Snapshot,
		SnapshotCheck:  o.SnapshotCheck,
	}
}

// ExperimentRow is one workload's measurements across the baseline and
// TimeCache configurations — a row of Table II and one bar of Figs. 7/8/9.
type ExperimentRow struct {
	Workload string
	// Normalized is TimeCache execution time over baseline (Fig. 7/9a).
	Normalized float64
	// MPKIBaseline and MPKITimeCache are the Table II LLC columns.
	MPKIBaseline, MPKITimeCache float64
	// FirstAccessL1I/L1D/LLC are the delayed-access MPKI per level
	// (Fig. 8 / 9b).
	FirstAccessL1I, FirstAccessL1D, FirstAccessLLC float64
	// BookkeepingPct is the share of execution spent on s-bit save/restore.
	BookkeepingPct float64
	// PaperNormalized/PaperMPKIBase/PaperMPKITC carry the paper's numbers
	// for the same workload when known (zero otherwise).
	PaperNormalized, PaperMPKIBase, PaperMPKITC float64
}

func toRow(r harness.PairResult, paper map[string][3]float64) ExperimentRow {
	row := ExperimentRow{
		Workload:       r.Label,
		Normalized:     r.Normalized,
		MPKIBaseline:   r.MPKIBase,
		MPKITimeCache:  r.MPKITC,
		FirstAccessL1I: r.FirstAccess.L1I,
		FirstAccessL1D: r.FirstAccess.L1D,
		FirstAccessLLC: r.FirstAccess.LLC,
		BookkeepingPct: r.BookkeepingPct,
	}
	if p, ok := paper[r.Label]; ok {
		row.PaperNormalized, row.PaperMPKIBase, row.PaperMPKITC = p[0], p[1], p[2]
	}
	return row
}

// ReproduceTableII runs all 24 single-core SPEC2006 pairs (Figs. 7 and 8,
// the SPEC half of Table II).
func ReproduceTableII(opts ExperimentOptions) ([]ExperimentRow, error) {
	rs, err := harness.RunAllSpecPairs(opts.harness())
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentRow, 0, len(rs))
	for _, r := range rs {
		out = append(out, toRow(r, workload.PaperTableII))
	}
	return out, nil
}

// ReproduceSpecPair runs a single named pair (e.g. "2Xlbm", "perl+wrf").
func ReproduceSpecPair(label string, opts ExperimentOptions) (ExperimentRow, error) {
	for _, p := range workload.SpecPairs() {
		if p.Label == label {
			r, err := harness.RunSpecPair(p, opts.harness())
			if err != nil {
				return ExperimentRow{}, err
			}
			return toRow(r, workload.PaperTableII), nil
		}
	}
	// Fall back to an ad-hoc 2X pair of a known profile name.
	if _, err := workload.Spec(label); err == nil {
		r, err := harness.RunSpecPair(workload.Pair{Label: "2X" + label, A: label, B: label}, opts.harness())
		if err != nil {
			return ExperimentRow{}, err
		}
		return toRow(r, workload.PaperTableII), nil
	}
	return ExperimentRow{}, errUnknownWorkload(label)
}

type errUnknownWorkload string

func (e errUnknownWorkload) Error() string {
	return "timecache: unknown workload " + string(e)
}

// ReproduceParsec runs the six 2-thread/2-core PARSEC workloads (Figs. 9a
// and 9b, the PARSEC rows of Table II).
func ReproduceParsec(opts ExperimentOptions) ([]ExperimentRow, error) {
	rs, err := harness.RunAllParsec(opts.harness())
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentRow, 0, len(rs))
	for _, r := range rs {
		out = append(out, toRow(r, workload.PaperParsec))
	}
	return out, nil
}

// SensitivityRow is one Fig. 10 point: geometric-mean overhead at one LLC
// size.
type SensitivityRow struct {
	LLCSizeBytes int
	GeoMeanNorm  float64
	OverheadPct  float64
}

// ReproduceLLCSensitivity sweeps LLC sizes over the same-benchmark pairs
// (Fig. 10; the paper reports 1.13%, 0.4%, 0.1% at 2/4/8 MB over 1B
// instructions). At this simulator's instruction budgets the eviction
// pressure that drives the effect appears at proportionally smaller
// caches, so the default sweep is 512 KB to 4 MB; the shape — overhead
// falling as the LLC grows, flattening at the bookkeeping floor — is the
// paper's.
func ReproduceLLCSensitivity(sizes []int, opts ExperimentOptions) ([]SensitivityRow, error) {
	if len(sizes) == 0 {
		sizes = []int{512 << 10, 1 << 20, 2 << 20, 4 << 20}
	}
	var pairs []workload.Pair
	for _, p := range workload.SpecPairs() {
		if p.A == p.B {
			pairs = append(pairs, p)
		}
	}
	pts, err := harness.RunLLCSensitivity(sizes, pairs, opts.harness())
	if err != nil {
		return nil, err
	}
	out := make([]SensitivityRow, 0, len(pts))
	for _, p := range pts {
		out = append(out, SensitivityRow{LLCSizeBytes: p.LLCSize, GeoMeanNorm: p.GeoMeanNorm, OverheadPct: p.OverheadPct})
	}
	return out, nil
}

// AblationRow compares one defense's normalized execution time.
type AblationRow struct {
	Defense    string
	Normalized float64
}

// ReproduceDefenseAblation compares every registered defense — the s-bit
// mechanism against FTM, DAWG-lite way partitioning, flush-on-context-
// switch, Clepsydra-style TTL eviction, and FASE-style selective flushing —
// on one workload pair, in the registry's canonical order.
func ReproduceDefenseAblation(label string, opts ExperimentOptions) ([]AblationRow, error) {
	var pair *workload.Pair
	for _, p := range workload.SpecPairs() {
		if p.Label == label {
			q := p
			pair = &q
			break
		}
	}
	if pair == nil {
		return nil, errUnknownWorkload(label)
	}
	rs, err := harness.RunDefenseAblation(*pair, opts.harness())
	if err != nil {
		return nil, err
	}
	out := make([]AblationRow, 0, len(rs))
	for _, r := range rs {
		out = append(out, AblationRow{Defense: r.Defense, Normalized: r.Normalized})
	}
	return out, nil
}

// BookkeepingRow relates the scheduler time slice to the s-bit bookkeeping
// share of execution time (§VI-D; the paper reports ~0.02% at realistic
// slice lengths).
type BookkeepingRow struct {
	SliceCycles    uint64
	BookkeepingPct float64
	OverheadPct    float64
}

// ReproduceBookkeepingScaling sweeps scheduler slice lengths to show the
// fixed 1.08 µs DMA cost per switch vanishing into longer slices.
func ReproduceBookkeepingScaling(slices []uint64, opts ExperimentOptions) ([]BookkeepingRow, error) {
	if len(slices) == 0 {
		slices = []uint64{100_000, 200_000, 400_000, 800_000}
	}
	pts, err := harness.RunBookkeepingScaling(
		workload.Pair{Label: "2Xnamd", A: "namd", B: "namd"}, slices, opts.harness())
	if err != nil {
		return nil, err
	}
	out := make([]BookkeepingRow, 0, len(pts))
	for _, p := range pts {
		out = append(out, BookkeepingRow{SliceCycles: p.SliceCycles, BookkeepingPct: p.BookkeepingPct, OverheadPct: p.OverheadPct})
	}
	return out, nil
}

// SbitCosts reports the §VI-D bookkeeping cost model: transfers per cache
// column and the cycles per switch under the DMA and copy mechanisms.
type SbitCosts struct {
	L1Transfers, LLCTransfers int
	DMACyclesPerSwitch        uint64
	CopyCyclesPerSwitch       uint64
}

// ComputeSbitCosts evaluates the s-bit save/restore cost model for the
// configured LLC size.
func ComputeSbitCosts(opts ExperimentOptions) SbitCosts {
	b := harness.SbitCost(opts.harness())
	return SbitCosts{
		L1Transfers:         b.L1Transfers,
		LLCTransfers:        b.LLCTransfers,
		DMACyclesPerSwitch:  b.DMACyclesPerSwitch,
		CopyCyclesPerSwitch: b.CopyCyclesPerSwitch,
	}
}

// SpecPairLabels lists the Table II workload labels in paper order.
func SpecPairLabels() []string {
	var out []string
	for _, p := range workload.SpecPairs() {
		out = append(out, p.Label)
	}
	return out
}
