package timecache_test

import (
	"fmt"

	"timecache"
)

// Build a machine, run a tiny program, and read its result.
func ExampleSystem_LoadAsm() {
	sys, _ := timecache.New(timecache.Config{Mode: timecache.TimeCache})
	p, _ := sys.LoadAsm(`
		movi r1, 6
		movi r2, 7
		mul  r1, r1, r2
		sys  0           ; exit(r1)
	`, timecache.LoadOptions{})
	sys.Run(1 << 30)
	fmt.Println(p.ExitCode())
	// Output: 42
}

// The headline security result: the flush+reload RSA key extraction
// succeeds on an undefended cache and observes nothing under TimeCache.
func ExampleRunRSAAttack() {
	base, _ := timecache.RunRSAAttack(timecache.Baseline, 32, 7)
	defended, _ := timecache.RunRSAAttack(timecache.TimeCache, 32, 7)
	fmt.Printf("baseline recovered the key: %v\n", base.Accuracy == 1)
	fmt.Printf("timecache probe hits: %d\n", defended.Hits)
	// Output:
	// baseline recovered the key: true
	// timecache probe hits: 0
}

// The §VI-A1 microbenchmark: flush a shared array, let the victim write
// it, time the reloads.
func ExampleRunMicrobenchmark() {
	base, _ := timecache.RunMicrobenchmark(timecache.Baseline)
	defended, _ := timecache.RunMicrobenchmark(timecache.TimeCache)
	fmt.Printf("baseline: %d/%d hits, timecache: %d/%d hits\n",
		base.Hits, base.Lines, defended.Hits, defended.Lines)
	// Output: baseline: 256/256 hits, timecache: 0/256 hits
}
